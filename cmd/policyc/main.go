// Command policyc compiles, inspects, verifies, and merges compiled
// policy tables (internal/policy).
//
// Usage:
//
//	policyc compile -o table.pol [-n 32] [-dur 30s] [-seeds 1,2,3] [-note s]
//	    Replay fleet runs and write the captured fingerprint → action
//	    map as a compiled table.
//
//	policyc inspect file.pol...
//	    Print header identity, provenance, and record counts for tables
//	    or sidecar miss logs.
//
//	policyc verify table.pol [-serve] [-n 32] [-dur 30s] [-seed 5] [-minhit 0.9]
//	    Round-trip every record through the serving path (bit-identical
//	    or non-zero exit). With -serve, additionally replay a fleet run
//	    against the table and require the compiled hit rate ≥ -minhit.
//
//	policyc merge -o out.pol table.pol [sidecar.miss...]
//	    Fold sidecar miss logs (or further tables) into a new table
//	    generation; the first file wins duplicated fingerprints.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"modelcc/internal/fleet"
	"modelcc/internal/policy"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "compile":
		err = runCompile(os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	case "verify":
		err = runVerify(os.Args[2:])
	case "merge":
		err = runMerge(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "policyc:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: policyc {compile|inspect|verify|merge} [flags]")
	os.Exit(2)
}

func parseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func runCompile(args []string) error {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	out := fs.String("o", "policy.pol", "output table path")
	n := fs.Int("n", 32, "fleet size of the compile workload")
	dur := fs.Duration("dur", 30*time.Second, "virtual duration per replay")
	seeds := fs.String("seeds", "1", "comma-separated replay seeds")
	note := fs.String("note", "", "provenance note recorded in the header")
	workers := fs.Int("workers", 0, "rollout workers (0 = GOMAXPROCS)")
	fs.Parse(args)

	sd, err := parseSeeds(*seeds)
	if err != nil {
		return err
	}
	cc := policy.CompileConfig{
		Fleet:    fleet.Config{N: *n, Workers: *workers},
		Seeds:    sd,
		Duration: *dur,
		Note:     *note,
	}
	h, recs, stats, err := policy.Compile(cc)
	if err != nil {
		return err
	}
	if err := policy.WriteTable(*out, h, recs); err != nil {
		return err
	}
	fmt.Printf("compiled %s: %d records from %d replay(s) (%d stores, %d collisions dropped)\n",
		*out, stats.Unique, stats.Runs, stats.Stored, stats.Collisions)
	return nil
}

func runInspect(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("inspect: no files")
	}
	for _, path := range args {
		h, recs, err := policy.ReadFile(path)
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n", path)
		fmt.Printf("  records        %d\n", len(recs))
		fmt.Printf("  fleet n        %d\n", h.FleetN)
		fmt.Printf("  time quantum   %v\n", h.TimeQuantum)
		fmt.Printf("  weight quantum %g\n", h.WeightQuantum)
		fmt.Printf("  prior hash     %016x\n", h.PriorHash)
		fmt.Printf("  build seed     %d\n", h.BuildSeed)
		fmt.Printf("  created        %s\n", time.Unix(h.Created, 0).UTC().Format(time.RFC3339))
		if h.Note != "" {
			fmt.Printf("  note           %q\n", h.Note)
		}
	}
	return nil
}

func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	serve := fs.Bool("serve", false, "also replay a fleet run against the table")
	n := fs.Int("n", 32, "fleet size of the serve replay")
	dur := fs.Duration("dur", 30*time.Second, "virtual duration of the serve replay")
	seed := fs.Int64("seed", 1, "serve replay seed")
	minhit := fs.Float64("minhit", 0.9, "minimum compiled hit rate for -serve")
	workers := fs.Int("workers", 0, "rollout workers (0 = GOMAXPROCS)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("verify: want exactly one table path")
	}
	path := fs.Arg(0)

	t, err := policy.Open(path)
	if err != nil {
		return err
	}
	defer t.Close()
	if err := t.Verify(); err != nil {
		return err
	}
	fmt.Printf("%s: %d records, serve path bit-identical to recorded actions\n", path, t.Len())

	if !*serve {
		return nil
	}
	cfg := fleet.Config{N: *n, Workers: *workers, Seed: *seed}
	if err := t.Header().CheckPrior(cfg.ResolvedPrior()); err != nil {
		return err
	}
	srv := policy.NewServer(t, nil)
	cfg.Table = srv
	fl := fleet.New(cfg)
	fl.Run(*dur)
	compiled, live := fl.CompiledStats()
	total := compiled + live
	if total == 0 {
		return fmt.Errorf("serve replay made no decisions")
	}
	rate := float64(compiled) / float64(total)
	fmt.Printf("serve replay: n=%d dur=%v seed=%d  hit rate %.4f (%d compiled / %d live)\n",
		*n, *dur, *seed, rate, compiled, live)
	if rate < *minhit {
		return fmt.Errorf("hit rate %.4f below floor %.4f", rate, *minhit)
	}
	return nil
}

func runMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("o", "", "output table path (required)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("merge: -o required")
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("merge: no input files")
	}
	h, recs, err := policy.Merge(fs.Args()...)
	if err != nil {
		return err
	}
	if err := policy.WriteTable(*out, h, recs); err != nil {
		return err
	}
	fmt.Printf("merged %d file(s) into %s: %d records\n", fs.NArg(), *out, len(recs))
	return nil
}
