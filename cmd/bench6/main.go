// Command bench6 produces BENCH_6.json: the sharded-runtime benchmark
// record. It measures the headline numbers the sharding PR is judged
// on — aggregate senders simulated per wall-second (and acknowledgments
// per wall-second) per core at N=1024 and N=4096, shards=1 vs 8 — and
// re-verifies the determinism invariants while it is at it: the FNV
// digest of a steady N=256 run and the churn replay hash at N=256 must
// be identical for every shard count.
//
// Usage:
//
//	go run ./cmd/bench6 [-out BENCH_6.json] [-dur 30s] [-smoke]
//
// -smoke shrinks the fleets (N=64/128) for CI-speed validation of the
// harness itself; the committed BENCH_6.json comes from a full run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/chaos"
	"modelcc/internal/fleet"
	"modelcc/internal/lifecycle"
	"modelcc/internal/packet"
	"modelcc/internal/planner"
	"modelcc/internal/shard"
)

type shardedPoint struct {
	N             int     `json:"n"`
	Shards        int     `json:"shards"`
	Lean          bool    `json:"lean"`
	WallS         float64 `json:"wall_s"`
	SendersPerSec float64 `json:"senders_per_sec"`
	AcksPerSec    float64 `json:"acks_per_sec"`
	Digest        string  `json:"digest"`
}

type entry struct {
	MsPerOp       float64 `json:"ms_per_op"`
	SendersPerSec float64 `json:"senders_per_sec"`
}

type record struct {
	PR   int    `json:"pr"`
	At   string `json:"at"`
	Note string `json:"note"`
	Env  struct {
		GOMAXPROCS int     `json:"gomaxprocs"`
		NumCPU     int     `json:"numcpu"`
		VirtualS   float64 `json:"virtual_duration_s"`
	} `json:"environment"`
	// Current carries the perfgate baseline (single-loop fleet, the
	// BenchmarkFleet workload).
	Current map[string]entry  `json:"current"`
	Sharded []shardedPoint    `json:"sharded"`
	Steady  map[string]string `json:"steady_digest_n256"`
	Churn   map[string]string `json:"churn_replay_hash_n256"`
	OK      bool              `json:"hash_identity_ok"`
}

func main() {
	out := flag.String("out", "BENCH_6.json", "output file")
	dur := flag.Duration("dur", 30*time.Second, "virtual duration per run")
	smoke := flag.Bool("smoke", false, "tiny fleets: validate the harness, not the numbers")
	flag.Parse()

	var rec record
	rec.PR = 6
	rec.At = time.Now().UTC().Format(time.RFC3339)
	rec.Env.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rec.Env.NumCPU = runtime.NumCPU()
	rec.Env.VirtualS = dur.Seconds()
	rec.Note = "Sharded fleet runtime (internal/shard): K per-shard DES loops coupled by " +
		"windowed conservative lookahead (delta = one packet service time), merged in canonical " +
		"(time, flow, seq) order. senders_per_sec = N / wall seconds of one whole run; " +
		"acks_per_sec counts delivered acknowledgments. Divide by gomaxprocs for per-core rates. " +
		"On a GOMAXPROCS=1 host the shards=8 rows measure pure coordination overhead, not speedup — " +
		"the digest columns are the point: results are bit-identical for every shard count. " +
		"Large-N rows run lean (streaming stats only: Welford moments + P2 tail quantile, no " +
		"per-packet series), the heap knob that keeps N=4096 flat. The default single-loop fleet is " +
		"unchanged (arrival-order scheduling, one shared cache); sharded runs force canonical " +
		"flow-order scheduling plus a 16-way striped cache, and the steady_digest_n256 'plain' row " +
		"sets the same two knobs explicitly to pin single-loop == sharded. The 'current' " +
		"Fleet/n=256 entry re-bases the perfgate tripwire: BENCH_2's 85.9 senders/s predates the " +
		"PolicyCache correctness fixes (BENCH_4 re-measured 18.9 honestly)."

	sizes := []struct{ n1, n2 int }{{1024, 4096}}
	churnN, steadyN := 256, 256
	if *smoke {
		sizes = []struct{ n1, n2 int }{{64, 128}}
		churnN, steadyN = 32, 32
	}

	// Headline rows: N=1024 and N=4096, shards 1 vs 8, lean.
	for _, n := range []int{sizes[0].n1, sizes[0].n2} {
		for _, k := range []int{1, 8} {
			cfg := fleet.Config{N: n, Seed: 7, LeanStats: true, LeanRateFrom: *dur / 2}
			start := time.Now()
			sf := shard.New(shard.Config{Fleet: cfg, Shards: k})
			sf.Run(*dur)
			wall := time.Since(start).Seconds()
			var acks int64
			for _, m := range sf.MemberSlots() {
				if m != nil {
					acks += m.Sender.Acked
				}
			}
			p := shardedPoint{
				N: n, Shards: sf.K, Lean: true, WallS: round3(wall),
				SendersPerSec: round1(float64(n) / wall),
				AcksPerSec:    round1(float64(acks) / wall),
				Digest:        fmt.Sprintf("%016x", sf.Digest()),
			}
			rec.Sharded = append(rec.Sharded, p)
			fmt.Printf("n=%d shards=%d: %.1f senders/s %.1f acks/s wall=%.1fs digest=%s\n",
				n, sf.K, p.SendersPerSec, p.AcksPerSec, wall, p.Digest)
		}
	}

	// Steady-state digest identity at N=256, plain vs shards {1, 2, 8}.
	rec.Steady = map[string]string{}
	steadyDur := *dur
	scfg := fleet.Config{N: steadyN, Seed: 1, Canonical: true, CacheStripes: planner.DefaultCacheStripes}
	fl := fleet.New(scfg)
	fl.Run(steadyDur)
	rec.Steady["plain"] = fmt.Sprintf("%016x", shard.DigestFleet(fl))
	for _, k := range []int{1, 2, 8} {
		sf := shard.New(shard.Config{Fleet: scfg, Shards: k})
		sf.Run(steadyDur)
		rec.Steady[fmt.Sprintf("shards_%d", k)] = fmt.Sprintf("%016x", sf.Digest())
	}

	// Churn replay-hash identity at N=256, shards {1, 2, 8}.
	rec.Churn = map[string]string{}
	for _, k := range []int{1, 2, 8} {
		sf := shard.New(shard.Config{
			Fleet:  fleet.Config{N: churnN, Seed: 5, BeliefCfg: belief.Config{Recover: true}},
			Shards: k,
		})
		sf.EnableChurn(lifecycle.ChurnConfig{
			DepartProb: 0.04, CrashProb: 0.06, ArriveProb: 0.5, MinLive: churnN / 4,
		}, lifecycle.SupervisorConfig{}, chaos.Config{Seed: 5})
		sf.Run(steadyDur)
		rec.Churn[fmt.Sprintf("shards_%d", k)] = fmt.Sprintf("%016x", sf.ReplayHash())
	}

	rec.OK = allEqual(rec.Steady) && allEqual(rec.Churn)

	// Perfgate baseline: the single-loop BenchmarkFleet workload.
	gateN := 256
	if *smoke {
		gateN = 32
	}
	start := time.Now()
	gfl := fleet.New(fleet.Config{N: gateN, Seed: 7})
	gfl.Run(30 * time.Second)
	wall := time.Since(start).Seconds()
	_ = gfl.Delivered(packet.FlowID(0))
	rec.Current = map[string]entry{
		fmt.Sprintf("Fleet/n=%d", gateN): {
			MsPerOp:       round3(wall * 1000),
			SendersPerSec: round1(float64(gateN) / wall),
		},
	}
	fmt.Printf("Fleet/n=%d (single-loop): %.1f senders/s\n", gateN, float64(gateN)/wall)
	fmt.Printf("hash identity: %v\n", rec.OK)

	b, err := json.MarshalIndent(rec, "", " ")
	if err == nil {
		err = os.WriteFile(*out, append(b, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench6: %v\n", err)
		os.Exit(1)
	}
	if !rec.OK {
		fmt.Fprintln(os.Stderr, "bench6: HASH MISMATCH ACROSS SHARD COUNTS")
		os.Exit(1)
	}
}

func allEqual(m map[string]string) bool {
	var first string
	for _, v := range m {
		if first == "" {
			first = v
		} else if v != first {
			return false
		}
	}
	return true
}

func round1(v float64) float64 { return float64(int(v*10+0.5)) / 10 }
func round3(v float64) float64 { return float64(int(v*1000+0.5)) / 1000 }
