// Command isender-sim reproduces the paper's Figure 3: the ISENDER
// against intermittent cross traffic on the Figure 2 topology, one curve
// per cross-traffic priority α.
//
// Usage:
//
//	isender-sim [-duration 300s] [-seed 42] [-alphas 0.9,1,2.5,5] [-tsv] [-claims]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"modelcc/internal/experiments"
)

func main() {
	duration := flag.Duration("duration", 300*time.Second, "virtual experiment length")
	seed := flag.Int64("seed", 42, "ground-truth random seed")
	alphasFlag := flag.String("alphas", "0.9,1,2.5,5", "comma-separated cross-traffic priorities")
	tsv := flag.Bool("tsv", false, "emit raw sequence-vs-time TSV instead of the plot")
	claims := flag.Bool("claims", false, "check the paper's qualitative claims (exit 1 on failure)")
	flag.Parse()

	alphas, err := parseAlphas(*alphasFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "isender-sim:", err)
		os.Exit(2)
	}

	res := experiments.RunFig3(*seed, *duration, alphas...)

	if *tsv {
		for i := range res.Runs {
			fmt.Printf("# alpha=%g (time_s\tacked_seq)\n", res.Alphas[i])
			fmt.Print(res.Runs[i].AckedSeq.TSV())
			fmt.Println()
		}
	} else {
		fmt.Print(res.Render())
	}

	if *claims {
		report, ok := experiments.Fig3Claims(res)
		fmt.Println()
		fmt.Print(report)
		if !ok {
			os.Exit(1)
		}
	}
}

func parseAlphas(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad alpha %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no alphas given")
	}
	return out, nil
}
