// Command benchjson runs the repository's headline performance
// benchmarks through testing.Benchmark and emits the results as JSON,
// so the perf trajectory is machine-readable PR over PR (BENCH_<n>.json
// at the repository root records each PR's before/after).
//
// Usage:
//
//	go run ./cmd/benchjson [-short] [-workers N] [-o out.json]
//
// -short runs 30 s virtual figure runs instead of the benchmarks' 120 s,
// for quick smoke measurement (CI). -workers overrides the rollout
// parallelism (0 = GOMAXPROCS).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/experiments"
	"modelcc/internal/fleet"
	"modelcc/internal/model"
	"modelcc/internal/packet"
	"modelcc/internal/planner"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	MsPerOp     float64 `json:"ms_per_op"`
	// SendersPerSec is set for the fleet benchmark: senders whose whole
	// virtual window is simulated per wall second (N / op seconds).
	SendersPerSec float64 `json:"senders_per_sec,omitempty"`
}

// Report is the whole run.
type Report struct {
	GoMaxProcs int       `json:"gomaxprocs"`
	Workers    int       `json:"workers"`
	DurationS  float64   `json:"virtual_duration_s"`
	Results    []Result  `json:"results"`
	At         time.Time `json:"at"`
}

func measure(name string, f func(b *testing.B)) Result {
	r := testing.Benchmark(f)
	return Result{
		Name:        name,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
		MsPerOp:     float64(r.NsPerOp()) / 1e6,
	}
}

func main() {
	short := flag.Bool("short", false, "30s virtual runs instead of 120s")
	workers := flag.Int("workers", 0, "rollout workers (0 = GOMAXPROCS)")
	out := flag.String("o", "", "write JSON here instead of stdout")
	flag.Parse()

	dur := 120 * time.Second
	if *short {
		dur = 30 * time.Second
	}

	rep := Report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    *workers,
		DurationS:  dur.Seconds(),
		At:         time.Now().UTC(),
	}

	rep.Results = append(rep.Results, measure("Fig1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			experiments.RunFig1(experiments.Fig1Config{Duration: dur, Seed: 3})
		}
	}))

	for _, alpha := range experiments.Fig3Alphas {
		rep.Results = append(rep.Results, measure(fmt.Sprintf("Fig3/alpha=%g", alpha), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := experiments.Fig3Config(alpha, 42, dur)
				cfg.Workers = *workers
				experiments.RunISender(cfg)
			}
		}))
	}

	states, _ := model.Fig3Prior().Enumerate()
	rep.Results = append(rep.Results, measure("BeliefUpdate/fig3-prior", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			bel := belief.NewExact(states, belief.Config{Workers: *workers})
			bel.RecordSend(model.Send{Seq: 0, At: 0})
			b.StartTimer()
			bel.Update(time.Second, []packet.Ack{{Seq: 0, ReceivedAt: time.Second}})
		}
	}))

	rep.Results = append(rep.Results, measure("PlannerDecide/fig3-prior", func(b *testing.B) {
		b.ReportAllocs()
		bel := belief.NewExact(states, belief.Config{Workers: *workers})
		bel.RecordSend(model.Send{Seq: 0, At: 0})
		bel.Update(time.Second, []packet.Ack{{Seq: 0, ReceivedAt: time.Second}})
		cfg := planner.DefaultConfig()
		cfg.Workers = *workers
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			planner.Decide(bel.Support(), nil, time.Second, 1, cfg)
		}
	}))

	// Fleet throughput: one whole 256-sender fleet run per op over a
	// 30 s virtual window (fleets amortize, so a shorter window than
	// the figure benches measures the steady state it reaches fast).
	const fleetN = 256
	fleetDur := 30 * time.Second
	fr := measure(fmt.Sprintf("Fleet/n=%d", fleetN), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fl := fleet.New(fleet.Config{N: fleetN, Seed: 7, Workers: *workers})
			fl.Run(fleetDur)
		}
	})
	fr.SendersPerSec = fleetN / (float64(fr.NsPerOp) / 1e9)
	rep.Results = append(rep.Results, fr)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
