// Command benchjson runs the repository's headline performance
// benchmarks through testing.Benchmark and emits the results as JSON,
// so the perf trajectory is machine-readable PR over PR (BENCH_<n>.json
// at the repository root records each PR's before/after).
//
// Usage:
//
//	go run ./cmd/benchjson [-short] [-workers N] [-o out.json]
//
// -short runs 30 s virtual figure runs instead of the benchmarks' 120 s,
// for quick smoke measurement (CI). -workers overrides the rollout
// parallelism (0 = GOMAXPROCS).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/experiments"
	"modelcc/internal/fleet"
	"modelcc/internal/model"
	"modelcc/internal/packet"
	"modelcc/internal/planner"
	"modelcc/internal/policy"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	MsPerOp     float64 `json:"ms_per_op"`
	// SendersPerSec is set for the fleet benchmark: senders whose whole
	// virtual window is simulated per wall second (N / op seconds).
	SendersPerSec float64 `json:"senders_per_sec,omitempty"`
}

// PolicyReport measures the compiled-policy serving path: a table is
// compiled from a fleet workload, then the same workload is replayed
// served from the table, against a pure live-planning run of the same
// seed for the utility comparison.
type PolicyReport struct {
	FleetN       int     `json:"fleet_n"`
	DurationS    float64 `json:"virtual_duration_s"`
	Seed         int64   `json:"seed"`
	TableEntries int     `json:"table_entries"`
	TableBytes   int64   `json:"table_bytes"`

	// HitRate is compiled decisions / all decisions on the serve replay.
	HitRate           float64 `json:"hit_rate"`
	CompiledDecisions int64   `json:"compiled_decisions"`
	LiveDecisions     int64   `json:"live_decisions"`

	// Mean per-member utility: live planning (no cache, no table)
	// versus served from the table, same seed. Ratio ≈ 1 means the
	// compiled path gives up nothing.
	MeanUtilityLive     float64 `json:"mean_utility_live"`
	MeanUtilityCompiled float64 `json:"mean_utility_compiled"`
	UtilityRatio        float64 `json:"utility_ratio"`

	// Decision latency percentiles on the serve replay (Guard.Decide
	// wall time, table hits and live fallbacks combined).
	P50DecideUs float64 `json:"p50_decide_us"`
	P99DecideUs float64 `json:"p99_decide_us"`

	// LookupNsPerOp is the raw Table.Lookup cost (zero-alloc binary
	// search under the prefix index).
	LookupNsPerOp  int64 `json:"lookup_ns_per_op"`
	LookupAllocs   int64 `json:"lookup_allocs_per_op"`
	CompileStores  int   `json:"compile_stores"`
	CompileDropped int   `json:"compile_collisions_dropped"`
}

// Report is the whole run.
type Report struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	Workers    int           `json:"workers"`
	DurationS  float64       `json:"virtual_duration_s"`
	Results    []Result      `json:"results"`
	Policy     *PolicyReport `json:"policy,omitempty"`
	At         time.Time     `json:"at"`
}

func measure(name string, f func(b *testing.B)) Result {
	r := testing.Benchmark(f)
	return Result{
		Name:        name,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
		MsPerOp:     float64(r.NsPerOp()) / 1e6,
	}
}

func percentile(sorted []int64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i])
}

// measurePolicy compiles a policy table from a fleet workload and
// replays that workload three ways — live planning, warm-cache compile,
// table-served — to measure hit rate, utility parity, and decision
// latency on the compiled path.
func measurePolicy(workers int, short bool) (*PolicyReport, error) {
	const polN = 32
	const seed = 5
	polDur := 20 * time.Second
	if short {
		polDur = 10 * time.Second
	}

	cc := policy.CompileConfig{
		Fleet:    fleet.Config{N: polN, Workers: workers},
		Seeds:    []int64{seed},
		Duration: polDur,
		Note:     "benchjson",
	}
	h, recs, stats, err := policy.Compile(cc)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "benchjson-policy")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bench.pol")
	if err := policy.WriteTable(path, h, recs); err != nil {
		return nil, err
	}
	t, err := policy.Open(path)
	if err != nil {
		return nil, err
	}
	defer t.Close()
	if err := t.Verify(); err != nil {
		return nil, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}

	// Live baseline: pure live planning (no shared cache, no table).
	live := fleet.New(fleet.Config{N: polN, Workers: workers, Seed: seed, NoSharedCache: true})
	live.Run(polDur)

	// Served replay of the compile workload.
	srv := policy.NewServer(t, nil)
	served := fleet.New(fleet.Config{N: polN, Workers: workers, Seed: seed, Table: srv})
	for _, m := range served.Members {
		m.Sender.Guard.RecordLatency = true
	}
	served.Run(polDur)

	compiled, liveDecides := served.CompiledStats()
	var lats []int64
	for _, m := range served.Members {
		lats = append(lats, m.Sender.Guard.Latencies...)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })

	var meanLive, meanServed float64
	for i := range live.Members {
		meanLive += live.Members[i].Utility
		meanServed += served.Members[i].Utility
	}
	meanLive /= float64(polN)
	meanServed /= float64(polN)

	pr := &PolicyReport{
		FleetN:              polN,
		DurationS:           polDur.Seconds(),
		Seed:                seed,
		TableEntries:        t.Len(),
		TableBytes:          fi.Size(),
		CompiledDecisions:   compiled,
		LiveDecisions:       liveDecides,
		MeanUtilityLive:     meanLive,
		MeanUtilityCompiled: meanServed,
		P50DecideUs:         percentile(lats, 0.50) / 1e3,
		P99DecideUs:         percentile(lats, 0.99) / 1e3,
		CompileStores:       stats.Stored,
		CompileDropped:      stats.Collisions,
	}
	if total := compiled + liveDecides; total > 0 {
		pr.HitRate = float64(compiled) / float64(total)
	}
	if meanLive != 0 {
		pr.UtilityRatio = meanServed / meanLive
	}

	// Raw lookup cost over the table's own fingerprints (keys extracted
	// up front so only Lookup is on the measured path).
	fps := make([]uint64, t.Len())
	vers := make([]uint64, t.Len())
	for i := 0; i < t.Len(); i++ {
		r := t.Record(i)
		fps[i], vers[i] = r.FP, r.Verify
	}
	lr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			j := i % len(fps)
			if _, ok := t.Lookup(fps[j], vers[j]); !ok {
				b.Fatal("lookup missed a stored record")
			}
		}
	})
	pr.LookupNsPerOp = lr.NsPerOp()
	pr.LookupAllocs = lr.AllocsPerOp()
	return pr, nil
}

func main() {
	short := flag.Bool("short", false, "30s virtual runs instead of 120s")
	workers := flag.Int("workers", 0, "rollout workers (0 = GOMAXPROCS)")
	out := flag.String("o", "", "write JSON here instead of stdout")
	flag.Parse()

	dur := 120 * time.Second
	if *short {
		dur = 30 * time.Second
	}

	rep := Report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    *workers,
		DurationS:  dur.Seconds(),
		At:         time.Now().UTC(),
	}

	rep.Results = append(rep.Results, measure("Fig1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			experiments.RunFig1(experiments.Fig1Config{Duration: dur, Seed: 3})
		}
	}))

	for _, alpha := range experiments.Fig3Alphas {
		rep.Results = append(rep.Results, measure(fmt.Sprintf("Fig3/alpha=%g", alpha), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := experiments.Fig3Config(alpha, 42, dur)
				cfg.Workers = *workers
				experiments.RunISender(cfg)
			}
		}))
	}

	states, _ := model.Fig3Prior().Enumerate()
	rep.Results = append(rep.Results, measure("BeliefUpdate/fig3-prior", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			bel := belief.NewExact(states, belief.Config{Workers: *workers})
			bel.RecordSend(model.Send{Seq: 0, At: 0})
			b.StartTimer()
			bel.Update(time.Second, []packet.Ack{{Seq: 0, ReceivedAt: time.Second}})
		}
	}))

	rep.Results = append(rep.Results, measure("PlannerDecide/fig3-prior", func(b *testing.B) {
		b.ReportAllocs()
		bel := belief.NewExact(states, belief.Config{Workers: *workers})
		bel.RecordSend(model.Send{Seq: 0, At: 0})
		bel.Update(time.Second, []packet.Ack{{Seq: 0, ReceivedAt: time.Second}})
		cfg := planner.DefaultConfig()
		cfg.Workers = *workers
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			planner.Decide(bel.Support(), nil, time.Second, 1, cfg)
		}
	}))

	// Fleet throughput: one whole 256-sender fleet run per op over a
	// 30 s virtual window (fleets amortize, so a shorter window than
	// the figure benches measures the steady state it reaches fast).
	const fleetN = 256
	fleetDur := 30 * time.Second
	fr := measure(fmt.Sprintf("Fleet/n=%d", fleetN), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fl := fleet.New(fleet.Config{N: fleetN, Seed: 7, Workers: *workers})
			fl.Run(fleetDur)
		}
	})
	fr.SendersPerSec = fleetN / (float64(fr.NsPerOp) / 1e9)
	rep.Results = append(rep.Results, fr)

	pol, err := measurePolicy(*workers, *short)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: compiled policy:", err)
		os.Exit(1)
	}
	rep.Policy = pol

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
