// Command tracegen synthesizes cellular-like packet-delivery traces in
// mahimahi format (one millisecond timestamp per line) for use with
// cmd/netemu and the emulation library.
//
// Usage:
//
//	tracegen [-duration 60s] [-seed 1] [-min 0.5e6] [-max 8e6] [-outage 0.02] > cell.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"modelcc/internal/trace"
	"modelcc/internal/units"
)

func main() {
	duration := flag.Duration("duration", 60*time.Second, "trace length")
	seed := flag.Int64("seed", 1, "generator seed")
	min := flag.Float64("min", 0.5e6, "minimum rate (bits/second)")
	max := flag.Float64("max", 8e6, "maximum rate (bits/second)")
	outage := flag.Float64("outage", 0.02, "per-second outage probability")
	flag.Parse()

	cfg := trace.LTEConfig{
		Duration:   *duration,
		MinRate:    units.BitRate(*min),
		MaxRate:    units.BitRate(*max),
		OutageProb: *outage,
		OutageMax:  4 * time.Second,
	}
	tr := trace.GenLTE(cfg, *seed)
	if err := trace.Format(os.Stdout, tr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d opportunities, mean rate %v\n",
		len(tr.Opportunities), tr.MeanRate(12000))
}
