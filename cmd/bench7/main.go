// Command bench7 produces BENCH_7.json: the shard fault-tolerance
// benchmark record. It runs the sharded runtime under the
// deterministic shard-kill/stall schedule twice — with barrier
// checkpoints (warm failovers) and without (cold failovers) — and
// reports the recovery numbers the fault-tolerance PR is judged on:
//
//   - virtual-time MTTR: mean time from the kill barrier to the
//     restored generation's first acknowledged delivery;
//   - post-failover utility, warm vs cold (warm resumes the dead
//     generation's ack-clocked belief; a cold restart in a congested
//     regime has no ack clock and can starve outright);
//   - degraded-decision rate while shards are stalled;
//   - soak hygiene: the whole suite must finish with zero panics and
//     zero leaked goroutines.
//
// It also re-verifies the fault-path determinism invariant: the churn
// replay hash with injected shard crashes must be bit-identical for
// shards in {2, 4, 8}.
//
// Usage:
//
//	go run ./cmd/bench7 [-out BENCH_7.json] [-dur 60s] [-smoke]
//
// -smoke shrinks the runs for CI-speed validation of the harness; the
// committed BENCH_7.json comes from a full run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"modelcc/internal/experiments"
)

type faultPoint struct {
	Mode                string  `json:"mode"` // warm (checkpoints) or cold
	N                   int     `json:"n"`
	Shards              int     `json:"shards"`
	VirtualS            float64 `json:"virtual_s"`
	WallS               float64 `json:"wall_s"`
	ShardKills          int     `json:"shard_kills"`
	FlowsFailedOver     int     `json:"flows_failed_over"`
	WarmFailovers       int     `json:"warm_failovers"`
	HotFailovers        int     `json:"hot_failovers"`
	ColdFailovers       int     `json:"cold_failovers"`
	FencedAcks          int64   `json:"fenced_acks"`
	Stalls              int     `json:"stalls"`
	DegradedServed      int64   `json:"degraded_served"`
	DegradedPerVirtualS float64 `json:"degraded_per_virtual_s"`
	Recovered           int     `json:"recovered"`
	MTTRms              float64 `json:"mttr_ms"`
	PostFailoverUtility float64 `json:"post_failover_utility"`
	ReplayHash          string  `json:"replay_hash"`
}

type record struct {
	PR   int    `json:"pr"`
	At   string `json:"at"`
	Note string `json:"note"`
	Env  struct {
		GOMAXPROCS int `json:"gomaxprocs"`
		NumCPU     int `json:"numcpu"`
	} `json:"environment"`
	Points []faultPoint `json:"points"`
	// UtilityEdgeWarmMinusCold is mean post-failover utility, warm run
	// minus cold run (same seed, same kill schedule, same generation
	// lifetimes — the only difference is the restart rung).
	UtilityEdgeWarmMinusCold float64           `json:"utility_edge_warm_minus_cold"`
	RecoveredWarm            int               `json:"recovered_warm"`
	RecoveredCold            int               `json:"recovered_cold"`
	FaultHash                map[string]string `json:"fault_replay_hash"`
	HashOK                   bool              `json:"fault_hash_identity_ok"`
	GoroutinesBefore         int               `json:"goroutines_before"`
	GoroutinesAfter          int               `json:"goroutines_after"`
	LeakedGoroutines         int               `json:"leaked_goroutines"`
	Panics                   int               `json:"panics"`
}

func main() {
	out := flag.String("out", "BENCH_7.json", "output file")
	dur := flag.Duration("dur", 60*time.Second, "virtual duration per run")
	smoke := flag.Bool("smoke", false, "short runs: validate the harness, not the numbers")
	flag.Parse()

	var rec record
	rec.PR = 7
	rec.At = time.Now().UTC().Format(time.RFC3339)
	rec.Env.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rec.Env.NumCPU = runtime.NumCPU()
	rec.Note = "Shard fault tolerance (internal/shard fault.go): deterministic virtual-shard " +
		"kill/stall schedules drawn from chaos.Sub('shardfault') at window barriers. A killed " +
		"virtual shard's flows fail over onto the next surviving partition in ring order and " +
		"restore through the hot/warm/cold ladder; post-checkpoint in-flight sends of the dead " +
		"generation are fenced at the peek. mttr_ms is mean VIRTUAL time from kill barrier to the " +
		"restored generation's first delivery. The warm and cold rows share one seed, so kill " +
		"barriers and generation lifetimes are identical; the only difference is the restart rung. " +
		"In this chronically congested regime (buffer pinned full) a cold restart has no ack clock " +
		"and starves — its sends land on a full buffer — while warm restores resume the dead " +
		"generation's ack-clocked pending state and recover; utility_edge_warm_minus_cold and the " +
		"recovered_* counts quantify that edge. degraded_per_virtual_s is the Guard degradation " +
		"ladder's serving rate during drawn stalls. fault_replay_hash re-verifies determinism: the " +
		"kill/stall schedule, failovers and fences replay bit-identically for shards in {2, 4, 8}. " +
		"The suite must end with zero panics and zero leaked goroutines (Workers=1 keeps rollout " +
		"pools serial so any leak is the coordinator's)."

	n, d := 16, *dur
	if *smoke {
		d = 20 * time.Second
	}
	base := experiments.ShardChurnConfig{
		N: n, Shards: 4, Duration: d, Seed: 23, Workers: 1,
		NoChurn:       true,
		ShardKillProb: 0.3, ShardStallProb: 0.25,
		FaultEpoch: 5 * time.Second, MaxStall: time.Second,
	}

	rec.GoroutinesBefore = runtime.NumGoroutine()

	points := map[string]experiments.ShardChurnResult{}
	for _, mode := range []string{"warm", "cold"} {
		cfg := base
		cfg.Checkpoints = mode == "warm"
		start := time.Now()
		res := experiments.RunShardChurn(cfg)
		wall := time.Since(start).Seconds()
		points[mode] = res
		fo := res.Failover
		p := faultPoint{
			Mode: mode, N: n, Shards: res.Cfg.Shards, VirtualS: d.Seconds(), WallS: round3(wall),
			ShardKills: fo.ShardKills, FlowsFailedOver: fo.FlowsFailedOver,
			WarmFailovers: fo.WarmFailovers, HotFailovers: fo.HotFailovers, ColdFailovers: fo.ColdFailovers,
			FencedAcks: fo.FencedAcks, Stalls: fo.Stalls,
			DegradedServed:      res.DegradedServed,
			DegradedPerVirtualS: round3(float64(res.DegradedServed) / d.Seconds()),
			Recovered:           res.FailoverRecovered,
			MTTRms:              round3(float64(res.MTTR) / 1e6),
			PostFailoverUtility: round3(res.PostFailoverUtility),
			ReplayHash:          fmt.Sprintf("%016x", res.ReplayHash),
		}
		rec.Points = append(rec.Points, p)
		fmt.Printf("%s: kills=%d failedOver=%d (w=%d h=%d c=%d) fenced=%d recovered=%d mttr=%.0fms postUtil=%.3f degraded/s=%.2f\n",
			mode, p.ShardKills, p.FlowsFailedOver, p.WarmFailovers, p.HotFailovers, p.ColdFailovers,
			p.FencedAcks, p.Recovered, p.MTTRms, p.PostFailoverUtility, p.DegradedPerVirtualS)
	}
	rec.UtilityEdgeWarmMinusCold = round3(points["warm"].PostFailoverUtility - points["cold"].PostFailoverUtility)
	rec.RecoveredWarm = points["warm"].FailoverRecovered
	rec.RecoveredCold = points["cold"].FailoverRecovered

	// Fault-path determinism: the warm configuration replayed at
	// shards {2, 4, 8} must hash identically.
	rec.FaultHash = map[string]string{}
	for _, k := range []int{2, 4, 8} {
		cfg := base
		cfg.Checkpoints = true
		cfg.Shards = k
		res := experiments.RunShardChurn(cfg)
		rec.FaultHash[fmt.Sprintf("shards_%d", k)] = fmt.Sprintf("%016x", res.ReplayHash)
	}
	rec.HashOK = allEqual(rec.FaultHash)
	fmt.Printf("fault hash identity across shards {2,4,8}: %v\n", rec.HashOK)

	// Soak hygiene: every shard goroutine is joined per window and
	// Workers=1 keeps rollout pools serial, so the count must return
	// to the baseline. Reaching this line at all is the zero-panic
	// half of the check.
	runtime.GC()
	time.Sleep(100 * time.Millisecond)
	rec.GoroutinesAfter = runtime.NumGoroutine()
	rec.LeakedGoroutines = rec.GoroutinesAfter - rec.GoroutinesBefore
	if rec.LeakedGoroutines < 0 {
		rec.LeakedGoroutines = 0
	}
	rec.Panics = 0
	fmt.Printf("goroutines: %d before, %d after, %d leaked; panics: 0\n",
		rec.GoroutinesBefore, rec.GoroutinesAfter, rec.LeakedGoroutines)

	b, err := json.MarshalIndent(rec, "", " ")
	if err == nil {
		err = os.WriteFile(*out, append(b, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench7: %v\n", err)
		os.Exit(1)
	}
	fail := false
	if !rec.HashOK {
		fmt.Fprintln(os.Stderr, "bench7: FAULT HASH MISMATCH ACROSS SHARD COUNTS")
		fail = true
	}
	if rec.LeakedGoroutines > 0 {
		fmt.Fprintf(os.Stderr, "bench7: %d LEAKED GOROUTINES\n", rec.LeakedGoroutines)
		fail = true
	}
	if rec.UtilityEdgeWarmMinusCold < 0 {
		fmt.Fprintln(os.Stderr, "bench7: WARM FAILOVERS UNDERPERFORMED COLD")
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}

func allEqual(m map[string]string) bool {
	var first string
	for _, v := range m {
		if first == "" {
			first = v
		} else if v != first {
			return false
		}
	}
	return true
}

func round3(v float64) float64 {
	if v < 0 {
		return -float64(int(-v*1000+0.5)) / 1000
	}
	return float64(int(v*1000+0.5)) / 1000
}
