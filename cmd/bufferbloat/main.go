// Command bufferbloat reproduces the paper's Figure 1: round-trip time
// during a TCP download over a deeply buffered cellular-like link.
//
// Usage:
//
//	bufferbloat [-duration 250s] [-seed 3] [-buffer 2097152] [-variant reno] [-tsv] [-claims]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"modelcc/internal/experiments"
	"modelcc/internal/tcp"
)

func main() {
	duration := flag.Duration("duration", 250*time.Second, "virtual run length")
	seed := flag.Int64("seed", 3, "trace generator seed")
	buffer := flag.Int("buffer", 2<<20, "link buffer in bytes")
	variant := flag.String("variant", "reno", "tcp variant: tahoe, reno, newreno")
	tsv := flag.Bool("tsv", false, "emit raw RTT TSV instead of the plot")
	claims := flag.Bool("claims", false, "check the figure's qualitative claims (exit 1 on failure)")
	flag.Parse()

	var v tcp.Variant
	switch *variant {
	case "tahoe":
		v = tcp.Tahoe
	case "reno":
		v = tcp.Reno
	case "newreno":
		v = tcp.NewReno
	default:
		fmt.Fprintf(os.Stderr, "bufferbloat: unknown variant %q\n", *variant)
		os.Exit(2)
	}

	cfg := experiments.Fig1Config{
		Variant:     v,
		Duration:    *duration,
		BufferBytes: *buffer,
		Seed:        *seed,
	}
	res := experiments.RunFig1(cfg)

	if *tsv {
		fmt.Print(res.RTT.TSV())
	} else {
		fmt.Print(res.Render())
	}
	if *claims {
		report, ok := experiments.Fig1Claims(res, 50*time.Millisecond)
		fmt.Println()
		fmt.Print(report)
		if !ok {
			os.Exit(1)
		}
	}
}
