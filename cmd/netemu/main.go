// Command netemu is a mahimahi-style UDP link emulator: it listens on a
// UDP port, shapes client->target datagrams through a trace-driven
// bottleneck (queue, delay, stochastic loss), and relays target->client
// datagrams directly.
//
// Usage:
//
//	netemu -listen :9000 -target 127.0.0.1:9001 [-trace cell.trace] [-rate 120000] [-queue 1048576] [-delay 25ms] [-loss 0.0]
//
// With -trace the schedule comes from a mahimahi-format file; otherwise
// a constant -rate link is emulated.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"modelcc/internal/emu"
	"modelcc/internal/trace"
	"modelcc/internal/units"
)

func main() {
	listen := flag.String("listen", ":9000", "client-facing UDP address")
	target := flag.String("target", "", "upstream UDP address (required)")
	traceFile := flag.String("trace", "", "mahimahi-format delivery trace")
	rate := flag.Float64("rate", 120000, "constant link rate (bits/s) when no trace is given")
	queue := flag.Int("queue", 1<<20, "queue capacity in bytes")
	delay := flag.Duration("delay", 0, "one-way propagation delay")
	loss := flag.Float64("loss", 0, "stochastic loss probability")
	seed := flag.Int64("seed", 1, "loss process seed")
	flag.Parse()

	if *target == "" {
		fmt.Fprintln(os.Stderr, "netemu: -target is required")
		os.Exit(2)
	}

	var tr trace.Trace
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netemu:", err)
			os.Exit(1)
		}
		tr, err = trace.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "netemu:", err)
			os.Exit(1)
		}
	} else {
		tr = trace.Constant(units.BitRate(*rate), 12000)
	}

	proxy, err := emu.NewProxy(*listen, *target, emu.ProxyConfig{
		Trace:     tr,
		QueueBits: units.BytesToBits(*queue),
		Delay:     *delay,
		LossProb:  *loss,
		Seed:      *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "netemu:", err)
		os.Exit(1)
	}
	defer proxy.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "netemu: %v -> %s (mean rate %v)\n",
		proxy.Addr(), *target, tr.MeanRate(12000))
	go func() {
		tick := time.NewTicker(10 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				fmt.Fprintf(os.Stderr, "netemu: forwarded=%d dropped=%d lost=%d\n",
					proxy.Forwarded(), proxy.Dropped(), proxy.Lost())
			}
		}
	}()
	proxy.Run(ctx)
}
