// Command perfgate is the CI performance tripwire: it times one
// Fleet/n=256 run (the BenchmarkFleet workload) and fails when the
// senders-per-wall-second rate regresses more than the allowed fraction
// below the recorded baseline.
//
// The baseline is read from a BENCH_<n>.json record (default
// BENCH_6.json, the newest record carrying an honest Fleet/n=256
// measurement — BENCH_2's 85.9 senders/s predates the PolicyCache
// correctness fixes that made the cache stop over-hitting, so BENCH_4
// re-based the series at 18.9), from either the "current" or the
// "baseline" section, whichever carries the Fleet/n=256 entry.
//
// Usage:
//
//	go run ./cmd/perfgate [-bench BENCH_6.json] [-frac 0.7] [-runs 1]
//	                      [-n 256] [-dur 30s] [-shards 0]
//
// Exit status: 0 when the measured rate clears frac × baseline, 1 on a
// regression, 2 on usage or baseline-file errors. The gate is
// deliberately loose (default 30% slack) so host jitter does not flake
// CI; it exists to catch order-of-magnitude regressions in the fleet
// hot path, not single-digit drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"modelcc/internal/fleet"
	"modelcc/internal/shard"
)

type benchRecord struct {
	Baseline map[string]benchEntry `json:"baseline"`
	Current  map[string]benchEntry `json:"current"`
}

type benchEntry struct {
	SendersPerSec float64 `json:"senders_per_sec"`
}

func main() {
	benchFile := flag.String("bench", "BENCH_6.json", "benchmark record holding the Fleet/n=256 baseline")
	frac := flag.Float64("frac", 0.7, "fail when measured senders/s falls below this fraction of baseline")
	runs := flag.Int("runs", 1, "timed fleet runs; the best one is compared")
	n := flag.Int("n", 256, "fleet size (baseline key is Fleet/n=<n>)")
	dur := flag.Duration("dur", 30*time.Second, "virtual duration per run (the benchmark's window)")
	shards := flag.Int("shards", 0, "run on the sharded runtime with this many shards (0 = single-loop fleet, the baseline's engine)")
	flag.Parse()

	baseline, err := readBaseline(*benchFile, fmt.Sprintf("Fleet/n=%d", *n))
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfgate: %v\n", err)
		os.Exit(2)
	}

	best := 0.0
	for i := 0; i < *runs; i++ {
		start := time.Now()
		cfg := fleet.Config{N: *n, Seed: 7}
		if *shards > 0 {
			sf := shard.New(shard.Config{Fleet: cfg, Shards: *shards})
			sf.Run(*dur)
		} else {
			fl := fleet.New(cfg)
			fl.Run(*dur)
		}
		wall := time.Since(start).Seconds()
		if rate := float64(*n) / wall; rate > best {
			best = rate
		}
	}

	floor := *frac * baseline
	verdict := "ok"
	if best < floor {
		verdict = "REGRESSION"
	}
	fmt.Printf("perfgate: Fleet/n=%d %.1f senders/s (baseline %.1f, floor %.1f) %s\n",
		*n, best, baseline, floor, verdict)
	if best < floor {
		os.Exit(1)
	}
}

// readBaseline pulls the named benchmark's senders_per_sec from the
// record, preferring the "current" section (the PR's own measurement)
// over "baseline" (the prior PR's).
func readBaseline(path, key string) (float64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var rec benchRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		return 0, fmt.Errorf("%s: %v", path, err)
	}
	for _, sec := range []map[string]benchEntry{rec.Current, rec.Baseline} {
		if e, ok := sec[key]; ok && e.SendersPerSec > 0 {
			return e.SendersPerSec, nil
		}
	}
	return 0, fmt.Errorf("%s: no %s entry with senders_per_sec", path, key)
}
