// Command fleetsim runs N-sender fleet fairness sweeps: N coexisting
// ISENDERs share one bottleneck inside one process on the batching
// arbitration layer (internal/fleet), and the sweep reports Jain's
// fairness index, per-flow throughput/delay, and aggregate utility at
// each fleet size.
//
// Usage:
//
//	go run ./cmd/fleetsim [-n 2,4,16,64,256] [-dur 120s] [-seed 1]
//	                      [-alpha 1] [-rate 6000] [-fq] [-workers 0]
//	                      [-per-flow] [-no-cache]
//
// Examples:
//
//	go run ./cmd/fleetsim -n 2,16 -dur 60s       # quick look
//	go run ./cmd/fleetsim -fq                    # DRR fair-queue bottleneck
//	go run ./cmd/fleetsim -n 256 -per-flow       # every flow's numbers
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"modelcc/internal/experiments"
	"modelcc/internal/units"
)

func main() {
	ns := flag.String("n", "2,4,16,64,256", "comma-separated fleet sizes")
	dur := flag.Duration("dur", 120*time.Second, "virtual duration per run")
	seed := flag.Int64("seed", 1, "simulation seed")
	alpha := flag.Float64("alpha", 1, "cross-traffic priority α for every member")
	rate := flag.Float64("rate", 6000, "per-sender fair share in bits/s (link = N × rate)")
	fq := flag.Bool("fq", false, "DRR fair-queue bottleneck instead of tail-drop FIFO")
	workers := flag.Int("workers", 0, "shared rollout pool width (0 = GOMAXPROCS, 1 = serial); results are identical for any value")
	perFlow := flag.Bool("per-flow", false, "print every flow's throughput/delay/drops")
	noCache := flag.Bool("no-cache", false, "disable the fleet-wide shared policy cache")
	flag.Parse()

	var sizes []int
	for _, s := range strings.Split(*ns, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "fleetsim: bad fleet size %q\n", s)
			os.Exit(2)
		}
		sizes = append(sizes, n)
	}

	start := time.Now()
	res := experiments.FairnessSweep(experiments.FairnessConfig{
		Ns:            sizes,
		Duration:      *dur,
		Seed:          *seed,
		Alpha:         *alpha,
		PerSenderRate: units.BitRate(*rate),
		FairQueue:     *fq,
		Workers:       *workers,
		NoSharedCache: *noCache,
	})
	fmt.Print(res.Render())
	fmt.Printf("(%v wall)\n", time.Since(start).Round(time.Millisecond))

	if *perFlow {
		for _, p := range res.Points {
			fmt.Printf("\nN=%d per flow:\n%-6s %10s %10s %12s %12s %8s %14s\n",
				p.N, "flow", "pkt/s", "delivered", "delay(s)", "max dly(s)", "drops", "utility")
			for _, fs := range p.PerFlow {
				fmt.Printf("%-6d %10.4f %10d %12.3f %12.3f %8d %14.1f\n",
					fs.Flow, fs.Rate, fs.Delivered, fs.MeanDelay, fs.MaxDelay, fs.Drops, fs.Utility)
			}
		}
	}
}
