// Command fleetsim runs N-sender fleet simulations: N coexisting
// ISENDERs share one bottleneck inside one process on the batching
// arbitration layer (internal/fleet).
//
// Two modes:
//
//   - Fairness sweep (default): one steady fleet per size; reports
//     Jain's index, per-flow throughput/delay, aggregate utility. By
//     default each fleet runs on the sharded runtime (internal/shard):
//     one DES loop per CPU, coupled through the shared bottleneck by
//     deterministic windowed lookahead. Results are bit-identical
//     for every shard count >= 1. -shards 0 forces the default
//     single-loop fleet, whose arrival-order scheduling takes a
//     different (equally deterministic) trajectory.
//   - Churn (-churn): the fleet lives under a seeded churn schedule —
//     arrivals, departures, crash-kills — with the lifecycle
//     Supervisor checkpointing members and restarting casualties
//     through the hot/warm/cold ladder (internal/lifecycle). With
//     -shards K the barrier-aligned sharded lifecycle runs instead,
//     with barrier checkpoints (disable via -no-ckpt, mirror via
//     -checkpoint-dir) giving its restarts the same ladder.
//   - Shard faults (-shard-crash / -shard-stall): the sharded runtime
//     under the deterministic shard-kill/stall schedule — whole
//     virtual shards die at window barriers and fail over onto
//     survivors, stalled shards serve degraded through the Guard
//     ladder. -window-budget arms the wall-clock watchdog
//     (nondeterministic; keep it off when hashes matter).
//     -verify-shards "1,4" re-runs every point at each listed shard
//     count and fails unless the replay hashes agree bit for bit.
//
// Usage:
//
//	go run ./cmd/fleetsim [-n 2,4,16,64,256] [-dur 120s] [-seed 1]
//	                      [-alpha 1] [-rate 6000] [-fq] [-workers 0]
//	                      [-per-flow] [-no-cache] [-jain-floor 0]
//	                      [-shards N] [-lean]
//	                      [-cpuprofile f] [-memprofile f] [-trace f]
//	go run ./cmd/fleetsim -churn [-epoch 10s] [-depart .04] [-crash .06]
//	                      [-arrive .5] [-no-ckpt] [-checkpoint-dir d]
//	                      [-json out.json]
//	go run ./cmd/fleetsim -shard-crash [-shard-stall] [-shards K]
//	                      [-window-budget 0] [-verify-shards "1,4"]
//
// Examples:
//
//	go run ./cmd/fleetsim -n 2,16 -dur 60s         # quick look
//	go run ./cmd/fleetsim -fq                      # DRR fair-queue bottleneck
//	go run ./cmd/fleetsim -n 256 -per-flow         # every flow's numbers
//	go run ./cmd/fleetsim -churn -smoke            # CI churn soak
//	go run ./cmd/fleetsim -churn -shards 4 -smoke  # sharded-lifecycle soak
//	go run ./cmd/fleetsim -shards 4 -shard-crash -smoke   # failover soak
//	go run ./cmd/fleetsim -shard-crash -verify-shards 1,4 # failover determinism
//	go run ./cmd/fleetsim -n 256 -shards 8 -lean   # big fleet, flat heap
//	go run ./cmd/fleetsim -jain-floor 0.9          # exit 3 if any point under
//
// Exit status: 0 on success, 2 on usage errors, 3 when any point's
// Jain index falls below -jain-floor.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strconv"
	"strings"
	"time"

	"modelcc/internal/experiments"
	"modelcc/internal/units"
)

func main() {
	ns := flag.String("n", "", "comma-separated fleet sizes (default 2,4,16,64,256; churn default 4,16,64)")
	dur := flag.Duration("dur", 120*time.Second, "virtual duration per run")
	seed := flag.Int64("seed", 1, "simulation seed")
	alpha := flag.Float64("alpha", 1, "cross-traffic priority α for every member")
	rate := flag.Float64("rate", 6000, "per-sender fair share in bits/s (link = N × rate)")
	fq := flag.Bool("fq", false, "DRR fair-queue bottleneck instead of tail-drop FIFO")
	workers := flag.Int("workers", 0, "shared rollout pool width (0 = GOMAXPROCS, 1 = serial); results are identical for any value")
	perFlow := flag.Bool("per-flow", false, "print every flow's throughput/delay/drops (fairness mode)")
	noCache := flag.Bool("no-cache", false, "disable the fleet-wide shared policy cache (fairness mode)")
	jainFloor := flag.Float64("jain-floor", 0, "exit non-zero when any point's Jain index is below this floor")
	shards := flag.Int("shards", runtime.NumCPU(), "parallel DES shards per fleet (0 = single-loop fleet); results are bit-identical for any count >= 1")
	lean := flag.Bool("lean", false, "streaming statistics only: no per-packet series, flat heap at large N")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	traceFile := flag.String("trace", "", "write a runtime execution trace to this file")

	churn := flag.Bool("churn", false, "churn mode: supervised lifecycle run instead of a steady fairness sweep")
	epoch := flag.Duration("epoch", 10*time.Second, "churn decision period")
	depart := flag.Float64("depart", 0.04, "per-member per-epoch departure probability")
	crash := flag.Float64("crash", 0.06, "per-member per-epoch crash probability")
	arrive := flag.Float64("arrive", 0.5, "per-open-slot per-epoch arrival probability")
	noCkpt := flag.Bool("no-ckpt", false, "disable checkpoints: every restart cold instead of warm")
	ckptDir := flag.String("checkpoint-dir", "", "mirror member checkpoints to this directory")
	smoke := flag.Bool("smoke", false, "small fast churn soak for CI (overrides -n and -dur)")
	jsonOut := flag.String("json", "", "also write churn results as JSON to this file")
	shardCrash := flag.Bool("shard-crash", false, "sharded runtime: arm the deterministic shard-kill schedule (whole virtual shards fail over at barriers)")
	shardStall := flag.Bool("shard-stall", false, "sharded runtime: arm the deterministic stall schedule (stalled shards serve degraded)")
	windowBudget := flag.Duration("window-budget", 0, "sharded runtime: wall-clock watchdog budget per coupling window (0 off; nondeterministic)")
	verifyShards := flag.String("verify-shards", "", "comma-separated shard counts to re-run every point at; fail unless replay hashes agree")
	flag.Parse()

	stopProf, err := startProfiling(*cpuprofile, *memprofile, *traceFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetsim: %v\n", err)
		os.Exit(2)
	}
	exit := func(code int) {
		stopProf()
		os.Exit(code)
	}

	sizes, err := parseSizes(*ns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetsim: %v\n", err)
		exit(2)
	}

	// The churn path only goes sharded when -shards is set explicitly:
	// the default churn mode is the supervised single-loop lifecycle
	// (checkpoints, warm restarts), which the barrier-aligned sharded
	// lifecycle intentionally does not reproduce.
	shardsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			shardsSet = true
		}
	})

	faultMode := *shardCrash || *shardStall || *windowBudget > 0 || *verifyShards != ""
	if *churn || faultMode {
		if faultMode || (shardsSet && *shards > 0) {
			runShardChurn(shardChurnOpts{
				sizes: sizes, dur: *dur, seed: *seed, shards: *shards, workers: *workers,
				fq: *fq, lean: *lean,
				churn: *churn || !faultMode,
				epoch: *epoch, depart: *depart, crash: *crash, arrive: *arrive,
				noCkpt: *noCkpt, ckptDir: *ckptDir,
				shardCrash: *shardCrash, shardStall: *shardStall,
				windowBudget: *windowBudget, verifyShards: *verifyShards,
				smoke: *smoke, jsonOut: *jsonOut, exit: exit,
			})
		} else {
			runChurn(churnOpts{
				sizes: sizes, dur: *dur, seed: *seed, workers: *workers, fq: *fq,
				epoch: *epoch, depart: *depart, crash: *crash, arrive: *arrive,
				noCkpt: *noCkpt, ckptDir: *ckptDir, smoke: *smoke,
				jsonOut: *jsonOut, jainFloor: *jainFloor, exit: exit,
			})
		}
		exit(0)
	}

	if len(sizes) == 0 {
		sizes = []int{2, 4, 16, 64, 256}
	}
	start := time.Now()
	res := experiments.FairnessSweep(experiments.FairnessConfig{
		Ns:            sizes,
		Duration:      *dur,
		Seed:          *seed,
		Alpha:         *alpha,
		PerSenderRate: units.BitRate(*rate),
		FairQueue:     *fq,
		Workers:       *workers,
		NoSharedCache: *noCache,
		Shards:        *shards,
		LeanStats:     *lean,
	})
	fmt.Print(res.Render())
	fmt.Printf("(%v wall)\n", time.Since(start).Round(time.Millisecond))

	if *perFlow {
		for _, p := range res.Points {
			fmt.Printf("\nN=%d per flow:\n%-6s %10s %10s %12s %12s %12s %8s %14s\n",
				p.N, "flow", "pkt/s", "delivered", "delay(s)", "p99 dly(s)", "max dly(s)", "drops", "utility")
			for _, fs := range p.PerFlow {
				fmt.Printf("%-6d %10.4f %10d %12.3f %12.3f %12.3f %8d %14.1f\n",
					fs.Flow, fs.Rate, fs.Delivered, fs.MeanDelay, fs.P99Delay, fs.MaxDelay, fs.Drops, fs.Utility)
			}
		}
	}
	var jains []float64
	for _, p := range res.Points {
		jains = append(jains, p.Jain)
	}
	checkJainFloor(jains, *jainFloor, exit)
	exit(0)
}

// startProfiling arms the requested CPU profile / heap profile /
// execution trace. The returned stop function finishes all three; call
// it before every process exit.
func startProfiling(cpu, mem, tr string) (stop func(), err error) {
	var cpuF, trF *os.File
	if cpu != "" {
		if cpuF, err = os.Create(cpu); err != nil {
			return nil, err
		}
		if err = pprof.StartCPUProfile(cpuF); err != nil {
			return nil, err
		}
	}
	if tr != "" {
		if trF, err = os.Create(tr); err != nil {
			return nil, err
		}
		if err = trace.Start(trF); err != nil {
			return nil, err
		}
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if trF != nil {
			trace.Stop()
			trF.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err == nil {
				runtime.GC()
				err = pprof.WriteHeapProfile(f)
				f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "fleetsim: heap profile: %v\n", err)
			}
		}
	}, nil
}

type shardChurnOpts struct {
	sizes                  []int
	dur                    time.Duration
	seed                   int64
	shards, workers        int
	fq, lean               bool
	churn                  bool
	epoch                  time.Duration
	depart, crash, arrive  float64
	noCkpt                 bool
	ckptDir                string
	shardCrash, shardStall bool
	windowBudget           time.Duration
	verifyShards           string
	smoke                  bool
	jsonOut                string
	exit                   func(int)
}

// runShardChurn is the lifecycle mode on the sharded runtime: the
// barrier-aligned churn lifecycle and/or the deterministic shard-fault
// schedule, with barrier checkpoints arming the hot/warm/cold restart
// ladder. The replay hash is invariant across shard counts (except
// under -window-budget, whose wall-clock verdicts are inherently
// nondeterministic).
func runShardChurn(o shardChurnOpts) {
	sizes, dur := o.sizes, o.dur
	if o.smoke {
		sizes = []int{8}
		dur = 60 * time.Second
	} else if len(sizes) == 0 {
		sizes = []int{4, 16, 64}
	}
	base := experiments.ShardChurnConfig{
		Shards: o.shards, Duration: dur, Seed: o.seed,
		Epoch: o.epoch, DepartProb: o.depart, CrashProb: o.crash, ArriveProb: o.arrive,
		FairQueue: o.fq, Workers: o.workers, LeanStats: o.lean,
		NoChurn:     !o.churn,
		Checkpoints: !o.noCkpt, CheckpointDir: o.ckptDir,
		WindowBudget: o.windowBudget,
	}
	if o.shardCrash {
		base.ShardKillProb = 0.3
	}
	if o.shardCrash || o.shardStall {
		base.ShardStallProb = 0.25
	}
	if o.noCkpt {
		base.CheckpointDir = ""
	}

	verify, err := parseSizes(o.verifyShards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetsim: -verify-shards: %v\n", err)
		o.exit(2)
	}
	if len(verify) > 0 && o.windowBudget > 0 {
		fmt.Fprintln(os.Stderr, "fleetsim: -verify-shards cannot run under -window-budget (wall-clock verdicts are nondeterministic)")
		o.exit(2)
	}

	start := time.Now()
	var points []experiments.ShardChurnResult
	for _, n := range sizes {
		cfg := base
		cfg.N = n
		p := experiments.RunShardChurn(cfg)
		points = append(points, p)
		for _, k := range verify {
			if k == p.Cfg.Shards {
				continue
			}
			alt := base
			alt.N, alt.Shards = n, k
			if got := experiments.RunShardChurn(alt); got.ReplayHash != p.ReplayHash {
				fmt.Fprintf(os.Stderr, "fleetsim: N=%d replay hash diverges across shard counts: shards=%d %016x vs shards=%d %016x\n",
					n, p.Cfg.Shards, p.ReplayHash, k, got.ReplayHash)
				o.exit(1)
			}
		}
	}
	fmt.Print(experiments.RenderShardChurn(points))
	if len(verify) > 0 {
		fmt.Printf("replay hashes verified bit-identical across shards=%v\n", verify)
	}
	fmt.Printf("(%v wall)\n", time.Since(start).Round(time.Millisecond))
	for _, p := range points {
		if o.churn && p.Stats.Crashes+p.Stats.Departures+p.Stats.Arrivals == 0 {
			fmt.Fprintf(os.Stderr, "fleetsim: N=%d sharded churn produced no lifecycle events\n", p.Cfg.N)
			o.exit(1)
		}
		if o.shardCrash && p.Failover.ShardKills == 0 {
			fmt.Fprintf(os.Stderr, "fleetsim: N=%d shard-crash schedule produced no kills\n", p.Cfg.N)
			o.exit(1)
		}
		if (o.shardCrash || o.shardStall) && p.Failover.Stalls == 0 {
			fmt.Fprintf(os.Stderr, "fleetsim: N=%d stall schedule produced no stalls\n", p.Cfg.N)
			o.exit(1)
		}
		if p.Stats.CheckpointErrors > 0 {
			fmt.Fprintf(os.Stderr, "fleetsim: N=%d saw %d checkpoint errors\n", p.Cfg.N, p.Stats.CheckpointErrors)
			o.exit(1)
		}
	}
	if o.jsonOut != "" {
		b, err := json.MarshalIndent(points, "", "  ")
		if err == nil {
			err = os.WriteFile(o.jsonOut, b, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleetsim: writing %s: %v\n", o.jsonOut, err)
			o.exit(1)
		}
	}
}

type churnOpts struct {
	sizes                 []int
	dur                   time.Duration
	seed                  int64
	workers               int
	fq                    bool
	epoch                 time.Duration
	depart, crash, arrive float64
	noCkpt                bool
	ckptDir               string
	smoke                 bool
	jsonOut               string
	jainFloor             float64
	exit                  func(int)
}

func runChurn(o churnOpts) {
	sizes := o.sizes
	dur := o.dur
	if o.smoke {
		// One small fast point: enough churn to exercise teardown,
		// restart, and recycling under -race within a CI timeout.
		sizes = []int{8}
		dur = 60 * time.Second
	} else if len(sizes) == 0 {
		sizes = []int{4, 16, 64}
	}
	start := time.Now()
	res := experiments.ChurnSweep(experiments.ChurnSweepConfig{
		Ns: sizes,
		Base: experiments.ChurnConfig{
			Duration:      dur,
			Seed:          o.seed,
			Epoch:         o.epoch,
			DepartProb:    o.depart,
			CrashProb:     o.crash,
			ArriveProb:    o.arrive,
			Workers:       o.workers,
			FairQueue:     o.fq,
			NoCheckpoints: o.noCkpt,
			CheckpointDir: o.ckptDir,
		},
	})
	fmt.Print(res.Render())
	fmt.Printf("(%v wall)\n", time.Since(start).Round(time.Millisecond))

	for _, p := range res.Points {
		if p.CheckpointErrors > 0 {
			fmt.Fprintf(os.Stderr, "fleetsim: N=%d saw %d checkpoint errors\n", p.Cfg.N, p.CheckpointErrors)
			o.exit(1)
		}
	}
	if o.jsonOut != "" {
		b, err := json.MarshalIndent(res.Points, "", "  ")
		if err == nil {
			err = os.WriteFile(o.jsonOut, b, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleetsim: writing %s: %v\n", o.jsonOut, err)
			o.exit(1)
		}
	}
	var jains []float64
	for _, p := range res.Points {
		jains = append(jains, p.Jain)
	}
	checkJainFloor(jains, o.jainFloor, o.exit)
}

// checkJainFloor exits with status 3 when any point's fairness fell
// below the requested floor — the CI tripwire for fairness
// regressions.
func checkJainFloor(jains []float64, floor float64, exit func(int)) {
	if floor <= 0 {
		return
	}
	for i, j := range jains {
		if j < floor {
			fmt.Fprintf(os.Stderr, "fleetsim: point %d Jain %.4f below floor %.4f\n", i, j, floor)
			exit(3)
		}
	}
}

func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad fleet size %q", part)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}
