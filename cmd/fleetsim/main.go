// Command fleetsim runs N-sender fleet simulations: N coexisting
// ISENDERs share one bottleneck inside one process on the batching
// arbitration layer (internal/fleet).
//
// Two modes:
//
//   - Fairness sweep (default): one steady fleet per size; reports
//     Jain's index, per-flow throughput/delay, aggregate utility.
//   - Churn (-churn): the fleet lives under a seeded churn schedule —
//     arrivals, departures, crash-kills — with the lifecycle
//     Supervisor checkpointing members and restarting casualties
//     through the hot/warm/cold ladder (internal/lifecycle).
//
// Usage:
//
//	go run ./cmd/fleetsim [-n 2,4,16,64,256] [-dur 120s] [-seed 1]
//	                      [-alpha 1] [-rate 6000] [-fq] [-workers 0]
//	                      [-per-flow] [-no-cache] [-jain-floor 0]
//	go run ./cmd/fleetsim -churn [-epoch 10s] [-depart .04] [-crash .06]
//	                      [-arrive .5] [-no-ckpt] [-checkpoint-dir d]
//	                      [-json out.json]
//
// Examples:
//
//	go run ./cmd/fleetsim -n 2,16 -dur 60s         # quick look
//	go run ./cmd/fleetsim -fq                      # DRR fair-queue bottleneck
//	go run ./cmd/fleetsim -n 256 -per-flow         # every flow's numbers
//	go run ./cmd/fleetsim -churn -smoke            # CI churn soak
//	go run ./cmd/fleetsim -jain-floor 0.9          # exit 3 if any point under
//
// Exit status: 0 on success, 2 on usage errors, 3 when any point's
// Jain index falls below -jain-floor.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"modelcc/internal/experiments"
	"modelcc/internal/units"
)

func main() {
	ns := flag.String("n", "", "comma-separated fleet sizes (default 2,4,16,64,256; churn default 4,16,64)")
	dur := flag.Duration("dur", 120*time.Second, "virtual duration per run")
	seed := flag.Int64("seed", 1, "simulation seed")
	alpha := flag.Float64("alpha", 1, "cross-traffic priority α for every member")
	rate := flag.Float64("rate", 6000, "per-sender fair share in bits/s (link = N × rate)")
	fq := flag.Bool("fq", false, "DRR fair-queue bottleneck instead of tail-drop FIFO")
	workers := flag.Int("workers", 0, "shared rollout pool width (0 = GOMAXPROCS, 1 = serial); results are identical for any value")
	perFlow := flag.Bool("per-flow", false, "print every flow's throughput/delay/drops (fairness mode)")
	noCache := flag.Bool("no-cache", false, "disable the fleet-wide shared policy cache (fairness mode)")
	jainFloor := flag.Float64("jain-floor", 0, "exit non-zero when any point's Jain index is below this floor")

	churn := flag.Bool("churn", false, "churn mode: supervised lifecycle run instead of a steady fairness sweep")
	epoch := flag.Duration("epoch", 10*time.Second, "churn decision period")
	depart := flag.Float64("depart", 0.04, "per-member per-epoch departure probability")
	crash := flag.Float64("crash", 0.06, "per-member per-epoch crash probability")
	arrive := flag.Float64("arrive", 0.5, "per-open-slot per-epoch arrival probability")
	noCkpt := flag.Bool("no-ckpt", false, "disable checkpoints: every restart cold instead of warm")
	ckptDir := flag.String("checkpoint-dir", "", "mirror member checkpoints to this directory")
	smoke := flag.Bool("smoke", false, "small fast churn soak for CI (overrides -n and -dur)")
	jsonOut := flag.String("json", "", "also write churn results as JSON to this file")
	flag.Parse()

	sizes, err := parseSizes(*ns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetsim: %v\n", err)
		os.Exit(2)
	}

	if *churn {
		runChurn(churnOpts{
			sizes: sizes, dur: *dur, seed: *seed, workers: *workers, fq: *fq,
			epoch: *epoch, depart: *depart, crash: *crash, arrive: *arrive,
			noCkpt: *noCkpt, ckptDir: *ckptDir, smoke: *smoke,
			jsonOut: *jsonOut, jainFloor: *jainFloor,
		})
		return
	}

	if len(sizes) == 0 {
		sizes = []int{2, 4, 16, 64, 256}
	}
	start := time.Now()
	res := experiments.FairnessSweep(experiments.FairnessConfig{
		Ns:            sizes,
		Duration:      *dur,
		Seed:          *seed,
		Alpha:         *alpha,
		PerSenderRate: units.BitRate(*rate),
		FairQueue:     *fq,
		Workers:       *workers,
		NoSharedCache: *noCache,
	})
	fmt.Print(res.Render())
	fmt.Printf("(%v wall)\n", time.Since(start).Round(time.Millisecond))

	if *perFlow {
		for _, p := range res.Points {
			fmt.Printf("\nN=%d per flow:\n%-6s %10s %10s %12s %12s %8s %14s\n",
				p.N, "flow", "pkt/s", "delivered", "delay(s)", "max dly(s)", "drops", "utility")
			for _, fs := range p.PerFlow {
				fmt.Printf("%-6d %10.4f %10d %12.3f %12.3f %8d %14.1f\n",
					fs.Flow, fs.Rate, fs.Delivered, fs.MeanDelay, fs.MaxDelay, fs.Drops, fs.Utility)
			}
		}
	}
	var jains []float64
	for _, p := range res.Points {
		jains = append(jains, p.Jain)
	}
	checkJainFloor(jains, *jainFloor)
}

type churnOpts struct {
	sizes                 []int
	dur                   time.Duration
	seed                  int64
	workers               int
	fq                    bool
	epoch                 time.Duration
	depart, crash, arrive float64
	noCkpt                bool
	ckptDir               string
	smoke                 bool
	jsonOut               string
	jainFloor             float64
}

func runChurn(o churnOpts) {
	sizes := o.sizes
	dur := o.dur
	if o.smoke {
		// One small fast point: enough churn to exercise teardown,
		// restart, and recycling under -race within a CI timeout.
		sizes = []int{8}
		dur = 60 * time.Second
	} else if len(sizes) == 0 {
		sizes = []int{4, 16, 64}
	}
	start := time.Now()
	res := experiments.ChurnSweep(experiments.ChurnSweepConfig{
		Ns: sizes,
		Base: experiments.ChurnConfig{
			Duration:      dur,
			Seed:          o.seed,
			Epoch:         o.epoch,
			DepartProb:    o.depart,
			CrashProb:     o.crash,
			ArriveProb:    o.arrive,
			Workers:       o.workers,
			FairQueue:     o.fq,
			NoCheckpoints: o.noCkpt,
			CheckpointDir: o.ckptDir,
		},
	})
	fmt.Print(res.Render())
	fmt.Printf("(%v wall)\n", time.Since(start).Round(time.Millisecond))

	for _, p := range res.Points {
		if p.CheckpointErrors > 0 {
			fmt.Fprintf(os.Stderr, "fleetsim: N=%d saw %d checkpoint errors\n", p.Cfg.N, p.CheckpointErrors)
			os.Exit(1)
		}
	}
	if o.jsonOut != "" {
		b, err := json.MarshalIndent(res.Points, "", "  ")
		if err == nil {
			err = os.WriteFile(o.jsonOut, b, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleetsim: writing %s: %v\n", o.jsonOut, err)
			os.Exit(1)
		}
	}
	var jains []float64
	for _, p := range res.Points {
		jains = append(jains, p.Jain)
	}
	checkJainFloor(jains, o.jainFloor)
}

// checkJainFloor exits with status 3 when any point's fairness fell
// below the requested floor — the CI tripwire for fairness
// regressions.
func checkJainFloor(jains []float64, floor float64) {
	if floor <= 0 {
		return
	}
	for i, j := range jains {
		if j < floor {
			fmt.Fprintf(os.Stderr, "fleetsim: point %d Jain %.4f below floor %.4f\n", i, j, floor)
			os.Exit(3)
		}
	}
}

func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad fleet size %q", part)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}
