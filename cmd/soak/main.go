// Command soak drives the chaos-hardened runtime end to end and writes
// a machine-readable verdict (BENCH_3.json at the repository root).
//
// Two phases:
//
//  1. DES determinism: the standard fault menu replayed twice through
//     experiments.RunChaos must hash bit-identically and must exercise
//     belief-collapse recovery (Reseeded > 0).
//  2. Live soak: N transport senders run over loopback through chaotic
//     emu.Proxy instances — 30% ack-loss bursts on the return path,
//     reordering and corruption on both paths, a 2 s blackout a third of
//     the way in, and (flow 0) a jumping wall clock. Each flow also runs
//     a clean pass for baseline; the invariants are zero panics, zero
//     leaked goroutines, bounded heap, and post-blackout delivered
//     utility at ≥ 70% of the clean run's in the same window.
//
// Usage:
//
//	go run ./cmd/soak [-n 3] [-dur 60s] [-seed 1] [-out BENCH_3.json] [-smoke]
//
// -smoke shrinks the run to ~30 s of wall time (2 senders, 10 s passes)
// for CI. Exit status is non-zero when any invariant fails.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/chaos"
	"modelcc/internal/core"
	"modelcc/internal/emu"
	"modelcc/internal/experiments"
	"modelcc/internal/model"
	"modelcc/internal/planner"
	"modelcc/internal/trace"
	"modelcc/internal/transport"
	"modelcc/internal/utility"
)

// Check is one pass/fail invariant with its evidence.
type Check struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// FlowReport is one sender's clean-vs-chaos comparison.
type FlowReport struct {
	Flow int `json:"flow"`
	// CleanUtil/ChaosUtil are delivered utility (receiver-side, delay
	// discounted) inside the post-blackout window.
	CleanUtil float64 `json:"clean_util"`
	ChaosUtil float64 `json:"chaos_util"`
	Ratio     float64 `json:"ratio"`
	// Sender-side counters from the chaotic pass.
	Sent         int64 `json:"sent"`
	Acked        int64 `json:"acked"`
	DecodeErrors int64 `json:"decode_errors"`
	ReadRetries  int64 `json:"read_retries"`
	ClockClamps  int64 `json:"clock_clamps"`
	// Fault tallies from the chaotic proxy.
	Fwd chaos.Stats `json:"fwd"`
	Ack chaos.Stats `json:"ack"`
}

// Report is the whole soak run, written as BENCH_3.json.
type Report struct {
	At        time.Time    `json:"at"`
	Smoke     bool         `json:"smoke"`
	Senders   int          `json:"senders"`
	DurS      float64      `json:"pass_duration_s"`
	DESHashA  string       `json:"des_hash_a"`
	DESHashB  string       `json:"des_hash_b"`
	DESReseed int          `json:"des_reseeded"`
	Flows     []FlowReport `json:"flows"`
	GorBase   int          `json:"goroutines_base"`
	GorEnd    int          `json:"goroutines_end"`
	HeapBytes uint64       `json:"heap_alloc_bytes"`
	Checks    []Check      `json:"checks"`
	Pass      bool         `json:"pass"`
}

// desMenu is the standard fault menu on the DES path: bursty ~30% loss,
// stale reordering, corruption-as-drop, and a 2 s blackout.
func desMenu(seed int64) chaos.Config {
	return chaos.Config{
		Seed:         seed,
		DropProb:     0.03,
		BurstProb:    0.1,
		CorruptProb:  0.03,
		ReorderProb:  0.3,
		ReorderDelay: 2 * time.Second,
		Blackouts:    []chaos.Window{{Start: 20 * time.Second, Len: 2 * time.Second}},
	}
}

// desPrior is a small hypothesis grid around the DES truth (Fig2Actual),
// sized so two 120 s virtual runs finish in about a second.
func desPrior() model.Prior {
	return model.Prior{
		LinkRate:       model.PriorRange{Lo: 10000, Hi: 16000, N: 4},
		CrossFrac:      model.PriorRange{Lo: 0.4, Hi: 0.7, N: 2},
		LossProb:       model.PriorRange{Lo: 0, Hi: 0.2, N: 2},
		BufferCapBits:  model.PriorRange{Lo: 72000, Hi: 108000, N: 4},
		FullnessSteps:  2,
		MeanSwitch:     100 * time.Second,
		PingerMaybeOff: true,
	}
}

// livePrior models the proxy's constant 120 kbit/s link, like the
// transport loopback tests.
func livePrior() model.Prior {
	return model.Prior{
		LinkRate:      model.PriorRange{Lo: 60000, Hi: 180000, N: 5},
		BufferCapBits: model.PriorRange{Lo: 960000, Hi: 960000, N: 1},
		FullnessSteps: 1,
	}
}

func livePlan() planner.Config {
	cfg := planner.DefaultConfig()
	cfg.MaxDelay = 400 * time.Millisecond
	cfg.Grid = 50 * time.Millisecond
	cfg.Horizon = 5 * time.Second
	return cfg
}

// fwdMenu/ackMenu are the live proxy's standard menu: a mostly-clean
// forward path (reordering, light corruption, the blackout) and a return
// path with ~30% ack loss in bursts on top of it.
func fwdMenu(seed int64, blackout chaos.Window) chaos.Config {
	return chaos.Config{
		Seed:         seed,
		DropProb:     0.02,
		CorruptProb:  0.05,
		ReorderProb:  0.2,
		ReorderDelay: 60 * time.Millisecond,
		Blackouts:    []chaos.Window{blackout},
	}
}

func ackMenu(seed int64, blackout chaos.Window) chaos.Config {
	cfg := fwdMenu(seed+1000, blackout)
	cfg.BurstProb = 0.1 // ~25% of acks inside length-4 bursts, ~30% total loss
	return cfg
}

// flowResult is one pass of one flow.
type flowResult struct {
	util       float64 // delivered utility inside [winFrom, winTo)
	stats      transport.SenderStats
	fwd, ack   chaos.Stats
	senderErr  error
	receiveErr error
}

// runFlow executes one sender/receiver pair over loopback for dur,
// optionally through a chaotic proxy, and meters delivered utility at
// the receiver inside the given window (times relative to flow start).
func runFlow(seed int64, dur, winFrom, winTo time.Duration, faults, ackFaults *chaos.Config, jumpy bool) (flowResult, error) {
	var res flowResult

	recvConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return res, err
	}
	defer recvConn.Close()
	recv := transport.NewReceiver(recvConn)

	util := utility.Default()
	util.Alpha = 1
	var mu sync.Mutex
	start := time.Now()
	recv.OnData = func(seq, sentNanos, recvNanos int64) {
		at := time.Duration(recvNanos - start.UnixNano())
		if at < winFrom || at >= winTo {
			return
		}
		// Loopback: sender epoch ≈ flow start, so sender-relative stamps
		// and receiver wall clock share a base to within scheduling noise.
		delay := at - time.Duration(sentNanos)
		if delay < 0 {
			delay = 0
		}
		mu.Lock()
		res.util += 12000 * util.Discount(delay)
		mu.Unlock()
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); res.receiveErr = recv.Run(ctx) }()

	proxy, err := emu.NewProxy("127.0.0.1:0", recvConn.LocalAddr().String(), emu.ProxyConfig{
		Trace:     trace.Constant(120000, 12000), // 10 packets/s
		QueueBits: 120000,
		Seed:      seed,
		Chaos:     faults,
		AckChaos:  ackFaults,
	})
	if err != nil {
		cancel()
		wg.Wait()
		return res, err
	}
	defer proxy.Close()
	wg.Add(1)
	go func() { defer wg.Done(); proxy.Run(ctx) }()

	sndConn, err := net.DialUDP("udp", nil, proxy.Addr())
	if err != nil {
		cancel()
		proxy.Close()
		wg.Wait()
		return res, err
	}
	defer sndConn.Close()

	states, _ := livePrior().Enumerate()
	bel := belief.NewExact(states, belief.Config{SoftSigma: 30 * time.Millisecond, Recover: true})
	cs := core.NewSender(bel, livePlan())
	cs.Guard = planner.NewGuard(50*time.Millisecond, planner.NewPolicyCache(256))
	snd := transport.NewSender(sndConn, cs, 1500)
	if jumpy && faults != nil {
		jcfg := *faults
		// The backwards step lands after the blackout (wakes are dense
		// again) and is larger than any plausible wake spacing, so the
		// monotone clamp must observe it.
		jcfg.ClockJumps = []chaos.Jump{
			{At: dur / 4, Delta: 150 * time.Millisecond},
			{At: 3 * dur / 4, Delta: -time.Second},
		}
		snd.Clock = jcfg.Clock(func() time.Duration { return time.Since(start) })
	}

	res.stats, res.senderErr = snd.Run(ctx, dur)

	cancel()
	proxy.Close()
	wg.Wait()
	res.fwd, res.ack = proxy.ChaosStats()
	return res, nil
}

func main() {
	n := flag.Int("n", 3, "concurrent senders in the live soak")
	dur := flag.Duration("dur", 60*time.Second, "wall duration of each live pass (clean and chaotic)")
	seed := flag.Int64("seed", 1, "fault schedule seed")
	out := flag.String("out", "BENCH_3.json", "report path")
	smoke := flag.Bool("smoke", false, "CI smoke: 2 senders, 10 s passes (~30 s total)")
	flag.Parse()
	if *smoke {
		*n = 2
		*dur = 10 * time.Second
	}

	rep := Report{At: time.Now(), Smoke: *smoke, Senders: *n, DurS: dur.Seconds()}
	check := func(name string, pass bool, format string, args ...any) {
		rep.Checks = append(rep.Checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
		status := "PASS"
		if !pass {
			status = "FAIL"
		}
		fmt.Printf("%s %-24s %s\n", status, name, fmt.Sprintf(format, args...))
	}

	gorBase := runtime.NumGoroutine()
	rep.GorBase = gorBase

	// Phase 1: DES determinism + recovery under the standard menu.
	desUtil := utility.Default()
	desUtil.Alpha = 1
	desCfg := experiments.ChaosConfig{
		Base: experiments.ISenderConfig{
			Actual:        model.Fig2Actual(),
			PingerOnStart: true,
			Gate:          model.GateSquareWave,
			HalfPeriod:    100 * time.Second,
			Prior:         desPrior(),
			Utility:       desUtil,
			BeliefCfg:     belief.Config{Recover: true},
			Seed:          *seed,
			Duration:      120 * time.Second,
		},
		Faults: desMenu(*seed),
	}
	a := experiments.RunChaos(desCfg)
	b := experiments.RunChaos(desCfg)
	rep.DESHashA = fmt.Sprintf("%016x", a.Hash)
	rep.DESHashB = fmt.Sprintf("%016x", b.Hash)
	rep.DESReseed = a.Reseeded
	check("des-replay", a.Hash == b.Hash, "hash %s vs %s (sent=%d acked=%d)", rep.DESHashA, rep.DESHashB, a.Sent, a.Acked)
	check("des-recovery", a.Reseeded > 0, "belief reseeded %d times under the menu", a.Reseeded)

	// Phase 2: live soak — each flow runs a clean and a chaotic pass; the
	// flows themselves run concurrently.
	blackout := chaos.Window{Start: *dur / 3, Len: 2 * time.Second}
	winFrom := blackout.Start + blackout.Len + 500*time.Millisecond
	winTo := *dur

	type flowOut struct {
		clean, chaotic flowResult
		err            error
	}
	outs := make([]flowOut, *n)
	var wg sync.WaitGroup
	for i := 0; i < *n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fseed := *seed + int64(i)*17
			clean, err := runFlow(fseed, *dur, winFrom, winTo, nil, nil, false)
			if err != nil {
				outs[i].err = err
				return
			}
			fwd := fwdMenu(fseed, blackout)
			ack := ackMenu(fseed, blackout)
			chaotic, err := runFlow(fseed, *dur, winFrom, winTo, &fwd, &ack, i == 0)
			outs[i] = flowOut{clean: clean, chaotic: chaotic, err: err}
		}(i)
	}
	wg.Wait()

	for i, o := range outs {
		if o.err != nil {
			check(fmt.Sprintf("flow%d-run", i), false, "flow error: %v", o.err)
			continue
		}
		fr := FlowReport{
			Flow:         i,
			CleanUtil:    o.clean.util,
			ChaosUtil:    o.chaotic.util,
			Sent:         o.chaotic.stats.Sent,
			Acked:        o.chaotic.stats.Acked,
			DecodeErrors: o.chaotic.stats.DecodeErrors,
			ReadRetries:  o.chaotic.stats.ReadRetries,
			ClockClamps:  o.chaotic.stats.ClockClamps,
			Fwd:          o.chaotic.fwd,
			Ack:          o.chaotic.ack,
		}
		if o.clean.util > 0 {
			fr.Ratio = o.chaotic.util / o.clean.util
		}
		rep.Flows = append(rep.Flows, fr)
		check(fmt.Sprintf("flow%d-errors", i), o.clean.senderErr == nil && o.chaotic.senderErr == nil,
			"clean=%v chaos=%v", o.clean.senderErr, o.chaotic.senderErr)
		check(fmt.Sprintf("flow%d-progress", i), fr.Sent > 0 && fr.Acked > 0,
			"chaotic pass sent=%d acked=%d (fwd %+v; ack %+v)", fr.Sent, fr.Acked, fr.Fwd, fr.Ack)
		check(fmt.Sprintf("flow%d-recovery", i), o.clean.util > 0 && fr.Ratio >= 0.7,
			"post-blackout utility %.0f vs clean %.0f (ratio %.2f, floor 0.70)", fr.ChaosUtil, fr.CleanUtil, fr.Ratio)
		if i == 0 {
			check("flow0-clock-clamped", fr.ClockClamps > 0,
				"backwards clock jump clamped %d times", fr.ClockClamps)
		}
	}

	// Invariants: no goroutine leak (settle first — runtime timers and
	// pool workers wind down asynchronously) and bounded heap.
	deadline := time.Now().Add(5 * time.Second)
	gorEnd := runtime.NumGoroutine()
	for gorEnd > gorBase+2 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		gorEnd = runtime.NumGoroutine()
	}
	rep.GorEnd = gorEnd
	check("goroutines", gorEnd <= gorBase+2, "baseline %d, after soak %d", gorBase, gorEnd)

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rep.HeapBytes = ms.HeapAlloc
	check("heap", ms.HeapAlloc < 256<<20, "HeapAlloc %.1f MiB (bound 256 MiB)", float64(ms.HeapAlloc)/(1<<20))

	rep.Pass = true
	for _, c := range rep.Checks {
		if !c.Pass {
			rep.Pass = false
		}
	}

	j, err := json.MarshalIndent(rep, "", "  ")
	if err == nil {
		err = os.WriteFile(*out, append(j, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "soak: write report:", err)
		os.Exit(1)
	}
	fmt.Printf("soak: report written to %s (pass=%v)\n", *out, rep.Pass)
	if !rep.Pass {
		os.Exit(1)
	}
}
