// Benchmarks regenerating the paper's figures and the DESIGN.md ablation
// experiments. Run them all with
//
//	go test -bench=. -benchmem
//
// Each figure bench prints the series/summary the paper reports (once,
// on the first iteration) and then times the run, so the same target
// both regenerates the result and measures its cost. EXPERIMENTS.md
// records the measured outcomes.
package modelcc_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/experiments"
	"modelcc/internal/fleet"
	"modelcc/internal/model"
	"modelcc/internal/packet"
	"modelcc/internal/planner"
	"modelcc/internal/shard"
	"modelcc/internal/utility"
)

// benchDuration keeps figure benches affordable; the cmd/ tools run the
// full 300 s / 250 s versions.
const benchDuration = 120 * time.Second

// BenchmarkFig1 regenerates Figure 1: RTT during a TCP download over a
// deeply buffered LTE-like link (bufferbloat).
func BenchmarkFig1(b *testing.B) {
	printed := false
	for i := 0; i < b.N; i++ {
		cfg := experiments.Fig1Config{Duration: benchDuration, Seed: 3}
		res := experiments.RunFig1(cfg)
		if !printed {
			printed = true
			b.Logf("\n%s", res.Render())
			report, ok := experiments.Fig1Claims(res, 50*time.Millisecond)
			b.Logf("\n%s", report)
			if !ok {
				b.Error("Figure 1 claims failed")
			}
		}
	}
}

// BenchmarkFig3 regenerates Figure 3 with the paper's full §4 prior:
// sequence number vs time for each cross-traffic priority α.
func BenchmarkFig3(b *testing.B) {
	for _, alpha := range experiments.Fig3Alphas {
		b.Run(fmt.Sprintf("alpha=%g", alpha), func(b *testing.B) {
			printed := false
			for i := 0; i < b.N; i++ {
				res := experiments.RunISender(experiments.Fig3Config(alpha, 42, benchDuration))
				if !printed {
					printed = true
					b.Logf("alpha=%g: sent=%d acked=%d drops=%d/%d goodput=%v support(max)=%v",
						alpha, res.Sent, res.Acked, res.OwnBufferDrops, res.CrossBufferDrops,
						res.OwnThroughput, res.SupportSize.Max())
				}
			}
		})
	}
}

// BenchmarkSimpleConvergence regenerates the §4 simple-configuration
// result: tentative start, then sending at exactly the link speed.
func BenchmarkSimpleConvergence(b *testing.B) {
	printed := false
	for i := 0; i < b.N; i++ {
		res := experiments.RunSimple(11, benchDuration)
		if !printed {
			printed = true
			b.Logf("early=%.3f pkt/s late=%.3f pkt/s converged=%v",
				res.EarlyRate, res.LateRate, res.ConvergedToLinkSpeed)
		}
	}
}

// BenchmarkDrainFirst regenerates the §4 latency-penalty result: the
// sender drains the shared buffer before using the link.
func BenchmarkDrainFirst(b *testing.B) {
	printed := false
	for i := 0; i < b.N; i++ {
		res := experiments.RunDrain(13, 90*time.Second)
		if !printed {
			printed = true
			b.Logf("penalized first send %v vs unpenalized %v",
				res.PenalizedFirstSend, res.UnpenalizedFirstSend)
		}
	}
}

// BenchmarkBeliefScaling measures the §3.2 scalability observation
// ("maintaining more than a few million possible discrete channel
// configurations is impractical"): cost of one Bayesian update as the
// prior grows.
func BenchmarkBeliefScaling(b *testing.B) {
	for _, n := range []int{7, 13, 25, 49} {
		prior := model.Prior{
			LinkRate:      model.PriorRange{Lo: 8000, Hi: 20000, N: n},
			CrossFrac:     model.PriorRange{Lo: 0.4, Hi: 0.7, N: 4},
			LossProb:      model.PriorRange{Lo: 0, Hi: 0.2, N: 5},
			BufferCapBits: model.PriorRange{Lo: 72000, Hi: 108000, N: 4},
			FullnessSteps: 4,
			MeanSwitch:    100 * time.Second,
		}
		states, _ := prior.Enumerate()
		b.Run(fmt.Sprintf("hyps=%d", len(states)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				bel := belief.NewExact(states, belief.Config{})
				bel.RecordSend(model.Send{Seq: 0, At: 0})
				b.StartTimer()
				bel.Update(time.Second, []packet.Ack{{Seq: 0, ReceivedAt: time.Second}})
			}
		})
	}
}

// BenchmarkParticleVsExact compares the paper's exact rejection belief
// against the proposed particle filter on the same inference problem.
func BenchmarkParticleVsExact(b *testing.B) {
	prior := model.Fig3Prior()
	states, _ := prior.Enumerate()

	run := func(b *testing.B, mk func() belief.Belief) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			bel := mk()
			b.StartTimer()
			for s := int64(0); s < 5; s++ {
				at := time.Duration(s) * 2 * time.Second
				bel.RecordSend(model.Send{Seq: s, At: at})
				bel.Update(at+time.Second, []packet.Ack{{Seq: s, ReceivedAt: at + time.Second}})
			}
		}
	}
	b.Run("exact", func(b *testing.B) {
		run(b, func() belief.Belief { return belief.NewExact(states, belief.Config{}) })
	})
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("particle-%d", n), func(b *testing.B) {
			seed := int64(0)
			run(b, func() belief.Belief {
				seed++
				return belief.NewParticle(states, n, belief.Config{}, rand.New(rand.NewSource(seed)))
			})
		})
	}
}

// BenchmarkCoexistence runs the §3.5 extension experiments: two
// ISENDERs sharing a bottleneck, and an ISENDER against TCP Reno.
func BenchmarkCoexistence(b *testing.B) {
	b.Run("two-isenders", func(b *testing.B) {
		printed := false
		for i := 0; i < b.N; i++ {
			res := experiments.RunTwoISenders(17, benchDuration)
			if !printed {
				printed = true
				b.Logf("A=%.3f B=%.3f pkt/s Jain=%.3f drops=%d", res.ARate, res.BRate, res.JainIndex, res.Drops)
			}
		}
	})
	b.Run("isender-vs-tcp", func(b *testing.B) {
		printed := false
		for i := 0; i < b.N; i++ {
			res := experiments.RunISenderVsTCP(19, benchDuration)
			if !printed {
				printed = true
				b.Logf("isender=%.3f tcp=%.3f pkt/s drops=%d", res.ARate, res.BRate, res.Drops)
			}
		}
	})
}

// BenchmarkFleet measures the N-sender arbitration layer
// (internal/fleet): one whole fleet run per iteration — N coexisting
// ISENDERs on the shared rollout pool and policy cache — over a 30 s
// virtual window (large fleets amortize, so the window is shorter than
// the figure benches'). The ops/s × N gives senders simulated per wall
// second, the number cmd/benchjson records as the fleet-throughput
// metric.
func BenchmarkFleet(b *testing.B) {
	for _, n := range []int{16, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			printed := false
			for i := 0; i < b.N; i++ {
				fl := fleet.New(fleet.Config{N: n, Seed: 7})
				fl.Run(30 * time.Second)
				if !printed {
					printed = true
					hits, misses := fl.CacheStats()
					b.Logf("n=%d: drops=%d cache=%d/%d", n, fl.Drops(), hits, misses)
				}
			}
		})
	}
}

// BenchmarkFleetSharded measures the sharded runtime (internal/shard):
// the same fleet workload as BenchmarkFleet, split across K parallel
// per-shard DES loops coupled by windowed lookahead. Results are
// bit-identical to BenchmarkFleet's fleet for every K (the shard
// package's determinism tests pin this); the benchmark exists to price
// the coordination and to measure scaling where GOMAXPROCS > 1. Lean
// variants drop per-packet series retention — the heap knob that keeps
// N=4096 flat.
func BenchmarkFleetSharded(b *testing.B) {
	for _, c := range []struct {
		n, shards int
		lean      bool
	}{
		{256, 1, false},
		{256, 4, false},
		{256, 8, false},
		{1024, 8, true},
	} {
		name := fmt.Sprintf("n=%d/shards=%d", c.n, c.shards)
		if c.lean {
			name += "/lean"
		}
		b.Run(name, func(b *testing.B) {
			printed := false
			for i := 0; i < b.N; i++ {
				cfg := fleet.Config{N: c.n, Seed: 7, LeanStats: c.lean}
				if c.lean {
					cfg.LeanRateFrom = 15 * time.Second
				}
				sf := shard.New(shard.Config{Fleet: cfg, Shards: c.shards})
				sf.Run(30 * time.Second)
				if !printed {
					printed = true
					hits, misses := sf.CacheStats()
					b.Logf("n=%d shards=%d: drops=%d cache=%d/%d digest=%016x",
						c.n, c.shards, sf.Drops(), hits, misses, sf.Digest())
				}
			}
		})
	}
}

// BenchmarkPlannerDecide measures one action selection over a
// Fig3-sized support, with and without the §3.3 policy cache.
func BenchmarkPlannerDecide(b *testing.B) {
	states, _ := model.Fig3Prior().Enumerate()
	bel := belief.NewExact(states, belief.Config{})
	bel.RecordSend(model.Send{Seq: 0, At: 0})
	bel.Update(time.Second, []packet.Ack{{Seq: 0, ReceivedAt: time.Second}})
	cfg := planner.DefaultConfig()

	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			planner.Decide(bel.Support(), nil, time.Second, 1, cfg)
		}
	})
	b.Run("cached", func(b *testing.B) {
		pc := planner.NewPolicyCache(0)
		for i := 0; i < b.N; i++ {
			pc.Decide(bel.Support(), nil, time.Second, 1, cfg)
		}
	})
}

// BenchmarkParallelWorkers measures the rollout engine's scaling: one
// Bayesian update and one action selection over the Fig3 prior at
// increasing worker counts. Results are bit-identical across the row
// (asserted by the serial/parallel equivalence tests); on a single-core
// host the row only shows the pool's overhead. cmd/benchjson emits the
// same measurements as JSON for the per-PR BENCH_<n>.json record.
func BenchmarkParallelWorkers(b *testing.B) {
	states, _ := model.Fig3Prior().Enumerate()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("belief-update/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				bel := belief.NewExact(states, belief.Config{Workers: w})
				bel.RecordSend(model.Send{Seq: 0, At: 0})
				b.StartTimer()
				bel.Update(time.Second, []packet.Ack{{Seq: 0, ReceivedAt: time.Second}})
			}
		})
		b.Run(fmt.Sprintf("planner-decide/workers=%d", w), func(b *testing.B) {
			bel := belief.NewExact(states, belief.Config{Workers: w})
			bel.RecordSend(model.Send{Seq: 0, At: 0})
			bel.Update(time.Second, []packet.Ack{{Seq: 0, ReceivedAt: time.Second}})
			cfg := planner.DefaultConfig()
			cfg.Workers = w
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				planner.Decide(bel.Support(), nil, time.Second, 1, cfg)
			}
		})
	}
}

// BenchmarkPlannerHypotheses measures how planning cost scales with the
// support truncation MaxHyps — the knob DESIGN.md calls out as the
// planner's main approximation.
func BenchmarkPlannerHypotheses(b *testing.B) {
	states, _ := model.Fig3Prior().Enumerate()
	bel := belief.NewExact(states, belief.Config{})
	for _, k := range []int{16, 64, 256, 1024} {
		cfg := planner.DefaultConfig()
		cfg.MaxHyps = k
		b.Run(fmt.Sprintf("maxhyps=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				planner.Decide(bel.Support(), nil, 0, 0, cfg)
			}
		})
	}
}

// BenchmarkUtilityKappa is the ablation for the discount-timescale
// substitution recorded in DESIGN.md: Figure 3's α=1 run under
// different κ, reporting drops caused (the paper's no-overflow claim
// needs a near-linear utility).
func BenchmarkUtilityKappa(b *testing.B) {
	for _, kappa := range []time.Duration{time.Second, 10 * time.Second, 60 * time.Second} {
		b.Run(fmt.Sprintf("kappa=%s", kappa), func(b *testing.B) {
			printed := false
			for i := 0; i < b.N; i++ {
				cfg := experiments.Fig3Config(1.0, 42, benchDuration)
				cfg.Utility = utility.Config{Alpha: 1, Kappa: kappa}
				res := experiments.RunISender(cfg)
				if !printed {
					printed = true
					b.Logf("kappa=%v: drops=%d sent=%d acked=%d",
						kappa, res.OwnBufferDrops+res.CrossBufferDrops, res.Sent, res.Acked)
				}
			}
		})
	}
}
