// Package sim is the discrete-event simulation kernel underlying every
// experiment in the repository.
//
// The paper's evaluation embeds the ISENDER "in an event-driven network
// simulation" (§4); this package is that simulator's core: a virtual
// clock, a priority queue of timestamped events with deterministic
// tie-breaking, cancellable timers, and a seeded random source so every
// run is reproducible.
//
// Virtual time is a time.Duration measured from the start of the run.
// Events scheduled for the same instant fire in scheduling order, which
// makes runs deterministic regardless of map iteration or goroutine
// scheduling — the kernel is strictly single-goroutine.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Event is a scheduled callback. It is returned by Schedule so callers can
// cancel it. The zero value is inert.
type Event struct {
	at     time.Duration
	seq    uint64
	do     func()
	index  int // position in the heap, -1 once fired or cancelled
	cancel bool
}

// At reports the virtual time the event is (or was) scheduled for.
func (e *Event) At() time.Duration { return e.at }

// Cancelled reports whether Cancel has been called on the event.
func (e *Event) Cancelled() bool { return e == nil || e.cancel }

// Loop is a single-goroutine discrete-event loop. Create one with New.
type Loop struct {
	now     time.Duration
	nextSeq uint64
	pq      eventHeap
	rng     *rand.Rand
	fired   uint64
}

// New returns a Loop whose random source is seeded with seed. Two loops
// created with the same seed and fed the same schedule of events produce
// identical runs.
func New(seed int64) *Loop {
	return &Loop{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current virtual time.
func (l *Loop) Now() time.Duration { return l.now }

// Rand exposes the loop's deterministic random source. Elements that need
// randomness (LOSS, JITTER, INTERMITTENT, EITHER) draw from it so the whole
// run replays from the seed.
func (l *Loop) Rand() *rand.Rand { return l.rng }

// Fired reports how many events have executed so far; useful for
// measuring simulation cost in benchmarks.
func (l *Loop) Fired() uint64 { return l.fired }

// Pending reports how many events are currently scheduled (including
// cancelled ones that have not yet been reaped).
func (l *Loop) Pending() int { return len(l.pq) }

// Schedule registers do to run at virtual time at. Scheduling in the past
// (before Now) panics: that is always a logic error in an element, and
// silently reordering time corrupts every downstream result.
func (l *Loop) Schedule(at time.Duration, do func()) *Event {
	if at < l.now {
		panic(fmt.Sprintf("sim: scheduling into the past: at=%v now=%v", at, l.now))
	}
	if do == nil {
		panic("sim: nil event callback")
	}
	e := &Event{at: at, seq: l.nextSeq, do: do}
	l.nextSeq++
	heap.Push(&l.pq, e)
	return e
}

// After schedules do to run d from now. A non-positive d runs at the
// current instant (after already-queued events for this instant). A delay
// so large that now+d would overflow saturates to the maximum duration,
// i.e. "effectively never".
func (l *Loop) After(d time.Duration, do func()) *Event {
	if d < 0 {
		d = 0
	}
	at := l.now + d
	if at < l.now { // overflow
		at = time.Duration(math.MaxInt64)
	}
	return l.Schedule(at, do)
}

// Reschedule re-arms an event the caller owns exclusively: a fired or
// cancelled event is pushed back onto the queue, a still-pending one is
// moved to the new time. The event's callback is unchanged. This is the
// allocation-free path used by Timer and the delay-line elements — a
// caller that hands out *Event to third parties must not use it, because
// a stale handle would then refer to a live, reused event.
func (l *Loop) Reschedule(e *Event, at time.Duration) {
	if at < l.now {
		panic(fmt.Sprintf("sim: rescheduling into the past: at=%v now=%v", at, l.now))
	}
	if e.do == nil {
		panic("sim: rescheduling an event with no callback")
	}
	e.cancel = false
	e.at = at
	e.seq = l.nextSeq
	l.nextSeq++
	if e.index >= 0 {
		heap.Fix(&l.pq, e.index)
	} else {
		heap.Push(&l.pq, e)
	}
}

// Bind prepares an owned event for use with Reschedule without
// scheduling it. The returned event is inert until rescheduled.
func Bind(do func()) Event {
	if do == nil {
		panic("sim: nil event callback")
	}
	return Event{do: do, index: -1}
}

// Cancel prevents a scheduled event from firing. Cancelling a nil, fired,
// or already-cancelled event is a no-op, so callers can cancel
// unconditionally.
func (l *Loop) Cancel(e *Event) {
	if e == nil || e.cancel || e.index < 0 {
		if e != nil {
			e.cancel = true
		}
		return
	}
	e.cancel = true
	heap.Remove(&l.pq, e.index)
	e.index = -1
}

// Step fires the next event, advancing the clock to its timestamp. It
// reports false when no events remain.
func (l *Loop) Step() bool {
	for len(l.pq) > 0 {
		e := heap.Pop(&l.pq).(*Event)
		e.index = -1
		if e.cancel {
			continue
		}
		l.now = e.at
		l.fired++
		e.do()
		return true
	}
	return false
}

// PeekTime reports the timestamp of the next live (non-cancelled)
// event without firing it; ok is false when none is scheduled. The
// windowed-horizon coordinator (internal/shard) uses it to skip empty
// conservative windows: when every shard's next event lies beyond the
// current horizon, the coordinator can open the window containing the
// earliest one instead of grinding through silent windows one by one.
// Cancelled events at the head are reaped as a side effect.
func (l *Loop) PeekTime() (at time.Duration, ok bool) {
	for len(l.pq) > 0 {
		next := l.pq[0]
		if next.cancel {
			heap.Pop(&l.pq)
			next.index = -1
			continue
		}
		return next.at, true
	}
	return 0, false
}

// Run fires events until the queue is empty or the next event lies
// strictly beyond until; it then advances the clock to until. It reports
// the number of events fired.
func (l *Loop) Run(until time.Duration) uint64 {
	start := l.fired
	for len(l.pq) > 0 {
		next := l.pq[0]
		if next.cancel {
			heap.Pop(&l.pq)
			next.index = -1
			continue
		}
		if next.at > until {
			break
		}
		l.Step()
	}
	if l.now < until {
		l.now = until
	}
	return l.fired - start
}

// RunAll fires every remaining event. It guards against runaway
// self-scheduling with a generous cap and panics if the cap is hit, which
// in practice only happens when an element re-arms itself unconditionally.
func (l *Loop) RunAll() uint64 {
	const cap = 1 << 32
	start := l.fired
	for l.Step() {
		if l.fired-start > cap {
			panic("sim: RunAll exceeded event cap; an element is self-scheduling forever")
		}
	}
	return l.fired - start
}

// eventHeap is a min-heap on (at, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
