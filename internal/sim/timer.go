package sim

import "time"

// Timer is a re-armable single-shot timer bound to a Loop, the shape of
// state the ISENDER's "sleep until time t" action needs (§3.2): arming it
// again replaces the previous deadline, and Stop cancels it.
//
// The timer owns a single heap event for its whole lifetime and re-arms
// it in place (Loop.Reschedule), so arming is allocation-free no matter
// how often it fires — re-arming a retransmission timer per
// acknowledgment costs nothing.
//
// The zero value is not usable; create one with NewTimer.
type Timer struct {
	loop *Loop
	ev   Event
	fn   func()
}

// NewTimer returns a stopped timer that runs fn when it fires.
func NewTimer(l *Loop, fn func()) *Timer {
	if fn == nil {
		panic("sim: nil timer callback")
	}
	t := &Timer{loop: l, fn: fn}
	t.ev = Bind(func() { t.fn() })
	return t
}

// ArmAt sets the timer to fire at absolute virtual time at, replacing any
// previous deadline.
func (t *Timer) ArmAt(at time.Duration) {
	t.loop.Reschedule(&t.ev, at)
}

// Arm sets the timer to fire d from now, replacing any previous deadline.
func (t *Timer) Arm(d time.Duration) { t.ArmAt(t.loop.Now() + d) }

// Stop cancels the pending deadline, if any.
func (t *Timer) Stop() {
	t.loop.Cancel(&t.ev)
}

// Armed reports whether the timer currently has a pending deadline.
func (t *Timer) Armed() bool { return t.ev.index >= 0 && !t.ev.cancel }

// Deadline reports the pending deadline; ok is false when the timer is
// stopped.
func (t *Timer) Deadline() (at time.Duration, ok bool) {
	if !t.Armed() {
		return 0, false
	}
	return t.ev.at, true
}
