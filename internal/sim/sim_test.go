package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	l := New(1)
	var got []int
	l.Schedule(3*time.Second, func() { got = append(got, 3) })
	l.Schedule(1*time.Second, func() { got = append(got, 1) })
	l.Schedule(2*time.Second, func() { got = append(got, 2) })
	l.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if l.Now() != 3*time.Second {
		t.Errorf("Now() = %v, want 3s", l.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	l := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		l.Schedule(time.Second, func() { got = append(got, i) })
	}
	l.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events fired out of scheduling order: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	l := New(1)
	fired := false
	e := l.Schedule(time.Second, func() { fired = true })
	l.Cancel(e)
	l.RunAll()
	if fired {
		t.Error("cancelled event fired")
	}
	// Cancelling again, and cancelling nil, must be no-ops.
	l.Cancel(e)
	l.Cancel(nil)
}

func TestCancelDuringRun(t *testing.T) {
	l := New(1)
	var e2 *Event
	fired := false
	l.Schedule(time.Second, func() { l.Cancel(e2) })
	e2 = l.Schedule(2*time.Second, func() { fired = true })
	l.RunAll()
	if fired {
		t.Error("event cancelled by an earlier event still fired")
	}
}

func TestRunUntil(t *testing.T) {
	l := New(1)
	var got []int
	l.Schedule(1*time.Second, func() { got = append(got, 1) })
	l.Schedule(5*time.Second, func() { got = append(got, 5) })
	n := l.Run(3 * time.Second)
	if n != 1 || len(got) != 1 {
		t.Fatalf("Run(3s) fired %d events (%v), want 1", n, got)
	}
	if l.Now() != 3*time.Second {
		t.Errorf("Now() = %v, want 3s (clock advances to the horizon)", l.Now())
	}
	l.Run(10 * time.Second)
	if len(got) != 2 {
		t.Errorf("second Run did not fire the remaining event")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	l := New(1)
	l.Schedule(2*time.Second, func() {})
	l.RunAll()
	defer func() {
		if recover() == nil {
			t.Error("scheduling into the past did not panic")
		}
	}()
	l.Schedule(time.Second, func() {})
}

func TestNilCallbackPanics(t *testing.T) {
	l := New(1)
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	l.Schedule(time.Second, nil)
}

func TestAfterClampsNegative(t *testing.T) {
	l := New(1)
	l.Schedule(time.Second, func() {
		fired := false
		l.After(-5*time.Second, func() { fired = true })
		// The clamped event runs at the current instant, later in the
		// queue; step once more to pick it up.
		if !l.Step() || !fired {
			t.Error("After with negative delay did not fire at the current instant")
		}
	})
	l.RunAll()
}

func TestDeterministicRand(t *testing.T) {
	draw := func() []float64 {
		l := New(42)
		var out []float64
		for i := 0; i < 16; i++ {
			out = append(out, l.Rand().Float64())
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different random streams")
		}
	}
}

func TestSelfScheduling(t *testing.T) {
	l := New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			l.After(time.Second, tick)
		}
	}
	l.After(time.Second, tick)
	l.RunAll()
	if count != 100 {
		t.Errorf("ticker fired %d times, want 100", count)
	}
	if l.Now() != 100*time.Second {
		t.Errorf("Now() = %v, want 100s", l.Now())
	}
}

func TestTimerRearm(t *testing.T) {
	l := New(1)
	fires := 0
	tm := NewTimer(l, func() { fires++ })
	tm.Arm(5 * time.Second)
	tm.Arm(2 * time.Second) // replaces the 5s deadline
	if at, ok := tm.Deadline(); !ok || at != 2*time.Second {
		t.Fatalf("Deadline() = %v,%v want 2s,true", at, ok)
	}
	l.RunAll()
	if fires != 1 {
		t.Errorf("timer fired %d times, want 1 (re-arm must replace)", fires)
	}
	if tm.Armed() {
		t.Error("timer still armed after firing")
	}
}

func TestTimerStop(t *testing.T) {
	l := New(1)
	fires := 0
	tm := NewTimer(l, func() { fires++ })
	tm.Arm(time.Second)
	tm.Stop()
	if tm.Armed() {
		t.Error("stopped timer reports armed")
	}
	l.RunAll()
	if fires != 0 {
		t.Error("stopped timer fired")
	}
	// Stopping a stopped timer is fine.
	tm.Stop()
}

func TestTimerArmAt(t *testing.T) {
	l := New(1)
	var firedAt time.Duration
	tm := NewTimer(l, func() { firedAt = l.Now() })
	tm.ArmAt(7 * time.Second)
	l.RunAll()
	if firedAt != 7*time.Second {
		t.Errorf("timer fired at %v, want 7s", firedAt)
	}
}

func TestPendingAndFired(t *testing.T) {
	l := New(1)
	l.Schedule(time.Second, func() {})
	l.Schedule(2*time.Second, func() {})
	if l.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", l.Pending())
	}
	l.RunAll()
	if l.Fired() != 2 {
		t.Errorf("Fired() = %d, want 2", l.Fired())
	}
	if l.Pending() != 0 {
		t.Errorf("Pending() = %d after RunAll, want 0", l.Pending())
	}
}
