// A fixed-delay FIFO line: the allocation-free replacement for the
// "schedule one closure per packet" pattern that dominated the simulator's
// allocation profile. Because the delay is constant, items leave in the
// order they entered, so one re-armable timer and a ring buffer carry any
// number of in-flight items.
package sim

import "time"

// DelayLine delivers each pushed item to fn exactly d after it was
// pushed. Items are delivered in push order (a constant delay cannot
// reorder). The ring buffer and the single underlying timer are reused
// forever, so pushing is allocation-free once the ring has grown to the
// line's peak occupancy.
type DelayLine[T any] struct {
	loop *Loop
	d    time.Duration
	fn   func(T)
	ev   Event

	ring []delayed[T]
	head int
	n    int
}

type delayed[T any] struct {
	at time.Duration
	v  T
}

// NewDelayLine returns a delay line of d feeding fn.
func NewDelayLine[T any](l *Loop, d time.Duration, fn func(T)) *DelayLine[T] {
	if fn == nil {
		panic("sim: nil delay-line callback")
	}
	dl := &DelayLine[T]{loop: l, d: d, fn: fn}
	dl.ev = Bind(dl.fire)
	return dl
}

// Len reports how many items are currently in flight.
func (dl *DelayLine[T]) Len() int { return dl.n }

// Push enters v into the line; it will be delivered at now+d.
func (dl *DelayLine[T]) Push(v T) {
	at := dl.loop.Now() + dl.d
	if dl.n == len(dl.ring) {
		dl.grow()
	}
	dl.ring[(dl.head+dl.n)%len(dl.ring)] = delayed[T]{at: at, v: v}
	dl.n++
	if dl.n == 1 {
		dl.loop.Reschedule(&dl.ev, at)
	}
}

func (dl *DelayLine[T]) grow() {
	next := make([]delayed[T], max(4, 2*len(dl.ring)))
	for i := 0; i < dl.n; i++ {
		next[i] = dl.ring[(dl.head+i)%len(dl.ring)]
	}
	dl.ring = next
	dl.head = 0
}

func (dl *DelayLine[T]) fire() {
	e := dl.ring[dl.head]
	dl.ring[dl.head] = delayed[T]{} // release references for GC
	dl.head = (dl.head + 1) % len(dl.ring)
	dl.n--
	if dl.n > 0 {
		dl.loop.Reschedule(&dl.ev, dl.ring[dl.head].at)
	}
	dl.fn(e.v)
}
