package model

import (
	"testing"
	"time"
)

// FuzzStateHashClone drives State.Hash64, Key, CloneInto, and
// EqualDynamic with fuzzer-shaped states. In normal `go test` runs the
// checked-in seed corpus below executes as a regression test; under
// `go test -fuzz=FuzzStateHashClone ./internal/model/` the fuzzer
// explores further. Properties:
//
//   - CloneInto round-trips: the clone has the same Hash64, the same
//     Key, and EqualDynamic with its source, and mutating the clone's
//     queue does not write through to the source (no aliasing).
//   - Key/Hash64 agree on identity: states with different Keys must
//     not collide in Hash64 (a found collision would silently merge
//     distinct hypotheses in the belief's compaction map), and states
//     with equal Keys must hash equally (or compaction would fail to
//     merge what it may merge).
//   - CloneInto into a dirty reused destination (the rollout scratch
//     pattern) equals a fresh Clone.
func FuzzStateHashClone(f *testing.F) {
	// Seed corpus: empty queue, short queues, own/cross mixes, a long
	// queue exercising the QHead/compaction path, and adversarial
	// near-duplicates.
	f.Add(uint8(0), int64(0), int64(0), false, false, []byte{})
	f.Add(uint8(1), int64(12000), int64(3), true, true, []byte{1, 0, 1})
	f.Add(uint8(7), int64(96000), int64(-1), true, false, []byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1})
	f.Add(uint8(3), int64(1500*8), int64(41), false, true, []byte{1, 1, 0, 1, 0, 1, 0, 1, 1, 0, 1, 0, 1, 0, 1, 0, 1, 1, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0})
	f.Add(uint8(255), int64(1<<40), int64(1<<30), true, true, []byte{0xff, 0x00, 0xff})

	f.Fuzz(func(t *testing.T, paramsID uint8, bits int64, seq int64, pingerOn, serving bool, queueSpec []byte) {
		s := buildState(paramsID, bits, seq, pingerOn, serving, queueSpec)

		// Round-trip through CloneInto, including into a dirty dst.
		var dst State
		dst.Queue = append(dst.Queue, QPkt{Own: true, Seq: 1234, Bits: 999})
		s.CloneInto(&dst)
		fresh := s.Clone()

		if s.Hash64() != dst.Hash64() || s.Hash64() != fresh.Hash64() {
			t.Fatalf("clone hash mismatch: src=%x cloneInto=%x clone=%x", s.Hash64(), dst.Hash64(), fresh.Hash64())
		}
		if s.Key() != dst.Key() || s.Key() != fresh.Key() {
			t.Fatal("clone key mismatch")
		}
		if !s.EqualDynamic(&dst) || !dst.EqualDynamic(&s) {
			t.Fatal("clone not EqualDynamic with source")
		}
		if s.QueueBits != dst.QueueBits || s.QLen() != dst.QLen() {
			t.Fatalf("clone queue accounting: bits %d vs %d, len %d vs %d",
				s.QueueBits, dst.QueueBits, s.QLen(), dst.QLen())
		}

		// Mutating the clone must not reach the source.
		if dst.QLen() > 0 {
			before := s.Queued()[0]
			dst.Queue[0].Seq += 7
			if s.Queued()[0] != before {
				t.Fatal("CloneInto aliased the source queue")
			}
			dst.Queue[0].Seq -= 7
		}

		// Distinct keys must not collide in the compaction hash; equal
		// keys must agree. Compare against single-field perturbations.
		variants := []State{s.Clone(), s.Clone(), s.Clone(), s.Clone()}
		variants[0].PingerOn = !variants[0].PingerOn
		variants[1].Now += time.Nanosecond
		variants[2].ParamsID++
		if variants[3].QLen() > 0 {
			variants[3].Queue[variants[3].QHead].Own = !variants[3].Queue[variants[3].QHead].Own
		} else {
			variants[3].NextCross += time.Millisecond
		}
		for i := range variants {
			v := &variants[i]
			sameKey := v.Key() == s.Key()
			sameHash := v.Hash64() == s.Hash64()
			if sameKey != sameHash {
				t.Fatalf("variant %d: key-equal=%v but hash-equal=%v — compaction identity broken", i, sameKey, sameHash)
			}
			if sameKey {
				t.Fatalf("variant %d: perturbation did not change the canonical key", i)
			}
		}

		// Advancing the clone and the original identically keeps them
		// identical (determinism of Run given equal state).
		until := s.Now + 3*time.Second
		var ev1, ev2 []Event
		a, b := s.Clone(), fresh.Clone()
		a.Run(until, nil, &ev1)
		b.Run(until, nil, &ev2)
		if a.Hash64() != b.Hash64() || len(ev1) != len(ev2) {
			t.Fatal("identical states diverged under identical advance")
		}
	})
}

// buildState decodes fuzz inputs into a structurally valid State: the
// invariants the rest of the system guarantees by construction
// (QueueBits matches the queue, a serving link has an in-service
// packet, positive rates) are enforced here so the fuzzer explores
// reachable states rather than impossible ones.
func buildState(paramsID uint8, bits int64, seq int64, pingerOn, serving bool, queueSpec []byte) State {
	if bits <= 0 {
		bits = 12000
	}
	if bits > 1<<20 {
		bits = 1 << 20
	}
	p := Params{
		LinkRate:      12000,
		CrossRate:     8400,
		MeanSwitch:    30 * time.Second,
		BufferCapBits: 1 << 30,
	}
	s := Initial(p, pingerOn)
	s.ParamsID = int32(paramsID)
	s.Now = time.Duration(seq&0xffff) * time.Millisecond
	s.NextCross = s.Now + p.CrossInterval()
	s.NextToggle = s.Now + s.SwitchTick
	if serving {
		s.Serving = true
		s.InService = QPkt{Own: seq%2 == 0, Seq: seq, Bits: bits}
		s.ServiceDone = s.Now + time.Second
	} else {
		s.Serving = false
		s.InService = QPkt{}
		s.ServiceDone = 0
	}
	// Queue from the spec bytes: bit 0 = own, remaining bits vary size
	// and seq so adjacent entries differ.
	if len(queueSpec) > 256 {
		queueSpec = queueSpec[:256]
	}
	s.Queue = s.Queue[:0]
	s.QHead = 0
	s.QueueBits = 0
	for i, b := range queueSpec {
		q := QPkt{
			Own:        b&1 == 1,
			Seq:        seq + int64(i),
			Bits:       bits + int64(b>>1),
			EnqueuedAt: s.Now - time.Duration(i)*time.Millisecond,
		}
		if !q.Own {
			q.Seq = -1
		}
		s.Queue = append(s.Queue, q)
		s.QueueBits += q.Bits
	}
	// Exercise a nonzero QHead the way departures create one: extra
	// dead entries before the live window.
	if len(queueSpec) >= 4 {
		dead := QPkt{Own: false, Seq: -1, Bits: 1}
		s.Queue = append([]QPkt{dead, dead}, s.Queue...)
		s.QHead = 2
	}
	return s
}

// TestBuildStateSeedsValid double-checks the corpus builder maintains
// the queue-accounting invariant the fuzz properties rely on.
func TestBuildStateSeedsValid(t *testing.T) {
	s := buildState(3, 12000, 5, true, true, []byte{1, 0, 1, 0})
	var sum int64
	for _, q := range s.Queued() {
		sum += q.Bits
	}
	if sum != s.QueueBits {
		t.Fatalf("QueueBits %d != live queue sum %d", s.QueueBits, sum)
	}
	if s.QHead != 2 || s.QLen() != 4 {
		t.Fatalf("QHead=%d QLen=%d, want 2 and 4", s.QHead, s.QLen())
	}
}
