package model

import (
	"math/rand"

	"modelcc/internal/units"
	"testing"
	"testing/quick"
	"time"
)

// randWorkload builds a reproducible workload from quick's inputs.
type randWorkload struct {
	LinkKbit  uint8 // 8..40 kbit/s
	CrossFrac uint8 // 0..100 %
	CapPkts   uint8 // 1..16 packets
	FullPkts  uint8
	NSends    uint8
	GapMs     uint16
}

func (w randWorkload) sends() []Send {
	gap := time.Duration(200+int(w.GapMs%2000)) * time.Millisecond
	n := int(w.NSends % 40)
	out := make([]Send, n)
	for i := range out {
		out[i] = Send{Seq: int64(i), At: time.Duration(i+1) * gap}
	}
	return out
}

// TestConservationProperty: every sent packet is accounted for exactly
// once — delivered, buffer-dropped, or still in the system.
func TestConservationProperty(t *testing.T) {
	f := func(w randWorkload) bool {
		p := Params{
			LinkRate:      12000,
			CrossRate:     units.BitRate(12000 * float64(w.CrossFrac%101) / 100),
			BufferCapBits: (1 + int64(w.CapPkts%16)) * 12000,
		}
		p.InitFullBits = (int64(w.FullPkts) % (p.BufferCapBits/12000 + 1)) * 12000
		s := Initial(p, w.CrossFrac%2 == 0)
		sends := w.sends()
		horizon := 120 * time.Second
		var evs []Event
		s.Run(horizon, sends, &evs)

		delivered, dropped := 0, 0
		seen := map[int64]int{}
		for _, e := range evs {
			switch e.Kind {
			case OwnDelivered:
				delivered++
				seen[e.Seq]++
			case OwnBufferDrop:
				dropped++
				seen[e.Seq]++
			}
		}
		for _, n := range seen {
			if n != 1 {
				return false // a packet produced two outcomes
			}
		}
		return delivered+dropped+s.InFlightOwn() == len(sends)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestCloneKeyProperty: clones have equal keys; advancing the clone does
// not perturb the original's key.
func TestCloneKeyProperty(t *testing.T) {
	f := func(w randWorkload) bool {
		p := Params{
			LinkRate:      units.BitRate(10000 + float64(w.LinkKbit%7)*1000),
			CrossRate:     7000,
			BufferCapBits: 96000,
		}
		s := Initial(p, true)
		var evs []Event
		s.Run(3*time.Second, w.sends(), &evs)

		c := s.Clone()
		if c.Key() != s.Key() {
			return false
		}
		before := s.Key()
		var evs2 []Event
		c.Run(10*time.Second, nil, &evs2)
		return s.Key() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

// TestEnumWeightSumProperty: AdvanceEnum branch weights always sum to 1.
func TestEnumWeightSumProperty(t *testing.T) {
	f := func(meanS uint8, horizonS uint8) bool {
		p := Params{
			LinkRate:      12000,
			CrossRate:     8400,
			BufferCapBits: 96000,
			MeanSwitch:    time.Duration(1+meanS%200) * time.Second,
		}
		s := Initial(p, true)
		brs := AdvanceEnum(s, time.Duration(1+horizonS%8)*time.Second, nil)
		var sum float64
		for _, b := range brs {
			sum += b.W
		}
		return sum > 0.999999 && sum < 1.000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

// TestDeliveryOrderProperty: own deliveries are in sequence order and
// non-decreasing in time (FIFO through a single queue).
func TestDeliveryOrderProperty(t *testing.T) {
	f := func(w randWorkload) bool {
		p := Params{
			LinkRate:      12000,
			CrossRate:     6000,
			BufferCapBits: 96000,
		}
		s := Initial(p, true)
		var evs []Event
		s.Run(300*time.Second, w.sends(), &evs)
		lastSeq := int64(-1)
		lastAt := time.Duration(-1)
		for _, e := range evs {
			if e.Kind != OwnDelivered {
				continue
			}
			if e.Seq <= lastSeq || e.At < lastAt {
				return false
			}
			lastSeq, lastAt = e.Seq, e.At
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}
