// Package model implements the inference-side network model: a compact,
// cloneable, deterministic-given-outcomes automaton over the paper's
// element language (§3.1–3.2).
//
// The belief (internal/belief) needs thousands of cheap copies of "a
// possible network". A closure-based discrete-event simulator is hostile
// to cloning, so this package represents one network hypothesis as a
// value type — State — holding the unknown parameters (Params) plus the
// dynamic state of the Figure 2 element composition:
//
//	PINGER(r) -> INTERMITTENT(t) -> \
//	                                 BUFFER(cap, fullness) -> THROUGHPUT(c) -> LOSS(p) -> receivers
//	ISENDER   ------------------> /
//
// Nondeterminism is surfaced, not drawn: inference enumerates weighted
// branches at pinger switch opportunities (AdvanceEnum), while ground
// truth (Truth) samples the same mechanics from a seeded RNG. Stochastic
// loss is modeled at the "last mile", after the queue and link, so — as
// the paper observes (§3.2) — its consequences do not linger in the
// network state: loss never forks a State, it only weights the
// consistency of observations (belief) or gates actual deliveries
// (truth).
package model

import (
	"time"

	"modelcc/internal/packet"
	"modelcc/internal/units"
)

// Params holds the static unknowns of one network hypothesis — the
// quantities the paper's prior ranges over (§4) plus the clock-skew
// extension flagged as future work in §3.4.
type Params struct {
	// LinkRate is c, the bottleneck THROUGHPUT speed in bits/second.
	LinkRate units.BitRate
	// CrossRate is the PINGER's rate in bits/second. The paper expresses
	// it as a fraction of c (r ∈ [0.4c, 0.7c]).
	CrossRate units.BitRate
	// MeanSwitch is t, the INTERMITTENT gate's mean time to switch.
	// Zero means the gate never switches.
	MeanSwitch time.Duration
	// LossProb is p, the last-mile LOSS element's drop probability.
	LossProb float64
	// BufferCapBits is the BUFFER capacity in bits.
	BufferCapBits int64
	// InitFullBits is the BUFFER's initial fullness in bits (filler
	// packets of unknown provenance, quantized to whole packets).
	InitFullBits int64
	// ClockSkew scales the receiver clock: a delivery at sender time t
	// is reported at t*(1+ClockSkew). Zero (the paper's assumption of
	// synchronized clocks) unless the skew extension is exercised.
	ClockSkew float64
	// PktBytes is the uniform packet size (§3.2); 0 means the 1500-byte
	// default.
	PktBytes int
	// CrossPktBits is the modeled size of one cross-traffic emission; 0
	// means one uniform packet (the paper's PINGER). The fleet
	// experiments raise it so a sender modeling hundreds of competitors
	// aggregates their traffic into coarse chunks at the same rate:
	// hypothesis advance cost stays bounded as the competitor count
	// grows, at the price of delivery-time quantization the soft
	// observation likelihood absorbs.
	CrossPktBits int64
}

// PktBits reports the uniform packet size in bits.
func (p Params) PktBits() int64 {
	if p.PktBytes <= 0 {
		return packet.DefaultSizeBits
	}
	return units.BytesToBits(p.PktBytes)
}

// CrossBits reports the size of one modeled cross-traffic emission.
func (p Params) CrossBits() int64 {
	if p.CrossPktBits > 0 {
		return p.CrossPktBits
	}
	return p.PktBits()
}

// CrossInterval reports the PINGER emission interval, one cross
// emission's bits at CrossRate. A non-positive CrossRate means no cross
// traffic; the interval is then Forever.
func (p Params) CrossInterval() time.Duration {
	if p.CrossRate <= 0 {
		return units.Forever
	}
	return units.TransmitTime(p.CrossBits(), p.CrossRate)
}

// ServiceTime reports how long one packet occupies the bottleneck link.
func (p Params) ServiceTime() time.Duration {
	return units.TransmitTime(p.PktBits(), p.LinkRate)
}

// Fig2Actual returns the true network parameters of the paper's §4
// experiment: c = 12,000 bits/s, r = 0.7c, p = 0.2, a 96,000-bit buffer
// starting empty. MeanSwitch is left at the prior's 100 s even though the
// true gate is a deterministic square wave — reproducing the paper's
// deliberate model mismatch.
func Fig2Actual() Params {
	return Params{
		LinkRate:      12000,
		CrossRate:     0.7 * 12000,
		MeanSwitch:    100 * time.Second,
		LossProb:      0.2,
		BufferCapBits: 96000,
		InitFullBits:  0,
	}
}
