package model

import (
	"testing"
	"time"
)

func TestPriorRangeValues(t *testing.T) {
	r := PriorRange{10000, 16000, 7}
	vals := r.Values()
	if len(vals) != 7 {
		t.Fatalf("len = %d", len(vals))
	}
	if vals[0] != 10000 || vals[6] != 16000 {
		t.Errorf("endpoints = %v, %v", vals[0], vals[6])
	}
	if vals[2] != 12000 {
		t.Errorf("grid must include the true value 12000, got %v", vals[2])
	}
	// Degenerate ranges.
	if got := (PriorRange{5, 5, 3}).Values(); len(got) != 1 || got[0] != 5 {
		t.Errorf("degenerate range = %v", got)
	}
	if got := (PriorRange{5, 9, 0}).Values(); len(got) != 1 || got[0] != 5 {
		t.Errorf("N=0 range = %v", got)
	}
}

func TestFig3PriorContainsTruth(t *testing.T) {
	states, w := Fig3Prior().Enumerate()
	if len(states) == 0 {
		t.Fatal("empty prior")
	}
	wantN := 7 * 4 * 5 * 4 * 4 * 2
	if len(states) != wantN {
		t.Errorf("prior size = %d, want %d", len(states), wantN)
	}
	if wTotal := w * float64(len(states)); wTotal < 0.999999 || wTotal > 1.000001 {
		t.Errorf("weights sum to %v", wTotal)
	}
	truth := Fig2Actual()
	found := false
	for _, s := range states {
		if s.P.LinkRate == truth.LinkRate &&
			s.P.CrossRate == truth.CrossRate &&
			s.P.LossProb == truth.LossProb &&
			s.P.BufferCapBits == truth.BufferCapBits &&
			s.P.InitFullBits == truth.InitFullBits &&
			s.PingerOn {
			found = true
			break
		}
	}
	if !found {
		t.Error("prior does not include the true Fig2 parameters (paper requires it)")
	}
}

func TestPriorParamsIDSharedAcrossGateStates(t *testing.T) {
	states, _ := Fig3Prior().Enumerate()
	// Consecutive on/off pairs share a ParamsID but differ in gate state.
	byID := map[int32][]State{}
	for _, s := range states {
		byID[s.ParamsID] = append(byID[s.ParamsID], s)
	}
	for id, group := range byID {
		if len(group) != 2 {
			t.Fatalf("ParamsID %d has %d states, want 2 (on/off)", id, len(group))
		}
		if group[0].PingerOn == group[1].PingerOn {
			t.Fatalf("ParamsID %d gate states not distinct", id)
		}
	}
}

func TestTruthSquareWaveTogglesDeterministically(t *testing.T) {
	p := Fig2Actual()
	tr := NewTruth(p, true, GateSquareWave, 100*time.Second, newTestRand())
	tr.AdvanceTo(50*time.Second, nil)
	if !tr.PingerOn() {
		t.Error("gate off before first half period")
	}
	tr.AdvanceTo(150*time.Second, nil)
	if tr.PingerOn() {
		t.Error("gate on during second half period")
	}
	tr.AdvanceTo(250*time.Second, nil)
	if !tr.PingerOn() {
		t.Error("gate off during third half period")
	}
}

func TestTruthLossRate(t *testing.T) {
	p := fixedParams()
	p.LossProb = 0.2
	tr := NewTruth(p, false, GateFixed, 0, newTestRand())
	var sends []Send
	// One packet per 2 seconds: no queueing, 5000 packets.
	for i := int64(0); i < 5000; i++ {
		sends = append(sends, Send{Seq: i, At: time.Duration(i) * 2 * time.Second})
	}
	evs := tr.AdvanceTo(12000*time.Second, sends)
	var delivered, lost int
	for _, e := range evs {
		switch e.Kind {
		case OwnDelivered:
			delivered++
		case OwnLost:
			lost++
		}
	}
	if delivered+lost != 5000 {
		t.Fatalf("delivered+lost = %d, want 5000", delivered+lost)
	}
	frac := float64(lost) / 5000
	if frac < 0.17 || frac > 0.23 {
		t.Errorf("empirical loss = %.3f, want ~0.2", frac)
	}
	if tr.OwnDeliveredN != delivered || tr.OwnLostN != lost {
		t.Error("truth stats disagree with events")
	}
}

func TestTruthMemorylessSwitches(t *testing.T) {
	p := fixedParams()
	p.CrossRate = 8400
	p.MeanSwitch = 10 * time.Second
	tr := NewTruth(p, true, GateMemoryless, 0, newTestRand())
	changes := 0
	last := tr.PingerOn()
	for i := 0; i < 100; i++ {
		tr.AdvanceTo(time.Duration(i+1)*10*time.Second, nil)
		if tr.PingerOn() != last {
			changes++
			last = tr.PingerOn()
		}
	}
	if changes < 10 {
		t.Errorf("memoryless gate changed %d times over 1000s with 10s mean; want many", changes)
	}
}

func TestTruthFixedNeverSwitches(t *testing.T) {
	p := fixedParams()
	p.CrossRate = 8400
	p.MeanSwitch = time.Second
	tr := NewTruth(p, true, GateFixed, 0, newTestRand())
	tr.AdvanceTo(1000*time.Second, nil)
	if !tr.PingerOn() {
		t.Error("fixed gate switched")
	}
}
