package model

import (
	"math"
	"math/rand"
	"time"

	"modelcc/internal/units"
)

// GateSchedule controls how a Truth's INTERMITTENT gate actually behaves.
// The paper's Figure 3 experiment deliberately violates the sender's
// model: the ISENDER believes the gate is memoryless with a 100 s mean,
// but "in reality we switch deterministically every 100 seconds".
type GateSchedule uint8

// Gate schedules.
const (
	// GateMemoryless switches with exponential holding times of mean
	// Params.MeanSwitch — the behaviour the model assumes.
	GateMemoryless GateSchedule = iota
	// GateSquareWave toggles deterministically every HalfPeriod — the
	// paper's ground truth.
	GateSquareWave
	// GateFixed never switches.
	GateFixed
)

// Truth is the actual network: the same mechanics as a hypothesis State,
// but nondeterminism is *sampled* from a seeded RNG instead of
// enumerated. It produces the real packet outcomes that become the
// ISENDER's observations.
type Truth struct {
	// S is the underlying network state.
	S   State
	rng *rand.Rand

	schedule   GateSchedule
	halfPeriod time.Duration
	nextToggle time.Duration

	// Stats accumulated over the run, for experiment reporting.
	OwnDeliveredN      int
	OwnLostN           int
	OwnBufferDropN     int
	CrossDeliveredN    int
	CrossLostN         int
	CrossBufferDropN   int
	CrossDeliveredBits int64
}

// NewTruth returns the real network with the given actual parameters,
// gate schedule, and RNG. For GateSquareWave, halfPeriod sets the toggle
// interval (the gate starts connected if pingerOn). For GateMemoryless
// the first holding time is drawn immediately.
func NewTruth(p Params, pingerOn bool, schedule GateSchedule, halfPeriod time.Duration, rng *rand.Rand) *Truth {
	t := &Truth{
		S:          Initial(p, pingerOn),
		rng:        rng,
		schedule:   schedule,
		halfPeriod: halfPeriod,
	}
	// The truth does not use the inference grid.
	t.S.SwitchTick = 0
	switch schedule {
	case GateSquareWave:
		t.nextToggle = halfPeriod
	case GateMemoryless:
		t.nextToggle = t.drawHold()
	case GateFixed:
		t.nextToggle = units.Forever
	}
	return t
}

func (t *Truth) drawHold() time.Duration {
	if t.S.P.MeanSwitch <= 0 {
		return units.Forever
	}
	u := t.rng.Float64()
	return t.S.Now + units.SecondsToDuration(-math.Log(1-u)*t.S.P.MeanSwitch.Seconds())
}

// PingerOn reports the actual gate state.
func (t *Truth) PingerOn() bool { return t.S.PingerOn }

// NextTransition reports the earliest future instant at which the real
// network does something on its own: a service completion (a potential
// acknowledgment), a pinger emission, or a gate toggle. Experiment
// runners advance the truth in exact steps to min(NextTransition, next
// sender wakeup), so no event is ever skipped over.
func (t *Truth) NextTransition() time.Duration {
	next := t.nextToggle
	if t.S.Serving && t.S.ServiceDone < next {
		next = t.S.ServiceDone
	}
	if t.S.NextCross < next {
		next = t.S.NextCross
	}
	return next
}

// AdvanceTo advances the real network to `until`, injecting the given
// own-packet sends (sorted by At), and returns the actual packet events.
// OwnDelivered/CrossDelivered events have already survived the LOSS
// element — losses are reported as OwnLost/CrossLost.
func (t *Truth) AdvanceTo(until time.Duration, sends []Send) []Event {
	var raw []Event
	si := 0
	for t.nextToggle <= until {
		at := t.nextToggle
		hi := si
		for hi < len(sends) && sends[hi].At <= at {
			hi++
		}
		t.S.Run(at, sends[si:hi], &raw)
		si = hi
		t.S.Toggle()
		switch t.schedule {
		case GateSquareWave:
			t.nextToggle += t.halfPeriod
		case GateMemoryless:
			t.nextToggle = t.drawHold()
		default:
			t.nextToggle = units.Forever
		}
	}
	t.S.Run(until, sends[si:], &raw)

	// Apply last-mile loss to deliveries.
	out := make([]Event, 0, len(raw))
	for _, ev := range raw {
		switch ev.Kind {
		case OwnDelivered:
			if t.rng.Float64() < t.S.P.LossProb {
				ev.Kind = OwnLost
				t.OwnLostN++
			} else {
				t.OwnDeliveredN++
			}
		case CrossDelivered:
			if t.rng.Float64() < t.S.P.LossProb {
				ev.Kind = CrossLost
				t.CrossLostN++
			} else {
				t.CrossDeliveredN++
				t.CrossDeliveredBits += ev.Bits
			}
		case OwnBufferDrop:
			t.OwnBufferDropN++
		case CrossBufferDrop:
			t.CrossBufferDropN++
		}
		out = append(out, ev)
	}
	return out
}
