package model

import (
	"time"

	"modelcc/internal/units"
)

// PriorRange describes a discretized uniform range, the paper's prior
// shape ("a discretized uniform distribution over the following ranges",
// §4).
type PriorRange struct {
	// Lo and Hi are the inclusive bounds.
	Lo, Hi float64
	// N is the number of grid points; N <= 1 collapses to Lo.
	N int
}

// Values enumerates the grid points of the range.
func (r PriorRange) Values() []float64 {
	if r.N <= 1 || r.Hi <= r.Lo {
		return []float64{r.Lo}
	}
	out := make([]float64, r.N)
	step := (r.Hi - r.Lo) / float64(r.N-1)
	for i := range out {
		out[i] = r.Lo + float64(i)*step
	}
	return out
}

// Prior specifies the paper's §4 prior: independent discretized uniform
// ranges over the unknown parameters. CrossFrac ranges over r as a
// fraction of the hypothesis's own c, matching "0.4c <= r <= 0.7c".
// FullnessSteps discretizes initial fullness as fractions of each
// hypothesis's buffer capacity ("0 <= x <= buffer capacity").
type Prior struct {
	// LinkRate ranges over c in bits/second.
	LinkRate PriorRange
	// CrossFrac ranges over r/c.
	CrossFrac PriorRange
	// LossProb ranges over p.
	LossProb PriorRange
	// BufferCapBits ranges over the buffer capacity.
	BufferCapBits PriorRange
	// FullnessSteps is the number of initial-fullness grid points from
	// empty to full (inclusive); values are quantized to whole packets.
	FullnessSteps int
	// MeanSwitch is the assumed gate mean time to switch (the paper
	// fixes it at 100 s rather than ranging over it).
	MeanSwitch time.Duration
	// PingerMaybeOff, when true, also enumerates hypotheses whose gate
	// starts disconnected.
	PingerMaybeOff bool
	// ClockSkew optionally ranges over receiver clock skew (§3.4
	// extension); the zero range pins it to 0.
	ClockSkew PriorRange
	// CrossPktBits sets Params.CrossPktBits on every hypothesis: the
	// modeled size of one cross-traffic emission (0 = one uniform
	// packet). Fleet priors raise it so a sender modeling hundreds of
	// competitors advances hypotheses in coarse aggregate chunks.
	CrossPktBits int64
	// SwitchTick sets the spacing of discretized gate-toggle
	// opportunities on every hypothesis (0 = DefaultSwitchTick).
	// Inference cost grows with the branches the toggle grid forks;
	// fleet priors coarsen it because a fleet multiplies that cost by
	// the sender count.
	SwitchTick time.Duration
}

// Fig3Prior returns the paper's experiment prior (§4):
//
//	c        ∈ [10000, 16000]   (7 points)
//	r        ∈ [0.4c, 0.7c]     (4 points)
//	t        =  100 s
//	p        ∈ [0, 0.2]         (5 points)
//	capacity ∈ [72000, 108000]  (4 points)
//	fullness ∈ [0, capacity]    (4 points, whole packets)
//
// The grid widths are our choice — the paper reports the ranges but not
// the discretization density. The true Fig2Actual() point is on the grid,
// as the paper requires ("initialized with a prior that includes, as one
// possibility, the true value of most of the parameters").
func Fig3Prior() Prior {
	return Prior{
		LinkRate:       PriorRange{10000, 16000, 7},
		CrossFrac:      PriorRange{0.4, 0.7, 4},
		LossProb:       PriorRange{0, 0.2, 5},
		BufferCapBits:  PriorRange{72000, 108000, 4},
		FullnessSteps:  4,
		MeanSwitch:     100 * time.Second,
		PingerMaybeOff: true,
	}
}

// Enumerate expands the prior into equally weighted initial hypothesis
// states, assigning consecutive ParamsIDs. The returned weight applies to
// every state (they are uniform).
func (pr Prior) Enumerate() ([]State, float64) {
	var states []State
	var id int32
	skews := pr.ClockSkew.Values()
	if pr.ClockSkew.N == 0 {
		skews = []float64{pr.ClockSkew.Lo}
	}
	gateStates := []bool{true}
	if pr.PingerMaybeOff {
		gateStates = []bool{true, false}
	}
	fullSteps := pr.FullnessSteps
	if fullSteps < 1 {
		fullSteps = 1
	}
	for _, c := range pr.LinkRate.Values() {
		for _, frac := range pr.CrossFrac.Values() {
			for _, p := range pr.LossProb.Values() {
				for _, capBits := range pr.BufferCapBits.Values() {
					for _, skew := range skews {
						for fi := 0; fi < fullSteps; fi++ {
							var full int64
							if fullSteps > 1 {
								full = int64(float64(capBits) * float64(fi) / float64(fullSteps-1))
							}
							params := Params{
								LinkRate:      units.BitRate(c),
								CrossRate:     units.BitRate(frac * c),
								MeanSwitch:    pr.MeanSwitch,
								LossProb:      p,
								BufferCapBits: int64(capBits),
								InitFullBits:  full,
								ClockSkew:     skew,
								CrossPktBits:  pr.CrossPktBits,
							}
							// All gate-start variants share one ParamsID:
							// the gate state is dynamic, so branches that
							// started differently but converge may merge.
							for _, on := range gateStates {
								s := Initial(params, on)
								s.ParamsID = id
								if pr.SwitchTick > 0 {
									s.SwitchTick = pr.SwitchTick
									s.NextToggle = pr.SwitchTick
								}
								states = append(states, s)
							}
							id++
						}
					}
				}
			}
		}
	}
	if len(states) == 0 {
		return nil, 0
	}
	return states, 1 / float64(len(states))
}
