package model

import (
	"encoding/binary"
	"math"
	"time"

	"modelcc/internal/units"
)

// QPkt is a packet descriptor inside the modeled BUFFER or in service at
// the THROUGHPUT link.
type QPkt struct {
	// Own marks the ISENDER's packets; filler and cross packets are not
	// Own.
	Own bool
	// Seq is the own-packet sequence number; -1 for cross/filler.
	Seq int64
	// Bits is the packet size.
	Bits int64
	// EnqueuedAt is when the packet entered the buffer/link; delivery
	// events report At-EnqueuedAt as the packet's queueing delay, which
	// the latency-penalizing utility (§3.3) consumes. It is not part of
	// the compaction Key: it cannot influence any future observable.
	EnqueuedAt time.Duration
}

// EventKind classifies what happened to a packet during an advance.
type EventKind uint8

// Event kinds. Own* events concern the ISENDER's packets and drive the
// Bayesian update; Cross* events feed the utility function.
const (
	// OwnDelivered: an own packet finished the link and reached the
	// LOSS element; it arrives at the receiver with probability 1-p.
	OwnDelivered EventKind = iota
	// OwnBufferDrop: an own packet was tail-dropped at the BUFFER; it
	// can never be acknowledged.
	OwnBufferDrop
	// OwnLost: (Truth only) an own packet was dropped by the LOSS
	// element after the link.
	OwnLost
	// CrossDelivered: a cross packet finished the link (pre-LOSS).
	CrossDelivered
	// CrossBufferDrop: a cross packet was tail-dropped at the BUFFER.
	CrossBufferDrop
	// CrossLost: (Truth only) a cross packet was dropped by LOSS.
	CrossLost
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case OwnDelivered:
		return "own-delivered"
	case OwnBufferDrop:
		return "own-bufdrop"
	case OwnLost:
		return "own-lost"
	case CrossDelivered:
		return "cross-delivered"
	case CrossBufferDrop:
		return "cross-bufdrop"
	case CrossLost:
		return "cross-lost"
	default:
		return "event(?)"
	}
}

// Event is one packet outcome produced by advancing a State.
type Event struct {
	Kind EventKind
	// Seq is the own-packet sequence number, -1 for cross events.
	Seq int64
	// At is the event time. For deliveries it is the receiver-clock
	// arrival time (sender time scaled by 1+ClockSkew); for drops it is
	// the drop instant.
	At time.Duration
	// Bits is the packet size, used by the utility accounting.
	Bits int64
	// Delay is the packet's in-network sojourn (delivery time minus
	// enqueue time, sender clock) for delivery events; zero for drops.
	Delay time.Duration
}

// Send is a scheduled injection of one own packet into the network.
type Send struct {
	// Seq is the packet's sequence number.
	Seq int64
	// At is the injection time; must be >= the state's current time
	// when passed to an advance.
	At time.Duration
	// Bits is the packet size; 0 means the hypothesis's uniform size.
	Bits int64
}

// State is one hypothesis about the network: static Params plus the
// dynamic state of the Figure 2 composition. It is a value type; Clone
// yields an independent copy.
type State struct {
	// P are the hypothesis's static parameters.
	P Params
	// ParamsID identifies the prior grid point that produced P; it takes
	// part in the compaction key so hypotheses with different parameters
	// never merge. Assign it when building the prior.
	ParamsID int32

	// Now is the hypothesis's current time.
	Now time.Duration
	// PingerOn is the INTERMITTENT gate state (true = connected).
	PingerOn bool
	// NextCross is the absolute time of the PINGER's next emission. The
	// pinger runs on an absolute grid regardless of the gate, exactly
	// like the PINGER -> INTERMITTENT composition in the simulator.
	NextCross time.Duration
	// NextToggle is the next switch *opportunity* (inference discretizes
	// the memoryless gate to a grid of opportunities; see AdvanceEnum).
	NextToggle time.Duration
	// SwitchTick is the spacing of toggle opportunities.
	SwitchTick time.Duration

	// Serving reports whether a packet occupies the link.
	Serving bool
	// InService is that packet.
	InService QPkt
	// ServiceDone is the absolute time the in-service packet departs
	// the link.
	ServiceDone time.Duration
	// Queue holds the waiting packets; the in-service packet is not in
	// Queue, matching elements.Buffer. The live window is
	// Queue[QHead:] (use Queued to read it): departures advance QHead
	// instead of shifting the slice, so serving a long modeled queue —
	// the steady state of a saturated fleet hypothesis — does not
	// memmove the whole backlog per packet. Clones normalize QHead
	// back to 0.
	Queue []QPkt
	// QHead indexes the first waiting packet in Queue.
	QHead int
	// QueueBits caches the occupancy of the live window.
	QueueBits int64

	// svcBits/svcTime memoize the link serialization time of the most
	// recent packet size (the hot loops alternate between at most two
	// sizes, own packets and cross chunks, and TransmitTime's float
	// division is measurable at fleet scale).
	svcBits  [2]int64
	svcTime  [2]time.Duration
	crossIvl time.Duration
}

// Queued returns the waiting packets, head first. The slice aliases the
// state; treat it as read-only.
func (s *State) Queued() []QPkt { return s.Queue[s.QHead:] }

// QLen reports the number of waiting packets.
func (s *State) QLen() int { return len(s.Queue) - s.QHead }

// DefaultSwitchTick is the default spacing of discretized pinger switch
// opportunities used by inference. With the paper's 100 s mean switch
// time, a 1 s grid gives a ~1% toggle probability per opportunity.
const DefaultSwitchTick = time.Second

// Initial returns the hypothesis's state at time zero: the buffer holds
// InitFullBits of filler (quantized to whole packets), the link starts
// serving the head filler packet if any, and the pinger's first emission
// is one interval away.
func Initial(p Params, pingerOn bool) State {
	s := State{
		P:          p,
		PingerOn:   pingerOn,
		NextCross:  p.CrossInterval(),
		NextToggle: DefaultSwitchTick,
		SwitchTick: DefaultSwitchTick,
	}
	pkt := p.PktBits()
	for filled := int64(0); filled+pkt <= p.InitFullBits; filled += pkt {
		s.enqueue(QPkt{Own: false, Seq: -1, Bits: pkt}, nil)
	}
	return s
}

// Clone returns an independent copy of the state (QHead normalized to
// zero).
func (s *State) Clone() State {
	c := *s
	c.Queue = append([]QPkt(nil), s.Queue[s.QHead:]...)
	c.QHead = 0
	return c
}

// CloneInto copies s into dst, reusing dst's Queue capacity (QHead
// normalized to zero). It is the allocation-free Clone used by the
// rollout engine's scratch states; dst must not alias s.
func (s *State) CloneInto(dst *State) {
	q := dst.Queue[:0]
	*dst = *s
	dst.Queue = append(q, s.Queue[s.QHead:]...)
	dst.QHead = 0
}

// Rebase shifts every absolute time in the state by `by`. Belief
// collapse recovery (belief.Config.Recover) uses it to restart
// pristine prior states at the collapse instant: the re-seeded
// hypothesis behaves exactly as a fresh Initial state would if the run
// had begun at Now+by. "Never" deadlines (units.Forever, e.g. NextCross
// with no cross traffic) saturate instead of overflowing into the past.
func (s *State) Rebase(by time.Duration) {
	s.Now += by
	s.NextCross = saturatingShift(s.NextCross, by)
	s.NextToggle = saturatingShift(s.NextToggle, by)
	if s.Serving {
		s.ServiceDone += by
		s.InService.EnqueuedAt += by
	}
	for i := range s.Queue {
		s.Queue[i].EnqueuedAt += by
	}
}

// saturatingShift adds by to t, clamping at units.Forever on overflow so
// sentinel "never" deadlines stay in the future.
func saturatingShift(t, by time.Duration) time.Duration {
	if by > 0 && t > units.Forever-by {
		return units.Forever
	}
	return t + by
}

// EqualDynamic reports whether two states at the same instant have
// identical dynamic network state — same service occupancy and identical
// queues, including enqueue stamps (which feed delay-sensitive
// utilities). Two equal states under identical future inputs produce
// identical futures, which is what lets planner rollouts stop early once
// a candidate reconverges with its baseline.
func (s *State) EqualDynamic(o *State) bool {
	if s.Serving != o.Serving || s.QueueBits != o.QueueBits || s.QLen() != o.QLen() {
		return false
	}
	if s.Serving && (s.InService != o.InService || s.ServiceDone != o.ServiceDone) {
		return false
	}
	sq, oq := s.Queued(), o.Queued()
	for i := range sq {
		if sq[i] != oq[i] {
			return false
		}
	}
	return true
}

// InFlightOwn reports how many own packets currently occupy the buffer or
// the link.
func (s *State) InFlightOwn() int {
	n := 0
	if s.Serving && s.InService.Own {
		n++
	}
	for _, q := range s.Queued() {
		if q.Own {
			n++
		}
	}
	return n
}

// SystemBits reports the total bits in the buffer plus in service: the
// quantity whose drain time bounds "how long consequences linger".
func (s *State) SystemBits() int64 {
	b := s.QueueBits
	if s.Serving {
		b += s.InService.Bits
	}
	return b
}

// enqueue admits a packet to the buffer/link, appending any resulting
// event to out (which may be nil when the caller doesn't care, e.g.
// during Initial prefill). Tail-drop semantics match elements.Buffer: the
// in-service packet does not count against capacity.
func (s *State) enqueue(q QPkt, out *[]Event) {
	q.EnqueuedAt = s.Now
	if !s.Serving {
		s.startService(q)
		return
	}
	if s.QueueBits+q.Bits > s.P.BufferCapBits {
		if out != nil {
			kind := CrossBufferDrop
			if q.Own {
				kind = OwnBufferDrop
			}
			*out = append(*out, Event{Kind: kind, Seq: q.Seq, At: s.Now, Bits: q.Bits})
		}
		return
	}
	s.Queue = append(s.Queue, q)
	s.QueueBits += q.Bits
}

// serviceTime memoizes TransmitTime over the (at most two) packet sizes
// a hypothesis serves — own packets and cross chunks — because the
// float division is measurable in fleet-scale rollouts.
func (s *State) serviceTime(bits int64) time.Duration {
	if s.svcBits[0] == bits {
		return s.svcTime[0]
	}
	if s.svcBits[1] == bits {
		return s.svcTime[1]
	}
	d := units.TransmitTime(bits, s.P.LinkRate)
	s.svcBits[1], s.svcTime[1] = s.svcBits[0], s.svcTime[0]
	s.svcBits[0], s.svcTime[0] = bits, d
	return d
}

func (s *State) startService(q QPkt) {
	s.Serving = true
	s.InService = q
	s.ServiceDone = s.Now + s.serviceTime(q.Bits)
}

// departHead completes the in-service packet: it leaves the link, passes
// (conceptually) into the LOSS element, and the next queued packet starts
// serializing.
func (s *State) departHead(out *[]Event) {
	q := s.InService
	s.Now = s.ServiceDone
	s.Serving = false
	kind := CrossDelivered
	if q.Own {
		kind = OwnDelivered
	}
	if out != nil {
		*out = append(*out, Event{
			Kind:  kind,
			Seq:   q.Seq,
			At:    s.receiverClock(s.Now),
			Bits:  q.Bits,
			Delay: s.Now - q.EnqueuedAt,
		})
	}
	if s.QHead < len(s.Queue) {
		head := s.Queue[s.QHead]
		s.QHead++
		s.QueueBits -= head.Bits
		s.startService(head)
		// Compact once the dead prefix dominates, so appends do not
		// grow the array without bound while keeping departures O(1)
		// amortized.
		if s.QHead >= 32 && 2*s.QHead >= len(s.Queue) {
			n := copy(s.Queue, s.Queue[s.QHead:])
			s.Queue = s.Queue[:n]
			s.QHead = 0
		}
	}
}

// receiverClock maps sender time to the receiver's clock.
func (s *State) receiverClock(t time.Duration) time.Duration {
	if s.P.ClockSkew == 0 {
		return t
	}
	return units.SecondsToDuration(t.Seconds() * (1 + s.P.ClockSkew))
}

// Run advances the state to `until`, processing link completions, pinger
// emissions, and the scheduled sends, WITHOUT any gate toggles — the
// caller controls toggle points (AdvanceEnum forks at them; Truth samples
// them; planner rollouts freeze them). Sends must be sorted by At and lie
// in (s.Now-ε, until]; a send in the past panics. Events are appended to
// out.
func (s *State) Run(until time.Duration, sends []Send, out *[]Event) {
	if s.crossIvl == 0 {
		s.crossIvl = s.P.CrossInterval()
	}
	si := 0
	for {
		// Next event among: service completion, cross emission, send.
		next := until + 1
		kind := -1
		if s.Serving && s.ServiceDone <= until && s.ServiceDone < next {
			next, kind = s.ServiceDone, 0
		}
		if s.NextCross <= until && s.NextCross < next {
			next, kind = s.NextCross, 1
		}
		if si < len(sends) && sends[si].At <= until && sends[si].At < next {
			next, kind = sends[si].At, 2
		}
		if kind == -1 {
			break
		}
		switch kind {
		case 0:
			s.departHead(out)
		case 1:
			s.Now = s.NextCross
			s.NextCross += s.crossIvl
			if s.PingerOn {
				s.enqueue(QPkt{Own: false, Seq: -1, Bits: s.P.CrossBits()}, out)
			}
		case 2:
			snd := sends[si]
			si++
			if snd.At < s.Now {
				// Invariant: sends are stamped by the sender's own
				// monotone clock (transport.Sender clamps chaotic wall
				// clocks before they get here), so a past send is a
				// driver bug the run must surface, not tolerate.
				panic("model: send scheduled in the hypothesis's past")
			}
			s.Now = snd.At
			bits := snd.Bits
			if bits <= 0 {
				bits = s.P.PktBits()
			}
			s.enqueue(QPkt{Own: true, Seq: snd.Seq, Bits: bits}, out)
		}
	}
	if s.Now < until {
		s.Now = until
	}
}

// Toggle flips the INTERMITTENT gate.
func (s *State) Toggle() { s.PingerOn = !s.PingerOn }

// Key returns a canonical encoding of the hypothesis for compaction: two
// states with equal keys are behaviorally identical forever and may be
// merged, summing their weights (§3.2 "compacted back into one state").
func (s *State) Key() string {
	buf := make([]byte, 0, 64+12*s.QLen())
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		buf = append(buf, b[:]...)
	}
	put(uint64(s.ParamsID))
	put(uint64(s.Now))
	if s.PingerOn {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	put(uint64(s.NextCross))
	put(uint64(s.NextToggle))
	if s.Serving {
		buf = append(buf, 1)
		put(uint64(s.ServiceDone))
		put(uint64(s.InService.Seq))
		put(uint64(s.InService.Bits))
		if s.InService.Own {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	} else {
		buf = append(buf, 0)
	}
	for _, q := range s.Queued() {
		put(uint64(q.Seq))
		put(uint64(q.Bits))
		if q.Own {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return string(buf)
}

// fnv64 constants for the incremental Hash64 below.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	return h
}

func fnvBool(h uint64, b bool) uint64 {
	v := uint64(0)
	if b {
		v = 1
	}
	return (h ^ v) * fnvPrime64
}

// Hash64 returns an FNV-1a hash over the same canonical fields Key
// encodes, without allocating. Compaction keys on it instead of the string
// form: a 64-bit collision over the ~10^5 live hypotheses of even the
// widest prior is vanishingly unlikely (~n²/2⁶⁵), and the weight it
// could misattribute is bounded by the weight floor.
func (s *State) Hash64() uint64 {
	h := uint64(fnvOffset64)
	h = fnvU64(h, uint64(s.ParamsID))
	h = fnvU64(h, uint64(s.Now))
	h = fnvBool(h, s.PingerOn)
	h = fnvU64(h, uint64(s.NextCross))
	h = fnvU64(h, uint64(s.NextToggle))
	h = fnvBool(h, s.Serving)
	if s.Serving {
		h = fnvU64(h, uint64(s.ServiceDone))
		h = fnvU64(h, uint64(s.InService.Seq))
		h = fnvU64(h, uint64(s.InService.Bits))
		h = fnvBool(h, s.InService.Own)
	}
	for _, q := range s.Queued() {
		h = fnvU64(h, uint64(q.Seq))
		h = fnvU64(h, uint64(q.Bits))
		h = fnvBool(h, q.Own)
	}
	return h
}

// Branch is one weighted outcome of advancing a hypothesis with
// enumeration of gate toggles.
type Branch struct {
	// S is the post-advance state.
	S State
	// W is the branch's probability given the pre-advance state
	// (product of toggle/stay probabilities along the branch).
	W float64
	// Events are the packet outcomes along the branch, in time order.
	Events []Event
}

// AdvanceEnum advances a hypothesis to `until`, forking at every
// discretized switch opportunity: at each grid point the gate toggles
// with probability q = 1-exp(-tick/mean) and stays with 1-q. The
// returned branches' weights sum to 1 (up to float rounding). Sends must
// be sorted by At.
//
// This is the paper's "nondeterministic element may fork the model into
// two possibilities" (§3.2) applied to INTERMITTENT. LOSS deliberately
// does not fork here: it is last-mile, so it cannot affect any future
// observable timing — the belief applies its probability directly to
// observation likelihoods instead (§3.2's remark that last-mile loss
// "does not linger").
func AdvanceEnum(s State, until time.Duration, sends []Send) []Branch {
	type item struct {
		br Branch
		si int // index of the first unconsumed send
	}
	// consume returns the sends with At <= segEnd starting at index si.
	consume := func(si int, segEnd time.Duration) ([]Send, int) {
		hi := si
		for hi < len(sends) && sends[hi].At <= segEnd {
			hi++
		}
		return sends[si:hi], hi
	}
	work := []item{{br: Branch{S: s.Clone(), W: 1}}}
	var done []Branch
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		st := &it.br.S
		if st.SwitchTick <= 0 || st.P.MeanSwitch <= 0 || st.NextToggle > until {
			seg, _ := consume(it.si, until)
			st.Run(until, seg, &it.br.Events)
			done = append(done, it.br)
			continue
		}
		// Run to the next opportunity, then fork.
		at := st.NextToggle
		seg, si := consume(it.si, at)
		st.Run(at, seg, &it.br.Events)
		it.si = si
		st.NextToggle += st.SwitchTick
		q := ToggleProb(st.SwitchTick, st.P.MeanSwitch)
		if q <= 0 {
			work = append(work, it)
			continue
		}
		// Copy-on-fork: the flipped branch shares the event prefix,
		// capacity-clamped so its first further append reallocates
		// instead of clobbering the sibling's tail. Branches that never
		// produce another event (the common case in a quiet segment)
		// never pay for a copy.
		flipped := item{
			br: Branch{
				S:      st.Clone(),
				W:      it.br.W * q,
				Events: it.br.Events[:len(it.br.Events):len(it.br.Events)],
			},
			si: si,
		}
		flipped.br.S.Toggle()
		it.br.W *= 1 - q
		work = append(work, it, flipped)
	}
	return done
}

// ToggleProb is the probability that a memoryless gate with the given
// mean switching time toggles within one tick. It is the single source
// of truth for the inference discretization: AdvanceEnum forks with it
// and the particle filter samples with it.
func ToggleProb(tick, mean time.Duration) float64 {
	if mean <= 0 || tick <= 0 {
		return 0
	}
	return 1 - math.Exp(-tick.Seconds()/mean.Seconds())
}
