package model

import (
	"testing"
	"time"
)

// fixedParams is a deterministic configuration: no cross traffic, no
// loss, no switching.
func fixedParams() Params {
	return Params{
		LinkRate:      12000,
		BufferCapBits: 96000,
	}
}

func collect(s *State, until time.Duration, sends []Send) []Event {
	var out []Event
	s.Run(until, sends, &out)
	return out
}

func ownDeliveries(evs []Event) []Event {
	var out []Event
	for _, e := range evs {
		if e.Kind == OwnDelivered {
			out = append(out, e)
		}
	}
	return out
}

func TestRunDeliversAtLinkRate(t *testing.T) {
	s := Initial(fixedParams(), false)
	sends := []Send{{Seq: 0, At: 0}, {Seq: 1, At: 0}, {Seq: 2, At: 0}}
	evs := ownDeliveries(collect(&s, 10*time.Second, sends))
	if len(evs) != 3 {
		t.Fatalf("deliveries = %d, want 3", len(evs))
	}
	for i, e := range evs {
		want := time.Duration(i+1) * time.Second
		if e.At != want || e.Seq != int64(i) {
			t.Errorf("delivery %d: seq=%d at=%v, want seq=%d at=%v", i, e.Seq, e.At, i, want)
		}
	}
	if s.Now != 10*time.Second {
		t.Errorf("Now = %v, want 10s", s.Now)
	}
}

func TestRunTailDrop(t *testing.T) {
	s := Initial(fixedParams(), false)
	// 1 in service + 8 queued fill the system; sends 9..11 drop.
	var sends []Send
	for i := int64(0); i < 12; i++ {
		sends = append(sends, Send{Seq: i, At: 0})
	}
	evs := collect(&s, time.Second/2, sends)
	drops := 0
	for _, e := range evs {
		if e.Kind == OwnBufferDrop {
			drops++
			if e.Seq < 9 {
				t.Errorf("dropped early packet %d", e.Seq)
			}
		}
	}
	if drops != 3 {
		t.Fatalf("drops = %d, want 3", drops)
	}
	if s.QueueBits != 96000 {
		t.Errorf("queue bits = %d, want 96000 (full)", s.QueueBits)
	}
}

func TestInitialFullness(t *testing.T) {
	p := fixedParams()
	p.InitFullBits = 96000
	s := Initial(p, false)
	// One filler is immediately in service, 7 wait: the constructor
	// fills exactly InitFullBits/pkt packets into the system.
	if !s.Serving {
		t.Fatal("initial fullness did not start service")
	}
	if got := s.SystemBits(); got != 96000 {
		t.Errorf("system bits = %d, want 96000", got)
	}
	// My packet sent at t=0 queues behind all filler: delivered at 9s
	// (8 fillers serialize by 8s, mine is the 9th).
	evs := ownDeliveries(collect(&s, 20*time.Second, []Send{{Seq: 0, At: 0}}))
	if len(evs) != 1 || evs[0].At != 9*time.Second {
		t.Fatalf("delivery behind full buffer: %+v, want at 9s", evs)
	}
}

func TestCrossTrafficSharesLink(t *testing.T) {
	p := fixedParams()
	p.CrossRate = 6000 // one cross packet every 2s
	s := Initial(p, true)
	// My packet sent at 2.5s arrives after the cross packet emitted at
	// 2s finishes (cross enters service at 2s, done 3s; mine at 3.5... let
	// the mechanics decide; just check ordering and that cross events
	// appear.
	evs := collect(&s, 6*time.Second, []Send{{Seq: 0, At: 2500 * time.Millisecond}})
	var cross, own int
	var ownAt time.Duration
	for _, e := range evs {
		switch e.Kind {
		case CrossDelivered:
			cross++
		case OwnDelivered:
			own++
			ownAt = e.At
		}
	}
	if cross == 0 {
		t.Fatal("no cross deliveries despite pinger on")
	}
	if own != 1 {
		t.Fatalf("own deliveries = %d, want 1", own)
	}
	// Cross packet emitted at 2s serves 2s..3s; mine arrives 2.5s, waits,
	// serves 3s..4s.
	if ownAt != 4*time.Second {
		t.Errorf("own delivery at %v, want 4s (queued behind cross)", ownAt)
	}
}

func TestPingerGatedWhenOff(t *testing.T) {
	p := fixedParams()
	p.CrossRate = 6000
	s := Initial(p, false)
	evs := collect(&s, 10*time.Second, nil)
	if len(evs) != 0 {
		t.Fatalf("gated pinger produced events: %+v", evs)
	}
	// The pinger's absolute grid keeps ticking while gated.
	if s.NextCross <= 10*time.Second {
		t.Errorf("NextCross = %v, want > 10s", s.NextCross)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := fixedParams()
	s := Initial(p, false)
	collect(&s, time.Second/4, []Send{{Seq: 0, At: 0}, {Seq: 1, At: 0}})
	c := s.Clone()
	collect(&s, 5*time.Second, []Send{{Seq: 2, At: time.Second}})
	// The clone must be unaffected by advancing the original.
	if c.Now != time.Second/4 {
		t.Errorf("clone Now = %v", c.Now)
	}
	if len(c.Queue) != 1 || c.Queue[0].Seq != 1 {
		t.Errorf("clone queue corrupted: %+v", c.Queue)
	}
}

func TestKeyDistinguishesAndMatches(t *testing.T) {
	p := fixedParams()
	a := Initial(p, false)
	b := Initial(p, false)
	if a.Key() != b.Key() {
		t.Error("identical states have different keys")
	}
	b2 := Initial(p, true)
	if a.Key() == b2.Key() {
		t.Error("gate state not reflected in key")
	}
	c := Initial(p, false)
	c.ParamsID = 7
	if a.Key() == c.Key() {
		t.Error("ParamsID not reflected in key")
	}
	d := a.Clone()
	collect(&d, time.Second, []Send{{Seq: 0, At: 0}})
	if a.Key() == d.Key() {
		t.Error("dynamic state not reflected in key")
	}
}

func TestClockSkew(t *testing.T) {
	p := fixedParams()
	p.ClockSkew = 0.5
	s := Initial(p, false)
	evs := ownDeliveries(collect(&s, 5*time.Second, []Send{{Seq: 0, At: 0}}))
	if len(evs) != 1 {
		t.Fatal("no delivery")
	}
	if evs[0].At != 1500*time.Millisecond {
		t.Errorf("skewed delivery at %v, want 1.5s", evs[0].At)
	}
}

func TestSendInPastPanics(t *testing.T) {
	s := Initial(fixedParams(), false)
	collect(&s, 5*time.Second, nil)
	defer func() {
		if recover() == nil {
			t.Error("send in the past did not panic")
		}
	}()
	collect(&s, 10*time.Second, []Send{{Seq: 0, At: time.Second}})
}

func TestAdvanceEnumNoSwitchingSingleBranch(t *testing.T) {
	p := fixedParams() // MeanSwitch 0: never forks
	s := Initial(p, false)
	brs := AdvanceEnum(s, 10*time.Second, []Send{{Seq: 0, At: 0}})
	if len(brs) != 1 {
		t.Fatalf("branches = %d, want 1", len(brs))
	}
	if brs[0].W != 1 {
		t.Errorf("weight = %v, want 1", brs[0].W)
	}
	if len(ownDeliveries(brs[0].Events)) != 1 {
		t.Error("missing delivery in branch")
	}
}

func TestAdvanceEnumForksAndWeightsSum(t *testing.T) {
	p := fixedParams()
	p.CrossRate = 8400
	p.MeanSwitch = 100 * time.Second
	s := Initial(p, true)
	brs := AdvanceEnum(s, 3*time.Second, nil) // 3 toggle opportunities
	if len(brs) != 8 {
		t.Fatalf("branches = %d, want 2^3 = 8", len(brs))
	}
	var sum float64
	for _, b := range brs {
		sum += b.W
	}
	if sum < 0.999999 || sum > 1.000001 {
		t.Errorf("branch weights sum to %v, want 1", sum)
	}
	// The all-stay branch dominates: q ≈ 1% per opportunity.
	var maxW float64
	for _, b := range brs {
		if b.W > maxW {
			maxW = b.W
		}
	}
	if maxW < 0.95 {
		t.Errorf("dominant branch weight %v, want ~0.97", maxW)
	}
}

func TestAdvanceEnumSendAtBoundaryConsumedOnce(t *testing.T) {
	p := fixedParams()
	p.MeanSwitch = 100 * time.Second
	s := Initial(p, true)
	// Send exactly at the first toggle opportunity (1s). Each branch
	// must deliver it exactly once.
	brs := AdvanceEnum(s, 5*time.Second, []Send{{Seq: 0, At: time.Second}})
	for _, b := range brs {
		if n := len(ownDeliveries(b.Events)); n != 1 {
			t.Fatalf("branch delivered the boundary send %d times, want 1", n)
		}
	}
}

func TestToggleProb(t *testing.T) {
	if got := ToggleProb(time.Second, 0); got != 0 {
		t.Errorf("ToggleProb(1s, 0) = %v, want 0", got)
	}
	got := ToggleProb(time.Second, 100*time.Second)
	if got < 0.0099 || got > 0.0101 {
		t.Errorf("ToggleProb(1s, 100s) = %v, want ~0.00995", got)
	}
	// Monotone in tick length.
	if ToggleProb(2*time.Second, 100*time.Second) <= got {
		t.Error("toggleProb not monotone in tick")
	}
}

func TestParamsHelpers(t *testing.T) {
	p := Fig2Actual()
	if p.PktBits() != 12000 {
		t.Errorf("PktBits = %d", p.PktBits())
	}
	if p.ServiceTime() != time.Second {
		t.Errorf("ServiceTime = %v, want 1s (one packet per second)", p.ServiceTime())
	}
	ci := p.CrossInterval()
	ratio := 12000.0 / 8400.0
	want := time.Duration(float64(time.Second) * ratio)
	if diff := ci - want; diff > time.Microsecond || diff < -time.Microsecond {
		t.Errorf("CrossInterval = %v, want ~%v", ci, want)
	}
	var noCross Params
	noCross.LinkRate = 12000
	if noCross.CrossInterval() <= 300*time.Hour {
		t.Error("zero cross rate should give effectively infinite interval")
	}
}
