package model

import (
	"math/rand"
	"testing"
	"time"

	"modelcc/internal/elements"
	"modelcc/internal/packet"
	"modelcc/internal/sim"
)

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(99)) }

// TestModelMatchesDES cross-validates the inference automaton against the
// discrete-event element implementation: the same topology (sender and
// pinger feeding a shared tail-drop buffer drained by a throughput link,
// no loss, gate fixed on) must produce identical own-packet delivery
// times in both simulators.
func TestModelMatchesDES(t *testing.T) {
	p := Params{
		LinkRate:      12000,
		CrossRate:     8400,
		BufferCapBits: 96000,
	}

	// Own sends: every 1.7 s for 100 s (faster than the 30% spare
	// capacity, so queueing and drops occur).
	var sends []Send
	for at := 1700 * time.Millisecond; at < 100*time.Second; at += 1700 * time.Millisecond {
		sends = append(sends, Send{Seq: int64(len(sends)), At: at})
	}

	// Model run.
	s := Initial(p, true)
	var evs []Event
	s.Run(120*time.Second, sends, &evs)
	modelOwn := map[int64]time.Duration{}
	modelDrops := map[int64]bool{}
	for _, e := range evs {
		switch e.Kind {
		case OwnDelivered:
			modelOwn[e.Seq] = e.At
		case OwnBufferDrop:
			modelDrops[e.Seq] = true
		}
	}

	// DES run of the same topology.
	loop := sim.New(1)
	col := elements.NewCollector(loop)
	buf, _ := elements.NewBottleneck(loop, p.BufferCapBits, p.LinkRate, col)
	pinger := elements.NewPinger(loop, p.CrossRate, packet.DefaultSizeBytes, packet.FlowCross, buf)
	pinger.Start()
	for _, snd := range sends {
		snd := snd
		loop.Schedule(snd.At, func() {
			buf.Receive(packet.New(packet.FlowSelf, snd.Seq, loop.Now()))
		})
	}
	loop.Run(120 * time.Second)

	desOwn := map[int64]time.Duration{}
	for _, a := range col.ByFlow(packet.FlowSelf) {
		desOwn[a.Packet.Seq] = a.At
	}

	if len(modelOwn) == 0 {
		t.Fatal("model delivered nothing")
	}
	if len(modelOwn) != len(desOwn) {
		t.Fatalf("model delivered %d, DES delivered %d", len(modelOwn), len(desOwn))
	}
	for seq, at := range modelOwn {
		das, ok := desOwn[seq]
		if !ok {
			t.Fatalf("model delivered %d but DES dropped it", seq)
		}
		diff := at - das
		if diff < 0 {
			diff = -diff
		}
		if diff > time.Microsecond {
			t.Errorf("seq %d delivery: model %v vs DES %v", seq, at, das)
		}
	}
	// Drops must agree too.
	for seq := range modelDrops {
		if _, delivered := desOwn[seq]; delivered {
			t.Errorf("model dropped %d but DES delivered it", seq)
		}
	}
	if len(modelDrops) == 0 {
		t.Error("workload should have produced buffer drops; model saw none")
	}

	// Cross deliveries must also agree in count.
	crossModel := 0
	for _, e := range evs {
		if e.Kind == CrossDelivered {
			crossModel++
		}
	}
	crossDES := len(col.ByFlow(packet.FlowCross))
	if crossModel != crossDES {
		t.Errorf("cross deliveries: model %d vs DES %d", crossModel, crossDES)
	}
}

// TestTruthConsistentWithEnum: the branch of AdvanceEnum whose toggle
// pattern matches what Truth actually did must predict exactly the
// truth's pre-loss event sequence.
func TestTruthConsistentWithEnum(t *testing.T) {
	p := Fig2Actual()
	p.LossProb = 0 // isolate timing; loss is applied after the fact
	tr := NewTruth(p, true, GateSquareWave, 100*time.Second, newTestRand())

	sends := []Send{
		{Seq: 0, At: 500 * time.Millisecond},
		{Seq: 1, At: 2500 * time.Millisecond},
		{Seq: 2, At: 4500 * time.Millisecond},
	}
	truthEvents := tr.AdvanceTo(10*time.Second, sends)

	s := Initial(p, true)
	brs := AdvanceEnum(s, 10*time.Second, sends)

	// The square wave doesn't toggle before 100s, so the all-stay branch
	// must match truth exactly.
	match := false
	for _, b := range brs {
		if eventsEqual(b.Events, truthEvents) {
			match = true
			break
		}
	}
	if !match {
		t.Fatalf("no enumerated branch matches truth.\ntruth: %+v", truthEvents)
	}
}

func eventsEqual(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
