package core

import (
	"time"

	"modelcc/internal/packet"
)

// Receiver is the paper's RECEIVER (§3.4): it accumulates packets and
// conveys the received time and sequence number of each one back to the
// sender. Like Sender it is clock-agnostic: the simulator calls Receive
// with virtual time, the UDP transport with wall-clock offsets.
type Receiver struct {
	// Received counts packets accepted.
	Received int64
	// ReceivedBits counts payload bits accepted.
	ReceivedBits int64
	// Duplicates counts repeated sequence numbers (possible over real
	// transports; the simulator never produces them).
	Duplicates int64

	seen map[int64]bool
	// HighestSeq is the largest sequence number received, -1 initially.
	HighestSeq int64
}

// NewReceiver returns an empty Receiver.
func NewReceiver() *Receiver {
	return &Receiver{seen: make(map[int64]bool), HighestSeq: -1}
}

// Receive accepts one packet at the given time and returns the
// acknowledgment to convey to the sender.
func (r *Receiver) Receive(p packet.Packet, at time.Duration) packet.Ack {
	if r.seen[p.Seq] {
		r.Duplicates++
	} else {
		r.seen[p.Seq] = true
		r.Received++
		r.ReceivedBits += p.Bits()
		if p.Seq > r.HighestSeq {
			r.HighestSeq = p.Seq
		}
	}
	return packet.Ack{
		Flow:       p.Flow,
		Seq:        p.Seq,
		ReceivedAt: at,
		SentAt:     p.SentAt,
	}
}
