// Package core is the paper's primary contribution: the ISENDER, an
// endpoint that maintains a probability distribution over possible
// network configurations and, at every wakeup, takes whichever action —
// "send now" or "sleep until time t" — maximizes the expected value of
// an explicitly supplied utility function (§3.2–3.3).
//
// The Sender is a pure state machine driven by Wake calls: it owns no
// clock and no socket. The simulation experiments drive it against a
// model.Truth (internal/experiments); the UDP transport drives the very
// same type against the wall clock and real sockets
// (internal/transport). That separation is the paper's architecture
// made literal: the model and the utility function are first-class
// objects handed to the endpoint, and everything else is plumbing.
package core

import (
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/model"
	"modelcc/internal/packet"
	"modelcc/internal/planner"
)

// Action is what a Sender decided to do at a wakeup.
type Action struct {
	// Sends are the packets to inject immediately, in order (the
	// planner may choose to send several back to back; each decision
	// saw the previous commitments).
	Sends []model.Send
	// WakeAt is the absolute time of the next self-scheduled wakeup.
	// An acknowledgment arriving earlier should wake the sender early —
	// the receiver "wakes up the sender for each packet" (§3.4).
	WakeAt time.Duration
}

// Sender is the ISENDER endpoint.
type Sender struct {
	// Belief is the sender's uncertainty about the network; supplied,
	// not owned, so callers choose Exact vs Particle.
	Belief belief.Belief
	// Plan configures the action search, including the utility function
	// being maximized.
	Plan planner.Config
	// Cache, if non-nil, memoizes decisions by belief fingerprint
	// (§3.3's precomputed-policy observation).
	Cache *planner.PolicyCache
	// Guard, if non-nil, bounds each decision's latency and degrades
	// through the ladder live Decide → PolicyCache → last safe action
	// (see planner.Guard). It takes precedence over Cache; give the
	// Guard the cache instead. Real-socket drivers set it — a stalled
	// decision there is a stalled event loop.
	Guard *planner.Guard
	// MaxBurst caps how many packets one wakeup may emit; the planner
	// naturally starts pacing after a few commitments, so the cap only
	// guards pathological configurations.
	MaxBurst int

	nextSeq int64

	// Sent counts packets emitted; Acked counts acknowledgments
	// consumed; Wakes counts wakeups.
	Sent  int64
	Acked int64
	Wakes int64
}

// NewSender returns an ISENDER over the given belief and plan.
func NewSender(b belief.Belief, plan planner.Config) *Sender {
	return &Sender{Belief: b, Plan: plan, MaxBurst: 32}
}

// NextSeq reports the next unused sequence number.
func (s *Sender) NextSeq() int64 { return s.nextSeq }

// SetNextSeq reinstates a checkpointed sequence counter on a freshly
// built sender, so a warm-restored member continues the numbering its
// predecessor's acknowledgments refer to. Only lifecycle restore should
// call it; moving the counter backwards on a sender that has already
// sent would corrupt the belief's send history.
func (s *Sender) SetNextSeq(seq int64) { s.nextSeq = seq }

// Wake processes the acknowledgments received since the previous wakeup
// (possibly none, for timer wakeups), updates the belief, and decides
// what to do. Wake must be called with non-decreasing now.
func (s *Sender) Wake(now time.Duration, acks []packet.Ack) Action {
	s.Wakes++
	s.Acked += int64(len(acks))
	s.Belief.Update(now, acks)

	var act Action
	maxBurst := s.MaxBurst
	if maxBurst <= 0 {
		maxBurst = 32
	}
	for i := 0; i < maxBurst; i++ {
		var d planner.Decision
		if s.Guard != nil {
			d = s.Guard.Decide(s.Belief.Support(), s.Belief.PendingSends(), now, s.nextSeq, s.Plan)
		} else if s.Cache != nil {
			d = s.Cache.Decide(s.Belief.Support(), s.Belief.PendingSends(), now, s.nextSeq, s.Plan)
		} else {
			d = planner.Decide(s.Belief.Support(), s.Belief.PendingSends(), now, s.nextSeq, s.Plan)
		}
		if !d.SendNow {
			act.WakeAt = d.WakeAt
			return act
		}
		snd := model.Send{Seq: s.nextSeq, At: now}
		s.nextSeq++
		s.Sent++
		s.Belief.RecordSend(snd)
		act.Sends = append(act.Sends, snd)
	}
	// Burst cap reached while the planner still wanted to send;
	// re-decide shortly rather than spinning.
	grid := s.Plan.Grid
	if grid <= 0 {
		grid = planner.DefaultConfig().Grid
	}
	act.WakeAt = now + grid
	return act
}

// Estimates summarizes the sender's current posterior (for reporting).
func (s *Sender) Estimates() belief.Estimates {
	return belief.Summarize(s.Belief.Support())
}
