package core

import (
	"testing"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/model"
	"modelcc/internal/packet"
	"modelcc/internal/planner"
)

func knownIdleBelief() belief.Belief {
	s := model.Initial(model.Params{LinkRate: 12000, BufferCapBits: 96000}, false)
	return belief.NewExact([]model.State{s}, belief.Config{})
}

func TestSenderSendsOnFirstWake(t *testing.T) {
	s := NewSender(knownIdleBelief(), planner.DefaultConfig())
	act := s.Wake(0, nil)
	if len(act.Sends) == 0 {
		t.Fatal("known idle link: sender sent nothing on first wake")
	}
	if act.WakeAt <= 0 {
		t.Errorf("WakeAt = %v, want future", act.WakeAt)
	}
	if s.Sent != int64(len(act.Sends)) {
		t.Errorf("Sent = %d, emitted %d", s.Sent, len(act.Sends))
	}
	// Sequence numbers are consecutive from zero.
	for i, snd := range act.Sends {
		if snd.Seq != int64(i) || snd.At != 0 {
			t.Errorf("send %d = %+v", i, snd)
		}
	}
}

func TestSenderPacesNotFloods(t *testing.T) {
	s := NewSender(knownIdleBelief(), planner.DefaultConfig())
	act := s.Wake(0, nil)
	// The planner starts pacing once its committed sends fill the
	// pipe; a single wake must never emit anywhere near MaxBurst.
	if len(act.Sends) >= s.MaxBurst {
		t.Errorf("wake emitted %d packets (burst cap %d): pacing broken", len(act.Sends), s.MaxBurst)
	}
}

func TestSenderAckDrivenProgress(t *testing.T) {
	s := NewSender(knownIdleBelief(), planner.DefaultConfig())
	act := s.Wake(0, nil)
	sent := len(act.Sends)

	// Acknowledge the first packet at its true delivery time (1 s) and
	// wake: the sender must keep making progress.
	ack := packet.Ack{Seq: 0, ReceivedAt: time.Second}
	act2 := s.Wake(time.Second, []packet.Ack{ack})
	total := sent + len(act2.Sends)
	for i := 2; i < 8; i++ {
		at := time.Duration(i) * time.Second
		act = s.Wake(at, []packet.Ack{{Seq: int64(i - 1), ReceivedAt: at}})
		total += len(act.Sends)
	}
	if s.NextSeq() < 6 {
		t.Errorf("after 8s of acks, only %d packets committed (want ~ link rate)", s.NextSeq())
	}
	if s.Acked != 7 {
		t.Errorf("Acked = %d, want 7", s.Acked)
	}
	_ = total
}

func TestSenderWithPolicyCache(t *testing.T) {
	s := NewSender(knownIdleBelief(), planner.DefaultConfig())
	s.Cache = planner.NewPolicyCache(0)
	for i := 0; i < 5; i++ {
		at := time.Duration(i) * time.Second
		var acks []packet.Ack
		if i > 0 {
			acks = []packet.Ack{{Seq: int64(i - 1), ReceivedAt: at}}
		}
		s.Wake(at, acks)
	}
	if s.Cache.Hits == 0 {
		t.Error("steady-state wakes never hit the policy cache")
	}
}

func TestReceiverAcksAndDedups(t *testing.T) {
	r := NewReceiver()
	a1 := r.Receive(packet.New(packet.FlowSelf, 0, 0), time.Second)
	if a1.Seq != 0 || a1.ReceivedAt != time.Second {
		t.Errorf("ack = %+v", a1)
	}
	r.Receive(packet.New(packet.FlowSelf, 5, 0), 2*time.Second)
	r.Receive(packet.New(packet.FlowSelf, 5, 0), 3*time.Second) // dup
	if r.Received != 2 || r.Duplicates != 1 {
		t.Errorf("received=%d dups=%d", r.Received, r.Duplicates)
	}
	if r.HighestSeq != 5 {
		t.Errorf("HighestSeq = %d", r.HighestSeq)
	}
	if r.ReceivedBits != 2*packet.DefaultSizeBits {
		t.Errorf("ReceivedBits = %d", r.ReceivedBits)
	}
}

func TestSenderEstimates(t *testing.T) {
	s := NewSender(knownIdleBelief(), planner.DefaultConfig())
	e := s.Estimates()
	if e.N != 1 || e.ELinkRate != 12000 {
		t.Errorf("estimates = %+v", e)
	}
}
