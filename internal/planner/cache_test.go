package planner

import (
	"testing"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/model"
	"modelcc/internal/units"
)

// cacheSupport returns a small steady-state-looking support: empty
// queues, link idle, gate on, absolute times derived from `at` so the
// same situation can be reproduced at different wall clocks.
func cacheSupport(at time.Duration) []belief.Hypothesis {
	mk := func(rate units.BitRate, w float64, id int32) belief.Hypothesis {
		p := model.Params{
			LinkRate:      12000,
			CrossRate:     rate,
			MeanSwitch:    100 * time.Second,
			BufferCapBits: 96000,
		}
		s := model.Initial(p, true)
		s.ParamsID = id
		s.Now = at
		s.NextCross = at + 700*time.Millisecond
		s.NextToggle = at + time.Second
		return belief.Hypothesis{S: s, W: w}
	}
	return []belief.Hypothesis{mk(8400, 0.75, 1), mk(4800, 0.25, 2)}
}

// TestPolicyCacheHitRebasesWakeAt: a hit must return the memoized delay
// rebased onto the new decision instant, not the absolute WakeAt of the
// miss that populated the entry.
func TestPolicyCacheHitRebasesWakeAt(t *testing.T) {
	cfg := DefaultConfig()
	pc := NewPolicyCache(0)

	t1 := 10 * time.Second
	d1 := pc.Decide(cacheSupport(t1), nil, t1, 5, cfg)
	if pc.Misses != 1 || pc.Hits != 0 {
		t.Fatalf("first decision: hits=%d misses=%d, want 0/1", pc.Hits, pc.Misses)
	}

	t2 := 25 * time.Second
	d2 := pc.Decide(cacheSupport(t2), nil, t2, 9, cfg)
	if pc.Hits != 1 {
		t.Fatalf("translated situation missed the cache: hits=%d misses=%d", pc.Hits, pc.Misses)
	}
	if d2.SendNow != d1.SendNow {
		t.Fatalf("cached action %v differs from computed %v", d2.SendNow, d1.SendNow)
	}
	if !d1.SendNow {
		if d1.WakeAt-t1 != d2.WakeAt-t2 {
			t.Fatalf("cached delay %v != original %v", d2.WakeAt-t2, d1.WakeAt-t1)
		}
		if d2.WakeAt <= t2 {
			t.Fatalf("cached WakeAt %v not rebased past now %v", d2.WakeAt, t2)
		}
	}
	if d2.Gain != d1.Gain {
		t.Fatalf("cached gain %v != original %v", d2.Gain, d1.Gain)
	}
}

// TestPolicyCacheFingerprintTranslationInvariance: the fingerprint
// encodes times relative to now, so the same situation at two different
// instants collides (desired), while a genuinely different situation
// does not.
func TestPolicyCacheFingerprintTranslationInvariance(t *testing.T) {
	s1 := cacheSupport(10 * time.Second)
	s2 := cacheSupport(173 * time.Second)
	if fingerprint(s1, nil, 10*time.Second, 0, 1e-6) != fingerprint(s2, nil, 173*time.Second, 0, 1e-6) {
		t.Error("translated situation fingerprints differ")
	}

	// Perturb the queue: fingerprint must change.
	s3 := cacheSupport(10 * time.Second)
	s3[0].S.Queue = append(s3[0].S.Queue, model.QPkt{Seq: -1, Bits: 12000})
	if fingerprint(s1, nil, 10*time.Second, 0, 1e-6) == fingerprint(s3, nil, 10*time.Second, 0, 1e-6) {
		t.Error("different queue contents share a fingerprint")
	}

	// Perturb the posterior weights beyond the 1e-6 quantum.
	s4 := cacheSupport(10 * time.Second)
	s4[0].W, s4[1].W = 0.5, 0.5
	if fingerprint(s1, nil, 10*time.Second, 0, 1e-6) == fingerprint(s4, nil, 10*time.Second, 0, 1e-6) {
		t.Error("different weights share a fingerprint")
	}

	// Pending sends are part of the situation.
	pend := []model.Send{{Seq: 7, At: 10 * time.Second}}
	if fingerprint(s1, pend, 10*time.Second, 0, 1e-6) == fingerprint(s1, nil, 10*time.Second, 0, 1e-6) {
		t.Error("pending send does not affect the fingerprint")
	}
}

// TestPolicyCacheResetRepopulates: after the reset-when-full eviction,
// the cache keeps counting misses correctly and serves hits again once
// repopulated.
func TestPolicyCacheResetRepopulates(t *testing.T) {
	cfg := DefaultConfig()
	pc := NewPolicyCache(1) // reset on the second distinct situation

	t1 := 10 * time.Second
	pc.Decide(cacheSupport(t1), nil, t1, 0, cfg)

	// A different situation (extra queued packet) forces an eviction.
	s2 := cacheSupport(t1)
	s2[0].S.Queue = append(s2[0].S.Queue, model.QPkt{Seq: -1, Bits: 12000})
	s2[0].S.QueueBits += 12000
	pc.Decide(s2, nil, t1, 0, cfg)
	if pc.Misses != 2 {
		t.Fatalf("distinct situations: misses=%d, want 2", pc.Misses)
	}

	// The first situation was evicted by the reset: miss again, then
	// hit.
	pc.Decide(cacheSupport(t1), nil, t1, 0, cfg)
	if pc.Misses != 3 {
		t.Fatalf("evicted entry still hit: misses=%d, want 3", pc.Misses)
	}
	pc.Decide(cacheSupport(t1), nil, t1, 0, cfg)
	if pc.Hits != 1 {
		t.Fatalf("repopulated entry missed: hits=%d", pc.Hits)
	}
}
