package planner

import (
	"math"
	"testing"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/model"
	"modelcc/internal/units"
)

// cacheSupport returns a small steady-state-looking support: empty
// queues, link idle, gate on, absolute times derived from `at` so the
// same situation can be reproduced at different wall clocks.
func cacheSupport(at time.Duration) []belief.Hypothesis {
	mk := func(rate units.BitRate, w float64, id int32) belief.Hypothesis {
		p := model.Params{
			LinkRate:      12000,
			CrossRate:     rate,
			MeanSwitch:    100 * time.Second,
			BufferCapBits: 96000,
		}
		s := model.Initial(p, true)
		s.ParamsID = id
		s.Now = at
		s.NextCross = at + 700*time.Millisecond
		s.NextToggle = at + time.Second
		return belief.Hypothesis{S: s, W: w}
	}
	return []belief.Hypothesis{mk(8400, 0.75, 1), mk(4800, 0.25, 2)}
}

// TestPolicyCacheHitRebasesWakeAt: a hit must return the memoized delay
// rebased onto the new decision instant, not the absolute WakeAt of the
// miss that populated the entry.
func TestPolicyCacheHitRebasesWakeAt(t *testing.T) {
	cfg := DefaultConfig()
	pc := NewPolicyCache(0)

	t1 := 10 * time.Second
	d1 := pc.Decide(cacheSupport(t1), nil, t1, 5, cfg)
	if pc.Misses != 1 || pc.Hits != 0 {
		t.Fatalf("first decision: hits=%d misses=%d, want 0/1", pc.Hits, pc.Misses)
	}

	t2 := 25 * time.Second
	d2 := pc.Decide(cacheSupport(t2), nil, t2, 9, cfg)
	if pc.Hits != 1 {
		t.Fatalf("translated situation missed the cache: hits=%d misses=%d", pc.Hits, pc.Misses)
	}
	if d2.SendNow != d1.SendNow {
		t.Fatalf("cached action %v differs from computed %v", d2.SendNow, d1.SendNow)
	}
	if !d1.SendNow {
		if d1.WakeAt-t1 != d2.WakeAt-t2 {
			t.Fatalf("cached delay %v != original %v", d2.WakeAt-t2, d1.WakeAt-t1)
		}
		if d2.WakeAt <= t2 {
			t.Fatalf("cached WakeAt %v not rebased past now %v", d2.WakeAt, t2)
		}
	}
	if d2.Gain != d1.Gain {
		t.Fatalf("cached gain %v != original %v", d2.Gain, d1.Gain)
	}
}

// fp64 is a test shorthand for the primary fingerprint alone.
func fp64(sup []belief.Hypothesis, pending []model.Send, now time.Duration, tq time.Duration, wq float64) uint64 {
	fp, _ := Fingerprint(sup, pending, now, tq, wq)
	return fp
}

// TestPolicyCacheFingerprintTranslationInvariance: the fingerprint
// encodes times relative to now, so the same situation at two different
// instants collides (desired), while a genuinely different situation
// does not.
func TestPolicyCacheFingerprintTranslationInvariance(t *testing.T) {
	s1 := cacheSupport(10 * time.Second)
	s2 := cacheSupport(173 * time.Second)
	if fp64(s1, nil, 10*time.Second, 0, 1e-6) != fp64(s2, nil, 173*time.Second, 0, 1e-6) {
		t.Error("translated situation fingerprints differ")
	}

	// Perturb the queue: fingerprint must change.
	s3 := cacheSupport(10 * time.Second)
	s3[0].S.Queue = append(s3[0].S.Queue, model.QPkt{Seq: -1, Bits: 12000})
	if fp64(s1, nil, 10*time.Second, 0, 1e-6) == fp64(s3, nil, 10*time.Second, 0, 1e-6) {
		t.Error("different queue contents share a fingerprint")
	}

	// Perturb the posterior weights beyond the 1e-6 quantum.
	s4 := cacheSupport(10 * time.Second)
	s4[0].W, s4[1].W = 0.5, 0.5
	if fp64(s1, nil, 10*time.Second, 0, 1e-6) == fp64(s4, nil, 10*time.Second, 0, 1e-6) {
		t.Error("different weights share a fingerprint")
	}

	// Pending sends are part of the situation.
	pend := []model.Send{{Seq: 7, At: 10 * time.Second}}
	if fp64(s1, pend, 10*time.Second, 0, 1e-6) == fp64(s1, nil, 10*time.Second, 0, 1e-6) {
		t.Error("pending send does not affect the fingerprint")
	}
}

// TestFingerprintWeightRounding: weight quantization is round-to-nearest,
// so two weights equal to within one ulp share a fingerprint AND a
// verification hash. Under the old truncating quantization,
// 0.3/1e-6 = 299999.999... truncated to 299999 while an ulp above 0.3
// truncated to 300000, splitting entries for practically identical
// beliefs.
func TestFingerprintWeightRounding(t *testing.T) {
	base := cacheSupport(10 * time.Second)
	pert := cacheSupport(10 * time.Second)
	// One-ulp perturbations around a weight whose quotient by the
	// quantum is inexact.
	base[0].W = 0.3
	pert[0].W = math.Nextafter(0.3, 1) // one ulp up
	base[1].W, pert[1].W = 0.7, 0.7
	f1, v1 := Fingerprint(base, nil, 10*time.Second, 0, 1e-6)
	f2, v2 := Fingerprint(pert, nil, 10*time.Second, 0, 1e-6)
	if f1 != f2 || v1 != v2 {
		t.Errorf("ulp-perturbed weights split the fingerprint: (%x,%x) vs (%x,%x)", f1, v1, f2, v2)
	}
	pert[0].W = math.Nextafter(0.3, 0) // one ulp down
	f3, v3 := Fingerprint(pert, nil, 10*time.Second, 0, 1e-6)
	if f1 != f3 || v1 != v3 {
		t.Errorf("ulp-below weight split the fingerprint")
	}
	// A genuinely different weight (more than half a quantum away)
	// still separates.
	pert[0].W = 0.3 + 2e-6
	if f4, _ := Fingerprint(pert, nil, 10*time.Second, 0, 1e-6); f4 == f1 {
		t.Error("distinct weights share a fingerprint")
	}
}

// TestPolicyCacheEvictRepopulates: after an eviction at MaxEntries the
// cache keeps counting misses correctly and serves hits again once
// repopulated.
func TestPolicyCacheEvictRepopulates(t *testing.T) {
	cfg := DefaultConfig()
	pc := NewPolicyCache(1) // evict on the second distinct situation

	t1 := 10 * time.Second
	pc.Decide(cacheSupport(t1), nil, t1, 0, cfg)

	// A different situation (extra queued packet) forces an eviction.
	s2 := cacheSupport(t1)
	s2[0].S.Queue = append(s2[0].S.Queue, model.QPkt{Seq: -1, Bits: 12000})
	s2[0].S.QueueBits += 12000
	pc.Decide(s2, nil, t1, 0, cfg)
	if pc.Misses != 2 {
		t.Fatalf("distinct situations: misses=%d, want 2", pc.Misses)
	}

	// The first situation was the clock hand's victim: miss again,
	// then hit.
	pc.Decide(cacheSupport(t1), nil, t1, 0, cfg)
	if pc.Misses != 3 {
		t.Fatalf("evicted entry still hit: misses=%d, want 3", pc.Misses)
	}
	pc.Decide(cacheSupport(t1), nil, t1, 0, cfg)
	if pc.Hits != 1 {
		t.Fatalf("repopulated entry missed: hits=%d", pc.Hits)
	}
}

// distinctSupport builds the i-th of many distinct steady-state-looking
// situations by varying the queue depth signature (cheap, and clearly a
// different network situation per i).
func distinctSupport(i int) []belief.Hypothesis {
	sup := cacheSupport(10 * time.Second)
	for j := 0; j <= i; j++ {
		sup[0].S.Queue = append(sup[0].S.Queue, model.QPkt{Seq: -1, Bits: int64(1000 + 100*j)})
	}
	return sup
}

// TestPolicyCacheIncrementalEviction: crossing MaxEntries evicts one
// cold entry, not the whole map. The hot working set keeps hitting
// across the boundary — under the old wholesale reset the hit rate
// collapsed to zero every time the cache filled.
func TestPolicyCacheIncrementalEviction(t *testing.T) {
	const max = 8
	pc := NewPolicyCache(max)
	now := 10 * time.Second

	// Fill to capacity with distinct situations.
	for i := 0; i < max; i++ {
		pc.Store(distinctSupport(i), nil, now, Decision{WakeAt: now + time.Duration(i+1)*time.Millisecond})
	}
	if pc.Len() != max {
		t.Fatalf("resident = %d, want %d", pc.Len(), max)
	}

	// Mark the first 7 hot (second chance), leave the 8th cold.
	hot := max - 1
	for i := 0; i < hot; i++ {
		if _, ok := pc.Lookup(distinctSupport(i), nil, now); !ok {
			t.Fatalf("entry %d missing before boundary", i)
		}
	}

	// Push 4 new situations across the boundary, re-touching the hot
	// set between insertions, and count probe hits on the hot set.
	probes, hits := 0, 0
	for k := 0; k < 4; k++ {
		pc.Store(distinctSupport(max+k), nil, now, Decision{WakeAt: now + time.Second})
		for i := 0; i < hot; i++ {
			probes++
			if _, ok := pc.Lookup(distinctSupport(i), nil, now); ok {
				hits++
			}
		}
	}
	if pc.Evictions != 4 {
		t.Errorf("evictions = %d, want 4 (one per boundary insert)", pc.Evictions)
	}
	// The clock hand must preserve the recently-used set: the floor is
	// deliberately strict — every hot entry survives, because each
	// insertion evicts the one cold/unused slot.
	if rate := float64(hits) / float64(probes); rate < 0.99 {
		t.Errorf("hot-set hit rate across eviction boundary = %.2f (%d/%d), want ~1.0; wholesale reset regression?",
			rate, hits, probes)
	}
	if pc.Len() != max {
		t.Errorf("resident = %d after boundary churn, want %d", pc.Len(), max)
	}
}

// TestPolicyCacheProbeCounterSplit: Lookup probes must not pollute the
// Decide-path Hits/Misses — Guard uses Lookup as its fallback rung, and
// the old shared counters double-counted every budget-blown decision,
// skewing the hit rate the fleet benches report.
func TestPolicyCacheProbeCounterSplit(t *testing.T) {
	cfg := DefaultConfig()
	pc := NewPolicyCache(0)
	now := 10 * time.Second
	sup := cacheSupport(now)

	if _, ok := pc.Lookup(sup, nil, now); ok {
		t.Fatal("empty cache lookup hit")
	}
	if pc.ProbeMisses != 1 || pc.Misses != 0 || pc.Hits != 0 {
		t.Fatalf("probe miss leaked into Decide counters: hits=%d misses=%d probeMisses=%d",
			pc.Hits, pc.Misses, pc.ProbeMisses)
	}

	pc.Decide(sup, nil, now, 0, cfg)
	if pc.Misses != 1 || pc.ProbeMisses != 1 {
		t.Fatalf("decide miss miscounted: misses=%d probeMisses=%d", pc.Misses, pc.ProbeMisses)
	}

	if _, ok := pc.Lookup(sup, nil, now); !ok {
		t.Fatal("stored entry not probed")
	}
	if pc.ProbeHits != 1 || pc.Hits != 0 {
		t.Fatalf("probe hit leaked into Decide counters: hits=%d probeHits=%d", pc.Hits, pc.ProbeHits)
	}

	pc.Decide(sup, nil, now, 0, cfg)
	if pc.Hits != 1 || pc.ProbeHits != 1 {
		t.Fatalf("decide hit miscounted: hits=%d probeHits=%d", pc.Hits, pc.ProbeHits)
	}
}

// TestPolicyCacheCollisionDetected: an entry whose primary fingerprint
// matches but whose verification hash does not is a forced 64-bit
// collision — it must be served as a miss (recomputed), never as the
// wrong action.
func TestPolicyCacheCollisionDetected(t *testing.T) {
	cfg := DefaultConfig()
	pc := NewPolicyCache(0)
	now := 10 * time.Second
	sup := cacheSupport(now)
	tq, wq := pc.quanta()
	fp, ver := Fingerprint(sup, nil, now, tq, wq)

	// Forge a resident entry under this belief's fingerprint with a
	// wrong verification hash and a poisoned action.
	pc.insert(fp, cachedDecision{verify: ver ^ 1, sendNow: true, delta: 0, gain: 1e9})

	if d, ok := pc.Lookup(sup, nil, now); ok {
		t.Fatalf("collided entry served by Lookup: %+v", d)
	}
	if pc.Collisions != 1 {
		t.Fatalf("collisions = %d, want 1", pc.Collisions)
	}

	want := Decide(sup, nil, now, 0, cfg)
	got := pc.Decide(sup, nil, now, 0, cfg)
	if got.SendNow != want.SendNow || got.WakeAt != want.WakeAt || got.Gain != want.Gain {
		t.Fatalf("collision not recomputed: got %+v want %+v", got, want)
	}
	if pc.Collisions != 2 || pc.Misses != 1 {
		t.Fatalf("collision counters: collisions=%d misses=%d, want 2/1", pc.Collisions, pc.Misses)
	}

	// The recompute overwrote the forged entry with the verified one.
	if d, ok := pc.Lookup(sup, nil, now); !ok || d.SendNow != want.SendNow || d.WakeAt != want.WakeAt {
		t.Fatalf("slot not healed after collision: ok=%v d=%+v", ok, d)
	}
}

// TestPolicyCacheSnapshotRoundTrips: Snapshot exposes exactly the
// resident entries with their verify hashes (the policy compiler's
// capture path), and OnStore observes every store.
func TestPolicyCacheSnapshotRoundTrips(t *testing.T) {
	pc := NewPolicyCache(0)
	var observed []Entry
	pc.OnStore = func(e Entry) { observed = append(observed, e) }
	now := 10 * time.Second
	for i := 0; i < 3; i++ {
		pc.Store(distinctSupport(i), nil, now, Decision{WakeAt: now + time.Duration(i+1)*50*time.Millisecond, Gain: float64(i)})
	}
	snap := pc.Snapshot()
	if len(snap) != 3 || len(observed) != 3 {
		t.Fatalf("snapshot=%d observed=%d, want 3/3", len(snap), len(observed))
	}
	byFP := map[uint64]Entry{}
	for _, e := range snap {
		byFP[e.FP] = e
	}
	for _, o := range observed {
		s, ok := byFP[o.FP]
		if !ok || s != o {
			t.Fatalf("observed entry %+v not in snapshot (%+v)", o, s)
		}
	}
}
