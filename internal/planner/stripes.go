package planner

import "time"

// DefaultCacheStripes is the fixed stripe count a striped fleet cache
// uses. It is deliberately a constant independent of the shard count:
// a member's stripe is flow mod DefaultCacheStripes, so as long as the
// shard count divides the stripe count, every stripe is touched by
// exactly one shard (flows with equal residue mod K share a shard AND
// a stripe set) — the stripes need no locks, and the cache's hit/miss
// sequence is a pure function of the stripe partition, never of how
// many shards the fleet happens to be split into. That invariance is
// what keeps fleet results bit-identical for any shard count.
const DefaultCacheStripes = 16

// CacheStripes is a policy cache split into a fixed number of
// independent PolicyCache stripes keyed by flow ID. Each stripe keeps
// the existing clock-hand/second-chance eviction and all per-stripe
// counters; the striped wrapper only routes and aggregates.
//
// Concurrency contract: a stripe may be used from one goroutine at a
// time. The fleet's flow → stripe mapping (flow mod Stripes) combined
// with a shard partition flow mod K, K dividing Stripes, guarantees
// that — shards own disjoint stripe subsets, so a sharded fleet shares
// one CacheStripes with zero synchronization. Aggregating methods
// (Stats, Len, SetOnStore) must only be called while no shard is
// running, e.g. at window barriers or after the run.
type CacheStripes struct {
	stripes []*PolicyCache
}

// NewCacheStripes builds n stripes (n <= 0 means DefaultCacheStripes),
// each bounded to entriesPerStripe (<= 0 means the PolicyCache
// default).
func NewCacheStripes(n, entriesPerStripe int) *CacheStripes {
	if n <= 0 {
		n = DefaultCacheStripes
	}
	cs := &CacheStripes{stripes: make([]*PolicyCache, n)}
	for i := range cs.stripes {
		cs.stripes[i] = NewPolicyCache(entriesPerStripe)
	}
	return cs
}

// Stripes reports the stripe count.
func (cs *CacheStripes) Stripes() int { return len(cs.stripes) }

// For returns the stripe serving the given flow.
func (cs *CacheStripes) For(flow uint32) *PolicyCache {
	return cs.stripes[int(flow)%len(cs.stripes)]
}

// SetQuanta applies one fingerprint quantization to every stripe. All
// stripes must share quanta — they are one logical cache, split only
// for contention.
func (cs *CacheStripes) SetQuanta(tq time.Duration, wq float64) {
	for _, s := range cs.stripes {
		s.TimeQuantum = tq
		s.WeightQuantum = wq
	}
}

// TimeQuantum reports the shared time quantum (stripe 0's, by the
// SetQuanta invariant).
func (cs *CacheStripes) TimeQuantum() time.Duration { return cs.stripes[0].TimeQuantum }

// WeightQuantum reports the shared weight quantum.
func (cs *CacheStripes) WeightQuantum() float64 { return cs.stripes[0].WeightQuantum }

// SetOnStore installs one store observer on every stripe (the offline
// policy compiler's capture hook). Stores from different stripes may
// interleave in any order when shards run in parallel; the compiler
// sorts by fingerprint, so capture order never reaches the table.
func (cs *CacheStripes) SetOnStore(fn func(Entry)) {
	for _, s := range cs.stripes {
		s.OnStore = fn
	}
}

// Stats sums the Decide-path hit/miss counters across stripes.
func (cs *CacheStripes) Stats() (hits, misses int) {
	for _, s := range cs.stripes {
		hits += s.Hits
		misses += s.Misses
	}
	return hits, misses
}

// Len sums resident entries across stripes.
func (cs *CacheStripes) Len() int {
	n := 0
	for _, s := range cs.stripes {
		n += s.Len()
	}
	return n
}
