package planner

import (
	"testing"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/model"
	"modelcc/internal/packet"
)

// decideSupport builds a realistic mid-run support: a prior conditioned
// on one acknowledged send, so hypotheses carry uneven weights and
// non-empty queues.
func decideSupport(t *testing.T) []belief.Hypothesis {
	t.Helper()
	prior := model.Prior{
		LinkRate:       model.PriorRange{Lo: 10000, Hi: 16000, N: 3},
		CrossFrac:      model.PriorRange{Lo: 0.4, Hi: 0.7, N: 2},
		LossProb:       model.PriorRange{Lo: 0, Hi: 0.2, N: 2},
		BufferCapBits:  model.PriorRange{Lo: 72000, Hi: 108000, N: 2},
		FullnessSteps:  3,
		MeanSwitch:     100 * time.Second,
		PingerMaybeOff: true,
	}
	states, _ := prior.Enumerate()
	bel := belief.NewExact(states, belief.Config{Relax: true})
	bel.RecordSend(model.Send{Seq: 0, At: 0})
	bel.Update(1500*time.Millisecond, []packet.Ack{{Seq: 0, ReceivedAt: 1200 * time.Millisecond}})
	return bel.Support()
}

// TestDecideParallelEquivalence: Decide returns the identical decision —
// same action, wake time, and bitwise-equal gain — for any worker
// count.
func TestDecideParallelEquivalence(t *testing.T) {
	sup := decideSupport(t)
	now := 1500 * time.Millisecond
	pending := []model.Send{{Seq: 1, At: now}}

	cfg1 := DefaultConfig()
	cfg1.Workers = 1
	cfgN := DefaultConfig()
	cfgN.Workers = 8

	d1 := Decide(sup, pending, now, 2, cfg1)
	dN := Decide(sup, pending, now, 2, cfgN)
	if d1 != dN {
		t.Fatalf("decision differs by worker count:\n  1 worker:  %+v\n  8 workers: %+v", d1, dN)
	}
}

// TestDecideMatchesFullRollout cross-checks the sweep's early-retired
// gains against a brute-force evaluation that simulates every candidate
// over the full horizon with no sharing and no early exit: the chosen
// action must coincide, and every candidate's gain must agree to within
// float tolerance.
func TestDecideMatchesFullRollout(t *testing.T) {
	sup := decideSupport(t)
	now := 1500 * time.Millisecond
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.MaxHyps = len(sup)
	seq := int64(2)

	d := Decide(sup, nil, now, seq, cfg)

	// Brute force, old-planner style.
	horizonEnd := now + cfg.MaxDelay + cfg.Horizon
	var evs []model.Event
	base := make([]float64, len(sup))
	for i, h := range sup {
		st := h.S.Clone()
		evs = evs[:0]
		st.Run(horizonEnd, nil, &evs)
		base[i] = cfg.Util.OfPredicted(evs, now, st.P.LossProb)
	}
	// The oracle must break ties exactly as Decide does — the same
	// packet-utility-scaled band, the same later-wins rule — or the
	// cross-check compares two different decision rules whenever a
	// gain lands inside one band but not the other.
	var tieEps float64
	for i := range sup {
		if b := 1e-6 * float64(sup[i].S.P.PktBits()); b > tieEps {
			tieEps = b
		}
	}
	bestDelta, maxGain, bestGain := 0, -1e308, -1e308
	for k := 0; time.Duration(k)*cfg.Grid <= cfg.MaxDelay; k++ {
		sendAt := now + time.Duration(k)*cfg.Grid
		var gain float64
		for i, h := range sup {
			st := h.S.Clone()
			evs = evs[:0]
			st.Run(horizonEnd, []model.Send{{Seq: seq, At: sendAt}}, &evs)
			gain += h.W * (cfg.Util.OfPredicted(evs, now, st.P.LossProb) - base[i])
		}
		if gain > maxGain {
			maxGain = gain
		}
		if gain >= maxGain-tieEps {
			bestDelta = k
			bestGain = gain
		}
	}

	wantWake := now + time.Duration(bestDelta)*cfg.Grid
	if d.SendNow != (bestDelta == 0) || (!d.SendNow && d.WakeAt != wantWake) {
		t.Errorf("sweep decision %+v; brute force wants delta=%d (wake %v)", d, bestDelta, wantWake)
	}
	if diff := d.Gain - bestGain; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("gain %v differs from brute force %v by %v", d.Gain, bestGain, diff)
	}
}
