package planner

import (
	"testing"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/model"
	"modelcc/internal/utility"
)

// certain returns a single-hypothesis support with weight 1.
func certain(s model.State) []belief.Hypothesis {
	return []belief.Hypothesis{{S: s, W: 1}}
}

func idleLink() model.State {
	return model.Initial(model.Params{LinkRate: 12000, BufferCapBits: 96000}, false)
}

func testCfg() Config {
	return Config{
		Util:     utility.Config{Alpha: 1, Kappa: time.Second},
		MaxDelay: 2400 * time.Millisecond,
		Grid:     200 * time.Millisecond,
		Horizon:  12 * time.Second,
		MaxHyps:  256,
	}
}

func TestSendNowOnIdleLink(t *testing.T) {
	// Empty queue, known link: sending now strictly dominates any delay
	// (earlier delivery, no one harmed).
	d := Decide(certain(idleLink()), nil, 0, 0, testCfg())
	if !d.SendNow {
		t.Fatalf("idle link: want SendNow, got wake at %v (gain %v)", d.WakeAt, d.Gain)
	}
	if d.Gain <= 0 {
		t.Errorf("sending on an idle link must have positive gain, got %v", d.Gain)
	}
}

func TestPacingWhenOwnQueueDeep(t *testing.T) {
	// The sender's own packets already fill several queue slots. The
	// next packet's delivery time is pinned by the backlog, so sending
	// now buys nothing over waiting: the planner must prefer a delay
	// (the tie-break that produces pacing).
	s := idleLink()
	var evs []model.Event
	sends := []model.Send{{Seq: 0, At: 0}, {Seq: 1, At: 0}, {Seq: 2, At: 0}}
	s.Run(time.Millisecond, sends, &evs)

	d := Decide(certain(s), nil, time.Millisecond, 3, testCfg())
	if d.SendNow {
		t.Fatal("deep own queue: want a paced delay, got SendNow")
	}
	if d.WakeAt <= time.Millisecond {
		t.Errorf("WakeAt = %v, want in the future", d.WakeAt)
	}
}

func TestDefersWhenBufferMayBeFull(t *testing.T) {
	// Two equally likely worlds: buffer empty vs buffer full. In the
	// full world, sending now wastes the packet (tail drop); waiting
	// one service time gets it through in both worlds. With a discount
	// timescale comparable to the queue drain time (so a delayed
	// delivery retains value), the planner must wait — the paper's
	// "begins tentatively if it is not sure of ... initial buffer
	// occupancy".
	empty := model.Initial(model.Params{LinkRate: 12000, BufferCapBits: 96000}, false)
	empty.ParamsID = 0
	full := model.Initial(model.Params{LinkRate: 12000, BufferCapBits: 96000, InitFullBits: 96000 + 12000}, false)
	full.ParamsID = 1
	sup := []belief.Hypothesis{{S: empty, W: 0.5}, {S: full, W: 0.5}}

	cfg := testCfg()
	cfg.Util.Kappa = 10 * time.Second
	d := Decide(sup, nil, 0, 0, cfg)
	if d.SendNow {
		t.Fatal("uncertain fullness: want deferral, got SendNow")
	}
}

func TestAlphaOrdering(t *testing.T) {
	// A nearly full buffer shared with active cross traffic: sending
	// now grabs the last slot and forces a future cross drop. The α < 1
	// sender should do it; the α > 1 sender should not.
	mk := func() model.State {
		p := model.Params{
			LinkRate:      12000,
			CrossRate:     8400,
			BufferCapBits: 96000,
			InitFullBits:  96000, // queue full of filler + 1 in service
		}
		return model.Initial(p, true)
	}
	cfgLow := testCfg()
	cfgLow.Util.Alpha = 0.5
	cfgHigh := testCfg()
	cfgHigh.Util.Alpha = 5

	dLow := Decide(certain(mk()), nil, 0, 0, cfgLow)
	dHigh := Decide(certain(mk()), nil, 0, 0, cfgHigh)

	if dHigh.SendNow {
		t.Error("α=5 sender sent into a full shared buffer")
	}
	// The selfish sender must act no later than the deferential one.
	lowAt, highAt := dLow.WakeAt, dHigh.WakeAt
	if dLow.SendNow {
		lowAt = 0
	}
	if lowAt > highAt {
		t.Errorf("α=0.5 waits (%v) longer than α=5 (%v)", lowAt, highAt)
	}
}

func TestPendingSendsOccupyQueueInRollouts(t *testing.T) {
	// Without pending replay, a burst of decisions at one wakeup would
	// all see an empty queue and all say "send now". With replay, after
	// a few commitments the planner must start pacing.
	s := idleLink()
	cfg := testCfg()
	var pending []model.Send
	sentNow := 0
	for i := int64(0); i < 10; i++ {
		d := Decide(certain(s), pending, 0, i, cfg)
		if !d.SendNow {
			break
		}
		sentNow++
		pending = append(pending, model.Send{Seq: i, At: 0})
	}
	if sentNow == 0 {
		t.Fatal("first decision on an idle link should send")
	}
	if sentNow >= 10 {
		t.Fatal("planner never started pacing despite 10 pending sends")
	}
}

func TestLatencyPenaltyDrainsFirst(t *testing.T) {
	// §4: with a latency penalty on cross traffic and a partially full
	// buffer, the sender waits for the backlog to drain before using
	// the link, because its packet would add queueing delay to every
	// cross packet behind it.
	p := model.Params{
		LinkRate:      12000,
		CrossRate:     3000, // light cross traffic
		BufferCapBits: 96000,
		InitFullBits:  48000,
	}
	s := model.Initial(p, true)
	cfg := testCfg()
	cfg.Util.CrossLatencyPenalty = 2.0

	d := Decide(certain(s), nil, 0, 0, cfg)
	if d.SendNow {
		t.Fatal("latency-penalized sender should wait for the buffer to drain")
	}

	// Without the penalty the same situation is worth sending into
	// sooner (or now).
	s2 := model.Initial(p, true)
	cfg2 := testCfg()
	d2 := Decide(certain(s2), nil, 0, 0, cfg2)
	at2 := d2.WakeAt
	if d2.SendNow {
		at2 = 0
	}
	if at2 > d.WakeAt {
		t.Errorf("unpenalized sender waits longer (%v) than penalized (%v)", at2, d.WakeAt)
	}
}

func TestTopK(t *testing.T) {
	s := idleLink()
	sup := []belief.Hypothesis{
		{S: s, W: 0.5}, {S: s, W: 0.3}, {S: s, W: 0.15}, {S: s, W: 0.05},
	}
	got := topK(sup, 2)
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].W < got[1].W {
		t.Error("topK not sorted by weight")
	}
	total := got[0].W + got[1].W
	if total < 0.999999 || total > 1.000001 {
		t.Errorf("topK not renormalized: %v", total)
	}
	// k >= len preserves order and weights.
	same := topK(sup, 10)
	if len(same) != 4 || same[0].W != 0.5 {
		t.Errorf("topK with k>=len altered input: %+v", same)
	}
}

func TestDecisionMetadata(t *testing.T) {
	d := Decide(certain(idleLink()), nil, 0, 0, testCfg())
	if d.Candidates != 13 { // 0..2400ms step 200ms
		t.Errorf("Candidates = %d, want 13", d.Candidates)
	}
	if d.Support != 1 {
		t.Errorf("Support = %d, want 1", d.Support)
	}
}

func TestPolicyCacheHitsOnRecurrence(t *testing.T) {
	pc := NewPolicyCache(0)
	cfg := testCfg()
	s := idleLink()

	d1 := pc.Decide(certain(s), nil, 0, 0, cfg)
	// Same situation, shifted in time and with a different sequence
	// number: must hit, and the wake time must be rebased.
	s2 := idleLink()
	s2.Now = 100 * time.Second
	s2.NextCross = s.NextCross + 100*time.Second
	s2.NextToggle = s.NextToggle + 100*time.Second
	d2 := pc.Decide(certain(s2), nil, 100*time.Second, 42, cfg)

	if pc.Hits != 1 || pc.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", pc.Hits, pc.Misses)
	}
	if d1.SendNow != d2.SendNow {
		t.Error("cache changed the decision")
	}
	if !d2.SendNow && d2.WakeAt-100*time.Second != d1.WakeAt {
		t.Errorf("cached wake not rebased: %v vs %v", d2.WakeAt, d1.WakeAt)
	}
}

func TestPolicyCacheDistinguishesQueueState(t *testing.T) {
	pc := NewPolicyCache(0)
	cfg := testCfg()
	pc.Decide(certain(idleLink()), nil, 0, 0, cfg)

	busy := idleLink()
	var evs []model.Event
	busy.Run(time.Millisecond, []model.Send{{Seq: 0, At: 0}, {Seq: 1, At: 0}}, &evs)
	pc.Decide(certain(busy), nil, time.Millisecond, 2, cfg)

	if pc.Hits != 0 {
		t.Error("cache conflated distinct queue states")
	}
}

func TestPolicyCacheResetWhenFull(t *testing.T) {
	pc := NewPolicyCache(1)
	cfg := testCfg()
	pc.Decide(certain(idleLink()), nil, 0, 0, cfg)
	busy := idleLink()
	var evs []model.Event
	busy.Run(time.Millisecond, []model.Send{{Seq: 0, At: 0}}, &evs)
	pc.Decide(certain(busy), nil, time.Millisecond, 1, cfg)
	// Capacity 1: the second distinct entry evicted the first; a repeat
	// of the first situation misses again but must not grow unbounded.
	pc.Decide(certain(idleLink()), nil, 0, 0, cfg)
	if len(pc.entries) > 1 {
		t.Errorf("cache exceeded MaxEntries: %d", len(pc.entries))
	}
}
