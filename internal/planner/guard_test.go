package planner

import (
	"testing"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/model"
)

// guardSupport builds a mid-sized uniform support: big enough that a
// live Decide takes real work (so a nanosecond budget reliably expires
// first), small enough to keep the test fast.
func guardSupport() []belief.Hypothesis {
	states, w := model.Prior{
		LinkRate:      model.PriorRange{Lo: 10000, Hi: 16000, N: 4},
		CrossFrac:     model.PriorRange{Lo: 0.4, Hi: 0.7, N: 2},
		BufferCapBits: model.PriorRange{Lo: 72000, Hi: 108000, N: 2},
		FullnessSteps: 2,
		MeanSwitch:    100 * time.Second,
	}.Enumerate()
	sup := make([]belief.Hypothesis, len(states))
	for i, s := range states {
		sup[i] = belief.Hypothesis{S: s, W: w}
	}
	return sup
}

// TestGuardLiveWithinBudget: with a generous budget the guard returns
// exactly what the live planner would.
func TestGuardLiveWithinBudget(t *testing.T) {
	sup := guardSupport()
	cfg := Config{}
	g := NewGuard(30*time.Second, nil)
	got := g.Decide(sup, nil, 0, 0, cfg)
	want := Decide(sup, nil, 0, 0, cfg)
	if got.SendNow != want.SendNow || got.WakeAt != want.WakeAt || got.Gain != want.Gain {
		t.Fatalf("guarded decision %+v != live decision %+v", got, want)
	}
	if g.Live != 1 || g.Timeouts != 0 {
		t.Fatalf("counters: live=%d timeouts=%d, want 1/0", g.Live, g.Timeouts)
	}
}

// TestGuardTimeoutFallsToSafe: an expired budget with no cache and no
// remembered action degrades to the bottom rung — no send, re-decide in
// one grid step.
func TestGuardTimeoutFallsToSafe(t *testing.T) {
	sup := guardSupport()
	g := NewGuard(time.Nanosecond, nil)
	now := 3 * time.Second
	d := g.Decide(sup, nil, now, 0, Config{})
	if d.SendNow {
		t.Fatal("blind fallback must not send")
	}
	if want := now + DefaultConfig().Grid; d.WakeAt != want {
		t.Fatalf("fallback wake %v, want %v", d.WakeAt, want)
	}
	if g.Timeouts != 1 || g.SafeFallbacks != 1 {
		t.Fatalf("counters: timeouts=%d safeFallbacks=%d, want 1/1", g.Timeouts, g.SafeFallbacks)
	}
}

// TestGuardLastSafeAction: rung 3 replays the most recent non-send
// pacing interval rather than the raw grid.
func TestGuardLastSafeAction(t *testing.T) {
	g := NewGuard(time.Nanosecond, nil)
	g.noteSafe(Decision{WakeAt: 1300 * time.Millisecond}, time.Second)
	now := 10 * time.Second
	d := g.Decide(guardSupport(), nil, now, 0, Config{})
	if d.SendNow {
		t.Fatal("fallback must not send")
	}
	if want := now + 300*time.Millisecond; d.WakeAt != want {
		t.Fatalf("fallback wake %v, want %v (last safe delta rebased)", d.WakeAt, want)
	}
}

// TestGuardCacheSeededByStraggler: a Decide that blows its budget keeps
// cooking; its drained result seeds the cache, and a later timeout on
// the same situation is served from there.
func TestGuardCacheSeededByStraggler(t *testing.T) {
	sup := guardSupport()
	g := NewGuard(time.Nanosecond, NewPolicyCache(0))
	now := 2 * time.Second
	deadline := time.Now().Add(5 * time.Second)
	for g.CacheHits == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no cache hit within 5s: timeouts=%d overlaps=%d safeFallbacks=%d",
				g.Timeouts, g.Overlaps, g.SafeFallbacks)
		}
		// A cache-hit fallback may legitimately send — it is a real
		// computed decision; only the blind rungs below it never do.
		g.Decide(sup, nil, now, 0, Config{})
		time.Sleep(5 * time.Millisecond)
	}
	// The cached decision must match what the live planner computes.
	cached, ok := g.Cache.Lookup(sup, nil, now)
	if !ok {
		t.Fatal("lookup missed after a recorded hit")
	}
	want := Decide(sup, nil, now, 0, Config{})
	if cached.SendNow != want.SendNow || cached.WakeAt != want.WakeAt {
		t.Fatalf("cached %+v != live %+v", cached, want)
	}
}

// fakeCompiled is a test CompiledPolicy: a fixed decision (rebased to
// now) when hit is true, and a log of recorded misses.
type fakeCompiled struct {
	hit    bool
	delta  time.Duration
	send   bool
	probes int
	misses []Decision
}

func (f *fakeCompiled) Probe(sup []belief.Hypothesis, pending []model.Send, now time.Duration) (Decision, bool) {
	f.probes++
	if !f.hit {
		return Decision{}, false
	}
	return Decision{SendNow: f.send, WakeAt: now + f.delta, Support: len(sup)}, true
}

func (f *fakeCompiled) RecordMiss(sup []belief.Hypothesis, pending []model.Send, now time.Duration, d Decision) {
	f.misses = append(f.misses, d)
}

// TestGuardCompiledRungServes: a compiled-table hit answers without
// touching the live planner, on both the synchronous and the budgeted
// path.
func TestGuardCompiledRungServes(t *testing.T) {
	sup := guardSupport()
	for _, budget := range []time.Duration{0, 30 * time.Second} {
		fc := &fakeCompiled{hit: true, delta: 250 * time.Millisecond}
		g := NewGuard(budget, nil)
		g.Compiled = fc
		now := 5 * time.Second
		d := g.Decide(sup, nil, now, 0, Config{})
		if d.SendNow || d.WakeAt != now+250*time.Millisecond {
			t.Fatalf("budget=%v: compiled decision not served: %+v", budget, d)
		}
		if g.CompiledHits != 1 || g.Live != 0 {
			t.Fatalf("budget=%v: counters compiled=%d live=%d, want 1/0", budget, g.CompiledHits, g.Live)
		}
		if len(fc.misses) != 0 {
			t.Fatalf("budget=%v: hit recorded as miss", budget)
		}
	}
}

// TestGuardCompiledMissFallsToLiveAndRecords: a table miss falls
// through to live planning (identical decision to the unguarded
// planner) and the live result is fed back via RecordMiss.
func TestGuardCompiledMissFallsToLiveAndRecords(t *testing.T) {
	sup := guardSupport()
	fc := &fakeCompiled{hit: false}
	g := NewGuard(0, nil)
	g.Compiled = fc
	got := g.Decide(sup, nil, 0, 0, Config{})
	want := Decide(sup, nil, 0, 0, Config{})
	if got.SendNow != want.SendNow || got.WakeAt != want.WakeAt || got.Gain != want.Gain {
		t.Fatalf("miss path decision %+v != live %+v", got, want)
	}
	if fc.probes != 1 || len(fc.misses) != 1 {
		t.Fatalf("probes=%d misses=%d, want 1/1", fc.probes, len(fc.misses))
	}
	if m := fc.misses[0]; m.SendNow != want.SendNow || m.WakeAt != want.WakeAt {
		t.Fatalf("recorded miss %+v != served decision %+v", m, want)
	}
	if g.Live != 1 || g.CompiledHits != 0 {
		t.Fatalf("counters live=%d compiled=%d, want 1/0", g.Live, g.CompiledHits)
	}
}

// TestGuardDegradedServesWithoutLivePlanning: degraded mode pins
// Decide to the degradation ladder — compiled table when wired, blind
// fallback on a miss — and never consults the live planner. Degraded
// serving must not advance ConsecutiveOverruns: the planner is being
// administratively bypassed, not missing deadlines, and a health sweep
// that read overruns here would fail exactly the members the watchdog
// is protecting.
func TestGuardDegradedServesWithoutLivePlanning(t *testing.T) {
	sup := guardSupport()
	fc := &fakeCompiled{hit: true, delta: 200 * time.Millisecond}
	g := NewGuard(30*time.Second, nil)
	g.Compiled = fc
	g.Degraded = true
	now := 4 * time.Second
	d := g.Decide(sup, nil, now, 0, Config{})
	if d.WakeAt != now+200*time.Millisecond {
		t.Fatalf("degraded compiled decision not served: %+v", d)
	}
	if g.DegradedServed != 1 || g.CompiledHits != 1 || g.Live != 0 {
		t.Fatalf("counters degraded=%d compiled=%d live=%d, want 1/1/0",
			g.DegradedServed, g.CompiledHits, g.Live)
	}

	// Compiled miss with no cache and no remembered action: bottom
	// rung, still no live planning, overrun counter untouched.
	fc.hit = false
	if d = g.Decide(sup, nil, now, 0, Config{}); d.SendNow {
		t.Fatal("degraded blind fallback must not send")
	}
	if g.DegradedServed != 2 || g.Live != 0 || g.SafeFallbacks != 1 {
		t.Fatalf("counters degraded=%d live=%d safe=%d, want 2/0/1",
			g.DegradedServed, g.Live, g.SafeFallbacks)
	}
	if g.ConsecutiveOverruns != 0 {
		t.Fatalf("degraded serving advanced ConsecutiveOverruns to %d", g.ConsecutiveOverruns)
	}

	// Released: the guard plans live again and stops counting.
	g.Degraded = false
	g.Decide(sup, nil, now, 0, Config{})
	if g.Live != 1 || g.DegradedServed != 2 {
		t.Fatalf("released guard live=%d degraded=%d, want 1/2", g.Live, g.DegradedServed)
	}
}

// TestGuardLatencySampling: RecordLatency captures one sample per
// Decide on the serving path.
func TestGuardLatencySampling(t *testing.T) {
	fc := &fakeCompiled{hit: true, delta: 100 * time.Millisecond}
	g := NewGuard(0, nil)
	g.Compiled = fc
	g.RecordLatency = true
	sup := guardSupport()
	for i := 0; i < 3; i++ {
		g.Decide(sup, nil, time.Duration(i)*time.Second, 0, Config{})
	}
	if len(g.Latencies) != 3 {
		t.Fatalf("latency samples = %d, want 3", len(g.Latencies))
	}
	for _, ns := range g.Latencies {
		if ns < 0 {
			t.Fatalf("negative latency sample %d", ns)
		}
	}
}
