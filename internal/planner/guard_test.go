package planner

import (
	"testing"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/model"
)

// guardSupport builds a mid-sized uniform support: big enough that a
// live Decide takes real work (so a nanosecond budget reliably expires
// first), small enough to keep the test fast.
func guardSupport() []belief.Hypothesis {
	states, w := model.Prior{
		LinkRate:      model.PriorRange{Lo: 10000, Hi: 16000, N: 4},
		CrossFrac:     model.PriorRange{Lo: 0.4, Hi: 0.7, N: 2},
		BufferCapBits: model.PriorRange{Lo: 72000, Hi: 108000, N: 2},
		FullnessSteps: 2,
		MeanSwitch:    100 * time.Second,
	}.Enumerate()
	sup := make([]belief.Hypothesis, len(states))
	for i, s := range states {
		sup[i] = belief.Hypothesis{S: s, W: w}
	}
	return sup
}

// TestGuardLiveWithinBudget: with a generous budget the guard returns
// exactly what the live planner would.
func TestGuardLiveWithinBudget(t *testing.T) {
	sup := guardSupport()
	cfg := Config{}
	g := NewGuard(30*time.Second, nil)
	got := g.Decide(sup, nil, 0, 0, cfg)
	want := Decide(sup, nil, 0, 0, cfg)
	if got.SendNow != want.SendNow || got.WakeAt != want.WakeAt || got.Gain != want.Gain {
		t.Fatalf("guarded decision %+v != live decision %+v", got, want)
	}
	if g.Live != 1 || g.Timeouts != 0 {
		t.Fatalf("counters: live=%d timeouts=%d, want 1/0", g.Live, g.Timeouts)
	}
}

// TestGuardTimeoutFallsToSafe: an expired budget with no cache and no
// remembered action degrades to the bottom rung — no send, re-decide in
// one grid step.
func TestGuardTimeoutFallsToSafe(t *testing.T) {
	sup := guardSupport()
	g := NewGuard(time.Nanosecond, nil)
	now := 3 * time.Second
	d := g.Decide(sup, nil, now, 0, Config{})
	if d.SendNow {
		t.Fatal("blind fallback must not send")
	}
	if want := now + DefaultConfig().Grid; d.WakeAt != want {
		t.Fatalf("fallback wake %v, want %v", d.WakeAt, want)
	}
	if g.Timeouts != 1 || g.SafeFallbacks != 1 {
		t.Fatalf("counters: timeouts=%d safeFallbacks=%d, want 1/1", g.Timeouts, g.SafeFallbacks)
	}
}

// TestGuardLastSafeAction: rung 3 replays the most recent non-send
// pacing interval rather than the raw grid.
func TestGuardLastSafeAction(t *testing.T) {
	g := NewGuard(time.Nanosecond, nil)
	g.noteSafe(Decision{WakeAt: 1300 * time.Millisecond}, time.Second)
	now := 10 * time.Second
	d := g.Decide(guardSupport(), nil, now, 0, Config{})
	if d.SendNow {
		t.Fatal("fallback must not send")
	}
	if want := now + 300*time.Millisecond; d.WakeAt != want {
		t.Fatalf("fallback wake %v, want %v (last safe delta rebased)", d.WakeAt, want)
	}
}

// TestGuardCacheSeededByStraggler: a Decide that blows its budget keeps
// cooking; its drained result seeds the cache, and a later timeout on
// the same situation is served from there.
func TestGuardCacheSeededByStraggler(t *testing.T) {
	sup := guardSupport()
	g := NewGuard(time.Nanosecond, NewPolicyCache(0))
	now := 2 * time.Second
	deadline := time.Now().Add(5 * time.Second)
	for g.CacheHits == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no cache hit within 5s: timeouts=%d overlaps=%d safeFallbacks=%d",
				g.Timeouts, g.Overlaps, g.SafeFallbacks)
		}
		// A cache-hit fallback may legitimately send — it is a real
		// computed decision; only the blind rungs below it never do.
		g.Decide(sup, nil, now, 0, Config{})
		time.Sleep(5 * time.Millisecond)
	}
	// The cached decision must match what the live planner computes.
	cached, ok := g.Cache.Lookup(sup, nil, now)
	if !ok {
		t.Fatal("lookup missed after a recorded hit")
	}
	want := Decide(sup, nil, now, 0, Config{})
	if cached.SendNow != want.SendNow || cached.WakeAt != want.WakeAt {
		t.Fatalf("cached %+v != live %+v", cached, want)
	}
}
