// Package planner implements the ISENDER's action selection (§3.2–3.3):
// at every wakeup it "makes a list of strategies including sending
// immediately and at every delay up to the slowest rate", evaluates the
// consequences of each strategy on each possible network configuration,
// and chooses the strategy maximizing the expected utility.
//
// A strategy is "inject the next packet at now+δ" for δ on a grid from 0
// to MaxDelay. For each hypothesis the planner clones the state and rolls
// it forward deterministically (gate frozen, loss in expectation — see
// DESIGN.md for why these planning approximations do not change the
// argmax in the paper's configurations), accumulating the utility of all
// own and cross deliveries over a common horizon. Candidate utilities are
// measured relative to the no-send rollout of the same hypothesis, which
// keeps the differences well-conditioned: the large cross-traffic
// background term cancels exactly.
//
// Ties break toward the longest delay. This is what turns the utility
// maximization into pacing: when the queue already guarantees a packet's
// delivery time, sending it any earlier buys nothing, so the sender
// waits — and it is also why an α ≥ 1 sender never overflows the buffer
// (Figure 3's headline behaviour).
package planner

import (
	"sort"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/model"
	"modelcc/internal/utility"
)

// Config tunes the planner.
type Config struct {
	// Util is the utility function being maximized.
	Util utility.Config
	// MaxDelay bounds the candidate grid: the longest the sender will
	// commit to sleeping before re-deciding. The default, 2.4 s, is two
	// packet times at the slowest prior link rate in the paper's
	// experiment (10 kbit/s), honouring "every delay up to the slowest
	// rate the ISENDER could optimally send".
	MaxDelay time.Duration
	// Grid is the candidate spacing (default 200 ms).
	Grid time.Duration
	// Horizon extends each rollout beyond the last candidate send so
	// that queued consequences (displaced cross packets, induced drops)
	// are counted — the paper's "until the consequences of each
	// hypothetically sent packet have ceased to linger". The default,
	// 30 s, covers the drain of the largest prior buffer plus the
	// displacement tail a sent packet pushes through the cross traffic.
	Horizon time.Duration
	// MaxHyps plans against at most this many of the heaviest
	// hypotheses, renormalized (default 256). Planning cost is linear
	// in it; the discarded tail carries negligible posterior mass.
	MaxHyps int
}

// DefaultConfig returns the planning parameters used by the experiments.
func DefaultConfig() Config {
	return Config{
		Util:     utility.Default(),
		MaxDelay: 2400 * time.Millisecond,
		Grid:     200 * time.Millisecond,
		Horizon:  40 * time.Second,
		MaxHyps:  256,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MaxDelay <= 0 {
		c.MaxDelay = d.MaxDelay
	}
	if c.Grid <= 0 {
		c.Grid = d.Grid
	}
	if c.Horizon <= 0 {
		c.Horizon = d.Horizon
	}
	if c.MaxHyps <= 0 {
		c.MaxHyps = d.MaxHyps
	}
	if c.Util.Kappa <= 0 {
		c.Util.Kappa = d.Util.Kappa
	}
	return c
}

// Decision is the planner's chosen action.
type Decision struct {
	// SendNow is true when the best strategy is to inject immediately.
	SendNow bool
	// WakeAt is the absolute time to re-decide when not sending now
	// (the chosen δ's send time; the sender re-plans on wake, so an
	// acknowledgment arriving earlier simply re-decides sooner).
	WakeAt time.Duration
	// Gain is the chosen candidate's expected utility advantage over
	// the no-send baseline.
	Gain float64
	// Candidates is how many delays were evaluated.
	Candidates int
	// Support is how many hypotheses the plan was computed against.
	Support int
}

// Decide selects the expected-utility-maximizing action at `now` for the
// packet with sequence number seq. pending are sends already committed
// but not yet folded into the belief (they are replayed in every
// rollout, so successive decisions within one wakeup see each other's
// queue occupancy).
func Decide(sup []belief.Hypothesis, pending []model.Send, now time.Duration, seq int64, cfg Config) Decision {
	cfg = cfg.withDefaults()
	hyps := topK(sup, cfg.MaxHyps)

	horizonEnd := now + cfg.MaxDelay + cfg.Horizon

	// Per-hypothesis no-send baseline.
	base := make([]float64, len(hyps))
	var evs []model.Event
	for i, h := range hyps {
		st := h.S.Clone()
		evs = evs[:0]
		st.Run(horizonEnd, pending, &evs)
		base[i] = cfg.Util.OfPredicted(evs, now, st.P.LossProb)
	}

	bestDelta := 0
	bestGain := negInf
	candidates := 0
	sends := make([]model.Send, 0, len(pending)+1)
	for delta := time.Duration(0); delta <= cfg.MaxDelay; delta += cfg.Grid {
		candidates++
		sendAt := now + delta
		sends = sends[:0]
		// pending are all <= now <= sendAt, so ordering holds.
		sends = append(sends, pending...)
		sends = append(sends, model.Send{Seq: seq, At: sendAt})

		var gain float64
		for i, h := range hyps {
			st := h.S.Clone()
			evs = evs[:0]
			st.Run(horizonEnd, sends, &evs)
			u := cfg.Util.OfPredicted(evs, now, st.P.LossProb)
			gain += h.W * (u - base[i])
		}
		// Strict improvement keeps δ=0 only when genuinely better;
		// equality prefers the later candidate (pacing).
		if gain >= bestGain {
			bestGain = gain
			bestDelta = int(delta / cfg.Grid)
		}
	}

	d := Decision{
		Gain:       bestGain,
		Candidates: candidates,
		Support:    len(hyps),
	}
	if bestDelta == 0 {
		d.SendNow = true
		d.WakeAt = now
		return d
	}
	d.WakeAt = now + time.Duration(bestDelta)*cfg.Grid
	return d
}

const negInf = -1e308

// topK returns the k heaviest hypotheses, renormalized. It copies; the
// input order is preserved for k >= len.
func topK(sup []belief.Hypothesis, k int) []belief.Hypothesis {
	out := make([]belief.Hypothesis, len(sup))
	copy(out, sup)
	if len(out) > k {
		sort.Slice(out, func(i, j int) bool { return out[i].W > out[j].W })
		out = out[:k]
	}
	var total float64
	for _, h := range out {
		total += h.W
	}
	if total > 0 {
		for i := range out {
			out[i].W /= total
		}
	}
	return out
}
