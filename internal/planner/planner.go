// Package planner implements the ISENDER's action selection (§3.2–3.3):
// at every wakeup it "makes a list of strategies including sending
// immediately and at every delay up to the slowest rate", evaluates the
// consequences of each strategy on each possible network configuration,
// and chooses the strategy maximizing the expected utility.
//
// A strategy is "inject the next packet at now+δ" for δ on a grid from 0
// to MaxDelay. For each hypothesis the planner clones the state and rolls
// it forward deterministically (gate frozen, loss in expectation — see
// DESIGN.md for why these planning approximations do not change the
// argmax in the paper's configurations), accumulating the utility of all
// own and cross deliveries over a common horizon. Candidate utilities are
// measured relative to the no-send rollout of the same hypothesis, which
// keeps the differences well-conditioned: the large cross-traffic
// background term cancels exactly.
//
// Ties break toward the longest delay. This is what turns the utility
// maximization into pacing: when the queue already guarantees a packet's
// delivery time, sending it any earlier buys nothing, so the sender
// waits — and it is also why an α ≥ 1 sender never overflows the buffer
// (Figure 3's headline behaviour).
package planner

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/model"
	"modelcc/internal/rollout"
	"modelcc/internal/utility"
)

// Config tunes the planner.
type Config struct {
	// Util is the utility function being maximized.
	Util utility.Config
	// MaxDelay bounds the candidate grid: the longest the sender will
	// commit to sleeping before re-deciding. The default, 2.4 s, is two
	// packet times at the slowest prior link rate in the paper's
	// experiment (10 kbit/s), honouring "every delay up to the slowest
	// rate the ISENDER could optimally send".
	MaxDelay time.Duration
	// Grid is the candidate spacing (default 200 ms).
	Grid time.Duration
	// Horizon extends each rollout beyond the last candidate send so
	// that queued consequences (displaced cross packets, induced drops)
	// are counted — the paper's "until the consequences of each
	// hypothetically sent packet have ceased to linger". The default,
	// 30 s, covers the drain of the largest prior buffer plus the
	// displacement tail a sent packet pushes through the cross traffic.
	Horizon time.Duration
	// MaxHyps plans against at most this many of the heaviest
	// hypotheses, renormalized (default 256). Planning cost is linear
	// in it; the discarded tail carries negligible posterior mass.
	MaxHyps int
	// Workers shards the per-hypothesis rollouts across a worker pool:
	// 0 means GOMAXPROCS, 1 forces the serial path. The decision is
	// bit-identical for every worker count — per-hypothesis results are
	// written into per-index slots and reduced in index order.
	Workers int
	// Pool, when non-nil, supplies the worker pool instead of Decide
	// checking one out of the per-width cache. A fleet of senders
	// (internal/fleet) plans every member on the same pool so one set of
	// scratch arenas serves the whole fleet. The pool must not be used
	// from multiple goroutines at once. The decision is bit-identical
	// for any pool width.
	Pool *rollout.Pool
}

// DefaultConfig returns the planning parameters used by the experiments.
func DefaultConfig() Config {
	return Config{
		Util:     utility.Default(),
		MaxDelay: 2400 * time.Millisecond,
		Grid:     200 * time.Millisecond,
		Horizon:  40 * time.Second,
		MaxHyps:  256,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MaxDelay <= 0 {
		c.MaxDelay = d.MaxDelay
	}
	if c.Grid <= 0 {
		c.Grid = d.Grid
	}
	if c.Horizon <= 0 {
		c.Horizon = d.Horizon
	}
	if c.MaxHyps <= 0 {
		c.MaxHyps = d.MaxHyps
	}
	if c.Util.Kappa <= 0 {
		c.Util.Kappa = d.Util.Kappa
	}
	return c
}

// Decision is the planner's chosen action.
type Decision struct {
	// SendNow is true when the best strategy is to inject immediately.
	SendNow bool
	// WakeAt is the absolute time to re-decide when not sending now
	// (the chosen δ's send time; the sender re-plans on wake, so an
	// acknowledgment arriving earlier simply re-decides sooner).
	WakeAt time.Duration
	// Gain is the chosen candidate's expected utility advantage over
	// the no-send baseline.
	Gain float64
	// Candidates is how many delays were evaluated.
	Candidates int
	// Support is how many hypotheses the plan was computed against.
	Support int
}

// lockstepChunk is how often a candidate rollout is checked for
// reconvergence with its baseline. Coarser chunks amortize the Run-loop
// entry cost; finer ones stop dead rollouts sooner.
const lockstepChunk = time.Second

// Decide selects the expected-utility-maximizing action at `now` for the
// packet with sequence number seq. pending are sends already committed
// but not yet folded into the belief (they are replayed in every
// rollout, so successive decisions within one wakeup see each other's
// queue occupancy).
//
// The per-hypothesis work is one forward sweep over a grid of sync
// stops (every candidate send time, then every lockstepChunk), built
// for the rollout engine's three economies. (1) The no-send baseline is
// simulated exactly once; each candidate forks from it in place when
// the sweep reaches its send time, so [now, now+δ) is never
// re-simulated. (2) Candidates advance alongside the baseline and
// retire at the first stop where their state coincides with it —
// identical states have identical futures (the hypothesis is
// deterministic during planning: gate frozen, loss in expectation), so
// every later utility term cancels and the accumulated gain is final;
// the sweep itself ends when every candidate has retired, which in
// steady state cuts the simulated span from the 40 s Horizon to the few
// seconds the extra packet's consequences actually linger. (3)
// Hypotheses are sharded across cfg.Workers, each with a scratch arena
// of states, discount meters, and event buffers, so the steady-state
// decision allocates almost nothing.
func Decide(sup []belief.Hypothesis, pending []model.Send, now time.Duration, seq int64, cfg Config) Decision {
	cfg = cfg.withDefaults()
	hyps := topK(sup, cfg.MaxHyps)

	horizonEnd := now + cfg.MaxDelay + cfg.Horizon
	candidates := int(cfg.MaxDelay/cfg.Grid) + 1

	// Sync stops: candidate send times on the Grid, chunk boundaries to
	// the horizon, horizonEnd itself. stops[k] for k < candidates is
	// candidate k's send time.
	stops := make([]time.Duration, 0, candidates+int(cfg.Horizon/lockstepChunk)+2)
	for k := 0; k < candidates; k++ {
		stops = append(stops, now+time.Duration(k)*cfg.Grid)
	}
	for t := now + cfg.MaxDelay + lockstepChunk; t < horizonEnd; t += lockstepChunk {
		stops = append(stops, t)
	}
	stops = append(stops, horizonEnd)

	// gains[i*candidates+k] is hypothesis i's utility advantage of
	// sending at now+k·Grid over not sending, relative to decision time
	// now. Per-index slots keep the parallel fill deterministic.
	gains := make([]float64, len(hyps)*candidates)

	pool := cfg.Pool
	release := func() {}
	if pool == nil {
		pool, release = acquirePool(cfg.Workers)
	}
	pool.Run(len(hyps), func(s *rollout.Scratch, i int) {
		h := &hyps[i]
		p := h.S.P.LossProb
		ds, _ := s.Aux.(*decideScratch)
		if ds == nil {
			ds = &decideScratch{}
			s.Aux = ds
		}
		ds.ensure(candidates)

		base := &s.Base
		h.S.CloneInto(base)
		ds.baseMeter.Reset(cfg.Util, now, p)

		forked, live := 0, 0
		fork := func(k int) {
			base.CloneInto(&ds.cands[k])
			ds.meters[k].Reset(cfg.Util, now, p)
			ds.gains[k] = 0
			ds.done[k] = false
			// The candidate's own send, then any pending sends still
			// in the future (all pending are <= now in practice, so
			// the tail is normally empty); At-order holds by
			// construction.
			cs := append(ds.candSends[k][:0], model.Send{Seq: seq, At: stops[k]})
			for _, snd := range pending {
				if snd.At > stops[k] {
					cs = append(cs, snd)
				}
			}
			ds.candSends[k] = cs
			ds.sendIdx[k] = 0
			forked++
			live++
		}

		// Baseline to the first stop (= now), consuming pending sends
		// due by then; then the sweep forks candidate 0.
		si := 0
		for si < len(pending) && pending[si].At <= stops[0] {
			si++
		}
		s.Events = s.Events[:0]
		base.Run(stops[0], pending[:si], &s.Events)
		ds.baseMeter.Add(s.Events)
		fork(0)

		for j := 1; j < len(stops) && (forked < candidates || live > 0); j++ {
			t := stops[j]
			hi := si
			for hi < len(pending) && pending[hi].At <= t {
				hi++
			}
			s.Events = s.Events[:0]
			base.Run(t, pending[si:hi], &s.Events)
			si = hi
			baseSegU := ds.baseMeter.Add(s.Events)

			for k := 0; k < forked; k++ {
				if ds.done[k] {
					continue
				}
				cs := ds.candSends[k]
				cHi := ds.sendIdx[k]
				for cHi < len(cs) && cs[cHi].At <= t {
					cHi++
				}
				s.Events = s.Events[:0]
				ds.cands[k].Run(t, cs[ds.sendIdx[k]:cHi], &s.Events)
				ds.sendIdx[k] = cHi
				ds.gains[k] += ds.meters[k].Add(s.Events) - baseSegU
				// Identical states with identical remaining sends
				// have identical futures: every later utility term
				// cancels, so this candidate's gain is final. (The
				// send streams differ only by the candidate's own
				// packet, consumed by the first stop after its fork.)
				if ds.cands[k].EqualDynamic(base) {
					ds.done[k] = true
					live--
				}
			}
			if j < candidates {
				fork(j)
			}
		}
		copy(gains[i*candidates:(i+1)*candidates], ds.gains)
	})
	release()

	// Sequential reduce, candidate-major like the serial planner: ties
	// keep preferring the later send time (pacing). The tie widens to a
	// band of tieEps — 1e-6 of one packet's utility, the natural scale
	// of a gain — because at the α=1 knife edge, where a sent packet's
	// gain and the cross packet it displaces cancel exactly, rounding
	// noise must not masquerade as a reason to send. Scaling to packet
	// utility (rather than an absolute constant) keeps the band
	// meaningful for small-κ configurations where all utilities shrink.
	var tieEps float64
	for i := range hyps {
		if b := 1e-6 * float64(hyps[i].S.P.PktBits()); b > tieEps {
			tieEps = b
		}
	}
	bestDelta := 0
	maxGain := negInf
	chosenGain := negInf
	for k := 0; k < candidates; k++ {
		var gain float64
		for i := range hyps {
			gain += hyps[i].W * gains[i*candidates+k]
		}
		if gain > maxGain {
			maxGain = gain
		}
		if gain >= maxGain-tieEps {
			bestDelta = k
			chosenGain = gain
		}
	}

	d := Decision{
		Gain:       chosenGain,
		Candidates: candidates,
		Support:    len(hyps),
	}
	if bestDelta == 0 {
		d.SendNow = true
		d.WakeAt = now
		return d
	}
	d.WakeAt = now + time.Duration(bestDelta)*cfg.Grid
	return d
}

const negInf = -1e308

// decideScratch is a worker's planner-specific arena: one live state,
// meter, gain cell, and send view per candidate, reused across decisions
// via rollout.Scratch.Aux.
type decideScratch struct {
	baseMeter utility.Meter
	cands     []model.State
	meters    []utility.Meter
	gains     []float64
	done      []bool
	candSends [][]model.Send
	sendIdx   []int
}

func (ds *decideScratch) ensure(k int) {
	if cap(ds.cands) < k {
		ds.cands = make([]model.State, k)
		ds.meters = make([]utility.Meter, k)
		ds.gains = make([]float64, k)
		ds.done = make([]bool, k)
		ds.candSends = make([][]model.Send, k)
		ds.sendIdx = make([]int, k)
	}
	ds.cands = ds.cands[:k]
	ds.meters = ds.meters[:k]
	ds.gains = ds.gains[:k]
	ds.done = ds.done[:k]
	ds.candSends = ds.candSends[:k]
	ds.sendIdx = ds.sendIdx[:k]
}

// poolCache shares rollout pools (and their scratch arenas) between
// Decide calls of the same width, without coupling concurrent callers:
// each call checks a pool out for its duration.
var poolCache sync.Map // width -> *sync.Pool of *rollout.Pool

func acquirePool(width int) (*rollout.Pool, func()) {
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	v, _ := poolCache.LoadOrStore(width, &sync.Pool{})
	sp := v.(*sync.Pool)
	p, ok := sp.Get().(*rollout.Pool)
	if !ok {
		p = rollout.New(width)
	}
	return p, func() { sp.Put(p) }
}

// topK returns the k heaviest hypotheses, renormalized. It copies; the
// input order is preserved for k >= len.
func topK(sup []belief.Hypothesis, k int) []belief.Hypothesis {
	out := make([]belief.Hypothesis, len(sup))
	copy(out, sup)
	if len(out) > k {
		sort.Slice(out, func(i, j int) bool { return out[i].W > out[j].W })
		out = out[:k]
	}
	var total float64
	for _, h := range out {
		total += h.W
	}
	if total > 0 {
		for i := range out {
			out[i].W /= total
		}
	}
	return out
}
