package planner

import (
	"math"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/model"
)

// PolicyCache memoizes decisions by belief fingerprint, realizing §3.3's
// observation that "for a particular model and distribution of possible
// states, there will be a policy that can be computed in advance". The
// fingerprint is translation-invariant: all absolute times inside the
// hypotheses are encoded relative to the decision instant, so the
// recurring situations of steady state (empty queue, link idle, same
// posterior) hit the cache even though wall-clock time differs.
//
// Weights are quantized to WeightQuantum (default 1e-6) in the
// fingerprint; two beliefs that differ by less plan identically for all
// practical purposes. TimeQuantum optionally buckets the rebased times
// the same way: a fleet of senders (internal/fleet) coarsens both so
// that members in recurring near-identical situations — same posterior
// shape, same queue, phases within a few tens of milliseconds — share
// one computed decision instead of each paying for its own.
//
// Every entry carries a secondary verification hash alongside its
// primary 64-bit fingerprint: a lookup whose fingerprint matches but
// whose verification hash does not is a detected collision and is
// treated as a miss, never served (the same discipline the persistent
// compiled tables of internal/policy apply at multi-million-entry
// scale, where 64-bit collisions stop being ignorable).
//
// The cache is also the offline policy compiler's capture point: set
// OnStore to observe every fingerprint → decision pair a run computes
// (internal/policy replays fleet runs with this hook to build its
// persistent tables), or call Snapshot for the resident entries.
type PolicyCache struct {
	entries map[uint64]cachedDecision
	// ring holds the resident fingerprints in insertion order; hand is
	// the clock-hand eviction cursor over it.
	ring []uint64
	hand int

	// Hits and Misses count Decide-path lookups (every miss is followed
	// by a live Decide that repopulates the cache), for the ablation
	// benchmark. Probes via Lookup are counted separately in ProbeHits
	// and ProbeMisses: Guard uses Lookup as a fallback rung, and mixing
	// its probe traffic into the Decide counters would double-count
	// every budget-blown decision and skew the reported hit rate.
	Hits, Misses int
	// ProbeHits and ProbeMisses count Lookup probes (Guard's fallback
	// rung and any other store-nothing consultation).
	ProbeHits, ProbeMisses int
	// Collisions counts lookups whose fingerprint matched a resident
	// entry but whose verification hash did not — detected 64-bit
	// collisions, served as misses instead of wrong actions.
	Collisions int
	// Evictions counts entries displaced by the clock hand.
	Evictions int
	// MaxEntries bounds memory. When the cache is full an insertion
	// evicts one entry chosen by a clock hand with second chance
	// (recently hit entries are skipped once), so the working set
	// survives the boundary instead of the whole map being discarded.
	MaxEntries int
	// TimeQuantum, when positive, buckets every rebased duration in
	// the fingerprint. Coarser buckets raise the hit rate at the price
	// of reusing a decision whose phase is off by up to one bucket;
	// the sender re-decides at every wake, so the error does not
	// accumulate. Zero fingerprints times exactly.
	TimeQuantum time.Duration
	// WeightQuantum, when positive, buckets hypothesis weights
	// (default 1e-6).
	WeightQuantum float64
	// OnStore, when non-nil, observes every entry the cache stores
	// (including re-stores after eviction). The offline policy compiler
	// sets it to capture the full fingerprint → action sweep of a run
	// even when the resident set is smaller.
	OnStore func(Entry)
}

type cachedDecision struct {
	verify  uint64
	sendNow bool
	used    bool
	delta   time.Duration // WakeAt - now
	gain    float64
}

// Entry is one fingerprint → action pair, the unit the offline policy
// compiler (internal/policy) extracts from a cache.
type Entry struct {
	// FP is the primary FNV-1a fingerprint; Verify is the secondary
	// verification hash over the same bytes.
	FP, Verify uint64
	// SendNow, Delta and Gain are the memoized action: Delta is
	// WakeAt − now at the decision instant.
	SendNow bool
	Delta   time.Duration
	Gain    float64
}

// NewPolicyCache returns an empty cache bounded to maxEntries (<= 0
// means a generous default).
func NewPolicyCache(maxEntries int) *PolicyCache {
	if maxEntries <= 0 {
		maxEntries = 1 << 16
	}
	return &PolicyCache{entries: make(map[uint64]cachedDecision), MaxEntries: maxEntries}
}

func (pc *PolicyCache) quanta() (time.Duration, float64) {
	wq := pc.WeightQuantum
	if wq <= 0 {
		wq = 1e-6
	}
	return pc.TimeQuantum, wq
}

// Len reports the resident entry count.
func (pc *PolicyCache) Len() int { return len(pc.entries) }

// Decide is a caching wrapper around Decide: on a fingerprint hit it
// returns the memoized action rebased to `now`.
func (pc *PolicyCache) Decide(sup []belief.Hypothesis, pending []model.Send, now time.Duration, seq int64, cfg Config) Decision {
	tq, wq := pc.quanta()
	fp, ver := Fingerprint(sup, pending, now, tq, wq)
	if d, ok := pc.entries[fp]; ok {
		if d.verify == ver {
			pc.Hits++
			if !d.used {
				d.used = true
				pc.entries[fp] = d
			}
			return Decision{
				SendNow:    d.sendNow,
				WakeAt:     now + d.delta,
				Gain:       d.gain,
				Candidates: 0,
				Support:    len(sup),
			}
		}
		// Fingerprint collision: the resident entry belongs to a
		// different belief. Serving it would be a silent wrong action;
		// recompute instead (the insert below overwrites the slot).
		pc.Collisions++
	}
	pc.Misses++
	d := Decide(sup, pending, now, seq, cfg)
	pc.insert(fp, cachedDecision{verify: ver, sendNow: d.SendNow, delta: d.WakeAt - now, gain: d.Gain})
	return d
}

// Lookup reports the memoized decision for the given belief, rebased to
// now, without computing anything on a miss. The degradation ladder
// (Guard) uses it as a fallback rung when a live Decide blows its
// budget: a quantized near-match of the current situation is a far
// better action than a blind one. Probes are counted in ProbeHits and
// ProbeMisses, never in the Decide-path Hits/Misses.
func (pc *PolicyCache) Lookup(sup []belief.Hypothesis, pending []model.Send, now time.Duration) (Decision, bool) {
	tq, wq := pc.quanta()
	fp, ver := Fingerprint(sup, pending, now, tq, wq)
	d, ok := pc.entries[fp]
	if ok && d.verify != ver {
		pc.Collisions++
		ok = false
	}
	if !ok {
		pc.ProbeMisses++
		return Decision{}, false
	}
	pc.ProbeHits++
	if !d.used {
		d.used = true
		pc.entries[fp] = d
	}
	return Decision{
		SendNow: d.sendNow,
		WakeAt:  now + d.delta,
		Gain:    d.gain,
		Support: len(sup),
	}, true
}

// Store memoizes a decision computed elsewhere (e.g. by a Guard's
// background Decide) under the belief's fingerprint at the decision
// instant.
func (pc *PolicyCache) Store(sup []belief.Hypothesis, pending []model.Send, now time.Duration, d Decision) {
	tq, wq := pc.quanta()
	fp, ver := Fingerprint(sup, pending, now, tq, wq)
	pc.insert(fp, cachedDecision{verify: ver, sendNow: d.SendNow, delta: d.WakeAt - now, gain: d.Gain})
}

// insert places an entry, evicting at most one resident entry by clock
// hand when the cache is full. A full sweep of the hand clears second
// chances; the first entry found unused since its last insertion or hit
// is displaced. The working set therefore survives the MaxEntries
// boundary — the old wholesale reset periodically collapsed the hit
// rate to zero mid-run.
func (pc *PolicyCache) insert(fp uint64, cd cachedDecision) {
	if old, ok := pc.entries[fp]; ok {
		// Same fingerprint already resident (re-store or collision
		// overwrite): replace in place, keep its ring slot and
		// recency.
		cd.used = old.used
		pc.entries[fp] = cd
		pc.notify(fp, cd)
		return
	}
	if len(pc.entries) >= pc.MaxEntries && len(pc.ring) > 0 {
		// One pass grants second chances; the bound guarantees an
		// eviction even if every entry was recently used.
		for i := 0; ; i++ {
			victim := pc.ring[pc.hand]
			e := pc.entries[victim]
			if e.used && i < len(pc.ring) {
				e.used = false
				pc.entries[victim] = e
				pc.hand = (pc.hand + 1) % len(pc.ring)
				continue
			}
			delete(pc.entries, victim)
			pc.Evictions++
			pc.ring[pc.hand] = fp
			pc.hand = (pc.hand + 1) % len(pc.ring)
			break
		}
	} else {
		pc.ring = append(pc.ring, fp)
	}
	pc.entries[fp] = cd
	pc.notify(fp, cd)
}

func (pc *PolicyCache) notify(fp uint64, cd cachedDecision) {
	if pc.OnStore != nil {
		pc.OnStore(Entry{FP: fp, Verify: cd.verify, SendNow: cd.sendNow, Delta: cd.delta, Gain: cd.gain})
	}
}

// Snapshot returns the resident entries. Order is unspecified (callers
// that need determinism sort by FP, as the policy compiler does).
func (pc *PolicyCache) Snapshot() []Entry {
	out := make([]Entry, 0, len(pc.entries))
	for fp, cd := range pc.entries {
		out = append(out, Entry{FP: fp, Verify: cd.verify, SendNow: cd.sendNow, Delta: cd.delta, Gain: cd.gain})
	}
	return out
}

// FNV-64 constants for the inlined dual hash below.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	// verifyOffset64 seeds the secondary hash away from the primary's
	// basis (golden-ratio constant), so the two streams decorrelate
	// from the first byte.
	verifyOffset64 = fnvOffset64 ^ 0x9E3779B97F4A7C15
)

// fpState accumulates the primary (FNV-1a) and secondary (FNV-1,
// reseeded) hashes over one byte stream, allocation-free.
type fpState struct{ a, b uint64 }

func (h *fpState) init() { h.a, h.b = fnvOffset64, verifyOffset64 }

func (h *fpState) write64(v uint64) {
	a, b := h.a, h.b
	for i := 0; i < 8; i++ {
		c := uint64(byte(v))
		v >>= 8
		a = (a ^ c) * fnvPrime64 // FNV-1a: xor then multiply
		b = b*fnvPrime64 ^ c     // FNV-1: multiply then xor
	}
	h.a, h.b = a, b
}

// Fingerprint hashes the support and pending sends with all times
// rebased to now, times bucketed by tq (0 = exact) and weights
// round-to-nearest by wq. Sequence numbers are deliberately excluded:
// the policy depends on the network posterior, not on which packet is
// next. It returns the primary 64-bit fingerprint and an independent
// secondary verification hash over the same bytes; a table entry is
// only served when both match, so a primary collision degrades to a
// miss instead of a wrong action.
//
// The quantized fingerprint is the shared key language of the warm
// PolicyCache, the Guard's fallback probes, and internal/policy's
// offline-compiled tables — a table compiled under one (tq, wq) is
// only probed with the same quanta (the table header records them).
func Fingerprint(sup []belief.Hypothesis, pending []model.Send, now time.Duration, tq time.Duration, wq float64) (fp, verify uint64) {
	var h fpState
	h.init()
	// Times far beyond the planning horizon are behaviourally
	// equivalent ("never"); clamping them keeps e.g. a no-cross-traffic
	// hypothesis (NextCross = Forever) fingerprint-stable across wakes.
	const farFuture = time.Hour
	putD := func(d time.Duration) {
		if d > farFuture {
			d = farFuture
		}
		if d < -farFuture {
			d = -farFuture
		}
		if tq > 0 {
			// Floor division, not truncation: truncating toward zero
			// would make the bucket straddling zero twice as wide as
			// every other.
			r := d % tq
			if r < 0 {
				r += tq
			}
			d -= r
		}
		h.write64(uint64(int64(d)))
	}
	h.write64(uint64(len(sup)))
	for _, hyp := range sup {
		s := &hyp.S
		h.write64(uint64(s.ParamsID))
		// Round-to-nearest, not truncation: the quotient of two nearby
		// floats is inexact, and truncating it lands weights equal to
		// within one ulp in adjacent buckets, splitting entries that
		// should share one.
		h.write64(uint64(int64(math.Round(hyp.W / wq))))
		if s.PingerOn {
			h.write64(1)
		} else {
			h.write64(0)
		}
		putD(s.NextCross - now)
		if s.P.MeanSwitch <= 0 || s.SwitchTick <= 0 {
			// The gate can never toggle: NextToggle is inert state and
			// must not perturb the fingerprint.
			putD(farFuture)
		} else {
			putD(s.NextToggle - now)
		}
		if s.Serving {
			h.write64(1)
			putD(s.ServiceDone - now)
			h.write64(uint64(s.InService.Bits))
			if s.InService.Own {
				h.write64(1)
			} else {
				h.write64(0)
			}
		} else {
			h.write64(0)
		}
		h.write64(uint64(s.QLen()))
		for _, q := range s.Queued() {
			h.write64(uint64(q.Bits))
			if q.Own {
				h.write64(1)
			} else {
				h.write64(0)
			}
		}
	}
	h.write64(uint64(len(pending)))
	for _, snd := range pending {
		putD(snd.At - now)
		h.write64(uint64(snd.Bits))
	}
	return h.a, h.b
}
