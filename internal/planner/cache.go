package planner

import (
	"encoding/binary"
	"hash/fnv"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/model"
)

// PolicyCache memoizes decisions by belief fingerprint, realizing §3.3's
// observation that "for a particular model and distribution of possible
// states, there will be a policy that can be computed in advance". The
// fingerprint is translation-invariant: all absolute times inside the
// hypotheses are encoded relative to the decision instant, so the
// recurring situations of steady state (empty queue, link idle, same
// posterior) hit the cache even though wall-clock time differs.
//
// Weights are quantized to WeightQuantum (default 1e-6) in the
// fingerprint; two beliefs that differ by less plan identically for all
// practical purposes. TimeQuantum optionally buckets the rebased times
// the same way: a fleet of senders (internal/fleet) coarsens both so
// that members in recurring near-identical situations — same posterior
// shape, same queue, phases within a few tens of milliseconds — share
// one computed decision instead of each paying for its own.
type PolicyCache struct {
	entries map[uint64]cachedDecision
	// Hits and Misses count lookups, for the ablation benchmark.
	Hits, Misses int
	// MaxEntries bounds memory; the cache resets when full (decisions
	// are cheap to recompute relative to tracking LRU order).
	MaxEntries int
	// TimeQuantum, when positive, buckets every rebased duration in
	// the fingerprint. Coarser buckets raise the hit rate at the price
	// of reusing a decision whose phase is off by up to one bucket;
	// the sender re-decides at every wake, so the error does not
	// accumulate. Zero fingerprints times exactly.
	TimeQuantum time.Duration
	// WeightQuantum, when positive, buckets hypothesis weights
	// (default 1e-6).
	WeightQuantum float64
}

type cachedDecision struct {
	sendNow bool
	delta   time.Duration // WakeAt - now
	gain    float64
}

// NewPolicyCache returns an empty cache bounded to maxEntries (<= 0
// means a generous default).
func NewPolicyCache(maxEntries int) *PolicyCache {
	if maxEntries <= 0 {
		maxEntries = 1 << 16
	}
	return &PolicyCache{entries: make(map[uint64]cachedDecision), MaxEntries: maxEntries}
}

// Decide is a caching wrapper around Decide: on a fingerprint hit it
// returns the memoized action rebased to `now`.
func (pc *PolicyCache) Decide(sup []belief.Hypothesis, pending []model.Send, now time.Duration, seq int64, cfg Config) Decision {
	wq := pc.WeightQuantum
	if wq <= 0 {
		wq = 1e-6
	}
	fp := fingerprint(sup, pending, now, pc.TimeQuantum, wq)
	if d, ok := pc.entries[fp]; ok {
		pc.Hits++
		return Decision{
			SendNow:    d.sendNow,
			WakeAt:     now + d.delta,
			Gain:       d.gain,
			Candidates: 0,
			Support:    len(sup),
		}
	}
	pc.Misses++
	d := Decide(sup, pending, now, seq, cfg)
	if len(pc.entries) >= pc.MaxEntries {
		pc.entries = make(map[uint64]cachedDecision)
	}
	pc.entries[fp] = cachedDecision{sendNow: d.SendNow, delta: d.WakeAt - now, gain: d.Gain}
	return d
}

// Lookup reports the memoized decision for the given belief, rebased to
// now, without computing anything on a miss. The degradation ladder
// (Guard) uses it as the first fallback rung when a live Decide blows
// its budget: a quantized near-match of the current situation is a far
// better action than a blind one.
func (pc *PolicyCache) Lookup(sup []belief.Hypothesis, pending []model.Send, now time.Duration) (Decision, bool) {
	wq := pc.WeightQuantum
	if wq <= 0 {
		wq = 1e-6
	}
	fp := fingerprint(sup, pending, now, pc.TimeQuantum, wq)
	d, ok := pc.entries[fp]
	if !ok {
		pc.Misses++
		return Decision{}, false
	}
	pc.Hits++
	return Decision{
		SendNow: d.sendNow,
		WakeAt:  now + d.delta,
		Gain:    d.gain,
		Support: len(sup),
	}, true
}

// Store memoizes a decision computed elsewhere (e.g. by a Guard's
// background Decide) under the belief's fingerprint at the decision
// instant.
func (pc *PolicyCache) Store(sup []belief.Hypothesis, pending []model.Send, now time.Duration, d Decision) {
	wq := pc.WeightQuantum
	if wq <= 0 {
		wq = 1e-6
	}
	fp := fingerprint(sup, pending, now, pc.TimeQuantum, wq)
	if len(pc.entries) >= pc.MaxEntries {
		pc.entries = make(map[uint64]cachedDecision)
	}
	pc.entries[fp] = cachedDecision{sendNow: d.SendNow, delta: d.WakeAt - now, gain: d.Gain}
}

// fingerprint hashes the support and pending sends with all times
// rebased to now, times bucketed by tq (0 = exact) and weights by wq.
// Sequence numbers are deliberately excluded: the policy depends on the
// network posterior, not on which packet is next.
func fingerprint(sup []belief.Hypothesis, pending []model.Send, now time.Duration, tq time.Duration, wq float64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	putU := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	// Times far beyond the planning horizon are behaviourally
	// equivalent ("never"); clamping them keeps e.g. a no-cross-traffic
	// hypothesis (NextCross = Forever) fingerprint-stable across wakes.
	const farFuture = time.Hour
	putD := func(d time.Duration) {
		if d > farFuture {
			d = farFuture
		}
		if d < -farFuture {
			d = -farFuture
		}
		if tq > 0 {
			// Floor division, not truncation: truncating toward zero
			// would make the bucket straddling zero twice as wide as
			// every other.
			r := d % tq
			if r < 0 {
				r += tq
			}
			d -= r
		}
		putU(uint64(int64(d)))
	}
	putU(uint64(len(sup)))
	for _, hyp := range sup {
		s := &hyp.S
		putU(uint64(s.ParamsID))
		putU(uint64(int64(hyp.W / wq)))
		if s.PingerOn {
			putU(1)
		} else {
			putU(0)
		}
		putD(s.NextCross - now)
		if s.P.MeanSwitch <= 0 || s.SwitchTick <= 0 {
			// The gate can never toggle: NextToggle is inert state and
			// must not perturb the fingerprint.
			putD(farFuture)
		} else {
			putD(s.NextToggle - now)
		}
		if s.Serving {
			putU(1)
			putD(s.ServiceDone - now)
			putU(uint64(s.InService.Bits))
			if s.InService.Own {
				putU(1)
			} else {
				putU(0)
			}
		} else {
			putU(0)
		}
		putU(uint64(s.QLen()))
		for _, q := range s.Queued() {
			putU(uint64(q.Bits))
			if q.Own {
				putU(1)
			} else {
				putU(0)
			}
		}
	}
	putU(uint64(len(pending)))
	for _, snd := range pending {
		putD(snd.At - now)
		putU(uint64(snd.Bits))
	}
	return h.Sum64()
}
