package planner

import (
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/model"
)

// CompiledPolicy is an offline-compiled, read-only belief → action map:
// §3.3's policy "computed in advance" made persistent. internal/policy
// implements it over an mmap-ed flat table; the Guard probes it before
// any live planning (a table hit is the O(1) production serving path)
// and feeds live decisions the table missed back to it, seeding the
// next compile.
type CompiledPolicy interface {
	// Probe returns the compiled action for this belief, rebased to
	// now, or ok = false on a table miss (including a detected
	// fingerprint collision, which must be treated as a miss).
	Probe(sup []belief.Hypothesis, pending []model.Send, now time.Duration) (Decision, bool)
	// RecordMiss notes a live decision the table could not serve, so
	// the next compile covers the situation.
	RecordMiss(sup []belief.Hypothesis, pending []model.Send, now time.Duration, d Decision)
}

// Guard bounds how long one decision may take. The planner's expected
// wake-to-wake latency is milliseconds, but a chaotic run can hand it a
// pathological posterior (a blackout-widened support, a reseeded prior)
// exactly when the sender can least afford to stall: on a real socket
// path a late decision is a missed transmission opportunity, and the
// event loop behind it backs up.
//
// Guard.Decide first probes the compiled policy table, when one is
// wired: a hit answers in O(1) without touching the live planner at
// all. On a table miss it runs the live Decide on a background
// goroutine against a deep-cloned snapshot of the belief and races it
// against Budget. On timeout it walks the degradation ladder:
//
//  0. the compiled table (Compiled) — an offline-verified action for
//     exactly this quantized situation;
//  1. live Decide, if it returns within Budget (the common case);
//  2. the PolicyCache — a quantized near-match of the current situation
//     computed on some earlier wake;
//  3. the last safe action: re-arm the most recent non-send pacing
//     interval, rebased to now;
//  4. no action at all: sleep one Grid and re-decide.
//
// Rungs 3 and 4 never send — a sender that has lost both its live
// planner and its cache is flying blind, and the conservative action on
// an unknown network is silence, not a burst.
//
// A Decide that blows its budget keeps cooking: its result is drained on
// a later call and stored into the cache, so one slow decision seeds the
// fallback for the next. At most one background Decide is in flight; the
// result channel is buffered, so an abandoned straggler can never leak a
// goroutine.
//
// Guard is not safe for concurrent use; like Sender it belongs to one
// driver goroutine. A read-only CompiledPolicy may be shared by many
// Guards (the fleet shares one table across all members).
type Guard struct {
	// Budget is the per-decision deadline. Zero or negative means no
	// deadline: Decide runs synchronously (through Cache when set).
	Budget time.Duration
	// Cache, when non-nil, is both the timeout fallback (rung 2) and the
	// store for background results.
	Cache *PolicyCache
	// Compiled, when non-nil, is the offline-compiled policy table,
	// probed before any live planning (the table is immutable during a
	// run, so the fallback ladder does not probe it a second time).
	// Live decisions it missed are reported back via RecordMiss.
	Compiled CompiledPolicy
	// Degraded, when true, pins Decide to the degradation ladder
	// without ever live-planning: the compiled table when wired, else
	// cache → last-safe → sleep. A shard watchdog sets it for members
	// hosted on a shard that blew its per-window budget (or, in tests,
	// on an injected-stall schedule) — precomputed actions ride out the
	// outage, the sequence-based-control shape. Degraded serving does
	// not advance ConsecutiveOverruns: the planner is not wedged, it
	// has been administratively bypassed, and a health sweep must not
	// declare a watchdogged member failed.
	Degraded bool
	// DegradedServed counts decisions served while Degraded was set.
	DegradedServed int64

	// Live counts decisions served by the live planner within budget;
	// CompiledHits, decisions served by the compiled table;
	// CacheHits, fallbacks served from the cache; SafeFallbacks,
	// decisions that fell to rung 3/4; Timeouts, budget expiries;
	// Overlaps, calls that arrived while a prior Decide was still
	// cooking.
	Live          int64
	CompiledHits  int64
	CacheHits     int64
	SafeFallbacks int64
	Timeouts      int64
	Overlaps      int64
	// ConsecutiveOverruns counts deadline overruns (timeouts and
	// overlapped calls) since the last decision the live planner or the
	// compiled table answered — the "planner is wedged" signal a
	// lifecycle Supervisor declares failure on. A cache hit does not
	// reset it: serving stale near-matches is survival, not health.
	ConsecutiveOverruns int64

	// RecordLatency, when true, appends each Decide call's wall-clock
	// duration in nanoseconds to Latencies — benchmark instrumentation
	// for the serving-path tail (p50/p99); leave false in production.
	RecordLatency bool
	Latencies     []int64

	inflight      chan guardResult
	lastSafeDelta time.Duration
	haveSafe      bool
}

// guardResult carries a background decision together with the snapshot
// it was computed from, so it can be fingerprinted into the cache.
type guardResult struct {
	d       Decision
	sup     []belief.Hypothesis
	pending []model.Send
	now     time.Duration
}

// NewGuard returns a Guard with the given budget over an optional cache.
func NewGuard(budget time.Duration, cache *PolicyCache) *Guard {
	return &Guard{Budget: budget, Cache: cache}
}

// Decide returns an action for the packet with sequence number seq
// within roughly Budget, degrading per the ladder above.
func (g *Guard) Decide(sup []belief.Hypothesis, pending []model.Send, now time.Duration, seq int64, cfg Config) Decision {
	if g.RecordLatency {
		start := time.Now()
		defer func() { g.Latencies = append(g.Latencies, time.Since(start).Nanoseconds()) }()
	}
	if g.Degraded {
		g.DegradedServed++
		if g.Compiled != nil {
			if d, ok := g.Compiled.Probe(sup, pending, now); ok {
				g.CompiledHits++
				g.noteSafe(d, now)
				return d
			}
		}
		return g.fallback(sup, pending, now, cfg)
	}
	// Rung 0: the compiled table answers without planning at all.
	if g.Compiled != nil {
		if d, ok := g.Compiled.Probe(sup, pending, now); ok {
			g.CompiledHits++
			g.ConsecutiveOverruns = 0
			g.noteSafe(d, now)
			return d
		}
	}
	if g.Budget <= 0 {
		var d Decision
		if g.Cache != nil {
			d = g.Cache.Decide(sup, pending, now, seq, cfg)
		} else {
			d = Decide(sup, pending, now, seq, cfg)
		}
		g.Live++
		g.ConsecutiveOverruns = 0
		if g.Compiled != nil {
			g.Compiled.RecordMiss(sup, pending, now, d)
		}
		g.noteSafe(d, now)
		return d
	}

	// Drain a straggler that finished since the last wake.
	if g.inflight != nil {
		select {
		case res := <-g.inflight:
			g.inflight = nil
			g.absorb(res)
		default:
		}
	}
	if g.inflight != nil {
		// A previous decision is still cooking; stacking another
		// goroutine on a planner that is already too slow only digs the
		// hole deeper.
		g.Overlaps++
		g.ConsecutiveOverruns++
		return g.fallback(sup, pending, now, cfg)
	}

	// Snapshot the belief for the background goroutine: the belief will
	// mutate these states on its next Update, and topK copies only the
	// hypothesis headers.
	hyps := topK(sup, cfg.withDefaults().MaxHyps)
	for i := range hyps {
		hyps[i].S = hyps[i].S.Clone()
	}
	pcopy := append([]model.Send(nil), pending...)
	bg := cfg
	// The caller's pool is single-checkout; the goroutine takes its own
	// from the shared pool cache instead.
	bg.Pool = nil
	ch := make(chan guardResult, 1)
	g.inflight = ch
	go func() {
		ch <- guardResult{d: Decide(hyps, pcopy, now, seq, bg), sup: hyps, pending: pcopy, now: now}
	}()

	timer := time.NewTimer(g.Budget)
	select {
	case res := <-ch:
		timer.Stop()
		g.inflight = nil
		g.absorb(res)
		g.Live++
		g.ConsecutiveOverruns = 0
		if g.Compiled != nil {
			g.Compiled.RecordMiss(sup, pending, now, res.d)
		}
		g.noteSafe(res.d, now)
		return res.d
	case <-timer.C:
		g.Timeouts++
		g.ConsecutiveOverruns++
		return g.fallback(sup, pending, now, cfg)
	}
}

// Health is a copy of the Guard's counters, read together: the
// heartbeat a lifecycle Supervisor samples per health-check interval.
type Health struct {
	Live, CompiledHits, CacheHits int64
	SafeFallbacks, Timeouts       int64
	Overlaps, ConsecutiveOverruns int64
}

// Health snapshots the counters.
func (g *Guard) Health() Health {
	return Health{
		Live:                g.Live,
		CompiledHits:        g.CompiledHits,
		CacheHits:           g.CacheHits,
		SafeFallbacks:       g.SafeFallbacks,
		Timeouts:            g.Timeouts,
		Overlaps:            g.Overlaps,
		ConsecutiveOverruns: g.ConsecutiveOverruns,
	}
}

// LastSafe reports the remembered safe pacing interval (rung 3's replay
// delta) and whether one exists — checkpointed so a warm-restored
// member degrades exactly as the original would.
func (g *Guard) LastSafe() (time.Duration, bool) { return g.lastSafeDelta, g.haveSafe }

// RestoreLastSafe reinstates a checkpointed safe pacing interval;
// non-positive deltas are ignored (they could never have been recorded).
func (g *Guard) RestoreLastSafe(delta time.Duration) {
	if delta > 0 {
		g.lastSafeDelta = delta
		g.haveSafe = true
	}
}

// fallback walks rungs 2–4 of the ladder.
func (g *Guard) fallback(sup []belief.Hypothesis, pending []model.Send, now time.Duration, cfg Config) Decision {
	if g.Cache != nil {
		if d, ok := g.Cache.Lookup(sup, pending, now); ok {
			g.CacheHits++
			g.noteSafe(d, now)
			return d
		}
	}
	g.SafeFallbacks++
	grid := cfg.Grid
	if grid <= 0 {
		grid = DefaultConfig().Grid
	}
	wake := now + grid
	if g.haveSafe && g.lastSafeDelta > 0 {
		wake = now + g.lastSafeDelta
	}
	return Decision{SendNow: false, WakeAt: wake}
}

// absorb stores a background result into the cache under the snapshot it
// was computed from.
func (g *Guard) absorb(res guardResult) {
	if g.Cache != nil {
		g.Cache.Store(res.sup, res.pending, res.now, res.d)
	}
	g.noteSafe(res.d, res.now)
}

// noteSafe remembers the pacing interval of the most recent non-send
// decision; send decisions are never replayed blind (a stale "send now"
// under repeated timeouts would burst into a network that just proved
// unpredictable).
func (g *Guard) noteSafe(d Decision, now time.Duration) {
	if d.SendNow {
		return
	}
	if delta := d.WakeAt - now; delta > 0 {
		g.lastSafeDelta = delta
		g.haveSafe = true
	}
}
