package lifecycle

import (
	"runtime"
	"testing"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/chaos"
	"modelcc/internal/fleet"
	"modelcc/internal/packet"
)

// supFleet builds a small fleet with Recover-mode beliefs (so reseed
// counts exist as a health signal) and a supervisor over it.
func supFleet(t *testing.T, sc SupervisorConfig) (*fleet.Fleet, *Supervisor) {
	t.Helper()
	fl := fleet.New(fleet.Config{
		N: 4, Seed: 5, Workers: 1,
		BeliefCfg: belief.Config{Recover: true},
	})
	return fl, NewSupervisor(fl, sc)
}

// bumpReseeds fakes a posterior-collapse streak on member flow's
// belief, the signal the supervisor declares failure on.
func bumpReseeds(t *testing.T, fl *fleet.Fleet, flow packet.FlowID, n int) {
	t.Helper()
	b, ok := fl.Members[flow].Sender.Belief.(*belief.Exact)
	if !ok {
		t.Fatalf("member %d belief is %T, want *belief.Exact", flow, fl.Members[flow].Sender.Belief)
	}
	b.Cum.Reseeded += n
}

// TestSupervisorFailsAndRestartsWarm: a member whose belief keeps
// re-seeding is declared failed, torn down gracefully, and — because a
// checkpoint exists — restarted warm with the next generation number.
func TestSupervisorFailsAndRestartsWarm(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second supervised fleet run")
	}
	fl, sup := supFleet(t, SupervisorConfig{
		Interval:        time.Second,
		CheckpointEvery: 2 * time.Second,
		BackoffBase:     100 * time.Millisecond,
	})
	sup.Start()
	// Let the fleet run (and the supervisor checkpoint) before the
	// injected collapse at t=5s.
	fl.Loop.Schedule(5*time.Second, func() { bumpReseeds(t, fl, 1, 5) })
	fl.Run(30 * time.Second)

	if sup.Stats.Failures != 1 {
		t.Fatalf("failures = %d, want 1", sup.Stats.Failures)
	}
	if sup.Stats.WarmRestarts != 1 || sup.Stats.ColdRestarts != 0 {
		t.Fatalf("restarts cold=%d warm=%d, want 0 warm=1",
			sup.Stats.ColdRestarts, sup.Stats.WarmRestarts)
	}
	m := fl.Members[1]
	if m == nil || m.Gen != 1 {
		t.Fatalf("flow 1 not reoccupied by generation 1: %+v", m)
	}
	var sawFail, sawRestart bool
	for _, e := range sup.Events {
		switch e.Kind {
		case EventFail:
			sawFail = true
		case EventRestart:
			sawRestart = true
			if e.Restart != RestartWarm || e.Flow != 1 || e.Gen != 1 {
				t.Fatalf("restart event = %+v, want warm flow=1 gen=1", e)
			}
		}
	}
	if !sawFail || !sawRestart {
		t.Fatalf("event log missing fail/restart: %+v", sup.Events)
	}
	// The restarted member must keep delivering: fenced counters, not
	// inherited ones.
	if d := fl.Delivered(1); d <= 0 {
		t.Fatalf("restarted member delivered %d packets", d)
	}
}

// TestSupervisorColdWithoutCheckpoints: with checkpointing disabled the
// restart ladder bottoms out at cold-from-prior.
func TestSupervisorColdWithoutCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second supervised fleet run")
	}
	fl, sup := supFleet(t, SupervisorConfig{
		Interval:        time.Second,
		CheckpointEvery: -1,
		BackoffBase:     100 * time.Millisecond,
	})
	sup.Start()
	fl.Loop.Schedule(5*time.Second, func() { bumpReseeds(t, fl, 2, 5) })
	fl.Run(20 * time.Second)
	if sup.Stats.ColdRestarts != 1 || sup.Stats.WarmRestarts != 0 {
		t.Fatalf("restarts cold=%d warm=%d, want cold=1 warm=0",
			sup.Stats.ColdRestarts, sup.Stats.WarmRestarts)
	}
	if sup.Stats.Checkpoints != 0 {
		t.Fatalf("checkpoints = %d with checkpointing disabled", sup.Stats.Checkpoints)
	}
}

// TestSupervisorBackoff: a member that fails on every health check is
// restarted with growing, capped delays — the event log's restart
// attempts must be increasing and the flow must still end occupied.
func TestSupervisorBackoff(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second supervised fleet run")
	}
	fl, sup := supFleet(t, SupervisorConfig{
		Interval:        time.Second,
		CheckpointEvery: -1,
		BackoffBase:     200 * time.Millisecond,
		BackoffCap:      2 * time.Second,
	})
	sup.Start()
	// Sabotage flow 0 forever: every second, if alive, collapse it.
	var sabotage func()
	sabotage = func() {
		if m := fl.Members[0]; m != nil {
			bumpReseeds(t, fl, 0, 5)
		}
		fl.Loop.After(time.Second, sabotage)
	}
	fl.Loop.Schedule(3*time.Second, sabotage)
	fl.Run(30 * time.Second)

	if sup.Stats.Failures < 3 {
		t.Fatalf("failures = %d, want a repeated-failure streak", sup.Stats.Failures)
	}
	attempts := 0
	for _, e := range sup.Events {
		if e.Kind == EventRestart && e.Flow == 0 && e.Attempt > attempts {
			attempts = e.Attempt
		}
	}
	if attempts < 2 {
		t.Fatalf("max restart attempt = %d, want backoff streak >= 2", attempts)
	}
}

// TestSupervisorStopIdempotent: Stop mid-run, Stop again, and a Start
// after Stop must all be safe no-ops; no restarts happen afterwards.
func TestSupervisorStopIdempotent(t *testing.T) {
	fl, sup := supFleet(t, SupervisorConfig{
		Interval: time.Second,
		// Backoff long enough that Stop lands between the failure and
		// the pending restart, which must then be abandoned.
		BackoffBase:     2 * time.Second,
		CheckpointEvery: time.Second,
	})
	sup.Start()
	sup.Start() // double-start: no-op
	fl.Loop.Schedule(3*time.Second, func() { bumpReseeds(t, fl, 1, 5) })
	fl.Loop.Schedule(4*time.Second, func() {
		sup.Stop()
		sup.Stop() // double-stop: no-op
		sup.Start()
	})
	fl.Run(15 * time.Second)
	if fl.Members[1] != nil {
		t.Fatal("flow 1 was restarted after Stop")
	}
	ckpts := sup.Stats.Checkpoints
	if ckpts == 0 {
		t.Fatal("no checkpoints before Stop")
	}
	// Nothing after Stop: the counters are frozen.
	if sup.Stats.Checkpoints != ckpts {
		t.Fatal("checkpointing continued after Stop")
	}
}

// TestDepartRecyclesFlowWithFencedCounters: a departed flow is reused
// by a later arrival as a fresh generation whose delivery counters
// start at zero (never merged with the predecessor's).
func TestDepartRecyclesFlowWithFencedCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second supervised fleet run")
	}
	fl, sup := supFleet(t, SupervisorConfig{CheckpointEvery: -1})
	sup.Start()
	var predecessorDelivered int
	fl.Loop.Schedule(20*time.Second, func() {
		predecessorDelivered = fl.Delivered(2)
		sup.Depart(2)
	})
	var admitted *fleet.Member
	fl.Loop.Schedule(40*time.Second, func() {
		admitted = sup.Admit()
	})
	fl.Run(60 * time.Second)

	if predecessorDelivered == 0 {
		t.Fatal("predecessor never delivered; test is vacuous")
	}
	if admitted == nil || admitted.Flow != 2 || admitted.Gen != 1 {
		t.Fatalf("arrival did not recycle flow 2 as gen 1: %+v", admitted)
	}
	// Fenced: the new generation's deliveries exclude the
	// predecessor's, while the raw total includes both.
	if d := fl.Delivered(2); d >= fl.DeliveredTotal(2) {
		t.Fatalf("fenced delivered %d not < total %d", d, fl.DeliveredTotal(2))
	}
	if fl.DeliveredTotal(2) < predecessorDelivered+fl.Delivered(2) {
		t.Fatalf("totals inconsistent: total=%d pred=%d cur=%d",
			fl.DeliveredTotal(2), predecessorDelivered, fl.Delivered(2))
	}
	if sup.Stats.Departures != 1 || sup.Stats.Arrivals != 1 {
		t.Fatalf("departures=%d arrivals=%d, want 1/1", sup.Stats.Departures, sup.Stats.Arrivals)
	}
}

// TestKillVacantFlowIsNoOp: crash-killing an empty slot does nothing.
func TestKillVacantFlowIsNoOp(t *testing.T) {
	fl, sup := supFleet(t, SupervisorConfig{})
	sup.Start()
	fl.Loop.Schedule(time.Second, func() {
		sup.Depart(3)
		sup.Kill(3) // already vacant
		sup.Kill(3)
	})
	fl.Run(5 * time.Second)
	if sup.Stats.Crashes != 0 {
		t.Fatalf("crashes = %d for kills of a vacant flow", sup.Stats.Crashes)
	}
}

// TestAdmissionReplaysBitIdentically: the same seed must produce the
// same churn schedule — identical event logs — across runs.
func TestAdmissionReplaysBitIdentically(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second supervised fleet run")
	}
	run := func() []Event {
		fl := fleet.New(fleet.Config{
			N: 8, Seed: 9, Workers: 1,
			BeliefCfg: belief.Config{Recover: true},
		})
		sup := NewSupervisor(fl, SupervisorConfig{BackoffBase: 100 * time.Millisecond})
		adm := NewAdmission(sup, ChurnConfig{
			Epoch: 5 * time.Second, DepartProb: 0.1, CrashProb: 0.15,
			ArriveProb: 0.6, MinLive: 2, MaxLive: 8,
		}, chaos.Config{Seed: 9})
		sup.Start()
		adm.Start()
		fl.Run(60 * time.Second)
		return sup.Events
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no churn events; schedule too quiet to test")
	}
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestAdmissionRespectsMaxLive: a crashed member's slot is reserved
// for its supervised restart, so arrivals must not refill it — the
// live population never exceeds MaxLive even while restarts, crashes,
// and arrivals interleave. (Regression: crashed slots used to be
// counted as open, and restarts then pushed the population past the
// cap.)
func TestAdmissionRespectsMaxLive(t *testing.T) {
	fl := fleet.New(fleet.Config{
		N: 8, Seed: 1, Workers: 1,
		BeliefCfg: belief.Config{Recover: true},
	})
	// A long backoff keeps crashed slots reserved across several
	// epochs, the window the old accounting double-filled.
	sup := NewSupervisor(fl, SupervisorConfig{BackoffBase: 3 * time.Second})
	adm := NewAdmission(sup, ChurnConfig{
		Epoch: 5 * time.Second, DepartProb: 0.2, CrashProb: 0.3,
		ArriveProb: 1, MinLive: 1, MaxLive: 8,
	}, chaos.Config{Seed: 4})
	sup.Start()
	adm.Start()
	maxSeen := 0
	var poll func()
	poll = func() {
		if n := fl.Live(); n > maxSeen {
			maxSeen = n
		}
		fl.Loop.After(time.Second, poll)
	}
	fl.Loop.Schedule(time.Second, poll)
	fl.Run(60 * time.Second)

	if maxSeen > 8 {
		t.Errorf("live population peaked at %d, cap is 8", maxSeen)
	}
	if sup.Stats.Crashes == 0 || sup.Stats.Arrivals == 0 {
		t.Fatalf("crashes=%d arrivals=%d; schedule too quiet, test is vacuous",
			sup.Stats.Crashes, sup.Stats.Arrivals)
	}
}

// TestLifecycleNoGoroutineLeak: the whole lifecycle stack — fleet,
// supervisor, admission, restarts, mid-run teardown — lives on the
// DES loop plus the rollout pool, and the pool must wind down with the
// run. Mirrors the transport leak tests.
func TestLifecycleNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		fl := fleet.New(fleet.Config{
			N: 8, Seed: 3, Workers: 4,
			BeliefCfg: belief.Config{Recover: true},
		})
		sup := NewSupervisor(fl, SupervisorConfig{BackoffBase: 100 * time.Millisecond})
		adm := NewAdmission(sup, ChurnConfig{
			Epoch: 5 * time.Second, DepartProb: 0.1, CrashProb: 0.15,
			ArriveProb: 0.6, MinLive: 2, MaxLive: 8,
		}, chaos.Config{Seed: 3})
		sup.Start()
		adm.Start()
		fl.Run(40 * time.Second)
		// Teardown mid-"session": stop twice each, in both orders.
		adm.Stop()
		sup.Stop()
		adm.Stop()
		sup.Stop()
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d, want <= %d", n, base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
