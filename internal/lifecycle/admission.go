package lifecycle

import (
	"time"

	"modelcc/internal/chaos"
	"modelcc/internal/packet"
	"modelcc/internal/sim"
)

// ChurnConfig describes a deterministic churn schedule: per-epoch
// departure/crash/arrival probabilities drawn from a seeded chaos
// stream. Zero values take the noted defaults.
type ChurnConfig struct {
	// Epoch is the schedule's decision period (default 10 s virtual).
	Epoch time.Duration
	// DepartProb is each live member's per-epoch probability of leaving
	// permanently.
	DepartProb float64
	// CrashProb is each live member's per-epoch probability of being
	// crash-killed at a uniformly drawn instant inside the epoch; the
	// Supervisor then restarts it.
	CrashProb float64
	// ArriveProb is, per open slot below MaxLive, the per-epoch
	// probability a new member arrives.
	ArriveProb float64
	// MinLive floors the live population: departures and crashes are
	// suppressed when they would drop below it (default 1).
	MinLive int
	// MaxLive caps the live population (default: the fleet's configured
	// N).
	MaxLive int
}

// Admission drives churn — arrivals, departures, crash-kills — from a
// chaos.Sub("churn") stream, entirely on the fleet's discrete-event
// loop. The same seed replays the same churn schedule bit-identically,
// because every draw happens in member-index order at deterministic
// epoch instants.
type Admission struct {
	Sup *Supervisor
	Cfg ChurnConfig

	src     *chaos.Source
	timer   *sim.Timer
	started bool
	stopped bool
	scratch []packet.FlowID
	// Epochs counts completed schedule ticks.
	Epochs int
}

// NewAdmission builds the churn controller for the supervisor's fleet.
// The schedule derives from ch.Sub("churn"), so runs that also inject
// packet-level chaos keep the two streams independent.
func NewAdmission(sup *Supervisor, cfg ChurnConfig, ch chaos.Config) *Admission {
	if cfg.Epoch <= 0 {
		cfg.Epoch = 10 * time.Second
	}
	if cfg.MinLive <= 0 {
		cfg.MinLive = 1
	}
	if cfg.MaxLive <= 0 {
		cfg.MaxLive = sup.FL.Cfg.N
	}
	a := &Admission{
		Sup: sup,
		Cfg: cfg,
		src: ch.Sub("churn").Source(),
	}
	a.timer = sim.NewTimer(sup.FL.Loop, a.epoch)
	return a
}

// Start arms the epoch timer. Idempotent.
func (a *Admission) Start() {
	if a.started || a.stopped {
		return
	}
	a.started = true
	a.timer.Arm(a.Cfg.Epoch)
}

// Stop halts the schedule (already-scheduled mid-epoch crash-kills
// still fire; the Supervisor ignores them once stopped members are
// gone). Idempotent.
func (a *Admission) Stop() {
	if a.stopped {
		return
	}
	a.stopped = true
	a.timer.Stop()
}

// epoch makes one round of churn decisions. Draw order is fixed —
// one uniform per live member in flow-index order, then one per open
// slot — so the schedule is a pure function of the seed and the
// (deterministic) population history.
func (a *Admission) epoch() {
	if a.stopped {
		return
	}
	fl := a.Sup.FL
	now := fl.Loop.Now()
	live := fl.Live()
	leaving := 0   // MinLive guard: crashes and departures both shrink the population
	departing := 0 // only departures free capacity — a crashed slot stays reserved for its restart
	// Snapshot the active index (ascending flow order — the same order
	// the old full-slot scan visited live members in, so the draw
	// sequence is unchanged); Depart mutates the index mid-loop.
	a.scratch = fl.ActiveFlows(a.scratch[:0])
	for _, flow := range a.scratch {
		u := a.src.Float64()
		canLeave := live-leaving > a.Cfg.MinLive
		switch {
		case u < a.Cfg.CrashProb:
			if !canLeave {
				continue
			}
			// Crash mid-epoch at a drawn fraction of the period. The
			// kill targets whatever occupies the flow when it fires —
			// crashes are abrupt by definition.
			frac := a.src.Float64()
			at := now + time.Duration(frac*float64(a.Cfg.Epoch))
			flow := flow
			fl.Loop.Schedule(at, func() {
				if !a.stopped {
					a.Sup.Kill(flow)
				}
			})
			leaving++
		case u < a.Cfg.CrashProb+a.Cfg.DepartProb:
			if !canLeave {
				continue
			}
			a.Sup.Depart(flow)
			leaving++
			departing++
		}
	}
	// Open capacity excludes members the Supervisor will bring back:
	// this epoch's crashes are still live here (not counted departing),
	// and earlier casualties awaiting drain or backoff hold their slot
	// through the reservation count. Counting either as open would let
	// arrivals plus restarts push the population past MaxLive.
	occupied := (live - departing) + a.Sup.PendingRestarts()
	for open := a.Cfg.MaxLive - occupied; open > 0; open-- {
		if a.src.Float64() < a.Cfg.ArriveProb {
			a.Sup.Admit()
		}
	}
	a.Epochs++
	a.timer.Arm(a.Cfg.Epoch)
}
