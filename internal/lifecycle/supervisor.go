package lifecycle

import (
	"fmt"
	"path/filepath"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/fleet"
	"modelcc/internal/packet"
	"modelcc/internal/sim"
)

// SupervisorConfig tunes the crash-recovery runtime. Zero values take
// the defaults noted on each field.
type SupervisorConfig struct {
	// Interval is the health-check period (default 2 s virtual).
	Interval time.Duration
	// CheckpointEvery is the checkpoint period (default 10 s); negative
	// disables checkpointing, which forces every restart cold (or hot
	// when the fleet serves a compiled table).
	CheckpointEvery time.Duration
	// MaxReseeds declares a member failed when its belief re-seeded from
	// the prior at least this many times within one Interval — the
	// posterior keeps collapsing, so the member has lost its model of
	// the network (default 2; non-positive disables the signal).
	MaxReseeds int
	// MaxOverruns declares a member failed when its Guard reports this
	// many consecutive deadline overruns — the planner is wedged
	// (default 8; non-positive disables the signal).
	MaxOverruns int64
	// BackoffBase and BackoffCap bound the restart delay: the k-th
	// consecutive restart of a flow waits min(BackoffBase<<k,
	// BackoffCap). Defaults 500 ms and 16 s.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// DrainPoll is how often a pending restart re-checks a flow whose
	// predecessor still has packets in flight (default 250 ms); the
	// restart waits for a full drain so the fenced per-flow counters
	// stay unambiguous.
	DrainPoll time.Duration
	// Dir, when set, mirrors every checkpoint to
	// Dir/flow%04d.ckpt (atomic replace per flow).
	Dir string
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 10 * time.Second
	}
	if c.MaxReseeds == 0 {
		c.MaxReseeds = 2
	}
	if c.MaxOverruns == 0 {
		c.MaxOverruns = 8
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 500 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 16 * time.Second
	}
	if c.DrainPoll <= 0 {
		c.DrainPoll = 250 * time.Millisecond
	}
	return c
}

// EventKind classifies a lifecycle event.
type EventKind uint8

// Lifecycle event kinds.
const (
	// EventAdmit is a fresh arrival (a brand-new member, not a restart).
	EventAdmit EventKind = iota
	// EventDepart is a permanent voluntary departure.
	EventDepart
	// EventCrash is an abrupt kill (chaos churn or Kill).
	EventCrash
	// EventFail is a supervisor-declared health failure.
	EventFail
	// EventRestart is a supervised restart of a failed/crashed flow.
	EventRestart
	// EventShardFault is the loss of a whole (virtual) shard in the
	// sharded runtime: Flow carries the virtual shard index, and the
	// per-flow EventCrash/EventRestart pairs of the failover follow it
	// in the log.
	EventShardFault
)

func (k EventKind) String() string {
	switch k {
	case EventAdmit:
		return "admit"
	case EventDepart:
		return "depart"
	case EventCrash:
		return "crash"
	case EventFail:
		return "fail"
	case EventRestart:
		return "restart"
	case EventShardFault:
		return "shardfault"
	}
	return fmt.Sprintf("eventkind(%d)", uint8(k))
}

// RestartKind is the rung of the restart ladder a member started on.
type RestartKind uint8

// Restart ladder rungs, coldest first.
const (
	// RestartCold starts from the prior alone.
	RestartCold RestartKind = iota
	// RestartHot starts from the prior but serves decisions from the
	// fleet's compiled policy table immediately.
	RestartHot
	// RestartWarm restores the member's last checkpoint (and keeps the
	// table, when present, as Guard rung 0).
	RestartWarm
)

func (k RestartKind) String() string {
	switch k {
	case RestartCold:
		return "cold"
	case RestartHot:
		return "hot"
	case RestartWarm:
		return "warm"
	}
	return fmt.Sprintf("restartkind(%d)", uint8(k))
}

// Event is one entry in the supervisor's deterministic lifecycle log.
type Event struct {
	At   time.Duration
	Kind EventKind
	Flow packet.FlowID
	// Gen is the generation the event concerns: the retired generation
	// for depart/crash/fail, the newly admitted one for admit/restart.
	Gen uint32
	// Restart is the ladder rung, meaningful only for EventRestart.
	Restart RestartKind
	// Attempt is the consecutive-restart attempt number, meaningful
	// only for EventRestart.
	Attempt int
}

// MemberRecord tracks one member generation across its whole life, so
// experiments can window its series even after the flow was recycled.
type MemberRecord struct {
	M *fleet.Member
	// Kind is how the generation started (RestartCold for New's initial
	// members and fresh arrivals without a table).
	Kind RestartKind
	// Restarted marks generations that replaced a failed or crashed
	// predecessor, as opposed to initial members and fresh arrivals.
	Restarted bool
	// RetiredAt is when the generation was torn down; -1 while live.
	RetiredAt time.Duration
}

// Stats counts supervisor activity.
type Stats struct {
	Checkpoints, CheckpointErrors           int
	Failures, Crashes, Departures, Arrivals int
	ColdRestarts, HotRestarts, WarmRestarts int
}

// flowState is the supervisor's per-flow bookkeeping.
type flowState struct {
	lastReseeds int
	lastCkpt    *Checkpoint
	attempts    int
	// reserved marks a flow a pending restart owns; admission skips it.
	reserved bool
	rec      *MemberRecord
}

// Supervisor watches a fleet's members for health failures — belief
// re-seeds and planner Guard overruns — and restarts failed members
// with capped exponential backoff through the hot/warm/cold ladder.
// It lives entirely on the fleet's discrete-event loop: no goroutines,
// and the same seed replays the same lifecycle log bit-identically.
type Supervisor struct {
	FL  *fleet.Fleet
	Cfg SupervisorConfig
	// PriorHash is the model identity every checkpoint is bound to.
	PriorHash uint64
	// Events is the lifecycle log, in virtual-time order.
	Events []Event
	// Records tracks every member generation ever admitted, in
	// admission order (the fleet's initial members first).
	Records []*MemberRecord
	// Stats counts supervisor activity.
	Stats Stats

	flows   []*flowState
	health  *sim.Timer
	ckpt    *sim.Timer
	started bool
	stopped bool
	scratch []packet.FlowID
}

// NewSupervisor builds a supervisor over the fleet's current members.
// Call Start before (or while) the loop runs.
func NewSupervisor(fl *fleet.Fleet, cfg SupervisorConfig) *Supervisor {
	s := &Supervisor{
		FL:        fl,
		Cfg:       cfg.withDefaults(),
		PriorHash: FleetPriorHash(fl),
	}
	s.health = sim.NewTimer(fl.Loop, s.checkTick)
	s.ckpt = sim.NewTimer(fl.Loop, s.checkpointTick)
	kind := RestartCold
	if fl.Cfg.Table != nil {
		kind = RestartHot
	}
	for i, m := range fl.Members {
		fs := s.flow(i)
		if m == nil {
			continue
		}
		rec := &MemberRecord{M: m, Kind: kind, RetiredAt: -1}
		fs.rec = rec
		fs.lastReseeds = beliefReseeds(m)
		s.Records = append(s.Records, rec)
	}
	return s
}

// flow returns (extending as needed) the flow's bookkeeping.
func (s *Supervisor) flow(idx int) *flowState {
	for idx >= len(s.flows) {
		s.flows = append(s.flows, &flowState{})
	}
	return s.flows[idx]
}

// Start arms the health and checkpoint timers. Idempotent.
func (s *Supervisor) Start() {
	if s.started || s.stopped {
		return
	}
	s.started = true
	s.health.Arm(s.Cfg.Interval)
	if s.Cfg.CheckpointEvery > 0 {
		s.ckpt.Arm(s.Cfg.CheckpointEvery)
	}
}

// Stop disarms the supervisor; pending restarts are abandoned. Safe to
// call at any time, from any loop event, and more than once.
func (s *Supervisor) Stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	s.health.Stop()
	s.ckpt.Stop()
}

// beliefReseeds reads the belief's lifetime re-seed count, the
// "posterior keeps collapsing" health signal.
func beliefReseeds(m *fleet.Member) int {
	switch b := m.Sender.Belief.(type) {
	case *belief.Exact:
		return b.Cum.Reseeded
	case *belief.Particle:
		return b.Cum.Reseeded
	}
	return 0
}

// checkTick is one health sweep, in member-index order for determinism.
func (s *Supervisor) checkTick() {
	if s.stopped {
		return
	}
	now := s.FL.Loop.Now()
	s.scratch = s.FL.ActiveFlows(s.scratch[:0])
	for _, flow := range s.scratch {
		i := int(flow)
		m := s.FL.Members[i]
		if m == nil {
			// fail() below can retire a flow mid-sweep only for the flow
			// being visited, but stay defensive against callback retires.
			continue
		}
		fs := s.flow(i)
		if fs.rec == nil || fs.rec.M != m {
			// A member admitted behind the supervisor's back (direct
			// fleet.Admit): adopt it rather than misreading its
			// predecessor's counters.
			s.adopt(i, m)
			fs = s.flows[i]
		}
		reseeds := beliefReseeds(m)
		failed := s.Cfg.MaxReseeds > 0 && reseeds-fs.lastReseeds >= s.Cfg.MaxReseeds
		if g := m.Sender.Guard; !failed && g != nil && s.Cfg.MaxOverruns > 0 {
			failed = g.ConsecutiveOverruns >= s.Cfg.MaxOverruns
		}
		if failed {
			s.fail(packet.FlowID(i))
			continue
		}
		fs.lastReseeds = reseeds
		// A restarted member that stayed healthy for two full sweeps
		// has recovered; its next failure starts backoff from scratch.
		if fs.attempts > 0 && now-m.AdmittedAt >= 2*s.Cfg.Interval {
			fs.attempts = 0
		}
	}
	s.health.Arm(s.Cfg.Interval)
}

// adopt registers an externally admitted member.
func (s *Supervisor) adopt(idx int, m *fleet.Member) {
	fs := s.flow(idx)
	kind := RestartCold
	if s.FL.Cfg.Table != nil {
		kind = RestartHot
	}
	rec := &MemberRecord{M: m, Kind: kind, RetiredAt: -1}
	fs.rec = rec
	fs.lastCkpt = nil
	fs.attempts = 0
	fs.lastReseeds = beliefReseeds(m)
	s.Records = append(s.Records, rec)
}

// checkpointTick captures every live member, in member-index order.
func (s *Supervisor) checkpointTick() {
	if s.stopped {
		return
	}
	s.scratch = s.FL.ActiveFlows(s.scratch[:0])
	for _, flow := range s.scratch {
		i := int(flow)
		m := s.FL.Members[i]
		if m == nil {
			continue
		}
		c, err := Capture(m, s.PriorHash)
		if err != nil {
			s.Stats.CheckpointErrors++
			continue
		}
		s.flow(i).lastCkpt = c
		s.Stats.Checkpoints++
		if s.Cfg.Dir != "" {
			path := filepath.Join(s.Cfg.Dir, fmt.Sprintf("flow%04d.ckpt", i))
			if err := c.WriteFile(path); err != nil {
				s.Stats.CheckpointErrors++
			}
		}
	}
	s.ckpt.Arm(s.Cfg.CheckpointEvery)
}

// retire tears the flow's member down and closes its record.
func (s *Supervisor) retire(flow packet.FlowID) *fleet.Member {
	m := s.FL.Retire(flow)
	if m == nil {
		return nil
	}
	if fs := s.flow(int(flow)); fs.rec != nil && fs.rec.M == m {
		fs.rec.RetiredAt = s.FL.Loop.Now()
	}
	return m
}

// fail declares the flow's member failed: graceful teardown (in-flight
// packets drain through the loop), then a backoff-delayed restart.
func (s *Supervisor) fail(flow packet.FlowID) {
	m := s.retire(flow)
	if m == nil {
		return
	}
	s.Stats.Failures++
	s.Events = append(s.Events, Event{At: s.FL.Loop.Now(), Kind: EventFail, Flow: flow, Gen: m.Gen})
	s.scheduleRestart(flow)
}

// Kill crash-kills the flow's member abruptly (no fresh checkpoint, no
// drain courtesy beyond what the network itself provides) and schedules
// a supervised restart. No-op when the flow has no live member.
func (s *Supervisor) Kill(flow packet.FlowID) {
	m := s.retire(flow)
	if m == nil {
		return
	}
	s.Stats.Crashes++
	s.Events = append(s.Events, Event{At: s.FL.Loop.Now(), Kind: EventCrash, Flow: flow, Gen: m.Gen})
	s.scheduleRestart(flow)
}

// Depart retires the flow's member permanently: no restart, and the
// flow (once drained) becomes available to future arrivals. The stale
// checkpoint is discarded — a later arrival is a different member and
// must never inherit this one's belief.
func (s *Supervisor) Depart(flow packet.FlowID) {
	m := s.retire(flow)
	if m == nil {
		return
	}
	fs := s.flow(int(flow))
	fs.lastCkpt = nil
	fs.attempts = 0
	s.Stats.Departures++
	s.Events = append(s.Events, Event{At: s.FL.Loop.Now(), Kind: EventDepart, Flow: flow, Gen: m.Gen})
}

// Admit starts a brand-new member on the lowest safe flow (vacant,
// drained, not reserved by a pending restart) and returns it.
func (s *Supervisor) Admit() *fleet.Member {
	flow := s.allocFlow()
	gen := s.FL.NextGen(flow)
	m := s.FL.Admit(flow, s.FL.StaggerOffset(flow, gen))
	fs := s.flow(int(flow))
	kind := RestartCold
	if s.FL.Cfg.Table != nil {
		kind = RestartHot
	}
	rec := &MemberRecord{M: m, Kind: kind, RetiredAt: -1}
	fs.rec = rec
	fs.lastCkpt = nil
	fs.attempts = 0
	fs.lastReseeds = beliefReseeds(m)
	s.Records = append(s.Records, rec)
	s.Stats.Arrivals++
	s.Events = append(s.Events, Event{At: s.FL.Loop.Now(), Kind: EventAdmit, Flow: flow, Gen: m.Gen})
	return m
}

// PendingRestarts counts flows reserved by a scheduled restart —
// casualties draining in-flight packets or waiting out backoff. Their
// slots are spoken for: admission must treat them as occupied or
// arrivals plus restarts would overshoot the population cap.
func (s *Supervisor) PendingRestarts() int {
	n := 0
	for _, fs := range s.flows {
		if fs.reserved {
			n++
		}
	}
	return n
}

// allocFlow is Fleet.AllocFlow minus flows reserved by pending
// restarts.
func (s *Supervisor) allocFlow() packet.FlowID {
	for i := range s.FL.Members {
		if s.FL.Members[i] == nil && !s.flow(i).reserved && s.FL.InFlight(packet.FlowID(i)) == 0 {
			return packet.FlowID(i)
		}
	}
	return packet.FlowID(len(s.FL.Members))
}

// scheduleRestart reserves the flow and arms the backoff-delayed
// restart attempt.
func (s *Supervisor) scheduleRestart(flow packet.FlowID) {
	fs := s.flow(int(flow))
	shift := fs.attempts
	if shift > 30 {
		shift = 30
	}
	delay := s.Cfg.BackoffBase << shift
	if delay > s.Cfg.BackoffCap || delay <= 0 {
		delay = s.Cfg.BackoffCap
	}
	fs.attempts++
	fs.reserved = true
	s.FL.Loop.After(delay, func() { s.tryRestart(flow) })
}

// tryRestart performs (or re-defers) a pending restart: it waits for
// the predecessor's in-flight packets to drain, then admits the new
// generation on the highest available ladder rung.
func (s *Supervisor) tryRestart(flow packet.FlowID) {
	fs := s.flow(int(flow))
	if s.stopped {
		fs.reserved = false
		return
	}
	if int(flow) < len(s.FL.Members) && s.FL.Members[flow] != nil {
		// The slot was re-occupied despite the reservation (external
		// Admit); the restart is moot.
		fs.reserved = false
		return
	}
	if s.FL.InFlight(flow) > 0 {
		// Predecessor still draining: keep the reservation, poll again.
		s.FL.Loop.After(s.Cfg.DrainPoll, func() { s.tryRestart(flow) })
		return
	}
	gen := s.FL.NextGen(flow)
	offset := s.FL.StaggerOffset(flow, gen)
	var (
		m    *fleet.Member
		kind RestartKind
	)
	if fs.lastCkpt != nil {
		snd, err := RestoreSender(s.FL, fs.lastCkpt, s.PriorHash)
		if err == nil {
			m = s.FL.AdmitSender(flow, snd, offset)
			RestoreGuard(m, fs.lastCkpt)
			kind = RestartWarm
			s.Stats.WarmRestarts++
		} else {
			// A checkpoint this supervisor captured should always
			// restore; count the anomaly and fall through cold.
			s.Stats.CheckpointErrors++
		}
	}
	if m == nil {
		m = s.FL.Admit(flow, offset)
		if s.FL.Cfg.Table != nil {
			kind = RestartHot
			s.Stats.HotRestarts++
		} else {
			kind = RestartCold
			s.Stats.ColdRestarts++
		}
	}
	fs.reserved = false
	fs.lastReseeds = beliefReseeds(m)
	rec := &MemberRecord{M: m, Kind: kind, Restarted: true, RetiredAt: -1}
	fs.rec = rec
	s.Records = append(s.Records, rec)
	s.Events = append(s.Events, Event{
		At: s.FL.Loop.Now(), Kind: EventRestart, Flow: flow, Gen: m.Gen,
		Restart: kind, Attempt: fs.attempts,
	})
}
