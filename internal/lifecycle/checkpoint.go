// Package lifecycle is the fleet's member lifecycle and crash-recovery
// runtime: versioned binary checkpoints of a member's full decision
// state, a Supervisor that watches member health and restarts failures
// through a hot/warm/cold ladder, and an Admission controller that
// drives deterministic churn schedules from seeded chaos streams.
//
// A checkpoint captures everything a member needs to resume making the
// same decisions an uninterrupted member would: the belief posterior
// (Exact hypotheses or the raw Particle population with its RNG stream
// word), pending sends, the soft-matching ack memory, the sender's
// sequence/throughput counters, and the planner Guard's last safe
// pacing action. The header binds the checkpoint to its model identity
// via policy.HashPrior over the fleet's resolved prior and PolicyCache
// quanta — restoring against a different prior is a detected error,
// never a silently wrong belief — and the body is checksummed, so a
// corrupted or truncated file is a clean error, never a panic.
//
// The restart ladder, fastest first:
//
//	hot  — the fleet serves a compiled policy.Table: a fresh member
//	       answers rung-0 probes from the table immediately, before its
//	       belief has learned anything;
//	warm — the member's last checkpoint restores the belief it had
//	       already converged to;
//	cold — the prior alone, re-learning from scratch.
//
// Warm restores compose with the table (the restored member keeps the
// table as Guard rung 0), and every restarted member still degrades
// through planner.Guard's in-decision ladder (table → live → cache →
// last-safe → sleep); this package's ladder chooses where a member
// *starts*, the Guard's chooses how each *decision* is served.
package lifecycle

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/core"
	"modelcc/internal/fleet"
	"modelcc/internal/model"
	"modelcc/internal/packet"
	"modelcc/internal/planner"
	"modelcc/internal/policy"
	"modelcc/internal/units"
)

// Version is the checkpoint format version this package reads and
// writes.
const Version = 1

// magic identifies a member checkpoint file.
var magic = [8]byte{'M', 'C', 'L', 'C', 'K', 'P', 'T', '1'}

const (
	headerSize = 56

	// Decode caps: a corrupted length field must produce an error, not
	// an attempted multi-gigabyte allocation.
	maxHyps    = 1 << 21
	maxPending = 1 << 20
	maxRecent  = 1 << 20
	maxQueue   = 1 << 20
)

// Checkpoint is one member's full decision state at an instant.
type Checkpoint struct {
	// Flow and Gen identify the member generation that was captured.
	Flow packet.FlowID
	Gen  uint32
	// PriorHash binds the checkpoint to the model identity it was
	// captured under (policy.HashPrior over the resolved prior and the
	// fleet cache quanta); Restore against a different hash is refused.
	PriorHash uint64
	// At is the virtual capture time.
	At time.Duration
	// NextSeq, Sent, Acked, Wakes are the sender's counters.
	NextSeq, Sent, Acked, Wakes int64
	// LastSafeDelta/HaveSafe are the Guard's remembered safe pacing
	// action (rung 3 of the degradation ladder).
	LastSafeDelta time.Duration
	HaveSafe      bool
	// Utility and Injected carry the member's accounting, for
	// provenance (a restored member starts fresh fenced counters).
	Utility  float64
	Injected int64
	// Belief is the belief snapshot (kind, posterior, pending sends,
	// ack memory, RNG stream).
	Belief belief.Snapshot
}

// Capture snapshots a live member under the given prior hash. It does
// not mutate the member. Acknowledgments delivered in the current
// instant but not yet folded into the belief are not captured; the
// belief's soft matching absorbs the at-most-one-instant gap on
// restore.
func Capture(m *fleet.Member, priorHash uint64) (*Checkpoint, error) {
	c := &Checkpoint{
		Flow:      m.Flow,
		Gen:       m.Gen,
		PriorHash: priorHash,
		NextSeq:   m.Sender.NextSeq(),
		Sent:      m.Sender.Sent,
		Acked:     m.Sender.Acked,
		Wakes:     m.Sender.Wakes,
		Utility:   m.Utility,
		Injected:  m.Injected,
	}
	switch b := m.Sender.Belief.(type) {
	case *belief.Exact:
		c.Belief = b.Snapshot()
	case *belief.Particle:
		c.Belief = b.Snapshot()
	default:
		return nil, fmt.Errorf("lifecycle: belief kind %T is not checkpointable", m.Sender.Belief)
	}
	c.At = c.Belief.Now
	if g := m.Sender.Guard; g != nil {
		c.LastSafeDelta, c.HaveSafe = g.LastSafe()
	}
	return c, nil
}

// MemberHost is the restore surface a checkpointed sender is rebuilt
// against: the prior and the resolved member configs of whatever will
// host the restored member. Both the single-loop *fleet.Fleet and the
// sharded *fleet.Partition implement it, so one restore path serves
// the Supervisor's warm restarts and the shard coordinator's
// failovers. A checkpoint taken under one host restores bit-identically
// under any other with the same prior hash — the encoding carries no
// topology.
type MemberHost interface {
	PriorStates() []model.State
	MemberBeliefConfig() belief.Config
	MemberPlanConfig() planner.Config
}

// RestoreSender rebuilds a sender from the checkpoint against a host's
// resolved prior and configs. The caller supplies the host's prior
// hash; a mismatch — the checkpoint was captured under a different
// model or quanta — is a detected error. The sender is not yet wired
// into the host; admit it with Fleet.AdmitSender (or
// Partition.AttachSender), then reinstate the Guard's safe action with
// RestoreGuard.
func RestoreSender(host MemberHost, c *Checkpoint, priorHash uint64) (*core.Sender, error) {
	if c.PriorHash != priorHash {
		return nil, fmt.Errorf("lifecycle: checkpoint bound to prior %016x, host resolves to %016x (model or quanta mismatch)", c.PriorHash, priorHash)
	}
	var (
		b   belief.Belief
		err error
	)
	if c.Belief.Particle {
		b, err = belief.RestoreParticle(host.PriorStates(), host.MemberBeliefConfig(), c.Belief)
	} else {
		b, err = belief.RestoreExact(host.PriorStates(), host.MemberBeliefConfig(), c.Belief)
	}
	if err != nil {
		return nil, err
	}
	s := core.NewSender(b, host.MemberPlanConfig())
	s.SetNextSeq(c.NextSeq)
	s.Sent = c.Sent
	s.Acked = c.Acked
	s.Wakes = c.Wakes
	return s, nil
}

// RestoreGuard reinstates the checkpointed safe pacing action on an
// admitted member's Guard (no-op when the member has none or the
// checkpoint recorded none).
func RestoreGuard(m *fleet.Member, c *Checkpoint) {
	if g := m.Sender.Guard; g != nil && c.HaveSafe {
		g.RestoreLastSafe(c.LastSafeDelta)
	}
}

// FleetPriorHash computes the identity a fleet's member checkpoints are
// bound to: policy.HashPrior over the resolved prior and the shared
// PolicyCache's fingerprint quanta (zero quanta when the cache is
// disabled).
func FleetPriorHash(fl *fleet.Fleet) uint64 {
	return PriorHashFor(fl.Cfg, fl.Caches)
}

// PriorHashFor is FleetPriorHash over a resolved configuration and its
// shared cache stripes (nil when disabled): the sharded coordinator
// binds its barrier checkpoints to the exact identity the single-loop
// fleet would, so checkpoints move freely between the two runtimes.
func PriorHashFor(cfg fleet.Config, caches *planner.CacheStripes) uint64 {
	var (
		tq time.Duration
		wq float64
	)
	if caches != nil {
		tq, wq = caches.TimeQuantum(), caches.WeightQuantum()
	}
	return policy.HashPrior(cfg.ResolvedPrior(), tq, wq)
}

// ---- binary encoding ----
//
// Little-endian throughout, mirroring internal/policy's table format.
//
//	offset size  field
//	0      8     magic "MCLCKPT1"
//	8      4     version
//	12     4     flow
//	16     4     generation
//	20     4     belief kind (0 exact, 1 particle)
//	24     8     prior hash
//	32     8     capture time (ns)
//	40     8     body length
//	48     8     FNV-1a checksum of bytes 0..48 plus the body
//	56     ...   body

type writer struct{ b []byte }

func (w *writer) u8(v uint8) { w.b = append(w.b, v) }
func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *writer) u32(v uint32) { w.b = append(w.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }
func (w *writer) u64(v uint64) {
	w.b = append(w.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
func (w *writer) i64(v int64)         { w.u64(uint64(v)) }
func (w *writer) f64(v float64)       { w.u64(math.Float64bits(v)) }
func (w *writer) dur(v time.Duration) { w.i64(int64(v)) }

// errTruncated is the canonical short-input decode error.
var errTruncated = errors.New("lifecycle: checkpoint truncated")

type reader struct {
	b   []byte
	off int
}

func (r *reader) u8() (uint8, error) {
	if r.off+1 > len(r.b) {
		return 0, errTruncated
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *reader) bool() (bool, error) {
	v, err := r.u8()
	if err != nil {
		return false, err
	}
	if v > 1 {
		return false, errors.New("lifecycle: checkpoint has invalid boolean")
	}
	return v == 1, nil
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, errTruncated
	}
	v := uint32(r.b[r.off]) | uint32(r.b[r.off+1])<<8 | uint32(r.b[r.off+2])<<16 | uint32(r.b[r.off+3])<<24
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, errTruncated
	}
	v := uint64(r.b[r.off]) | uint64(r.b[r.off+1])<<8 | uint64(r.b[r.off+2])<<16 | uint64(r.b[r.off+3])<<24 |
		uint64(r.b[r.off+4])<<32 | uint64(r.b[r.off+5])<<40 | uint64(r.b[r.off+6])<<48 | uint64(r.b[r.off+7])<<56
	r.off += 8
	return v, nil
}

func (r *reader) i64() (int64, error) { v, err := r.u64(); return int64(v), err }

func (r *reader) f64() (float64, error) {
	v, err := r.u64()
	if err != nil {
		return 0, err
	}
	f := math.Float64frombits(v)
	return f, nil
}

func (r *reader) dur() (time.Duration, error) { v, err := r.i64(); return time.Duration(v), err }

// Encode serializes the checkpoint. Encoding is canonical: two
// checkpoints of the same state produce identical bytes.
func (c *Checkpoint) Encode() []byte {
	var body writer
	body.i64(c.NextSeq)
	body.i64(c.Sent)
	body.i64(c.Acked)
	body.i64(c.Wakes)
	body.dur(c.LastSafeDelta)
	body.bool(c.HaveSafe)
	body.f64(c.Utility)
	body.i64(c.Injected)

	sn := &c.Belief
	body.dur(sn.Now)
	body.u64(sn.RNG)
	body.i64(int64(sn.Resamples))
	body.i64(int64(sn.Cum.Branches))
	body.i64(int64(sn.Cum.Rejected))
	body.i64(int64(sn.Cum.Merged))
	body.i64(int64(sn.Cum.Floored))
	body.i64(int64(sn.Cum.Relaxed))
	body.i64(int64(sn.Cum.Reseeded))
	body.i64(int64(sn.Cum.N))
	body.u32(uint32(len(sn.Pending)))
	for _, s := range sn.Pending {
		body.i64(s.Seq)
		body.dur(s.At)
		body.i64(s.Bits)
	}
	body.u32(uint32(len(sn.Recent)))
	for _, m := range sn.Recent {
		body.i64(m.Seq)
		body.dur(m.At)
	}
	body.u32(uint32(len(sn.Hyps)))
	for i := range sn.Hyps {
		body.f64(sn.Hyps[i].W)
		encodeState(&body, &sn.Hyps[i].S)
	}

	var out writer
	out.b = make([]byte, 0, headerSize+len(body.b))
	out.b = append(out.b, magic[:]...)
	out.u32(Version)
	out.u32(uint32(c.Flow))
	out.u32(c.Gen)
	kind := uint32(0)
	if sn.Particle {
		kind = 1
	}
	out.u32(kind)
	out.u64(c.PriorHash)
	out.dur(c.At)
	out.u64(uint64(len(body.b)))
	out.u64(checksum(out.b[:48], body.b))
	out.b = append(out.b, body.b...)
	return out.b
}

// encodeState serializes one model.State. The queue is written from the
// live window (states in snapshots are cloned, so QHead is 0, but
// Queued() keeps this correct regardless); QueueBits is recomputed at
// decode rather than trusted.
func encodeState(w *writer, s *model.State) {
	w.u32(uint32(s.ParamsID))
	w.f64(float64(s.P.LinkRate))
	w.f64(float64(s.P.CrossRate))
	w.dur(s.P.MeanSwitch)
	w.f64(s.P.LossProb)
	w.i64(s.P.BufferCapBits)
	w.i64(s.P.InitFullBits)
	w.f64(s.P.ClockSkew)
	w.i64(int64(s.P.PktBytes))
	w.i64(s.P.CrossPktBits)

	w.dur(s.Now)
	w.bool(s.PingerOn)
	w.dur(s.NextCross)
	w.dur(s.NextToggle)
	w.dur(s.SwitchTick)
	w.bool(s.Serving)
	encodeQPkt(w, s.InService)
	w.dur(s.ServiceDone)
	q := s.Queued()
	w.u32(uint32(len(q)))
	for _, p := range q {
		encodeQPkt(w, p)
	}
}

func encodeQPkt(w *writer, p model.QPkt) {
	w.bool(p.Own)
	w.i64(p.Seq)
	w.i64(p.Bits)
	w.dur(p.EnqueuedAt)
}

// checksum hashes the header prefix (everything before the checksum
// field itself) and the body region (FNV-1a, like the policy table's
// record checksum), so a flipped bit anywhere in the file is caught.
func checksum(header, body []byte) uint64 {
	h := fnv.New64a()
	h.Write(header)
	h.Write(body)
	return h.Sum64()
}

// Decode parses a checkpoint. Corrupted, truncated, or internally
// inconsistent input yields an error — never a panic, never a silently
// wrong belief (the caller still must check the prior hash against its
// own model via RestoreSender).
func Decode(b []byte) (*Checkpoint, error) {
	if len(b) < headerSize {
		return nil, errTruncated
	}
	r := &reader{b: b}
	var got [8]byte
	copy(got[:], b[:8])
	r.off = 8
	if got != magic {
		return nil, errors.New("lifecycle: not a member checkpoint (bad magic)")
	}
	ver, _ := r.u32()
	if ver != Version {
		return nil, fmt.Errorf("lifecycle: checkpoint version %d, this build reads %d", ver, Version)
	}
	flow, _ := r.u32()
	gen, _ := r.u32()
	kind, _ := r.u32()
	if kind > 1 {
		return nil, fmt.Errorf("lifecycle: unknown belief kind %d", kind)
	}
	priorHash, _ := r.u64()
	at, _ := r.dur()
	bodyLen, _ := r.u64()
	sum, _ := r.u64()
	if bodyLen != uint64(len(b)-headerSize) {
		return nil, errors.New("lifecycle: checkpoint body length mismatch (truncated or padded)")
	}
	body := b[headerSize:]
	if checksum(b[:48], body) != sum {
		return nil, errors.New("lifecycle: checkpoint checksum mismatch (corrupted)")
	}

	c := &Checkpoint{
		Flow:      packet.FlowID(flow),
		Gen:       gen,
		PriorHash: priorHash,
		At:        at,
	}
	c.Belief.Particle = kind == 1
	r = &reader{b: body}
	var err error
	read := func(dst *int64) {
		if err == nil {
			*dst, err = r.i64()
		}
	}
	read(&c.NextSeq)
	read(&c.Sent)
	read(&c.Acked)
	read(&c.Wakes)
	if err == nil {
		c.LastSafeDelta, err = r.dur()
	}
	if err == nil {
		c.HaveSafe, err = r.bool()
	}
	if err == nil {
		c.Utility, err = r.f64()
	}
	read(&c.Injected)

	sn := &c.Belief
	if err == nil {
		sn.Now, err = r.dur()
	}
	if err == nil {
		sn.RNG, err = r.u64()
	}
	var tmp int64
	readInt := func(dst *int) {
		if err == nil {
			tmp, err = r.i64()
			*dst = int(tmp)
		}
	}
	readInt(&sn.Resamples)
	readInt(&sn.Cum.Branches)
	readInt(&sn.Cum.Rejected)
	readInt(&sn.Cum.Merged)
	readInt(&sn.Cum.Floored)
	readInt(&sn.Cum.Relaxed)
	readInt(&sn.Cum.Reseeded)
	readInt(&sn.Cum.N)
	if err != nil {
		return nil, err
	}

	nPending, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nPending > maxPending {
		return nil, fmt.Errorf("lifecycle: checkpoint claims %d pending sends (corrupt)", nPending)
	}
	if nPending > 0 {
		sn.Pending = make([]model.Send, nPending)
		for i := range sn.Pending {
			s := &sn.Pending[i]
			if s.Seq, err = r.i64(); err != nil {
				return nil, err
			}
			if s.At, err = r.dur(); err != nil {
				return nil, err
			}
			if s.Bits, err = r.i64(); err != nil {
				return nil, err
			}
		}
	}

	nRecent, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nRecent > maxRecent {
		return nil, fmt.Errorf("lifecycle: checkpoint claims %d recent acks (corrupt)", nRecent)
	}
	if nRecent > 0 {
		sn.Recent = make([]belief.AckMemo, nRecent)
		for i := range sn.Recent {
			m := &sn.Recent[i]
			if m.Seq, err = r.i64(); err != nil {
				return nil, err
			}
			if m.At, err = r.dur(); err != nil {
				return nil, err
			}
		}
	}

	nHyps, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nHyps == 0 {
		return nil, errors.New("lifecycle: checkpoint has no hypotheses")
	}
	if nHyps > maxHyps {
		return nil, fmt.Errorf("lifecycle: checkpoint claims %d hypotheses (corrupt)", nHyps)
	}
	sn.Hyps = make([]belief.Hypothesis, nHyps)
	for i := range sn.Hyps {
		h := &sn.Hyps[i]
		if h.W, err = r.f64(); err != nil {
			return nil, err
		}
		if err = decodeState(r, &h.S); err != nil {
			return nil, err
		}
	}
	if r.off != len(body) {
		return nil, errors.New("lifecycle: checkpoint has trailing bytes")
	}
	return c, nil
}

// decodeState parses one model.State, recomputing the derived queue
// occupancy instead of trusting the wire.
func decodeState(r *reader, s *model.State) error {
	var err error
	var pid uint32
	if pid, err = r.u32(); err != nil {
		return err
	}
	s.ParamsID = int32(pid)
	rf := func(dst *float64) {
		if err == nil {
			*dst, err = r.f64()
		}
	}
	var lr, cr float64
	rf(&lr)
	rf(&cr)
	s.P.LinkRate = units.BitRate(lr)
	s.P.CrossRate = units.BitRate(cr)
	if err == nil {
		s.P.MeanSwitch, err = r.dur()
	}
	rf(&s.P.LossProb)
	ri := func(dst *int64) {
		if err == nil {
			*dst, err = r.i64()
		}
	}
	ri(&s.P.BufferCapBits)
	ri(&s.P.InitFullBits)
	rf(&s.P.ClockSkew)
	var pktBytes int64
	ri(&pktBytes)
	s.P.PktBytes = int(pktBytes)
	ri(&s.P.CrossPktBits)

	if err == nil {
		s.Now, err = r.dur()
	}
	if err == nil {
		s.PingerOn, err = r.bool()
	}
	if err == nil {
		s.NextCross, err = r.dur()
	}
	if err == nil {
		s.NextToggle, err = r.dur()
	}
	if err == nil {
		s.SwitchTick, err = r.dur()
	}
	if err == nil {
		s.Serving, err = r.bool()
	}
	if err == nil {
		s.InService, err = decodeQPkt(r)
	}
	if err == nil {
		s.ServiceDone, err = r.dur()
	}
	if err != nil {
		return err
	}
	nQ, err := r.u32()
	if err != nil {
		return err
	}
	if nQ > maxQueue {
		return fmt.Errorf("lifecycle: checkpoint claims %d queued packets (corrupt)", nQ)
	}
	s.Queue = nil
	s.QHead = 0
	s.QueueBits = 0
	if nQ > 0 {
		s.Queue = make([]model.QPkt, nQ)
		for i := range s.Queue {
			if s.Queue[i], err = decodeQPkt(r); err != nil {
				return err
			}
			s.QueueBits += s.Queue[i].Bits
		}
	}
	return nil
}

func decodeQPkt(r *reader) (model.QPkt, error) {
	var p model.QPkt
	var err error
	if p.Own, err = r.bool(); err != nil {
		return p, err
	}
	if p.Seq, err = r.i64(); err != nil {
		return p, err
	}
	if p.Bits, err = r.i64(); err != nil {
		return p, err
	}
	p.EnqueuedAt, err = r.dur()
	return p, err
}

// WriteFile writes the checkpoint atomically (tmp + rename, like
// policy.WriteTable) so a crash mid-write never leaves a torn file a
// later restore could trip on.
func (c *Checkpoint) WriteFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(c.Encode()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile loads and decodes a checkpoint file.
func ReadFile(path string) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}
