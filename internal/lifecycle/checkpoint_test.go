package lifecycle

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/core"
	"modelcc/internal/fleet"
	"modelcc/internal/packet"
)

// testFleet builds a small fleet used only as a source of resolved
// member-construction inputs (prior states, belief/planner configs).
func testFleet(t testing.TB, workers int) *fleet.Fleet {
	t.Helper()
	return fleet.New(fleet.Config{N: 2, Seed: 7, Workers: workers})
}

// scriptedTrace drives a sender against a deterministic scripted
// network (every send acknowledged after a fixed delay) for the given
// number of wakes and returns the decision trace. When ckptAt >= 0 the
// sender is checkpointed through the full binary round-trip and
// replaced by its restore at that wake — an uninterrupted run and an
// interrupted one must produce identical traces.
func scriptedTrace(t *testing.T, fl *fleet.Fleet, s *core.Sender, wakes, ckptAt int) []string {
	t.Helper()
	hash := FleetPriorHash(fl)
	const delay = 150 * time.Millisecond
	var (
		trace   []string
		pending []packet.Ack
		now     time.Duration
	)
	for k := 0; k < wakes; k++ {
		if k == ckptAt {
			s = roundTrip(t, fl, s, hash)
		}
		var acks []packet.Ack
		for len(pending) > 0 && pending[0].ReceivedAt <= now {
			acks = append(acks, pending[0])
			pending = pending[1:]
		}
		act := s.Wake(now, acks)
		line := fmt.Sprintf("%d@%v:", k, act.WakeAt)
		for _, snd := range act.Sends {
			line += fmt.Sprintf(" %d", snd.Seq)
			pending = append(pending, packet.Ack{Seq: snd.Seq, SentAt: now, ReceivedAt: now + delay})
		}
		trace = append(trace, line)
		next := act.WakeAt
		if len(pending) > 0 && pending[0].ReceivedAt < next {
			next = pending[0].ReceivedAt
		}
		if next <= now {
			next = now + 10*time.Millisecond
		}
		now = next
	}
	return trace
}

// roundTrip checkpoints the sender, pushes it through Encode/Decode,
// asserts the binary form is canonical (encode∘decode∘encode is
// identity), and returns the restored sender.
func roundTrip(t *testing.T, fl *fleet.Fleet, s *core.Sender, hash uint64) *core.Sender {
	t.Helper()
	m := &fleet.Member{Flow: 0, Gen: 0, Sender: s}
	c, err := Capture(m, hash)
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	raw := c.Encode()
	c2, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if again := c2.Encode(); !bytes.Equal(raw, again) {
		t.Fatalf("encode/decode/encode not bit-identical: %d vs %d bytes", len(raw), len(again))
	}
	s2, err := RestoreSender(fl, c2, hash)
	if err != nil {
		t.Fatalf("RestoreSender: %v", err)
	}
	if s2.NextSeq() != s.NextSeq() || s2.Sent != s.Sent || s2.Acked != s.Acked || s2.Wakes != s.Wakes {
		t.Fatalf("restored counters differ: next=%d/%d sent=%d/%d acked=%d/%d wakes=%d/%d",
			s2.NextSeq(), s.NextSeq(), s2.Sent, s.Sent, s2.Acked, s.Acked, s2.Wakes, s.Wakes)
	}
	return s2
}

// TestResumeMatchesUninterruptedExact is the acceptance property: a
// member restored from Checkpoint(m) makes exactly the decisions the
// uninterrupted member would have made, for the Exact belief.
func TestResumeMatchesUninterruptedExact(t *testing.T) {
	fl := testFleet(t, 1)
	mk := func() *core.Sender {
		return core.NewSender(belief.NewExact(fl.PriorStates(), fl.MemberBeliefConfig()), fl.MemberPlanConfig())
	}
	const wakes = 60
	straight := scriptedTrace(t, fl, mk(), wakes, -1)
	for _, at := range []int{1, 10, 30, 59} {
		resumed := scriptedTrace(t, fl, mk(), wakes, at)
		for i := range straight {
			if straight[i] != resumed[i] {
				t.Fatalf("ckpt at wake %d: decision %d diverged:\n straight: %s\n resumed:  %s",
					at, i, straight[i], resumed[i])
			}
		}
	}
}

// TestResumeMatchesUninterruptedParticle is the same property for the
// Particle belief, whose RNG stream word must survive the round-trip
// for the sampled toggles to replay identically.
func TestResumeMatchesUninterruptedParticle(t *testing.T) {
	fl := testFleet(t, 1)
	mk := func() *core.Sender {
		b := belief.NewParticle(fl.PriorStates(), 64, fl.MemberBeliefConfig(), rand.New(rand.NewSource(3)))
		return core.NewSender(b, fl.MemberPlanConfig())
	}
	const wakes = 40
	straight := scriptedTrace(t, fl, mk(), wakes, -1)
	for _, at := range []int{5, 20} {
		resumed := scriptedTrace(t, fl, mk(), wakes, at)
		for i := range straight {
			if straight[i] != resumed[i] {
				t.Fatalf("ckpt at wake %d: decision %d diverged:\n straight: %s\n resumed:  %s",
					at, i, straight[i], resumed[i])
			}
		}
	}
}

// TestResumeWorkerInvariance re-runs the Exact resume check with a
// parallel rollout pool: the worker count must change neither the
// straight trace nor the resumed one.
func TestResumeWorkerInvariance(t *testing.T) {
	serial := testFleet(t, 1)
	parallel := testFleet(t, 0)
	mk := func(fl *fleet.Fleet) *core.Sender {
		return core.NewSender(belief.NewExact(fl.PriorStates(), fl.MemberBeliefConfig()), fl.MemberPlanConfig())
	}
	const wakes = 40
	a := scriptedTrace(t, serial, mk(serial), wakes, 15)
	b := scriptedTrace(t, parallel, mk(parallel), wakes, 15)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across worker counts:\n serial:   %s\n parallel: %s", i, a[i], b[i])
		}
	}
}

// liveCheckpoint captures member 0 of a short real fleet run, giving
// the error-path tests a realistic checkpoint.
func liveCheckpoint(t testing.TB) (*fleet.Fleet, *Checkpoint) {
	t.Helper()
	fl := fleet.New(fleet.Config{N: 2, Seed: 11, Workers: 1})
	fl.Run(10 * time.Second)
	c, err := Capture(fl.Members[0], FleetPriorHash(fl))
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	return fl, c
}

func TestRestoreRejectsWrongPrior(t *testing.T) {
	fl, c := liveCheckpoint(t)
	if _, err := RestoreSender(fl, c, FleetPriorHash(fl)+1); err == nil {
		t.Fatal("restore against a different prior hash succeeded; want detected error")
	} else if !strings.Contains(err.Error(), "prior") {
		t.Fatalf("wrong-prior error should name the prior mismatch, got: %v", err)
	}
}

// TestDecodeRejectsDamage proves every corruption mode is a clean
// error: truncations at every prefix length, single-bit flips at every
// byte, and garbage — never a panic, never a nil-error wrong result.
func TestDecodeRejectsDamage(t *testing.T) {
	_, c := liveCheckpoint(t)
	raw := c.Encode()

	if _, err := Decode(raw); err != nil {
		t.Fatalf("pristine checkpoint failed to decode: %v", err)
	}
	for cut := 0; cut < len(raw); cut += 7 {
		if _, err := Decode(raw[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", cut)
		}
	}
	for i := 0; i < len(raw); i += 11 {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x40
		c2, err := Decode(mut)
		if err != nil {
			continue
		}
		// A bit flip the checksum does not catch can only be a flip
		// inside the checksum/length header region that still describes
		// the same body — the decoded state must then match the
		// original exactly.
		if !bytes.Equal(c2.Encode(), raw) {
			t.Fatalf("bit flip at byte %d decoded to a different checkpoint without error", i)
		}
	}
	if _, err := Decode([]byte("not a checkpoint at all")); err == nil {
		t.Fatal("garbage decoded without error")
	}
	if _, err := Decode(append([]byte(nil), make([]byte, 56)...)); err == nil {
		t.Fatal("zero header decoded without error")
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	fl, c := liveCheckpoint(t)
	path := filepath.Join(t.TempDir(), "m0.ckpt")
	if err := c.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	c2, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(c.Encode(), c2.Encode()) {
		t.Fatal("file round-trip not bit-identical")
	}
	if _, err := RestoreSender(fl, c2, FleetPriorHash(fl)); err != nil {
		t.Fatalf("restore from file: %v", err)
	}
	// A torn write must never be visible: the directory holds either
	// nothing or a complete file, thanks to the tmp+rename protocol.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".ckpt-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

// FuzzCheckpoint hardens Decode against arbitrary input: whatever the
// bytes, it must return a value or an error — never panic — and any
// successful decode must re-encode canonically (decode∘encode is the
// identity on the image of Encode).
func FuzzCheckpoint(f *testing.F) {
	fl := fleet.New(fleet.Config{N: 2, Seed: 11, Workers: 1})
	fl.Run(5 * time.Second)
	c, err := Capture(fl.Members[0], FleetPriorHash(fl))
	if err != nil {
		f.Fatal(err)
	}
	raw := c.Encode()
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add(raw[:56])
	f.Add([]byte{})
	f.Add([]byte("MCLCKPT1"))
	mut := append([]byte(nil), raw...)
	mut[60] ^= 0xff
	f.Add(mut)
	f.Fuzz(func(t *testing.T, b []byte) {
		c, err := Decode(b)
		if err != nil {
			return
		}
		again := c.Encode()
		c2, err := Decode(again)
		if err != nil {
			t.Fatalf("re-encode of a decoded checkpoint failed to decode: %v", err)
		}
		if !bytes.Equal(c2.Encode(), again) {
			t.Fatal("decode/encode not canonical")
		}
	})
}
