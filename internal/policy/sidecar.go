package policy

import (
	"bufio"
	"fmt"
	"os"
	"sync"
)

// MissLog is the append-only sidecar a Server writes table misses to:
// the same fixed-width records as a table, unsorted, behind a sidecar
// header carrying the same identity (quanta, prior hash) so a later
// Merge can refuse incompatible files. Each distinct fingerprint is
// appended once per process lifetime (an uncovered situation recurs on
// every wake; logging it once bounds the file by coverage, not by
// runtime).
//
// Appends are buffered; Close (or Flush) makes them durable. MissLog
// is safe for concurrent use.
type MissLog struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	seen map[uint64]struct{}
	// Appended counts records written (post-dedup).
	Appended int
}

// CreateMissLog creates (or truncates) a sidecar miss log whose
// identity matches the table being served.
func CreateMissLog(path string, h Header) (*MissLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	h.Version = Version
	h.Records = 0
	var buf [headerSize]byte
	putHeader(buf[:], magicSidecar, h)
	if _, err := f.Write(buf[:]); err != nil {
		f.Close()
		return nil, err
	}
	return &MissLog{f: f, w: bufio.NewWriter(f), seen: make(map[uint64]struct{})}, nil
}

// Append logs one miss. Repeated fingerprints are dropped.
func (l *MissLog) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return fmt.Errorf("policy: miss log closed")
	}
	if _, dup := l.seen[r.FP]; dup {
		return nil
	}
	l.seen[r.FP] = struct{}{}
	var buf [recordSize]byte
	putRecord(buf[:], r)
	if _, err := l.w.Write(buf[:]); err != nil {
		return err
	}
	l.Appended++
	return nil
}

// Flush forces buffered records to the file.
func (l *MissLog) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return nil
	}
	return l.w.Flush()
}

// Close flushes and closes the sidecar.
func (l *MissLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return nil
	}
	err := l.w.Flush()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.w, l.f = nil, nil
	return err
}
