//go:build !unix

package policy

import "os"

// mapFile falls back to reading the whole file on platforms without a
// usable mmap: same contract, the bytes are simply heap-resident.
func mapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
