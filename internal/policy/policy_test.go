package policy

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"modelcc/internal/fleet"
	"modelcc/internal/model"
)

// synthRecords builds n deterministic pseudo-random records (SplitMix64
// over i, no time/os dependence).
func synthRecords(n int) []Record {
	recs := make([]Record, n)
	next := func(x uint64) uint64 {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := range recs {
		fp := next(uint64(i) + 1)
		recs[i] = Record{
			FP:      fp,
			Verify:  next(fp),
			SendNow: i%3 == 0,
			Delta:   time.Duration(i) * 10 * time.Millisecond,
			Gain:    float64(i) * 1.25,
		}
	}
	return recs
}

func testHeader() Header {
	return Header{
		FleetN:        8,
		TimeQuantum:   50 * time.Millisecond,
		WeightQuantum: 1e-3,
		PriorHash:     0xDEADBEEF,
		BuildSeed:     7,
		Created:       1700000000,
		Note:          "unit test",
	}
}

func TestTableWriteOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.pol")
	recs := synthRecords(5000)
	if err := WriteTable(path, testHeader(), recs); err != nil {
		t.Fatal(err)
	}
	tb, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	h := tb.Header()
	want := testHeader()
	if h.FleetN != want.FleetN || h.TimeQuantum != want.TimeQuantum ||
		h.WeightQuantum != want.WeightQuantum || h.PriorHash != want.PriorHash ||
		h.BuildSeed != want.BuildSeed || h.Created != want.Created || h.Note != want.Note {
		t.Fatalf("header round-trip: got %+v want %+v", h, want)
	}
	if tb.Len() != len(recs) {
		t.Fatalf("len = %d, want %d", tb.Len(), len(recs))
	}
	// Every record served bit-identical, verify-mismatch refused.
	if err := tb.Verify(); err != nil {
		t.Fatal(err)
	}
	// Absent fingerprints miss.
	if _, ok := tb.Lookup(0x1234, 0); ok {
		t.Error("absent fingerprint served")
	}
	// Spot-check payloads via the original (unsorted) records.
	for _, r := range recs[:100] {
		got, ok := tb.Lookup(r.FP, r.Verify)
		if !ok || got != r {
			t.Fatalf("lookup %016x: ok=%v got %+v want %+v", r.FP, ok, got, r)
		}
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.pol")
	if err := WriteTable(path, testHeader(), synthRecords(64)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	flip := append([]byte(nil), data...)
	flip[headerSize+17] ^= 0xFF // corrupt a record byte
	bad := filepath.Join(dir, "bad.pol")
	os.WriteFile(bad, flip, 0o644)
	if _, err := Open(bad); err == nil {
		t.Error("corrupt record region accepted")
	}

	trunc := filepath.Join(dir, "trunc.pol")
	os.WriteFile(trunc, data[:len(data)-8], 0o644)
	if _, err := Open(trunc); err == nil {
		t.Error("truncated table accepted")
	}

	wrongMagic := append([]byte(nil), data...)
	wrongMagic[0] = 'X'
	wm := filepath.Join(dir, "wm.pol")
	os.WriteFile(wm, wrongMagic, 0o644)
	if _, err := Open(wm); err == nil {
		t.Error("wrong magic accepted")
	}
}

func TestWriteTableRejectsConflictingDuplicates(t *testing.T) {
	dir := t.TempDir()
	recs := synthRecords(4)
	// Same fingerprint, different payload: ambiguous, must be refused.
	recs = append(recs, Record{FP: recs[0].FP, Verify: recs[0].Verify + 1})
	if err := WriteTable(filepath.Join(dir, "dup.pol"), testHeader(), recs); err == nil {
		t.Fatal("conflicting duplicate fingerprints accepted")
	}
	// Exact duplicates collapse silently.
	recs2 := synthRecords(4)
	recs2 = append(recs2, recs2[0])
	path := filepath.Join(dir, "dup2.pol")
	if err := WriteTable(path, testHeader(), recs2); err != nil {
		t.Fatal(err)
	}
	tb, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if tb.Len() != 4 {
		t.Fatalf("len = %d after collapsing exact duplicate, want 4", tb.Len())
	}
}

func TestHashPriorDiscriminates(t *testing.T) {
	prA := fleet.Config{N: 8}.ResolvedPrior()
	prB := fleet.Config{N: 16}.ResolvedPrior()
	tq, wq := 50*time.Millisecond, 1e-3
	if HashPrior(prA, tq, wq) == HashPrior(prB, tq, wq) {
		t.Error("different fleet priors share a hash")
	}
	if HashPrior(prA, tq, wq) == HashPrior(prA, tq, 1e-6) {
		t.Error("different weight quanta share a hash")
	}
	if HashPrior(prA, tq, wq) == HashPrior(prA, 0, wq) {
		t.Error("different time quanta share a hash")
	}

	h := Header{TimeQuantum: tq, WeightQuantum: wq, PriorHash: HashPrior(prA, tq, wq)}
	if err := h.CheckPrior(prA); err != nil {
		t.Errorf("matching prior rejected: %v", err)
	}
	if err := h.CheckPrior(prB); err == nil {
		t.Error("mismatched prior accepted")
	}
}

// compileWorkload is the small fleet workload the serving tests replay:
// big enough to exercise the coarse tier and the shared cache, small
// enough for CI.
func compileWorkload() CompileConfig {
	return CompileConfig{
		Fleet:    fleet.Config{N: 8, Workers: 1},
		Seeds:    []int64{5},
		Duration: 10 * time.Second,
		Note:     "test workload",
	}
}

// TestCompileServeReplay: compiling a fleet workload and re-serving the
// same workload from the table must (a) serve ≥ 90% of decisions from
// the table and (b) reproduce the warm-cache run bit-identically —
// per-flow deliveries and utilities equal — because every table hit
// returns exactly the action the compile recorded.
func TestCompileServeReplay(t *testing.T) {
	cc := compileWorkload()
	h, recs, stats, err := Compile(cc)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Unique == 0 || len(recs) != stats.Unique {
		t.Fatalf("compile stats %+v inconsistent with %d records", stats, len(recs))
	}
	if err := h.CheckPrior(cc.Fleet.ResolvedPrior()); err != nil {
		t.Fatalf("table incompatible with its own workload: %v", err)
	}

	path := filepath.Join(t.TempDir(), "t.pol")
	if err := WriteTable(path, h, recs); err != nil {
		t.Fatal(err)
	}
	tb, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if err := tb.Verify(); err != nil {
		t.Fatal(err)
	}

	// Reference: the compile workload itself (warm cache, live planning).
	ref := fleet.New(fleet.Config{N: 8, Workers: 1, Seed: 5})
	ref.Run(cc.Duration)

	// Served replay of the same workload.
	srv := NewServer(tb, nil)
	fl := fleet.New(fleet.Config{N: 8, Workers: 1, Seed: 5, Table: srv})
	fl.Run(cc.Duration)

	compiled, live := fl.CompiledStats()
	total := compiled + live
	if total == 0 {
		t.Fatal("no decisions made")
	}
	hitRate := float64(compiled) / float64(total)
	if hitRate < 0.9 {
		t.Errorf("compiled hit rate %.3f (%d/%d) < 0.9 on a replay of the compile workload", hitRate, compiled, total)
	}
	probes, hits, _ := srv.Stats()
	if probes == 0 || hits != compiled {
		t.Errorf("server stats probes=%d hits=%d, guard compiled=%d", probes, hits, compiled)
	}

	for i := range fl.Members {
		if got, want := fl.Members[i].Utility, ref.Members[i].Utility; got != want {
			t.Errorf("member %d utility %v != reference %v (served trajectory diverged)", i, got, want)
		}
		f := fl.Members[i].Flow
		if got, want := fl.Delivered(f), ref.Delivered(f); got != want {
			t.Errorf("member %d delivered %d != reference %d", i, got, want)
		}
	}
}

// TestMissFeedbackLoop: serving a workload the table was NOT compiled
// for logs its misses to the sidecar; merging table + sidecar and
// re-serving the same workload turns those misses into hits.
func TestMissFeedbackLoop(t *testing.T) {
	// Compile deliberately short so a longer serve run outruns the
	// table's coverage and exercises the sidecar.
	cc := compileWorkload()
	cc.Duration = 2 * time.Second
	const serveDur = 10 * time.Second
	h, recs, _, err := Compile(cc)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	tablePath := filepath.Join(dir, "t.pol")
	sidecarPath := filepath.Join(dir, "t.miss")
	if err := WriteTable(tablePath, h, recs); err != nil {
		t.Fatal(err)
	}
	tb, err := Open(tablePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	// Serve an unseen seed; misses flow to the sidecar.
	ml, err := CreateMissLog(sidecarPath, tb.Header())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(tb, ml)
	fl1 := fleet.New(fleet.Config{N: 8, Workers: 1, Seed: 99, Table: srv})
	fl1.Run(serveDur)
	_, live1 := fl1.CompiledStats()
	if err := ml.Close(); err != nil {
		t.Fatal(err)
	}
	if live1 == 0 {
		t.Fatal("unseen seed produced no misses; feedback loop unexercised")
	}
	if ml.Appended == 0 {
		t.Fatal("misses occurred but sidecar is empty")
	}

	// Merge table + sidecar into the next table generation.
	mh, mrecs, err := Merge(tablePath, sidecarPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(mrecs) <= tb.Len() {
		t.Fatalf("merge did not grow the table: %d <= %d", len(mrecs), tb.Len())
	}
	nextPath := filepath.Join(dir, "t2.pol")
	if err := WriteTable(nextPath, mh, mrecs); err != nil {
		t.Fatal(err)
	}
	tb2, err := Open(nextPath)
	if err != nil {
		t.Fatal(err)
	}
	defer tb2.Close()
	if err := tb2.Verify(); err != nil {
		t.Fatal(err)
	}

	// Re-serve the same unseen seed from the merged table: the misses
	// became hits.
	srv2 := NewServer(tb2, nil)
	fl2 := fleet.New(fleet.Config{N: 8, Workers: 1, Seed: 99, Table: srv2})
	fl2.Run(serveDur)
	compiled2, live2 := fl2.CompiledStats()
	rate2 := float64(compiled2) / float64(compiled2+live2)
	if rate2 < 0.95 {
		t.Errorf("post-merge hit rate %.3f (%d live), want ≥ 0.95: miss feedback loop broken", rate2, live2)
	}

	// The merged-table trajectory replays the first serve run exactly
	// (every miss-logged decision is served back bit-identical).
	for i := range fl2.Members {
		if got, want := fl2.Members[i].Utility, fl1.Members[i].Utility; got != want {
			t.Errorf("member %d utility %v != first serve run %v", i, got, want)
		}
	}
}

// TestMergeRejectsIncompatible: files compiled under different models
// or quanta must not merge.
func TestMergeRejectsIncompatible(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.pol")
	b := filepath.Join(dir, "b.pol")
	ha := testHeader()
	hb := testHeader()
	hb.PriorHash++
	if err := WriteTable(a, ha, synthRecords(4)); err != nil {
		t.Fatal(err)
	}
	if err := WriteTable(b, hb, synthRecords(4)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Merge(a, b); err == nil {
		t.Error("prior-hash mismatch merged")
	}
}

var _ = model.Prior{} // keep the model import tied to CheckPrior usage above
