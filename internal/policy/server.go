package policy

import (
	"sync/atomic"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/model"
	"modelcc/internal/planner"
)

// Server is the serving side of a compiled table: it implements
// planner.CompiledPolicy, answering Guard rung-0 probes from the table
// (zero allocation on the lookup itself) and appending unserved
// fingerprints — with the live decision that covered for them — to an
// optional sidecar miss log that seeds the next compile.
//
// One Server may be shared by every sender in a process (the fleet
// hands the same Server to all members): the table is immutable, the
// counters are atomic, and the miss log locks internally.
type Server struct {
	t    *Table
	miss *MissLog

	probes, hits, misses atomic.Int64
}

// NewServer serves decisions from t, logging misses to missLog when
// non-nil.
func NewServer(t *Table, missLog *MissLog) *Server {
	return &Server{t: t, miss: missLog}
}

// Table returns the table being served.
func (s *Server) Table() *Table { return s.t }

// Stats reports probes, table hits, and misses since construction.
func (s *Server) Stats() (probes, hits, misses int64) {
	return s.probes.Load(), s.hits.Load(), s.misses.Load()
}

// HitRate reports hits/probes (0 before the first probe).
func (s *Server) HitRate() float64 {
	p := s.probes.Load()
	if p == 0 {
		return 0
	}
	return float64(s.hits.Load()) / float64(p)
}

// Probe implements planner.CompiledPolicy: it fingerprints the belief
// under the table's recorded quanta and serves the compiled action
// rebased to now. A fingerprint whose verification hash mismatches is
// a detected collision and reported as a miss.
func (s *Server) Probe(sup []belief.Hypothesis, pending []model.Send, now time.Duration) (planner.Decision, bool) {
	fp, ver := planner.Fingerprint(sup, pending, now, s.t.h.TimeQuantum, s.t.h.WeightQuantum)
	s.probes.Add(1)
	r, ok := s.t.Lookup(fp, ver)
	if !ok {
		s.misses.Add(1)
		return planner.Decision{}, false
	}
	s.hits.Add(1)
	return planner.Decision{
		SendNow: r.SendNow,
		WakeAt:  now + r.Delta,
		Gain:    r.Gain,
		Support: len(sup),
	}, true
}

// RecordMiss implements planner.CompiledPolicy: the live decision that
// covered a table miss is appended to the sidecar (once per distinct
// fingerprint) so the next compile serves it from the table.
func (s *Server) RecordMiss(sup []belief.Hypothesis, pending []model.Send, now time.Duration, d planner.Decision) {
	if s.miss == nil {
		return
	}
	fp, ver := planner.Fingerprint(sup, pending, now, s.t.h.TimeQuantum, s.t.h.WeightQuantum)
	// Append errors are deliberately swallowed: the sidecar is an
	// optimization for the next compile, and a full disk must not take
	// down the serving path.
	_ = s.miss.Append(Record{FP: fp, Verify: ver, SendNow: d.SendNow, Delta: d.WakeAt - now, Gain: d.Gain})
}
