package policy

import (
	"fmt"
	"time"

	"modelcc/internal/fleet"
	"modelcc/internal/planner"
)

// CompileConfig describes one offline compile: the fleet workload
// whose belief trajectories sweep the reachable space, and the replay
// seeds (one fleet run each — more seeds, broader coverage).
type CompileConfig struct {
	// Fleet is the workload template; Seed is overridden per replay.
	// The serving fleet must use the same configuration (the prior
	// hash in the table header enforces the model identity).
	Fleet fleet.Config
	// Seeds are the replay seeds (default: {1}).
	Seeds []int64
	// Duration is each replay's virtual duration (default 30 s).
	Duration time.Duration
	// Note is free-form provenance recorded in the table header.
	Note string
	// CacheEntries bounds the capture cache per replay (default 1<<20;
	// capture uses the cache's OnStore hook, so even an overflowing
	// cache loses no coverage — only recompute time).
	CacheEntries int
}

// CompileStats reports what a compile saw.
type CompileStats struct {
	// Runs is the number of fleet replays.
	Runs int
	// Stored counts fingerprint→action stores observed across replays
	// (including duplicates between replays).
	Stored int
	// Unique is the number of distinct fingerprints kept — the table
	// size.
	Unique int
	// Collisions counts captures dropped because their fingerprint was
	// already held by a different belief (different verification
	// hash); those situations stay on the live-planning path.
	Collisions int
}

// Compile replays the fleet workload once per seed, capturing every
// fingerprint → action pair the runs compute via the shared
// PolicyCache's OnStore hook, and returns the deduplicated, sorted
// record set with a header binding it to the workload's resolved prior
// and fingerprint quanta. Write it with WriteTable, serve it with
// Open + NewServer.
func Compile(cfg CompileConfig) (Header, []Record, CompileStats, error) {
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []int64{1}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 30 * time.Second
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 1 << 20
	}

	var stats CompileStats
	seen := make(map[uint64]Record)
	var tq time.Duration
	var wq float64
	var fleetN uint32

	for _, seed := range cfg.Seeds {
		fc := cfg.Fleet
		fc.Seed = seed
		fc.NoSharedCache = false
		fc.CacheEntries = cfg.CacheEntries
		fc.Table = nil // the compile must plan live, not serve itself
		fl := fleet.New(fc)
		if fl.Caches == nil {
			return Header{}, nil, stats, fmt.Errorf("policy: compile fleet has no shared cache")
		}
		tq = fl.Caches.TimeQuantum()
		wq = fl.Caches.WeightQuantum()
		if wq <= 0 {
			wq = 1e-6 // the cache's documented default quantum
		}
		fleetN = uint32(fl.Cfg.N)
		fl.Caches.SetOnStore(func(e planner.Entry) {
			stats.Stored++
			if prev, ok := seen[e.FP]; ok {
				if prev.Verify != e.Verify {
					stats.Collisions++
				}
				return
			}
			seen[e.FP] = Record{FP: e.FP, Verify: e.Verify, SendNow: e.SendNow, Delta: e.Delta, Gain: e.Gain}
		})
		fl.Run(cfg.Duration)
		stats.Runs++
	}

	recs := make([]Record, 0, len(seen))
	for _, r := range seen {
		recs = append(recs, r)
	}
	sortRecords(recs)
	stats.Unique = len(recs)

	h := Header{
		Version:       Version,
		FleetN:        fleetN,
		Records:       uint64(len(recs)),
		TimeQuantum:   tq,
		WeightQuantum: wq,
		PriorHash:     HashPrior(cfg.Fleet.ResolvedPrior(), tq, wq),
		BuildSeed:     cfg.Seeds[0],
		Created:       time.Now().Unix(),
		Note:          cfg.Note,
	}
	return h, recs, stats, nil
}
