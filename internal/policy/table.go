package policy

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"time"
)

// File layout (little endian), shared by tables and sidecar miss logs:
//
//	off  0  magic   [8]byte   "MCPOLTB1" table / "MCPOLSC1" sidecar
//	off  8  version uint32
//	off 12  fleetN  uint32
//	off 16  records uint64    (0 in sidecars: derived from file size)
//	off 24  timeQuantum   int64 (ns)
//	off 32  weightQuantum float64 bits
//	off 40  priorHash uint64
//	off 48  buildSeed int64
//	off 56  created   int64 (unix seconds)
//	off 64  note      [32]byte (NUL padded)
//	off 96  checksum  uint64   FNV-1a over the record region (0 in sidecars)
//	off 104 records, 40 bytes each, sorted by fingerprint (tables):
//	        fp uint64 · verify uint64 · delta int64 (ns) ·
//	        gain float64 bits · flags uint64 (bit 0 = sendNow)
//
// The record region is position-independent and fixed-width, so the
// whole file can be mmap-ed read-only and shared page-cache-resident
// across every process serving the same table.

func putHeader(b []byte, magic [8]byte, h Header) {
	copy(b[0:8], magic[:])
	binary.LittleEndian.PutUint32(b[8:], h.Version)
	binary.LittleEndian.PutUint32(b[12:], h.FleetN)
	binary.LittleEndian.PutUint64(b[16:], h.Records)
	binary.LittleEndian.PutUint64(b[24:], uint64(int64(h.TimeQuantum)))
	binary.LittleEndian.PutUint64(b[32:], math.Float64bits(h.WeightQuantum))
	binary.LittleEndian.PutUint64(b[40:], h.PriorHash)
	binary.LittleEndian.PutUint64(b[48:], uint64(h.BuildSeed))
	binary.LittleEndian.PutUint64(b[56:], uint64(h.Created))
	note := h.Note
	if len(note) > noteSize-1 {
		note = note[:noteSize-1]
	}
	for i := range b[64 : 64+noteSize] {
		b[64+i] = 0
	}
	copy(b[64:64+noteSize], note)
	// checksum written separately at offset 96.
}

func parseHeader(b []byte) (magic [8]byte, h Header, checksum uint64) {
	copy(magic[:], b[0:8])
	h.Version = binary.LittleEndian.Uint32(b[8:])
	h.FleetN = binary.LittleEndian.Uint32(b[12:])
	h.Records = binary.LittleEndian.Uint64(b[16:])
	h.TimeQuantum = time.Duration(int64(binary.LittleEndian.Uint64(b[24:])))
	h.WeightQuantum = math.Float64frombits(binary.LittleEndian.Uint64(b[32:]))
	h.PriorHash = binary.LittleEndian.Uint64(b[40:])
	h.BuildSeed = int64(binary.LittleEndian.Uint64(b[48:]))
	h.Created = int64(binary.LittleEndian.Uint64(b[56:]))
	note := b[64 : 64+noteSize]
	for i, c := range note {
		if c == 0 {
			note = note[:i]
			break
		}
	}
	h.Note = string(note)
	checksum = binary.LittleEndian.Uint64(b[96:])
	return magic, h, checksum
}

func putRecord(b []byte, r Record) {
	binary.LittleEndian.PutUint64(b[0:], r.FP)
	binary.LittleEndian.PutUint64(b[8:], r.Verify)
	binary.LittleEndian.PutUint64(b[16:], uint64(int64(r.Delta)))
	binary.LittleEndian.PutUint64(b[24:], math.Float64bits(r.Gain))
	var flags uint64
	if r.SendNow {
		flags |= flagSendNow
	}
	binary.LittleEndian.PutUint64(b[32:], flags)
}

func parseRecord(b []byte) Record {
	return Record{
		FP:      binary.LittleEndian.Uint64(b[0:]),
		Verify:  binary.LittleEndian.Uint64(b[8:]),
		Delta:   time.Duration(int64(binary.LittleEndian.Uint64(b[16:]))),
		Gain:    math.Float64frombits(binary.LittleEndian.Uint64(b[24:])),
		SendNow: binary.LittleEndian.Uint64(b[32:])&flagSendNow != 0,
	}
}

// checksumRegion is FNV-1a over a byte region (the record area).
func checksumRegion(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for _, c := range b {
		h = (h ^ uint64(c)) * prime64
	}
	return h
}

// WriteTable writes a compiled table: records are sorted by fingerprint
// and must be fingerprint-unique (two records under one fingerprint
// with different payloads would make lookups ambiguous; WriteTable
// refuses them — the compiler drops collision captures instead).
func WriteTable(path string, h Header, recs []Record) error {
	sorted := make([]Record, len(recs))
	copy(sorted, recs)
	sortRecords(sorted)
	out := sorted[:0]
	for i, r := range sorted {
		if i > 0 && r.FP == out[len(out)-1].FP {
			if r == out[len(out)-1] {
				continue // exact duplicate: collapse
			}
			return fmt.Errorf("policy: conflicting records under fingerprint %016x", r.FP)
		}
		out = append(out, r)
	}

	h.Version = Version
	h.Records = uint64(len(out))
	buf := make([]byte, headerSize+len(out)*recordSize)
	putHeader(buf, magicTable, h)
	for i, r := range out {
		putRecord(buf[headerSize+i*recordSize:], r)
	}
	binary.LittleEndian.PutUint64(buf[96:], checksumRegion(buf[headerSize:]))

	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// bucketBits sizes the prefix index built at load time: 2^12 buckets
// over the top fingerprint bits narrow the binary search to n/4096
// records, making the common lookup effectively O(1) while staying
// O(log n) in the worst case.
const bucketBits = 12

// Table is a compiled policy table opened read-only (mmap-ed where the
// platform supports it). Lookup is allocation-free and safe for
// concurrent use: the backing bytes and the index are immutable after
// Open.
type Table struct {
	h      Header
	recs   []byte // record region (view into the mapping)
	n      int
	bucket []uint32
	unmap  func() error
}

// Open loads a table read-only, validating magic, version, size, and
// the record-region checksum, and builds the in-memory prefix index.
func Open(path string) (*Table, error) {
	data, unmap, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	t, err := openBytes(data)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, err
	}
	t.unmap = unmap
	return t, nil
}

func openBytes(data []byte) (*Table, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("policy: file shorter than header (%d bytes)", len(data))
	}
	magic, h, sum := parseHeader(data)
	if magic == magicSidecar {
		return nil, fmt.Errorf("policy: file is a sidecar miss log, not a compiled table")
	}
	if magic != magicTable {
		return nil, fmt.Errorf("policy: bad magic %q", magic[:])
	}
	if h.Version != Version {
		return nil, fmt.Errorf("policy: table version %d, this build reads %d", h.Version, Version)
	}
	want := headerSize + int(h.Records)*recordSize
	if len(data) != want {
		return nil, fmt.Errorf("policy: file is %d bytes, header promises %d (%d records)", len(data), want, h.Records)
	}
	recs := data[headerSize:]
	if got := checksumRegion(recs); got != sum {
		return nil, fmt.Errorf("policy: record checksum %016x != header %016x (corrupt or truncated table)", got, sum)
	}
	if h.WeightQuantum <= 0 {
		return nil, fmt.Errorf("policy: non-positive weight quantum %g", h.WeightQuantum)
	}

	t := &Table{h: h, recs: recs, n: int(h.Records)}
	t.bucket = make([]uint32, (1<<bucketBits)+1)
	var prev uint64
	for i := 0; i < t.n; i++ {
		fp := t.fpAt(i)
		if i > 0 && fp <= prev {
			return nil, fmt.Errorf("policy: records not strictly sorted at index %d", i)
		}
		prev = fp
		t.bucket[(fp>>(64-bucketBits))+1] = uint32(i + 1)
	}
	for b := 1; b < len(t.bucket); b++ {
		if t.bucket[b] < t.bucket[b-1] {
			t.bucket[b] = t.bucket[b-1]
		}
	}
	return t, nil
}

// Close releases the mapping. Lookups must not race with Close.
func (t *Table) Close() error {
	if t.unmap == nil {
		return nil
	}
	u := t.unmap
	t.unmap = nil
	t.recs = nil
	t.n = 0
	return u()
}

// Header returns the table's identity and provenance.
func (t *Table) Header() Header { return t.h }

// Len reports the record count.
func (t *Table) Len() int { return t.n }

// Record returns record i (0 ≤ i < Len), in fingerprint order.
func (t *Table) Record(i int) Record { return parseRecord(t.recs[i*recordSize:]) }

func (t *Table) fpAt(i int) uint64 {
	return binary.LittleEndian.Uint64(t.recs[i*recordSize:])
}

// Lookup returns the record under the primary fingerprint whose
// secondary verification hash also matches. A fingerprint present with
// the wrong verification hash is a detected collision and reported as
// a miss — the caller falls back to live planning. Zero allocation.
func (t *Table) Lookup(fp, verify uint64) (Record, bool) {
	b := fp >> (64 - bucketBits)
	lo, hi := int(t.bucket[b]), int(t.bucket[b+1])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		v := t.fpAt(mid)
		switch {
		case v < fp:
			lo = mid + 1
		case v > fp:
			hi = mid
		default:
			r := parseRecord(t.recs[mid*recordSize:])
			if r.Verify != verify {
				return Record{}, false
			}
			return r, true
		}
	}
	return Record{}, false
}

// Verify round-trips every record through Lookup, proving the serve
// path bit-identical to the recorded actions (sortedness and the
// prefix index included). It is what `policyc verify` and the CI smoke
// run after a compile.
func (t *Table) Verify() error {
	for i := 0; i < t.n; i++ {
		r := t.Record(i)
		got, ok := t.Lookup(r.FP, r.Verify)
		if !ok {
			return fmt.Errorf("policy: record %d (fp %016x) not found by Lookup", i, r.FP)
		}
		if got != r {
			return fmt.Errorf("policy: record %d round-trip mismatch: stored %+v, served %+v", i, r, got)
		}
		if _, ok := t.Lookup(r.FP, r.Verify^1); ok {
			return fmt.Errorf("policy: record %d served despite verify-hash mismatch", i)
		}
	}
	return nil
}

// ReadFile reads any policy file (table or sidecar) fully into memory,
// returning its header and records. Sidecar record counts are derived
// from the file size; a trailing partial record (a crashed writer) is
// ignored. Used by merge and inspection, not the serving path.
func ReadFile(path string) (Header, []Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Header{}, nil, err
	}
	if len(data) < headerSize {
		return Header{}, nil, fmt.Errorf("policy: %s shorter than header", path)
	}
	magic, h, sum := parseHeader(data)
	body := data[headerSize:]
	var n int
	switch magic {
	case magicTable:
		n = int(h.Records)
		if len(body) != n*recordSize {
			return Header{}, nil, fmt.Errorf("policy: %s is %d bytes, header promises %d records", path, len(data), n)
		}
		if got := checksumRegion(body); got != sum {
			return Header{}, nil, fmt.Errorf("policy: %s record checksum mismatch", path)
		}
	case magicSidecar:
		n = len(body) / recordSize
	default:
		return Header{}, nil, fmt.Errorf("policy: %s has bad magic %q", path, magic[:])
	}
	if h.Version != Version {
		return Header{}, nil, fmt.Errorf("policy: %s version %d, this build reads %d", path, h.Version, Version)
	}
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = parseRecord(body[i*recordSize:])
	}
	return h, recs, nil
}

// Merge combines a table with its sidecar miss logs (or several
// tables) into one record set: files must be mutually compatible
// (version, quanta, prior hash); earlier paths take precedence under a
// duplicated fingerprint, so pass the authoritative table first. The
// result is ready for WriteTable. Records whose fingerprint collides
// with a kept record under a different verification hash are dropped
// (they cannot share a table slot; the loser keeps falling back to
// live planning, which is the safe behaviour).
func Merge(paths ...string) (Header, []Record, error) {
	if len(paths) == 0 {
		return Header{}, nil, fmt.Errorf("policy: nothing to merge")
	}
	var out []Record
	seen := make(map[uint64]int) // fp -> index in out
	var base Header
	for i, p := range paths {
		h, recs, err := ReadFile(p)
		if err != nil {
			return Header{}, nil, err
		}
		if i == 0 {
			base = h
		} else if err := base.compatible(h); err != nil {
			return Header{}, nil, fmt.Errorf("%s vs %s: %w", paths[0], p, err)
		}
		for _, r := range recs {
			if _, dup := seen[r.FP]; dup {
				continue
			}
			seen[r.FP] = len(out)
			out = append(out, r)
		}
	}
	sortRecords(out)
	base.Records = uint64(len(out))
	return base, out, nil
}
