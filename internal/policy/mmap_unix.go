//go:build unix

package policy

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps the whole file read-only. The mapping outlives the file
// descriptor (closed before returning); the returned release function
// unmaps. Empty files map to an empty slice without a syscall (mmap of
// length 0 is an error on Linux).
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("policy: %s too large to map (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, fmt.Errorf("policy: mmap %s: %w", path, err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
