// Package policy promotes the planner's warm PolicyCache to an
// offline-compiled, persistent control map — §3.3 taken literally: "for
// a particular model and distribution of possible states, there will be
// a policy that can be computed in advance".
//
// The package has three halves:
//
//   - A compiler (Compile) that sweeps the reachable belief space by
//     replaying fleet runs (internal/fleet is a ready-made generator of
//     realistic belief trajectories) and records every quantized belief
//     fingerprint → {action, delta, gain, verify-hash} pair the runs
//     compute.
//
//   - A versioned, mmap-able flat table (WriteTable / Open): a
//     fixed-width header carrying the model identity (a hash of the
//     resolved prior), the fingerprint quantum settings, and build
//     provenance, followed by fixed-width records sorted by
//     fingerprint. Lookup is a bucket-narrowed binary search —
//     O(log n) worst case, O(1) in expectation — with zero allocation,
//     so a multi-million-entry table serves decisions at memory speed.
//
//   - A serving side (Server, implementing planner.CompiledPolicy)
//     that loads the table read-only, answers Guard rung-0 probes, and
//     appends the fingerprints it could not serve — together with the
//     live decision that covered for them — to a sidecar miss log
//     (MissLog). Merging the table with its sidecars (Merge) seeds the
//     next compile, closing the loop: every production miss makes the
//     next table bigger.
//
// Safety rules, enforced rather than assumed:
//
//   - Every record carries a secondary verification hash computed over
//     the same bytes as the primary fingerprint by an independent
//     hash; a lookup is served only when both match, so a 64-bit
//     fingerprint collision degrades to a miss (live planning), never
//     a wrong action.
//   - The header's PriorHash binds a table to the resolved model prior
//     and quantum settings it was compiled under; Header.CheckPrior
//     refuses to serve a table against a model it was not compiled
//     for, and Merge refuses to combine incompatible files.
//   - The whole record region is checksummed; Open refuses a corrupt
//     or truncated file.
package policy

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"time"

	"modelcc/internal/model"
)

// Version is the table format version this package reads and writes.
const Version = 1

// Magic values distinguishing the two file kinds sharing the header
// layout.
var (
	magicTable   = [8]byte{'M', 'C', 'P', 'O', 'L', 'T', 'B', '1'}
	magicSidecar = [8]byte{'M', 'C', 'P', 'O', 'L', 'S', 'C', '1'}
)

const (
	headerSize = 104
	recordSize = 40
	noteSize   = 32

	flagSendNow = 1 << 0
)

// Header identifies and versions a compiled table (or sidecar miss
// log): which model and quanta the fingerprints were computed under,
// and where the table came from.
type Header struct {
	// Version is the format version (see Version).
	Version uint32
	// FleetN is the fleet size of the compile workload (provenance).
	FleetN uint32
	// Records is the record count (0 in sidecar headers; the reader
	// derives the count from the file size).
	Records uint64
	// TimeQuantum and WeightQuantum are the fingerprint quanta every
	// record's key was computed with; probes must use the same.
	TimeQuantum   time.Duration
	WeightQuantum float64
	// PriorHash binds the table to the resolved model prior (and the
	// quanta) it was compiled under; see HashPrior.
	PriorHash uint64
	// BuildSeed is the first replay seed of the compile (provenance).
	BuildSeed int64
	// Created is the build time in Unix seconds (provenance; informational
	// only — compatibility is decided by Version and PriorHash).
	Created int64
	// Note is a free-form provenance string (truncated to 31 bytes).
	Note string
}

// CheckPrior reports whether a belief fingerprinted under the given
// resolved prior and this header's quanta may be served from this
// table.
func (h Header) CheckPrior(pr model.Prior) error {
	if got := HashPrior(pr, h.TimeQuantum, h.WeightQuantum); got != h.PriorHash {
		return fmt.Errorf("policy: table compiled for prior %016x, serving prior is %016x (model or quanta mismatch)", h.PriorHash, got)
	}
	return nil
}

// compatible reports whether two headers' records may be merged.
func (h Header) compatible(o Header) error {
	switch {
	case h.Version != o.Version:
		return fmt.Errorf("policy: version %d vs %d", h.Version, o.Version)
	case h.TimeQuantum != o.TimeQuantum:
		return fmt.Errorf("policy: time quantum %v vs %v", h.TimeQuantum, o.TimeQuantum)
	case h.WeightQuantum != o.WeightQuantum:
		return fmt.Errorf("policy: weight quantum %g vs %g", h.WeightQuantum, o.WeightQuantum)
	case h.PriorHash != o.PriorHash:
		return fmt.Errorf("policy: prior hash %016x vs %016x", h.PriorHash, o.PriorHash)
	}
	return nil
}

// Record is one compiled fingerprint → action pair. Delta is
// WakeAt − now at the decision instant (rebased onto the probe's now at
// serve time), mirroring planner.Entry.
type Record struct {
	FP, Verify uint64
	SendNow    bool
	Delta      time.Duration
	Gain       float64
}

// HashPrior hashes a resolved model prior together with the
// fingerprint quanta: the identity a compiled table records so it is
// never served against a model it was not compiled for. Any field that
// changes the enumerated hypothesis set (or the fingerprint key
// language) must be folded in here.
func HashPrior(pr model.Prior, tq time.Duration, wq float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	putF := func(f float64) { put(math.Float64bits(f)) }
	putR := func(r model.PriorRange) {
		putF(r.Lo)
		putF(r.Hi)
		put(uint64(int64(r.N)))
	}
	putR(pr.LinkRate)
	putR(pr.CrossFrac)
	putR(pr.LossProb)
	putR(pr.BufferCapBits)
	putR(pr.ClockSkew)
	put(uint64(int64(pr.FullnessSteps)))
	put(uint64(int64(pr.MeanSwitch)))
	if pr.PingerMaybeOff {
		put(1)
	} else {
		put(0)
	}
	put(uint64(pr.CrossPktBits))
	put(uint64(int64(pr.SwitchTick)))
	put(uint64(int64(tq)))
	putF(wq)
	return h.Sum64()
}

// sortRecords orders records by fingerprint (then verify, for a stable
// order under forced-collision tests).
func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].FP != recs[j].FP {
			return recs[i].FP < recs[j].FP
		}
		return recs[i].Verify < recs[j].Verify
	})
}
