package elements

import (
	"modelcc/internal/packet"
	"modelcc/internal/sim"
	"time"
)

// Delay is the paper's DELAY element: every packet is forwarded after a
// fixed delay. Packets never reorder through a Delay because the delay is
// constant, which is also why it can ride a single sim.DelayLine instead
// of scheduling one event per packet.
type Delay struct {
	line *sim.DelayLine[packet.Packet]
	next Node
}

// NewDelay returns a Delay of d feeding next.
func NewDelay(loop *sim.Loop, d time.Duration, next Node) *Delay {
	e := &Delay{next: next}
	e.line = sim.NewDelayLine(loop, d, func(p packet.Packet) {
		if e.next != nil {
			e.next.Receive(p)
		}
	})
	return e
}

// SetNext implements Wirer.
func (e *Delay) SetNext(n Node) { e.next = n }

// Receive implements Node.
func (e *Delay) Receive(p packet.Packet) {
	e.line.Push(p)
}

// Loss is the paper's LOSS element: each packet is independently dropped
// with probability p and forwarded with probability 1-p.
type Loss struct {
	loop *sim.Loop
	p    float64
	next Node

	// Dropped and Passed count outcomes by flow.
	Dropped map[packet.FlowID]int
	Passed  map[packet.FlowID]int
}

// NewLoss returns a Loss element dropping with probability p in [0,1].
func NewLoss(loop *sim.Loop, p float64, next Node) *Loss {
	if p < 0 || p > 1 {
		// Invariant: construction-time misuse by the caller, not a
		// network condition — panic audit (chaos PR) keeps it loud.
		panic("elements: loss probability outside [0,1]")
	}
	return &Loss{
		loop:    loop,
		p:       p,
		next:    next,
		Dropped: make(map[packet.FlowID]int),
		Passed:  make(map[packet.FlowID]int),
	}
}

// SetNext implements Wirer.
func (e *Loss) SetNext(n Node) { e.next = n }

// Receive implements Node.
func (e *Loss) Receive(p packet.Packet) {
	if e.loop.Rand().Float64() < e.p {
		e.Dropped[p.Flow]++
		return
	}
	e.Passed[p.Flow]++
	if e.next != nil {
		e.next.Receive(p)
	}
}

// Jitter is the paper's JITTER element: with probability prob a packet is
// delayed by extra; otherwise it is forwarded immediately. Jittered
// packets can therefore reorder past un-jittered ones, exactly the
// phenomenon the element exists to model.
type Jitter struct {
	loop  *sim.Loop
	prob  float64
	extra time.Duration
	next  Node

	// Jittered counts packets that received the extra delay.
	Jittered int
}

// NewJitter returns a Jitter element applying extra with probability prob.
func NewJitter(loop *sim.Loop, prob float64, extra time.Duration, next Node) *Jitter {
	if prob < 0 || prob > 1 {
		// Invariant: construction-time misuse (see NewLoss).
		panic("elements: jitter probability outside [0,1]")
	}
	return &Jitter{loop: loop, prob: prob, extra: extra, next: next}
}

// SetNext implements Wirer.
func (e *Jitter) SetNext(n Node) { e.next = n }

// Receive implements Node.
func (e *Jitter) Receive(p packet.Packet) {
	if e.loop.Rand().Float64() < e.prob {
		e.Jittered++
		e.loop.After(e.extra, func() {
			if e.next != nil {
				e.next.Receive(p)
			}
		})
		return
	}
	if e.next != nil {
		e.next.Receive(p)
	}
}
