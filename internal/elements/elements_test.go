package elements

import (
	"testing"
	"time"

	"modelcc/internal/packet"
	"modelcc/internal/sim"
)

// paper parameters used throughout: 12 kbit/s link, 1500-byte packets.
const (
	linkRate = 12000
	pktBits  = packet.DefaultSizeBits
)

func send(n Node, flow packet.FlowID, seq int64, at time.Duration) {
	n.Receive(packet.New(flow, seq, at))
}

func TestBottleneckServesAtLinkRate(t *testing.T) {
	loop := sim.New(1)
	col := NewCollector(loop)
	buf, _ := NewBottleneck(loop, 10*pktBits, linkRate, col)

	// Enqueue 5 packets at t=0; they should be delivered at 1s, 2s, ... 5s.
	for i := int64(0); i < 5; i++ {
		send(buf, packet.FlowSelf, i, 0)
	}
	loop.RunAll()

	if len(col.Arrivals) != 5 {
		t.Fatalf("delivered %d packets, want 5", len(col.Arrivals))
	}
	for i, a := range col.Arrivals {
		want := time.Duration(i+1) * time.Second
		if a.At != want {
			t.Errorf("packet %d delivered at %v, want %v", i, a.At, want)
		}
		if a.Packet.Seq != int64(i) {
			t.Errorf("packet %d out of order: seq %d", i, a.Packet.Seq)
		}
	}
}

func TestBufferTailDrop(t *testing.T) {
	loop := sim.New(1)
	col := NewCollector(loop)
	// Capacity for exactly 8 packets: the paper's 96,000-bit buffer.
	buf, _ := NewBottleneck(loop, 96000, linkRate, col)

	for i := int64(0); i < 12; i++ {
		send(buf, packet.FlowSelf, i, 0)
	}
	// At t=0 one packet immediately enters service, so the queue holds 8
	// more; arrivals 9..11 are tail-dropped.
	if got := buf.Drops[packet.FlowSelf]; got != 3 {
		t.Fatalf("drops = %d, want 3", got)
	}
	loop.RunAll()
	if len(col.Arrivals) != 9 {
		t.Fatalf("delivered %d, want 9", len(col.Arrivals))
	}
	// Tail drop preserves the earliest packets.
	for i, a := range col.Arrivals {
		if a.Packet.Seq != int64(i) {
			t.Errorf("arrival %d has seq %d, want %d", i, a.Packet.Seq, i)
		}
	}
}

func TestBufferPrefill(t *testing.T) {
	loop := sim.New(1)
	buf, _ := NewBottleneck(loop, 96000, linkRate, Discard)
	buf.Prefill(96000, packet.FlowCross)
	if buf.UsedBits() != 96000 {
		t.Fatalf("prefill used = %d, want 96000", buf.UsedBits())
	}
	if buf.Len() != 8 {
		t.Fatalf("prefill len = %d, want 8", buf.Len())
	}
	// Prefill never exceeds capacity even for awkward targets.
	buf2, _ := NewBottleneck(loop, 96000, linkRate, Discard)
	buf2.Prefill(95000, packet.FlowCross)
	if buf2.UsedBits() > 96000 {
		t.Fatalf("prefill overfilled: %d bits", buf2.UsedBits())
	}
}

func TestThroughputDirectReceive(t *testing.T) {
	loop := sim.New(1)
	col := NewCollector(loop)
	th := NewThroughput(loop, linkRate, col)
	send(th, packet.FlowSelf, 0, 0)
	loop.RunAll()
	if len(col.Arrivals) != 1 || col.Arrivals[0].At != time.Second {
		t.Fatalf("direct throughput: %+v", col.Arrivals)
	}
}

func TestDelay(t *testing.T) {
	loop := sim.New(1)
	col := NewCollector(loop)
	d := NewDelay(loop, 250*time.Millisecond, col)
	loop.Schedule(time.Second, func() { send(d, packet.FlowSelf, 0, loop.Now()) })
	loop.RunAll()
	if len(col.Arrivals) != 1 || col.Arrivals[0].At != 1250*time.Millisecond {
		t.Fatalf("delay: %+v", col.Arrivals)
	}
}

func TestLossRate(t *testing.T) {
	loop := sim.New(7)
	cnt := NewCounter()
	loss := NewLoss(loop, 0.2, cnt)
	const n = 20000
	for i := int64(0); i < n; i++ {
		send(loss, packet.FlowSelf, i, 0)
	}
	got := float64(loss.Dropped[packet.FlowSelf]) / n
	if got < 0.18 || got > 0.22 {
		t.Errorf("empirical loss rate %.4f, want ~0.20", got)
	}
	if cnt.N[packet.FlowSelf]+loss.Dropped[packet.FlowSelf] != n {
		t.Error("passed + dropped != sent")
	}
}

func TestLossExtremes(t *testing.T) {
	loop := sim.New(1)
	cnt := NewCounter()
	never := NewLoss(loop, 0, cnt)
	always := NewLoss(loop, 1, cnt)
	for i := int64(0); i < 100; i++ {
		send(never, packet.FlowSelf, i, 0)
		send(always, packet.FlowCross, i, 0)
	}
	if cnt.N[packet.FlowSelf] != 100 {
		t.Error("p=0 lost packets")
	}
	if cnt.N[packet.FlowCross] != 0 {
		t.Error("p=1 passed packets")
	}
}

func TestLossPanicsOnBadProbability(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLoss(1.5) did not panic")
		}
	}()
	NewLoss(sim.New(1), 1.5, Discard)
}

func TestJitter(t *testing.T) {
	loop := sim.New(3)
	col := NewCollector(loop)
	j := NewJitter(loop, 0.5, time.Second, col)
	const n = 2000
	for i := int64(0); i < n; i++ {
		send(j, packet.FlowSelf, i, 0)
	}
	loop.RunAll()
	if len(col.Arrivals) != n {
		t.Fatalf("jitter dropped packets: %d/%d", len(col.Arrivals), n)
	}
	frac := float64(j.Jittered) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("jittered fraction %.3f, want ~0.5", frac)
	}
}

func TestIntermittentGates(t *testing.T) {
	loop := sim.New(5)
	cnt := NewCounter()
	g := NewIntermittent(loop, 10*time.Second, cnt)
	// Feed one packet per 100ms for 200 virtual seconds; roughly half
	// should pass (gate alternates between connected/disconnected with
	// equal mean holding times).
	n := 0
	var tick func()
	tick = func() {
		if loop.Now() >= 200*time.Second {
			return
		}
		send(g, packet.FlowSelf, int64(n), loop.Now())
		n++
		loop.After(100*time.Millisecond, tick)
	}
	loop.After(0, tick)
	loop.Run(250 * time.Second)
	frac := float64(cnt.N[packet.FlowSelf]) / float64(n)
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("intermittent passed fraction %.3f, want ~0.5", frac)
	}
	if g.Gated+cnt.N[packet.FlowSelf] != n {
		t.Error("gated + passed != sent")
	}
}

func TestIntermittentNeverSwitchesWithZeroMean(t *testing.T) {
	loop := sim.New(1)
	cnt := NewCounter()
	g := NewIntermittent(loop, 0, cnt)
	for i := int64(0); i < 10; i++ {
		send(g, packet.FlowSelf, i, 0)
	}
	loop.RunAll()
	if cnt.N[packet.FlowSelf] != 10 {
		t.Error("zero-mean intermittent should stay connected forever")
	}
}

func TestSquareWaveDeterministic(t *testing.T) {
	loop := sim.New(1)
	cnt := NewCounter()
	g := NewSquareWave(loop, 100*time.Second, cnt)

	times := []time.Duration{
		50 * time.Second,  // connected (0-100s)
		150 * time.Second, // disconnected (100-200s)
		250 * time.Second, // connected (200-300s)
	}
	for i, at := range times {
		i := int64(i)
		at := at
		loop.Schedule(at, func() { send(g, packet.FlowSelf, i, at) })
	}
	loop.Run(300 * time.Second)
	if cnt.N[packet.FlowSelf] != 2 {
		t.Fatalf("squarewave passed %d, want 2", cnt.N[packet.FlowSelf])
	}
	if g.Gated != 1 {
		t.Fatalf("squarewave gated %d, want 1", g.Gated)
	}
}

func TestDiverter(t *testing.T) {
	a, b := NewCounter(), NewCounter()
	d := NewDiverter(packet.FlowCross, a, b)
	send(d, packet.FlowCross, 0, 0)
	send(d, packet.FlowSelf, 0, 0)
	send(d, packet.FlowOther, 0, 0)
	if a.N[packet.FlowCross] != 1 || len(a.N) != 1 {
		t.Error("diverter mis-routed matched flow")
	}
	if b.N[packet.FlowSelf] != 1 || b.N[packet.FlowOther] != 1 {
		t.Error("diverter mis-routed rest")
	}
}

func TestEitherSwitches(t *testing.T) {
	loop := sim.New(11)
	a, b := NewCounter(), NewCounter()
	e := NewEither(loop, 5*time.Second, a, b)
	n := 0
	var tick func()
	tick = func() {
		if loop.Now() >= 200*time.Second {
			return
		}
		send(e, packet.FlowSelf, int64(n), loop.Now())
		n++
		loop.After(100*time.Millisecond, tick)
	}
	loop.After(0, tick)
	loop.Run(250 * time.Second)
	if a.N[packet.FlowSelf] == 0 || b.N[packet.FlowSelf] == 0 {
		t.Errorf("either never switched: a=%d b=%d", a.N[packet.FlowSelf], b.N[packet.FlowSelf])
	}
	if a.N[packet.FlowSelf]+b.N[packet.FlowSelf] != n {
		t.Error("either lost packets")
	}
}

func TestPingerIsochronous(t *testing.T) {
	loop := sim.New(1)
	col := NewCollector(loop)
	// 0.7c with 1500-byte packets: one packet every 12000/8400 s.
	p := NewPinger(loop, 8400, packet.DefaultSizeBytes, packet.FlowCross, col)
	p.Start()
	p.Start() // idempotent
	loop.Run(10 * time.Second)
	p.Stop()
	loop.RunAll()

	want := p.Interval()
	if len(col.Arrivals) < 6 {
		t.Fatalf("pinger sent %d packets in 10s, want >= 6", len(col.Arrivals))
	}
	for i := 1; i < len(col.Arrivals); i++ {
		gap := col.Arrivals[i].At - col.Arrivals[i-1].At
		if gap != want {
			t.Fatalf("pinger gap %v, want %v (isochronous)", gap, want)
		}
	}
	// Sequence numbers must be consecutive.
	for i, a := range col.Arrivals {
		if a.Packet.Seq != int64(i) {
			t.Fatalf("pinger seq %d at index %d", a.Packet.Seq, i)
		}
	}
}

func TestChainWiring(t *testing.T) {
	loop := sim.New(1)
	col := NewCollector(loop)
	head := Chain(col,
		NewDelay(loop, time.Second, nil),
		NewLoss(loop, 0, nil),
		NewDelay(loop, time.Second, nil),
	)
	send(head, packet.FlowSelf, 0, 0)
	loop.RunAll()
	if len(col.Arrivals) != 1 || col.Arrivals[0].At != 2*time.Second {
		t.Fatalf("chain: %+v", col.Arrivals)
	}
	// Chain with no elements returns the tail.
	if Chain(col) != Node(col) {
		t.Error("empty Chain should return tail")
	}
}

func TestTee(t *testing.T) {
	a, b := NewCounter(), NewCounter()
	tee := NewTee(a, b, nil)
	send(tee, packet.FlowSelf, 0, 0)
	if a.N[packet.FlowSelf] != 1 || b.N[packet.FlowSelf] != 1 {
		t.Error("tee did not duplicate")
	}
}

func TestReceiverAcks(t *testing.T) {
	loop := sim.New(1)
	var acks []packet.Ack
	r := NewReceiver(loop, func(a packet.Ack) { acks = append(acks, a) })
	loop.Schedule(3*time.Second, func() {
		r.Receive(packet.New(packet.FlowSelf, 7, time.Second))
	})
	loop.RunAll()
	if len(acks) != 1 {
		t.Fatalf("acks = %d, want 1", len(acks))
	}
	a := acks[0]
	if a.Seq != 7 || a.ReceivedAt != 3*time.Second || a.SentAt != time.Second {
		t.Errorf("ack = %+v", a)
	}
	if r.ReceivedBits[packet.FlowSelf] != pktBits {
		t.Errorf("received bits = %d", r.ReceivedBits[packet.FlowSelf])
	}
}

func TestCollectorByFlow(t *testing.T) {
	loop := sim.New(1)
	c := NewCollector(loop)
	send(c, packet.FlowSelf, 0, 0)
	send(c, packet.FlowCross, 0, 0)
	send(c, packet.FlowSelf, 1, 0)
	if got := len(c.ByFlow(packet.FlowSelf)); got != 2 {
		t.Errorf("ByFlow(self) = %d, want 2", got)
	}
	if got := len(c.ByFlow(packet.FlowOther)); got != 0 {
		t.Errorf("ByFlow(other) = %d, want 0", got)
	}
}
