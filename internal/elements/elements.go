// Package elements implements the paper's network-element language (§3.1):
// idealized versions of the data structures and phenomena that occur in
// real networks, composable into arbitrary topologies.
//
//	BUFFER       tail-drop queue (capacity, fullness)        -> Buffer
//	THROUGHPUT   rate-limited link                           -> Throughput
//	DELAY        fixed delay                                 -> Delay
//	LOSS         i.i.d. stochastic loss                      -> Loss
//	JITTER       probabilistic extra delay                   -> Jitter
//	PINGER       isochronous cross-traffic source            -> Pinger
//	INTERMITTENT memoryless connect/disconnect gate          -> Intermittent
//	SQUAREWAVE   deterministic periodic gate                 -> SquareWave
//	SERIES       chain of elements                           -> Series
//	DIVERTER     route one flow one way, the rest another    -> Diverter
//	EITHER       send to one of two elements, switching      -> Either
//	RECEIVER     packet sink that emits acknowledgments      -> Receiver
//
// Beyond the paper's list, the package provides the §3.5 future-work
// elements: a RED active-queue-management buffer and a deficit round-robin
// fair-queue scheduler, plus test instrumentation (Collector, Counter,
// Tee).
//
// Elements are glued together in a push style: each element implements
// Node and forwards packets to its downstream Node. All timing runs on a
// shared sim.Loop, so whole topologies are deterministic given the loop's
// seed.
package elements

import "modelcc/internal/packet"

// Node is anything a packet can be delivered to. All elements implement
// Node; sinks such as Receiver and Collector terminate chains.
type Node interface {
	// Receive accepts a packet at the current virtual time.
	Receive(p packet.Packet)
}

// NodeFunc adapts a function to the Node interface.
type NodeFunc func(packet.Packet)

// Receive implements Node.
func (f NodeFunc) Receive(p packet.Packet) { f(p) }

// Discard is a Node that drops everything delivered to it.
var Discard Node = NodeFunc(func(packet.Packet) {})

// Series wires a chain of elements so that each one's output feeds the
// next, returning the head. The last element of the chain must already be
// wired (or be a sink); Series only exists to make topology construction
// read like the paper's SERIES combinator.
//
// Because this package glues elements by construction-time "next"
// pointers, Series is implemented over the Wirer interface.
type Wirer interface {
	Node
	// SetNext points the element's output at n.
	SetNext(n Node)
}

// Chain wires elems[i] -> elems[i+1] -> ... -> tail and returns the head
// of the chain. With no elems it returns tail.
func Chain(tail Node, elems ...Wirer) Node {
	next := tail
	for i := len(elems) - 1; i >= 0; i-- {
		elems[i].SetNext(next)
		next = elems[i]
	}
	return next
}
