package elements

import (
	"modelcc/internal/packet"
	"modelcc/internal/sim"
	"time"
)

// Receiver is the paper's RECEIVER element: it accumulates packets and
// notifies its owner of the received time and sequence number of each one
// (§3.4). In the simulator, notification is a synchronous callback — the
// paper models the return path as lossless and instant; the UDP transport
// in internal/transport carries the same notification over a real socket.
type Receiver struct {
	loop *sim.Loop
	// OnAck is invoked for every received packet.
	OnAck func(packet.Ack)

	// Received counts packets by flow.
	Received map[packet.FlowID]int
	// ReceivedBits counts payload bits by flow.
	ReceivedBits map[packet.FlowID]int64
}

// NewReceiver returns a Receiver that invokes onAck for each arrival.
func NewReceiver(loop *sim.Loop, onAck func(packet.Ack)) *Receiver {
	return &Receiver{
		loop:         loop,
		OnAck:        onAck,
		Received:     make(map[packet.FlowID]int),
		ReceivedBits: make(map[packet.FlowID]int64),
	}
}

// Receive implements Node.
func (r *Receiver) Receive(p packet.Packet) {
	r.Received[p.Flow]++
	r.ReceivedBits[p.Flow] += p.Bits()
	if r.OnAck != nil {
		r.OnAck(packet.Ack{
			Flow:       p.Flow,
			Seq:        p.Seq,
			ReceivedAt: r.loop.Now(),
			SentAt:     p.SentAt,
		})
	}
}

// Arrival records one packet delivery for offline analysis.
type Arrival struct {
	Packet packet.Packet
	At     time.Duration
}

// Collector is a sink that records every arrival with its timestamp.
// Tests and experiment harnesses use it to reconstruct sequence-vs-time
// series.
type Collector struct {
	loop *sim.Loop
	// Arrivals in delivery order.
	Arrivals []Arrival
}

// NewCollector returns an empty Collector.
func NewCollector(loop *sim.Loop) *Collector {
	return &Collector{loop: loop}
}

// Receive implements Node.
func (c *Collector) Receive(p packet.Packet) {
	c.Arrivals = append(c.Arrivals, Arrival{Packet: p, At: c.loop.Now()})
}

// ByFlow returns the subset of arrivals belonging to flow, in order.
func (c *Collector) ByFlow(flow packet.FlowID) []Arrival {
	var out []Arrival
	for _, a := range c.Arrivals {
		if a.Packet.Flow == flow {
			out = append(out, a)
		}
	}
	return out
}

// Counter is a sink that counts arrivals by flow.
type Counter struct {
	// N counts packets by flow.
	N map[packet.FlowID]int
	// Bits counts payload bits by flow.
	Bits map[packet.FlowID]int64
}

// NewCounter returns an empty Counter.
func NewCounter() *Counter {
	return &Counter{N: make(map[packet.FlowID]int), Bits: make(map[packet.FlowID]int64)}
}

// Receive implements Node.
func (c *Counter) Receive(p packet.Packet) {
	c.N[p.Flow]++
	c.Bits[p.Flow] += p.Bits()
}

// Tee duplicates every packet to each of its outputs, in order. It is
// instrumentation (e.g. counting packets mid-chain), not a paper element.
type Tee struct {
	outs []Node
}

// NewTee returns a Tee feeding each out.
func NewTee(outs ...Node) *Tee { return &Tee{outs: outs} }

// Receive implements Node.
func (t *Tee) Receive(p packet.Packet) {
	for _, n := range t.outs {
		if n != nil {
			n.Receive(p)
		}
	}
}
