package elements

import (
	"testing"
	"time"

	"modelcc/internal/packet"
	"modelcc/internal/sim"
)

func TestREDBelowMinBehavesLikeFIFO(t *testing.T) {
	loop := sim.New(1)
	col := NewCollector(loop)
	red := NewREDBuffer(loop, 96000, 48000, 84000, 0.1)
	th := NewThroughput(loop, linkRate, col)
	red.AttachDrain(th)

	// Two packets: well below min threshold, nothing drops.
	send(red, packet.FlowSelf, 0, 0)
	send(red, packet.FlowSelf, 1, 0)
	loop.RunAll()
	if len(col.Arrivals) != 2 {
		t.Fatalf("delivered %d, want 2", len(col.Arrivals))
	}
	if red.EarlyDrops != 0 {
		t.Errorf("early drops below min threshold: %d", red.EarlyDrops)
	}
}

func TestREDDropsEarlyUnderSustainedLoad(t *testing.T) {
	loop := sim.New(9)
	red := NewREDBuffer(loop, 240000, 24000, 120000, 0.5)
	th := NewThroughput(loop, linkRate, Discard)
	red.AttachDrain(th)

	// Offered load 4x the link rate for 300 virtual seconds.
	n := 0
	var tick func()
	tick = func() {
		if loop.Now() >= 300*time.Second {
			return
		}
		send(red, packet.FlowSelf, int64(n), loop.Now())
		n++
		loop.After(250*time.Millisecond, tick)
	}
	loop.After(0, tick)
	loop.RunAll()

	if red.EarlyDrops == 0 {
		t.Error("RED never early-dropped under 4x overload")
	}
	// RED should keep the average queue between the thresholds rather
	// than pinning it at physical capacity the way tail drop does.
	if red.AvgBits() >= float64(240000) {
		t.Errorf("avg queue pinned at capacity: %v", red.AvgBits())
	}
}

func TestREDOverflowStillDrops(t *testing.T) {
	loop := sim.New(1)
	red := NewREDBuffer(loop, 3*pktBits, pktBits, 2*pktBits, 0)
	th := NewThroughput(loop, linkRate, Discard)
	red.AttachDrain(th)
	for i := int64(0); i < 10; i++ {
		send(red, packet.FlowSelf, i, 0)
	}
	if red.Drops[packet.FlowSelf] == 0 {
		t.Error("RED buffer never overflow-dropped at 10x capacity")
	}
}

func TestREDThresholdValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad RED thresholds did not panic")
		}
	}()
	NewREDBuffer(sim.New(1), 100, 90, 80, 0.1)
}

func TestFairQueueIsolatesFlows(t *testing.T) {
	loop := sim.New(1)
	col := NewCollector(loop)
	fq := NewFairQueue(8 * pktBits)
	th := NewThroughput(loop, linkRate, col)
	fq.AttachDrain(th)

	// A flooding flow and a polite flow arrive together; round-robin
	// service must interleave them even though the flooder enqueued
	// first.
	for i := int64(0); i < 20; i++ {
		send(fq, packet.FlowSelf, i, 0)
	}
	for i := int64(0); i < 3; i++ {
		send(fq, packet.FlowCross, i, 0)
	}
	loop.RunAll()

	cross := col.ByFlow(packet.FlowCross)
	if len(cross) != 3 {
		t.Fatalf("polite flow delivered %d/3 packets", len(cross))
	}
	// The polite flow's packets must not all be serviced last: its first
	// delivery should land within the first few services.
	first := cross[0].At
	if first > 4*time.Second {
		t.Errorf("polite flow first service at %v; starved by flooder", first)
	}
	// The flooder must have lost packets to its fair-share cap.
	if fq.Drops[packet.FlowSelf] == 0 {
		t.Error("flooding flow never dropped despite fair-share cap")
	}
}

func TestFairQueueSingleFlowFIFO(t *testing.T) {
	loop := sim.New(1)
	col := NewCollector(loop)
	fq := NewFairQueue(8 * pktBits)
	th := NewThroughput(loop, linkRate, col)
	fq.AttachDrain(th)
	for i := int64(0); i < 4; i++ {
		send(fq, packet.FlowSelf, i, 0)
	}
	loop.RunAll()
	for i, a := range col.Arrivals {
		if a.Packet.Seq != int64(i) {
			t.Fatalf("single-flow fair queue reordered: %v", col.Arrivals)
		}
	}
}

func TestFairQueueEmptyDequeue(t *testing.T) {
	fq := NewFairQueue(8 * pktBits)
	if _, ok := fq.Dequeue(); ok {
		t.Error("empty fair queue dequeued something")
	}
	// Exercise the exhausted-order path: enqueue then drain fully.
	fq.Receive(packet.New(packet.FlowSelf, 0, 0))
	if _, ok := fq.Dequeue(); !ok {
		t.Error("fair queue lost its only packet")
	}
	if _, ok := fq.Dequeue(); ok {
		t.Error("fair queue invented a packet")
	}
	if fq.UsedBits() != 0 {
		t.Errorf("UsedBits = %d after drain", fq.UsedBits())
	}
}
