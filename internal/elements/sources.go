package elements

import (
	"modelcc/internal/packet"
	"modelcc/internal/sim"
	"modelcc/internal/units"
	"time"
)

// Pinger is the paper's PINGER element: an isochronous sender of cross
// traffic at a particular rate. It emits fixed-size packets of the given
// flow at exact intervals of size/rate, starting one interval after Start.
type Pinger struct {
	loop      *sim.Loop
	rate      units.BitRate
	sizeBytes int
	flow      packet.FlowID
	next      Node
	seq       int64
	running   bool

	// Sent counts emitted packets.
	Sent int
}

// NewPinger returns a stopped Pinger; call Start to begin emission.
func NewPinger(loop *sim.Loop, rate units.BitRate, sizeBytes int, flow packet.FlowID, next Node) *Pinger {
	if sizeBytes <= 0 {
		// Invariant: construction-time misuse, unreachable from network
		// input.
		panic("elements: pinger packet size must be positive")
	}
	return &Pinger{loop: loop, rate: rate, sizeBytes: sizeBytes, flow: flow, next: next}
}

// SetNext implements Wirer.
func (e *Pinger) SetNext(n Node) { e.next = n }

// Interval reports the emission interval, size/rate.
func (e *Pinger) Interval() time.Duration {
	return units.TransmitTime(units.BytesToBits(e.sizeBytes), e.rate)
}

// Start begins isochronous emission; the first packet is sent one
// interval from now. Start is idempotent.
func (e *Pinger) Start() {
	if e.running {
		return
	}
	e.running = true
	e.arm()
}

// Stop halts emission after any already-scheduled packet.
func (e *Pinger) Stop() { e.running = false }

func (e *Pinger) arm() {
	e.loop.After(e.Interval(), func() {
		if !e.running {
			return
		}
		p := packet.Packet{
			Flow:      e.flow,
			Seq:       e.seq,
			SizeBytes: e.sizeBytes,
			SentAt:    e.loop.Now(),
		}
		e.seq++
		e.Sent++
		if e.next != nil {
			e.next.Receive(p)
		}
		e.arm()
	})
}
