package elements

import (
	"modelcc/internal/packet"
	"modelcc/internal/sim"
	"modelcc/internal/units"
	"time"
)

// Buffer is the paper's BUFFER element: a tail-drop FIFO queue with a
// capacity in bits and an observable current fullness. It is drained by a
// Throughput element; construct the pair with NewBottleneck or wire a
// Buffer to a Throughput manually via AttachDrain.
type Buffer struct {
	capBits  int64
	usedBits int64
	q        []packet.Packet
	drain    *Throughput

	// Drops counts packets discarded because the queue was full,
	// broken down by flow. Experiments read it to verify the paper's
	// "never causes a buffer overflow" claim for α ≥ 1.
	Drops map[packet.FlowID]int
	// Enqueued counts accepted packets by flow.
	Enqueued map[packet.FlowID]int
	// OnDrop, if non-nil, observes each dropped packet.
	OnDrop func(packet.Packet)
}

// NewBuffer returns a tail-drop buffer with the given capacity in bits.
func NewBuffer(capBits int64) *Buffer {
	return &Buffer{
		capBits:  capBits,
		Drops:    make(map[packet.FlowID]int),
		Enqueued: make(map[packet.FlowID]int),
	}
}

// AttachDrain connects the Throughput element that serves this queue.
func (b *Buffer) AttachDrain(t *Throughput) {
	b.drain = t
	t.src = b
}

// CapacityBits reports the configured capacity.
func (b *Buffer) CapacityBits() int64 { return b.capBits }

// UsedBits reports the bits currently queued (excluding any packet that
// has already been handed to the drain for serialization).
func (b *Buffer) UsedBits() int64 { return b.usedBits }

// Len reports the number of queued packets.
func (b *Buffer) Len() int { return len(b.q) }

// Prefill enqueues filler packets totalling at least fullBits, emulating
// the paper's "initial fullness" parameter. Filler packets belong to the
// given flow and are stamped with time zero. The final packet may push the
// fill slightly past fullBits but never past capacity.
func (b *Buffer) Prefill(fullBits int64, flow packet.FlowID) {
	seq := int64(0)
	for b.usedBits < fullBits {
		p := packet.New(flow, seq, 0)
		if b.usedBits+p.Bits() > b.capBits {
			return
		}
		b.q = append(b.q, p)
		b.usedBits += p.Bits()
		b.Enqueued[flow]++
		seq++
	}
}

// Receive implements Node: tail-drop enqueue, then kick the drain.
func (b *Buffer) Receive(p packet.Packet) {
	if b.usedBits+p.Bits() > b.capBits {
		b.Drops[p.Flow]++
		if b.OnDrop != nil {
			b.OnDrop(p)
		}
		return
	}
	b.q = append(b.q, p)
	b.usedBits += p.Bits()
	b.Enqueued[p.Flow]++
	if b.drain != nil {
		b.drain.Kick()
	}
}

// Dequeue implements Dequeuer for the drain.
func (b *Buffer) Dequeue() (packet.Packet, bool) {
	if len(b.q) == 0 {
		return packet.Packet{}, false
	}
	p := b.q[0]
	copy(b.q, b.q[1:])
	b.q = b.q[:len(b.q)-1]
	b.usedBits -= p.Bits()
	return p, true
}

// Dequeuer is a queue a Throughput element can pull packets from. Buffer,
// REDBuffer, and FairQueue implement it.
type Dequeuer interface {
	Dequeue() (packet.Packet, bool)
}

// Throughput is the paper's THROUGHPUT element: a link that serializes
// packets at a fixed rate in bits per second. It pulls from an attached
// Dequeuer (the queue feeding it) and delivers each packet to its
// downstream Node after the packet's transmission time.
type Throughput struct {
	loop     *sim.Loop
	rate     units.BitRate
	src      Dequeuer
	next     Node
	busy     bool
	inflight packet.Packet
	done     *sim.Timer

	// Served counts packets fully serialized, by flow.
	Served map[packet.FlowID]int
	// ServedBits counts bits fully serialized.
	ServedBits int64
}

// NewThroughput returns a link of the given rate delivering to next.
func NewThroughput(loop *sim.Loop, rate units.BitRate, next Node) *Throughput {
	t := &Throughput{
		loop:   loop,
		rate:   rate,
		next:   next,
		Served: make(map[packet.FlowID]int),
	}
	t.done = sim.NewTimer(loop, t.finish)
	return t
}

// finish completes the in-service packet and pulls the next one. The
// in-service slot is cleared before delivery: delivering can reentrantly
// Kick this link (receiver ack -> sender -> enqueue), which loads the
// next packet into the slot.
func (t *Throughput) finish() {
	p := t.inflight
	t.inflight = packet.Packet{}
	t.busy = false
	t.deliver(p)
	t.Kick()
}

// SetNext implements Wirer.
func (t *Throughput) SetNext(n Node) { t.next = n }

// Rate reports the link speed.
func (t *Throughput) Rate() units.BitRate { return t.rate }

// SetRate changes the link speed; the packet currently serializing (if
// any) finishes at the old rate, matching how a modem retrain affects only
// subsequent packets.
func (t *Throughput) SetRate(r units.BitRate) { t.rate = r }

// Busy reports whether a packet is currently serializing.
func (t *Throughput) Busy() bool { return t.busy }

// InService reports the packet currently serializing and the virtual
// time its transmission completes; ok is false when the link is idle.
// Because every fleet packet has the same size, the in-service packet
// is the only one that can complete within one transmit time of now —
// the lookahead fact the windowed shard coordinator's ack peek builds
// on.
func (t *Throughput) InService() (p packet.Packet, doneAt time.Duration, ok bool) {
	if !t.busy {
		return packet.Packet{}, 0, false
	}
	at, armed := t.done.Deadline()
	if !armed {
		return packet.Packet{}, 0, false
	}
	return t.inflight, at, true
}

// Receive implements Node for direct use without an upstream Buffer: the
// packet is delivered after its serialization delay, with no queueing.
// Topologies that need queueing must put a Buffer in front.
func (t *Throughput) Receive(p packet.Packet) {
	t.loop.After(units.TransmitTime(p.Bits(), t.rate), func() {
		t.deliver(p)
	})
}

// Kick tells the link its source queue may have work; idempotent.
func (t *Throughput) Kick() {
	if t.busy || t.src == nil {
		return
	}
	p, ok := t.src.Dequeue()
	if !ok {
		return
	}
	t.busy = true
	t.inflight = p
	t.done.Arm(units.TransmitTime(p.Bits(), t.rate))
}

func (t *Throughput) deliver(p packet.Packet) {
	t.Served[p.Flow]++
	t.ServedBits += p.Bits()
	if t.next != nil {
		t.next.Receive(p)
	}
}

// NewBottleneck builds the paper's canonical queue-drained-by-link pair:
// a tail-drop Buffer of capBits whose drain is a Throughput of the given
// rate delivering to next. It returns both halves; enqueue into the
// Buffer.
func NewBottleneck(loop *sim.Loop, capBits int64, rate units.BitRate, next Node) (*Buffer, *Throughput) {
	b := NewBuffer(capBits)
	t := NewThroughput(loop, rate, next)
	b.AttachDrain(t)
	return b, t
}

// QueueDelay estimates the time a packet arriving now would wait before
// its own serialization begins: the queued bits at the link rate, plus the
// residual of the packet in service (approximated as a full packet when
// busy, a deliberate over-estimate used only by instrumentation).
func QueueDelay(b *Buffer, t *Throughput) time.Duration {
	bits := b.UsedBits()
	if t.Busy() {
		bits += packet.DefaultSizeBits
	}
	return units.TransmitTime(bits, t.Rate())
}
