package elements

import (
	"math"
	"modelcc/internal/packet"
	"modelcc/internal/sim"
)

// The paper's §3.5 lists "active queue management" and "non-FIFO
// scheduling" as elements the language will need. This file provides
// both: a Random Early Detection buffer and a deficit-round-robin fair
// queue. Both satisfy Dequeuer, so either can replace the tail-drop
// Buffer in front of a Throughput.

// REDBuffer is a Random Early Detection queue (Floyd & Jacobson 1993
// style): below minBits the queue behaves like a FIFO; between minBits
// and maxBits arriving packets are dropped with probability rising
// linearly to maxP; above maxBits every arrival is dropped. The average
// queue size uses an exponentially weighted moving average with weight w.
type REDBuffer struct {
	loop    *sim.Loop
	capBits int64
	minBits int64
	maxBits int64
	maxP    float64
	w       float64

	usedBits int64
	avgBits  float64
	q        []packet.Packet
	drain    *Throughput

	// Drops counts discarded packets by flow; EarlyDrops counts the
	// subset dropped probabilistically rather than by overflow.
	Drops      map[packet.FlowID]int
	EarlyDrops int
}

// NewREDBuffer returns a RED queue. capBits bounds the physical queue;
// minBits/maxBits are the RED thresholds on the averaged queue size.
func NewREDBuffer(loop *sim.Loop, capBits, minBits, maxBits int64, maxP float64) *REDBuffer {
	if minBits > maxBits || maxBits > capBits {
		// Invariant: construction-time misuse, unreachable from network
		// input.
		panic("elements: RED thresholds must satisfy min <= max <= cap")
	}
	return &REDBuffer{
		loop:    loop,
		capBits: capBits,
		minBits: minBits,
		maxBits: maxBits,
		maxP:    maxP,
		w:       0.002,
		Drops:   make(map[packet.FlowID]int),
	}
}

// AttachDrain connects the Throughput element that serves this queue.
func (b *REDBuffer) AttachDrain(t *Throughput) {
	b.drain = t
	t.src = b
}

// UsedBits reports the bits currently queued.
func (b *REDBuffer) UsedBits() int64 { return b.usedBits }

// AvgBits reports the EWMA queue size RED thresholds against.
func (b *REDBuffer) AvgBits() float64 { return b.avgBits }

// Receive implements Node.
func (b *REDBuffer) Receive(p packet.Packet) {
	b.avgBits = (1-b.w)*b.avgBits + b.w*float64(b.usedBits)
	drop := false
	early := false
	switch {
	case b.usedBits+p.Bits() > b.capBits:
		drop = true
	case b.avgBits >= float64(b.maxBits):
		drop, early = true, true
	case b.avgBits > float64(b.minBits):
		frac := (b.avgBits - float64(b.minBits)) / math.Max(1, float64(b.maxBits-b.minBits))
		if b.loop.Rand().Float64() < frac*b.maxP {
			drop, early = true, true
		}
	}
	if drop {
		b.Drops[p.Flow]++
		if early {
			b.EarlyDrops++
		}
		return
	}
	b.q = append(b.q, p)
	b.usedBits += p.Bits()
	if b.drain != nil {
		b.drain.Kick()
	}
}

// Dequeue implements Dequeuer.
func (b *REDBuffer) Dequeue() (packet.Packet, bool) {
	if len(b.q) == 0 {
		return packet.Packet{}, false
	}
	p := b.q[0]
	copy(b.q, b.q[1:])
	b.q = b.q[:len(b.q)-1]
	b.usedBits -= p.Bits()
	return p, true
}

// FairQueue is a deficit-round-robin scheduler with one sub-queue per
// flow and a shared capacity in bits. Each flow's sub-queue is tail-drop
// against its fair share of the capacity; service alternates between
// non-empty sub-queues with a per-packet quantum, so a flooding flow
// cannot starve a polite one — the non-FIFO scheduling of §3.5.
type FairQueue struct {
	capBits  int64
	usedBits int64
	queues   map[packet.FlowID][]packet.Packet
	order    []packet.FlowID
	nextIdx  int
	drain    *Throughput

	// bits caches each flow's queued occupancy and active counts the
	// flows with queued packets, so admission is O(1) in the flow count
	// — with hundreds of fleet senders behind one bottleneck, the
	// original recompute-by-iteration cost dominated the run.
	bits   map[packet.FlowID]int64
	active int

	// Drops counts discarded packets by flow.
	Drops map[packet.FlowID]int
}

// NewFairQueue returns a fair queue with the given total capacity.
func NewFairQueue(capBits int64) *FairQueue {
	return &FairQueue{
		capBits: capBits,
		queues:  make(map[packet.FlowID][]packet.Packet),
		bits:    make(map[packet.FlowID]int64),
		Drops:   make(map[packet.FlowID]int),
	}
}

// AttachDrain connects the Throughput element that serves this queue.
func (f *FairQueue) AttachDrain(t *Throughput) {
	f.drain = t
	t.src = f
}

// UsedBits reports the bits currently queued across all flows.
func (f *FairQueue) UsedBits() int64 { return f.usedBits }

// activeFlows reports the number of flows with queued packets.
func (f *FairQueue) activeFlows() int { return f.active }

func (f *FairQueue) flowBits(flow packet.FlowID) int64 { return f.bits[flow] }

// addBits adjusts a flow's cached occupancy and the active-flow count.
func (f *FairQueue) addBits(flow packet.FlowID, delta int64) {
	before := f.bits[flow]
	after := before + delta
	f.bits[flow] = after
	f.usedBits += delta
	if before == 0 && after > 0 {
		f.active++
	} else if before > 0 && after == 0 {
		f.active--
	}
}

// Receive implements Node. A packet is accepted if the flow's occupancy
// stays within its fair share (capacity divided by the number of active
// flows including this one). When the shared capacity is exhausted by
// other flows, the queue pushes out the tail of the longest flow's
// sub-queue ("longest queue drop"), so a flooding flow cannot lock a
// polite flow out of its share.
func (f *FairQueue) Receive(p packet.Packet) {
	if _, ok := f.queues[p.Flow]; !ok {
		f.queues[p.Flow] = nil
		f.order = append(f.order, p.Flow)
	}
	active := f.activeFlows()
	if len(f.queues[p.Flow]) == 0 {
		active++
	}
	share := f.capBits / int64(active)
	if f.flowBits(p.Flow)+p.Bits() > share {
		f.Drops[p.Flow]++
		return
	}
	// Make room by pushing out the tail of the longest sub-queue; if the
	// arriving flow already holds the longest queue, accepting would be
	// pointless, so drop the arrival instead.
	for f.usedBits+p.Bits() > f.capBits {
		victim, victimBits := p.Flow, f.flowBits(p.Flow)+p.Bits()
		for _, fl := range f.order {
			if b := f.flowBits(fl); b > victimBits {
				victim, victimBits = fl, b
			}
		}
		if victim == p.Flow {
			f.Drops[p.Flow]++
			return
		}
		q := f.queues[victim]
		out := q[len(q)-1]
		f.queues[victim] = q[:len(q)-1]
		f.addBits(victim, -out.Bits())
		f.Drops[victim]++
	}
	f.queues[p.Flow] = append(f.queues[p.Flow], p)
	f.addBits(p.Flow, p.Bits())
	if f.drain != nil {
		f.drain.Kick()
	}
}

// Dequeue implements Dequeuer with round-robin service across flows.
func (f *FairQueue) Dequeue() (packet.Packet, bool) {
	if f.usedBits == 0 || len(f.order) == 0 {
		return packet.Packet{}, false
	}
	for i := 0; i < len(f.order); i++ {
		idx := (f.nextIdx + i) % len(f.order)
		flow := f.order[idx]
		q := f.queues[flow]
		if len(q) == 0 {
			continue
		}
		p := q[0]
		copy(q, q[1:])
		f.queues[flow] = q[:len(q)-1]
		f.addBits(flow, -p.Bits())
		f.nextIdx = (idx + 1) % len(f.order)
		return p, true
	}
	return packet.Packet{}, false
}
