package elements

import (
	"math"
	"modelcc/internal/packet"
	"modelcc/internal/sim"
	"modelcc/internal/units"
	"time"
)

// Intermittent is the paper's INTERMITTENT element: it connects its input
// to its output only intermittently, switching between connected and
// disconnected according to a memoryless process with the given
// mean-time-to-switch. While disconnected, packets are discarded.
type Intermittent struct {
	loop      *sim.Loop
	mean      time.Duration
	connected bool
	next      Node

	// Gated counts packets discarded while disconnected.
	Gated int
}

// NewIntermittent returns an Intermittent gate starting in the connected
// state, switching with exponential interarrivals of the given mean.
func NewIntermittent(loop *sim.Loop, meanTimeToSwitch time.Duration, next Node) *Intermittent {
	e := &Intermittent{loop: loop, mean: meanTimeToSwitch, connected: true, next: next}
	e.armSwitch()
	return e
}

// SetNext implements Wirer.
func (e *Intermittent) SetNext(n Node) { e.next = n }

// Connected reports the current gate state.
func (e *Intermittent) Connected() bool { return e.connected }

func (e *Intermittent) armSwitch() {
	if e.mean <= 0 {
		return // never switches
	}
	// Exponential holding time with the configured mean.
	u := e.loop.Rand().Float64()
	hold := units.SecondsToDuration(-math.Log(1-u) * e.mean.Seconds())
	e.loop.After(hold, func() {
		e.connected = !e.connected
		e.armSwitch()
	})
}

// Receive implements Node.
func (e *Intermittent) Receive(p packet.Packet) {
	if !e.connected {
		e.Gated++
		return
	}
	if e.next != nil {
		e.next.Receive(p)
	}
}

// SquareWave is the paper's SQUAREWAVE element: it alternates between
// connected and disconnected deterministically with a fixed half-period.
// The Figure 3 experiment uses a SquareWave with a 100-second half-period
// as the ground truth while the ISENDER *believes* the gate is an
// Intermittent — exactly the model-mismatch the paper tests.
type SquareWave struct {
	loop      *sim.Loop
	half      time.Duration
	connected bool
	next      Node

	// Gated counts packets discarded while disconnected.
	Gated int
}

// NewSquareWave returns a gate starting connected that toggles every
// halfPeriod.
func NewSquareWave(loop *sim.Loop, halfPeriod time.Duration, next Node) *SquareWave {
	e := &SquareWave{loop: loop, half: halfPeriod, connected: true, next: next}
	e.armToggle()
	return e
}

// SetNext implements Wirer.
func (e *SquareWave) SetNext(n Node) { e.next = n }

// Connected reports the current gate state.
func (e *SquareWave) Connected() bool { return e.connected }

func (e *SquareWave) armToggle() {
	if e.half <= 0 {
		return
	}
	e.loop.After(e.half, func() {
		e.connected = !e.connected
		e.armToggle()
	})
}

// Receive implements Node.
func (e *SquareWave) Receive(p packet.Packet) {
	if !e.connected {
		e.Gated++
		return
	}
	if e.next != nil {
		e.next.Receive(p)
	}
}

// Diverter is the paper's DIVERTER element: packets from one source flow
// are routed to one element, and all other traffic to a different element.
type Diverter struct {
	match   packet.FlowID
	matched Node
	rest    Node
}

// NewDiverter routes packets of flow match to matched and everything else
// to rest.
func NewDiverter(match packet.FlowID, matched, rest Node) *Diverter {
	return &Diverter{match: match, matched: matched, rest: rest}
}

// Receive implements Node.
func (e *Diverter) Receive(p packet.Packet) {
	if p.Flow == e.match {
		if e.matched != nil {
			e.matched.Receive(p)
		}
		return
	}
	if e.rest != nil {
		e.rest.Receive(p)
	}
}

// Either is the paper's EITHER element: traffic goes either to element A
// or to element B, switching between them with a memoryless process of
// the given mean-time-to-switch.
type Either struct {
	loop *sim.Loop
	mean time.Duration
	useA bool
	a, b Node
}

// NewEither returns an Either starting on a, switching with the given
// mean.
func NewEither(loop *sim.Loop, meanTimeToSwitch time.Duration, a, b Node) *Either {
	e := &Either{loop: loop, mean: meanTimeToSwitch, useA: true, a: a, b: b}
	e.armSwitch()
	return e
}

// UsingA reports whether traffic currently routes to the first element.
func (e *Either) UsingA() bool { return e.useA }

func (e *Either) armSwitch() {
	if e.mean <= 0 {
		return
	}
	u := e.loop.Rand().Float64()
	hold := units.SecondsToDuration(-math.Log(1-u) * e.mean.Seconds())
	e.loop.After(hold, func() {
		e.useA = !e.useA
		e.armSwitch()
	})
}

// Receive implements Node.
func (e *Either) Receive(p packet.Packet) {
	n := e.b
	if e.useA {
		n = e.a
	}
	if n != nil {
		n.Receive(p)
	}
}
