package fleet

import (
	"sort"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/core"
	"modelcc/internal/model"
	"modelcc/internal/packet"
	"modelcc/internal/planner"
	"modelcc/internal/rollout"
	"modelcc/internal/sim"
	"modelcc/internal/utility"
)

// Partition is one shard's slice of a fleet: a dynamic set of members
// (initially the flows congruent to the partition index modulo the
// shard count; failover can re-home whole residue classes onto a
// survivor) running on their own discrete-event loop with their own
// rollout pool and scratch arenas. Partitions never touch the shared bottleneck
// directly — members send into an Outbox the shard coordinator merges
// in canonical order and replays onto the one authoritative bottleneck
// loop — and they receive acknowledgments only through ScheduleAck,
// which the coordinator calls at each coupling-window start with the
// (at most one) completion the window can contain. Within a window a
// partition therefore depends on nothing outside itself, which is what
// lets K partitions run on K goroutines while reproducing the
// single-loop fleet bit for bit.
//
// Partition reuses Member unchanged: the same batching scheduler
// (enqueue/drain in canonical flow order), the same wake clamp, the
// same fenced counters. It lives in package fleet because it is the
// fleet's member machinery re-hosted, not a new behavior.
type Partition struct {
	// Loop is the partition's private discrete-event loop.
	Loop *sim.Loop
	// Pool is the partition's rollout pool (per-shard scratch arenas).
	Pool *rollout.Pool
	// Out collects the window's injected packets for the coordinator.
	Out *Outbox
	// Caches is the fleet-wide striped policy cache. The partition only
	// touches stripes s with s ≡ idx (mod shards) — disjoint from every
	// other partition because the shard count divides the stripe count —
	// so no synchronization is needed.
	Caches *planner.CacheStripes

	idx, shards int
	cfg         Config
	states      []model.State
	bcfg        belief.Config
	pcfg        planner.Config

	// members and flows key the partition's dynamic residency by flow
	// ID. The maps are never iterated — every access is a point lookup,
	// and batch work drains through the canonical flow-sorted dirty
	// list — so map order can never leak into results.
	members map[packet.FlowID]*Member
	flows   map[packet.FlowID]*flowRecord

	dirty, spare []*Member
	drainArmed   bool
	drainTimer   *sim.Timer

	// ackTimer replays the coordinator-peeked acknowledgment at its
	// exact receive instant; one reusable timer suffices because a
	// coupling window contains at most one completion.
	ackTimer   *sim.Timer
	pendingAck packet.Ack
}

// Outbox is the elements.Node a partition's members send into: it
// records the packets in emission order for the coordinator to merge.
type Outbox struct {
	// Pkts are the window's packets in the order members emitted them.
	Pkts []packet.Packet
}

// Receive implements elements.Node.
func (o *Outbox) Receive(p packet.Packet) { o.Pkts = append(o.Pkts, p) }

// Reset clears the outbox for the next window, keeping capacity.
func (o *Outbox) Reset() { o.Pkts = o.Pkts[:0] }

// NewPartition builds partition idx of shards over the RESOLVED fleet
// configuration (call Config.Resolved first; Workers here is the
// per-partition pool width). No members are attached; the coordinator
// attaches and starts them so admission order and stagger offsets are
// identical to the single-loop fleet's.
func NewPartition(cfg Config, idx, shards int, caches *planner.CacheStripes) *Partition {
	p := &Partition{
		Loop:    sim.New(cfg.Seed),
		Pool:    rollout.New(cfg.Workers),
		Out:     &Outbox{},
		Caches:  caches,
		idx:     idx,
		shards:  shards,
		cfg:     cfg,
		members: make(map[packet.FlowID]*Member),
		flows:   make(map[packet.FlowID]*flowRecord),
	}
	p.drainTimer = sim.NewTimer(p.Loop, p.drain)
	p.ackTimer = sim.NewTimer(p.Loop, p.deliverAck)

	prior := Prior(cfg.LinkRate, cfg.BufferCapBits, cfg.N)
	if cfg.PriorOverride != nil {
		prior = *cfg.PriorOverride
	}
	p.states, _ = prior.Enumerate()

	u := utility.Default()
	u.Alpha = cfg.Alpha
	p.bcfg = beliefDefaults(cfg.BeliefCfg, cfg.N)
	p.bcfg.Pool = p.Pool
	p.pcfg = planDefaults(cfg.Plan, cfg.PerSenderRate, u, cfg.N)
	p.pcfg.Pool = p.Pool
	return p
}

// Owns reports whether the flow maps to this partition under the
// initial modular placement (before any failover re-homing).
func (p *Partition) Owns(flow packet.FlowID) bool {
	return int(flow)%p.shards == p.idx
}

// rec returns the flow's cross-generation ledger, creating it on first
// touch.
func (p *Partition) rec(flow packet.FlowID) *flowRecord {
	r := p.flows[flow]
	if r == nil {
		r = &flowRecord{}
		p.flows[flow] = r
	}
	return r
}

// MemberAt returns the flow's live member, nil when vacant or foreign.
func (p *Partition) MemberAt(flow packet.FlowID) *Member {
	return p.members[flow]
}

// AttachCold occupies flow with a fresh cold-from-the-prior member
// generation, fencing its counters at the supplied shared-bottleneck
// readings (the coordinator owns the receiver and drop maps). The
// member is not started.
func (p *Partition) AttachCold(flow packet.FlowID, baseDelivered, baseDrops int) *Member {
	return p.attach(flow, p.newSender(flow), baseDelivered, baseDrops)
}

// AttachSender occupies flow with a caller-built sender — one warm-
// restored from a lifecycle checkpoint — wiring it into the shared
// cache/table first, exactly as Fleet.AdmitSender does on the
// single-loop path. The member is not started.
func (p *Partition) AttachSender(flow packet.FlowID, s *core.Sender, baseDelivered, baseDrops int) *Member {
	return p.attach(flow, p.wireSender(s, flow), baseDelivered, baseDrops)
}

func (p *Partition) attach(flow packet.FlowID, s *core.Sender, baseDelivered, baseDrops int) *Member {
	if p.members[flow] != nil {
		panic("fleet: partition flow already occupied")
	}
	rec := p.rec(flow)
	m := NewMember(p.Loop, s, flow, p.Out)
	m.notify = p.enqueue
	m.lean = p.cfg.LeanStats
	m.leanFrom = p.cfg.LeanRateFrom
	// Partition members are always canonical: the coordinator's merge
	// delivers cross-shard events in flow order, so local wakes must
	// drain the same way.
	m.canonical = true
	m.Gen = rec.gens
	rec.gens++
	m.AdmittedAt = p.Loop.Now()
	m.baseDelivered = baseDelivered
	m.baseDrops = baseDrops
	p.members[flow] = m
	return m
}

// RetireMember tears the flow's member down (mirroring Fleet.Retire),
// freezing its fenced counters at the supplied shared-bottleneck
// readings. Returns the retired member, nil when vacant.
func (p *Partition) RetireMember(flow packet.FlowID, delivered, rawDrops int) *Member {
	m := p.members[flow]
	if m == nil {
		return nil
	}
	m.retired = true
	m.timer.Stop()
	m.acks = m.acks[:0]
	m.GenDrops = rawDrops - m.baseDrops
	m.GenDelivered = delivered - m.baseDelivered
	p.rec(flow).injected += m.Injected
	delete(p.members, flow)
	return m
}

// Ledger is one flow's cross-generation accounting — packets retired
// generations injected and the generation counter — transferred
// between partitions when a failover re-homes the flow. It is
// coordinator-owned bookkeeping, not shard-resident member state, so
// it survives a shard loss by construction.
type Ledger struct {
	// Injected counts packets retired generations injected.
	Injected int64
	// Gens is the number of generations the flow has hosted.
	Gens uint32
}

// Remove strips the flow's ledger from the partition for transfer to a
// new home; the flow must have no live member (RetireMember first).
// ok is false when the partition never touched the flow.
func (p *Partition) Remove(flow packet.FlowID) (led Ledger, ok bool) {
	if p.members[flow] != nil {
		panic("fleet: removing a flow with a live member")
	}
	r := p.flows[flow]
	if r == nil {
		return Ledger{}, false
	}
	delete(p.flows, flow)
	return Ledger{Injected: r.injected, Gens: r.gens}, true
}

// Install adopts a flow's ledger transferred from its previous home.
func (p *Partition) Install(flow packet.FlowID, led Ledger) {
	if p.flows[flow] != nil || p.members[flow] != nil {
		panic("fleet: installing over an occupied flow")
	}
	p.flows[flow] = &flowRecord{injected: led.Injected, gens: led.Gens}
}

// BumpDeliveryFence advances the live member's admission-time delivery
// fence by n: the coordinator calls it when it swallows a fenced
// acknowledgment (a post-checkpoint in-flight packet of a failed-over
// predecessor), so the delivery is excluded from the restored
// generation's Delivered. No-op when the flow is vacant.
func (p *Partition) BumpDeliveryFence(flow packet.FlowID, n int) {
	if m := p.members[flow]; m != nil {
		m.baseDelivered += n
	}
}

// InjectedTotal reports packets the flow injected across every
// generation, live member included — the coordinator's in-flight
// accounting input.
func (p *Partition) InjectedTotal(flow packet.FlowID) int64 {
	var inj int64
	if r := p.flows[flow]; r != nil {
		inj = r.injected
	}
	if m := p.members[flow]; m != nil {
		inj += m.Injected
	}
	return inj
}

// NextGen reports the generation the next member admitted on the flow
// will receive.
func (p *Partition) NextGen(flow packet.FlowID) uint32 {
	if r := p.flows[flow]; r != nil {
		return r.gens
	}
	return 0
}

// BaseDelivered reports the live member's admission-time delivery
// fence (see Fleet.Delivered); zero when vacant.
func (p *Partition) BaseDelivered(flow packet.FlowID) (base int, ok bool) {
	m := p.MemberAt(flow)
	if m == nil {
		return 0, false
	}
	return m.baseDelivered, true
}

// BaseDrops is BaseDelivered's drop-side counterpart.
func (p *Partition) BaseDrops(flow packet.FlowID) (base int, ok bool) {
	m := p.MemberAt(flow)
	if m == nil {
		return 0, false
	}
	return m.baseDrops, true
}

// ScheduleAck arms the window's one peeked acknowledgment for delivery
// at its exact receive instant on the partition loop. Must be called
// before RunTo for the window containing a.ReceivedAt.
func (p *Partition) ScheduleAck(a packet.Ack) {
	p.pendingAck = a
	p.ackTimer.ArmAt(a.ReceivedAt)
}

func (p *Partition) deliverAck() {
	a := p.pendingAck
	m := p.MemberAt(a.Flow)
	if m == nil || m.retired {
		// The coordinator checks liveness at peek time; a vacancy here
		// would be a barrier bookkeeping bug, but stay graceful.
		return
	}
	m.OnAck(a)
}

// RunTo drives the partition loop to the absolute virtual time t,
// firing every member event at or before it.
func (p *Partition) RunTo(t time.Duration) { p.Loop.Run(t) }

// NextEventTime reports the partition's earliest pending event, for the
// coordinator's idle-window skip-ahead.
func (p *Partition) NextEventTime() (time.Duration, bool) { return p.Loop.PeekTime() }

// newSender mirrors Fleet.newSender against the partition's stripe set.
func (p *Partition) newSender(flow packet.FlowID) *core.Sender {
	return p.wireSender(core.NewSender(belief.NewExact(p.states, p.bcfg), p.pcfg), flow)
}

// wireSender mirrors Fleet.wireSender: compiled table (as a
// synchronous Guard rung 0) or the flow's cache stripe, plus the fleet
// burst cap.
func (p *Partition) wireSender(s *core.Sender, flow packet.FlowID) *core.Sender {
	var stripe *planner.PolicyCache
	if p.Caches != nil {
		stripe = p.Caches.For(uint32(flow))
	}
	if p.cfg.Table != nil {
		g := planner.NewGuard(0, stripe)
		g.Compiled = p.cfg.Table
		s.Guard = g
	} else {
		s.Cache = stripe
	}
	s.MaxBurst = 4
	return s
}

// PriorStates returns the enumerated prior partition members start
// from; read-only, identical to the owning fleet's.
func (p *Partition) PriorStates() []model.State { return p.states }

// MemberBeliefConfig returns the resolved belief configuration
// partition members are built with (per-shard pool included), so a
// checkpoint restore reconstructs an identical belief.
func (p *Partition) MemberBeliefConfig() belief.Config { return p.bcfg }

// MemberPlanConfig returns the resolved planner configuration
// partition members are built with (per-shard pool included).
func (p *Partition) MemberPlanConfig() planner.Config { return p.pcfg }

// enqueue/drain are the fleet scheduler verbatim: batch same-instant
// wakes, drain in canonical flow order.
func (p *Partition) enqueue(m *Member) {
	if m.queued {
		return
	}
	m.queued = true
	p.dirty = append(p.dirty, m)
	if !p.drainArmed {
		p.drainArmed = true
		p.drainTimer.ArmAt(p.Loop.Now())
	}
}

func (p *Partition) drain() {
	p.drainArmed = false
	batch := p.dirty
	p.dirty = p.spare[:0]
	sort.Slice(batch, func(i, j int) bool { return batch[i].Flow < batch[j].Flow })
	for _, m := range batch {
		m.queued = false
		m.wake()
	}
	p.spare = batch[:0]
}
