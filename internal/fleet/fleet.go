// Package fleet hosts N coexisting ISENDERs — from two to thousands —
// inside one process on a shared discrete-event loop, answering §3.5's
// open question ("we have not yet experimented with any networks that
// contain more than one ISENDER") at scale.
//
// Three mechanisms keep a large fleet affordable where N independent
// senders would not be:
//
//   - One rollout pool for the whole fleet. Every member's belief
//     updates and planner rollouts run on the same internal/rollout
//     worker pool (belief.Config.Pool / planner.Config.Pool), so one
//     set of scratch arenas — states, meters, event buffers — serves
//     all N senders instead of N copies of each.
//
//   - A central scheduler that batches wakeups. Acknowledgments
//     arriving at one virtual instant are coalesced per sender and the
//     dirty senders are drained in one pass, so a sender performs one
//     belief update per instant rather than one per acknowledgment,
//     and decision epochs are staggered across the fleet at start so
//     thousands of senders amortize over the timeline instead of
//     synchronizing into bursts.
//
//   - A shared planner.PolicyCache keyed by belief fingerprint. Fleet
//     members face recurring, near-identical situations (same prior,
//     same recurring steady states), so one member's computed decision
//     serves every other member that reaches the same belief.
//
// Each member models the other N-1 flows as the PINGER it knows how to
// reason about; for large N the modeled cross traffic is aggregated
// into coarse chunks (model.Params.CrossPktBits) so hypothesis advance
// cost stays bounded as the competitor count grows. The mismatch — the
// competitors are neither isochronous nor chunked — is absorbed by the
// soft observation likelihood, exactly as in the two-flow coexistence
// experiments this package generalizes.
//
// Everything is deterministic: the loop is single-goroutine, the
// scheduler drains same-instant wakes in canonical flow order, and the
// shared pool preserves the rollout engine's
// bit-identical-for-any-width guarantee, so a fleet run's output
// depends only on its Config (including at Workers = 1 versus
// Workers = GOMAXPROCS — the fairness-sweep determinism test asserts
// this).
//
// The same member machinery also runs sharded: Partition re-hosts a
// flow-residue subset of the fleet's members on a private loop, and
// internal/shard couples K partitions through the one shared
// bottleneck with a conservative time-windowed coordinator, bit
// identical at any shard count. Sharded runs force two knobs a default
// single-loop fleet leaves off: Config.Canonical (same-instant wakes
// drain in flow order instead of arrival order) and a
// planner.CacheStripes split of the policy cache (flow mod 16, so
// partitions own disjoint stripes); a single-loop fleet with the same
// two knobs set reproduces a sharded run bit for bit. Config.LeanStats
// drops per-packet series retention (streaming moments and a P² tail
// quantile instead) so very large fleets stay flat in heap.
package fleet

import (
	"fmt"
	"sort"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/core"
	"modelcc/internal/elements"
	"modelcc/internal/model"
	"modelcc/internal/packet"
	"modelcc/internal/planner"
	"modelcc/internal/rollout"
	"modelcc/internal/sim"
	"modelcc/internal/stats"
	"modelcc/internal/units"
	"modelcc/internal/utility"
)

// Config describes one fleet: N ISENDERs sharing one bottleneck.
type Config struct {
	// N is the number of coexisting senders (>= 1).
	N int
	// Seed drives the simulation loop's randomness.
	Seed int64
	// Alpha is every member's cross-traffic priority (default 1:
	// bit-neutral, the fair-sharing point).
	Alpha float64
	// PerSenderRate is each sender's fair share of the bottleneck; the
	// link rate is N times it (default 6000 bit/s, half a packet per
	// second each, so the default fleet matches the two-flow
	// coexistence experiments at N = 2).
	PerSenderRate units.BitRate
	// LinkRate overrides the bottleneck speed when non-zero.
	LinkRate units.BitRate
	// BufferCapBits overrides the shared buffer capacity when non-zero;
	// the default scales with the fleet, 4 packets of headroom per
	// sender (96,000 bits at N = 2, again matching coexistence).
	BufferCapBits int64
	// FairQueue replaces the tail-drop FIFO bottleneck with the
	// deficit-round-robin FairQueue, the §3.5 non-FIFO scheduling.
	FairQueue bool
	// Stagger spreads member start times uniformly over this window so
	// decision epochs de-synchronize; the default is one fair-share
	// packet interval. Member i starts at Stagger·i/N.
	Stagger time.Duration
	// Workers is the shared rollout pool's width: 0 means GOMAXPROCS,
	// 1 forces the serial path. Output is bit-identical for any value.
	Workers int
	// Table, when non-nil, is an offline-compiled policy (a
	// policy.Server over a compiled table) probed before any live
	// planning. It is shared read-only across all members: each member
	// gets a synchronous planner.Guard whose rung 0 is this table,
	// whose warm fallback is the fleet's shared PolicyCache, and whose
	// misses are reported back to the table's sidecar log for the next
	// compile.
	Table planner.CompiledPolicy
	// NoSharedCache disables the fleet-wide policy cache (for the
	// ablation benchmark; every member then plans from scratch).
	NoSharedCache bool
	// CacheEntries bounds the shared policy cache per stripe (0 =
	// default).
	CacheEntries int
	// CacheStripes sets how many independent stripes the shared policy
	// cache is split into (0 = 1: one fleet-wide cache, the historical
	// behavior). A member uses stripe flow mod CacheStripes. The stripe
	// count — not the shard count — determines which members share
	// entries, so results are identical whether the fleet runs on one
	// loop or on any shard count dividing it; the sharded runtime
	// defaults this to planner.DefaultCacheStripes.
	CacheStripes int
	// Canonical switches the per-instant wake scheduler from arrival
	// order (the historical single-loop behavior, the default) to
	// canonical flow order, and routes timer wakes through the same
	// batched drain as acknowledgment wakes. Under Canonical the
	// instant-by-instant trajectory is a pure function of WHICH members
	// woke — never of the event interleaving that woke them — which is
	// the property the sharded runtime needs to reproduce a single-loop
	// run bit for bit (internal/shard forces it on). The two orderings
	// produce equally valid but different trajectories from the same
	// seed; every cross-shard identity test compares canonical to
	// canonical.
	Canonical bool
	// LeanStats drops the per-packet Series (SentSeq/AckedSeq/UtilCum/
	// SupportN) from every member, keeping only O(1) streaming
	// aggregates — count, mean, M2 variance, P² percentile, and a
	// late-window ack count for rate — so an N=4096 run stays flat in
	// heap. LeanRateFrom sets where the late window begins (the
	// fairness sweep uses the second half of the run).
	LeanStats    bool
	LeanRateFrom time.Duration
	// Prior overrides the per-member prior when non-nil; the default is
	// Prior(linkRate, bufferCap, N).
	PriorOverride *model.Prior
	// BeliefCfg overrides non-zero fields of the fleet belief defaults.
	// Pool and Workers are fleet-owned: every member runs on the
	// fleet's shared pool regardless of what is set here.
	BeliefCfg belief.Config
	// Plan overrides non-zero fields of the fleet planner defaults (a
	// fully zero Plan.Util is replaced by the α-weighted default;
	// Pool and Workers are fleet-owned, as above).
	Plan planner.Config
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 2
	}
	if c.Alpha == 0 {
		c.Alpha = 1
	}
	if c.PerSenderRate <= 0 {
		c.PerSenderRate = 6000
	}
	if c.LinkRate <= 0 {
		c.LinkRate = units.BitRate(float64(c.PerSenderRate) * float64(c.N))
	}
	if c.BufferCapBits <= 0 {
		c.BufferCapBits = 4 * packet.DefaultSizeBits * int64(c.N)
	}
	if c.Stagger < 0 {
		c.Stagger = 0
	} else if c.Stagger == 0 {
		c.Stagger = units.TransmitTime(packet.DefaultSizeBits, c.PerSenderRate)
	}
	if c.CacheStripes <= 0 {
		c.CacheStripes = 1
	}
	return c
}

// preciseMaxN is the largest fleet that plans and infers at the full
// two-flow coexistence resolution. Politeness at the α = 1 knife edge —
// the paper's "never causes a buffer overflow" — demands a model fine
// enough to see one packet's displacement, and experiments show it
// needs BOTH the fine belief (1 s toggle grid, unknown initial
// fullness, deep weight floor) and the fine planner (200 ms candidate
// grid, 40 s horizon); each alone already tolerates drops. That
// resolution costs too much to pay hundreds of times over, so larger
// fleets deliberately trade the no-drop guarantee for boundedness: a
// coarse, chunked, amortized model whose shortfalls the fairness sweep
// measures instead of hides.
const preciseMaxN = 4

// Prior is the belief each fleet member starts from: link and buffer
// known (the open question is competitor inference, not link inference),
// competitor intensity and gate state unknown. The CrossFrac grid
// brackets the fair-share point (N-1)/N. Fleets up to preciseMaxN model
// at the full coexistence resolution; beyond it the model itself is
// coarsened — cross traffic chunked so one modeled emission covers ~N/4
// real competitor packets, the gate-toggle grid widened to 5 s, and the
// buffer known to start empty — because every bit of per-hypothesis
// resolution is paid for N times over. The coarseness is model mismatch
// of exactly the kind the soft observation likelihood exists to absorb.
func Prior(linkRate units.BitRate, bufferCapBits int64, n int) model.Prior {
	if n < 2 {
		n = 2
	}
	// The grid must bracket the fair-share point (N-1)/N = 1 - 1/N, so
	// both bounds scale as 1 - c/N: capping hi at a constant would
	// invert the range once 1-1.6/N exceeds it (N ≥ 81), collapsing
	// the 4-point competitor grid to a single value below fair share.
	// 1-0.4/N is always strictly below 1, so no cap is needed.
	lo := 1 - 1.6/float64(n)
	if lo < 0.1 {
		lo = 0.1
	}
	hi := 1 - 0.4/float64(n)
	pr := model.Prior{
		LinkRate:       model.PriorRange{Lo: float64(linkRate), Hi: float64(linkRate), N: 1},
		CrossFrac:      model.PriorRange{Lo: lo, Hi: hi, N: 4},
		LossProb:       model.PriorRange{Lo: 0, Hi: 0, N: 1},
		BufferCapBits:  model.PriorRange{Lo: float64(bufferCapBits), Hi: float64(bufferCapBits), N: 1},
		FullnessSteps:  2,
		MeanSwitch:     30 * time.Second,
		PingerMaybeOff: true,
		SwitchTick:     time.Second,
	}
	if n > preciseMaxN {
		pr.FullnessSteps = 1
		pr.SwitchTick = 5 * time.Second
	}
	if n > 8 {
		pr.CrossPktBits = packet.DefaultSizeBits * int64(n/4)
	}
	return pr
}

// beliefDefaults is the fleet member belief configuration: soft
// observation matching (the competitors are not the PINGER the model
// assumes) in Relax mode (a surprise must not abort a 1000-sender run).
// Small fleets keep the coexistence experiments' deep weight floor and
// wide cap; larger fleets tighten both because they multiply every cost
// by N.
func beliefDefaults(cfg belief.Config, n int) belief.Config {
	if cfg.SoftSigma <= 0 {
		cfg.SoftSigma = 300 * time.Millisecond
	}
	if cfg.MinWeight <= 0 {
		if n <= preciseMaxN {
			cfg.MinWeight = 1e-9
		} else {
			cfg.MinWeight = 1e-5
		}
	}
	if cfg.MaxHyps <= 0 {
		if n <= preciseMaxN {
			cfg.MaxHyps = 1 << 12
		} else {
			cfg.MaxHyps = 256
		}
	}
	cfg.Relax = true
	return cfg
}

// planDefaults is the fleet member planning configuration, scaled to the
// fair-share rate: candidates up to two fair-share packet intervals out
// on a coarse grid, and a horizon just past the shared buffer's drain
// time. The horizon must clear the drain (a constant 8 s under the
// default capacity scaling, 4 packets per sender at half a packet per
// second each) or a queued packet's displacement cost falls outside
// every rollout and the fleet overfills the buffer; it should not be
// much longer, because a saturated hypothesis keeps candidate rollouts
// alive to the full horizon — there is no idle instant for them to
// reconverge with their baseline at — so planning cost is essentially
// candidates × horizon, and a fleet pays it N times over.
func planDefaults(cfg planner.Config, perSender units.BitRate, u utility.Config, n int) planner.Config {
	fairInterval := units.TransmitTime(packet.DefaultSizeBits, perSender)
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * fairInterval
	}
	if cfg.Grid <= 0 {
		if n <= preciseMaxN {
			cfg.Grid = fairInterval / 10
		} else {
			cfg.Grid = fairInterval / 4
		}
	}
	if cfg.Horizon <= 0 {
		if n <= preciseMaxN {
			cfg.Horizon = 40 * time.Second
		} else {
			cfg.Horizon = 12 * time.Second
		}
	}
	if cfg.MaxHyps <= 0 {
		if n <= preciseMaxN {
			cfg.MaxHyps = 256
		} else {
			cfg.MaxHyps = 64
		}
	}
	if cfg.Util == (utility.Config{}) {
		cfg.Util = u
	}
	return cfg
}

// DefaultBeliefConfig returns the belief configuration a fleet of n
// gives its members, for experiments that wire a member by hand (the
// ISENDER-vs-TCP coexistence run) and must stay comparable with the
// fleet-built ones.
func DefaultBeliefConfig(n int) belief.Config {
	return beliefDefaults(belief.Config{}, n)
}

// Fleet is N coexisting ISENDERs wired to one shared bottleneck on one
// discrete-event loop. Build with New, drive with Run.
type Fleet struct {
	// Cfg is the resolved configuration.
	Cfg Config
	// Loop is the shared discrete-event loop.
	Loop *sim.Loop
	// Members are the senders, indexed by FlowID.
	Members []*Member
	// Buffer is the shared tail-drop bottleneck queue (nil when
	// Cfg.FairQueue selected the DRR scheduler).
	Buffer *elements.Buffer
	// FQ is the DRR bottleneck queue (nil unless Cfg.FairQueue).
	FQ *elements.FairQueue
	// Link is the bottleneck's drain.
	Link *elements.Throughput
	// Recv acknowledges deliveries back to the members.
	Recv *elements.Receiver
	// Pool is the fleet-wide rollout pool every member plans and
	// updates on.
	Pool *rollout.Pool
	// Caches is the fleet-wide policy cache, split into fixed stripes
	// keyed by flow mod stripe count (nil when disabled). Striping, not
	// the shard count, decides which members share entries — see
	// planner.CacheStripes.
	Caches *planner.CacheStripes
	// OrphanAcks counts acknowledgments that arrived for a flow with no
	// live member — the in-flight packets of a retired member draining
	// through the DES loop. They are never a panic: teardown is
	// graceful by construction.
	OrphanAcks int64

	dirty, spare []*Member
	drainArmed   bool
	// drainTimer is the one reusable event behind the per-instant
	// drain: arming it is allocation-free (sim.Loop.Reschedule), so
	// the batched-ack hot path never schedules a fresh closure.
	drainTimer *sim.Timer

	// q is the bottleneck ingress every member sends into.
	q elements.Node
	// states/bcfg/pcfg are the resolved member-construction inputs,
	// kept so mid-run admissions build members identical to New's.
	states []model.State
	bcfg   belief.Config
	pcfg   planner.Config
	// flows fences per-flow accounting across member generations,
	// indexed by flow in lockstep with Members.
	flows []flowRecord
	// active is the sorted index of occupied member slots, so Live is
	// O(1) and lifecycle ticks iterate live members without a linear
	// scan over every slot the fleet has ever allocated.
	active []packet.FlowID
}

// flowRecord is one flow ID's cross-generation bookkeeping: how many
// packets retired generations injected (so in-flight drain can be told
// apart from a fresh member's traffic) and how many generations the
// flow has hosted.
type flowRecord struct {
	injected int64
	gens     uint32
}

// New builds a fleet. Nothing runs until Run (or the loop is driven
// manually).
func New(cfg Config) *Fleet {
	cfg = cfg.withDefaults()
	f := &Fleet{
		Cfg:  cfg,
		Loop: sim.New(cfg.Seed),
		Pool: rollout.New(cfg.Workers),
	}
	f.drainTimer = sim.NewTimer(f.Loop, f.drain)
	if !cfg.NoSharedCache {
		f.Caches = planner.NewCacheStripes(cfg.CacheStripes, cfg.CacheEntries)
		// Coarse fingerprints: members in near-identical recurring
		// situations share one computed decision. 50 ms buckets are
		// well under the coarsest planning grid in use here.
		f.Caches.SetQuanta(50*time.Millisecond, 1e-3)
	}

	f.Recv = elements.NewReceiver(f.Loop, func(a packet.Ack) {
		// Bounds- and nil-safe: a retired member's in-flight packets
		// keep draining to the receiver after its slot is vacated.
		if int(a.Flow) >= len(f.Members) || f.Members[a.Flow] == nil {
			f.OrphanAcks++
			return
		}
		f.Members[a.Flow].OnAck(a)
	})
	if cfg.FairQueue {
		f.FQ = elements.NewFairQueue(cfg.BufferCapBits)
		f.Link = elements.NewThroughput(f.Loop, cfg.LinkRate, f.Recv)
		f.FQ.AttachDrain(f.Link)
		f.q = f.FQ
	} else {
		f.Buffer, f.Link = elements.NewBottleneck(f.Loop, cfg.BufferCapBits, cfg.LinkRate, f.Recv)
		f.q = f.Buffer
	}

	prior := Prior(cfg.LinkRate, cfg.BufferCapBits, cfg.N)
	if cfg.PriorOverride != nil {
		prior = *cfg.PriorOverride
	}
	f.states, _ = prior.Enumerate()

	u := utility.Default()
	u.Alpha = cfg.Alpha
	f.bcfg = beliefDefaults(cfg.BeliefCfg, cfg.N)
	f.bcfg.Pool = f.Pool
	f.pcfg = planDefaults(cfg.Plan, cfg.PerSenderRate, u, cfg.N)
	f.pcfg.Pool = f.Pool

	f.Members = make([]*Member, 0, cfg.N)
	f.flows = make([]flowRecord, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		f.attach(packet.FlowID(i), f.newSender(packet.FlowID(i)))
	}
	return f
}

// newSender builds one cold member sender from the fleet's resolved
// prior and configs, wired into the shared cache/table.
func (f *Fleet) newSender(flow packet.FlowID) *core.Sender {
	return f.wireSender(core.NewSender(belief.NewExact(f.states, f.bcfg), f.pcfg), flow)
}

// wireSender attaches a sender to the fleet's shared serving machinery:
// the compiled table (as a synchronous Guard rung 0) or the flow's
// policy cache stripe, plus the fleet burst cap.
func (f *Fleet) wireSender(s *core.Sender, flow packet.FlowID) *core.Sender {
	var stripe *planner.PolicyCache
	if f.Caches != nil {
		stripe = f.Caches.For(uint32(flow))
	}
	if f.Cfg.Table != nil {
		// Compiled serving path: table → warm cache → live, all
		// synchronous (Budget 0 keeps the DES loop deterministic).
		g := planner.NewGuard(0, stripe)
		g.Compiled = f.Cfg.Table
		s.Guard = g
	} else {
		s.Cache = stripe
	}
	// A solo sender's 32-packet burst cap is harmless; in a fleet a
	// sender whose posterior momentarily says "link free" would pour
	// 32 packets into the shared buffer before its next re-decision,
	// and N senders can do it at once. Tight bursts keep mistakes
	// packet-sized.
	s.MaxBurst = 4
	return s
}

// attach occupies flow with a new member generation (extending the flow
// space as needed) and fences its counters: deliveries and drops that
// predate this admission — including a predecessor's still-draining
// packets — are excluded from the member's Delivered/FlowDrops.
// The member is not started; callers schedule its first wake.
func (f *Fleet) attach(flow packet.FlowID, s *core.Sender) *Member {
	idx := int(flow)
	for idx >= len(f.Members) {
		f.Members = append(f.Members, nil)
		f.flows = append(f.flows, flowRecord{})
	}
	if f.Members[idx] != nil {
		// Invariant, not a runtime condition: admission picks vacant
		// flows (AllocFlow); occupying a live one is a caller bug.
		panic("fleet: flow already occupied")
	}
	m := NewMember(f.Loop, s, flow, f.q)
	m.notify = f.enqueue
	m.lean = f.Cfg.LeanStats
	m.leanFrom = f.Cfg.LeanRateFrom
	m.canonical = f.Cfg.Canonical
	m.Gen = f.flows[idx].gens
	f.flows[idx].gens++
	m.AdmittedAt = f.Loop.Now()
	m.baseDelivered = f.Recv.Received[flow]
	m.baseDrops = f.rawDrops(flow)
	f.Members[idx] = m
	f.activate(flow)
	return m
}

// activate inserts flow into the sorted active index.
func (f *Fleet) activate(flow packet.FlowID) {
	i := sort.Search(len(f.active), func(i int) bool { return f.active[i] >= flow })
	f.active = append(f.active, 0)
	copy(f.active[i+1:], f.active[i:])
	f.active[i] = flow
}

// deactivate removes flow from the sorted active index.
func (f *Fleet) deactivate(flow packet.FlowID) {
	i := sort.Search(len(f.active), func(i int) bool { return f.active[i] >= flow })
	if i < len(f.active) && f.active[i] == flow {
		f.active = append(f.active[:i], f.active[i+1:]...)
	}
}

// ActiveFlows appends the live member flows in ascending order to buf
// and returns the result; pass a reused buffer to make the snapshot
// allocation-free. Lifecycle ticks iterate this instead of scanning
// every slot ever allocated.
func (f *Fleet) ActiveFlows(buf []packet.FlowID) []packet.FlowID {
	return append(buf, f.active...)
}

// Start schedules every member's first wakeup, staggered over
// Cfg.Stagger. It is called by Run; call it directly only when driving
// the loop manually.
func (f *Fleet) Start() {
	n := int64(len(f.Members))
	for i, m := range f.Members {
		if m == nil {
			continue
		}
		m.Start(time.Duration(int64(f.Cfg.Stagger) * int64(i) / n))
	}
}

// Run starts the members and drives the loop for the given virtual
// duration.
func (f *Fleet) Run(duration time.Duration) {
	f.Start()
	f.Loop.Run(duration)
}

// enqueue marks a member dirty and arms one drain event at the current
// instant; all acknowledgments a member receives within the instant are
// then folded into a single belief update at drain time.
func (f *Fleet) enqueue(m *Member) {
	if m.queued {
		return
	}
	m.queued = true
	f.dirty = append(f.dirty, m)
	if !f.drainArmed {
		f.drainArmed = true
		f.drainTimer.ArmAt(f.Loop.Now())
	}
}

// drain wakes the dirty members in arrival order, or — under
// Cfg.Canonical — in canonical flow order. Sorting makes the
// per-instant wake sequence a pure function of WHICH members woke,
// independent of the event interleaving that dirtied them; that is the
// property a sharded fleet relies on to reproduce the single-loop run
// bit for bit (cross-shard acks arrive through a merge whose arrival
// order differs, but the drained set is identical). The drain event
// always fires after every same-instant enqueue (it is armed by the
// instant's first enqueue, so its sequence number is larger than any
// event armed earlier), so the sort sees the full batch. A wake may
// dirty further members at the same instant; they are drained by a
// freshly armed event, still within the instant.
func (f *Fleet) drain() {
	f.drainArmed = false
	batch := f.dirty
	f.dirty = f.spare[:0]
	if f.Cfg.Canonical {
		sort.Slice(batch, func(i, j int) bool { return batch[i].Flow < batch[j].Flow })
	}
	for _, m := range batch {
		m.queued = false
		m.wake()
	}
	f.spare = batch[:0]
}

// Drops reports total bottleneck drops across all flows and all member
// generations, iterating flows in index order (never a Go map) so
// callers stay deterministic.
func (f *Fleet) Drops() int {
	total := 0
	for i := range f.flows {
		total += f.rawDrops(packet.FlowID(i))
	}
	return total
}

// rawDrops reports the flow's bottleneck drops across all generations.
func (f *Fleet) rawDrops(flow packet.FlowID) int {
	if f.Buffer != nil {
		return f.Buffer.Drops[flow]
	}
	if f.FQ != nil {
		return f.FQ.Drops[flow]
	}
	return 0
}

// Delivered reports packets delivered to the receiver for the flow's
// current member generation. A recycled flow ID never inherits its
// predecessor's counters: deliveries are fenced at admission time
// (Member.baseDelivered), so a predecessor's in-flight packets draining
// after a restart are excluded. Zero when the flow has no live member.
func (f *Fleet) Delivered(flow packet.FlowID) int {
	idx := int(flow)
	if idx >= len(f.Members) || f.Members[idx] == nil {
		return 0
	}
	return f.Recv.Received[flow] - f.Members[idx].baseDelivered
}

// DeliveredTotal reports deliveries for the flow across every
// generation that ever used it (the raw receiver counter).
func (f *Fleet) DeliveredTotal(flow packet.FlowID) int {
	return f.Recv.Received[flow]
}

// FlowDrops reports bottleneck drops for the flow's current member
// generation, fenced at admission like Delivered. Zero when vacant.
func (f *Fleet) FlowDrops(flow packet.FlowID) int {
	idx := int(flow)
	if idx >= len(f.Members) || f.Members[idx] == nil {
		return 0
	}
	return f.rawDrops(flow) - f.Members[idx].baseDrops
}

// InFlight reports how many of the flow's injected packets — across
// all generations — are still inside the bottleneck (neither delivered
// nor dropped). Flow recycling waits for zero so a successor's fenced
// counters can never absorb a predecessor's stragglers.
func (f *Fleet) InFlight(flow packet.FlowID) int64 {
	idx := int(flow)
	if idx >= len(f.flows) {
		return 0
	}
	inj := f.flows[idx].injected
	if idx < len(f.Members) && f.Members[idx] != nil {
		inj += f.Members[idx].Injected
	}
	return inj - int64(f.Recv.Received[flow]) - int64(f.rawDrops(flow))
}

// Live reports the number of occupied member slots, O(1) via the
// active index.
func (f *Fleet) Live() int { return len(f.active) }

// MemberSlots returns the slot-indexed member table (vacant slots are
// nil) — the same read surface the sharded runtime exposes, so
// reductions can run over either.
func (f *Fleet) MemberSlots() []*Member { return f.Members }

// Admit starts a fresh (cold-from-the-prior) member on the given flow
// at now+offset. The flow must be vacant — use AllocFlow to pick one.
func (f *Fleet) Admit(flow packet.FlowID, offset time.Duration) *Member {
	m := f.attach(flow, f.newSender(flow))
	m.Start(offset)
	return m
}

// AdmitSender starts a caller-built sender (for example one warm-
// restored from a lifecycle checkpoint) on the given flow at
// now+offset, wiring it into the fleet's shared cache/table first.
func (f *Fleet) AdmitSender(flow packet.FlowID, s *core.Sender, offset time.Duration) *Member {
	m := f.attach(flow, f.wireSender(s, flow))
	m.Start(offset)
	return m
}

// Retire tears the flow's member down on the live loop: the member
// stops deciding and sending immediately (its wake timer is disarmed
// and late wakes are no-ops), while its in-flight packets drain
// gracefully through the DES loop to the receiver, counted as orphan
// acknowledgments toward the flow's recycling fence. Returns the
// retired member (its series and counters stay readable), or nil if
// the flow had none. Retiring twice is a harmless no-op.
func (f *Fleet) Retire(flow packet.FlowID) *Member {
	idx := int(flow)
	if idx >= len(f.Members) || f.Members[idx] == nil {
		return nil
	}
	m := f.Members[idx]
	m.retired = true
	m.timer.Stop()
	m.acks = m.acks[:0]
	// Freeze the generation's fenced counters: drops and deliveries
	// charged after this instant belong to the flow's next occupant.
	m.GenDrops = f.rawDrops(flow) - m.baseDrops
	m.GenDelivered = f.Recv.Received[flow] - m.baseDelivered
	f.flows[idx].injected += m.Injected
	f.Members[idx] = nil
	f.deactivate(flow)
	return m
}

// AllocFlow returns the lowest flow ID that can host a new member
// without counter ambiguity: a vacant slot whose traffic has fully
// drained. When every vacant slot still has packets in flight it
// extends the flow space instead — a fresh ID is always safe.
func (f *Fleet) AllocFlow() packet.FlowID {
	for i := range f.Members {
		if f.Members[i] == nil && f.InFlight(packet.FlowID(i)) == 0 {
			return packet.FlowID(i)
		}
	}
	return packet.FlowID(len(f.Members))
}

// NextGen reports the generation the next member admitted on the flow
// will receive, so a restart can compute its stagger offset before
// attaching.
func (f *Fleet) NextGen(flow packet.FlowID) uint32 {
	idx := int(flow)
	if idx >= len(f.flows) {
		return 0
	}
	return f.flows[idx].gens
}

// StaggerOffset recomputes the start-time stagger for a mid-run
// admission: a deterministic hash of (flow, generation) spread over the
// configured stagger window, so restarts and arrivals de-synchronize
// from the incumbents instead of landing on one instant.
func (f *Fleet) StaggerOffset(flow packet.FlowID, gen uint32) time.Duration {
	return StaggerOffsetFor(f.Cfg.Stagger, flow, gen)
}

// StaggerOffsetFor is StaggerOffset as a pure function, so the sharded
// runtime computes the identical offset from the identical identity.
func StaggerOffsetFor(stagger time.Duration, flow packet.FlowID, gen uint32) time.Duration {
	if stagger <= 0 {
		return 0
	}
	h := uint64(flow)*0x9e3779b97f4a7c15 + uint64(gen)*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	h ^= h >> 29
	return time.Duration(h % uint64(stagger))
}

// PriorStates returns the enumerated prior every member starts from.
// Callers must treat the slice and its states as read-only.
func (f *Fleet) PriorStates() []model.State { return f.states }

// MemberBeliefConfig returns the resolved belief configuration members
// are built with (pool included), so a checkpoint restore reconstructs
// an identical belief.
func (f *Fleet) MemberBeliefConfig() belief.Config { return f.bcfg }

// MemberPlanConfig returns the resolved planner configuration members
// are built with (pool included).
func (f *Fleet) MemberPlanConfig() planner.Config { return f.pcfg }

// CacheStats reports the shared policy cache's Decide-path hit/miss
// counters summed over stripes (zeros when the cache is disabled).
// Guard fallback probes are counted separately
// (PolicyCache.ProbeHits/ProbeMisses), so this hit rate no longer
// double-counts budget-blown decisions.
func (f *Fleet) CacheStats() (hits, misses int) {
	if f.Caches == nil {
		return 0, 0
	}
	return f.Caches.Stats()
}

// CompiledStats reports, summed over members, how many decisions the
// compiled policy table served (Guard rung 0) versus how many fell
// through to live planning. Zeros when no table is wired.
func (f *Fleet) CompiledStats() (compiled, live int64) {
	for _, m := range f.Members {
		if m == nil {
			continue
		}
		if g := m.Sender.Guard; g != nil {
			compiled += g.CompiledHits
			live += g.Live
		}
	}
	return compiled, live
}

// Resolved returns the configuration with all defaults applied — the
// exact Config a fleet built from c records in Cfg. The sharded
// runtime uses it to size the coupling window from the resolved link
// rate before any partition is built.
func (c Config) Resolved() Config { return c.withDefaults() }

// ResolvedPrior returns the prior the fleet's members would start from
// under this configuration, with all defaults applied — the identity
// the compiled-policy table format records (via policy.HashPrior) so a
// table is never served against a model it was not compiled for.
func (c Config) ResolvedPrior() model.Prior {
	c = c.withDefaults()
	if c.PriorOverride != nil {
		return *c.PriorOverride
	}
	return Prior(c.LinkRate, c.BufferCapBits, c.N)
}

// Member adapts one core.Sender to the shared loop: it injects the
// sender's packets as DES packets, accumulates acknowledgments, and
// keeps the sender's wake timer on the loop. It is the generalization
// of the two-flow coexistence experiments' sender adapter; standalone
// (no fleet) it wakes immediately on every acknowledgment, while under
// a fleet the scheduler batches same-instant acknowledgments into one
// wake.
type Member struct {
	// Flow is the member's flow, also its index in Fleet.Members.
	Flow packet.FlowID
	// Gen is the member's generation on its flow: 0 for the flow's
	// first occupant, incremented each time the flow is recycled by a
	// restart or a fresh admission. (Flow, Gen) is a member identity
	// that survives flow-ID reuse.
	Gen uint32
	// Sender is the ISENDER endpoint.
	Sender *core.Sender
	// SentSeq and AckedSeq are the run series for this flow.
	SentSeq, AckedSeq stats.Series
	// Delay aggregates one-way packet delay in seconds per
	// acknowledgment — O(1) space even across a long run.
	Delay stats.Summary
	// DelayP99 streams the 99th-percentile one-way delay (P² estimator,
	// O(1) space), so a lean fleet still reports a tail percentile
	// without retaining samples.
	DelayP99 *stats.P2
	// LateAcks counts acknowledgments arriving at or after the
	// lean-stats rate window start (Config.LeanRateFrom); a lean
	// fairness sweep computes steady-state rate from this instead of
	// windowing AckedSeq.
	LateAcks int64
	// Utility accumulates Σ bits · exp(-delay/κ) over acknowledged
	// packets: the realized delivery utility of the flow under the
	// member's own discount timescale.
	Utility float64
	// Injected counts packets this member generation put on the wire.
	Injected int64
	// UtilCum is the cumulative Utility sampled at each acknowledgment,
	// so lifecycle experiments can window utility (ramp-up, post-restart
	// ratios) the way AckedSeq windows throughput.
	UtilCum stats.Series
	// SupportN samples the belief's support size at each wake: the
	// posterior-convergence trace. A warm-restored member starts at its
	// predecessor's converged size; a cold one starts at the full prior
	// and pays updates until the posterior collapses.
	SupportN stats.Series
	// AdmittedAt is the virtual time this generation joined the fleet.
	AdmittedAt time.Duration
	// GenDrops and GenDelivered are the generation's fenced bottleneck
	// drops and deliveries, frozen at retirement (zero while live — use
	// Fleet.FlowDrops / Fleet.Delivered for a live member).
	GenDrops, GenDelivered int

	loop    *sim.Loop
	out     elements.Node
	timer   *sim.Timer
	acks    []packet.Ack
	notify  func(*Member)
	queued  bool
	retired bool
	// lean/leanFrom mirror Config.LeanStats/LeanRateFrom: skip the
	// per-packet Series, count late acks instead.
	lean     bool
	leanFrom time.Duration
	// canonical mirrors Config.Canonical: timer and start wakes route
	// through the batched drain (so same-instant wakes fire in flow
	// order) instead of firing inline at their own event.
	canonical bool
	// baseDelivered/baseDrops fence the shared per-flow counters at
	// admission time (see Fleet.Delivered / Fleet.FlowDrops).
	baseDelivered, baseDrops int
}

// Retired reports whether the member has been torn down; a retired
// member never decides or sends again.
func (m *Member) Retired() bool { return m.retired }

// SetDegraded pins (or releases) the member's decision path to the
// Guard degradation ladder — compiled table when wired, else cache →
// last-safe → sleep — without live planning; see planner.Guard.Degraded.
// A member serving only through a bare cache stripe gains a synchronous
// zero-budget Guard over that stripe the first time it is degraded;
// undegraded, such a Guard decides identically to the bare stripe (same
// PolicyCache.Decide call), so installing it never perturbs a run.
func (m *Member) SetDegraded(on bool) {
	g := m.Sender.Guard
	if g == nil {
		if !on {
			return
		}
		g = planner.NewGuard(0, m.Sender.Cache)
		m.Sender.Guard = g
		m.Sender.Cache = nil
	}
	g.Degraded = on
}

// DegradedServed reports how many of the member's decisions were
// served while its Guard was degraded (zero when never degraded).
func (m *Member) DegradedServed() int64 {
	if g := m.Sender.Guard; g != nil {
		return g.DegradedServed
	}
	return 0
}

// NewMember returns a standalone member (immediate wake per
// acknowledgment) sending into out. Fleet members are built by New,
// which routes acknowledgments through the batching scheduler instead.
func NewMember(loop *sim.Loop, s *core.Sender, flow packet.FlowID, out elements.Node) *Member {
	m := &Member{Flow: flow, Sender: s, loop: loop, out: out}
	// Series are named by flow number, not FlowID.String(): fleet flows
	// are dense indexes, and the well-known names ("cross", "other")
	// would mislabel foreground members 1 and 2.
	m.SentSeq.Name = fmt.Sprintf("flow%d sent", uint32(flow))
	m.AckedSeq.Name = fmt.Sprintf("flow%d acked", uint32(flow))
	m.DelayP99 = stats.NewP2(0.99)
	m.timer = sim.NewTimer(loop, m.epochWake)
	return m
}

// requestWake routes an acknowledgment wake through the fleet
// scheduler when one is attached (same-instant wakes are batched into
// one drain), and wakes immediately when standalone.
func (m *Member) requestWake() {
	if m.notify != nil {
		m.notify(m)
		return
	}
	m.wake()
}

// epochWake fires a timer or start-offset wake. Under canonical
// scheduling it routes through the batched drain like an
// acknowledgment wake, so every same-instant wake — whatever its
// trigger — drains in flow order; otherwise it fires inline at its own
// event, the historical single-loop behavior.
func (m *Member) epochWake() {
	if m.canonical {
		m.requestWake()
		return
	}
	m.wake()
}

// Start schedules the member's first wakeup after the given offset.
func (m *Member) Start(offset time.Duration) {
	m.loop.After(offset, m.epochWake)
}

// OnAck records an acknowledgment and requests a wake — immediate when
// standalone, batched per instant under a fleet scheduler.
func (m *Member) OnAck(a packet.Ack) {
	now := m.loop.Now()
	delay := a.Delay()
	m.Delay.Add(delay.Seconds())
	m.DelayP99.Add(delay.Seconds())
	m.Utility += float64(packet.DefaultSizeBits) * m.Sender.Plan.Util.Discount(delay)
	if m.lean {
		if now >= m.leanFrom {
			m.LateAcks++
		}
	} else {
		m.AckedSeq.Add(now, float64(a.Seq))
		m.UtilCum.Add(now, m.Utility)
	}
	m.acks = append(m.acks, a)
	m.requestWake()
}

func (m *Member) wake() {
	if m.retired {
		// A wake already scheduled when the member was torn down (a
		// Start offset, a queued drain, the disarmed timer's last
		// event) lands here harmlessly instead of re-arming anything.
		return
	}
	now := m.loop.Now()
	acks := m.acks
	m.acks = m.acks[:0]
	act := m.Sender.Wake(now, acks)
	if !m.lean {
		// Support() is cached after the wake's own decision, so this
		// read costs no recomputation.
		m.SupportN.Add(now, float64(len(m.Sender.Belief.Support())))
	}
	for _, snd := range act.Sends {
		if !m.lean {
			m.SentSeq.Add(now, float64(snd.Seq))
		}
		m.Injected++
		m.out.Receive(packet.Packet{
			Flow:      m.Flow,
			Seq:       snd.Seq,
			SizeBytes: packet.DefaultSizeBytes,
			SentAt:    now,
		})
	}
	if act.WakeAt <= now {
		act.WakeAt = now + 10*time.Millisecond
	}
	m.timer.ArmAt(act.WakeAt)
}
