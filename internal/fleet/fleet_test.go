package fleet

import (
	"reflect"
	"testing"
	"time"

	"modelcc/internal/packet"
	"modelcc/internal/units"
)

// snapshot reduces a finished fleet to a deterministic, deeply
// comparable value: per-member sent/acked series and counters, bottleneck
// drops, and cache counters.
type snapshot struct {
	Sent, Acked  []int64
	Delivered    []int
	SentPts      []int
	AckedPts     []int
	Drops        int
	Hits, Misses int
}

func snap(f *Fleet) snapshot {
	var s snapshot
	for _, m := range f.Members {
		s.Sent = append(s.Sent, m.Sender.Sent)
		s.Acked = append(s.Acked, m.Sender.Acked)
		s.Delivered = append(s.Delivered, f.Delivered(m.Flow))
		s.SentPts = append(s.SentPts, m.SentSeq.Len())
		s.AckedPts = append(s.AckedPts, m.AckedSeq.Len())
	}
	s.Drops = f.Drops()
	s.Hits, s.Misses = f.CacheStats()
	return s
}

func TestFleetProgressAndSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	fl := New(Config{N: 4, Seed: 7})
	fl.Run(60 * time.Second)

	total := 0
	for _, m := range fl.Members {
		if m.Sender.Sent == 0 {
			t.Errorf("member %d never sent", m.Flow)
		}
		total += fl.Delivered(m.Flow)
	}
	// The 4-sender link carries 2 pkt/s; after convergence the fleet
	// should be using most of it.
	if total < 60 {
		t.Errorf("fleet delivered only %d packets over 60 s on a 2 pkt/s link", total)
	}
	if hits, misses := fl.CacheStats(); hits+misses == 0 {
		t.Error("shared policy cache saw no lookups")
	}
}

// TestFleetWorkerDeterminism is the PR's core guarantee: the same seed
// produces bit-identical fleet results at any rollout pool width,
// extending the serial/parallel equivalence of the engine layers to a
// whole N-sender run (shared pool, shared cache, batching scheduler and
// all).
func TestFleetWorkerDeterminism(t *testing.T) {
	// Deliberately not skipped in -short mode: this is the fleet's key
	// concurrency property and the run is kept small enough for the CI
	// race job.
	dur := 30 * time.Second
	widths := []int{0, 3, 8}
	if testing.Short() {
		dur = 15 * time.Second
		widths = []int{0, 3}
	}
	run := func(workers int) snapshot {
		fl := New(Config{N: 16, Seed: 11, Workers: workers})
		fl.Run(dur)
		return snap(fl)
	}
	base := run(1)
	for _, w := range widths {
		if got := run(w); !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d diverged from serial:\nserial: %+v\ngot:    %+v", w, base, got)
		}
	}
}

// TestFleetAckBatching: acknowledgments landing at one instant must be
// folded into one wake. The member's acked-series grows per ack while
// the sender's wake count does not.
func TestFleetAckBatching(t *testing.T) {
	fl := New(Config{N: 2, Seed: 1})
	m := fl.Members[0]
	wakesBefore := m.Sender.Wakes
	// Deliver three same-instant acks through the scheduler path.
	for i := int64(0); i < 3; i++ {
		m.OnAck(packet.Ack{Flow: m.Flow, Seq: i, ReceivedAt: fl.Loop.Now()})
	}
	if m.Sender.Wakes != wakesBefore {
		t.Fatalf("wake ran before the batching drain: %d -> %d", wakesBefore, m.Sender.Wakes)
	}
	fl.Loop.Step() // the armed drain event
	if got := m.Sender.Wakes - wakesBefore; got != 1 {
		t.Errorf("3 same-instant acks caused %d wakes, want 1", got)
	}
	if m.Sender.Acked != 3 {
		t.Errorf("sender consumed %d acks, want 3", m.Sender.Acked)
	}
}

// TestFleetStagger: members must not all take their first decision at
// the same instant.
func TestFleetStagger(t *testing.T) {
	fl := New(Config{N: 8, Seed: 1})
	fl.Start()
	firsts := map[time.Duration]bool{}
	for fl.Loop.Now() < 5*time.Second {
		if !fl.Loop.Step() {
			break
		}
	}
	for _, m := range fl.Members {
		if m.SentSeq.Len() > 0 {
			firsts[m.SentSeq.Pts[0].T] = true
		}
	}
	if len(firsts) < 2 {
		t.Errorf("all first sends at one instant (%d distinct times); stagger is not spreading epochs", len(firsts))
	}
}

// TestFleetFairQueueFairness: under the DRR bottleneck no sender can be
// locked out, whatever the FIFO dynamics do — the structural guarantee
// the fairness sweep measures against.
func TestFleetFairQueueFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	fl := New(Config{N: 16, Seed: 7, FairQueue: true})
	fl.Run(60 * time.Second)
	min, max := 1<<30, 0
	for _, m := range fl.Members {
		d := fl.Delivered(m.Flow)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	// Fair share is 30 packets each over the minute.
	if min == 0 {
		t.Error("a sender starved completely under DRR fair queueing")
	}
	if min*4 < max {
		t.Errorf("DRR split grossly unfair: min=%d max=%d", min, max)
	}
}

func TestFleetSharedPoolIsUsed(t *testing.T) {
	fl := New(Config{N: 2, Seed: 1, Workers: 3})
	if fl.Pool.Workers() != 3 {
		t.Fatalf("fleet pool width = %d, want 3", fl.Pool.Workers())
	}
	fl.Run(5 * time.Second)
	// Every member's belief and plan must point at the fleet pool.
	for _, m := range fl.Members {
		if m.Sender.Plan.Pool != fl.Pool {
			t.Error("member plan does not share the fleet pool")
		}
	}
}

func TestPriorScaling(t *testing.T) {
	small := Prior(12000, 96000, 2)
	if small.CrossPktBits != 0 {
		t.Errorf("N=2 prior should model per-packet cross traffic, got chunk %d", small.CrossPktBits)
	}
	big := Prior(256*6000, 4*12000*256, 256)
	if big.CrossPktBits != packet.DefaultSizeBits*64 {
		t.Errorf("N=256 chunk = %d bits, want %d", big.CrossPktBits, packet.DefaultSizeBits*64)
	}
	states, _ := big.Enumerate()
	if len(states) == 0 {
		t.Fatal("empty prior")
	}
	for _, s := range states {
		if s.SwitchTick != 5*time.Second {
			t.Errorf("fleet prior switch tick = %v, want 5s", s.SwitchTick)
		}
		if s.P.CrossRate <= 0 || s.P.CrossRate >= s.P.LinkRate {
			t.Errorf("cross rate %v outside (0, link %v)", s.P.CrossRate, s.P.LinkRate)
		}
	}
	// The CrossFrac grid must stay a real grid that brackets the fair
	// share (N-1)/N at every sweep size — a constant cap on the upper
	// bound once inverted the range at N >= 81, collapsing it to one
	// point below fair share.
	for _, n := range []int{2, 4, 16, 64, 100, 256, 1024} {
		pr := Prior(units.BitRate(6000*n), 4*packet.DefaultSizeBits*int64(n), n)
		vals := pr.CrossFrac.Values()
		if len(vals) != 4 {
			t.Errorf("N=%d: CrossFrac grid has %d points, want 4", n, len(vals))
			continue
		}
		fair := 1 - 1/float64(n)
		if vals[0] >= fair || vals[len(vals)-1] <= fair {
			t.Errorf("N=%d: grid [%v, %v] does not bracket fair share %v", n, vals[0], vals[len(vals)-1], fair)
		}
		if vals[len(vals)-1] >= 1 {
			t.Errorf("N=%d: CrossFrac upper bound %v >= 1", n, vals[len(vals)-1])
		}
	}
}
