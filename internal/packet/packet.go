// Package packet defines the packet type shared by the discrete-event
// simulator, the inference model, and the transports.
//
// The paper assumes the sender always transmits packets of uniform length
// (§3.2); the default size is the 1500-byte MTU used throughout the
// evaluation, so one packet is 12,000 bits and the Figure 2 link carries
// exactly one packet per second.
package packet

import (
	"fmt"
	"time"
)

// DefaultSizeBytes is the uniform packet size assumed by the paper.
const DefaultSizeBytes = 1500

// DefaultSizeBits is DefaultSizeBytes expressed in bits.
const DefaultSizeBits = DefaultSizeBytes * 8

// FlowID identifies the originating flow of a packet. The experiments use
// a small number of well-known flows; the fleet experiments
// (internal/fleet) assign one FlowID per sender, so the type is wide
// enough for thousands of concurrent flows in one process.
type FlowID uint32

// Well-known flows used by the experiments.
const (
	// FlowSelf is the ISENDER's own data flow.
	FlowSelf FlowID = iota
	// FlowCross is the PINGER's cross traffic.
	FlowCross
	// FlowOther is a second foreground flow (used by the coexistence
	// experiments, where two ISENDERs or an ISENDER and a TCP share a
	// bottleneck).
	FlowOther
)

// String implements fmt.Stringer.
func (f FlowID) String() string {
	switch f {
	case FlowSelf:
		return "self"
	case FlowCross:
		return "cross"
	case FlowOther:
		return "other"
	default:
		return fmt.Sprintf("flow(%d)", uint32(f))
	}
}

// Packet is a unit of data moving through a simulated or emulated network.
// Packets are plain values: elements copy them freely, and the inference
// model clones slices of them when a hypothesis forks.
type Packet struct {
	// Flow identifies the sender.
	Flow FlowID
	// Seq is the sequence number within the flow, starting at 0.
	Seq int64
	// SizeBytes is the payload size in bytes.
	SizeBytes int
	// SentAt is the virtual time the origin emitted the packet.
	SentAt time.Duration
}

// Bits reports the packet size in bits.
func (p Packet) Bits() int64 { return int64(p.SizeBytes) * 8 }

// String implements fmt.Stringer.
func (p Packet) String() string {
	return fmt.Sprintf("%s#%d(%dB@%v)", p.Flow, p.Seq, p.SizeBytes, p.SentAt)
}

// New returns a packet of the default size for the given flow and
// sequence number, stamped with the given send time.
func New(flow FlowID, seq int64, sentAt time.Duration) Packet {
	return Packet{Flow: flow, Seq: seq, SizeBytes: DefaultSizeBytes, SentAt: sentAt}
}

// Ack is the receiver-to-sender notification the paper's RECEIVER conveys:
// the sequence number and the time the packet arrived (§3.4). The return
// path is modeled as lossless and instant in the paper's preliminary
// experiments; the UDP transport carries Acks for real.
type Ack struct {
	// Flow identifies which flow's packet was received.
	Flow FlowID
	// Seq is the received packet's sequence number.
	Seq int64
	// ReceivedAt is the virtual time of arrival at the receiver.
	ReceivedAt time.Duration
	// SentAt echoes the packet's send timestamp so the sender can
	// compute a one-way delay sample without keeping per-packet state.
	SentAt time.Duration
}

// String implements fmt.Stringer.
func (a Ack) String() string {
	return fmt.Sprintf("ack %s#%d rcv=%v", a.Flow, a.Seq, a.ReceivedAt)
}

// Delay reports the packet's one-way delay as observed by the receiver.
func (a Ack) Delay() time.Duration { return a.ReceivedAt - a.SentAt }
