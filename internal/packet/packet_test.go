package packet

import (
	"testing"
	"time"
)

func TestPacketBits(t *testing.T) {
	p := New(FlowSelf, 0, 0)
	if p.SizeBytes != DefaultSizeBytes {
		t.Fatalf("default size = %d, want %d", p.SizeBytes, DefaultSizeBytes)
	}
	if p.Bits() != DefaultSizeBits {
		t.Fatalf("Bits() = %d, want %d", p.Bits(), DefaultSizeBits)
	}
	if DefaultSizeBits != 12000 {
		t.Fatalf("paper invariant violated: default packet is %d bits, want 12000", DefaultSizeBits)
	}
}

func TestFlowString(t *testing.T) {
	tests := []struct {
		f    FlowID
		want string
	}{
		{FlowSelf, "self"},
		{FlowCross, "cross"},
		{FlowOther, "other"},
		{FlowID(9), "flow(9)"},
	}
	for _, tt := range tests {
		if got := tt.f.String(); got != tt.want {
			t.Errorf("FlowID(%d).String() = %q, want %q", tt.f, got, tt.want)
		}
	}
}

func TestAckDelay(t *testing.T) {
	a := Ack{Flow: FlowSelf, Seq: 3, SentAt: time.Second, ReceivedAt: 3 * time.Second}
	if got := a.Delay(); got != 2*time.Second {
		t.Errorf("Delay() = %v, want 2s", got)
	}
}

func TestStringers(t *testing.T) {
	p := New(FlowCross, 7, 2*time.Second)
	if got := p.String(); got != "cross#7(1500B@2s)" {
		t.Errorf("Packet.String() = %q", got)
	}
	a := Ack{Flow: FlowSelf, Seq: 1, ReceivedAt: time.Second}
	if got := a.String(); got != "ack self#1 rcv=1s" {
		t.Errorf("Ack.String() = %q", got)
	}
}
