// Package tcp implements loss-based TCP congestion-control baselines
// (Tahoe, Reno, NewReno) over the discrete-event element substrate.
//
// The paper's Figure 1 motivates the whole architecture by showing what a
// loss-based sender does to a deeply buffered cellular link: it fills the
// buffer until round-trip times reach tens of seconds. These senders
// reproduce that behaviour, serve as the comparison baseline in the
// benchmark harness, and play the "network elements performing TCP" role
// in the §3.5 coexistence experiment.
//
// The implementation follows the classic algorithms (Jacobson 1988, RFC
// 5681, RFC 6582 for NewReno's partial-ack handling, RFC 6298 for RTO
// estimation) with an infinite-backlog application, which is exactly the
// "TCP download" of Figure 1.
package tcp

import (
	"time"

	"modelcc/internal/elements"
	"modelcc/internal/packet"
	"modelcc/internal/sim"
	"modelcc/internal/stats"
)

// Variant selects the congestion-control flavour.
type Variant uint8

// Supported variants.
const (
	// Tahoe: slow start, congestion avoidance, fast retransmit; any
	// loss collapses cwnd to 1.
	Tahoe Variant = iota
	// Reno adds fast recovery.
	Reno
	// NewReno adds partial-ack handling in fast recovery.
	NewReno
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Tahoe:
		return "tahoe"
	case Reno:
		return "reno"
	case NewReno:
		return "newreno"
	default:
		return "tcp(?)"
	}
}

// Config tunes a Sender.
type Config struct {
	// Variant selects the algorithm (default Reno).
	Variant Variant
	// MSS is the segment size in bytes (default 1500).
	MSS int
	// InitialCwnd is the initial window in segments (default 2).
	InitialCwnd float64
	// InitialSSThresh is the initial slow-start threshold in segments
	// (default 64).
	InitialSSThresh float64
	// MinRTO floors the retransmission timeout (default 200 ms — the
	// common simulator setting; RFC 6298's 1 s floor just slows the
	// figures down).
	MinRTO time.Duration
	// MaxCwnd caps the window in segments; 0 means unlimited.
	MaxCwnd float64
}

func (c Config) withDefaults() Config {
	if c.MSS <= 0 {
		c.MSS = packet.DefaultSizeBytes
	}
	if c.InitialCwnd <= 0 {
		c.InitialCwnd = 2
	}
	if c.InitialSSThresh <= 0 {
		c.InitialSSThresh = 64
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 200 * time.Millisecond
	}
	return c
}

// Sender is a TCP sender with an infinite backlog.
type Sender struct {
	loop *sim.Loop
	out  elements.Node
	flow packet.FlowID
	cfg  Config

	cwnd       float64
	ssthresh   float64
	nextSeq    int64 // next never-sent sequence
	sndUna     int64 // lowest unacknowledged sequence
	dupAcks    int
	inRecovery bool
	recover    int64 // NewReno: highest seq sent when loss was detected

	srtt, rttvar time.Duration
	rto          time.Duration
	hasRTT       bool
	rtoTimer     *sim.Timer
	backoff      int

	sentAt  map[int64]time.Duration
	retxSeq map[int64]bool

	// RTT records one sample per acceptable acknowledgment — the
	// series Figure 1 plots.
	RTT stats.Series
	// Cwnd records the window after every change, in segments.
	Cwnd stats.Series
	// Sent, Retransmits, Timeouts, FastRetransmits count events.
	Sent            int64
	Retransmits     int64
	Timeouts        int64
	FastRetransmits int64
}

// NewSender returns a TCP sender that emits segments of the given flow
// into out. Call Start to begin transmitting.
func NewSender(loop *sim.Loop, out elements.Node, flow packet.FlowID, cfg Config) *Sender {
	cfg = cfg.withDefaults()
	s := &Sender{
		loop:     loop,
		out:      out,
		flow:     flow,
		cfg:      cfg,
		cwnd:     cfg.InitialCwnd,
		ssthresh: cfg.InitialSSThresh,
		rto:      time.Second,
		sentAt:   make(map[int64]time.Duration),
		retxSeq:  make(map[int64]bool),
	}
	s.RTT.Name = "rtt"
	s.Cwnd.Name = "cwnd"
	s.rtoTimer = sim.NewTimer(loop, s.onRTO)
	return s
}

// Flow reports the sender's flow ID.
func (s *Sender) Flow() packet.FlowID { return s.flow }

// SndUna reports the lowest unacknowledged sequence number (delivered
// in-order bytes = SndUna segments).
func (s *Sender) SndUna() int64 { return s.sndUna }

// Start transmits the initial window.
func (s *Sender) Start() { s.fill() }

// inflight reports outstanding segments.
func (s *Sender) inflight() int64 { return s.nextSeq - s.sndUna }

// fill transmits new segments while the window allows.
func (s *Sender) fill() {
	for float64(s.inflight()) < s.cwnd {
		if s.cfg.MaxCwnd > 0 && float64(s.inflight()) >= s.cfg.MaxCwnd {
			break
		}
		s.transmit(s.nextSeq, false)
		s.nextSeq++
	}
}

// transmit emits one segment and manages the RTO timer.
func (s *Sender) transmit(seq int64, isRetx bool) {
	p := packet.Packet{Flow: s.flow, Seq: seq, SizeBytes: s.cfg.MSS, SentAt: s.loop.Now()}
	if isRetx {
		s.retxSeq[seq] = true
		s.Retransmits++
	} else {
		s.sentAt[seq] = s.loop.Now()
	}
	s.Sent++
	if !s.rtoTimer.Armed() {
		s.rtoTimer.Arm(s.rto)
	}
	s.out.Receive(p)
}

// OnAck processes a cumulative acknowledgment: ackNext is the receiver's
// next expected sequence number; echoSentAt echoes the send timestamp of
// the segment that triggered the acknowledgment.
func (s *Sender) OnAck(ackNext int64, echoSentAt time.Duration) {
	now := s.loop.Now()

	// RTT sampling with Karn's rule: skip samples from retransmitted
	// segments (their echo is ambiguous).
	if trig := ackNext - 1; trig >= 0 && !s.retxSeq[trig] {
		s.sampleRTT(now - echoSentAt)
	} else if !s.retxSeq[ackNext] {
		// Duplicate acks echo the out-of-order segment's timestamp;
		// still a valid one-way-plus-return sample when that segment
		// was not a retransmission.
		s.sampleRTT(now - echoSentAt)
	}

	switch {
	case ackNext > s.sndUna:
		s.onNewAck(ackNext)
	case ackNext == s.sndUna:
		s.onDupAck()
	}
	s.fill()
}

func (s *Sender) onNewAck(ackNext int64) {
	acked := ackNext - s.sndUna
	for seq := s.sndUna; seq < ackNext; seq++ {
		delete(s.sentAt, seq)
		delete(s.retxSeq, seq)
	}
	s.sndUna = ackNext
	s.dupAcks = 0
	s.backoff = 0

	if s.inRecovery {
		if s.cfg.Variant == NewReno && ackNext <= s.recover {
			// Partial ack: retransmit the next hole, deflate by the
			// amount acked, stay in recovery (RFC 6582).
			s.transmit(s.sndUna, true)
			s.cwnd -= float64(acked)
			if s.cwnd < 1 {
				s.cwnd = 1
			}
			s.cwnd++ // for the retransmitted segment
			s.rtoTimer.Arm(s.rto)
			s.logCwnd()
			return
		}
		// Full ack (or plain Reno): leave recovery, deflate.
		s.inRecovery = false
		s.cwnd = s.ssthresh
	} else if s.cwnd < s.ssthresh {
		s.cwnd += float64(acked) // slow start
	} else {
		s.cwnd += float64(acked) / s.cwnd // congestion avoidance
	}
	if s.cfg.MaxCwnd > 0 && s.cwnd > s.cfg.MaxCwnd {
		s.cwnd = s.cfg.MaxCwnd
	}
	s.logCwnd()

	if s.inflight() > 0 {
		s.rtoTimer.Arm(s.rto)
	} else {
		s.rtoTimer.Stop()
	}
}

func (s *Sender) onDupAck() {
	s.dupAcks++
	if s.inRecovery {
		if s.cfg.Variant != Tahoe {
			s.cwnd++ // inflate per extra dup ack
			s.logCwnd()
		}
		return
	}
	if s.dupAcks < 3 {
		return
	}
	// Fast retransmit.
	s.FastRetransmits++
	s.ssthresh = maxF(float64(s.inflight())/2, 2)
	s.recover = s.nextSeq - 1
	s.transmit(s.sndUna, true)
	if s.cfg.Variant == Tahoe {
		s.cwnd = 1
		s.dupAcks = 0
	} else {
		s.inRecovery = true
		s.cwnd = s.ssthresh + 3
	}
	s.rtoTimer.Arm(s.rto)
	s.logCwnd()
}

func (s *Sender) onRTO() {
	if s.inflight() == 0 {
		return
	}
	s.Timeouts++
	s.ssthresh = maxF(float64(s.inflight())/2, 2)
	s.cwnd = 1
	s.dupAcks = 0
	s.inRecovery = false
	s.backoff++
	if s.backoff > 6 {
		s.backoff = 6
	}
	s.rto *= 2
	if s.rto > 60*time.Second {
		s.rto = 60 * time.Second
	}
	s.transmit(s.sndUna, true)
	s.rtoTimer.Arm(s.rto)
	s.logCwnd()
}

// sampleRTT updates srtt/rttvar/rto per RFC 6298 and records the sample.
func (s *Sender) sampleRTT(rtt time.Duration) {
	if rtt < 0 {
		return
	}
	if !s.hasRTT {
		s.srtt = rtt
		s.rttvar = rtt / 2
		s.hasRTT = true
	} else {
		dev := s.srtt - rtt
		if dev < 0 {
			dev = -dev
		}
		s.rttvar = (3*s.rttvar + dev) / 4
		s.srtt = (7*s.srtt + rtt) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.cfg.MinRTO {
		s.rto = s.cfg.MinRTO
	}
	s.RTT.Add(s.loop.Now(), rtt.Seconds())
}

func (s *Sender) logCwnd() {
	s.Cwnd.Add(s.loop.Now(), s.cwnd)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
