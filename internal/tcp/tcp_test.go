package tcp

import (
	"testing"
	"time"

	"modelcc/internal/elements"
	"modelcc/internal/packet"
	"modelcc/internal/sim"
)

// pipe builds sender -> [optional loss] -> bottleneck -> receiver ->
// (delayed) acks -> sender and returns the pieces.
func pipe(t *testing.T, seed int64, lossP float64, capBits int64, rate float64, variant Variant) (*sim.Loop, *Sender, *Receiver) {
	t.Helper()
	loop := sim.New(seed)
	var snd *Sender
	recv := NewReceiver(loop, func(ackNext int64, echoSentAt int64) {
		loop.After(10*time.Millisecond, func() {
			snd.OnAck(ackNext, time.Duration(echoSentAt))
		})
	})
	var entry elements.Node
	buf, _ := elements.NewBottleneck(loop, capBits, 1_000_000, recv) // 1 Mbit/s
	_ = rate
	if lossP > 0 {
		entry = elements.NewLoss(loop, lossP, buf)
	} else {
		entry = buf
	}
	snd = NewSender(loop, entry, packet.FlowSelf, Config{Variant: variant})
	return loop, snd, recv
}

func TestSlowStartGrowsWindow(t *testing.T) {
	loop, snd, recv := pipe(t, 1, 0, 1<<24, 0, Reno)
	loop.After(0, snd.Start)
	loop.Run(2 * time.Second)
	if recv.Received == 0 {
		t.Fatal("nothing delivered")
	}
	// After 2 s on a clean 1 Mbit/s link with ~34 ms RTT, slow start
	// must have grown cwnd well past the initial 2.
	if last, ok := snd.Cwnd.Last(); !ok || last.V < 8 {
		t.Errorf("cwnd after 2s = %+v, want > 8 (slow start)", last)
	}
	if snd.Retransmits != 0 {
		t.Errorf("clean link produced %d retransmits", snd.Retransmits)
	}
}

func TestInOrderDelivery(t *testing.T) {
	loop, snd, recv := pipe(t, 2, 0, 1<<24, 0, Reno)
	loop.After(0, snd.Start)
	loop.Run(5 * time.Second)
	if recv.NextExpected() < 100 {
		t.Errorf("delivered only %d segments in 5s on a clean 1 Mbit/s link", recv.NextExpected())
	}
	if recv.NextExpected() != recv.Received {
		t.Errorf("out-of-order artifacts on in-order link: expected %d received %d",
			recv.NextExpected(), recv.Received)
	}
}

func TestFastRetransmitRecoversFromLoss(t *testing.T) {
	loop, snd, recv := pipe(t, 3, 0.02, 1<<24, 0, Reno)
	loop.After(0, snd.Start)
	loop.Run(30 * time.Second)
	if snd.FastRetransmits == 0 {
		t.Error("2% loss for 30s never triggered fast retransmit")
	}
	if recv.NextExpected() < 500 {
		t.Errorf("goodput too low under 2%% loss: %d segments", recv.NextExpected())
	}
}

func TestTimeoutRecovery(t *testing.T) {
	// A tiny buffer plus heavy loss forces RTO events; the connection
	// must keep making progress.
	loop, snd, recv := pipe(t, 4, 0.3, 8*12000, 0, Reno)
	loop.After(0, snd.Start)
	loop.Run(60 * time.Second)
	if snd.Timeouts == 0 {
		t.Error("30% loss never caused an RTO")
	}
	if recv.NextExpected() == 0 {
		t.Error("connection made no progress despite retransmissions")
	}
}

func TestTahoeCollapsesToOne(t *testing.T) {
	loop := sim.New(5)
	var snd *Sender
	recv := NewReceiver(loop, func(ackNext int64, echoSentAt int64) {
		snd.OnAck(ackNext, time.Duration(echoSentAt))
	})
	buf, _ := elements.NewBottleneck(loop, 1<<20, 1_000_000, recv)
	loss := elements.NewLoss(loop, 0.05, buf)
	snd = NewSender(loop, loss, packet.FlowSelf, Config{Variant: Tahoe})
	loop.After(0, snd.Start)
	loop.Run(20 * time.Second)

	if snd.FastRetransmits == 0 {
		t.Fatal("no fast retransmit under 5% loss")
	}
	// Tahoe must have hit cwnd == 1 after a loss event.
	sawOne := false
	for _, p := range snd.Cwnd.Pts {
		if p.V == 1 {
			sawOne = true
			break
		}
	}
	if !sawOne {
		t.Error("Tahoe never collapsed cwnd to 1")
	}
}

func TestRenoVsNewRenoUnderBurstLoss(t *testing.T) {
	// NewReno's partial-ack handling should never do worse than Reno
	// under multi-loss windows (jitter-induced reordering plus loss).
	run := func(v Variant) int64 {
		loop, snd, recv := pipe(t, 6, 0.08, 1<<24, 0, v)
		loop.After(0, snd.Start)
		loop.Run(60 * time.Second)
		_ = snd
		return recv.NextExpected()
	}
	reno := run(Reno)
	newreno := run(NewReno)
	if newreno*2 < reno {
		t.Errorf("NewReno (%d) dramatically worse than Reno (%d)", newreno, reno)
	}
}

func TestRTTSamplingKarn(t *testing.T) {
	loop, snd, _ := pipe(t, 7, 0, 1<<24, 0, Reno)
	loop.After(0, snd.Start)
	loop.Run(2 * time.Second)
	if snd.RTT.Len() == 0 {
		t.Fatal("no RTT samples")
	}
	// All samples must be at least the 20 ms ack path plus transmission.
	if min := snd.RTT.Min(); min < 0.010 {
		t.Errorf("implausible RTT sample %vs", min)
	}
}

func TestReceiverCumulativeAcks(t *testing.T) {
	loop := sim.New(8)
	var acks []int64
	r := NewReceiver(loop, func(ackNext int64, _ int64) { acks = append(acks, ackNext) })
	at := func(seq int64) packet.Packet {
		return packet.Packet{Flow: packet.FlowSelf, Seq: seq, SizeBytes: 1500}
	}
	r.Receive(at(0)) // ack 1
	r.Receive(at(2)) // hole: dup ack 1
	r.Receive(at(3)) // still 1
	r.Receive(at(1)) // fills hole: ack 4
	want := []int64{1, 1, 1, 4}
	if len(acks) != len(want) {
		t.Fatalf("acks = %v, want %v", acks, want)
	}
	for i := range want {
		if acks[i] != want[i] {
			t.Fatalf("acks = %v, want %v", acks, want)
		}
	}
	// Redundant and duplicate segments.
	r.Receive(at(1))
	if r.Duplicates != 1 {
		t.Errorf("Duplicates = %d, want 1", r.Duplicates)
	}
}

func TestVariantString(t *testing.T) {
	if Tahoe.String() != "tahoe" || Reno.String() != "reno" || NewReno.String() != "newreno" {
		t.Error("variant names wrong")
	}
}
