package tcp

import (
	"modelcc/internal/packet"
	"modelcc/internal/sim"
)

// Receiver is a TCP receiver generating cumulative acknowledgments: for
// every arriving segment it reports the next expected sequence number
// (so out-of-order arrivals produce duplicate acks) and echoes the
// arriving segment's send timestamp for RTT sampling.
type Receiver struct {
	loop     *sim.Loop
	expected int64
	buffered map[int64]bool
	// OnAck conveys (nextExpected, echoed send time) to the sender;
	// wire it through a Delay element (or directly) to model the
	// return path.
	OnAck func(ackNext int64, echoSentAt int64)

	// Received counts segments accepted (including out of order);
	// Duplicates counts segments already seen.
	Received   int64
	Duplicates int64
}

// NewReceiver returns a TCP receiver invoking onAck per arrival. The
// echoed send time is passed as int64 nanoseconds to keep the callback
// signature simple for wiring through closures.
func NewReceiver(loop *sim.Loop, onAck func(ackNext int64, echoSentAt int64)) *Receiver {
	return &Receiver{loop: loop, buffered: make(map[int64]bool), OnAck: onAck}
}

// NextExpected reports the receiver's next in-order sequence number.
func (r *Receiver) NextExpected() int64 { return r.expected }

// Receive implements elements.Node.
func (r *Receiver) Receive(p packet.Packet) {
	switch {
	case p.Seq == r.expected:
		r.Received++
		r.expected++
		for r.buffered[r.expected] {
			delete(r.buffered, r.expected)
			r.expected++
		}
	case p.Seq > r.expected:
		if r.buffered[p.Seq] {
			r.Duplicates++
		} else {
			r.buffered[p.Seq] = true
			r.Received++
		}
	default:
		r.Duplicates++
	}
	if r.OnAck != nil {
		r.OnAck(r.expected, int64(p.SentAt))
	}
}
