// Package rollout is the shared execution engine under the belief layer
// and the planner: both spend essentially all of their time advancing
// independent hypotheses ("rollouts"), so this package provides the one
// mechanism they share — a bounded worker pool that shards an index
// space across workers, with a per-worker scratch arena of reusable
// model buffers so the inner loops allocate nothing.
//
// Determinism is load-bearing. Workers only ever write results into
// per-index slots of caller-presized slices, and every reduction the
// callers perform walks those slots in index order; randomness, where a
// task needs it (the particle filter), comes from a per-index SplitMix64
// stream derived from the caller's parent seed. Together these make the
// output bit-identical for any worker count, including 1 — which is what
// the serial/parallel equivalence tests assert.
package rollout

import (
	"runtime"
	"sync"

	"modelcc/internal/model"
)

// Scratch is one worker's private arena: reusable buffers the hot loops
// clone and simulate into instead of allocating. Slices handed back to
// the caller must be copied out or consumed before the next use of the
// same scratch index.
type Scratch struct {
	// State and Base are reusable clone targets.
	State, Base model.State
	// Events is a reusable event buffer.
	Events []model.Event
	// Sends is a reusable send buffer.
	Sends []model.Send
	// Aux carries a caller-defined arena (e.g. the planner's
	// per-candidate states and meters); it stays attached to the worker
	// across calls so its buffers amortize too.
	Aux any
}

// Pool runs index-sharded jobs on up to Workers goroutines. The zero
// value is not usable; construct with New. A Pool is safe for reuse
// across calls but a single Run must finish before the next begins (the
// scratch arenas are per-worker, not per-call).
type Pool struct {
	workers int
	scratch []*Scratch
}

// New returns a pool of the given width; workers <= 0 means
// GOMAXPROCS(0). Width 1 runs every job inline on the caller's
// goroutine.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, scratch: make([]*Scratch, workers)}
	for i := range p.scratch {
		p.scratch[i] = &Scratch{}
	}
	return p
}

// Workers reports the pool width.
func (p *Pool) Workers() int { return p.workers }

// Run invokes fn(scratch, i) for every i in [0, n), sharding the index
// space into contiguous chunks, one per worker. fn must confine its
// writes to per-index data (plus its scratch); it must not touch state
// shared across indices. Run returns when every index has been
// processed.
func (p *Pool) Run(n int, fn func(s *Scratch, i int)) {
	if n <= 0 {
		return
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		s := p.scratch[0]
		for i := 0; i < n; i++ {
			fn(s, i)
		}
		return
	}
	// Contiguous chunks: worker w handles [w*chunk+min(w,rem) ...), so
	// chunk sizes differ by at most one.
	chunk := n / workers
	rem := n % workers
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := w*chunk + min(w, rem)
		hi := lo + chunk
		if w < rem {
			hi++
		}
		go func(s *Scratch, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(s, i)
			}
		}(p.scratch[w], lo, hi)
	}
	wg.Wait()
}

// Rand is a SplitMix64 stream: a tiny, allocation-free PRNG whose state
// is one word, used to give every particle its own deterministic stream
// derived from the parent seed regardless of which worker advances it.
// (math/rand's default source carries a 607-word table — far too heavy
// to derive per particle per update.)
type Rand struct{ s uint64 }

// Stream returns the deterministic stream for index i under the given
// parent seed. The start state is passed through the SplitMix64
// finalizer so distinct indices land at scattered points of the
// sequence — without this, Stream(seed, i+1) would be Stream(seed, i)
// advanced by one draw, and a population of particles would toggle in
// shifted-duplicate patterns instead of independently.
func Stream(seed int64, i int) Rand {
	z := uint64(seed) + uint64(i)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return Rand{s: z ^ (z >> 31)}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a draw in [0, n). n must be positive. The modulo bias is
// at most n/2^64 — irrelevant for the small n (prior sizes, particle
// counts) this is used with.
func (r *Rand) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

// State exposes the stream's single word of state so a belief carrying
// a Rand can be checkpointed; RandFromState reconstructs the identical
// stream. Round-trip invariant: RandFromState(r.State()) continues
// exactly where r would have.
func (r Rand) State() uint64 { return r.s }

// RandFromState rebuilds a stream from a State() word (or seeds a fresh
// one from any 64-bit value).
func RandFromState(s uint64) Rand { return Rand{s: s} }
