package rollout

import (
	"sync/atomic"
	"testing"
)

// TestPoolCoversEveryIndex: every index is processed exactly once, for
// widths below, equal to, and above the job count.
func TestPoolCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 64} {
		p := New(workers)
		const n = 37
		var hits [n]int32
		p.Run(n, func(_ *Scratch, i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d processed %d times", workers, i, h)
			}
		}
	}
}

// TestPoolScratchIsPerWorker: the serial path hands out a stable
// scratch whose buffers persist across calls (that persistence is what
// makes the hot loops allocation-free).
func TestPoolScratchIsPerWorker(t *testing.T) {
	p := New(1)
	var first *Scratch
	p.Run(3, func(s *Scratch, i int) {
		if first == nil {
			first = s
		} else if s != first {
			t.Error("serial pool switched scratch mid-run")
		}
	})
	p.Run(1, func(s *Scratch, i int) {
		if s != first {
			t.Error("scratch not reused across runs")
		}
	})
}

// TestStreamDeterminism: streams depend only on (seed, index) — not on
// draw interleaving — and distinct indices diverge.
func TestStreamDeterminism(t *testing.T) {
	a := Stream(42, 7)
	b := Stream(42, 7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical streams diverged")
		}
	}
	c := Stream(42, 8)
	d := Stream(42, 7)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("adjacent streams collide on %d/100 draws", same)
	}

	// Stream i+1 must not be stream i advanced by one draw (shifted
	// copies would make a particle population toggle in duplicate
	// patterns).
	e := Stream(42, 7)
	e.Uint64()
	f := Stream(42, 8)
	same = 0
	for i := 0; i < 100; i++ {
		if e.Uint64() == f.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("stream 8 is a shifted copy of stream 7 (%d/100 draws equal)", same)
	}
}

// TestStreamFloat64Range: draws stay in [0, 1).
func TestStreamFloat64Range(t *testing.T) {
	r := Stream(1, 0)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("draw %v outside [0,1)", f)
		}
	}
}
