// Package transport runs the ISENDER over real UDP sockets: the same
// core.Sender the simulator drives, now driven by the wall clock and a
// net.UDPConn. Together with the trace-driven proxy in internal/emu it
// forms the end-to-end demonstration the reproduction bands call for:
// "UDP transport easy; trace-driven emulation feasible".
//
// Clocking: all times are durations since the sender's epoch. The
// receiver timestamps acknowledgments with absolute wall-clock
// nanoseconds and the sender rebases them, so on one machine (loopback
// experiments) clocks agree exactly; across machines the model's
// ClockSkew parameter is the paper's suggested extension (§3.4).
// Observation matching MUST use a soft likelihood (belief.Config's
// SoftSigma) because OS scheduling adds jitter the model does not
// represent.
package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"modelcc/internal/core"
	"modelcc/internal/packet"
	"modelcc/internal/wire"
)

// Receiver is the UDP RECEIVER (§3.4): it acknowledges every data
// packet with its receive time and sequence number.
type Receiver struct {
	conn *net.UDPConn

	// Received counts data packets; AcksSent counts acknowledgments.
	Received, AcksSent int64
}

// NewReceiver wraps a bound UDP socket.
func NewReceiver(conn *net.UDPConn) *Receiver {
	return &Receiver{conn: conn}
}

// Run serves until ctx is cancelled or the socket fails.
func (r *Receiver) Run(ctx context.Context) error {
	buf := make([]byte, 64*1024)
	ackBuf := make([]byte, wire.HeaderLen)
	go func() {
		<-ctx.Done()
		r.conn.SetReadDeadline(time.Now()) // unblock the read loop
	}()
	for {
		n, addr, err := r.conn.ReadFromUDP(buf)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				if ctx.Err() != nil {
					return nil
				}
				continue
			}
			return fmt.Errorf("transport: receiver read: %w", err)
		}
		typ, data, _, err := wire.Decode(buf[:n])
		if err != nil || typ != wire.TypeData {
			continue // not ours; drop silently like any UDP service
		}
		r.Received++
		ack := wire.Ack{
			Seq:           data.Seq,
			EchoSentNanos: data.SentNanos,
			ReceivedNanos: time.Now().UnixNano(),
		}
		dg, err := wire.EncodeAck(ackBuf, ack)
		if err != nil {
			return fmt.Errorf("transport: encode ack: %w", err)
		}
		if _, err := r.conn.WriteToUDP(dg, addr); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("transport: receiver write: %w", err)
		}
		r.AcksSent++
	}
}

// SenderStats summarizes a transport run.
type SenderStats struct {
	// Sent and Acked count packets.
	Sent, Acked int64
	// MeanOWD is the mean observed one-way delay.
	MeanOWD time.Duration
	// Wakes counts sender wakeups.
	Wakes int64
}

// Sender drives a core.Sender over a connected UDP socket.
type Sender struct {
	conn  *net.UDPConn
	s     *core.Sender
	padTo int
	epoch time.Time
}

// NewSender wraps a connected UDP socket around an ISENDER. padTo pads
// data datagrams to the uniform size the sender's model assumes
// (typically 1500); 0 disables padding.
func NewSender(conn *net.UDPConn, s *core.Sender, padTo int) *Sender {
	return &Sender{conn: conn, s: s, padTo: padTo}
}

// Run executes the send loop for the given duration (or until ctx is
// cancelled).
func (s *Sender) Run(ctx context.Context, duration time.Duration) (SenderStats, error) {
	s.epoch = time.Now()
	var stats SenderStats

	acksCh := make(chan packet.Ack, 256)
	readCtx, stopRead := context.WithCancel(ctx)
	defer stopRead()
	go s.readAcks(readCtx, acksCh)

	sendBuf := make([]byte, s.padTo+wire.HeaderLen)
	now := func() time.Duration { return time.Since(s.epoch) }

	transmit := func(seq int64, at time.Duration) error {
		dg, err := wire.EncodeData(sendBuf, wire.Data{Seq: seq, SentNanos: int64(at)}, s.padTo)
		if err != nil {
			return err
		}
		_, err = s.conn.Write(dg)
		return err
	}

	var owdSum time.Duration
	wake := func(acks []packet.Ack) (time.Duration, error) {
		stats.Wakes++
		act := s.s.Wake(now(), acks)
		for _, snd := range act.Sends {
			if err := transmit(snd.Seq, snd.At); err != nil {
				return 0, fmt.Errorf("transport: send: %w", err)
			}
			stats.Sent++
		}
		return act.WakeAt, nil
	}

	wakeAt, err := wake(nil)
	if err != nil {
		return stats, err
	}
	deadline := time.NewTimer(time.Until(s.epoch.Add(wakeAt)))
	defer deadline.Stop()
	end := time.NewTimer(duration)
	defer end.Stop()

	for {
		select {
		case <-ctx.Done():
			return stats, ctx.Err()
		case <-end.C:
			return stats, nil
		case a := <-acksCh:
			acks := []packet.Ack{a}
			// Batch any other acks already queued.
			for len(acksCh) > 0 {
				acks = append(acks, <-acksCh)
			}
			for _, ack := range acks {
				stats.Acked++
				owdSum += ack.ReceivedAt - ack.SentAt
				if stats.Acked > 0 {
					stats.MeanOWD = owdSum / time.Duration(stats.Acked)
				}
			}
			if wakeAt, err = wake(acks); err != nil {
				return stats, err
			}
			deadline.Reset(time.Until(s.epoch.Add(wakeAt)))
		case <-deadline.C:
			if wakeAt, err = wake(nil); err != nil {
				return stats, err
			}
			deadline.Reset(time.Until(s.epoch.Add(wakeAt)))
		}
	}
}

// readAcks decodes acknowledgments and rebases the receiver's absolute
// timestamps onto the sender epoch.
func (s *Sender) readAcks(ctx context.Context, out chan<- packet.Ack) {
	buf := make([]byte, 64*1024)
	go func() {
		<-ctx.Done()
		s.conn.SetReadDeadline(time.Now())
	}()
	for {
		n, err := s.conn.Read(buf)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				if ctx.Err() != nil {
					return
				}
				continue
			}
			return
		}
		typ, _, ack, err := wire.Decode(buf[:n])
		if err != nil || typ != wire.TypeAck {
			continue
		}
		rebased := packet.Ack{
			Flow:       packet.FlowSelf,
			Seq:        ack.Seq,
			SentAt:     time.Duration(ack.EchoSentNanos),
			ReceivedAt: time.Duration(ack.ReceivedNanos - s.epoch.UnixNano()),
		}
		select {
		case out <- rebased:
		case <-ctx.Done():
			return
		}
	}
}
