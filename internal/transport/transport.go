// Package transport runs the ISENDER over real UDP sockets: the same
// core.Sender the simulator drives, now driven by the wall clock and a
// net.UDPConn. Together with the trace-driven proxy in internal/emu it
// forms the end-to-end demonstration the reproduction bands call for:
// "UDP transport easy; trace-driven emulation feasible".
//
// Clocking: all times are durations since the sender's epoch. The
// receiver timestamps acknowledgments with absolute wall-clock
// nanoseconds and the sender rebases them, so on one machine (loopback
// experiments) clocks agree exactly; across machines the model's
// ClockSkew parameter is the paper's suggested extension (§3.4).
// Observation matching MUST use a soft likelihood (belief.Config's
// SoftSigma) because OS scheduling adds jitter the model does not
// represent.
//
// Failure model: both loops assume the network under them misbehaves —
// reads poll with short deadlines so cancellation is never missed,
// transient socket errors are retried with capped backoff rather than
// killing the run, decode failures are counted and dropped, and a
// non-monotone wall clock (NTP steps, VM migration) is clamped before it
// can reach the belief, which requires monotone time. See README.md
// ("Failure model").
package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"modelcc/internal/core"
	"modelcc/internal/packet"
	"modelcc/internal/wire"
)

// readPollInterval is the per-read deadline both loops poll with: short
// enough that cancellation and clock checks are prompt, long enough to
// stay out of the syscall budget.
const readPollInterval = 250 * time.Millisecond

// maxReadBackoff caps the retry backoff after transient read errors.
const maxReadBackoff = 250 * time.Millisecond

// Receiver is the UDP RECEIVER (§3.4): it acknowledges every data
// packet with its receive time and sequence number.
type Receiver struct {
	conn *net.UDPConn

	// Received counts data packets; AcksSent counts acknowledgments.
	Received, AcksSent int64
	// DecodeErrors counts datagrams that failed wire.Decode — corrupted
	// or foreign traffic, dropped like any UDP service drops noise.
	DecodeErrors int64
	// WriteErrors counts acknowledgment writes that failed transiently
	// (e.g. ICMP-induced errors on a connected path); the receiver keeps
	// serving.
	WriteErrors int64

	// OnData, when non-nil, observes every accepted data packet: its
	// sequence number, the sender's stamp (nanoseconds since the sender's
	// epoch) and the receive instant (absolute wall-clock nanoseconds).
	// Soak harnesses meter delivered utility here — ground truth that ack
	// loss on the return path cannot distort. Called from Run's goroutine.
	OnData func(seq, sentNanos, recvNanos int64)
}

// NewReceiver wraps a bound UDP socket.
func NewReceiver(conn *net.UDPConn) *Receiver {
	return &Receiver{conn: conn}
}

// Run serves until ctx is cancelled or the socket is closed. It returns
// nil in both cases, and leaves no goroutine behind.
func (r *Receiver) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-ctx.Done()
		r.conn.SetReadDeadline(time.Now()) // unblock the read loop
	}()
	defer wg.Wait()

	buf := make([]byte, 64*1024)
	ackBuf := make([]byte, wire.HeaderLen)
	backoff := time.Millisecond
	for {
		r.conn.SetReadDeadline(time.Now().Add(readPollInterval))
		n, addr, err := r.conn.ReadFromUDP(buf)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				backoff = time.Millisecond
				continue
			}
			// Transient fault (ICMP unreachable surfacing on a read,
			// momentary resource exhaustion): back off and keep serving.
			if !sleepCtx(ctx, backoff) {
				return nil
			}
			if backoff *= 2; backoff > maxReadBackoff {
				backoff = maxReadBackoff
			}
			continue
		}
		backoff = time.Millisecond
		typ, data, _, err := wire.Decode(buf[:n])
		if err != nil || typ != wire.TypeData {
			r.DecodeErrors++
			continue // not ours; drop silently like any UDP service
		}
		r.Received++
		recvNanos := time.Now().UnixNano()
		if r.OnData != nil {
			r.OnData(data.Seq, data.SentNanos, recvNanos)
		}
		ack := wire.Ack{
			Seq:           data.Seq,
			EchoSentNanos: data.SentNanos,
			ReceivedNanos: time.Now().UnixNano(),
		}
		dg, err := wire.EncodeAck(ackBuf, ack)
		if err != nil {
			return fmt.Errorf("transport: encode ack: %w", err)
		}
		if _, err := r.conn.WriteToUDP(dg, addr); err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			r.WriteErrors++
			continue
		}
		r.AcksSent++
	}
}

// sleepCtx sleeps for d or until ctx is done; it reports whether the
// full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// SenderStats summarizes a transport run.
type SenderStats struct {
	// Sent and Acked count packets.
	Sent, Acked int64
	// MeanOWD is the mean observed one-way delay.
	MeanOWD time.Duration
	// Wakes counts sender wakeups.
	Wakes int64
	// ReadRetries counts transient ack-stream read errors that were
	// retried with backoff.
	ReadRetries int64
	// DecodeErrors counts datagrams on the ack stream that failed
	// wire.Decode — corruption made visible, not fatal.
	DecodeErrors int64
	// ClockClamps counts wakeups where the wall clock ran backwards and
	// was clamped to keep belief time monotone.
	ClockClamps int64
}

// Sender drives a core.Sender over a connected UDP socket.
type Sender struct {
	conn  *net.UDPConn
	s     *core.Sender
	padTo int
	epoch time.Time

	// Clock, when non-nil, replaces time-since-epoch as the run's time
	// source (chaos tests inject jumping clocks here). Whatever the
	// source, Run clamps it monotone before it reaches the belief.
	Clock func() time.Duration
	// OnAck, when non-nil, observes every acknowledgment consumed by the
	// send loop (soak harnesses meter utility through it).
	OnAck func(packet.Ack)
}

// NewSender wraps a connected UDP socket around an ISENDER. padTo pads
// data datagrams to the uniform size the sender's model assumes
// (typically 1500); 0 disables padding.
func NewSender(conn *net.UDPConn, s *core.Sender, padTo int) *Sender {
	return &Sender{conn: conn, s: s, padTo: padTo}
}

// Run executes the send loop for the given duration (or until ctx is
// cancelled, returning ctx.Err()). All goroutines it starts are joined
// before it returns.
func (s *Sender) Run(ctx context.Context, duration time.Duration) (SenderStats, error) {
	s.epoch = time.Now()
	var stats SenderStats

	acksCh := make(chan packet.Ack, 256)
	readCtx, stopRead := context.WithCancel(ctx)
	defer stopRead()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.readAcks(readCtx, acksCh, &stats)
	}()
	defer wg.Wait()
	defer stopRead() // cancel before joining (defers run LIFO)

	sendBuf := make([]byte, s.padTo+wire.HeaderLen)
	raw := s.Clock
	if raw == nil {
		raw = func() time.Duration { return time.Since(s.epoch) }
	}
	var lastNow time.Duration
	// The belief panics on time regressions (they are driver bugs in the
	// DES world); on a real host the clock itself is untrusted, so clamp.
	now := func() time.Duration {
		t := raw()
		if t < lastNow {
			stats.ClockClamps++
			return lastNow
		}
		lastNow = t
		return t
	}

	transmit := func(seq int64, at time.Duration) error {
		dg, err := wire.EncodeData(sendBuf, wire.Data{Seq: seq, SentNanos: int64(at)}, s.padTo)
		if err != nil {
			return err
		}
		_, err = s.conn.Write(dg)
		return err
	}

	var owdSum time.Duration
	wake := func(acks []packet.Ack) (time.Duration, error) {
		stats.Wakes++
		act := s.s.Wake(now(), acks)
		for _, snd := range act.Sends {
			if err := transmit(snd.Seq, snd.At); err != nil {
				return 0, fmt.Errorf("transport: send: %w", err)
			}
			stats.Sent++
		}
		return act.WakeAt, nil
	}

	wakeAt, err := wake(nil)
	if err != nil {
		return stats, err
	}
	// The wake timer is armed with the logical distance to wakeAt, not
	// the wall-clock instant epoch+wakeAt: when an injected (or NTP-
	// stepped) clock jumps backwards, the clamped logical clock freezes
	// while wall time keeps running, and an absolute-instant timer would
	// land permanently in the past — a busy spin until the wall clock
	// catches back up. The floor keeps a zero-distance wake from spinning
	// the loop.
	wakeDelay := func() time.Duration {
		d := wakeAt - lastNow
		if d < time.Millisecond {
			d = time.Millisecond
		}
		return d
	}
	deadline := time.NewTimer(wakeDelay())
	defer deadline.Stop()
	end := time.NewTimer(duration)
	defer end.Stop()

	for {
		select {
		case <-ctx.Done():
			return stats, ctx.Err()
		case <-end.C:
			return stats, nil
		case a := <-acksCh:
			acks := []packet.Ack{a}
			// Batch any other acks already queued.
			for len(acksCh) > 0 {
				acks = append(acks, <-acksCh)
			}
			// An acknowledgment whose receive stamp regressed (clock
			// jump on the echo path, duplicate surfacing late) must not
			// drive belief time backwards; the clamp in now() covers the
			// update instant, and SoftSigma covers the stamps.
			for _, ack := range acks {
				stats.Acked++
				owdSum += ack.ReceivedAt - ack.SentAt
				if stats.Acked > 0 {
					stats.MeanOWD = owdSum / time.Duration(stats.Acked)
				}
				if s.OnAck != nil {
					s.OnAck(ack)
				}
			}
			if wakeAt, err = wake(acks); err != nil {
				return stats, err
			}
			deadline.Reset(wakeDelay())
		case <-deadline.C:
			if wakeAt, err = wake(nil); err != nil {
				return stats, err
			}
			deadline.Reset(wakeDelay())
		}
	}
}

// readAcks decodes acknowledgments and rebases the receiver's absolute
// timestamps onto the sender epoch. Transient read errors are retried
// with capped backoff — on a chaotic path the ack stream stalls and
// recovers; it must never silently wedge the sender into flying blind.
func (s *Sender) readAcks(ctx context.Context, out chan<- packet.Ack, stats *SenderStats) {
	buf := make([]byte, 64*1024)
	backoff := time.Millisecond
	for {
		if ctx.Err() != nil {
			return
		}
		s.conn.SetReadDeadline(time.Now().Add(readPollInterval))
		n, err := s.conn.Read(buf)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				backoff = time.Millisecond
				continue
			}
			stats.ReadRetries++
			if !sleepCtx(ctx, backoff) {
				return
			}
			if backoff *= 2; backoff > maxReadBackoff {
				backoff = maxReadBackoff
			}
			continue
		}
		backoff = time.Millisecond
		typ, _, ack, err := wire.Decode(buf[:n])
		if err != nil || typ != wire.TypeAck {
			stats.DecodeErrors++
			continue
		}
		rebased := packet.Ack{
			Flow:       packet.FlowSelf,
			Seq:        ack.Seq,
			SentAt:     time.Duration(ack.EchoSentNanos),
			ReceivedAt: time.Duration(ack.ReceivedNanos - s.epoch.UnixNano()),
		}
		select {
		case out <- rebased:
		case <-ctx.Done():
			return
		}
	}
}
