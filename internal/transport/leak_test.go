package transport

import (
	"context"
	"net"
	"runtime"
	"testing"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/core"
	"modelcc/internal/emu"
	"modelcc/internal/trace"
)

// settleGoroutines polls until the goroutine count returns to at most
// base, or the deadline passes; it returns the final count.
func settleGoroutines(base int, wait time.Duration) int {
	deadline := time.Now().Add(wait)
	for {
		n := runtime.NumGoroutine()
		if n <= base || time.Now().After(deadline) {
			return n
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSenderRunNoLeakOnCancel: cancelling mid-run must join the ack
// reader; a wedged reader would poison every later test's count.
func TestSenderRunNoLeakOnCancel(t *testing.T) {
	base := runtime.NumGoroutine()

	recvConn := udpListen(t)
	defer recvConn.Close()
	rctx, rcancel := context.WithCancel(context.Background())
	recvDone := make(chan struct{})
	go func() { defer close(recvDone); NewReceiver(recvConn).Run(rctx) }()

	sndConn := udpDial(t, recvConn.LocalAddr().(*net.UDPAddr))
	defer sndConn.Close()
	states, _ := fastPrior().Enumerate()
	snd := NewSender(sndConn, core.NewSender(belief.NewExact(states, softCfg()), fastPlan()), 1500)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	if _, err := snd.Run(ctx, 10*time.Second); err != context.Canceled {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}

	rcancel()
	<-recvDone
	if n := settleGoroutines(base, 2*time.Second); n > base {
		t.Fatalf("goroutines after cancel: %d, want <= %d", n, base)
	}
}

// TestReceiverRunNoLeakOnCancel: the receiver's watcher goroutine must
// die with Run even when the socket stays open.
func TestReceiverRunNoLeakOnCancel(t *testing.T) {
	base := runtime.NumGoroutine()
	recvConn := udpListen(t)
	defer recvConn.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- NewReceiver(recvConn).Run(ctx) }()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("receiver returned %v on cancel, want nil", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("receiver did not return after cancel")
	}
	if n := settleGoroutines(base, 2*time.Second); n > base {
		t.Fatalf("goroutines after cancel: %d, want <= %d", n, base)
	}
}

// TestProxyRunNoLeakOnClose: a bare Close (no context cancellation) must
// return Run promptly with all three proxy goroutines joined — the exact
// pattern every defer-using test relies on.
func TestProxyRunNoLeakOnClose(t *testing.T) {
	base := runtime.NumGoroutine()
	recvConn := udpListen(t)
	defer recvConn.Close()

	proxy, err := emu.NewProxy("127.0.0.1:0", recvConn.LocalAddr().String(), emu.ProxyConfig{
		Trace: trace.Constant(120000, 12000),
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- proxy.Run(context.Background()) }()
	time.Sleep(100 * time.Millisecond)

	proxy.Close()
	proxy.Close() // idempotent
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("proxy.Run returned %v after Close, want nil", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("proxy.Run did not return after Close")
	}
	proxy.Close() // still safe after Run returned
	if n := settleGoroutines(base, 2*time.Second); n > base {
		t.Fatalf("goroutines after Close: %d, want <= %d", n, base)
	}
}
