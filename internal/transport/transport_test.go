package transport

import (
	"context"
	"net"
	"testing"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/core"
	"modelcc/internal/emu"
	"modelcc/internal/model"
	"modelcc/internal/planner"
	"modelcc/internal/trace"
)

func udpListen(t *testing.T) *net.UDPConn {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

func udpDial(t *testing.T, to *net.UDPAddr) *net.UDPConn {
	t.Helper()
	conn, err := net.DialUDP("udp", nil, to)
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

// fastPrior models a 120 kbit/s link (10 pkt/s) so loopback tests finish
// quickly.
func fastPrior() model.Prior {
	return model.Prior{
		LinkRate:      model.PriorRange{Lo: 60000, Hi: 180000, N: 5}, // includes 120000
		BufferCapBits: model.PriorRange{Lo: 960000, Hi: 960000, N: 1},
		FullnessSteps: 1,
	}
}

func softCfg() belief.Config {
	return belief.Config{SoftSigma: 30 * time.Millisecond, Relax: true}
}

func fastPlan() planner.Config {
	cfg := planner.DefaultConfig()
	cfg.MaxDelay = 400 * time.Millisecond
	cfg.Grid = 50 * time.Millisecond
	cfg.Horizon = 5 * time.Second
	return cfg
}

// TestLoopbackDirect runs sender -> receiver over plain loopback: the
// sender should quickly infer a fast link and keep packets flowing.
func TestLoopbackDirect(t *testing.T) {
	recvConn := udpListen(t)
	defer recvConn.Close()
	recv := NewReceiver(recvConn)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go recv.Run(ctx)

	sndConn := udpDial(t, recvConn.LocalAddr().(*net.UDPAddr))
	defer sndConn.Close()

	states, _ := fastPrior().Enumerate()
	bel := belief.NewExact(states, softCfg())
	snd := NewSender(sndConn, core.NewSender(bel, fastPlan()), 1500)

	stats, err := snd.Run(ctx, 1500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sent=%d acked=%d meanOWD=%v wakes=%d", stats.Sent, stats.Acked, stats.MeanOWD, stats.Wakes)
	if stats.Sent == 0 {
		t.Fatal("sender never sent over loopback")
	}
	if stats.Acked == 0 {
		t.Fatal("no acknowledgments over loopback")
	}
}

// TestLoopbackThroughProxy inserts the trace-driven emulator in the
// path: a constant 120 kbit/s link. The sender must settle near the
// emulated rate — the end-to-end "aha" of the reproduction.
func TestLoopbackThroughProxy(t *testing.T) {
	recvConn := udpListen(t)
	defer recvConn.Close()
	recv := NewReceiver(recvConn)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go recv.Run(ctx)

	tr := trace.Constant(120000, 12000) // 10 packets/s
	proxy, err := emu.NewProxy("127.0.0.1:0", recvConn.LocalAddr().String(), emu.ProxyConfig{
		Trace:     tr,
		QueueBits: 120000, // bits: a 10-packet queue
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	go proxy.Run(ctx)

	sndConn := udpDial(t, proxy.Addr())
	defer sndConn.Close()

	states, _ := fastPrior().Enumerate()
	bel := belief.NewExact(states, softCfg())
	snd := NewSender(sndConn, core.NewSender(bel, fastPlan()), 1500)

	stats, err := snd.Run(ctx, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sent=%d acked=%d meanOWD=%v proxyFwd=%d proxyDrop=%d",
		stats.Sent, stats.Acked, stats.MeanOWD, proxy.Forwarded(), proxy.Dropped())
	if stats.Acked == 0 {
		t.Fatal("no acknowledgments through the emulated link")
	}
	// ~10 pkt/s for 3 s: expect at least a handful delivered, and the
	// sender must not have grossly overdriven the link.
	if stats.Acked < 5 {
		t.Errorf("acked = %d, want >= 5 through a 10 pkt/s link", stats.Acked)
	}
}
