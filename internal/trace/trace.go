// Package trace defines packet-delivery traces for emulating cellular
// links, in the style the later literature standardized (one timestamped
// delivery opportunity per MTU-sized packet; mahimahi-compatible text
// format: one millisecond timestamp per line).
//
// The paper's Figure 1 was measured on the Verizon LTE network in
// Cambridge in October 2011. We do not have that capture, so the
// generator in this package synthesizes LTE-like traces — a rate that
// wanders over an order of magnitude on a one-second timescale, plus
// occasional multi-second outages — which exercise the identical code
// path and reproduce the bufferbloat mechanism Figure 1 demonstrates
// (see DESIGN.md's substitution table).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"modelcc/internal/units"
)

// Trace is a schedule of delivery opportunities: at each timestamp the
// link can carry one MTU-sized packet. When Period is positive the
// schedule repeats cyclically with that period, following the mahimahi
// convention.
type Trace struct {
	// Opportunities are the grant times, sorted ascending.
	Opportunities []time.Duration
	// Period wraps the schedule; 0 means the trace is finite.
	Period time.Duration
}

// Validate checks ordering and bounds.
func (t *Trace) Validate() error {
	if len(t.Opportunities) == 0 {
		return fmt.Errorf("trace: no opportunities")
	}
	for i := 1; i < len(t.Opportunities); i++ {
		if t.Opportunities[i] < t.Opportunities[i-1] {
			return fmt.Errorf("trace: opportunities out of order at %d", i)
		}
	}
	if t.Period > 0 && t.Opportunities[len(t.Opportunities)-1] >= t.Period {
		return fmt.Errorf("trace: opportunity beyond period")
	}
	return nil
}

// Next returns the first opportunity strictly after d. For cyclic traces
// it never fails; for finite traces ok is false after the last grant.
func (t *Trace) Next(d time.Duration) (time.Duration, bool) {
	if len(t.Opportunities) == 0 {
		return 0, false
	}
	if t.Period <= 0 {
		i := sort.Search(len(t.Opportunities), func(i int) bool { return t.Opportunities[i] > d })
		if i == len(t.Opportunities) {
			return 0, false
		}
		return t.Opportunities[i], true
	}
	cycle := d / t.Period
	offset := d % t.Period
	i := sort.Search(len(t.Opportunities), func(i int) bool { return t.Opportunities[i] > offset })
	if i == len(t.Opportunities) {
		return (cycle+1)*t.Period + t.Opportunities[0], true
	}
	return cycle*t.Period + t.Opportunities[i], true
}

// MeanRate reports the trace's average delivery rate for the given
// packet size in bits.
func (t *Trace) MeanRate(pktBits int64) units.BitRate {
	if len(t.Opportunities) == 0 {
		return 0
	}
	span := t.Period
	if span <= 0 {
		span = t.Opportunities[len(t.Opportunities)-1]
	}
	if span <= 0 {
		return 0
	}
	return units.BitRate(float64(int64(len(t.Opportunities))*pktBits) / span.Seconds())
}

// Constant returns a cyclic trace delivering at a fixed rate for the
// given packet size.
func Constant(rate units.BitRate, pktBits int64) Trace {
	interval := units.TransmitTime(pktBits, rate)
	// One period of one second (or one interval if slower than 1/s).
	period := time.Second
	if interval >= period {
		period = interval
	}
	var opps []time.Duration
	for at := interval; at <= period; at += interval {
		opps = append(opps, at-1) // keep strictly inside the period
	}
	return Trace{Opportunities: opps, Period: period}
}

// LTEConfig tunes the synthetic cellular generator.
type LTEConfig struct {
	// Duration is the (acyclic) trace length.
	Duration time.Duration
	// MinRate and MaxRate bound the wandering link rate.
	MinRate, MaxRate units.BitRate
	// OutageProb is the per-second probability an outage begins.
	OutageProb float64
	// OutageMax bounds outage length.
	OutageMax time.Duration
	// PktBits is the per-opportunity grant size (default 12000).
	PktBits int64
}

// DefaultLTE returns generator settings that reproduce the Figure 1
// regime: a rate wandering between 0.5 and 8 Mbit/s with occasional
// outages of up to 4 s.
func DefaultLTE(duration time.Duration) LTEConfig {
	return LTEConfig{
		Duration:   duration,
		MinRate:    0.5 * units.MegabitPerSecond,
		MaxRate:    8 * units.MegabitPerSecond,
		OutageProb: 0.02,
		OutageMax:  4 * time.Second,
		PktBits:    12000,
	}
}

// GenLTE synthesizes an LTE-like delivery trace: the instantaneous rate
// follows a geometric random walk between MinRate and MaxRate, re-drawn
// every 100 ms, with memoryless outages.
func GenLTE(cfg LTEConfig, seed int64) Trace {
	rng := rand.New(rand.NewSource(seed))
	if cfg.PktBits <= 0 {
		cfg.PktBits = 12000
	}
	logMin, logMax := math.Log(float64(cfg.MinRate)), math.Log(float64(cfg.MaxRate))
	logRate := (logMin + logMax) / 2
	var opps []time.Duration
	var outageUntil time.Duration
	const step = 100 * time.Millisecond

	credit := 0.0 // fractional packets accumulated
	for at := time.Duration(0); at < cfg.Duration; at += step {
		// Outage process, checked once per second-boundary step.
		if at%time.Second == 0 && at >= outageUntil && rng.Float64() < cfg.OutageProb {
			outageUntil = at + time.Duration(rng.Float64()*float64(cfg.OutageMax))
		}
		if at < outageUntil {
			continue
		}
		// Random walk in log-rate with reflection.
		logRate += rng.NormFloat64() * 0.15
		if logRate > logMax {
			logRate = 2*logMax - logRate
		}
		if logRate < logMin {
			logRate = 2*logMin - logRate
		}
		rate := math.Exp(logRate)
		credit += rate * step.Seconds() / float64(cfg.PktBits)
		n := int(credit)
		credit -= float64(n)
		for i := 0; i < n; i++ {
			frac := (float64(i) + rng.Float64()) / float64(n)
			opps = append(opps, at+time.Duration(frac*float64(step)))
		}
	}
	sort.Slice(opps, func(i, j int) bool { return opps[i] < opps[j] })
	return Trace{Opportunities: opps}
}

// Format writes the trace in mahimahi text format: one integer
// millisecond timestamp per line.
func Format(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	for _, o := range t.Opportunities {
		if _, err := fmt.Fprintf(bw, "%d\n", o.Milliseconds()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parse reads a mahimahi-format trace: one integer millisecond per
// line; blank lines and #-comments are ignored. The result is cyclic
// with the last timestamp (rounded up to a whole millisecond) as its
// period, matching mahimahi's convention.
func Parse(r io.Reader) (Trace, error) {
	var t Trace
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		ms, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Trace{}, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if ms < 0 {
			return Trace{}, fmt.Errorf("trace: line %d: negative timestamp", line)
		}
		t.Opportunities = append(t.Opportunities, time.Duration(ms)*time.Millisecond)
	}
	if err := sc.Err(); err != nil {
		return Trace{}, fmt.Errorf("trace: %w", err)
	}
	if len(t.Opportunities) == 0 {
		return Trace{}, fmt.Errorf("trace: empty")
	}
	last := t.Opportunities[len(t.Opportunities)-1]
	t.Period = last + time.Millisecond
	// Keep the last opportunity strictly inside the period.
	sort.Slice(t.Opportunities, func(i, j int) bool { return t.Opportunities[i] < t.Opportunities[j] })
	return t, t.Validate()
}
