package trace

import (
	"strings"
	"testing"
	"time"

	"modelcc/internal/units"
)

func TestConstantTraceRate(t *testing.T) {
	tr := Constant(1200_000, 12000) // 100 pkt/s
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	rate := tr.MeanRate(12000)
	if rate < 1_100_000 || rate > 1_300_000 {
		t.Errorf("mean rate = %v, want ~1.2 Mbit/s", rate)
	}
}

func TestNextCyclic(t *testing.T) {
	tr := Trace{
		Opportunities: []time.Duration{100 * time.Millisecond, 600 * time.Millisecond},
		Period:        time.Second,
	}
	tests := []struct {
		at   time.Duration
		want time.Duration
	}{
		{0, 100 * time.Millisecond},
		{100 * time.Millisecond, 600 * time.Millisecond},
		{700 * time.Millisecond, 1100 * time.Millisecond}, // wraps
		{2600 * time.Millisecond, 3100 * time.Millisecond},
	}
	for _, tt := range tests {
		got, ok := tr.Next(tt.at)
		if !ok || got != tt.want {
			t.Errorf("Next(%v) = %v,%v want %v", tt.at, got, ok, tt.want)
		}
	}
}

func TestNextFinite(t *testing.T) {
	tr := Trace{Opportunities: []time.Duration{time.Second, 2 * time.Second}}
	if got, ok := tr.Next(1500 * time.Millisecond); !ok || got != 2*time.Second {
		t.Errorf("Next = %v,%v", got, ok)
	}
	if _, ok := tr.Next(2 * time.Second); ok {
		t.Error("finite trace should exhaust")
	}
	var empty Trace
	if _, ok := empty.Next(0); ok {
		t.Error("empty trace returned an opportunity")
	}
}

func TestGenLTEProperties(t *testing.T) {
	cfg := DefaultLTE(60 * time.Second)
	tr := GenLTE(cfg, 1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	rate := tr.MeanRate(12000)
	if rate < cfg.MinRate/2 || rate > cfg.MaxRate {
		t.Errorf("LTE mean rate %v outside plausible band [%v, %v]", rate, cfg.MinRate, cfg.MaxRate)
	}
	// Variability: the rate over 5s windows must vary by at least 2x
	// between the fastest and slowest window (it is a cellular trace,
	// not a constant link).
	counts := map[int]int{}
	for _, o := range tr.Opportunities {
		counts[int(o/(5*time.Second))]++
	}
	min, max := 1<<30, 0
	for w := 0; w < int(60/5); w++ {
		c := counts[w]
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min*2 > max {
		t.Errorf("trace too steady: min window %d, max window %d", min, max)
	}
}

func TestGenLTEDeterministic(t *testing.T) {
	cfg := DefaultLTE(20 * time.Second)
	a := GenLTE(cfg, 7)
	b := GenLTE(cfg, 7)
	if len(a.Opportunities) != len(b.Opportunities) {
		t.Fatal("same seed, different lengths")
	}
	for i := range a.Opportunities {
		if a.Opportunities[i] != b.Opportunities[i] {
			t.Fatal("same seed, different trace")
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	orig := Trace{Opportunities: []time.Duration{
		5 * time.Millisecond, 17 * time.Millisecond, 1200 * time.Millisecond,
	}}
	var sb strings.Builder
	if err := Format(&sb, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Opportunities) != 3 {
		t.Fatalf("round trip lost opportunities: %v", got.Opportunities)
	}
	for i, o := range orig.Opportunities {
		if got.Opportunities[i] != o {
			t.Errorf("opportunity %d: %v != %v", i, got.Opportunities[i], o)
		}
	}
	if got.Period != 1201*time.Millisecond {
		t.Errorf("period = %v, want 1.201s (mahimahi convention)", got.Period)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := []string{"", "abc\n", "-5\n"}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("Parse(%q) succeeded", c)
		}
	}
	// Comments and blanks are fine.
	tr, err := Parse(strings.NewReader("# comment\n\n10\n20\n"))
	if err != nil || len(tr.Opportunities) != 2 {
		t.Errorf("comment handling broken: %v %v", tr, err)
	}
}

func TestValidate(t *testing.T) {
	bad := Trace{Opportunities: []time.Duration{2 * time.Second, time.Second}}
	if bad.Validate() == nil {
		t.Error("out-of-order trace validated")
	}
	bad2 := Trace{Opportunities: []time.Duration{2 * time.Second}, Period: time.Second}
	if bad2.Validate() == nil {
		t.Error("beyond-period trace validated")
	}
	var empty Trace
	if empty.Validate() == nil {
		t.Error("empty trace validated")
	}
	_ = units.BitPerSecond
}
