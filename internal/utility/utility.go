// Package utility implements the paper's instantaneous utility function
// (§3.3): the value of a packet is its size in bits discounted by how far
// in the future it is received, plus a weighted term for the cross
// traffic's deliveries and an optional penalty for the latency the sender
// induces on that cross traffic.
//
// The paper writes the discount as "packet size in bits divided by e^τ,
// where τ is the number of milliseconds in the future when the packet
// will be received". Read literally (a 1/e decay per millisecond), every
// delivery on a 12 kbit/s link — where a single packet takes 1000 ms to
// serialize — is worth e^-1000 ≈ 0: all strategies tie at zero and the
// argmax is meaningless. The companion approximation the paper gives
// (∑ e^-t/(1000r) ≈ 1000r, "nearly linearly rewarding throughput") shows
// the intended shape: a gentle exponential whose timescale makes the
// reward almost linear in throughput at realistic delays. We therefore
// expose the timescale as a parameter κ — U = bits · exp(-τ/κ) — with a
// default of one second, which preserves every qualitative property the
// paper relies on (earlier is better; multi-second queueing delay is
// heavily punished; accumulated utility tracks throughput). Setting
// Kappa to one millisecond recovers the paper's literal formula. This
// substitution is recorded in DESIGN.md.
package utility

import (
	"math"
	"time"

	"modelcc/internal/model"
)

// Config parameterizes the utility function.
type Config struct {
	// Alpha is the paper's α: the relative value of cross-traffic bits
	// compared with the sender's own. α < 1 prioritizes self (the paper
	// shows this floods out the cross traffic); α = 1 is bit-neutral;
	// α > 1 is deferential.
	Alpha float64
	// Kappa is the discount timescale: a packet delivered τ after the
	// decision instant is worth bits·exp(-τ/Kappa).
	Kappa time.Duration
	// CrossLatencyPenalty, if positive, subtracts
	// penalty·bits·delaySeconds for every cross delivery — the §3.3
	// option of penalizing latency experienced by delay-sensitive cross
	// traffic, which makes the sender drain the queue before using it.
	CrossLatencyPenalty float64
}

// Default returns the configuration used by the Figure 3 experiments (α
// is then varied per run). Kappa is 30 s: long against the experiment's
// queueing delays, so accumulated utility is nearly linear in throughput
// — which is what makes the paper's α=1 accounting exact (a caused cross
// drop costs α times what a delivered own packet gains) — while still
// strictly preferring earlier delivery.
func Default() Config {
	return Config{Alpha: 1, Kappa: 60 * time.Second}
}

// Discount returns exp(-τ/κ) for a delivery τ in the future; τ <= 0
// returns 1 (already delivered — no further discounting).
func (c Config) Discount(tau time.Duration) float64 {
	if tau <= 0 {
		return 1
	}
	k := c.Kappa
	if k <= 0 {
		k = time.Second
	}
	return math.Exp(-tau.Seconds() / k.Seconds())
}

// Instantaneous returns the utility of bits delivered tau after the
// decision instant.
func (c Config) Instantaneous(bits int64, tau time.Duration) float64 {
	return float64(bits) * c.Discount(tau)
}

// OfPredicted accumulates the expected utility of predicted (pre-LOSS)
// events relative to decision time t0, for a hypothesis with last-mile
// loss probability p:
//
//   - an own delivery is worth bits·(1-p)·discount;
//   - a cross delivery is worth α·bits·(1-p)·discount, minus the
//     optional latency penalty on its queueing delay;
//   - drops contribute nothing (their cost is the value that never
//     accrues).
//
// The loss expectation replaces per-packet loss forking during planning;
// utility is linear in delivered bits, so the expectation is exact for
// the argmax (see DESIGN.md).
func (c Config) OfPredicted(evs []model.Event, t0 time.Duration, p float64) float64 {
	var u float64
	survive := 1 - p
	for _, ev := range evs {
		switch ev.Kind {
		case model.OwnDelivered:
			u += float64(ev.Bits) * survive * c.Discount(ev.At-t0)
		case model.CrossDelivered:
			u += c.Alpha * float64(ev.Bits) * survive * c.Discount(ev.At-t0)
			if c.CrossLatencyPenalty > 0 {
				u -= c.CrossLatencyPenalty * float64(ev.Bits) * ev.Delay.Seconds()
			}
		}
	}
	return u
}

// Meter accumulates OfPredicted-style utility across the segments of one
// rollout, exploiting that a rollout's events arrive in time order: the
// discount is carried forward multiplicatively, exp(-τ₂/κ) =
// exp(-τ₁/κ)·exp(-Δ/κ), and the per-step factors are memoized in a tiny
// direct-mapped cache. Delivery times in a rollout sit on a handful of
// lattices (the link's service time, the pinger grid), so the same Δ
// recurs constantly and the exp in the hot loop all but disappears. The
// result differs from OfPredicted only by float rounding (≲1e-12
// relative over a rollout), far below the planner's tie band.
//
// A Meter is single-rollout state: call Reset before each rollout and
// Add with each segment's events, in time order.
type Meter struct {
	alpha, survive, penalty float64
	t0                      time.Duration
	invK                    float64 // 1/κ in 1/ns

	lastTau time.Duration
	lastD   float64
	cache   [8]expEntry
}

type expEntry struct {
	dt time.Duration
	f  float64
}

// Reset points the meter at a new rollout: decision time t0, hypothesis
// loss probability p, and the meter's utility parameters from c.
func (m *Meter) Reset(c Config, t0 time.Duration, p float64) {
	k := c.Kappa
	if k <= 0 {
		k = time.Second
	}
	m.alpha = c.Alpha
	m.survive = 1 - p
	m.penalty = c.CrossLatencyPenalty
	m.t0 = t0
	m.invK = 1 / float64(k)
	m.lastTau = 0
	m.lastD = 1
	for i := range m.cache {
		m.cache[i] = expEntry{dt: -1}
	}
}

func (m *Meter) discount(tau time.Duration) float64 {
	if tau <= 0 {
		return 1
	}
	dt := tau - m.lastTau
	if dt < 0 {
		// Out-of-order event (should not happen in a rollout): exact.
		return math.Exp(-float64(tau) * m.invK)
	}
	if dt > 0 {
		i := (uint64(dt) * 0x9e3779b97f4a7c15) >> 61
		e := &m.cache[i]
		if e.dt != dt {
			e.dt = dt
			e.f = math.Exp(-float64(dt) * m.invK)
		}
		m.lastD *= e.f
		m.lastTau = tau
	}
	return m.lastD
}

// Add accumulates the utility of one segment's events and returns the
// segment's contribution.
func (m *Meter) Add(evs []model.Event) float64 {
	var u float64
	for i := range evs {
		ev := &evs[i]
		switch ev.Kind {
		case model.OwnDelivered:
			u += float64(ev.Bits) * m.survive * m.discount(ev.At-m.t0)
		case model.CrossDelivered:
			u += m.alpha * float64(ev.Bits) * m.survive * m.discount(ev.At-m.t0)
			if m.penalty > 0 {
				u -= m.penalty * float64(ev.Bits) * ev.Delay.Seconds()
			}
		}
	}
	return u
}

// OfActual accumulates the realized utility of ground-truth (post-LOSS)
// events relative to t0: Own/CrossDelivered events have already survived
// the loss element, and losses contribute nothing. Experiments report
// this as the achieved utility.
func (c Config) OfActual(evs []model.Event, t0 time.Duration) float64 {
	var u float64
	for _, ev := range evs {
		switch ev.Kind {
		case model.OwnDelivered:
			u += float64(ev.Bits) * c.Discount(ev.At-t0)
		case model.CrossDelivered:
			u += c.Alpha * float64(ev.Bits) * c.Discount(ev.At-t0)
			if c.CrossLatencyPenalty > 0 {
				u -= c.CrossLatencyPenalty * float64(ev.Bits) * ev.Delay.Seconds()
			}
		}
	}
	return u
}
