package utility

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"modelcc/internal/model"
)

func TestDiscount(t *testing.T) {
	c := Config{Alpha: 1, Kappa: time.Second}
	if got := c.Discount(0); got != 1 {
		t.Errorf("Discount(0) = %v", got)
	}
	if got := c.Discount(-time.Second); got != 1 {
		t.Errorf("Discount(negative) = %v", got)
	}
	want := math.Exp(-1)
	if got := c.Discount(time.Second); math.Abs(got-want) > 1e-12 {
		t.Errorf("Discount(1s) = %v, want e^-1", got)
	}
	// Zero kappa falls back to one second rather than dividing by zero.
	z := Config{Kappa: 0}
	if got := z.Discount(time.Second); math.Abs(got-want) > 1e-12 {
		t.Errorf("zero-kappa Discount(1s) = %v", got)
	}
}

func TestDiscountMonotoneDecreasing(t *testing.T) {
	c := Default()
	f := func(a, b uint32) bool {
		ta := time.Duration(a) * time.Millisecond
		tb := time.Duration(b) * time.Millisecond
		if ta > tb {
			ta, tb = tb, ta
		}
		return c.Discount(ta) >= c.Discount(tb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPaperLiteralFormula(t *testing.T) {
	// κ = 1ms recovers "divided by e^τ with τ in milliseconds".
	c := Config{Kappa: time.Millisecond}
	got := c.Discount(3 * time.Millisecond)
	if math.Abs(got-math.Exp(-3)) > 1e-12 {
		t.Errorf("literal paper discount = %v, want e^-3", got)
	}
}

func TestOfPredictedWeightsLossAndAlpha(t *testing.T) {
	c := Config{Alpha: 2, Kappa: time.Second}
	evs := []model.Event{
		{Kind: model.OwnDelivered, Bits: 12000, At: time.Second},
		{Kind: model.CrossDelivered, Bits: 12000, At: time.Second},
		{Kind: model.OwnBufferDrop, Bits: 12000, At: time.Second},
		{Kind: model.CrossBufferDrop, Bits: 12000, At: time.Second},
	}
	p := 0.2
	got := c.OfPredicted(evs, 0, p)
	disc := math.Exp(-1)
	want := 12000*0.8*disc + 2*12000*0.8*disc
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("OfPredicted = %v, want %v (drops contribute nothing)", got, want)
	}
}

func TestOfPredictedRelativeToDecisionTime(t *testing.T) {
	c := Default()
	evs := []model.Event{{Kind: model.OwnDelivered, Bits: 12000, At: 5 * time.Second}}
	early := c.OfPredicted(evs, 4*time.Second, 0)
	late := c.OfPredicted(evs, 5*time.Second, 0)
	if late <= early {
		t.Errorf("utility must grow as the delivery gets nearer: t0=4s %v vs t0=5s %v", early, late)
	}
	if math.Abs(late-12000) > 1e-9 {
		t.Errorf("delivery at the decision instant = %v, want full 12000", late)
	}
}

func TestLatencyPenalty(t *testing.T) {
	c := Config{Alpha: 1, Kappa: time.Second, CrossLatencyPenalty: 0.5}
	evs := []model.Event{
		{Kind: model.CrossDelivered, Bits: 12000, At: time.Second, Delay: 4 * time.Second},
	}
	got := c.OfPredicted(evs, 0, 0)
	want := 12000*math.Exp(-1) - 0.5*12000*4
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("latency-penalized = %v, want %v", got, want)
	}
	// A delayed cross packet can be net negative: the drain-first
	// behaviour of §4 depends on it.
	if got >= 0 {
		t.Errorf("heavily delayed cross packet should be net negative, got %v", got)
	}
}

func TestOfActualIgnoresLosses(t *testing.T) {
	c := Config{Alpha: 1, Kappa: time.Second}
	evs := []model.Event{
		{Kind: model.OwnDelivered, Bits: 12000, At: time.Second},
		{Kind: model.OwnLost, Bits: 12000, At: time.Second},
		{Kind: model.CrossLost, Bits: 12000, At: time.Second},
	}
	got := c.OfActual(evs, 0)
	want := 12000 * math.Exp(-1)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("OfActual = %v, want %v", got, want)
	}
}

func TestAccumulatedUtilityTracksThroughput(t *testing.T) {
	// The paper's justification: the accumulated instantaneous utility
	// of a steady packet stream is nearly linear in its rate. Compare
	// two rates and check the utility ratio matches the rate ratio
	// within 10%.
	// Accumulated utility of an infinite stream at spacing Δ from one
	// decision instant is bits·e^(-Δ/κ)/(1-e^(-Δ/κ)) ≈ bits·κ/Δ for
	// Δ ≪ κ — linear in rate, exactly the paper's ∑e^(-t/(1000r)) ≈
	// 1000r argument with its own timescale.
	c := Default()
	stream := func(interval time.Duration) float64 {
		var evs []model.Event
		for at := interval; at <= 60*time.Second; at += interval {
			evs = append(evs, model.Event{Kind: model.OwnDelivered, Bits: 12000, At: at})
		}
		return c.OfPredicted(evs, 0, 0)
	}
	u1 := stream(100 * time.Millisecond) // 10 pkt/s
	u2 := stream(50 * time.Millisecond)  // 20 pkt/s
	ratio := u2 / u1
	if ratio < 1.9 || ratio > 2.2 {
		t.Errorf("utility ratio for 2x throughput = %v, want ~2 (nearly linear)", ratio)
	}
}
