// Package belief maintains the sender's probability distribution over
// possible network configurations (§3.2).
//
// Two implementations are provided:
//
//   - Exact: the paper's approach — a weighted list of every surviving
//     discrete configuration. Nondeterministic elements fork hypotheses;
//     observations reject inconsistent ones ("the sequential application
//     of Bayes' theorem"); identical states are compacted back together.
//
//   - Particle: the paper's suggested scalable alternative (§3.2, §5 —
//     "approximate techniques of Bayesian inference ... such as
//     Markov-chain Monte Carlo and belief compression"): a fixed-size
//     particle filter with likelihood weighting and systematic
//     resampling.
//
// Both satisfy Belief, so the planner and the ISENDER are agnostic to
// which is in use.
package belief

import (
	"math"
	"time"

	"modelcc/internal/model"
	"modelcc/internal/packet"
	"modelcc/internal/rollout"
)

// Hypothesis is one weighted network configuration.
type Hypothesis struct {
	// S is the configuration's state.
	S model.State
	// W is its posterior probability mass.
	W float64
}

// UpdateStats reports what one Bayesian update did, for instrumentation
// and the scalability benchmarks.
type UpdateStats struct {
	// Branches is the number of weighted branches generated before
	// rejection.
	Branches int
	// Rejected is the number of branches whose observations were
	// inconsistent (weight exactly zero).
	Rejected int
	// Merged is the number of branches absorbed by compaction.
	Merged int
	// Floored is the number of branches dropped by the weight floor or
	// the max-hypotheses cap.
	Floored int
	// Relaxed counts segments where every hypothesis was rejected and
	// Config.Relax kept the unconditioned posterior instead of
	// panicking.
	Relaxed int
	// Reseeded counts likelihood collapses Config.Recover repaired by
	// re-seeding the belief from its prior.
	Reseeded int
	// N is the number of hypotheses after the update.
	N int
}

// Belief is the sender's uncertainty about the network.
type Belief interface {
	// RecordSend tells the belief the sender injected a packet; the
	// send takes effect at the next Update whose time covers it.
	RecordSend(s model.Send)
	// Update advances every hypothesis to now and conditions on the
	// acknowledgments received since the previous update.
	Update(now time.Duration, acks []packet.Ack) UpdateStats
	// Support returns the current weighted hypotheses (compacted;
	// weights sum to 1). The slice is owned by the belief: treat it as
	// read-only and do not retain it across updates.
	Support() []Hypothesis
	// PendingSends returns sends recorded but not yet folded into the
	// hypotheses, oldest first. The planner replays them in rollouts so
	// back-to-back send decisions within one wakeup see each other.
	PendingSends() []model.Send
	// Now reports the time of the last update.
	Now() time.Duration
}

// Config tunes the exact belief's resource bounds and observation
// matching.
type Config struct {
	// TimeTol is the tolerance when matching a predicted delivery time
	// against an observed acknowledgment time. The ground truth runs the
	// same mechanics as the hypotheses, so the default is tight: 1 ms.
	TimeTol time.Duration
	// SoftSigma, when positive, replaces hard rejection of timing
	// mismatches with a Gaussian likelihood exp(-½(Δt/σ)²). The paper's
	// simulator observes its own mechanics exactly, so hard rejection
	// suffices there; against networks the model cannot represent
	// exactly — another ISENDER sharing the bottleneck (§3.5), or a
	// real UDP path with OS scheduling jitter — every hypothesis would
	// be rejected. Soft matching is the standard likelihood-smoothing
	// fix and degrades gracefully to the paper's behaviour as σ → 0.
	SoftSigma time.Duration
	// MinWeight drops hypotheses below this post-normalization mass.
	MinWeight float64
	// MaxHyps caps the hypothesis count; the lowest-weight survivors are
	// dropped first. The paper notes exact rejection sampling is
	// "limited computationally" beyond a few million configurations —
	// the cap keeps worst cases bounded rather than aborting the run.
	MaxHyps int
	// Relax, when true, makes an all-hypotheses-rejected update keep
	// the prior-update posterior (counting it in UpdateStats.Relaxed on
	// the implementations that track it) instead of panicking. Used by
	// the model-mismatch experiments; the default panic is the right
	// behaviour when the prior is supposed to contain the truth.
	Relax bool
	// Recover, when true, detects likelihood collapse — an observation
	// impossible under every surviving hypothesis, as corruption, a
	// link blackout, or model divergence produce — and recovers
	// deterministically by re-seeding the belief from its initial
	// prior, rebased to the collapse instant with uniform weights
	// (counted in UpdateStats.Reseeded). Unlike Relax, which freezes a
	// posterior that just proved itself wrong, Recover restarts
	// inference from scratch: the right behaviour on a chaotic path
	// where the world really did change out from under the model.
	// Recover takes precedence over Relax.
	Recover bool
	// Workers shards the per-hypothesis advances of an update across a
	// worker pool: 0 means GOMAXPROCS, 1 forces the serial path. The
	// posterior is bit-identical for every worker count: each advance
	// writes only its own index's slot and the Bayesian reduction walks
	// slots in index order (the particle filter additionally derives a
	// per-particle random stream from the parent seed, so its draws do
	// not depend on scheduling).
	Workers int
	// Pool, when non-nil, supplies the worker pool instead of the belief
	// constructing a private one of Workers width. A fleet of senders
	// (internal/fleet) hands every member the same pool so their scratch
	// arenas amortize across the whole fleet. The pool must not be used
	// from multiple goroutines at once; the single-goroutine sim loop
	// guarantees that. Results remain bit-identical for any pool width.
	Pool *rollout.Pool
}

// DefaultConfig returns the bounds used by the experiments.
func DefaultConfig() Config {
	return Config{
		TimeTol:   time.Millisecond,
		MinWeight: 1e-9,
		MaxHyps:   1 << 18, // 262,144
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.TimeTol <= 0 {
		c.TimeTol = d.TimeTol
	}
	if c.MinWeight <= 0 {
		c.MinWeight = d.MinWeight
	}
	if c.MaxHyps <= 0 {
		c.MaxHyps = d.MaxHyps
	}
	return c
}

// likelihood weights one branch's predicted events against the observed
// acknowledgments: an acknowledged prediction contributes 1-p (the packet
// survived last-mile LOSS), an unacknowledged past delivery contributes p
// (it was lost), and a timing mismatch rejects the branch outright.
// matched reports how many acknowledgments the branch explained; the
// caller rejects branches with matched < len(ackBySeq) — an
// acknowledgment the branch cannot explain is inconsistent. Each sequence
// number is delivered at most once per run, so counting suffices.
func likelihood(events []model.Event, ackBySeq map[int64]time.Duration, p float64, cfg Config) (w float64, matched int) {
	w = 1.0
	for _, ev := range events {
		switch ev.Kind {
		case model.OwnDelivered:
			at, ok := ackBySeq[ev.Seq]
			if !ok {
				// Predicted delivered, never acknowledged: lost at the
				// last mile.
				w *= p
				if w == 0 {
					return 0, matched
				}
				continue
			}
			diff := at - ev.At
			if diff < 0 {
				diff = -diff
			}
			if diff > cfg.TimeTol {
				return 0, matched // right packet, wrong time
			}
			matched++
			w *= 1 - p
			if w == 0 {
				return 0, matched
			}
		case model.OwnBufferDrop:
			if _, ok := ackBySeq[ev.Seq]; ok {
				return 0, matched // predicted buffer-dropped, yet acknowledged
			}
		}
	}
	return w, matched
}

// softLikelihood is the soft-matching counterpart used against networks
// the model cannot represent exactly (real sockets, a competing
// ISENDER). It differs from the exact rule in three ways, all of which
// degrade to the hard rule as σ → 0:
//
//   - timing mismatches are Gaussian-weighted, not rejected;
//   - acks are matched globally by sequence number (ackAll includes
//     recently seen acks), so a prediction and its acknowledgment that
//     straddle a segment or update boundary still pair up;
//   - a prediction with no ack is held "pending" (neutral weight)
//     within a grace window of now — on a real path the ack may simply
//     not have been read yet — and afterwards weighted by the loss
//     probability floored at softMissFloor, because real paths lose
//     packets even when the hypothesis says p = 0.
func softLikelihood(events []model.Event, ackAll map[int64]time.Duration, now time.Duration, p float64, cfg Config) float64 {
	const softMissFloor = 0.01
	sigma := cfg.SoftSigma.Seconds()
	grace := 4 * cfg.SoftSigma
	w := 1.0
	for _, ev := range events {
		switch ev.Kind {
		case model.OwnDelivered:
			at, ok := ackAll[ev.Seq]
			if !ok {
				if now-ev.At <= grace {
					continue // pending: judge on a later update
				}
				miss := p
				if miss < softMissFloor {
					miss = softMissFloor
				}
				w *= miss
				continue
			}
			diff := (at - ev.At).Seconds()
			z := diff / sigma
			w *= math.Exp(-0.5*z*z) * (1 - p)
		case model.OwnBufferDrop:
			if _, ok := ackAll[ev.Seq]; ok {
				w *= 1e-12 // crushing, not fatal: occupancy may be slightly off
			}
		}
	}
	return w
}
