package belief

import (
	"math/rand"
	"testing"
	"time"

	"modelcc/internal/model"
	"modelcc/internal/packet"
)

func TestParticleConvergesToTrueRate(t *testing.T) {
	states := twoRatePrior(12000, 24000)
	b := NewParticle(states, 200, Config{}, rand.New(rand.NewSource(3)))
	if b.NumParticles() != 200 {
		t.Fatalf("particles = %d", b.NumParticles())
	}

	// Several packets, all acknowledged at 12 kbit/s timings.
	now := time.Duration(0)
	for i := int64(0); i < 5; i++ {
		at := time.Duration(i) * 3 * time.Second
		b.RecordSend(model.Send{Seq: i, At: at})
		ackAt := deliveryTime(at, 12000)
		now = ackAt
		b.Update(now, []packet.Ack{{Seq: i, ReceivedAt: ackAt}})
	}
	e := Summarize(b.Support())
	if e.ELinkRate < 11999.99 || e.ELinkRate > 12000.01 {
		t.Errorf("posterior mean rate = %v, want 12000 (wrong-rate particles all rejected)", e.ELinkRate)
	}
	if w := TotalWeight(b.Support()); w < 0.999999 || w > 1.000001 {
		t.Errorf("weights sum to %v", w)
	}
}

func TestParticleStratifiedInitIncludesAllPriorStates(t *testing.T) {
	states := twoRatePrior(10000, 12000, 14000, 16000)
	b := NewParticle(states, 16, Config{}, rand.New(rand.NewSource(1)))
	seen := map[int32]bool{}
	for _, h := range b.Support() {
		seen[h.S.ParamsID] = true
	}
	for i := int32(0); i < 4; i++ {
		if !seen[i] {
			t.Errorf("prior state %d missing from stratified particle init", i)
		}
	}
}

func TestParticleResamples(t *testing.T) {
	states := twoRatePrior(12000, 24000)
	b := NewParticle(states, 100, Config{}, rand.New(rand.NewSource(2)))
	// One decisive observation halves the population's weight mass to
	// one side; ESS collapses and a resample must fire.
	b.RecordSend(model.Send{Seq: 0, At: 0})
	b.Update(time.Second, []packet.Ack{{Seq: 0, ReceivedAt: deliveryTime(0, 12000)}})
	if b.Resamples == 0 {
		t.Error("expected a resampling round after a decisive observation")
	}
	// After resampling every particle must carry the surviving rate.
	for _, h := range b.Support() {
		if h.S.P.LinkRate != 12000 {
			t.Fatalf("resample kept a rejected particle: %v", h.S.P.LinkRate)
		}
	}
}

func TestParticleMatchesExactOnSmallProblem(t *testing.T) {
	// On a two-hypothesis problem with a soft (loss-likelihood)
	// observation, the particle posterior must approximate the exact
	// posterior.
	mk := func(p float64, id int32) model.State {
		s := model.Initial(model.Params{LinkRate: 12000, BufferCapBits: 96000, LossProb: p}, false)
		s.ParamsID = id
		return s
	}
	prior := []model.State{mk(0, 0), mk(0.2, 1)}

	exact := NewExact(prior, Config{})
	part := NewParticle(prior, 4000, Config{}, rand.New(rand.NewSource(17)))
	for i := int64(0); i < 3; i++ {
		at := time.Duration(i) * 2 * time.Second
		snd := model.Send{Seq: i, At: at}
		exact.RecordSend(snd)
		part.RecordSend(snd)
		ackAt := deliveryTime(at, 12000)
		ack := []packet.Ack{{Seq: i, ReceivedAt: ackAt}}
		exact.Update(ackAt, ack)
		part.Update(ackAt, ack)
	}
	we := Summarize(exact.Support()).ELossProb
	wp := Summarize(part.Support()).ELossProb
	diff := we - wp
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.03 {
		t.Errorf("particle posterior E[p]=%v vs exact %v (diff %v)", wp, we, diff)
	}
}

func TestParticlePanicsOnEmptyPrior(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty prior did not panic")
		}
	}()
	NewParticle(nil, 10, Config{}, rand.New(rand.NewSource(1)))
}

func TestParticlePanicsOnZeroCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero particle count did not panic")
		}
	}()
	NewParticle(twoRatePrior(12000), 0, Config{}, rand.New(rand.NewSource(1)))
}

func TestESS(t *testing.T) {
	uniform := []Hypothesis{{W: 0.25}, {W: 0.25}, {W: 0.25}, {W: 0.25}}
	if got := ess(uniform); got < 3.999 || got > 4.001 {
		t.Errorf("ess(uniform 4) = %v, want 4", got)
	}
	degenerate := []Hypothesis{{W: 1}, {W: 0}, {W: 0}}
	if got := ess(degenerate); got < 0.999 || got > 1.001 {
		t.Errorf("ess(degenerate) = %v, want 1", got)
	}
	if got := ess([]Hypothesis{{W: 0}}); got != 0 {
		t.Errorf("ess(zero) = %v", got)
	}
}
