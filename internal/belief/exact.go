package belief

import (
	"fmt"
	"sort"
	"time"

	"modelcc/internal/model"
	"modelcc/internal/packet"
	"modelcc/internal/rollout"
)

// Exact is the paper's rejection-sampling belief: it maintains "a list of
// all possible configurations of the network and their corresponding
// probability" (§3.2). Every Update advances each configuration,
// enumerating forks at nondeterministic elements, rejects configurations
// inconsistent with the observed acknowledgments, renormalizes, and
// compacts states that have become identical.
type Exact struct {
	cfg     Config
	hyps    []Hypothesis
	now     time.Duration
	pending []model.Send
	// prior keeps pristine copies of the initial states when
	// Config.Recover is set, so a likelihood collapse can re-seed the
	// belief deterministically.
	prior []model.State
	// recent retains acknowledgments for a short window so soft
	// matching can pair predictions with acks across update
	// boundaries; unused in hard mode.
	recent map[int64]time.Duration
	// Cum accumulates stats over the belief's lifetime.
	Cum UpdateStats

	// pool shards per-hypothesis advances; reused buffers below keep
	// the steady-state update allocation-lean.
	pool   *rollout.Pool
	advBrs [][]model.Branch
	advLws [][]float64
	// lwFlat backs advLws two slots per hypothesis: a segment spans at
	// most one toggle opportunity, so AdvanceEnum yields at most two
	// branches (append falls back to a fresh slice if that ever
	// changes).
	lwFlat  []float64
	next    []Hypothesis
	byKey   map[uint64]int
	segAcks map[int64]time.Duration
}

// recentAckWindow bounds how long soft matching remembers
// acknowledgments.
const recentAckWindow = 5 * time.Second

// NewExact builds an exact belief over the given equally weighted initial
// states (typically from Prior.Enumerate).
func NewExact(states []model.State, cfg Config) *Exact {
	if len(states) == 0 {
		// Invariant, not a network condition: a caller constructed a
		// belief with nothing to believe. No input arriving later can
		// make this sane, so fail at the construction site.
		panic("belief: empty prior")
	}
	w := 1 / float64(len(states))
	hyps := make([]Hypothesis, len(states))
	for i, s := range states {
		hyps[i] = Hypothesis{S: s.Clone(), W: w}
	}
	cfg = cfg.withDefaults()
	pool := cfg.Pool
	if pool == nil {
		pool = rollout.New(cfg.Workers)
	}
	b := &Exact{
		cfg:     cfg,
		hyps:    hyps,
		recent:  make(map[int64]time.Duration),
		pool:    pool,
		byKey:   make(map[uint64]int),
		segAcks: make(map[int64]time.Duration),
	}
	if cfg.Recover {
		b.prior = make([]model.State, len(states))
		for i, s := range states {
			b.prior[i] = s.Clone()
		}
	}
	return b
}

// reseedFromPrior replaces hyps with the pristine prior rebased to at,
// uniformly weighted — the deterministic likelihood-collapse recovery.
func reseedFromPrior(prior []model.State, at time.Duration, dst []Hypothesis) []Hypothesis {
	dst = dst[:0]
	w := 1 / float64(len(prior))
	for i := range prior {
		s := prior[i].Clone()
		s.Rebase(at)
		dst = append(dst, Hypothesis{S: s, W: w})
	}
	return dst
}

// Now implements Belief.
func (b *Exact) Now() time.Duration { return b.now }

// Support implements Belief.
func (b *Exact) Support() []Hypothesis { return b.hyps }

// PendingSends implements Belief.
func (b *Exact) PendingSends() []model.Send { return b.pending }

// RecordSend implements Belief. Sends must be recorded in time order.
func (b *Exact) RecordSend(s model.Send) {
	if n := len(b.pending); n > 0 && b.pending[n-1].At > s.At {
		// Invariant: the sender records its own sends, under its own
		// (monotone) clock — network input cannot reach this path.
		// transport.Sender clamps chaotic clocks monotone before
		// calling in.
		panic("belief: sends recorded out of order")
	}
	b.pending = append(b.pending, s)
}

// Update implements Belief.
//
// The window [previous update, now] is processed in segments bounded by
// toggle opportunities: forking doubles the population at most once per
// segment, and compaction + flooring run after every segment. Without
// this interleaving a long quiet window would enumerate 2^opportunities
// branches before any chance to merge them — compaction must race the
// forks, exactly as the paper describes states being "compacted back
// into one" as soon as they coincide (§3.2).
//
// Acknowledgment matching is segment-local: an ack can only match a
// delivery event in the segment containing its receive time, because
// predicted and observed times agree to within TimeTol, which is far
// smaller than a segment.
func (b *Exact) Update(now time.Duration, acks []packet.Ack) UpdateStats {
	if now < b.now {
		// Invariant: callers drive the belief with a monotone clock
		// (the DES loop by construction, transport.Sender by clamping
		// chaotic wall clocks). Time running backwards here is a
		// driver bug, not a network fault.
		panic(fmt.Sprintf("belief: update time %v precedes previous update %v", now, b.now))
	}
	// Consume the pending sends this window covers.
	nSends := 0
	for nSends < len(b.pending) && b.pending[nSends].At <= now {
		nSends++
	}
	sends := b.pending[:nSends]
	sort.Slice(acks, func(i, j int) bool { return acks[i].ReceivedAt < acks[j].ReceivedAt })

	soft := b.cfg.SoftSigma > 0
	if soft {
		for _, a := range acks {
			b.recent[a.Seq] = a.ReceivedAt
		}
		for seq, at := range b.recent {
			if at < now-recentAckWindow {
				delete(b.recent, seq)
			}
		}
	}

	tick := model.DefaultSwitchTick
	if len(b.hyps) > 0 && b.hyps[0].S.SwitchTick > 0 {
		tick = b.hyps[0].S.SwitchTick
	}

	var stats UpdateStats
	si, ai := 0, 0
	for segStart := b.now; segStart < now || segStart == b.now; {
		segEnd := now
		if boundary := segStart - segStart%tick + tick; boundary < segEnd {
			segEnd = boundary
		}
		// Sends and acks belonging to this segment.
		sHi := si
		for sHi < len(sends) && sends[sHi].At <= segEnd {
			sHi++
		}
		aHi := ai
		for aHi < len(acks) && acks[aHi].ReceivedAt <= segEnd {
			aHi++
		}
		segAcks := b.segAcks
		clear(segAcks)
		for _, a := range acks[ai:aHi] {
			segAcks[a.Seq] = a.ReceivedAt
		}

		// Advance every hypothesis and weigh its branches, sharded
		// across the pool. Workers write only their own index's slots;
		// the shared maps (segAcks, recent) are read-only here.
		if cap(b.advBrs) < len(b.hyps) {
			b.advBrs = make([][]model.Branch, len(b.hyps))
			b.advLws = make([][]float64, len(b.hyps))
			b.lwFlat = make([]float64, 2*len(b.hyps))
			for i := range b.advLws {
				b.advLws[i] = b.lwFlat[2*i : 2*i : 2*i+2]
			}
		}
		advBrs := b.advBrs[:len(b.hyps)]
		advLws := b.advLws[:len(b.hyps)]
		segSends := sends[si:sHi]
		b.pool.Run(len(b.hyps), func(_ *rollout.Scratch, i int) {
			h := &b.hyps[i]
			brs := model.AdvanceEnum(h.S, segEnd, segSends)
			lws := advLws[i][:0]
			for _, br := range brs {
				var lw float64
				if soft {
					lw = softLikelihood(br.Events, b.recent, now, br.S.P.LossProb, b.cfg)
				} else {
					var matched int
					lw, matched = likelihood(br.Events, segAcks, br.S.P.LossProb, b.cfg)
					if matched < len(segAcks) {
						lw = 0 // an acknowledgment the branch cannot explain
					}
				}
				lws = append(lws, lw)
			}
			advBrs[i], advLws[i] = brs, lws
		})

		// Sequential Bayesian reduce, in hypothesis order — identical
		// float operations regardless of worker count.
		next := b.next[:0]
		var total float64
		for i := range b.hyps {
			hW := b.hyps[i].W
			for j, br := range advBrs[i] {
				stats.Branches++
				w := hW * br.W * advLws[i][j]
				// !(w > 0) also rejects NaN (a poisoned likelihood must
				// never propagate into the posterior).
				if !(w > 0) {
					stats.Rejected++
					continue
				}
				next = append(next, Hypothesis{S: br.S, W: w})
				total += w
			}
		}
		if !(total > 0) {
			if b.cfg.Recover {
				// Likelihood collapse: no surviving configuration can
				// explain the observations — corruption, a blackout,
				// or model divergence. Re-seed from the prior at the
				// collapse instant; the segment's observations are
				// abandoned (they condition nothing a fresh prior
				// could know about) and inference restarts.
				stats.Reseeded++
				next = reseedFromPrior(b.prior, segEnd, next)
				total = 1 // reseeded weights are already normalized
			} else if b.cfg.Relax {
				// Keep the pre-segment posterior, advanced without
				// conditioning: accept every branch of the advance we
				// already ran.
				stats.Relaxed++
				next = next[:0]
				total = 0
				for i := range b.hyps {
					hW := b.hyps[i].W
					for _, br := range advBrs[i] {
						w := hW * br.W
						if w <= 0 {
							continue
						}
						next = append(next, Hypothesis{S: br.S, W: w})
						total += w
					}
				}
			} else {
				// Every configuration was rejected: the prior did not
				// contain the truth (or tolerances are too tight).
				// Failing loudly is deliberate — silently resetting
				// the belief would mask a broken model, the exact
				// failure this architecture is meant to surface.
				// Callers facing real networks (transport, soak) must
				// opt into Recover (re-seed) or Relax (freeze)
				// instead; the simulator-facing default stays loud.
				panic("belief: all hypotheses rejected; the prior cannot explain the observations")
			}
		}
		for i := range next {
			next[i].W /= total
		}
		next, merged := compactInto(next, b.byKey)
		stats.Merged += merged
		next, floored := floorAndCap(next, b.cfg.MinWeight, b.cfg.MaxHyps)
		stats.Floored += floored
		// Double-buffer: the outgoing posterior's storage becomes the
		// next segment's append target.
		old := b.hyps
		b.hyps = next
		b.next = old[:0]

		si, ai = sHi, aHi
		if segEnd == now {
			break
		}
		segStart = segEnd
	}

	b.now = now
	b.pending = append(b.pending[:0], b.pending[nSends:]...)
	stats.N = len(b.hyps)
	b.Cum.Branches += stats.Branches
	b.Cum.Rejected += stats.Rejected
	b.Cum.Merged += stats.Merged
	b.Cum.Floored += stats.Floored
	b.Cum.Relaxed += stats.Relaxed
	b.Cum.Reseeded += stats.Reseeded
	b.Cum.N = stats.N
	return stats
}

// compactInto merges hypotheses with identical canonical state keys,
// summing their weights — the paper's "compacted back into one state"
// (§3.2). It reports how many hypotheses were absorbed. Keys are the
// allocation-free Hash64 over the canonical encoding rather than the
// string Key; byKey is a caller-owned (reused) index map.
func compactInto(hyps []Hypothesis, byKey map[uint64]int) ([]Hypothesis, int) {
	clear(byKey)
	out := hyps[:0]
	merged := 0
	for _, h := range hyps {
		k := h.S.Hash64()
		if i, ok := byKey[k]; ok {
			out[i].W += h.W
			merged++
			continue
		}
		byKey[k] = len(out)
		out = append(out, h)
	}
	return out, merged
}

// floorAndCap drops hypotheses below minW, keeps at most maxN of the
// heaviest, and renormalizes. It reports how many were dropped.
func floorAndCap(hyps []Hypothesis, minW float64, maxN int) ([]Hypothesis, int) {
	out := hyps[:0]
	dropped := 0
	for _, h := range hyps {
		if h.W < minW {
			dropped++
			continue
		}
		out = append(out, h)
	}
	if len(out) == 0 {
		// The floor annihilated everything (pathological minW); keep the
		// original set rather than dying.
		out = hyps
		dropped = 0
	}
	if len(out) > maxN {
		sort.Slice(out, func(i, j int) bool { return out[i].W > out[j].W })
		dropped += len(out) - maxN
		out = out[:maxN]
	}
	var total float64
	for _, h := range out {
		total += h.W
	}
	for i := range out {
		out[i].W /= total
	}
	return out, dropped
}
