package belief

import (
	"math/rand"
	"testing"
	"time"

	"modelcc/internal/model"
	"modelcc/internal/packet"
)

// parallelPrior is a small but non-trivial prior for the equivalence
// tests: several link rates and loss levels so updates reject, reweigh,
// fork, and compact.
func parallelPrior() []model.State {
	p := model.Prior{
		LinkRate:       model.PriorRange{Lo: 10000, Hi: 16000, N: 3},
		CrossFrac:      model.PriorRange{Lo: 0.4, Hi: 0.7, N: 2},
		LossProb:       model.PriorRange{Lo: 0, Hi: 0.2, N: 2},
		BufferCapBits:  model.PriorRange{Lo: 72000, Hi: 108000, N: 2},
		FullnessSteps:  2,
		MeanSwitch:     100 * time.Second,
		PingerMaybeOff: true,
	}
	states, _ := p.Enumerate()
	return states
}

// driveBelief runs a fixed send/ack script against b and returns the
// final posterior.
func driveBelief(b Belief) []Hypothesis {
	for s := int64(0); s < 4; s++ {
		at := time.Duration(s) * 2 * time.Second
		b.RecordSend(model.Send{Seq: s, At: at})
		b.Update(at+1500*time.Millisecond, []packet.Ack{{Seq: s, ReceivedAt: at + 1200*time.Millisecond}})
	}
	return b.Support()
}

// sameSupport asserts two posteriors are identical: same states in the
// same order with bitwise-equal weights.
func sameSupport(t *testing.T, serial, parallel []Hypothesis) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("support sizes differ: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].S.Key() != parallel[i].S.Key() {
			t.Fatalf("hypothesis %d state differs between worker counts", i)
		}
		if serial[i].W != parallel[i].W {
			t.Fatalf("hypothesis %d weight differs: serial %v, parallel %v", i, serial[i].W, parallel[i].W)
		}
	}
}

// TestExactParallelEquivalence: Exact.Update is bit-identical with 1
// worker and with many.
func TestExactParallelEquivalence(t *testing.T) {
	states := parallelPrior()
	cfg := Config{SoftSigma: 100 * time.Millisecond, Relax: true}

	serialCfg := cfg
	serialCfg.Workers = 1
	parCfg := cfg
	parCfg.Workers = 7

	sup1 := driveBelief(NewExact(states, serialCfg))
	supN := driveBelief(NewExact(states, parCfg))
	sameSupport(t, sup1, supN)
}

// TestExactParallelEquivalenceHard: same check with hard rejection.
func TestExactParallelEquivalenceHard(t *testing.T) {
	states := parallelPrior()
	sup1 := driveBelief(NewExact(states, Config{Workers: 1, Relax: true}))
	supN := driveBelief(NewExact(states, Config{Workers: 5, Relax: true}))
	sameSupport(t, sup1, supN)
}

// TestParticleParallelEquivalence: for a fixed seed, the particle filter
// advances, reweighs, and resamples identically for any worker count —
// each particle draws from its own stream derived from the parent seed,
// not from a shared source whose consumption order would depend on
// scheduling.
func TestParticleParallelEquivalence(t *testing.T) {
	states := parallelPrior()
	mk := func(workers int) Belief {
		return NewParticle(states, 500, Config{Workers: workers, Relax: true},
			rand.New(rand.NewSource(99)))
	}
	sup1 := driveBelief(mk(1))
	supN := driveBelief(mk(6))
	sameSupport(t, sup1, supN)
}
