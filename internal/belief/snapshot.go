package belief

import (
	"errors"
	"sort"
	"time"

	"modelcc/internal/model"
	"modelcc/internal/rollout"
)

// Snapshot is a belief's complete serializable decision state: enough
// to rebuild an Exact or Particle belief that resumes bit-identically —
// same posterior, same pending sends, same soft-matching ack memory,
// same RNG stream position. internal/lifecycle encodes Snapshots into
// versioned member checkpoints; the prior states themselves are NOT
// part of the snapshot (they are re-derived from the configuration, and
// the checkpoint header binds their identity via policy.HashPrior).
type Snapshot struct {
	// Particle distinguishes the two belief kinds; a snapshot restores
	// only into the kind that produced it.
	Particle bool
	// Now is the time of the last update.
	Now time.Duration
	// Hyps is the weighted support: the posterior for Exact, the raw
	// (uncompacted) particle population for Particle.
	Hyps []Hypothesis
	// Pending are the recorded-but-unfolded sends, oldest first.
	Pending []model.Send
	// Recent is the soft-matching ack memory, ascending by Seq (sorted
	// so snapshots of the same belief are canonical).
	Recent []AckMemo
	// Cum is the lifetime update-stats accumulator.
	Cum UpdateStats
	// RNG is the particle stream's state word (Particle only).
	RNG uint64
	// Resamples is the particle resampling counter (Particle only).
	Resamples int
}

// AckMemo is one remembered acknowledgment of the soft-matching window.
type AckMemo struct {
	Seq int64
	At  time.Duration
}

// memosFromMap flattens the recent-ack map in ascending Seq order.
func memosFromMap(recent map[int64]time.Duration) []AckMemo {
	if len(recent) == 0 {
		return nil
	}
	out := make([]AckMemo, 0, len(recent))
	for seq, at := range recent {
		out = append(out, AckMemo{Seq: seq, At: at})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// validate rejects snapshots no belief could have produced, so a
// decoded-from-disk snapshot can never build a silently wrong belief.
func (sn *Snapshot) validate() error {
	if len(sn.Hyps) == 0 {
		return errors.New("belief: snapshot has no hypotheses")
	}
	var total float64
	for _, h := range sn.Hyps {
		if !(h.W >= 0) { // rejects NaN and negatives
			return errors.New("belief: snapshot hypothesis weight is negative or NaN")
		}
		total += h.W
	}
	if !(total > 0) {
		return errors.New("belief: snapshot weights sum to zero")
	}
	for i := 1; i < len(sn.Pending); i++ {
		if sn.Pending[i].At < sn.Pending[i-1].At {
			return errors.New("belief: snapshot pending sends out of order")
		}
	}
	return nil
}

// Snapshot captures the belief's full decision state. The returned
// snapshot owns deep copies of every state; it stays valid across later
// updates.
func (b *Exact) Snapshot() Snapshot {
	sn := Snapshot{Now: b.now, Cum: b.Cum}
	sn.Hyps = make([]Hypothesis, len(b.hyps))
	for i, h := range b.hyps {
		sn.Hyps[i] = Hypothesis{S: h.S.Clone(), W: h.W}
	}
	if len(b.pending) > 0 {
		sn.Pending = append([]model.Send(nil), b.pending...)
	}
	sn.Recent = memosFromMap(b.recent)
	return sn
}

// RestoreExact rebuilds an Exact belief from a snapshot over the given
// prior states (needed only when cfg.Recover re-seeds after a
// collapse). The restored belief resumes bit-identically: the same
// Update sequence yields the same posteriors as the original would
// have. The snapshot's states are cloned; the caller may keep it.
func RestoreExact(states []model.State, cfg Config, sn Snapshot) (*Exact, error) {
	if sn.Particle {
		return nil, errors.New("belief: particle snapshot cannot restore an exact belief")
	}
	if err := sn.validate(); err != nil {
		return nil, err
	}
	b := NewExact(states, cfg)
	b.hyps = make([]Hypothesis, len(sn.Hyps))
	for i, h := range sn.Hyps {
		b.hyps[i] = Hypothesis{S: h.S.Clone(), W: h.W}
	}
	b.now = sn.Now
	b.pending = append([]model.Send(nil), sn.Pending...)
	for _, m := range sn.Recent {
		b.recent[m.Seq] = m.At
	}
	b.Cum = sn.Cum
	return b, nil
}

// Snapshot captures the particle belief's full decision state,
// including its private RNG stream position, so the restored filter's
// future toggle draws and resampling offsets match the original's.
func (b *Particle) Snapshot() Snapshot {
	sn := Snapshot{
		Particle:  true,
		Now:       b.now,
		Cum:       b.Cum,
		RNG:       b.rng.State(),
		Resamples: b.Resamples,
	}
	sn.Hyps = make([]Hypothesis, len(b.particles))
	for i, p := range b.particles {
		sn.Hyps[i] = Hypothesis{S: p.S.Clone(), W: p.W}
	}
	if len(b.pending) > 0 {
		sn.Pending = append([]model.Send(nil), b.pending...)
	}
	sn.Recent = memosFromMap(b.recent)
	return sn
}

// RestoreParticle rebuilds a Particle belief from a snapshot over the
// given prior states. Resumption is bit-identical: the RNG stream
// continues from the snapshot's word.
func RestoreParticle(states []model.State, cfg Config, sn Snapshot) (*Particle, error) {
	if !sn.Particle {
		return nil, errors.New("belief: exact snapshot cannot restore a particle belief")
	}
	if len(states) == 0 {
		return nil, errors.New("belief: empty prior")
	}
	if err := sn.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	pool := cfg.Pool
	if pool == nil {
		pool = rollout.New(cfg.Workers)
	}
	n := len(sn.Hyps)
	b := &Particle{
		cfg:       cfg,
		rng:       rollout.RandFromState(sn.RNG),
		particles: make([]Hypothesis, n),
		now:       sn.Now,
		dirty:     true,
		pool:      pool,
		lws:       make([]float64, n),
		prevW:     make([]float64, n),
		byKey:     make(map[uint64]int),
		Resamples: sn.Resamples,
		Cum:       sn.Cum,
	}
	for i, h := range sn.Hyps {
		b.particles[i] = Hypothesis{S: h.S.Clone(), W: h.W}
	}
	b.pending = append([]model.Send(nil), sn.Pending...)
	if len(sn.Recent) > 0 {
		b.recent = make(map[int64]time.Duration, len(sn.Recent))
		for _, m := range sn.Recent {
			b.recent[m.Seq] = m.At
		}
	}
	if cfg.Recover {
		b.prior = make([]model.State, len(states))
		for i, s := range states {
			b.prior[i] = s.Clone()
		}
	}
	return b, nil
}
