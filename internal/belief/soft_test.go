package belief

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"modelcc/internal/model"
	"modelcc/internal/packet"
)

func softBeliefCfg() Config {
	return Config{SoftSigma: 50 * time.Millisecond, Relax: true}
}

func TestSoftLikelihoodGaussianShape(t *testing.T) {
	cfg := softBeliefCfg()
	evs := []model.Event{{Kind: model.OwnDelivered, Seq: 0, At: time.Second}}
	mk := func(offset time.Duration) float64 {
		acks := map[int64]time.Duration{0: time.Second + offset}
		return softLikelihood(evs, acks, 2*time.Second, 0, cfg)
	}
	exact := mk(0)
	oneSigma := mk(50 * time.Millisecond)
	threeSigma := mk(150 * time.Millisecond)
	if exact != 1 {
		t.Errorf("exact match likelihood = %v, want 1", exact)
	}
	if math.Abs(oneSigma-math.Exp(-0.5)) > 1e-12 {
		t.Errorf("1σ likelihood = %v, want e^-0.5", oneSigma)
	}
	if threeSigma >= oneSigma {
		t.Error("likelihood not decreasing with timing error")
	}
	// Symmetric in the sign of the error.
	if math.Abs(mk(-50*time.Millisecond)-oneSigma) > 1e-12 {
		t.Error("soft likelihood asymmetric")
	}
}

func TestSoftLikelihoodGraceWindow(t *testing.T) {
	cfg := softBeliefCfg()
	// Prediction 100 ms ago, no ack yet: within the 4σ=200 ms grace it
	// must be neutral, after it must be penalized.
	evs := []model.Event{{Kind: model.OwnDelivered, Seq: 0, At: time.Second}}
	none := map[int64]time.Duration{}
	recent := softLikelihood(evs, none, time.Second+100*time.Millisecond, 0, cfg)
	if recent != 1 {
		t.Errorf("pending prediction weighted %v, want neutral 1", recent)
	}
	stale := softLikelihood(evs, none, 3*time.Second, 0, cfg)
	if stale >= 0.05 {
		t.Errorf("stale unacked prediction weighted %v, want <= miss floor region", stale)
	}
	// With a real loss probability the penalty is that probability.
	staleLossy := softLikelihood(evs, none, 3*time.Second, 0.2, cfg)
	if math.Abs(staleLossy-0.2) > 1e-12 {
		t.Errorf("lossy miss = %v, want 0.2", staleLossy)
	}
}

func TestSoftLikelihoodBufferDropContradiction(t *testing.T) {
	cfg := softBeliefCfg()
	evs := []model.Event{{Kind: model.OwnBufferDrop, Seq: 3, At: time.Second}}
	acks := map[int64]time.Duration{3: 1100 * time.Millisecond}
	w := softLikelihood(evs, acks, 2*time.Second, 0, cfg)
	if w > 1e-10 {
		t.Errorf("acked-but-dropped weighted %v, want crushing", w)
	}
	if w == 0 {
		t.Error("soft contradiction must crush, not kill")
	}
}

func TestSoftModeSurvivesBoundaryStraddle(t *testing.T) {
	// The regression the UDP transport exposed: a prediction and its
	// ack separated by an update boundary must not kill a p=0
	// hypothesis in soft mode.
	s := model.Initial(model.Params{LinkRate: 12000, BufferCapBits: 96000}, false)
	b := NewExact([]model.State{s}, softBeliefCfg())
	b.RecordSend(model.Send{Seq: 0, At: 0})
	// Update just before the predicted 1 s delivery: nothing observed.
	b.Update(990*time.Millisecond, nil)
	// The ack arrives 30 ms "late" relative to the model, in the next
	// update window.
	b.Update(1100*time.Millisecond, []packet.Ack{{Seq: 0, ReceivedAt: 1030 * time.Millisecond}})
	if len(b.Support()) != 1 {
		t.Fatalf("hypothesis killed by boundary straddle: %d left", len(b.Support()))
	}
	if w := TotalWeight(b.Support()); w < 0.999999 || w > 1.000001 {
		t.Errorf("weights = %v", w)
	}
}

func TestSoftModeRanksRatesByFit(t *testing.T) {
	// Acks at 12 kbit/s timings with ±20 ms jitter: the 12 kbit/s
	// hypothesis must end up dominant even though no hypothesis matches
	// exactly.
	states := twoRatePrior(12000, 18000)
	b := NewExact(states, softBeliefCfg())
	rng := rand.New(rand.NewSource(5))
	for i := int64(0); i < 6; i++ {
		at := time.Duration(i) * 2 * time.Second
		b.RecordSend(model.Send{Seq: i, At: at})
		jitter := time.Duration(rng.Intn(41)-20) * time.Millisecond
		ackAt := at + time.Second + jitter
		b.Update(ackAt+time.Millisecond, []packet.Ack{{Seq: i, ReceivedAt: ackAt}})
	}
	var w12 float64
	for _, h := range b.Support() {
		if h.S.P.LinkRate == 12000 {
			w12 += h.W
		}
	}
	if w12 < 0.99 {
		t.Errorf("P(c=12000 | jittered acks) = %v, want > 0.99", w12)
	}
}

func TestSoftModeRelaxSurvivesNonsense(t *testing.T) {
	// An ack for a packet never sent is inexplicable under every
	// hypothesis; Relax mode must keep the posterior alive and count
	// the event... the prediction side cannot match, and the ack is
	// simply unexplained: with a sent packet dropped at the buffer in
	// every world AND an ack observed, all worlds crush; Relax rescues.
	p := model.Params{LinkRate: 12000, BufferCapBits: 12000, InitFullBits: 12000}
	s := model.Initial(p, false)
	b := NewExact([]model.State{s}, softBeliefCfg())
	// Fill the single-packet buffer, then send another that must drop.
	b.RecordSend(model.Send{Seq: 0, At: 0})
	b.RecordSend(model.Send{Seq: 1, At: 1 * time.Millisecond})
	b.RecordSend(model.Send{Seq: 2, At: 2 * time.Millisecond})
	// Claim seq 2 (predicted dropped in every world) was acked: the
	// crush applies but the single world survives via renormalization,
	// exercising the crushing path end to end.
	st := b.Update(5*time.Second, []packet.Ack{
		{Seq: 0, ReceivedAt: time.Second},
		{Seq: 1, ReceivedAt: 2 * time.Second},
		{Seq: 2, ReceivedAt: 3 * time.Second},
	})
	if st.N == 0 {
		t.Fatal("belief died despite Relax")
	}
	if w := TotalWeight(b.Support()); w < 0.999999 || w > 1.000001 {
		t.Errorf("weights = %v", w)
	}
}

// TestWeightsNormalizedProperty: after any plausible soft update
// sequence, weights sum to 1.
func TestWeightsNormalizedProperty(t *testing.T) {
	f := func(jitters []int8) bool {
		states := twoRatePrior(10000, 12000, 14000)
		b := NewExact(states, softBeliefCfg())
		now := time.Duration(0)
		for i, j := range jitters {
			if i >= 8 {
				break
			}
			seq := int64(i)
			at := now + 100*time.Millisecond
			b.RecordSend(model.Send{Seq: seq, At: at})
			ackAt := at + time.Second + time.Duration(j)*time.Millisecond
			if ackAt <= now {
				ackAt = now + time.Millisecond
			}
			now = ackAt
			b.Update(now, []packet.Ack{{Seq: seq, ReceivedAt: ackAt}})
			w := TotalWeight(b.Support())
			if w < 0.999999 || w > 1.000001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Error(err)
	}
}
