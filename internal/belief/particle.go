package belief

import (
	"fmt"
	"math/rand"
	"time"

	"modelcc/internal/model"
	"modelcc/internal/packet"
	"modelcc/internal/rollout"
)

// Particle is the scalable belief the paper points to as future work
// (§3.2, §5): instead of enumerating every configuration, it carries N
// samples ("particles"). Each update advances every particle with
// *sampled* gate toggles, reweights it by the likelihood of the observed
// acknowledgments, and resamples (systematic resampling) when the
// effective sample size collapses.
//
// Compared to Exact it trades exactness for a cost independent of how
// bushy the fork tree is.
type Particle struct {
	cfg Config
	// rng is a single-word SplitMix64 stream rather than *rand.Rand so
	// the filter's entire random state is one serializable word
	// (Snapshot/RestoreParticle round-trip it bit-identically); it is
	// seeded once from the caller's source at construction.
	rng       rollout.Rand
	particles []Hypothesis
	now       time.Duration
	pending   []model.Send
	// prior keeps pristine initial states for Config.Recover
	// re-seeding after a likelihood collapse.
	prior     []model.State
	recent    map[int64]time.Duration // soft-mode ack memory
	compacted []Hypothesis            // cache for Support
	dirty     bool

	// pool shards per-particle advances; lws/prevW are reused
	// per-index result slots.
	pool  *rollout.Pool
	lws   []float64
	prevW []float64
	byKey map[uint64]int

	// Resamples counts resampling rounds, for instrumentation.
	Resamples int
	// Cum accumulates stats over the belief's lifetime (mirrors
	// Exact.Cum; supervisors watch Cum.Reseeded as a health signal).
	Cum UpdateStats
}

// NewParticle draws n particles uniformly from the given prior states.
// With n >= len(states) every prior state is included at least once by
// stratified assignment, which keeps the true configuration in the
// initial particle set whenever the prior contains it.
func NewParticle(states []model.State, n int, cfg Config, rng *rand.Rand) *Particle {
	if len(states) == 0 {
		// Invariant: construction-time misuse, unreachable from
		// network input (see the matching check in NewExact).
		panic("belief: empty prior")
	}
	if n <= 0 {
		// Invariant: a zero-particle filter cannot represent anything.
		panic("belief: particle count must be positive")
	}
	// All randomness — construction draws included — comes from one
	// SplitMix64 stream seeded by the caller's source, so the filter's
	// full random state is a single checkpointable word.
	stream := rollout.RandFromState(rng.Uint64())
	w := 1 / float64(n)
	ps := make([]Hypothesis, n)
	for i := 0; i < n; i++ {
		var src model.State
		if n >= len(states) {
			// Stratified: cycle the prior, then fill the remainder
			// randomly.
			if i < len(states) {
				src = states[i]
			} else {
				src = states[stream.Intn(len(states))]
			}
		} else {
			src = states[stream.Intn(len(states))]
		}
		ps[i] = Hypothesis{S: src.Clone(), W: w}
	}
	cfg = cfg.withDefaults()
	pool := cfg.Pool
	if pool == nil {
		pool = rollout.New(cfg.Workers)
	}
	b := &Particle{
		cfg:       cfg,
		rng:       stream,
		particles: ps,
		dirty:     true,
		pool:      pool,
		lws:       make([]float64, n),
		prevW:     make([]float64, n),
		byKey:     make(map[uint64]int),
	}
	if cfg.Recover {
		b.prior = make([]model.State, len(states))
		for i, s := range states {
			b.prior[i] = s.Clone()
		}
	}
	return b
}

// reseed restores the particle population from the pristine prior at
// time at: stratified over the prior states (every state included once
// while particles remain, like NewParticle), uniform weights.
func (b *Particle) reseed(at time.Duration) {
	n := len(b.particles)
	w := 1 / float64(n)
	for i := 0; i < n; i++ {
		var src *model.State
		if i < len(b.prior) {
			src = &b.prior[i]
		} else {
			src = &b.prior[b.rng.Intn(len(b.prior))]
		}
		s := src.Clone()
		s.Rebase(at)
		b.particles[i] = Hypothesis{S: s, W: w}
	}
}

// Now implements Belief.
func (b *Particle) Now() time.Duration { return b.now }

// PendingSends implements Belief.
func (b *Particle) PendingSends() []model.Send { return b.pending }

// RecordSend implements Belief.
func (b *Particle) RecordSend(s model.Send) {
	if n := len(b.pending); n > 0 && b.pending[n-1].At > s.At {
		// Invariant: see the matching check in Exact.RecordSend —
		// sends come from the sender's own monotone clock, never from
		// the network.
		panic("belief: sends recorded out of order")
	}
	b.pending = append(b.pending, s)
}

// NumParticles reports the particle count.
func (b *Particle) NumParticles() int { return len(b.particles) }

// Support implements Belief: particles compacted by state key so the
// planner's cost scales with distinct states, not the particle count.
func (b *Particle) Support() []Hypothesis {
	if b.dirty {
		cp := append(b.compacted[:0], b.particles...)
		cp, _ = compactInto(cp, b.byKey)
		b.compacted = cp
		b.dirty = false
	}
	return b.compacted
}

// Update implements Belief.
func (b *Particle) Update(now time.Duration, acks []packet.Ack) UpdateStats {
	if now < b.now {
		// Invariant: drivers supply a monotone clock (see
		// Exact.Update).
		panic(fmt.Sprintf("belief: update time %v precedes previous update %v", now, b.now))
	}
	nSends := 0
	for nSends < len(b.pending) && b.pending[nSends].At <= now {
		nSends++
	}
	sends := b.pending[:nSends]

	ackBySeq := make(map[int64]time.Duration, len(acks))
	for _, a := range acks {
		ackBySeq[a.Seq] = a.ReceivedAt
	}
	soft := b.cfg.SoftSigma > 0
	if soft {
		if b.recent == nil {
			b.recent = make(map[int64]time.Duration)
		}
		for _, a := range acks {
			b.recent[a.Seq] = a.ReceivedAt
		}
		for seq, at := range b.recent {
			if at < now-recentAckWindow {
				delete(b.recent, seq)
			}
		}
	}

	var stats UpdateStats
	var total float64
	prevW := b.prevW
	// One parent draw per update seeds every particle's private stream,
	// so the sampled toggles are identical for any worker count.
	streamSeed := int64(b.rng.Uint64())
	b.pool.Run(len(b.particles), func(s *rollout.Scratch, i int) {
		p := &b.particles[i]
		prevW[i] = p.W
		rng := rollout.Stream(streamSeed, i)
		s.Events = advanceSampled(&p.S, now, sends, &rng, s.Events[:0])
		var lw float64
		if soft {
			lw = softLikelihood(s.Events, b.recent, now, p.S.P.LossProb, b.cfg)
		} else {
			var matched int
			lw, matched = likelihood(s.Events, ackBySeq, p.S.P.LossProb, b.cfg)
			if matched < len(ackBySeq) {
				lw = 0
			}
		}
		b.lws[i] = lw
	})
	for i := range b.particles {
		p := &b.particles[i]
		stats.Branches++
		// !(lw > 0) also rejects NaN likelihoods — a poisoned weight
		// must never reach the posterior.
		if !(b.lws[i] > 0) {
			stats.Rejected++
			p.W = 0
			continue
		}
		p.W *= b.lws[i]
		total += p.W
	}
	if !(total > 0) {
		if b.cfg.Recover {
			// Likelihood collapse: re-seed the population from the
			// prior at the collapse instant (deterministic given the
			// belief's own rng stream) instead of NaN-ing on the 0/0
			// normalization below.
			stats.Reseeded++
			b.reseed(now)
		} else if b.cfg.Relax {
			// Keep the advanced particles with their previous weights.
			stats.Relaxed++
			total = 0
			for i := range b.particles {
				b.particles[i].W = prevW[i]
				total += prevW[i]
			}
			for i := range b.particles {
				b.particles[i].W /= total
			}
		} else {
			// Invariant by configuration: the caller asserted the
			// prior contains the truth. Real-network callers opt into
			// Recover/Relax instead.
			panic("belief: all particles rejected; increase particle count or widen the prior")
		}
	} else {
		for i := range b.particles {
			b.particles[i].W /= total
		}
	}

	// Resample when the effective sample size drops below half. A
	// fresh reseed is uniform (ESS = n), so it never resamples here.
	if ess(b.particles) < float64(len(b.particles))/2 {
		b.systematicResample()
		b.Resamples++
	}

	b.now = now
	b.pending = append(b.pending[:0], b.pending[nSends:]...)
	b.dirty = true
	stats.N = len(b.Support())
	b.Cum.Branches += stats.Branches
	b.Cum.Rejected += stats.Rejected
	b.Cum.Relaxed += stats.Relaxed
	b.Cum.Reseeded += stats.Reseeded
	b.Cum.N = stats.N
	return stats
}

// advanceSampled advances one particle to `until`, drawing gate toggles
// from the particle's private stream at the same discretized
// opportunities AdvanceEnum forks at. Events are appended to evs, which
// is returned (callers pass a reused scratch buffer).
func advanceSampled(s *model.State, until time.Duration, sends []model.Send, rng *rollout.Rand, evs []model.Event) []model.Event {
	si := 0
	for s.SwitchTick > 0 && s.P.MeanSwitch > 0 && s.NextToggle <= until {
		at := s.NextToggle
		hi := si
		for hi < len(sends) && sends[hi].At <= at {
			hi++
		}
		s.Run(at, sends[si:hi], &evs)
		si = hi
		s.NextToggle += s.SwitchTick
		if rng.Float64() < model.ToggleProb(s.SwitchTick, s.P.MeanSwitch) {
			s.Toggle()
		}
	}
	s.Run(until, sends[si:], &evs)
	return evs
}

// ess computes the effective sample size 1/Σw².
func ess(ps []Hypothesis) float64 {
	var sumSq float64
	for _, p := range ps {
		sumSq += p.W * p.W
	}
	if sumSq == 0 {
		return 0
	}
	return 1 / sumSq
}

// systematicResample redraws the particle population with systematic
// (low-variance) resampling and resets weights to uniform.
func (b *Particle) systematicResample() {
	n := len(b.particles)
	out := make([]Hypothesis, 0, n)
	step := 1.0 / float64(n)
	u := b.rng.Float64() * step
	var cum float64
	i := 0
	for j := 0; j < n; j++ {
		target := u + float64(j)*step
		for cum+b.particles[i].W < target && i < n-1 {
			cum += b.particles[i].W
			i++
		}
		out = append(out, Hypothesis{S: b.particles[i].S.Clone(), W: step})
	}
	b.particles = out
}
