package belief

import (
	"modelcc/internal/units"
)

// Estimates summarizes a posterior for experiment reporting: posterior
// means of the unknown parameters and the probability the pinger is
// currently on. The ISENDER itself never uses point estimates — it plans
// against the full distribution — but the figures report them.
type Estimates struct {
	// N is the number of distinct hypotheses.
	N int
	// PPingerOn is the posterior probability the cross-traffic gate is
	// connected.
	PPingerOn float64
	// ELinkRate is the posterior mean link speed.
	ELinkRate units.BitRate
	// ECrossRate is the posterior mean cross-traffic rate.
	ECrossRate units.BitRate
	// ELossProb is the posterior mean stochastic loss rate.
	ELossProb float64
	// EBufferCap is the posterior mean buffer capacity in bits.
	EBufferCap float64
	// EQueueBits is the posterior mean current queue occupancy in bits
	// (including the in-service packet).
	EQueueBits float64
	// MAPWeight is the weight of the heaviest hypothesis.
	MAPWeight float64
}

// Summarize computes posterior summaries over a support set.
func Summarize(hyps []Hypothesis) Estimates {
	var e Estimates
	e.N = len(hyps)
	for _, h := range hyps {
		w := h.W
		if h.S.PingerOn {
			e.PPingerOn += w
		}
		e.ELinkRate += units.BitRate(w * float64(h.S.P.LinkRate))
		e.ECrossRate += units.BitRate(w * float64(h.S.P.CrossRate))
		e.ELossProb += w * h.S.P.LossProb
		e.EBufferCap += w * float64(h.S.P.BufferCapBits)
		e.EQueueBits += w * float64(h.S.SystemBits())
		if w > e.MAPWeight {
			e.MAPWeight = w
		}
	}
	return e
}

// TotalWeight sums the hypothesis weights (should always be ~1; exposed
// for the property tests).
func TotalWeight(hyps []Hypothesis) float64 {
	var t float64
	for _, h := range hyps {
		t += h.W
	}
	return t
}

// MAP returns the maximum a posteriori hypothesis.
func MAP(hyps []Hypothesis) Hypothesis {
	var best Hypothesis
	for _, h := range hyps {
		if h.W > best.W {
			best = h
		}
	}
	return best
}
