package belief

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"modelcc/internal/model"
	"modelcc/internal/packet"
)

func tinyPrior() []model.State {
	states, _ := model.Prior{
		LinkRate:      model.PriorRange{Lo: 10000, Hi: 14000, N: 3},
		BufferCapBits: model.PriorRange{Lo: 96000, Hi: 96000, N: 1},
		FullnessSteps: 2,
	}.Enumerate()
	return states
}

// impossibleAck is an acknowledgment no hypothesis can explain: the
// sender never recorded a send for that sequence number, so every
// branch has matched < len(segAcks) and is rejected — exactly what a
// corrupted datagram or a post-blackout stale ack produces.
func impossibleAck(at time.Duration) []packet.Ack {
	return []packet.Ack{{Flow: packet.FlowSelf, Seq: 9999, SentAt: 0, ReceivedAt: at}}
}

func finiteNormalized(t *testing.T, sup []Hypothesis) {
	t.Helper()
	var total float64
	for _, h := range sup {
		if math.IsNaN(h.W) || math.IsInf(h.W, 0) {
			t.Fatalf("non-finite weight %v after recovery", h.W)
		}
		total += h.W
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("weights sum to %v after recovery, want 1", total)
	}
}

// TestExactRecoverReseeds: a zero-likelihood observation under Recover
// re-seeds from the prior instead of panicking or NaN-ing, and the
// belief keeps working afterwards.
func TestExactRecoverReseeds(t *testing.T) {
	states := tinyPrior()
	b := NewExact(states, Config{Recover: true})
	st := b.Update(2*time.Second, impossibleAck(1500*time.Millisecond))
	if st.Reseeded == 0 {
		t.Fatal("impossible ack did not trigger a reseed")
	}
	finiteNormalized(t, b.Support())
	if len(b.Support()) == 0 {
		t.Fatal("reseed produced an empty posterior")
	}
	// The reseeded states must live at the collapse instant, not time 0.
	for _, h := range b.Support() {
		if h.S.Now < 1*time.Second {
			t.Fatalf("reseeded hypothesis at Now=%v, want rebased to the collapse segment", h.S.Now)
		}
	}
	// Subsequent clean updates proceed normally.
	st = b.Update(4*time.Second, nil)
	if st.Reseeded != 0 {
		t.Fatal("clean update reseeded")
	}
	finiteNormalized(t, b.Support())
}

// TestExactRecoverDeterministic: the same collapse replays to the same
// posterior.
func TestExactRecoverDeterministic(t *testing.T) {
	run := func() []Hypothesis {
		b := NewExact(tinyPrior(), Config{Recover: true})
		b.Update(2*time.Second, impossibleAck(1500*time.Millisecond))
		b.Update(5*time.Second, nil)
		out := make([]Hypothesis, len(b.Support()))
		copy(out, b.Support())
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].W != b[i].W || a[i].S.Hash64() != b[i].S.Hash64() {
			t.Fatalf("replay diverges at hypothesis %d", i)
		}
	}
}

// TestExactDefaultStillPanics: without Recover/Relax the loud failure
// is preserved (simulator callers rely on it surfacing model bugs).
func TestExactDefaultStillPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("default config did not panic on collapse")
		}
	}()
	b := NewExact(tinyPrior(), Config{})
	b.Update(2*time.Second, impossibleAck(1500*time.Millisecond))
}

// TestParticleRecoverReseeds is the particle-filter twin.
func TestParticleRecoverReseeds(t *testing.T) {
	states := tinyPrior()
	b := NewParticle(states, 64, Config{Recover: true}, rand.New(rand.NewSource(5)))
	st := b.Update(2*time.Second, impossibleAck(1500*time.Millisecond))
	if st.Reseeded == 0 {
		t.Fatal("impossible ack did not trigger a particle reseed")
	}
	finiteNormalized(t, b.Support())
	for _, h := range b.Support() {
		if h.S.Now < 2*time.Second {
			t.Fatalf("reseeded particle at Now=%v, want the collapse instant", h.S.Now)
		}
	}
	st = b.Update(4*time.Second, nil)
	if st.Reseeded != 0 {
		t.Fatal("clean update reseeded")
	}
	finiteNormalized(t, b.Support())
}

// TestRecoverBeatsRelax: with both set, Recover wins.
func TestRecoverBeatsRelax(t *testing.T) {
	b := NewExact(tinyPrior(), Config{Recover: true, Relax: true})
	st := b.Update(2*time.Second, impossibleAck(1500*time.Millisecond))
	if st.Reseeded == 0 || st.Relaxed != 0 {
		t.Fatalf("precedence wrong: reseeded=%d relaxed=%d", st.Reseeded, st.Relaxed)
	}
}
