package belief

import (
	"math/rand"
	"testing"
	"time"

	"modelcc/internal/model"
	"modelcc/internal/packet"
	"modelcc/internal/units"
)

// twoRatePrior builds a tiny prior with two candidate link speeds and
// nothing else unknown: the cleanest possible inference problem.
func twoRatePrior(rates ...units.BitRate) []model.State {
	var states []model.State
	for i, c := range rates {
		p := model.Params{LinkRate: c, BufferCapBits: 96000}
		s := model.Initial(p, false)
		s.ParamsID = int32(i)
		states = append(states, s)
	}
	return states
}

// deliveryTime computes when a single packet sent at `at` on an idle
// link of rate c is delivered.
func deliveryTime(at time.Duration, c units.BitRate) time.Duration {
	return at + units.TransmitTime(packet.DefaultSizeBits, c)
}

func TestExactRejectsWrongLinkRate(t *testing.T) {
	b := NewExact(twoRatePrior(12000, 24000), Config{})
	if len(b.Support()) != 2 {
		t.Fatalf("initial support = %d", len(b.Support()))
	}

	// Send one packet at t=0; the true network is 12 kbit/s, so the ack
	// arrives at 1s. The 24 kbit/s hypothesis predicted 0.5s and must be
	// rejected.
	b.RecordSend(model.Send{Seq: 0, At: 0})
	ack := packet.Ack{Seq: 0, ReceivedAt: deliveryTime(0, 12000)}
	stats := b.Update(ack.ReceivedAt, []packet.Ack{ack})

	if stats.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", stats.Rejected)
	}
	sup := b.Support()
	if len(sup) != 1 {
		t.Fatalf("support = %d, want 1", len(sup))
	}
	if sup[0].S.P.LinkRate != 12000 {
		t.Errorf("surviving rate = %v, want 12000", sup[0].S.P.LinkRate)
	}
	if w := TotalWeight(sup); w < 0.999999 || w > 1.000001 {
		t.Errorf("weights sum to %v", w)
	}
}

func TestExactLossLikelihoodShiftsPosterior(t *testing.T) {
	// Two hypotheses identical except loss rate: p=0 vs p=0.2. A packet
	// acknowledged on time is evidence for low loss: posterior mass on
	// p=0 must rise above 0.5.
	mk := func(p float64, id int32) model.State {
		s := model.Initial(model.Params{LinkRate: 12000, BufferCapBits: 96000, LossProb: p}, false)
		s.ParamsID = id
		return s
	}
	b := NewExact([]model.State{mk(0, 0), mk(0.2, 1)}, Config{})
	b.RecordSend(model.Send{Seq: 0, At: 0})
	b.Update(time.Second, []packet.Ack{{Seq: 0, ReceivedAt: time.Second}})

	var pLow float64
	for _, h := range b.Support() {
		if h.S.P.LossProb == 0 {
			pLow = h.W
		}
	}
	want := 1.0 / (1.0 + 0.8) // Bayes: 1·0.5 vs 0.8·0.5
	if diff := pLow - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("P(p=0 | acked) = %v, want %v", pLow, want)
	}

	// Conversely, an unacknowledged packet whose delivery time has
	// passed is evidence FOR loss: p=0 predicts delivery with certainty,
	// so it must be rejected outright.
	b2 := NewExact([]model.State{mk(0, 0), mk(0.2, 1)}, Config{})
	b2.RecordSend(model.Send{Seq: 0, At: 0})
	b2.Update(5*time.Second, nil) // no ack ever arrived
	sup := b2.Support()
	if len(sup) != 1 || sup[0].S.P.LossProb != 0.2 {
		t.Fatalf("lossless hypothesis should be rejected when an ack goes missing: %+v", sup)
	}
}

func TestExactInfersBufferFullness(t *testing.T) {
	// Unknown initial fullness: empty vs 4 packets. A packet sent at
	// t=0 is delivered at 1s if empty, at 5s if behind 4 fillers.
	mk := func(full int64, id int32) model.State {
		s := model.Initial(model.Params{LinkRate: 12000, BufferCapBits: 96000, InitFullBits: full}, false)
		s.ParamsID = id
		return s
	}
	b := NewExact([]model.State{mk(0, 0), mk(48000, 1)}, Config{})
	b.RecordSend(model.Send{Seq: 0, At: 0})
	b.Update(5*time.Second, []packet.Ack{{Seq: 0, ReceivedAt: 5 * time.Second}})
	sup := b.Support()
	if len(sup) != 1 || sup[0].S.P.InitFullBits != 48000 {
		t.Fatalf("fullness inference failed: %+v", sup)
	}
}

func TestExactCompactionMergesConvergedStates(t *testing.T) {
	// One hypothesis with switching enabled forks at every opportunity,
	// but with no cross traffic the gate state is the ONLY divergence,
	// and queue dynamics are identical. Distinct gate states never merge
	// (they differ in PingerOn), yet fork branches with the same gate
	// state and same dynamics must merge instead of multiplying.
	p := model.Params{LinkRate: 12000, BufferCapBits: 96000, MeanSwitch: 10 * time.Second}
	s := model.Initial(p, true)
	b := NewExact([]model.State{s}, Config{})
	for step := 1; step <= 20; step++ {
		b.Update(time.Duration(step)*5*time.Second, nil)
	}
	// 20 updates × 5 opportunities each = 2^100 raw branches; compaction
	// must keep the support at exactly 2 (gate on / gate off).
	if n := len(b.Support()); n != 2 {
		t.Fatalf("support = %d after heavy forking, want 2 (compaction broken)", n)
	}
	if w := TotalWeight(b.Support()); w < 0.999999 || w > 1.000001 {
		t.Errorf("weights sum to %v", w)
	}
}

func TestExactWeightsAlwaysNormalized(t *testing.T) {
	// Property: after any sequence of updates, weights sum to 1.
	states, _ := model.Fig3Prior().Enumerate()
	// Shrink the prior for test speed: every 16th state.
	var small []model.State
	for i := 0; i < len(states); i += 16 {
		small = append(small, states[i])
	}
	b := NewExact(small, Config{})
	truth := model.NewTruth(model.Fig2Actual(), true, model.GateSquareWave, 100*time.Second, rand.New(rand.NewSource(5)))

	var sends []model.Send
	now := time.Duration(0)
	for i := int64(0); i < 10; i++ {
		at := time.Duration(i) * 2 * time.Second
		sends = append(sends, model.Send{Seq: i, At: at})
		b.RecordSend(model.Send{Seq: i, At: at})
	}
	evs := truth.AdvanceTo(30*time.Second, sends)
	var acks []packet.Ack
	for _, e := range evs {
		if e.Kind == model.OwnDelivered {
			acks = append(acks, packet.Ack{Seq: e.Seq, ReceivedAt: e.At})
		}
	}
	now = 30 * time.Second
	b.Update(now, acks)
	if w := TotalWeight(b.Support()); w < 0.999999 || w > 1.000001 {
		t.Errorf("weights sum to %v after update", w)
	}
	// The truth must survive: some hypothesis with the true parameters.
	found := false
	actual := model.Fig2Actual()
	for _, h := range b.Support() {
		if h.S.P.LinkRate == actual.LinkRate && h.S.P.CrossRate == actual.CrossRate {
			found = true
		}
	}
	if !found {
		t.Error("true parameter point rejected by its own observations")
	}
}

func TestExactPanicsOnImpossibleObservation(t *testing.T) {
	b := NewExact(twoRatePrior(12000), Config{})
	b.RecordSend(model.Send{Seq: 0, At: 0})
	defer func() {
		if recover() == nil {
			t.Error("impossible ack did not panic")
		}
	}()
	// Ack for a packet that cannot have been delivered at that time.
	b.Update(10*time.Second, []packet.Ack{{Seq: 0, ReceivedAt: 7 * time.Second}})
}

func TestExactPanicsOnTimeRegression(t *testing.T) {
	b := NewExact(twoRatePrior(12000), Config{})
	b.Update(5*time.Second, nil)
	defer func() {
		if recover() == nil {
			t.Error("time regression did not panic")
		}
	}()
	b.Update(time.Second, nil)
}

func TestExactOutOfOrderSendPanics(t *testing.T) {
	b := NewExact(twoRatePrior(12000), Config{})
	b.RecordSend(model.Send{Seq: 0, At: 2 * time.Second})
	defer func() {
		if recover() == nil {
			t.Error("out-of-order send did not panic")
		}
	}()
	b.RecordSend(model.Send{Seq: 1, At: time.Second})
}

func TestExactMaxHypsCap(t *testing.T) {
	p := model.Params{LinkRate: 12000, CrossRate: 8400, BufferCapBits: 96000, MeanSwitch: 2 * time.Second}
	s := model.Initial(p, true)
	b := NewExact([]model.State{s}, Config{MaxHyps: 4})
	// With cross traffic, gate branches genuinely diverge (queue
	// contents differ), so forks accumulate; the cap must hold them at 4.
	for step := 1; step <= 10; step++ {
		b.Update(time.Duration(step)*3*time.Second, nil)
	}
	if n := len(b.Support()); n > 4 {
		t.Errorf("support = %d, cap was 4", n)
	}
	if w := TotalWeight(b.Support()); w < 0.999999 || w > 1.000001 {
		t.Errorf("weights sum to %v after capping", w)
	}
}

func TestSummarize(t *testing.T) {
	states := twoRatePrior(12000, 24000)
	b := NewExact(states, Config{})
	e := Summarize(b.Support())
	if e.N != 2 {
		t.Errorf("N = %d", e.N)
	}
	if e.ELinkRate != 18000 {
		t.Errorf("ELinkRate = %v, want 18000", e.ELinkRate)
	}
	if e.PPingerOn != 0 {
		t.Errorf("PPingerOn = %v, want 0", e.PPingerOn)
	}
	if e.MAPWeight != 0.5 {
		t.Errorf("MAPWeight = %v", e.MAPWeight)
	}
	m := MAP(b.Support())
	if m.W != 0.5 {
		t.Errorf("MAP weight = %v", m.W)
	}
}
