package chaos

import (
	"testing"
	"time"

	"modelcc/internal/elements"
	"modelcc/internal/packet"
	"modelcc/internal/sim"
)

func menu() Config {
	return Config{
		Seed:         7,
		BurstProb:    0.05,
		BurstLen:     3,
		DropProb:     0.02,
		DupProb:      0.03,
		CorruptProb:  0.04,
		ReorderProb:  0.1,
		ReorderDelay: 40 * time.Millisecond,
		Blackouts:    []Window{{Start: time.Second, Len: 2 * time.Second}},
		Stalls:       []Window{{Start: 4 * time.Second, Len: 100 * time.Millisecond}},
		ClockJumps:   []Jump{{At: 2 * time.Second, Delta: 150 * time.Millisecond}},
	}
}

// TestInjectorDeterministic: two injectors from one config make
// identical decisions for the same packet sequence.
func TestInjectorDeterministic(t *testing.T) {
	a, b := New(menu()), New(menu())
	for i := 0; i < 10000; i++ {
		now := time.Duration(i) * time.Millisecond
		va, vb := a.Next(now), b.Next(now)
		if va != vb {
			t.Fatalf("packet %d: verdicts diverge: %+v vs %+v", i, va, vb)
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverge: %+v vs %+v", a.Stats, b.Stats)
	}
	if a.Stats.Dropped == 0 || a.Stats.Corrupted == 0 || a.Stats.Duplicated == 0 ||
		a.Stats.Reordered == 0 || a.Stats.Blackholed == 0 {
		t.Fatalf("fault menu did not exercise every fault: %+v", a.Stats)
	}
}

// TestSubIndependent: the derived ack stream shares windows but not
// per-packet decisions.
func TestSubIndependent(t *testing.T) {
	fwd := New(menu())
	ack := New(menu().Sub("ack"))
	same := 0
	const n = 2000
	for i := 0; i < n; i++ {
		// Off-blackout times so per-packet draws dominate.
		now := 5*time.Second + time.Duration(i)*time.Millisecond
		if fwd.Next(now) == ack.Next(now) {
			same++
		}
	}
	if same == n {
		t.Fatal("sub-stream identical to parent; seeds not derived")
	}
	if !ack.InBlackout(1500 * time.Millisecond) {
		t.Fatal("sub-stream lost the blackout windows")
	}
}

// TestBlackoutAndBurst: blackouts swallow everything; bursts drop
// exactly BurstLen in a row.
func TestBlackoutAndBurst(t *testing.T) {
	in := New(Config{Seed: 1, Blackouts: []Window{{Start: 0, Len: time.Second}}})
	for i := 0; i < 50; i++ {
		if v := in.Next(500 * time.Millisecond); !v.Drop {
			t.Fatal("packet survived a blackout")
		}
	}
	in = New(Config{Seed: 3, BurstProb: 1, BurstLen: 5})
	run := 0
	for i := 0; i < 20; i++ {
		if in.Next(0).Drop {
			run++
		}
	}
	if run != 20 { // BurstProb 1: every packet either triggers or rides a burst
		t.Fatalf("burst dropped %d of 20 at BurstProb=1", run)
	}
}

// TestClock applies jumps, including a backwards one.
func TestClock(t *testing.T) {
	cfg := Config{ClockJumps: []Jump{
		{At: time.Second, Delta: 100 * time.Millisecond},
		{At: 2 * time.Second, Delta: -50 * time.Millisecond},
	}}
	base := time.Duration(0)
	clk := cfg.Clock(func() time.Duration { return base })
	base = 500 * time.Millisecond
	if got := clk(); got != base {
		t.Fatalf("pre-jump clock = %v, want %v", got, base)
	}
	base = 1500 * time.Millisecond
	if got := clk(); got != base+100*time.Millisecond {
		t.Fatalf("post-jump clock = %v", got)
	}
	base = 2500 * time.Millisecond
	if got := clk(); got != base+50*time.Millisecond {
		t.Fatalf("post-backjump clock = %v", got)
	}
}

// TestApplyCorrupt always changes the buffer.
func TestApplyCorrupt(t *testing.T) {
	in := New(Config{Seed: 9, CorruptProb: 1})
	for i := 0; i < 100; i++ {
		v := in.Next(0)
		if !v.Corrupt {
			t.Fatal("CorruptProb=1 did not corrupt")
		}
		b := make([]byte, 1+i%32)
		orig := append([]byte(nil), b...)
		v.ApplyCorrupt(b)
		diff := 0
		for j := range b {
			if b[j] != orig[j] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("corruption changed %d bytes, want exactly 1", diff)
		}
	}
}

// TestElementReplay: the DES element produces a bit-identical delivery
// schedule when replayed under the same seed.
func TestElementReplay(t *testing.T) {
	run := func() []time.Duration {
		loop := sim.New(1)
		var arrivals []time.Duration
		sink := elements.NodeFunc(func(p packet.Packet) {
			arrivals = append(arrivals, loop.Now())
		})
		el := NewElement(loop, New(menu()), sink)
		for i := 0; i < 500; i++ {
			at := time.Duration(i) * 10 * time.Millisecond
			seq := int64(i)
			loop.Schedule(at, func() {
				el.Receive(packet.Packet{Flow: packet.FlowSelf, Seq: seq})
			})
		}
		loop.RunAll()
		return arrivals
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay delivered %d vs %d packets", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverges at delivery %d: %v vs %v", i, a[i], b[i])
		}
	}
	if len(a) == 500 {
		t.Fatal("chaos element dropped nothing under the full menu")
	}
	// Reordering must actually have happened at ReorderProb=0.1.
	reordered := false
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatal("arrival times out of order in the capture itself")
		}
	}
	_ = reordered
}
