package chaos

import (
	"modelcc/internal/elements"
	"modelcc/internal/packet"
	"modelcc/internal/sim"
)

// Element applies an Injector's fault stream to simulator packets: the
// DES twin of the Proxy integration, insertable anywhere in an
// elements chain (typically just before an emu.TraceLink, where the
// real-socket proxy injects on the wire).
//
// Corrupted packets are discarded here: a DES packet is a struct, not
// bytes, and the wire behaviour being modeled is "the decoder rejects
// the mangled datagram" — identical observable, no delivery.
type Element struct {
	loop *sim.Loop
	inj  *Injector
	next elements.Node

	// DroppedHere counts packets the element removed (drops, burst
	// losses, blackouts, corruptions).
	DroppedHere int64
}

// NewElement wraps next with the injector's fault stream.
func NewElement(loop *sim.Loop, inj *Injector, next elements.Node) *Element {
	return &Element{loop: loop, inj: inj, next: next}
}

// SetNext implements elements.Wirer.
func (e *Element) SetNext(n elements.Node) { e.next = n }

// Injector exposes the element's fault stream (for stats).
func (e *Element) Injector() *Injector { return e.inj }

// Receive implements elements.Node.
func (e *Element) Receive(p packet.Packet) {
	v := e.inj.Next(e.loop.Now())
	if v.Drop || v.Corrupt {
		e.DroppedHere++
		return
	}
	if v.Delay > 0 {
		e.loop.After(v.Delay, func() { e.deliver(p) })
	} else {
		e.deliver(p)
	}
	if v.Duplicate {
		if v.Delay > 0 {
			e.loop.After(v.Delay, func() { e.deliver(p) })
		} else {
			e.deliver(p)
		}
	}
}

func (e *Element) deliver(p packet.Packet) {
	if e.next != nil {
		e.next.Receive(p)
	}
}
