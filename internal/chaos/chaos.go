// Package chaos is the deterministic fault-injection layer: a seeded,
// reproducible schedule of the failures a real (cellular-style) path
// inflicts that the paper's idealized elements do not — ack-loss bursts,
// reordering, duplication, byte corruption, multi-second link blackouts,
// proxy stalls, and clock jumps.
//
// The same Config drives both worlds: an Injector plugged into
// emu.Proxy perturbs real UDP datagrams on the wire, and an Element
// (element.go) applies the identical decision stream to simulator
// packets on the DES path, so a fault trace found in a wall-clock soak
// run can be replayed bit-identically under the discrete-event clock.
//
// Determinism: every per-packet decision is drawn from a SplitMix64
// stream advanced once per consultation, and every time-window fault
// (blackout, stall, clock jump) is a fixed absolute window in the
// Config. Two injectors built from the same Config observe the same
// packet sequence make the same decisions; nothing depends on wall
// time, map order, or goroutine scheduling.
package chaos

import (
	"hash/fnv"
	"time"
)

// Window is a half-open interval [Start, Start+Len) of run time.
type Window struct {
	// Start is measured from the start of the run (proxy start or DES
	// time zero).
	Start time.Duration
	// Len is the window's length.
	Len time.Duration
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Duration) bool {
	return t >= w.Start && t < w.Start+w.Len
}

// End is the first instant after the window.
func (w Window) End() time.Duration { return w.Start + w.Len }

// Jump is one clock discontinuity: at base-clock time At, the chaotic
// clock's reading shifts by Delta (negative Deltas model a clock
// stepping backwards, e.g. an NTP correction mid-run).
type Jump struct {
	At    time.Duration
	Delta time.Duration
}

// Config is the fault menu. The zero value injects nothing.
type Config struct {
	// Seed drives every per-packet decision. Two injectors with the
	// same Seed and Config make identical decisions for the same
	// packet sequence.
	Seed int64

	// DropProb drops each packet i.i.d.
	DropProb float64
	// BurstProb is the per-packet probability a loss burst begins;
	// BurstLen packets (the trigger included) are then dropped
	// back-to-back. Bursty ack loss is the signature failure of lossy
	// control channels.
	BurstProb float64
	// BurstLen is the burst length in packets (default 4).
	BurstLen int
	// DupProb delivers the packet twice.
	DupProb float64
	// CorruptProb flips one byte of the datagram. On the wire the
	// mangled copy still travels; the consumer's decoder is expected
	// to reject it (that rejection is what the fuzz corpus hardens).
	// On the DES path, where packets are structs rather than bytes, a
	// corrupted packet is discarded at the injection point — the same
	// observable outcome as the decoder rejecting it.
	CorruptProb float64
	// ReorderProb holds the packet back by ReorderDelay scaled by a
	// deterministic factor in [0.5, 1.5), letting later packets
	// overtake it.
	ReorderProb float64
	// ReorderDelay is the nominal reorder hold-back (default 40 ms).
	ReorderDelay time.Duration

	// Blackouts are windows during which the link is dead: every
	// packet in either direction is dropped. These model the
	// multi-second outages of a cellular link.
	Blackouts []Window
	// Stalls are windows during which the forwarding process freezes
	// (a scheduler stall, a GC pause in the emulator): nothing is
	// dropped, but nothing moves until the window ends.
	Stalls []Window
	// ClockJumps perturb the chaotic Clock; they do not affect packet
	// verdicts.
	ClockJumps []Jump
}

// Enabled reports whether the config can inject any fault at all.
func (c Config) Enabled() bool {
	return c.DropProb > 0 || c.BurstProb > 0 || c.DupProb > 0 ||
		c.CorruptProb > 0 || c.ReorderProb > 0 ||
		len(c.Blackouts) > 0 || len(c.Stalls) > 0 || len(c.ClockJumps) > 0
}

// Sub derives the config for a named sub-stream (e.g. the ack path of a
// proxy whose data path uses the parent): identical windows, an
// independent per-packet decision stream.
func (c Config) Sub(label string) Config {
	h := fnv.New64a()
	h.Write([]byte(label))
	c.Seed = int64(splitmix(uint64(c.Seed) ^ h.Sum64()))
	return c
}

// Source is a raw deterministic draw stream over a Config's seed, for
// consumers that schedule their own faults — the lifecycle admission
// controller derives its churn schedule (arrivals, departures,
// crash-kills) from Sub("churn").Source() — rather than consuming
// per-packet Verdicts. It advances exactly like an Injector's decision
// stream: one SplitMix64 step per draw, nothing dependent on wall time
// or scheduling, so the same seed replays the same schedule
// bit-identically. Not safe for concurrent use.
type Source struct{ ctr uint64 }

// Source returns the config's draw stream, positioned at its start.
func (c Config) Source() *Source { return &Source{ctr: splitmix(uint64(c.Seed))} }

// Uint64 advances the stream one step.
func (s *Source) Uint64() uint64 {
	s.ctr++
	return splitmix(s.ctr)
}

// Float64 draws uniformly from [0, 1).
func (s *Source) Float64() float64 { return float64(s.Uint64()>>11) / (1 << 53) }

// Intn draws uniformly from [0, n); n must be positive.
func (s *Source) Intn(n int) int { return int(s.Uint64() % uint64(n)) }

// Clock wraps a base clock with the schedule's jumps. The returned
// clock is NOT guaranteed monotone — that is the point: consumers
// (transport.Sender) must clamp. Jump times are in base-clock terms.
func (c Config) Clock(base func() time.Duration) func() time.Duration {
	jumps := append([]Jump(nil), c.ClockJumps...)
	return func() time.Duration {
		t := base()
		out := t
		for _, j := range jumps {
			if t >= j.At {
				out += j.Delta
			}
		}
		return out
	}
}

// Verdict is the injector's decision for one packet.
type Verdict struct {
	// Drop discards the packet (i.i.d. loss, a burst, or a blackout).
	Drop bool
	// Duplicate delivers the packet a second time.
	Duplicate bool
	// Corrupt flips one byte (see ApplyCorrupt); DES consumers treat
	// it as a drop.
	Corrupt bool
	// CorruptOffset selects the flipped byte (reduced modulo the
	// datagram length at application time).
	CorruptOffset uint32
	// CorruptXOR is the nonzero mask XORed into the selected byte.
	CorruptXOR byte
	// Delay holds the packet back before delivery (reordering).
	Delay time.Duration
}

// ApplyCorrupt flips the verdict's byte in b in place. It is a no-op
// when the verdict does not corrupt or b is empty.
func (v Verdict) ApplyCorrupt(b []byte) {
	if !v.Corrupt || len(b) == 0 {
		return
	}
	b[int(v.CorruptOffset)%len(b)] ^= v.CorruptXOR
}

// Stats counts injected faults. Read it only after the goroutine
// driving the injector has stopped (e.g. after Proxy.Run returns).
type Stats struct {
	// Packets counts consultations (one per packet offered).
	Packets int64
	// Dropped counts i.i.d. and burst drops.
	Dropped int64
	// Blackholed counts packets swallowed by a blackout window.
	Blackholed int64
	// Corrupted, Duplicated, Reordered count the respective verdicts.
	Corrupted, Duplicated, Reordered int64
}

// Injector turns a Config into a deterministic per-packet decision
// stream. It is not safe for concurrent use: each path (forward, ack)
// gets its own Injector, each driven by a single goroutine.
type Injector struct {
	cfg       Config
	ctr       uint64 // SplitMix64 counter
	burstLeft int

	// Stats tallies what was injected.
	Stats Stats
}

// New builds an injector for the config.
func New(cfg Config) *Injector {
	if cfg.BurstLen <= 0 {
		cfg.BurstLen = 4
	}
	if cfg.ReorderDelay <= 0 {
		cfg.ReorderDelay = 40 * time.Millisecond
	}
	return &Injector{cfg: cfg, ctr: splitmix(uint64(cfg.Seed))}
}

// Config returns the injector's (defaulted) configuration.
func (in *Injector) Config() Config { return in.cfg }

// draw advances the decision stream.
func (in *Injector) draw() uint64 {
	in.ctr++
	return splitmix(in.ctr)
}

// f64 draws a float in [0, 1).
func (in *Injector) f64() float64 {
	return float64(in.draw()>>11) / (1 << 53)
}

// InBlackout reports whether now falls inside a blackout window.
func (in *Injector) InBlackout(now time.Duration) bool {
	for _, w := range in.cfg.Blackouts {
		if w.Contains(now) {
			return true
		}
	}
	return false
}

// StallUntil reports the end of the stall window containing now, if
// any.
func (in *Injector) StallUntil(now time.Duration) (time.Duration, bool) {
	for _, w := range in.cfg.Stalls {
		if w.Contains(now) {
			return w.End(), true
		}
	}
	return 0, false
}

// Next returns the verdict for the next packet, observed at run time
// now. Verdicts are drawn in a fixed order (burst, drop, corrupt, dup,
// reorder) so the stream replays identically for a given Config.
func (in *Injector) Next(now time.Duration) Verdict {
	in.Stats.Packets++
	var v Verdict
	if in.InBlackout(now) {
		in.Stats.Blackholed++
		v.Drop = true
		return v
	}
	if in.burstLeft > 0 {
		in.burstLeft--
		in.Stats.Dropped++
		v.Drop = true
		return v
	}
	if in.cfg.BurstProb > 0 && in.f64() < in.cfg.BurstProb {
		in.burstLeft = in.cfg.BurstLen - 1
		in.Stats.Dropped++
		v.Drop = true
		return v
	}
	if in.cfg.DropProb > 0 && in.f64() < in.cfg.DropProb {
		in.Stats.Dropped++
		v.Drop = true
		return v
	}
	if in.cfg.CorruptProb > 0 && in.f64() < in.cfg.CorruptProb {
		r := in.draw()
		v.Corrupt = true
		v.CorruptOffset = uint32(r)
		v.CorruptXOR = byte(r>>32) | 1 // never zero: the flip must flip
		in.Stats.Corrupted++
	}
	if in.cfg.DupProb > 0 && in.f64() < in.cfg.DupProb {
		v.Duplicate = true
		in.Stats.Duplicated++
	}
	if in.cfg.ReorderProb > 0 && in.f64() < in.cfg.ReorderProb {
		scale := 0.5 + in.f64()
		v.Delay = time.Duration(scale * float64(in.cfg.ReorderDelay))
		in.Stats.Reordered++
	}
	return v
}

// splitmix is SplitMix64, the same generator internal/rollout uses for
// per-particle streams; duplicated here to keep chaos dependency-free.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
