package stats

import (
	"math"
	"testing"
)

func TestJainIndex(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 1},
		{"all zero", []float64{0, 0, 0}, 1},
		{"even", []float64{2, 2, 2, 2}, 1},
		{"one hog of four", []float64{1, 0, 0, 0}, 0.25},
		{"two flows 1:3", []float64{1, 3}, 0.8},
	}
	for _, c := range cases {
		if got := JainIndex(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: JainIndex = %v, want %v", c.name, got, c.want)
		}
	}
	// Scale invariance: multiplying every allocation by a constant
	// must not change the index.
	a := []float64{0.5, 1.5, 2, 4}
	scaled := make([]float64, len(a))
	for i, v := range a {
		scaled[i] = 1000 * v
	}
	if math.Abs(JainIndex(a)-JainIndex(scaled)) > 1e-12 {
		t.Error("JainIndex not scale invariant")
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	if s.Mean() != 0 {
		t.Error("empty summary mean != 0")
	}
	for _, v := range []float64{3, -1, 4, 1, 5} {
		s.Add(v)
	}
	if s.N != 5 || s.MinV != -1 || s.MaxV != 5 {
		t.Errorf("summary %+v wrong", s)
	}
	if math.Abs(s.Mean()-2.4) > 1e-12 {
		t.Errorf("mean = %v, want 2.4", s.Mean())
	}

	var a, b Summary
	a.Add(1)
	a.Add(2)
	b.Add(10)
	a.Merge(b)
	if a.N != 3 || a.MaxV != 10 || a.MinV != 1 || a.Sum != 13 {
		t.Errorf("merged summary %+v wrong", a)
	}
	var empty Summary
	a.Merge(empty)
	if a.N != 3 {
		t.Error("merging an empty summary changed the count")
	}
	empty.Merge(a)
	if empty.N != 3 || empty.MinV != 1 {
		t.Error("merge into empty did not adopt the source")
	}
}
