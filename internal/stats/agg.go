package stats

// Jain's fairness index and streaming per-flow aggregation, used by the
// multi-flow fairness sweeps (internal/experiments.FairnessSweep): with
// hundreds of senders in one process, per-flow metrics must accumulate
// in O(1) space instead of retaining every sample.

// JainIndex returns Jain's fairness index over the per-flow allocations:
// (Σx)² / (n·Σx²). It is 1 when every flow receives the same allocation
// and approaches 1/n when one flow takes everything. An empty or
// all-zero allocation reports 1 (nothing is being shared unfairly).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Summary is a streaming aggregate of a sample stream: count, sum, min,
// max. The zero value is an empty summary. Unlike Series it retains no
// samples, so a fleet of thousands of flows can keep one per flow.
type Summary struct {
	// N is the number of samples.
	N int64
	// Sum is the total of the samples.
	Sum float64
	// MinV and MaxV are the extreme samples (zero when N == 0).
	MinV, MaxV float64
}

// Add accumulates one sample.
func (s *Summary) Add(v float64) {
	if s.N == 0 || v < s.MinV {
		s.MinV = v
	}
	if s.N == 0 || v > s.MaxV {
		s.MaxV = v
	}
	s.N++
	s.Sum += v
}

// Mean returns the arithmetic mean; 0 when empty.
func (s *Summary) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// Merge folds another summary into this one.
func (s *Summary) Merge(o Summary) {
	if o.N == 0 {
		return
	}
	if s.N == 0 {
		*s = o
		return
	}
	if o.MinV < s.MinV {
		s.MinV = o.MinV
	}
	if o.MaxV > s.MaxV {
		s.MaxV = o.MaxV
	}
	s.N += o.N
	s.Sum += o.Sum
}
