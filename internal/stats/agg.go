package stats

import "math"

// Jain's fairness index and streaming per-flow aggregation, used by the
// multi-flow fairness sweeps (internal/experiments.FairnessSweep): with
// hundreds of senders in one process, per-flow metrics must accumulate
// in O(1) space instead of retaining every sample.

// JainIndex returns Jain's fairness index over the per-flow allocations:
// (Σx)² / (n·Σx²). It is 1 when every flow receives the same allocation
// and approaches 1/n when one flow takes everything. An empty or
// all-zero allocation reports 1 (nothing is being shared unfairly).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Summary is a streaming aggregate of a sample stream: count, sum, min,
// max, and the second central moment (Welford's M2) for variance. The
// zero value is an empty summary. Unlike Series it retains no samples,
// so a fleet of thousands of flows can keep one per flow and a
// N=4096 run stays flat in heap.
type Summary struct {
	// N is the number of samples.
	N int64
	// Sum is the total of the samples.
	Sum float64
	// MinV and MaxV are the extreme samples (zero when N == 0).
	MinV, MaxV float64
	// M2 is the sum of squared deviations from the running mean
	// (Welford), maintained online so Var needs no second pass.
	M2 float64
}

// Add accumulates one sample.
func (s *Summary) Add(v float64) {
	if s.N == 0 || v < s.MinV {
		s.MinV = v
	}
	if s.N == 0 || v > s.MaxV {
		s.MaxV = v
	}
	var oldMean float64
	if s.N > 0 {
		oldMean = s.Sum / float64(s.N)
	} else {
		oldMean = v
	}
	s.N++
	s.Sum += v
	newMean := s.Sum / float64(s.N)
	s.M2 += (v - oldMean) * (v - newMean)
}

// Mean returns the arithmetic mean; 0 when empty.
func (s *Summary) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// Var returns the population variance; 0 with fewer than two samples.
func (s *Summary) Var() float64 {
	if s.N < 2 {
		return 0
	}
	return s.M2 / float64(s.N)
}

// Std returns the population standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Merge folds another summary into this one (Chan et al.'s parallel
// update for M2).
func (s *Summary) Merge(o Summary) {
	if o.N == 0 {
		return
	}
	if s.N == 0 {
		*s = o
		return
	}
	if o.MinV < s.MinV {
		s.MinV = o.MinV
	}
	if o.MaxV > s.MaxV {
		s.MaxV = o.MaxV
	}
	delta := o.Sum/float64(o.N) - s.Sum/float64(s.N)
	nA, nB := float64(s.N), float64(o.N)
	s.M2 += o.M2 + delta*delta*nA*nB/(nA+nB)
	s.N += o.N
	s.Sum += o.Sum
}
