package stats

import "sort"

// P2 is the P² streaming quantile estimator (Jain & Chlamtac 1985): a
// single quantile tracked in O(1) space with five markers whose
// positions are nudged by piecewise-parabolic interpolation as samples
// stream in. It replaces retaining every per-packet sample when a
// fleet only needs a delay percentile — the memory that made Series
// the dominant heap cost at N=4096.
//
// The estimate is exact until five samples have arrived (it sorts the
// first five) and approximate after; the error bound is pinned by
// TestP2ErrorBounds. The zero value is not usable; construct with
// NewP2.
type P2 struct {
	p     float64    // target quantile in (0, 1)
	n     int64      // samples seen
	q     [5]float64 // marker heights
	pos   [5]float64 // actual marker positions (1-based)
	want  [5]float64 // desired marker positions
	delta [5]float64 // desired position increments per sample
}

// NewP2 returns an estimator for the p-th quantile, p in (0, 1).
func NewP2(p float64) *P2 {
	if p <= 0 {
		p = 0.5
	}
	if p >= 1 {
		p = 0.99
	}
	e := &P2{p: p}
	e.pos = [5]float64{1, 2, 3, 4, 5}
	e.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	e.delta = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// N reports how many samples have been added.
func (e *P2) N() int64 { return e.n }

// Add accumulates one sample.
func (e *P2) Add(v float64) {
	if e.n < 5 {
		e.q[e.n] = v
		e.n++
		if e.n == 5 {
			sort.Float64s(e.q[:])
		}
		return
	}
	e.n++

	// Locate the cell containing v and bump the extreme markers.
	var k int
	switch {
	case v < e.q[0]:
		e.q[0] = v
		k = 0
	case v < e.q[1]:
		k = 0
	case v < e.q[2]:
		k = 1
	case v < e.q[3]:
		k = 2
	case v <= e.q[4]:
		k = 3
	default:
		e.q[4] = v
		k = 3
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.want {
		e.want[i] += e.delta[i]
	}

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			var dir float64 = 1
			if d < 0 {
				dir = -1
			}
			nq := e.parabolic(i, dir)
			if e.q[i-1] < nq && nq < e.q[i+1] {
				e.q[i] = nq
			} else {
				// Parabolic prediction left the bracket; fall back to
				// linear interpolation toward the neighbor.
				e.q[i] = e.linear(i, dir)
			}
			e.pos[i] += dir
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i one position in direction d (±1).
func (e *P2) parabolic(i int, d float64) float64 {
	ni := e.pos[i]
	np, nn := e.pos[i-1], e.pos[i+1]
	qi, qp, qn := e.q[i], e.q[i-1], e.q[i+1]
	return qi + d/(nn-np)*((ni-np+d)*(qn-qi)/(nn-ni)+(nn-ni-d)*(qi-qp)/(ni-np))
}

// linear moves marker i's height one cell toward its neighbor.
func (e *P2) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Value reports the current quantile estimate. Before five samples it
// is the exact quantile of what has arrived (nearest-rank); zero when
// empty.
func (e *P2) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		vals := append([]float64(nil), e.q[:e.n]...)
		sort.Float64s(vals)
		rank := int(e.p * float64(e.n))
		if rank >= len(vals) {
			rank = len(vals) - 1
		}
		return vals[rank]
	}
	return e.q[2]
}
