package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the reference the streaming estimator is scored
// against.
func exactQuantile(vals []float64, p float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	rank := int(math.Ceil(p*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// TestP2ErrorBounds pins the estimator's relative error on the
// distributions fleet delays actually resemble: roughly exponential
// queueing tails and a bimodal mix (uncongested floor plus congested
// plateau). The bounds are deliberately loose enough to be stable
// across platforms but tight enough that a broken marker update fails
// immediately.
func TestP2ErrorBounds(t *testing.T) {
	cases := []struct {
		name string
		gen  func(r *rand.Rand) float64
		p    float64
		tol  float64 // max |est-exact| / spread
	}{
		{"exponential-p50", func(r *rand.Rand) float64 { return r.ExpFloat64() }, 0.5, 0.05},
		{"exponential-p99", func(r *rand.Rand) float64 { return r.ExpFloat64() }, 0.99, 0.15},
		{"uniform-p90", func(r *rand.Rand) float64 { return r.Float64() }, 0.9, 0.05},
		{"bimodal-p50", func(r *rand.Rand) float64 {
			if r.Float64() < 0.7 {
				return 0.01 + 0.002*r.Float64()
			}
			return 1 + 0.2*r.Float64()
		}, 0.5, 0.05},
	}
	const n = 20000
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			est := NewP2(tc.p)
			vals := make([]float64, 0, n)
			for i := 0; i < n; i++ {
				v := tc.gen(r)
				vals = append(vals, v)
				est.Add(v)
			}
			exact := exactQuantile(vals, tc.p)
			spread := exactQuantile(vals, 0.999) - exactQuantile(vals, 0.001)
			if spread <= 0 {
				t.Fatalf("degenerate sample spread")
			}
			relErr := math.Abs(est.Value()-exact) / spread
			if relErr > tc.tol {
				t.Fatalf("p%.0f estimate %.5f vs exact %.5f: relative error %.4f > %.4f",
					tc.p*100, est.Value(), exact, relErr, tc.tol)
			}
			if est.N() != n {
				t.Fatalf("N = %d, want %d", est.N(), n)
			}
		})
	}
}

// TestP2SmallStreams: before five samples the estimate must be exact.
func TestP2SmallStreams(t *testing.T) {
	est := NewP2(0.5)
	if est.Value() != 0 {
		t.Fatalf("empty estimator should report 0")
	}
	est.Add(3)
	est.Add(1)
	est.Add(2)
	if got := est.Value(); got != 2 {
		t.Fatalf("median of {1,2,3} = %g, want 2", got)
	}
}

// TestSummaryVariance pins the streaming M2 against a two-pass
// computation, including under Merge.
func TestSummaryVariance(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var all []float64
	var a, b Summary
	for i := 0; i < 1000; i++ {
		v := r.NormFloat64()*3 + 10
		all = append(all, v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	mean := 0.0
	for _, v := range all {
		mean += v
	}
	mean /= float64(len(all))
	var m2 float64
	for _, v := range all {
		m2 += (v - mean) * (v - mean)
	}
	wantVar := m2 / float64(len(all))
	if got := a.Var(); math.Abs(got-wantVar) > 1e-9*wantVar+1e-12 {
		t.Fatalf("Var = %g, want %g", got, wantVar)
	}
	if a.N != int64(len(all)) {
		t.Fatalf("N = %d, want %d", a.N, len(all))
	}
	if got, want := a.Std(), math.Sqrt(wantVar); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("Std = %g, want %g", got, want)
	}
}
