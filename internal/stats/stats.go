// Package stats provides the small time-series and summary toolkit the
// experiment harnesses use to reproduce the paper's figures: sequence-
// number-vs-time series (Figure 3), RTT-vs-time series (Figure 1),
// percentiles, windowed rates, and a dependency-free ASCII plotter for
// the CLI tools.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Point is one sample of a time series.
type Point struct {
	T time.Duration
	V float64
}

// Series is an append-only time series.
type Series struct {
	// Name labels the series in plots and tables.
	Name string
	// Pts are the samples in append order (experiments append in time
	// order).
	Pts []Point
}

// Add appends a sample.
func (s *Series) Add(t time.Duration, v float64) {
	s.Pts = append(s.Pts, Point{T: t, V: v})
}

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.Pts) }

// Last returns the final sample; ok is false for an empty series.
func (s *Series) Last() (Point, bool) {
	if len(s.Pts) == 0 {
		return Point{}, false
	}
	return s.Pts[len(s.Pts)-1], true
}

// Max returns the largest value; 0 for an empty series.
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, p := range s.Pts {
		if p.V > m {
			m = p.V
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Min returns the smallest value; 0 for an empty series.
func (s *Series) Min() float64 {
	m := math.Inf(1)
	for _, p := range s.Pts {
		if p.V < m {
			m = p.V
		}
	}
	if math.IsInf(m, 1) {
		return 0
	}
	return m
}

// ValueAt returns the value of the last sample at or before t (step
// interpolation); ok is false when t precedes every sample.
func (s *Series) ValueAt(t time.Duration) (float64, bool) {
	idx := sort.Search(len(s.Pts), func(i int) bool { return s.Pts[i].T > t })
	if idx == 0 {
		return 0, false
	}
	return s.Pts[idx-1].V, true
}

// Window returns the subseries with samples in (from, to].
func (s *Series) Window(from, to time.Duration) Series {
	out := Series{Name: s.Name}
	for _, p := range s.Pts {
		if p.T > from && p.T <= to {
			out.Pts = append(out.Pts, p)
		}
	}
	return out
}

// Rate fits the average slope over the window (from, to] in value units
// per second, using the first and last samples inside the window. A
// window with fewer than two samples reports 0.
func (s *Series) Rate(from, to time.Duration) float64 {
	w := s.Window(from, to)
	if len(w.Pts) < 2 {
		return 0
	}
	first, last := w.Pts[0], w.Pts[len(w.Pts)-1]
	dt := (last.T - first.T).Seconds()
	if dt <= 0 {
		return 0
	}
	return (last.V - first.V) / dt
}

// Percentile returns the p-th percentile (0..100) of the series values
// by nearest-rank; 0 for an empty series.
func (s *Series) Percentile(p float64) float64 {
	if len(s.Pts) == 0 {
		return 0
	}
	vals := make([]float64, len(s.Pts))
	for i, pt := range s.Pts {
		vals[i] = pt.V
	}
	sort.Float64s(vals)
	if p <= 0 {
		return vals[0]
	}
	if p >= 100 {
		return vals[len(vals)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(vals)))) - 1
	if rank < 0 {
		rank = 0
	}
	return vals[rank]
}

// Mean returns the arithmetic mean of the values; 0 for empty.
func (s *Series) Mean() float64 {
	if len(s.Pts) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Pts {
		sum += p.V
	}
	return sum / float64(len(s.Pts))
}

// TSV renders the series as "seconds\tvalue" lines, the format the
// paper's gnuplot-style figures consume.
func (s *Series) TSV() string {
	var b strings.Builder
	for _, p := range s.Pts {
		fmt.Fprintf(&b, "%.3f\t%g\n", p.T.Seconds(), p.V)
	}
	return b.String()
}
