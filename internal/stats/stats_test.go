package stats

import (
	"strings"
	"testing"
	"time"
)

func mkSeries(vals ...float64) *Series {
	s := &Series{Name: "test"}
	for i, v := range vals {
		s.Add(time.Duration(i)*time.Second, v)
	}
	return s
}

func TestSeriesBasics(t *testing.T) {
	s := mkSeries(1, 3, 2)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Max() != 3 || s.Min() != 1 {
		t.Errorf("Max/Min = %v/%v", s.Max(), s.Min())
	}
	last, ok := s.Last()
	if !ok || last.V != 2 {
		t.Errorf("Last = %+v, %v", last, ok)
	}
	if got := s.Mean(); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	var empty Series
	if empty.Max() != 0 || empty.Min() != 0 || empty.Mean() != 0 {
		t.Error("empty series summaries should be 0")
	}
	if _, ok := empty.Last(); ok {
		t.Error("empty Last ok")
	}
}

func TestValueAt(t *testing.T) {
	s := mkSeries(10, 20, 30)
	if v, ok := s.ValueAt(1500 * time.Millisecond); !ok || v != 20 {
		t.Errorf("ValueAt(1.5s) = %v,%v want 20", v, ok)
	}
	if v, ok := s.ValueAt(2 * time.Second); !ok || v != 30 {
		t.Errorf("ValueAt(2s) = %v,%v want 30 (inclusive)", v, ok)
	}
	if _, ok := s.ValueAt(-time.Second); ok {
		t.Error("ValueAt before first sample should not be ok")
	}
}

func TestWindowAndRate(t *testing.T) {
	s := &Series{}
	// Sequence numbers growing 2 per second.
	for i := 0; i <= 10; i++ {
		s.Add(time.Duration(i)*time.Second, float64(2*i))
	}
	w := s.Window(2*time.Second, 5*time.Second)
	if len(w.Pts) != 3 { // 3s,4s,5s
		t.Fatalf("window samples = %d, want 3", len(w.Pts))
	}
	if got := s.Rate(0, 10*time.Second); got < 1.99 || got > 2.01 {
		t.Errorf("Rate = %v, want 2/s", got)
	}
	if got := s.Rate(9500*time.Millisecond, 10*time.Second); got != 0 {
		t.Errorf("Rate over single-sample window = %v, want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	s := mkSeries(5, 1, 4, 2, 3)
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {20, 1}, {50, 3}, {100, 5}, {101, 5}, {-1, 1},
	}
	for _, tt := range tests {
		if got := s.Percentile(tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	var empty Series
	if empty.Percentile(50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestTSV(t *testing.T) {
	s := mkSeries(1.5)
	if got := s.TSV(); got != "0.000\t1.5\n" {
		t.Errorf("TSV = %q", got)
	}
}

func TestPlotRendersAllSeries(t *testing.T) {
	a := &Series{Name: "a"}
	b := &Series{Name: "b"}
	for i := 0; i < 50; i++ {
		a.Add(time.Duration(i)*time.Second, float64(i))
		b.Add(time.Duration(i)*time.Second, float64(50-i))
	}
	out := Plot(PlotConfig{Width: 40, Height: 10, Title: "T", YLabel: "v"}, a, b)
	if !strings.Contains(out, "T\n") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("missing series glyphs")
	}
	if !strings.Contains(out, "*=a") || !strings.Contains(out, "+=b") {
		t.Error("missing legend")
	}
}

func TestPlotLogY(t *testing.T) {
	s := &Series{Name: "rtt"}
	s.Add(0, 0.1)
	s.Add(time.Second, 10)
	s.Add(2*time.Second, 0) // non-positive: skipped in log mode
	out := Plot(PlotConfig{Width: 20, Height: 5, LogY: true}, s)
	if !strings.Contains(out, "10") {
		t.Errorf("log plot missing top label:\n%s", out)
	}
}

func TestPlotEmpty(t *testing.T) {
	if got := Plot(PlotConfig{}, &Series{}); got != "(no data)\n" {
		t.Errorf("empty plot = %q", got)
	}
}
