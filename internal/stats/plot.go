package stats

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// PlotConfig controls ASCII rendering.
type PlotConfig struct {
	// Width and Height are the plot area in characters.
	Width, Height int
	// Title is printed above the plot.
	Title string
	// YLabel names the value axis.
	YLabel string
	// LogY plots log10 of positive values (Figure 1 uses a log RTT
	// axis).
	LogY bool
}

// Plot renders one or more series into a character grid, one glyph per
// series, with simple axes. It is deliberately dependency-free: the CLI
// tools print the paper's figures straight to the terminal.
func Plot(cfg PlotConfig, series ...*Series) string {
	if cfg.Width <= 0 {
		cfg.Width = 72
	}
	if cfg.Height <= 0 {
		cfg.Height = 20
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

	// Bounds.
	var tMin, tMax time.Duration
	vMin, vMax := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for _, p := range s.Pts {
			v := p.V
			if cfg.LogY {
				if v <= 0 {
					continue
				}
				v = math.Log10(v)
			}
			if !any || p.T < tMin {
				tMin = p.T
			}
			if !any || p.T > tMax {
				tMax = p.T
			}
			if v < vMin {
				vMin = v
			}
			if v > vMax {
				vMax = v
			}
			any = true
		}
	}
	if !any {
		return "(no data)\n"
	}
	if vMax == vMin {
		vMax = vMin + 1
	}
	if tMax == tMin {
		tMax = tMin + time.Second
	}

	grid := make([][]byte, cfg.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cfg.Width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Pts {
			v := p.V
			if cfg.LogY {
				if v <= 0 {
					continue
				}
				v = math.Log10(v)
			}
			x := int(float64(cfg.Width-1) * float64(p.T-tMin) / float64(tMax-tMin))
			y := int(float64(cfg.Height-1) * (v - vMin) / (vMax - vMin))
			row := cfg.Height - 1 - y
			if row >= 0 && row < cfg.Height && x >= 0 && x < cfg.Width {
				grid[row][x] = g
			}
		}
	}

	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	topLabel, botLabel := vMax, vMin
	if cfg.LogY {
		topLabel, botLabel = math.Pow(10, vMax), math.Pow(10, vMin)
	}
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%8.3g", topLabel)
		case cfg.Height - 1:
			label = fmt.Sprintf("%8.3g", botLabel)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", cfg.Width))
	fmt.Fprintf(&b, "%s  %-12s%s%12s\n", strings.Repeat(" ", 8),
		fmt.Sprintf("%.0fs", tMin.Seconds()), strings.Repeat(" ", maxInt(0, cfg.Width-24)), fmt.Sprintf("%.0fs", tMax.Seconds()))
	if len(series) > 1 || cfg.YLabel != "" {
		fmt.Fprintf(&b, "  y: %s;", cfg.YLabel)
		for si, s := range series {
			fmt.Fprintf(&b, " %c=%s", glyphs[si%len(glyphs)], s.Name)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
