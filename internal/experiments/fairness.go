package experiments

import (
	"fmt"
	"strings"
	"time"

	"modelcc/internal/fleet"
	"modelcc/internal/packet"
	"modelcc/internal/shard"
	"modelcc/internal/stats"
	"modelcc/internal/units"
)

// FairnessConfig describes an N-sender fairness sweep: one fleet run per
// N, all sharing the sweep's seed and virtual duration.
type FairnessConfig struct {
	// Ns are the fleet sizes to sweep (default 2, 4, 16, 64, 256).
	Ns []int
	// Duration is each run's virtual length (default 120 s).
	Duration time.Duration
	// Seed drives every run.
	Seed int64
	// Alpha is every member's cross-traffic priority (default 1).
	Alpha float64
	// PerSenderRate is each sender's fair share (default 6000 bit/s).
	PerSenderRate units.BitRate
	// FairQueue selects the DRR bottleneck instead of tail-drop FIFO.
	FairQueue bool
	// Workers is the shared rollout pool width per fleet: 0 means
	// GOMAXPROCS, 1 serial. The sweep's output is bit-identical for any
	// value (TestFairnessSweepWorkerDeterminism asserts this at N=256).
	Workers int
	// NoSharedCache disables the fleet-wide policy cache.
	NoSharedCache bool
	// Shards runs each fleet on the sharded runtime (internal/shard):
	// K parallel per-shard DES loops coupled through the bottleneck by
	// windowed lookahead, bit-identical for every shard count >= 1.
	// 0 keeps the default single-loop fleet, whose arrival-order
	// scheduling takes a different (equally deterministic) trajectory.
	Shards int
	// LeanStats drops per-packet series retention (streaming moments
	// and a P² tail estimator only), keeping heap flat at N=4096.
	// Second-half rates come from the late-ack counter instead of the
	// acked series; per-flow MaxDelay/P99Delay stay available.
	LeanStats bool
}

func (c FairnessConfig) withDefaults() FairnessConfig {
	if len(c.Ns) == 0 {
		c.Ns = []int{2, 4, 16, 64, 256}
	}
	if c.Duration == 0 {
		c.Duration = 120 * time.Second
	}
	if c.Alpha == 0 {
		c.Alpha = 1
	}
	return c
}

// FlowStat is one flow's slice of a fairness run.
type FlowStat struct {
	// Flow is the member index.
	Flow int
	// Rate is the delivered packet rate over the second half of the
	// run, in packets/s.
	Rate float64
	// Delivered counts packets that reached the receiver over the whole
	// run.
	Delivered int
	// MeanDelay and MaxDelay summarize the flow's one-way packet delay
	// in seconds.
	MeanDelay, MaxDelay float64
	// P99Delay is the flow's streaming 99th-percentile one-way delay in
	// seconds (P² estimator — O(1) space, available in lean runs too).
	P99Delay float64
	// Drops counts the flow's packets discarded at the bottleneck.
	Drops int
	// Utility is the flow's realized delivery utility,
	// Σ bits·exp(-delay/κ) over acknowledged packets.
	Utility float64
}

// FairnessPoint is one fleet size's result.
type FairnessPoint struct {
	// N is the fleet size.
	N int
	// Jain is Jain's fairness index over the per-flow second-half
	// rates: 1 = perfectly even split.
	Jain float64
	// AggRate is the summed second-half delivery rate in packets/s;
	// LinkPkts is what the bottleneck could carry, for reference.
	AggRate, LinkPkts float64
	// MinRate and MaxRate bound the per-flow rates.
	MinRate, MaxRate float64
	// MeanDelay is the delivered-packet delay mean across all flows,
	// in seconds.
	MeanDelay float64
	// AggUtility sums the per-flow realized utilities.
	AggUtility float64
	// Drops counts bottleneck drops across all flows.
	Drops int
	// CacheHits/CacheMisses are the shared policy cache's counters —
	// the fleet's amortization at work.
	CacheHits, CacheMisses int
	// PerFlow holds the per-flow breakdown, indexed by member.
	PerFlow []FlowStat
}

// FairnessResult is the whole sweep.
type FairnessResult struct {
	// Cfg echoes the resolved configuration.
	Cfg FairnessConfig
	// Points holds one entry per fleet size, in Ns order.
	Points []FairnessPoint
}

// fleetRuntime is the read surface the fairness reduction needs. The
// single-loop fleet and the sharded runtime both satisfy it, so one
// reduction serves either engine.
type fleetRuntime interface {
	MemberSlots() []*fleet.Member
	Delivered(packet.FlowID) int
	FlowDrops(packet.FlowID) int
	Drops() int
	CacheStats() (hits, misses int)
}

// FairnessSweep runs one fleet per N and reports fairness, per-flow
// throughput/delay, and aggregate utility at each size. Every run is
// deterministic given (Seed, Duration, N, Alpha, PerSenderRate,
// FairQueue) — the Workers knob changes only wall-clock time, never
// the result, and with Shards > 0 the shard count doesn't either
// (TestFairnessSweepShardDeterminism asserts the latter).
func FairnessSweep(cfg FairnessConfig) FairnessResult {
	cfg = cfg.withDefaults()
	res := FairnessResult{Cfg: cfg}
	for _, n := range cfg.Ns {
		fc := fleet.Config{
			N:             n,
			Seed:          cfg.Seed,
			Alpha:         cfg.Alpha,
			PerSenderRate: cfg.PerSenderRate,
			FairQueue:     cfg.FairQueue,
			Workers:       cfg.Workers,
			NoSharedCache: cfg.NoSharedCache,
			LeanStats:     cfg.LeanStats,
		}
		if cfg.LeanStats {
			// The late-ack counter stands in for the acked series: count
			// from the second half's start, which is all the rate
			// reduction reads.
			fc.LeanRateFrom = cfg.Duration / 2
		}
		var rt fleetRuntime
		if cfg.Shards > 0 {
			sf := shard.New(shard.Config{Fleet: fc, Shards: cfg.Shards})
			sf.Run(cfg.Duration)
			rt = sf
		} else {
			fl := fleet.New(fc)
			fl.Run(cfg.Duration)
			rt = fl
		}
		res.Points = append(res.Points, fairnessPoint(rt, fc.Resolved(), cfg.Duration, cfg.LeanStats))
	}
	return res
}

// fairnessPoint reduces one finished run to its sweep entry. Per-flow
// data is read in member-slot order only, so the reduction is
// deterministic for either engine.
func fairnessPoint(rt fleetRuntime, rc fleet.Config, duration time.Duration, lean bool) FairnessPoint {
	half := duration / 2
	halfSecs := (duration - half).Seconds()
	p := FairnessPoint{
		LinkPkts: float64(rc.LinkRate) / float64(packet.DefaultSizeBits),
		Drops:    rt.Drops(),
	}
	p.CacheHits, p.CacheMisses = rt.CacheStats()

	var rates []float64
	var delays stats.Summary
	for i, m := range rt.MemberSlots() {
		if m == nil {
			continue
		}
		// Delivered rate as acknowledgments per second over the second
		// half: well-defined even for flows with a single sample, which
		// a slope fit is not. Lean runs count late acks instead of
		// windowing a retained series.
		var rate float64
		if lean {
			rate = float64(m.LateAcks) / halfSecs
		} else {
			w := m.AckedSeq.Window(half, duration)
			rate = float64(w.Len()) / halfSecs
		}
		rates = append(rates, rate)

		fs := FlowStat{
			Flow:      i,
			Rate:      rate,
			Delivered: rt.Delivered(m.Flow),
			MeanDelay: m.Delay.Mean(),
			MaxDelay:  m.Delay.MaxV,
			P99Delay:  m.DelayP99.Value(),
			Utility:   m.Utility,
		}
		// Generation-fenced accessor: identical to the raw per-flow maps
		// for a churn-free sweep, correct when flows have been recycled.
		fs.Drops = rt.FlowDrops(m.Flow)
		p.PerFlow = append(p.PerFlow, fs)
		p.AggRate += rate
		p.AggUtility += m.Utility
		delays.Merge(m.Delay)
		if p.N == 0 || rate < p.MinRate {
			p.MinRate = rate
		}
		if rate > p.MaxRate {
			p.MaxRate = rate
		}
		p.N++
	}
	p.Jain = stats.JainIndex(rates)
	p.MeanDelay = delays.Mean()
	return p
}

// Render prints the sweep as the table the fairness analysis reads:
// one line per fleet size.
func (r FairnessResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fairness sweep: %v virtual per run, alpha=%g, seed=%d",
		r.Cfg.Duration, r.Cfg.Alpha, r.Cfg.Seed)
	if r.Cfg.FairQueue {
		b.WriteString(", DRR fair queue")
	}
	if r.Cfg.Shards > 0 {
		fmt.Fprintf(&b, ", %d shards", r.Cfg.Shards)
	}
	if r.Cfg.LeanStats {
		b.WriteString(", lean stats")
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-6s %8s %10s %10s %10s %10s %10s %8s %12s\n",
		"N", "jain", "agg pkt/s", "link pkt/s", "min pkt/s", "max pkt/s", "delay(s)", "drops", "cache h/m")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-6d %8.4f %10.3f %10.3f %10.4f %10.4f %10.3f %8d %7d/%d\n",
			p.N, p.Jain, p.AggRate, p.LinkPkts, p.MinRate, p.MaxRate, p.MeanDelay, p.Drops, p.CacheHits, p.CacheMisses)
	}
	return b.String()
}
