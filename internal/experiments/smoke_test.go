package experiments

import (
	"testing"
	"time"

	"modelcc/internal/model"
	"modelcc/internal/utility"
)

// tinyPrior is a reduced Fig3 prior (same ranges, coarser grids) that
// still contains the true parameter point, for fast tests.
func tinyPrior() model.Prior {
	return model.Prior{
		LinkRate:      model.PriorRange{Lo: 10000, Hi: 16000, N: 4},  // includes 12000
		CrossFrac:     model.PriorRange{Lo: 0.4, Hi: 0.7, N: 2},      // includes 0.7
		LossProb:      model.PriorRange{Lo: 0, Hi: 0.2, N: 2},        // includes 0.2
		BufferCapBits: model.PriorRange{Lo: 72000, Hi: 108000, N: 4}, // must include true 96000

		FullnessSteps:  2,
		MeanSwitch:     100 * time.Second,
		PingerMaybeOff: true,
	}
}

func tinyConfig(alpha float64, dur time.Duration) ISenderConfig {
	u := utility.Default()
	u.Alpha = alpha
	return ISenderConfig{
		Actual:        model.Fig2Actual(),
		PingerOnStart: true,
		Gate:          model.GateSquareWave,
		HalfPeriod:    100 * time.Second,
		Prior:         tinyPrior(),
		Utility:       u,
		Duration:      dur,
		Seed:          42,
	}
}

func TestSmokeISenderRun(t *testing.T) {
	if testing.Short() {
		t.Skip("integration smoke test")
	}
	res := RunISender(tinyConfig(1.0, 60*time.Second))
	t.Logf("sent=%d acked=%d wakes=%d ownDrops=%d crossDrops=%d support=%v",
		res.Sent, res.Acked, res.Wakes, res.OwnBufferDrops, res.CrossBufferDrops, res.SupportSize.Max())
	if res.Sent == 0 {
		t.Fatal("sender never sent")
	}
	if res.Acked == 0 {
		t.Fatal("no packet was ever acknowledged")
	}
	if res.OwnBufferDrops+res.CrossBufferDrops > 0 {
		t.Errorf("α=1 run caused %d buffer drops, paper says none",
			res.OwnBufferDrops+res.CrossBufferDrops)
	}
}
