package experiments

import (
	"testing"
	"time"
)

// TestChurnDeterminismAcrossWorkers is the acceptance check: an N=64
// fleet under a seeded churn schedule — arrivals, departures,
// crash-kills, supervised restarts — produces bit-identical per-flow
// delivery counts and replay hash whether the rollout pool is serial
// or as wide as the machine.
func TestChurnDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("long churn run; the -race CI churn smoke covers short mode")
	}
	cfg := ChurnConfig{N: 64, Duration: 60 * time.Second, Seed: 20, Epoch: 10 * time.Second}
	cfg.Workers = 1
	serial := RunChurn(cfg)
	cfg.Workers = 0 // GOMAXPROCS
	parallel := RunChurn(cfg)

	if serial.ReplayHash != parallel.ReplayHash {
		t.Errorf("replay hash differs: serial %016x, parallel %016x",
			serial.ReplayHash, parallel.ReplayHash)
	}
	if len(serial.Delivered) != len(parallel.Delivered) {
		t.Fatalf("flow-space sizes differ: %d vs %d", len(serial.Delivered), len(parallel.Delivered))
	}
	for i := range serial.Delivered {
		if serial.Delivered[i] != parallel.Delivered[i] {
			t.Errorf("flow %d delivered %d serial vs %d parallel",
				i, serial.Delivered[i], parallel.Delivered[i])
		}
	}
	if serial.Crashes+serial.Departures == 0 {
		t.Error("schedule produced no churn; determinism check is vacuous")
	}
}

// TestChurnSameSeedSameHash: two identical runs replay bit-identically
// (the weaker but faster replay property, at a smaller N).
func TestChurnSameSeedSameHash(t *testing.T) {
	if testing.Short() {
		t.Skip("long churn run; the -race CI churn smoke covers short mode")
	}
	cfg := ChurnConfig{N: 8, Duration: 60 * time.Second, Seed: 3, Epoch: 5 * time.Second}
	a, b := RunChurn(cfg), RunChurn(cfg)
	if a.ReplayHash != b.ReplayHash {
		t.Fatalf("same seed, different hashes: %016x vs %016x", a.ReplayHash, b.ReplayHash)
	}
}

// TestWarmRestartsCheaperThanCold: with checkpoints on, restarts are
// warm and resume a converged posterior; with checkpoints off they are
// cold and pay down the full prior. The restarted generations' mean
// belief support over their first 15 s must show it.
func TestWarmRestartsCheaperThanCold(t *testing.T) {
	if testing.Short() {
		t.Skip("long churn run; the -race CI churn smoke covers short mode")
	}
	base := ChurnConfig{N: 16, Duration: 120 * time.Second, Seed: 42}
	warm := RunChurn(base)
	coldCfg := base
	coldCfg.NoCheckpoints = true
	cold := RunChurn(coldCfg)

	if warm.WarmRestarts == 0 {
		t.Fatal("checkpointing run produced no warm restarts")
	}
	if warm.ColdRestarts != 0 {
		t.Errorf("checkpointing run fell back cold %d times", warm.ColdRestarts)
	}
	if cold.ColdRestarts == 0 || cold.WarmRestarts != 0 {
		t.Fatalf("no-checkpoint run restarts: cold=%d warm=%d, want all cold",
			cold.ColdRestarts, cold.WarmRestarts)
	}
	if warm.CheckpointErrors != 0 {
		t.Errorf("checkpoint errors: %d", warm.CheckpointErrors)
	}
	if warm.RestartSupport15 <= 0 || cold.RestartSupport15 <= 0 {
		t.Fatalf("support metric empty: warm %.1f cold %.1f",
			warm.RestartSupport15, cold.RestartSupport15)
	}
	if warm.RestartSupport15 >= 0.95*cold.RestartSupport15 {
		t.Errorf("warm restart support %.1f not measurably below cold %.1f",
			warm.RestartSupport15, cold.RestartSupport15)
	}
}

// TestChurnRecovery: the fleet under churn stays healthy — restarted
// members recover their share of utility, fairness holds among stable
// members, and teardown is graceful (orphan acknowledgments are
// counted, never lost to a panic).
func TestChurnRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("long churn run; the -race CI churn smoke covers short mode")
	}
	r := RunChurn(ChurnConfig{N: 16, Duration: 120 * time.Second, Seed: 7})
	if r.Live < r.Cfg.MinLive || r.Live > r.Cfg.N {
		t.Errorf("final population %d outside [%d, %d]", r.Live, r.Cfg.MinLive, r.Cfg.N)
	}
	if r.UtilityRatio < 0.9 {
		t.Errorf("post-restart utility ratio %.3f, want >= 0.9", r.UtilityRatio)
	}
	if r.Jain < 0.8 {
		t.Errorf("Jain under churn %.4f, want >= 0.8", r.Jain)
	}
	if r.Crashes > 0 && r.OrphanAcks == 0 {
		t.Error("crashes happened but no orphan acks drained; teardown not exercised")
	}
	if r.RampSamples == 0 {
		t.Error("no restarted generation lived long enough to measure ramp-up")
	}
}
