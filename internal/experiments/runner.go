// Package experiments contains the harnesses that regenerate every
// figure and result in the paper's evaluation (§4), plus the extension
// experiments listed in DESIGN.md. The cmd/ tools and the repository's
// benchmarks are thin wrappers over these functions, so "the experiment"
// exists in exactly one place.
package experiments

import (
	"math/rand"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/core"
	"modelcc/internal/model"
	"modelcc/internal/packet"
	"modelcc/internal/planner"
	"modelcc/internal/stats"
	"modelcc/internal/units"
	"modelcc/internal/utility"
)

// ISenderConfig describes one ISENDER-vs-ground-truth run.
type ISenderConfig struct {
	// Actual is the true network (defaults to the paper's Fig2Actual).
	Actual model.Params
	// PingerOnStart is the true gate's initial state.
	PingerOnStart bool
	// Gate is how the true gate behaves; the paper's Figure 3 uses
	// GateSquareWave with a 100 s half period against a belief that
	// assumes GateMemoryless.
	Gate model.GateSchedule
	// HalfPeriod is the square wave's half period.
	HalfPeriod time.Duration
	// Prior is the sender's prior (defaults to the paper's Fig3Prior).
	Prior model.Prior
	// Utility is the function the sender maximizes; Alpha is the
	// paper's α.
	Utility utility.Config
	// Plan overrides planner defaults when non-zero.
	Plan planner.Config
	// Belief selects the inference engine.
	UseParticle bool
	// Particles is the particle count when UseParticle is set.
	Particles int
	// BeliefCfg overrides belief defaults when non-zero.
	BeliefCfg belief.Config
	// Duration is the virtual run length (default 300 s, the paper's).
	Duration time.Duration
	// Seed drives all ground-truth randomness.
	Seed int64
	// Workers shards belief updates and planner rollouts across a
	// worker pool: 0 means GOMAXPROCS, 1 forces the serial path. Any
	// value produces bit-identical results (see belief.Config.Workers).
	Workers int
}

func (c ISenderConfig) withDefaults() ISenderConfig {
	if c.Actual == (model.Params{}) {
		c.Actual = model.Fig2Actual()
	}
	if c.Prior.LinkRate.N == 0 && c.Prior.LinkRate.Lo == 0 {
		c.Prior = model.Fig3Prior()
	}
	if c.Utility.Kappa == 0 {
		c.Utility = utility.Default()
		c.Utility.Alpha = 1
	}
	if c.Duration == 0 {
		c.Duration = 300 * time.Second
	}
	if c.HalfPeriod == 0 {
		c.HalfPeriod = 100 * time.Second
	}
	c.Plan.Util = c.Utility
	if c.Workers != 0 {
		c.Plan.Workers = c.Workers
		c.BeliefCfg.Workers = c.Workers
	}
	return c
}

// ISenderResult is everything the figures need from one run.
type ISenderResult struct {
	// AckedSeq is the acknowledged sequence number over time — the
	// y-axis of Figure 3.
	AckedSeq stats.Series
	// SentSeq is the sent sequence number over time.
	SentSeq stats.Series
	// PPingerOn tracks the posterior probability that the gate is
	// connected — the sender's "timidity" signal.
	PPingerOn stats.Series
	// SupportSize tracks the belief's hypothesis count over time.
	SupportSize stats.Series

	// Sent and Acked are final counts for the sender's own flow.
	Sent, Acked int64
	// OwnBufferDrops / CrossBufferDrops count tail drops at the shared
	// buffer; the paper's claim is that for α >= 1 the ISENDER never
	// causes any.
	OwnBufferDrops, CrossBufferDrops int
	// CrossDelivered counts cross packets that survived to their
	// receiver.
	CrossDelivered int
	// OwnThroughput is the sender's achieved goodput in bits/second
	// over the whole run.
	OwnThroughput units.BitRate
	// Utility is the realized delivery utility of the sender's own
	// flow: Σ bits·exp(-delay/κ) over acknowledged packets, the same
	// accounting the fleet fairness sweeps aggregate per flow.
	Utility float64
	// UpdateCum aggregates belief work across the run.
	UpdateCum belief.UpdateStats
	// Wakes counts sender wakeups.
	Wakes int64
}

// RunISender executes one ISENDER run against a ground-truth network and
// gathers the figure series. The coupling is exact: the truth is
// advanced in steps bounded by its own next transition and the sender's
// next wakeup, so no acknowledgment or timer is ever skipped over.
func RunISender(cfg ISenderConfig) ISenderResult {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	truth := model.NewTruth(cfg.Actual, cfg.PingerOnStart, cfg.Gate, cfg.HalfPeriod, rng)

	states, _ := cfg.Prior.Enumerate()
	var b belief.Belief
	if cfg.UseParticle {
		n := cfg.Particles
		if n <= 0 {
			n = 4 * len(states)
		}
		b = belief.NewParticle(states, n, cfg.BeliefCfg, rand.New(rand.NewSource(cfg.Seed+1)))
	} else {
		b = belief.NewExact(states, cfg.BeliefCfg)
	}
	sender := core.NewSender(b, cfg.Plan)

	var res ISenderResult
	res.AckedSeq.Name = "acked"
	res.SentSeq.Name = "sent"
	res.PPingerOn.Name = "P(pinger on)"
	res.SupportSize.Name = "hypotheses"

	now := time.Duration(0)
	var pendingInject []model.Send

	act := sender.Wake(now, nil)
	pendingInject = append(pendingInject, act.Sends...)
	for _, snd := range act.Sends {
		res.SentSeq.Add(snd.At, float64(snd.Seq))
	}
	wakeAt := act.WakeAt
	sampleEstimates := func() {
		e := sender.Estimates()
		res.PPingerOn.Add(now, e.PPingerOn)
		res.SupportSize.Add(now, float64(e.N))
	}
	sampleEstimates()

	for now < cfg.Duration {
		next := cfg.Duration
		if wakeAt > now && wakeAt < next {
			next = wakeAt
		}
		if tn := truth.NextTransition(); tn > now && tn < next {
			next = tn
		}
		evs := truth.AdvanceTo(next, pendingInject)
		pendingInject = pendingInject[:0]
		now = next

		var acks []packet.Ack
		for _, ev := range evs {
			switch ev.Kind {
			case model.OwnDelivered:
				acks = append(acks, packet.Ack{Flow: packet.FlowSelf, Seq: ev.Seq, ReceivedAt: ev.At})
				res.AckedSeq.Add(ev.At, float64(ev.Seq))
				res.Utility += float64(ev.Bits) * cfg.Utility.Discount(ev.Delay)
			}
		}

		if len(acks) > 0 || now >= wakeAt {
			act = sender.Wake(now, acks)
			for _, snd := range act.Sends {
				res.SentSeq.Add(snd.At, float64(snd.Seq))
			}
			pendingInject = append(pendingInject, act.Sends...)
			if act.WakeAt <= now {
				act.WakeAt = now + 10*time.Millisecond
			}
			wakeAt = act.WakeAt
			sampleEstimates()
		}
	}

	res.Sent = sender.Sent
	res.Acked = sender.Acked
	res.Wakes = sender.Wakes
	res.OwnBufferDrops = truth.OwnBufferDropN
	res.CrossBufferDrops = truth.CrossBufferDropN
	res.CrossDelivered = truth.CrossDeliveredN
	if cfg.Duration > 0 {
		res.OwnThroughput = units.BitRate(float64(res.Acked) * float64(cfg.Actual.PktBits()) / cfg.Duration.Seconds())
	}
	if ex, ok := b.(*belief.Exact); ok {
		res.UpdateCum = ex.Cum
	}
	return res
}
