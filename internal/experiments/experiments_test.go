package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestFig1Bufferbloat(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	cfg := Fig1Config{Duration: 120 * time.Second, Seed: 3}
	res := RunFig1(cfg)
	report, ok := Fig1Claims(res, cfg.withDefaults().BaseRTT)
	t.Logf("\n%s", report)
	t.Logf("min=%.3f med=%.3f p95=%.3f max=%.3f goodput=%v",
		res.MinRTT, res.MedianRTT, res.P95RTT, res.MaxRTT, res.Goodput)
	if !ok {
		t.Error("Figure 1 qualitative claims failed")
	}
	if res.RTT.Len() == 0 {
		t.Fatal("no RTT samples")
	}
	if !strings.Contains(res.Render(), "Figure 1") {
		t.Error("render missing title")
	}
}

func TestSimpleConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	res := RunSimple(11, 120*time.Second)
	t.Logf("early=%.3f pkt/s late=%.3f pkt/s", res.EarlyRate, res.LateRate)
	if !res.ConvergedToLinkSpeed {
		t.Errorf("late rate %.3f pkt/s, want ~1.0 (the paper: \"it simply sends at the link speed\")", res.LateRate)
	}
	if res.Run.OwnBufferDrops > 0 {
		t.Errorf("simple run dropped %d own packets", res.Run.OwnBufferDrops)
	}
}

func TestDrainFirst(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	res := RunDrain(13, 90*time.Second)
	t.Logf("penalized first send at %v; unpenalized at %v",
		res.PenalizedFirstSend, res.UnpenalizedFirstSend)
	if res.PenalizedFirstSend < 0 {
		t.Fatal("penalized sender never sent")
	}
	if res.UnpenalizedFirstSend < 0 {
		t.Fatal("unpenalized sender never sent")
	}
	// The paper: with the latency penalty "the ISENDER drains the
	// buffer before sending at the link speed" — it must wait
	// substantially longer than the unpenalized sender, on the order of
	// the 4 s backlog drain.
	if res.PenalizedFirstSend < res.UnpenalizedFirstSend+2*time.Second {
		t.Errorf("penalized sender did not drain first: %v vs %v",
			res.PenalizedFirstSend, res.UnpenalizedFirstSend)
	}
	// Both must still reach steady sending.
	if res.Penalized.Sent < 10 {
		t.Errorf("penalized sender sent only %d packets", res.Penalized.Sent)
	}
}

func TestTwoISendersShare(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	res := RunTwoISenders(17, 180*time.Second)
	t.Logf("rates: A=%.3f B=%.3f pkt/s; Jain=%.3f; drops=%d",
		res.ARate, res.BRate, res.JainIndex, res.Drops)
	if res.ARate == 0 || res.BRate == 0 {
		t.Fatal("a sender starved completely")
	}
	if res.JainIndex < 0.7 {
		t.Errorf("Jain index %.3f: grossly unfair split", res.JainIndex)
	}
	// Two α=1 senders must not overload the link persistently.
	if total := res.ARate + res.BRate; total > 1.15 {
		t.Errorf("combined rate %.3f pkt/s exceeds the 1 pkt/s link", total)
	}
}

func TestISenderVsTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	res := RunISenderVsTCP(19, 180*time.Second)
	t.Logf("rates: isender=%.3f tcp=%.3f pkt/s; drops=%d", res.ARate, res.BRate, res.Drops)
	// §3.5 expects TCP to bully a queue-averse sender; the experiment's
	// value is demonstrating both survive. The ISENDER must still get
	// *some* throughput and TCP must not collapse.
	if res.BRate <= 0 {
		t.Error("TCP made no progress")
	}
	if res.ARate < 0.02 {
		t.Errorf("ISENDER starved to %.3f pkt/s against TCP", res.ARate)
	}
}

func TestFig3RenderAndClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	// A minimal two-α render check on short runs.
	res := Fig3Result{}
	for _, a := range []float64{1.0, 5} {
		cfg := tinyConfig(a, 60*time.Second)
		res.Alphas = append(res.Alphas, a)
		res.Runs = append(res.Runs, RunISender(cfg))
	}
	out := res.Render()
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "α=5") {
		t.Errorf("render output incomplete:\n%s", out)
	}
}

func TestParticleBeliefEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	cfg := tinyConfig(1.0, 60*time.Second)
	cfg.UseParticle = true
	cfg.Particles = 512
	res := RunISender(cfg)
	if res.Sent == 0 || res.Acked == 0 {
		t.Fatalf("particle-belief sender made no progress: sent=%d acked=%d", res.Sent, res.Acked)
	}
}
