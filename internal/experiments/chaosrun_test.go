package experiments

import (
	"testing"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/chaos"
)

// chaosMenu is the acceptance fault schedule: bursty ~30% loss,
// reordering with a hold-back long enough to make acks stale,
// corruption (a drop after decode fails), and a 2 s blackout mid-run.
// BurstProb 0.1 with the default burst length of 4 puts ~25% of
// packets inside bursts; i.i.d. drop and corruption take the total to
// roughly 30%.
func chaosMenu() chaos.Config {
	return chaos.Config{
		Seed:         99,
		DropProb:     0.03,
		BurstProb:    0.1,
		CorruptProb:  0.03,
		ReorderProb:  0.3,
		ReorderDelay: 2 * time.Second,
		Blackouts:    []chaos.Window{{Start: 20 * time.Second, Len: 2 * time.Second}},
	}
}

func chaosBase(dur time.Duration) ISenderConfig {
	cfg := tinyConfig(1, dur)
	cfg.BeliefCfg = belief.Config{Recover: true}
	return cfg
}

// TestChaosReplayBitIdentical: the acceptance criterion — the same seed
// replays the same fault schedule and the same run, bit for bit, on the
// DES path.
func TestChaosReplayBitIdentical(t *testing.T) {
	cfg := ChaosConfig{Base: chaosBase(120 * time.Second), Faults: chaosMenu()}
	a := RunChaos(cfg)
	b := RunChaos(cfg)
	if a.Hash != b.Hash {
		t.Fatalf("replay hashes differ: %#x vs %#x", a.Hash, b.Hash)
	}
	if a.Sent != b.Sent || a.Acked != b.Acked || a.Utility != b.Utility || a.Reseeded != b.Reseeded {
		t.Fatalf("replay diverges: %+v vs %+v", a.ISenderResult, b.ISenderResult)
	}
	if a.Sent == 0 || a.Acked == 0 {
		t.Fatalf("chaotic run made no progress: sent=%d acked=%d", a.Sent, a.Acked)
	}
	t.Logf("sent=%d acked=%d reseeded=%d data=%+v ack=%+v",
		a.Sent, a.Acked, a.Reseeded, a.DataStats, a.AckStats)
}

// TestChaosExercisesRecovery: the fault menu produces observations no
// hypothesis explains (dropped data the belief expected delivered, stale
// reordered acks), so Recover must fire — and the run must keep making
// progress afterwards.
func TestChaosExercisesRecovery(t *testing.T) {
	cfg := ChaosConfig{Base: chaosBase(120 * time.Second), Faults: chaosMenu()}
	res := RunChaos(cfg)
	if res.Reseeded == 0 {
		t.Fatal("fault menu never collapsed the belief; Recover untested")
	}
	// Post-blackout the sender must still be acknowledged: utility in the
	// final third of the run is nonzero.
	if u := res.UtilityIn(80*time.Second, 120*time.Second); u <= 0 {
		t.Fatalf("no realized utility after the blackout (total %v)", res.Utility)
	}
}

// TestChaosCleanMatchesISender: with no faults enabled, RunChaos is the
// plain experiment — same counters as RunISender on the same config.
func TestChaosCleanMatchesISender(t *testing.T) {
	base := chaosBase(30 * time.Second)
	clean := RunChaos(ChaosConfig{Base: base})
	ref := RunISender(base)
	if clean.Sent != ref.Sent || clean.Acked != ref.Acked || clean.Utility != ref.Utility {
		t.Fatalf("clean chaos run diverges from RunISender: %d/%d/%v vs %d/%d/%v",
			clean.Sent, clean.Acked, clean.Utility, ref.Sent, ref.Acked, ref.Utility)
	}
}
