package experiments

import (
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/core"
	"modelcc/internal/elements"
	"modelcc/internal/model"
	"modelcc/internal/packet"
	"modelcc/internal/planner"
	"modelcc/internal/sim"
	"modelcc/internal/stats"
	"modelcc/internal/tcp"
	"modelcc/internal/utility"
)

// The coexistence experiments answer §3.5's open question — "we have not
// yet experimented with any networks that contain more than one ISENDER,
// or any network elements performing TCP" — on the discrete-event
// substrate. Each ISENDER models the *other* foreground flow as the
// PINGER it knows how to reason about; the mismatch (the competitor is
// not isochronous) is absorbed by the soft observation likelihood
// (belief.Config.SoftSigma), and the belief runs in Relax mode so a
// surprise cannot abort the run.

// simSender adapts a core.Sender to the simulator: it injects packets as
// DES packets, receives acks from an elements.Receiver, and keeps its
// wake timer on the loop.
type simSender struct {
	loop   *sim.Loop
	sender *core.Sender
	flow   packet.FlowID
	out    elements.Node
	timer  *sim.Timer
	acks   []packet.Ack

	// SentSeq and AckedSeq are the run series for this flow.
	SentSeq, AckedSeq stats.Series
}

func newSimSender(loop *sim.Loop, s *core.Sender, flow packet.FlowID, out elements.Node) *simSender {
	ss := &simSender{loop: loop, sender: s, flow: flow, out: out}
	ss.SentSeq.Name = flow.String() + " sent"
	ss.AckedSeq.Name = flow.String() + " acked"
	ss.timer = sim.NewTimer(loop, func() { ss.wake() })
	return ss
}

func (ss *simSender) start() { ss.loop.After(0, ss.wake) }

// onAck is wired to the flow's receiver.
func (ss *simSender) onAck(a packet.Ack) {
	ss.AckedSeq.Add(ss.loop.Now(), float64(a.Seq))
	ss.acks = append(ss.acks, a)
	ss.wake()
}

func (ss *simSender) wake() {
	now := ss.loop.Now()
	acks := ss.acks
	ss.acks = nil
	act := ss.sender.Wake(now, acks)
	for _, snd := range act.Sends {
		ss.SentSeq.Add(now, float64(snd.Seq))
		ss.out.Receive(packet.Packet{
			Flow:      ss.flow,
			Seq:       snd.Seq,
			SizeBytes: packet.DefaultSizeBytes,
			SentAt:    now,
		})
	}
	if act.WakeAt <= now {
		act.WakeAt = now + 10*time.Millisecond
	}
	ss.timer.ArmAt(act.WakeAt)
}

// coexistPrior is the belief each coexisting ISENDER uses: known link
// and buffer (the open question is competitor inference, not link
// inference), unknown competitor rate and gate state.
func coexistPrior() model.Prior {
	return model.Prior{
		LinkRate:       model.PriorRange{Lo: 12000, Hi: 12000, N: 1},
		CrossFrac:      model.PriorRange{Lo: 0.2, Hi: 0.8, N: 4},
		LossProb:       model.PriorRange{Lo: 0, Hi: 0, N: 1},
		BufferCapBits:  model.PriorRange{Lo: 96000, Hi: 96000, N: 1},
		FullnessSteps:  2,
		MeanSwitch:     30 * time.Second,
		PingerMaybeOff: true,
	}
}

func coexistBeliefCfg() belief.Config {
	return belief.Config{
		SoftSigma: 300 * time.Millisecond,
		Relax:     true,
		MaxHyps:   1 << 12,
	}
}

// CoexistResult summarizes a two-flow sharing run.
type CoexistResult struct {
	// ARate and BRate are the two flows' delivered packet rates over
	// the second half of the run (after convergence), in packets/s.
	ARate, BRate float64
	// Drops counts shared-buffer tail drops.
	Drops int
	// JainIndex is Jain's fairness index over the two rates.
	JainIndex float64
	// ASeries/BSeries are acked-seq series for plotting.
	ASeries, BSeries stats.Series
}

func jain(a, b float64) float64 {
	if a+b == 0 {
		return 1
	}
	return (a + b) * (a + b) / (2 * (a*a + b*b))
}

// RunTwoISenders shares one 12 kbit/s bottleneck between two ISENDERs
// with the same α=1 utility, each modeling the other as cross traffic.
func RunTwoISenders(seed int64, duration time.Duration) CoexistResult {
	loop := sim.New(seed)

	var a, bSnd *simSender
	recv := elements.NewReceiver(loop, func(ack packet.Ack) {
		switch ack.Flow {
		case packet.FlowSelf:
			a.onAck(ack)
		case packet.FlowOther:
			bSnd.onAck(ack)
		}
	})
	buf, _ := elements.NewBottleneck(loop, 96000, 12000, recv)

	mk := func(flow packet.FlowID) *simSender {
		states, _ := coexistPrior().Enumerate()
		b := belief.NewExact(states, coexistBeliefCfg())
		u := utility.Default()
		u.Alpha = 1
		plan := planner.DefaultConfig()
		plan.Util = u
		return newSimSender(loop, core.NewSender(b, plan), flow, buf)
	}
	a = mk(packet.FlowSelf)
	bSnd = mk(packet.FlowOther)

	a.start()
	bSnd.start()
	loop.Run(duration)

	half := duration / 2
	res := CoexistResult{
		ARate:   a.AckedSeq.Rate(half, duration),
		BRate:   bSnd.AckedSeq.Rate(half, duration),
		Drops:   buf.Drops[packet.FlowSelf] + buf.Drops[packet.FlowOther],
		ASeries: a.AckedSeq,
		BSeries: bSnd.AckedSeq,
	}
	res.JainIndex = jain(res.ARate, res.BRate)
	return res
}

// RunISenderVsTCP shares the bottleneck between an ISENDER (α = 1) and a
// Reno sender with unbounded appetite.
func RunISenderVsTCP(seed int64, duration time.Duration) CoexistResult {
	loop := sim.New(seed)

	states, _ := coexistPrior().Enumerate()
	bel := belief.NewExact(states, coexistBeliefCfg())
	u := utility.Default()
	u.Alpha = 1
	plan := planner.DefaultConfig()
	plan.Util = u

	var is *simSender
	var reno *tcp.Sender
	renoRecv := tcp.NewReceiver(loop, nil)

	isRecv := elements.NewReceiver(loop, func(ack packet.Ack) {
		is.onAck(ack)
	})
	// TCP segments route to the TCP receiver, the ISENDER's to its own.
	div := elements.NewDiverter(packet.FlowOther, elements.NodeFunc(renoRecv.Receive), isRecv)
	buf, _ := elements.NewBottleneck(loop, 96000, 12000, div)

	renoRecv.OnAck = func(ackNext int64, echoSentAt int64) {
		reno.OnAck(ackNext, time.Duration(echoSentAt))
	}

	is = newSimSender(loop, core.NewSender(bel, plan), packet.FlowSelf, buf)
	reno = tcp.NewSender(loop, buf, packet.FlowOther, tcp.Config{})

	is.start()
	loop.After(0, reno.Start)
	loop.Run(duration)

	half := duration / 2
	res := CoexistResult{
		ARate:   is.AckedSeq.Rate(half, duration),
		BRate:   float64(reno.SndUna()) / duration.Seconds(),
		Drops:   buf.Drops[packet.FlowSelf] + buf.Drops[packet.FlowOther],
		ASeries: is.AckedSeq,
	}
	res.BSeries = stats.Series{Name: "tcp delivered"}
	res.JainIndex = jain(res.ARate, res.BRate)
	return res
}
