package experiments

import (
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/core"
	"modelcc/internal/elements"
	"modelcc/internal/fleet"
	"modelcc/internal/packet"
	"modelcc/internal/planner"
	"modelcc/internal/sim"
	"modelcc/internal/stats"
	"modelcc/internal/tcp"
	"modelcc/internal/utility"
)

// The coexistence experiments answer §3.5's open question — "we have not
// yet experimented with any networks that contain more than one ISENDER,
// or any network elements performing TCP" — on the discrete-event
// substrate. Each ISENDER models the *other* foreground flow as the
// PINGER it knows how to reason about; the mismatch (the competitor is
// not isochronous) is absorbed by the soft observation likelihood
// (belief.Config.SoftSigma), and the belief runs in Relax mode so a
// surprise cannot abort the run.
//
// The two-flow experiments are now thin layers over internal/fleet: the
// sender-to-simulator adapter that used to live here is fleet.Member,
// and RunTwoISenders is literally a fleet of N = 2 (FairnessSweep scales
// the same machinery to hundreds of senders).

// CoexistResult summarizes a two-flow sharing run.
type CoexistResult struct {
	// ARate and BRate are the two flows' delivered packet rates over
	// the second half of the run (after convergence), in packets/s.
	ARate, BRate float64
	// Drops counts shared-buffer tail drops.
	Drops int
	// JainIndex is Jain's fairness index over the two rates.
	JainIndex float64
	// ASeries/BSeries are acked-seq series for plotting.
	ASeries, BSeries stats.Series
}

// RunTwoISenders shares one 12 kbit/s bottleneck between two ISENDERs
// with the same α=1 utility, each modeling the other as cross traffic.
// It is a fleet of two: the default fleet parameters reproduce the
// original two-flow topology exactly (6000 bit/s fair share each,
// 96,000-bit shared buffer).
func RunTwoISenders(seed int64, duration time.Duration) CoexistResult {
	fl := fleet.New(fleet.Config{N: 2, Seed: seed})
	fl.Run(duration)

	a, b := fl.Members[0], fl.Members[1]
	half := duration / 2
	res := CoexistResult{
		ARate:   a.AckedSeq.Rate(half, duration),
		BRate:   b.AckedSeq.Rate(half, duration),
		Drops:   fl.Drops(),
		ASeries: a.AckedSeq,
		BSeries: b.AckedSeq,
	}
	res.JainIndex = stats.JainIndex([]float64{res.ARate, res.BRate})
	return res
}

// RunISenderVsTCP shares the bottleneck between an ISENDER (α = 1) and a
// Reno sender with unbounded appetite. The ISENDER rides the same
// fleet.Member adapter the fleet uses, standalone (immediate wake per
// acknowledgment); the competitor is a real TCP state machine rather
// than another member, so the wiring stays bespoke.
func RunISenderVsTCP(seed int64, duration time.Duration) CoexistResult {
	loop := sim.New(seed)

	states, _ := fleet.Prior(12000, 96000, 2).Enumerate()
	bel := belief.NewExact(states, fleet.DefaultBeliefConfig(2))
	u := utility.Default()
	u.Alpha = 1
	plan := planner.DefaultConfig()
	plan.Util = u

	var is *fleet.Member
	var reno *tcp.Sender
	renoRecv := tcp.NewReceiver(loop, nil)

	isRecv := elements.NewReceiver(loop, func(ack packet.Ack) {
		is.OnAck(ack)
	})
	// TCP segments route to the TCP receiver, the ISENDER's to its own.
	div := elements.NewDiverter(packet.FlowOther, elements.NodeFunc(renoRecv.Receive), isRecv)
	buf, _ := elements.NewBottleneck(loop, 96000, 12000, div)

	renoRecv.OnAck = func(ackNext int64, echoSentAt int64) {
		reno.OnAck(ackNext, time.Duration(echoSentAt))
	}

	is = fleet.NewMember(loop, core.NewSender(bel, plan), packet.FlowSelf, buf)
	reno = tcp.NewSender(loop, buf, packet.FlowOther, tcp.Config{})

	is.Start(0)
	loop.After(0, reno.Start)
	loop.Run(duration)

	half := duration / 2
	res := CoexistResult{
		ARate:   is.AckedSeq.Rate(half, duration),
		BRate:   float64(reno.SndUna()) / duration.Seconds(),
		Drops:   buf.Drops[packet.FlowSelf] + buf.Drops[packet.FlowOther],
		ASeries: is.AckedSeq,
	}
	res.BSeries = stats.Series{Name: "tcp delivered"}
	res.JainIndex = stats.JainIndex([]float64{res.ARate, res.BRate})
	return res
}
