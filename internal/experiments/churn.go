package experiments

import (
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/chaos"
	"modelcc/internal/fleet"
	"modelcc/internal/lifecycle"
	"modelcc/internal/packet"
	"modelcc/internal/stats"
)

// ChurnConfig describes one supervised churn run: a fleet under a
// deterministic arrival/departure/crash schedule with a crash-recovery
// Supervisor restarting the casualties.
type ChurnConfig struct {
	// N is the fleet's configured (and maximum live) size (default 16).
	N int
	// Duration is the run's virtual length (default 120 s).
	Duration time.Duration
	// Seed drives the fleet AND the churn schedule (via the
	// chaos.Sub("churn") stream, so packet-level chaos would stay
	// independent).
	Seed int64
	// Epoch is the churn decision period (default 10 s).
	Epoch time.Duration
	// DepartProb/CrashProb are per live member per epoch; ArriveProb is
	// per open slot per epoch (defaults 0.04 / 0.06 / 0.5).
	DepartProb, CrashProb, ArriveProb float64
	// MinLive floors the population (default max(1, N/4)).
	MinLive int
	// Workers is the rollout pool width (0 = GOMAXPROCS, 1 = serial);
	// the result is bit-identical for any value.
	Workers int
	// FairQueue selects the DRR bottleneck.
	FairQueue bool
	// NoCheckpoints disables the Supervisor's checkpoint timer: every
	// restart is cold (or hot when a compiled table is wired), never
	// warm. The warm-vs-cold benchmark flips this bit.
	NoCheckpoints bool
	// CheckpointDir mirrors checkpoints to disk when set.
	CheckpointDir string
	// Supervisor overrides lifecycle.SupervisorConfig fields; zero
	// values keep that package's defaults.
	Supervisor lifecycle.SupervisorConfig
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.N == 0 {
		c.N = 16
	}
	if c.Duration == 0 {
		c.Duration = 120 * time.Second
	}
	if c.Epoch == 0 {
		c.Epoch = 10 * time.Second
	}
	if c.DepartProb == 0 && c.CrashProb == 0 && c.ArriveProb == 0 {
		c.DepartProb, c.CrashProb, c.ArriveProb = 0.04, 0.06, 0.5
	}
	if c.MinLive == 0 {
		c.MinLive = c.N / 4
		if c.MinLive < 1 {
			c.MinLive = 1
		}
	}
	return c
}

// ChurnResult is one churn run's report.
type ChurnResult struct {
	// Cfg echoes the resolved configuration.
	Cfg ChurnConfig
	// Live is the population at the end of the run; Peak the flow-space
	// high-water mark.
	Live, Peak int
	// Lifecycle counters, straight from the Supervisor.
	Arrivals, Departures, Crashes, Failures int
	ColdRestarts, HotRestarts, WarmRestarts int
	Checkpoints, CheckpointErrors           int
	// OrphanAcks counts retired members' packets that drained after
	// teardown — graceful teardown at work, never a panic.
	OrphanAcks int64
	// Jain is Jain's index over the final-window delivery rates of
	// members live through the whole window.
	Jain float64
	// AggRate is those members' summed delivery rate, packets/s.
	AggRate float64
	// MeanRampUpSec is the mean seconds a restarted generation took to
	// reach 70% of its own steady delivery rate; RampSamples is how
	// many restarted generations lived long enough to measure.
	MeanRampUpSec float64
	RampSamples   int
	// Drops is the bottleneck total across all flows and generations.
	Drops int
	// RestartDropsPerMin is restarted generations' mean bottleneck
	// drops per virtual minute of life — the cost of re-learning. A
	// cold restart probes the link from the prior and pays in drops; a
	// warm restore resumes its converged pacing.
	RestartDropsPerMin float64
	// EarlyRate is restarted generations' mean delivery rate over their
	// first 15 s, packets/s.
	EarlyRate float64
	// RestartSupport15 is restarted generations' mean belief support
	// size over their first 15 s — the warm-vs-cold discriminator.
	// Belief updates and live planning both scale with support, so a
	// warm restore (which resumes its predecessor's converged
	// posterior) re-converges measurably faster and cheaper than a cold
	// start paying down the full prior.
	RestartSupport15 float64
	// UtilityRatio compares restarted members' steady per-second
	// utility (first 20 s after admission excluded) against undisturbed
	// members' second-half per-second utility: 1.0 = full recovery.
	UtilityRatio float64
	// ReplayHash digests per-flow delivery totals, drops and the whole
	// lifecycle event log; equal hashes mean bit-identical runs.
	ReplayHash uint64
	// Delivered is the per-flow all-generations delivery total, in flow
	// order.
	Delivered []int
}

// RunChurn runs one supervised churn simulation. Everything — fleet,
// churn schedule, failures, restarts — lives on one discrete-event
// loop, so the result is a pure function of the config (the Workers
// knob changes wall-clock time only).
func RunChurn(cfg ChurnConfig) ChurnResult {
	cfg = cfg.withDefaults()
	fl := fleet.New(fleet.Config{
		N:         cfg.N,
		Seed:      cfg.Seed,
		Workers:   cfg.Workers,
		FairQueue: cfg.FairQueue,
		// Recover mode: a collapsed posterior re-seeds from the prior
		// (and counts toward the Supervisor's health signal) instead of
		// merely relaxing.
		BeliefCfg: belief.Config{Recover: true},
	})
	supCfg := cfg.Supervisor
	supCfg.Dir = cfg.CheckpointDir
	if cfg.NoCheckpoints {
		supCfg.CheckpointEvery = -1
	}
	sup := lifecycle.NewSupervisor(fl, supCfg)
	adm := lifecycle.NewAdmission(sup, lifecycle.ChurnConfig{
		Epoch:      cfg.Epoch,
		DepartProb: cfg.DepartProb,
		CrashProb:  cfg.CrashProb,
		ArriveProb: cfg.ArriveProb,
		MinLive:    cfg.MinLive,
		MaxLive:    cfg.N,
	}, chaos.Config{Seed: cfg.Seed})
	sup.Start()
	adm.Start()
	fl.Run(cfg.Duration)
	adm.Stop()
	sup.Stop()
	return reduceChurn(cfg, fl, sup)
}

// reduceChurn computes the report from a finished run, reading per-flow
// and per-record data in index order only.
func reduceChurn(cfg ChurnConfig, fl *fleet.Fleet, sup *lifecycle.Supervisor) ChurnResult {
	dur := cfg.Duration
	res := ChurnResult{
		Cfg:              cfg,
		Live:             fl.Live(),
		Peak:             len(fl.Members),
		Arrivals:         sup.Stats.Arrivals,
		Departures:       sup.Stats.Departures,
		Crashes:          sup.Stats.Crashes,
		Failures:         sup.Stats.Failures,
		ColdRestarts:     sup.Stats.ColdRestarts,
		HotRestarts:      sup.Stats.HotRestarts,
		WarmRestarts:     sup.Stats.WarmRestarts,
		Checkpoints:      sup.Stats.Checkpoints,
		CheckpointErrors: sup.Stats.CheckpointErrors,
		OrphanAcks:       fl.OrphanAcks,
		Drops:            fl.Drops(),
	}

	// Fairness over the members that saw the whole final window.
	window := dur / 4
	from := dur - window
	var rates []float64
	for _, m := range fl.Members {
		if m == nil || m.AdmittedAt > from {
			continue
		}
		w := m.AckedSeq.Window(from, dur)
		r := float64(len(w.Pts)) / window.Seconds()
		rates = append(rates, r)
		res.AggRate += r
	}
	res.Jain = stats.JainIndex(rates)

	// Ramp-up and post-restart utility, per restarted generation that
	// lived long enough to measure.
	const (
		rampWindow = 10 * time.Second
		utilGrace  = 20 * time.Second
		rampFrac   = 0.7
	)
	var (
		rampSum   float64
		utilRates []float64
		earlySum  float64
		earlyN    int
		dropSum   float64
		dropN     int
		supSum    float64
		supN      int
	)
	const earlyWindow = 15 * time.Second
	for _, rec := range sup.Records {
		if !rec.Restarted {
			continue
		}
		start := rec.M.AdmittedAt
		end := rec.RetiredAt
		if end < 0 {
			end = dur
		}
		life := end - start
		if life >= earlyWindow {
			ew := rec.M.AckedSeq.Window(start, start+earlyWindow)
			earlySum += float64(len(ew.Pts)) / earlyWindow.Seconds()
			earlyN++
			drops := rec.M.GenDrops
			if rec.RetiredAt < 0 {
				drops = fl.FlowDrops(rec.M.Flow)
			}
			dropSum += float64(drops) / life.Minutes()
			dropN++
			if sw := rec.M.SupportN.Window(start, start+earlyWindow); len(sw.Pts) > 0 {
				var s float64
				for _, p := range sw.Pts {
					s += p.V
				}
				supSum += s / float64(len(sw.Pts))
				supN++
			}
		}
		if life < 3*rampWindow {
			continue
		}
		// The generation's own steady rate: its second half of life.
		steadyFrom := start + life/2
		sw := rec.M.AckedSeq.Window(steadyFrom, end)
		steady := float64(len(sw.Pts)) / (end - steadyFrom).Seconds()
		if steady <= 0 {
			continue
		}
		for t := start; t <= steadyFrom; t += time.Second {
			rw := rec.M.AckedSeq.Window(t, t+rampWindow)
			r := float64(len(rw.Pts)) / rampWindow.Seconds()
			if r >= rampFrac*steady {
				rampSum += (t - start).Seconds()
				res.RampSamples++
				break
			}
		}
		if life > utilGrace+rampWindow {
			u0, _ := rec.M.UtilCum.ValueAt(start + utilGrace)
			u1, _ := rec.M.UtilCum.ValueAt(end)
			utilRates = append(utilRates, (u1-u0)/(end-start-utilGrace).Seconds())
		}
	}
	if res.RampSamples > 0 {
		res.MeanRampUpSec = rampSum / float64(res.RampSamples)
	}
	if earlyN > 0 {
		res.EarlyRate = earlySum / float64(earlyN)
	}
	if dropN > 0 {
		res.RestartDropsPerMin = dropSum / float64(dropN)
	}
	if supN > 0 {
		res.RestartSupport15 = supSum / float64(supN)
	}

	// Baseline: initial members that were never disturbed and are still
	// live — their second-half utility per second.
	var baseSum float64
	var baseN int
	half := dur / 2
	for _, rec := range sup.Records {
		if rec.Restarted || rec.RetiredAt >= 0 || rec.M.Gen != 0 || rec.M.Retired() {
			continue
		}
		u0, _ := rec.M.UtilCum.ValueAt(half)
		u1, _ := rec.M.UtilCum.ValueAt(dur)
		baseSum += (u1 - u0) / half.Seconds()
		baseN++
	}
	if baseN > 0 && len(utilRates) > 0 {
		base := baseSum / float64(baseN)
		var s float64
		for _, r := range utilRates {
			s += r
		}
		if base > 0 {
			res.UtilityRatio = (s / float64(len(utilRates))) / base
		}
	}

	// Replay hash: per-flow totals plus the full lifecycle log.
	h := fnv.New64a()
	put := func(vs ...uint64) {
		var b [8]byte
		for _, v := range vs {
			for i := 0; i < 8; i++ {
				b[i] = byte(v >> (8 * i))
			}
			h.Write(b[:])
		}
	}
	put(uint64(len(fl.Members)), uint64(fl.Live()), uint64(fl.Drops()), uint64(fl.OrphanAcks))
	for i := range fl.Members {
		d := fl.DeliveredTotal(packet.FlowID(i))
		res.Delivered = append(res.Delivered, d)
		put(uint64(i), uint64(d))
	}
	for _, e := range sup.Events {
		put(uint64(e.At), uint64(e.Kind), uint64(e.Flow), uint64(e.Gen), uint64(e.Restart))
	}
	res.ReplayHash = h.Sum64()
	return res
}

// ChurnSweepConfig sweeps RunChurn over fleet sizes.
type ChurnSweepConfig struct {
	// Ns are the fleet sizes (default 4, 16, 64).
	Ns []int
	// Base is the per-run configuration; N is overridden per point.
	Base ChurnConfig
}

// ChurnSweepResult is the whole sweep.
type ChurnSweepResult struct {
	Points []ChurnResult
}

// ChurnSweep runs one supervised churn simulation per fleet size.
func ChurnSweep(cfg ChurnSweepConfig) ChurnSweepResult {
	ns := cfg.Ns
	if len(ns) == 0 {
		ns = []int{4, 16, 64}
	}
	var res ChurnSweepResult
	for _, n := range ns {
		c := cfg.Base
		c.N = n
		res.Points = append(res.Points, RunChurn(c))
	}
	return res
}

// Render prints one line per fleet size: population flux, restart
// ladder usage, and the recovery metrics.
func (r ChurnSweepResult) Render() string {
	var b strings.Builder
	if len(r.Points) > 0 {
		c := r.Points[0].Cfg
		fmt.Fprintf(&b, "Churn sweep: %v virtual, epoch %v, depart/crash/arrive %.2f/%.2f/%.2f, seed %d\n",
			c.Duration, c.Epoch, c.DepartProb, c.CrashProb, c.ArriveProb, c.Seed)
	}
	fmt.Fprintf(&b, "%-6s %6s %6s %6s %6s %6s %14s %8s %10s %8s %8s %8s %10s\n",
		"N", "live", "arr", "dep", "crash", "fail", "cold/hot/warm", "jain", "agg pkt/s", "ramp(s)", "sup15", "util", "orphans")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-6d %6d %6d %6d %6d %6d %4d/%4d/%4d %8.4f %10.3f %8.2f %8.1f %8.3f %10d\n",
			p.Cfg.N, p.Live, p.Arrivals, p.Departures, p.Crashes, p.Failures,
			p.ColdRestarts, p.HotRestarts, p.WarmRestarts,
			p.Jain, p.AggRate, p.MeanRampUpSec, p.RestartSupport15, p.UtilityRatio, p.OrphanAcks)
	}
	return b.String()
}
