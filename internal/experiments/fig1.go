package experiments

import (
	"fmt"
	"strings"
	"time"

	"modelcc/internal/elements"
	"modelcc/internal/emu"
	"modelcc/internal/sim"
	"modelcc/internal/stats"
	"modelcc/internal/tcp"
	"modelcc/internal/trace"
	"modelcc/internal/units"
)

// Fig1Config describes the bufferbloat demonstration: a TCP download
// over a deeply buffered, variable-rate cellular link.
type Fig1Config struct {
	// Variant selects the TCP flavour (default Reno, matching the 2011
	// deployment reality the paper measured).
	Variant tcp.Variant
	// Duration is the run length (the paper's Figure 1 spans 250 s).
	Duration time.Duration
	// BufferBytes is the link's queue capacity; cellular networks of
	// the era buffered multiple megabytes (default 2 MB).
	BufferBytes int
	// BaseRTT is the propagation round trip (default 50 ms).
	BaseRTT time.Duration
	// LTE tunes the synthetic link; zero-value uses DefaultLTE.
	LTE trace.LTEConfig
	// Seed drives the trace generator.
	Seed int64
}

func (c Fig1Config) withDefaults() Fig1Config {
	if c.Duration == 0 {
		c.Duration = 250 * time.Second
	}
	if c.BufferBytes == 0 {
		c.BufferBytes = 2 << 20
	}
	if c.BaseRTT == 0 {
		c.BaseRTT = 50 * time.Millisecond
	}
	if c.LTE.Duration == 0 {
		c.LTE = trace.DefaultLTE(c.Duration + 10*time.Second)
	}
	return c
}

// Fig1Result carries the RTT series the figure plots plus summary
// numbers.
type Fig1Result struct {
	// RTT is per-acknowledgment round-trip time over time — the figure.
	RTT stats.Series
	// MinRTT, MedianRTT, P95RTT, MaxRTT summarize it, in seconds.
	MinRTT, MedianRTT, P95RTT, MaxRTT float64
	// Delivered counts segments that reached the receiver.
	Delivered int64
	// Goodput is in-order delivery rate over the run.
	Goodput units.BitRate
	// MaxQueueBits is the deepest the link buffer got.
	MaxQueueBits int64
	// Timeouts and FastRetransmits count the sender's loss events.
	Timeouts, FastRetransmits int64
}

// RunFig1 reproduces Figure 1's mechanism: the loss-based sender fills
// the deep buffer, so the measured RTT inflates from the ~50 ms
// propagation delay to multiple seconds, collapsing only when a loss
// event empties the window.
func RunFig1(cfg Fig1Config) Fig1Result {
	cfg = cfg.withDefaults()
	loop := sim.New(cfg.Seed)
	tr := trace.GenLTE(cfg.LTE, cfg.Seed)

	var sender *tcp.Sender
	recv := tcp.NewReceiver(loop, nil)
	// Return path: half the base RTT, carried by one reusable delay line
	// instead of a scheduled closure per acknowledgment.
	type ackMsg struct{ ackNext, echoSentAt int64 }
	ackLine := sim.NewDelayLine(loop, cfg.BaseRTT/2, func(m ackMsg) {
		sender.OnAck(m.ackNext, time.Duration(m.echoSentAt))
	})
	recv.OnAck = func(ackNext int64, echoSentAt int64) {
		ackLine.Push(ackMsg{ackNext, echoSentAt})
	}

	link, err := emu.NewTraceLink(loop, tr, units.BytesToBits(cfg.BufferBytes), nil)
	if err != nil {
		// Invariant: GenLTE traces are valid by construction.
		panic(err)
	}
	// Forward path: propagation delay then the trace-driven bottleneck.
	fwd := elements.NewDelay(loop, cfg.BaseRTT/2, link)
	link.SetNext(recv)

	sender = tcp.NewSender(loop, fwd, 0, tcp.Config{Variant: cfg.Variant})
	loop.After(0, sender.Start)
	loop.Run(cfg.Duration)

	res := Fig1Result{
		RTT:             sender.RTT,
		Delivered:       recv.Received,
		MaxQueueBits:    link.MaxQueueBits,
		Timeouts:        sender.Timeouts,
		FastRetransmits: sender.FastRetransmits,
	}
	res.MinRTT = sender.RTT.Min()
	res.MedianRTT = sender.RTT.Percentile(50)
	res.P95RTT = sender.RTT.Percentile(95)
	res.MaxRTT = sender.RTT.Max()
	if cfg.Duration > 0 {
		res.Goodput = units.BitRate(float64(recv.NextExpected()) * 12000 / cfg.Duration.Seconds())
	}
	return res
}

// Render prints the figure (log RTT axis, like the paper) and its
// summary line.
func (r Fig1Result) Render() string {
	var b strings.Builder
	s := r.RTT
	s.Name = "rtt"
	b.WriteString(stats.Plot(stats.PlotConfig{
		Width:  76,
		Height: 22,
		Title:  "Figure 1: round-trip time during a TCP download over an LTE-like link",
		YLabel: "RTT (s, log scale)",
		LogY:   true,
	}, &s))
	fmt.Fprintf(&b, "\nmin=%.3fs median=%.3fs p95=%.3fs max=%.3fs; goodput=%s; timeouts=%d fast-retx=%d\n",
		r.MinRTT, r.MedianRTT, r.P95RTT, r.MaxRTT, r.Goodput, r.Timeouts, r.FastRetransmits)
	return b.String()
}

// Fig1Claims checks the figure's qualitative content: RTT inflation of
// well over an order of magnitude above the propagation delay, with a
// median itself far above it — bufferbloat, not isolated spikes.
func Fig1Claims(r Fig1Result, baseRTT time.Duration) (string, bool) {
	var b strings.Builder
	ok := true
	check := func(pass bool, format string, args ...any) {
		if pass {
			b.WriteString("PASS ")
		} else {
			b.WriteString("FAIL ")
			ok = false
		}
		fmt.Fprintf(&b, format, args...)
		b.WriteByte('\n')
	}
	base := baseRTT.Seconds()
	check(r.MaxRTT > 20*base, "max RTT %.3fs > 20x propagation (%.3fs)", r.MaxRTT, base)
	check(r.MedianRTT > 5*base, "median RTT %.3fs > 5x propagation — sustained, not a spike", r.MedianRTT)
	check(r.MaxRTT > 2, "max RTT %.3fs reaches multi-second territory like the paper's 10s", r.MaxRTT)
	check(r.Delivered > 0, "download made progress (%d segments)", r.Delivered)
	return b.String(), ok
}
