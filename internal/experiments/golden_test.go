package experiments

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// Golden regression tests: the Figure 1 and Figure 3 headline numbers
// are pinned to exact values under fixed seeds, so performance work can
// never silently change results again. The runs are bit-deterministic
// on a given architecture — every quantity below is reproduced exactly,
// not approximately. If a change legitimately alters behaviour (a new
// planning approximation, a model fix), rerun with -v — every failure
// message prints the observed value — update the constants, and say why
// in the commit.
//
// Floating-point outputs pass through math.Exp, whose implementation is
// architecture-specific assembly; the pinned values are amd64's (what CI
// runs). Other architectures skip rather than chase per-arch constants.

func skipUnlessAMD64(t *testing.T) {
	t.Helper()
	if runtime.GOARCH != "amd64" {
		t.Skipf("golden values pinned on amd64; running on %s", runtime.GOARCH)
	}
}

func TestGoldenFig1(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	skipUnlessAMD64(t)
	res := RunFig1(Fig1Config{Duration: 120 * time.Second, Seed: 3})

	if got, want := res.Delivered, int64(17975); got != want {
		t.Errorf("Fig1 delivered = %d, want %d", got, want)
	}
	if got, want := res.Timeouts, int64(2); got != want {
		t.Errorf("Fig1 timeouts = %d, want %d", got, want)
	}
	if got, want := res.FastRetransmits, int64(0); got != want {
		t.Errorf("Fig1 fast retransmits = %d, want %d", got, want)
	}
	if got, want := res.MaxQueueBits, int64(1848000); got != want {
		t.Errorf("Fig1 max queue bits = %d, want %d", got, want)
	}
	for name, pair := range map[string][2]string{
		"min rtt":    {fmt.Sprintf("%.9g", res.MinRTT), "0.051825597"},
		"median rtt": {fmt.Sprintf("%.9g", res.MedianRTT), "0.443168633"},
		"max rtt":    {fmt.Sprintf("%.9g", res.MaxRTT), "3.14096411"},
	} {
		if pair[0] != pair[1] {
			t.Errorf("Fig1 %s = %s, want %s", name, pair[0], pair[1])
		}
	}
}

func TestGoldenFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	skipUnlessAMD64(t)
	want := map[float64]struct {
		sent, acked int64
		ownDrops    int
		crossDrops  int
		utility     string
	}{
		0.9: {59, 44, 0, 7, "471581.597"},
		1:   {50, 40, 0, 0, "444496.097"},
		2.5: {44, 35, 0, 0, "408338.076"},
		5:   {41, 33, 0, 0, "386141.272"},
	}
	for _, alpha := range Fig3Alphas {
		res := RunISender(Fig3Config(alpha, 42, 120*time.Second))
		w := want[alpha]
		if res.Sent != w.sent || res.Acked != w.acked {
			t.Errorf("Fig3 α=%g: sent/acked = %d/%d, want %d/%d",
				alpha, res.Sent, res.Acked, w.sent, w.acked)
		}
		if res.OwnBufferDrops != w.ownDrops || res.CrossBufferDrops != w.crossDrops {
			t.Errorf("Fig3 α=%g: drops = %d/%d, want %d/%d",
				alpha, res.OwnBufferDrops, res.CrossBufferDrops, w.ownDrops, w.crossDrops)
		}
		if got := fmt.Sprintf("%.9g", res.Utility); got != w.utility {
			t.Errorf("Fig3 α=%g: utility = %s, want %s", alpha, got, w.utility)
		}
	}
}
