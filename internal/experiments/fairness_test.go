package experiments

import (
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestFairnessSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	res := FairnessSweep(FairnessConfig{
		Ns:       []int{2, 4, 16},
		Duration: 60 * time.Second,
		Seed:     7,
	})
	t.Logf("\n%s", res.Render())
	if len(res.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Jain <= 0 || p.Jain > 1+1e-9 {
			t.Errorf("N=%d: Jain index %v outside (0, 1]", p.N, p.Jain)
		}
		if len(p.PerFlow) != p.N {
			t.Errorf("N=%d: %d per-flow entries", p.N, len(p.PerFlow))
		}
		if p.AggRate <= 0 {
			t.Errorf("N=%d: fleet delivered nothing", p.N)
		}
		// The fleet must actually use the link it shares: at least half
		// of capacity after convergence.
		if p.AggRate < 0.5*p.LinkPkts {
			t.Errorf("N=%d: aggregate %0.3f pkt/s far below link %0.3f pkt/s", p.N, p.AggRate, p.LinkPkts)
		}
	}
	// The two-sender fleet splits evenly (it is the coexistence
	// experiment); capture effects are tolerated only at larger N.
	if res.Points[0].Jain < 0.7 {
		t.Errorf("N=2 Jain %0.3f: grossly unfair split", res.Points[0].Jain)
	}
	if !strings.Contains(res.Render(), "jain") {
		t.Error("render missing header")
	}
}

// TestFairnessSweepFairQueue: DRR restores fairness that FIFO capture
// destroys at scale — the headline comparison of the sweep.
func TestFairnessSweepFairQueue(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	cfg := FairnessConfig{Ns: []int{16}, Duration: 60 * time.Second, Seed: 7}
	fifo := FairnessSweep(cfg)
	cfg.FairQueue = true
	drr := FairnessSweep(cfg)
	t.Logf("FIFO Jain=%.4f DRR Jain=%.4f", fifo.Points[0].Jain, drr.Points[0].Jain)
	if drr.Points[0].Jain < 0.8 {
		t.Errorf("DRR Jain %0.3f, want near-even split", drr.Points[0].Jain)
	}
	if drr.Points[0].Jain < fifo.Points[0].Jain-0.05 {
		t.Errorf("DRR (%0.3f) should not be less fair than FIFO (%0.3f)",
			drr.Points[0].Jain, fifo.Points[0].Jain)
	}
}

// TestFairnessSweepWorkerDeterminism is the acceptance criterion: a
// 256-sender fairness sweep on the shared rollout pool produces
// bit-identical output for Workers=1 and Workers=GOMAXPROCS (and an
// oversubscribed width, which exercises goroutine sharding even on a
// single-core host).
func TestFairnessSweepWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	run := func(workers int) []FairnessPoint {
		return FairnessSweep(FairnessConfig{
			Ns:       []int{256},
			Duration: 20 * time.Second,
			Seed:     3,
			Workers:  workers,
		}).Points
	}
	serial := run(1)
	if serial[0].N != 256 {
		t.Fatalf("N = %d, want 256", serial[0].N)
	}
	if serial[0].Jain <= 0 || serial[0].Jain > 1+1e-9 {
		t.Fatalf("Jain = %v outside (0, 1]", serial[0].Jain)
	}
	for _, w := range []int{runtime.GOMAXPROCS(0), 5} {
		if got := run(w); !reflect.DeepEqual(serial, got) {
			t.Errorf("workers=%d: fairness sweep diverged from serial run", w)
		}
	}
}

// TestFairnessSweepShardDeterminism: the sharded runtime feeds the same
// reduction and produces bit-identical sweep output at every shard
// count. (Sharded runs use canonical scheduling and a striped cache, so
// they are compared against each other; single-loop-vs-sharded identity
// under the matching explicit config is pinned in internal/shard.)
func TestFairnessSweepShardDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	run := func(shards int) []FairnessPoint {
		return FairnessSweep(FairnessConfig{
			Ns:       []int{8},
			Duration: 30 * time.Second,
			Seed:     11,
			Workers:  1,
			Shards:   shards,
		}).Points
	}
	base := run(1)
	if got := run(4); !reflect.DeepEqual(base, got) {
		t.Errorf("shards=4: fairness sweep diverged from shards=1")
	}
}

// TestFairnessSweepLeanStats: the lean path keeps no per-packet series
// yet still reports sane rates and a tail percentile.
func TestFairnessSweepLeanStats(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	res := FairnessSweep(FairnessConfig{
		Ns:        []int{4},
		Duration:  60 * time.Second,
		Seed:      7,
		Workers:   1,
		LeanStats: true,
	})
	p := res.Points[0]
	if p.AggRate <= 0 {
		t.Fatalf("lean sweep delivered nothing")
	}
	if p.AggRate < 0.5*p.LinkPkts {
		t.Errorf("lean aggregate %0.3f pkt/s far below link %0.3f pkt/s", p.AggRate, p.LinkPkts)
	}
	for _, fs := range p.PerFlow {
		if fs.P99Delay <= 0 {
			t.Errorf("flow %d: missing P99 delay in lean mode", fs.Flow)
		}
		if fs.P99Delay+1e-9 < fs.MeanDelay {
			t.Errorf("flow %d: P99 %0.4f below mean %0.4f", fs.Flow, fs.P99Delay, fs.MeanDelay)
		}
	}
}
