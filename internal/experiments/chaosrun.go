package experiments

import (
	"hash/fnv"
	"math/rand"
	"sort"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/chaos"
	"modelcc/internal/core"
	"modelcc/internal/model"
	"modelcc/internal/packet"
	"modelcc/internal/units"
)

// ChaosConfig is one ISENDER run with a deterministic fault schedule
// layered between the sender and the ground truth — the DES twin of
// running transport.Sender through a chaotic emu.Proxy. The same
// chaos.Config drives both worlds; here every fault lands at an exact
// virtual instant, so the whole run (faults included) replays
// bit-identically from the seed.
type ChaosConfig struct {
	// Base is the underlying experiment; its BeliefCfg should set
	// Recover (a chaotic path produces observations no hypothesis
	// explains, and the default config deliberately panics on those).
	Base ISenderConfig
	// Faults is the fault schedule. Data packets draw from the config's
	// seed, acknowledgments from Sub("ack"), and both share the absolute
	// blackout windows.
	Faults chaos.Config
	// AckFaults, when enabled, replaces the derived acknowledgment
	// schedule — the DES twin of emu.ProxyConfig.AckChaos, for asymmetric
	// menus like heavy ack-loss bursts over a clean-ish forward path.
	AckFaults chaos.Config
}

// TimedUtil is one acknowledged delivery's realized utility, timestamped
// so harnesses can window it (e.g. post-blackout recovery ratios).
type TimedUtil struct {
	At   time.Duration
	Util float64
}

// ChaosResult extends ISenderResult with the fault tallies and a replay
// hash over every externally visible event.
type ChaosResult struct {
	ISenderResult
	// Hash is FNV-1a over the run's send and acknowledgment streams; two
	// runs of the same ChaosConfig must produce equal hashes (the
	// determinism acceptance check).
	Hash uint64
	// Reseeded counts belief collapse recoveries over the run.
	Reseeded int
	// Deliveries are the per-ack realized utilities in arrival order.
	Deliveries []TimedUtil
	// DataStats/AckStats are the injectors' tallies per direction.
	DataStats, AckStats chaos.Stats
}

// delayedAck is an acknowledgment in flight past its natural arrival
// (chaos reordering): it surfaces at at, stamped with its original
// receive time.
type delayedAck struct {
	at  time.Duration
	ack packet.Ack
}

// RunChaos executes one ISENDER run with fault injection between sender
// and truth. Data-path faults are drops only (blackouts, bursts, i.i.d.
// loss — a corrupted or reordered data packet on a real path is dropped
// or re-timed by the proxy before the model sees it); the ack path
// additionally duplicates and delays, and a delayed ack keeps its
// original receive stamp — exactly the stale-observation shape that
// triggers likelihood collapse and exercises Recover.
func RunChaos(cfg ChaosConfig) ChaosResult {
	base := cfg.Base.withDefaults()
	rng := rand.New(rand.NewSource(base.Seed))
	truth := model.NewTruth(base.Actual, base.PingerOnStart, base.Gate, base.HalfPeriod, rng)

	states, _ := base.Prior.Enumerate()
	var b belief.Belief
	if base.UseParticle {
		n := base.Particles
		if n <= 0 {
			n = 4 * len(states)
		}
		b = belief.NewParticle(states, n, base.BeliefCfg, rand.New(rand.NewSource(base.Seed+1)))
	} else {
		b = belief.NewExact(states, base.BeliefCfg)
	}
	sender := core.NewSender(b, base.Plan)

	var dataInj, ackInj *chaos.Injector
	if cfg.Faults.Enabled() {
		dataInj = chaos.New(cfg.Faults)
		ackInj = chaos.New(cfg.Faults.Sub("ack"))
	}
	if cfg.AckFaults.Enabled() {
		ackInj = chaos.New(cfg.AckFaults)
	}

	var res ChaosResult
	res.AckedSeq.Name = "acked"
	res.SentSeq.Name = "sent"
	res.PPingerOn.Name = "P(pinger on)"
	res.SupportSize.Name = "hypotheses"

	h := fnv.New64a()
	var hb [8]byte
	put := func(vs ...uint64) {
		for _, v := range vs {
			hb[0] = byte(v)
			hb[1] = byte(v >> 8)
			hb[2] = byte(v >> 16)
			hb[3] = byte(v >> 24)
			hb[4] = byte(v >> 32)
			hb[5] = byte(v >> 40)
			hb[6] = byte(v >> 48)
			hb[7] = byte(v >> 56)
			h.Write(hb[:])
		}
	}

	now := time.Duration(0)
	var pendingInject []model.Send
	var inFlight []delayedAck // sorted by at

	// admitSends filters the sender's new injections through the
	// data-path injector and hashes the survivors.
	admitSends := func(sends []model.Send) {
		for _, snd := range sends {
			res.SentSeq.Add(snd.At, float64(snd.Seq))
			if dataInj != nil {
				// A corrupted datagram fails wire decode on arrival, so
				// on the DES path Corrupt degenerates to Drop.
				if v := dataInj.Next(snd.At); v.Drop || v.Corrupt {
					continue
				}
			}
			put(1, uint64(snd.Seq), uint64(snd.At))
			pendingInject = append(pendingInject, snd)
		}
	}
	// admitAck runs one fresh acknowledgment through the ack-path
	// injector; survivors land in out now or join the in-flight heap.
	admitAck := func(a packet.Ack, out []packet.Ack) []packet.Ack {
		if ackInj == nil {
			return append(out, a)
		}
		v := ackInj.Next(a.ReceivedAt)
		if v.Drop || v.Corrupt {
			return out
		}
		n := 1
		if v.Duplicate {
			n = 2
		}
		for ; n > 0; n-- {
			if v.Delay > 0 {
				inFlight = append(inFlight, delayedAck{at: a.ReceivedAt + v.Delay, ack: a})
				continue
			}
			out = append(out, a)
		}
		sort.SliceStable(inFlight, func(i, j int) bool { return inFlight[i].at < inFlight[j].at })
		return out
	}

	act := sender.Wake(now, nil)
	admitSends(act.Sends)
	wakeAt := act.WakeAt
	sampleEstimates := func() {
		e := sender.Estimates()
		res.PPingerOn.Add(now, e.PPingerOn)
		res.SupportSize.Add(now, float64(e.N))
	}
	sampleEstimates()

	for now < base.Duration {
		next := base.Duration
		if wakeAt > now && wakeAt < next {
			next = wakeAt
		}
		if tn := truth.NextTransition(); tn > now && tn < next {
			next = tn
		}
		if len(inFlight) > 0 && inFlight[0].at > now && inFlight[0].at < next {
			next = inFlight[0].at
		}
		evs := truth.AdvanceTo(next, pendingInject)
		pendingInject = pendingInject[:0]
		now = next

		var acks []packet.Ack
		for _, ev := range evs {
			if ev.Kind != model.OwnDelivered {
				continue
			}
			res.AckedSeq.Add(ev.At, float64(ev.Seq))
			u := float64(ev.Bits) * base.Utility.Discount(ev.Delay)
			res.Utility += u
			res.Deliveries = append(res.Deliveries, TimedUtil{At: ev.At, Util: u})
			acks = admitAck(packet.Ack{Flow: packet.FlowSelf, Seq: ev.Seq, ReceivedAt: ev.At}, acks)
		}
		// Reordered acks surfacing now, original stamps intact.
		for len(inFlight) > 0 && inFlight[0].at <= now {
			acks = append(acks, inFlight[0].ack)
			inFlight = inFlight[1:]
		}
		for _, a := range acks {
			put(2, uint64(a.Seq), uint64(a.ReceivedAt))
		}

		if len(acks) > 0 || now >= wakeAt {
			act = sender.Wake(now, acks)
			admitSends(act.Sends)
			if act.WakeAt <= now {
				act.WakeAt = now + 10*time.Millisecond
			}
			wakeAt = act.WakeAt
			sampleEstimates()
		}
	}

	res.Sent = sender.Sent
	res.Acked = sender.Acked
	res.Wakes = sender.Wakes
	res.OwnBufferDrops = truth.OwnBufferDropN
	res.CrossBufferDrops = truth.CrossBufferDropN
	res.CrossDelivered = truth.CrossDeliveredN
	if base.Duration > 0 {
		res.OwnThroughput = units.BitRate(float64(res.Acked) * float64(base.Actual.PktBits()) / base.Duration.Seconds())
	}
	if ex, ok := b.(*belief.Exact); ok {
		res.UpdateCum = ex.Cum
		res.Reseeded = ex.Cum.Reseeded
	}
	if dataInj != nil {
		res.DataStats = dataInj.Stats
	}
	if ackInj != nil {
		res.AckStats = ackInj.Stats
	}
	res.Hash = h.Sum64()
	return res
}

// UtilityIn sums the realized utility of deliveries in [from, to).
func (r *ChaosResult) UtilityIn(from, to time.Duration) float64 {
	var u float64
	for _, d := range r.Deliveries {
		if d.At >= from && d.At < to {
			u += d.Util
		}
	}
	return u
}
