package experiments

import (
	"fmt"
	"strings"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/chaos"
	"modelcc/internal/fleet"
	"modelcc/internal/lifecycle"
	"modelcc/internal/packet"
	"modelcc/internal/shard"
)

// ShardChurnConfig describes one sharded churn run: a fleet under the
// barrier-aligned lifecycle on K parallel partitions.
type ShardChurnConfig struct {
	// N is the fleet's slot count (and MaxLive default).
	N int
	// Shards requests the partition count (resolved by
	// shard.ResolveShards; 0 means one per CPU).
	Shards int
	// Duration is the virtual run length (default 120 s).
	Duration time.Duration
	// Seed drives both the simulation and the churn schedule.
	Seed int64
	// Epoch, DepartProb, CrashProb, ArriveProb are the churn schedule
	// knobs, defaulted like ChurnConfig's.
	Epoch                             time.Duration
	DepartProb, CrashProb, ArriveProb float64
	// MinLive floors the live population (default N/4).
	MinLive int
	// FairQueue selects the DRR bottleneck.
	FairQueue bool
	// Workers is the TOTAL rollout width, split across shards.
	Workers int
	// LeanStats drops per-packet series retention.
	LeanStats bool
	// NoChurn disables the churn lifecycle (pure shard-fault runs).
	NoChurn bool
	// Checkpoints arms barrier-time checkpointing — the warm rung of
	// the restart ladder for both churn restarts and shard failovers.
	// CheckpointEvery and CheckpointDir mirror shard.CheckpointConfig;
	// a non-empty dir implies Checkpoints.
	Checkpoints     bool
	CheckpointEvery time.Duration
	CheckpointDir   string
	// ShardKillProb and ShardStallProb arm the deterministic
	// shard-fault schedule (shard.FaultConfig) when positive, with
	// FaultEpoch and MaxStall defaulted by the shard runtime.
	ShardKillProb, ShardStallProb float64
	FaultEpoch, MaxStall          time.Duration
	// WindowBudget arms the wall-clock watchdog. Nondeterministic —
	// leave zero when the replay hash matters.
	WindowBudget time.Duration
}

func (c ShardChurnConfig) withDefaults() ShardChurnConfig {
	if c.N == 0 {
		c.N = 16
	}
	if c.Duration == 0 {
		c.Duration = 120 * time.Second
	}
	if c.Epoch == 0 {
		c.Epoch = 10 * time.Second
	}
	if c.DepartProb == 0 {
		c.DepartProb = 0.04
	}
	if c.CrashProb == 0 {
		c.CrashProb = 0.06
	}
	if c.ArriveProb == 0 {
		c.ArriveProb = 0.5
	}
	if c.MinLive == 0 {
		c.MinLive = c.N / 4
	}
	return c
}

// ShardChurnResult is one sharded churn run's reduction.
type ShardChurnResult struct {
	// Cfg echoes the resolved configuration; Shards is the resolved
	// partition count actually used.
	Cfg ShardChurnConfig
	// Stats aggregates lifecycle outcomes (crashes, departures,
	// arrivals, failures, cold restarts).
	Stats lifecycle.Stats
	// Events is the length of the lifecycle event log.
	Events int
	// Live is the final live-member count; Slots the flow-space size.
	Live, Slots int
	// Delivered totals packets received across every flow and
	// generation; Drops counts bottleneck discards.
	Delivered, Drops int
	// OrphanAcks counts acknowledgments that arrived after their
	// sender's generation retired.
	OrphanAcks int64
	// ReplayHash digests delivery totals, drops and the event log; it
	// is bit-identical for every shard count at fixed (N, Seed, knobs) —
	// the determinism invariant CI holds the sharded runtime to.
	ReplayHash uint64
	// Failover aggregates shard-fault outcomes (zero without faults).
	Failover shard.FailoverStats
	// DegradedServed totals decisions served through the Guard
	// degradation ladder while stalled or watchdogged.
	DegradedServed int64
	// FailoverRecovered counts fault-restored generations that absorbed
	// at least one delivery; MTTR is their mean virtual time from kill
	// barrier to that first delivery.
	FailoverRecovered int
	MTTR              time.Duration
	// PostFailoverUtility is the mean final utility across fault-
	// restored generations (NaN-free: zero when none were restored).
	PostFailoverUtility float64
}

// RunShardChurn drives one sharded fleet under the barrier-aligned
// churn lifecycle and reduces it.
func RunShardChurn(cfg ShardChurnConfig) ShardChurnResult {
	cfg = cfg.withDefaults()
	fc := fleet.Config{
		N:         cfg.N,
		Seed:      cfg.Seed,
		FairQueue: cfg.FairQueue,
		Workers:   cfg.Workers,
		LeanStats: cfg.LeanStats,
		BeliefCfg: belief.Config{Recover: true},
	}
	if cfg.LeanStats {
		fc.LeanRateFrom = cfg.Duration / 2
	}
	sf := shard.New(shard.Config{Fleet: fc, Shards: cfg.Shards})
	if cfg.Checkpoints || cfg.CheckpointDir != "" {
		sf.EnableCheckpoints(shard.CheckpointConfig{Every: cfg.CheckpointEvery, Dir: cfg.CheckpointDir})
	}
	if cfg.ShardKillProb > 0 || cfg.ShardStallProb > 0 {
		sf.EnableFaults(shard.FaultConfig{
			Epoch:     cfg.FaultEpoch,
			KillProb:  cfg.ShardKillProb,
			StallProb: cfg.ShardStallProb,
			MaxStall:  cfg.MaxStall,
		}, chaos.Config{Seed: cfg.Seed})
	}
	if cfg.WindowBudget > 0 {
		sf.EnableWatchdog(shard.WatchdogConfig{WindowBudget: cfg.WindowBudget})
	}
	if !cfg.NoChurn {
		sf.EnableChurn(lifecycle.ChurnConfig{
			Epoch:      cfg.Epoch,
			DepartProb: cfg.DepartProb,
			CrashProb:  cfg.CrashProb,
			ArriveProb: cfg.ArriveProb,
			MinLive:    cfg.MinLive,
			MaxLive:    cfg.N,
		}, lifecycle.SupervisorConfig{}, chaos.Config{Seed: cfg.Seed})
	}
	sf.Run(cfg.Duration)

	cfg.Shards = sf.K
	res := ShardChurnResult{
		Cfg:        cfg,
		Stats:      sf.Stats,
		Events:     len(sf.Events),
		Live:       sf.Live(),
		Slots:      sf.Slots(),
		Drops:      sf.Drops(),
		OrphanAcks: sf.OrphanAcks,
		ReplayHash: sf.ReplayHash(),
	}
	for i := 0; i < sf.Slots(); i++ {
		res.Delivered += sf.DeliveredTotal(packet.FlowID(i))
	}
	res.Failover = sf.Failover
	res.DegradedServed = sf.DegradedServed()
	var mttrSum time.Duration
	var utilSum float64
	for _, r := range sf.Records {
		utilSum += r.M.Utility
		if r.RecoveredAt > r.At {
			res.FailoverRecovered++
			mttrSum += r.RecoveredAt - r.At
		}
	}
	if res.FailoverRecovered > 0 {
		res.MTTR = mttrSum / time.Duration(res.FailoverRecovered)
	}
	if len(sf.Records) > 0 {
		res.PostFailoverUtility = utilSum / float64(len(sf.Records))
	}
	return res
}

// Render prints one line per run for the CLI.
func RenderShardChurn(points []ShardChurnResult) string {
	var b strings.Builder
	b.WriteString("Sharded churn (barrier-aligned lifecycle; hash is shard-count invariant)\n")
	fmt.Fprintf(&b, "%-6s %7s %10s %7s %7s %7s %7s %8s %7s %9s %16s\n",
		"N", "shards", "delivered", "drops", "crash", "depart", "arrive", "restart", "live", "orphans", "replay hash")
	for _, p := range points {
		restarts := p.Stats.ColdRestarts + p.Stats.HotRestarts + p.Stats.WarmRestarts
		fmt.Fprintf(&b, "%-6d %7d %10d %7d %7d %7d %7d %8d %7d %9d %016x\n",
			p.Cfg.N, p.Cfg.Shards, p.Delivered, p.Drops,
			p.Stats.Crashes, p.Stats.Departures, p.Stats.Arrivals, restarts,
			p.Live, p.OrphanAcks, p.ReplayHash)
	}
	for _, p := range points {
		if p.Failover.ShardKills == 0 && p.Failover.Stalls == 0 && p.Failover.WatchdogTrips == 0 {
			continue
		}
		fo := p.Failover
		fmt.Fprintf(&b, "shards=%d faults: kills=%d failedOver=%d (warm=%d hot=%d cold=%d) fencedAcks=%d stalls=%d wdTrips=%d degraded=%d recovered=%d mttr=%v postUtil=%.3f\n",
			p.Cfg.Shards, fo.ShardKills, fo.FlowsFailedOver,
			fo.WarmFailovers, fo.HotFailovers, fo.ColdFailovers,
			fo.FencedAcks, fo.Stalls, fo.WatchdogTrips,
			p.DegradedServed, p.FailoverRecovered, p.MTTR, p.PostFailoverUtility)
	}
	return b.String()
}
