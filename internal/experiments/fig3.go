package experiments

import (
	"fmt"
	"strings"
	"time"

	"modelcc/internal/model"
	"modelcc/internal/stats"
	"modelcc/internal/utility"
)

// Fig3Alphas are the cross-traffic priorities the paper plots in
// Figure 3.
var Fig3Alphas = []float64{0.9, 1.0, 2.5, 5}

// Fig3Config builds the paper's Figure 3 run for one α: the Figure 2
// topology with its true parameters, the §4 prior, a square-wave gate
// the sender believes to be memoryless, and the α-weighted utility.
func Fig3Config(alpha float64, seed int64, duration time.Duration) ISenderConfig {
	u := utility.Default()
	u.Alpha = alpha
	return ISenderConfig{
		Actual:        model.Fig2Actual(),
		PingerOnStart: true,
		Gate:          model.GateSquareWave,
		HalfPeriod:    100 * time.Second,
		Prior:         model.Fig3Prior(),
		Utility:       u,
		Duration:      duration,
		Seed:          seed,
	}
}

// Fig3Result bundles the per-α runs.
type Fig3Result struct {
	// Alphas echoes the α values, in run order.
	Alphas []float64
	// Runs holds the per-α results.
	Runs []ISenderResult
}

// RunFig3 reproduces Figure 3: one run per α over the same ground truth
// seed, so the cross traffic toggles identically across curves.
func RunFig3(seed int64, duration time.Duration, alphas ...float64) Fig3Result {
	if len(alphas) == 0 {
		alphas = Fig3Alphas
	}
	var out Fig3Result
	for _, a := range alphas {
		out.Alphas = append(out.Alphas, a)
		out.Runs = append(out.Runs, RunISender(Fig3Config(a, seed, duration)))
	}
	return out
}

// Render prints the figure as sequence-number-vs-time curves plus the
// summary table the analysis text of §4 makes claims about.
func (r Fig3Result) Render() string {
	var b strings.Builder
	var series []*stats.Series
	for i := range r.Runs {
		s := r.Runs[i].AckedSeq
		s.Name = fmt.Sprintf("α=%g", r.Alphas[i])
		series = append(series, &s)
	}
	b.WriteString(stats.Plot(stats.PlotConfig{
		Width:  76,
		Height: 24,
		Title:  "Figure 3: sequence number vs time (cross traffic on 0-100s, off 100-200s, on 200-300s)",
		YLabel: "acked seq",
	}, series...))
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %12s %14s %14s\n",
		"alpha", "sent", "acked", "own drops", "cross drops", "goodput(b/s)")
	for i, run := range r.Runs {
		fmt.Fprintf(&b, "%-8g %10d %10d %12d %14d %14.1f\n",
			r.Alphas[i], run.Sent, run.Acked, run.OwnBufferDrops, run.CrossBufferDrops, float64(run.OwnThroughput))
	}
	return b.String()
}

// Fig3Claims checks the paper's qualitative claims against a result and
// returns a report; every line is prefixed PASS or FAIL. The claims, from
// §4:
//
//  1. "Irrespective of α, the sender starts out slowly when it is
//     uncertain of the channel parameters."
//  2. "During the period that the cross traffic is not sending, the
//     ISENDER always sends at the exact link speed."
//  3. "When α > 1, the sender becomes more and more deferential to the
//     cross traffic" — goodput during contention decreases with α.
//  4. "Except for the case when α < 1, the ISENDER never causes a buffer
//     overflow."
func Fig3Claims(r Fig3Result) (report string, ok bool) {
	var b strings.Builder
	ok = true
	check := func(pass bool, format string, args ...any) {
		if pass {
			b.WriteString("PASS ")
		} else {
			b.WriteString("FAIL ")
			ok = false
		}
		fmt.Fprintf(&b, format, args...)
		b.WriteByte('\n')
	}

	idx := map[float64]int{}
	for i, a := range r.Alphas {
		idx[a] = i
	}

	// Claim 1: early rate well below final rate for every α.
	for i, run := range r.Runs {
		early := run.AckedSeq.Rate(0, 20*time.Second)
		quiet := run.AckedSeq.Rate(120*time.Second, 195*time.Second)
		check(early < quiet || quiet == 0,
			"claim 1 (α=%g): early rate %.3f pkt/s < quiet-period rate %.3f pkt/s", r.Alphas[i], early, quiet)
	}

	// Claim 2: during 100-200 s (cross off) acked-seq slope approaches
	// the link speed, 1 pkt/s (measured after the sender has had time
	// to notice the gate opened).
	for i, run := range r.Runs {
		rate := run.AckedSeq.Rate(140*time.Second, 195*time.Second)
		check(rate > 0.6 && rate < 1.15,
			"claim 2 (α=%g): quiet-period delivery rate %.3f pkt/s ≈ 0.8 pkt/s (link speed × (1-p))", r.Alphas[i], rate)
	}

	// Claim 3: goodput while competing (0-100 s) ordered by α.
	if len(r.Alphas) >= 2 {
		prevRate := -1.0
		for i := len(r.Alphas) - 1; i >= 0; i-- {
			rate := r.Runs[i].AckedSeq.Rate(30*time.Second, 95*time.Second)
			check(rate >= prevRate-0.05,
				"claim 3: contention rate %.3f pkt/s at α=%g not lower than at larger α", rate, r.Alphas[i])
			prevRate = rate
		}
	}

	// Claim 4: no buffer overflows for α >= 1. At exactly α = 1 the
	// gain from a delivered own packet and the loss from the cross
	// packet it displaces balance exactly, so residual posterior
	// uncertainty about the gate (P(on) never reaches 1 against a
	// square wave the model believes is memoryless) can tip isolated
	// decisions; we therefore allow at most one drop per run at the
	// boundary and require strictly zero above it. EXPERIMENTS.md
	// discusses this knife-edge.
	for i, run := range r.Runs {
		drops := run.OwnBufferDrops + run.CrossBufferDrops
		switch {
		case r.Alphas[i] > 1:
			check(drops == 0, "claim 4 (α=%g): buffer drops = %d, want 0", r.Alphas[i], drops)
		case r.Alphas[i] == 1:
			check(drops <= 1, "claim 4 (α=1, knife-edge): buffer drops = %d, want <= 1", drops)
		default:
			check(true, "claim 4 (α=%g): %d drops (flooding allowed below 1)", r.Alphas[i], drops)
		}
	}

	return b.String(), ok
}
