package experiments

import (
	"time"

	"modelcc/internal/model"
	"modelcc/internal/stats"
	"modelcc/internal/utility"
)

// SimpleConfig builds the §4 "simple configuration" run: a single
// ISENDER connected to a queue drained by a throughput-limited link, no
// cross traffic, no loss. The paper: "It begins tentatively if it is not
// sure of the link speed and initial buffer occupancy. Once it has
// inferred those parameters, it simply sends at the link speed from
// there on out."
func SimpleConfig(seed int64, duration time.Duration) ISenderConfig {
	actual := model.Params{
		LinkRate:      12000,
		BufferCapBits: 96000,
	}
	prior := model.Prior{
		LinkRate:      model.PriorRange{Lo: 8000, Hi: 20000, N: 13},
		BufferCapBits: model.PriorRange{Lo: 72000, Hi: 108000, N: 4},
		FullnessSteps: 4,
	}
	return ISenderConfig{
		Actual:   actual,
		Gate:     model.GateFixed,
		Prior:    prior,
		Utility:  utility.Default(),
		Duration: duration,
		Seed:     seed,
	}
}

// SimpleResult summarizes the convergence run.
type SimpleResult struct {
	// Run is the underlying run.
	Run ISenderResult
	// EarlyRate and LateRate are the sending rates (packets/second)
	// over the first fifth and the last half of the run.
	EarlyRate, LateRate float64
	// ConvergedToLinkSpeed reports whether the late-run sending rate is
	// within 5% of the link speed.
	ConvergedToLinkSpeed bool
}

// RunSimple executes the simple-configuration experiment.
func RunSimple(seed int64, duration time.Duration) SimpleResult {
	cfg := SimpleConfig(seed, duration)
	run := RunISender(cfg)
	fifth := duration / 5
	res := SimpleResult{
		Run:       run,
		EarlyRate: run.SentSeq.Rate(0, fifth),
		LateRate:  run.SentSeq.Rate(duration/2, duration),
	}
	res.ConvergedToLinkSpeed = res.LateRate > 0.95 && res.LateRate < 1.05
	return res
}

// DrainConfig builds the §4 drain-first run: "If cross traffic is
// present and the utility function penalizes induced latency to other
// traffic, then the ISENDER drains the buffer before sending at the link
// speed." The buffer starts half full of cross-traffic backlog; light
// cross traffic keeps trickling in.
func DrainConfig(seed int64, duration time.Duration, penalty float64) ISenderConfig {
	actual := model.Params{
		LinkRate:  12000,
		CrossRate: 6000, // half the link: delay-sensitive traffic a
		// queued packet genuinely delays
		MeanSwitch:    0, // always on
		BufferCapBits: 96000,
		InitFullBits:  48000,
	}
	prior := model.Prior{
		LinkRate:      model.PriorRange{Lo: 10000, Hi: 16000, N: 4},
		CrossFrac:     model.PriorRange{Lo: 0.5, Hi: 0.5, N: 1},
		BufferCapBits: model.PriorRange{Lo: 96000, Hi: 96000, N: 1},
		FullnessSteps: 5, // 0, 24000, 48000, 72000, 96000
	}
	u := utility.Default()
	u.CrossLatencyPenalty = penalty
	return ISenderConfig{
		Actual:        actual,
		PingerOnStart: true,
		Gate:          model.GateFixed,
		Prior:         prior,
		Utility:       u,
		Duration:      duration,
		Seed:          seed,
	}
}

// DrainResult compares a latency-penalized run against an unpenalized
// one on the same half-full buffer.
type DrainResult struct {
	// Penalized and Unpenalized are the two runs.
	Penalized, Unpenalized ISenderResult
	// PenalizedFirstSend and UnpenalizedFirstSend are when each sender
	// first used the link.
	PenalizedFirstSend, UnpenalizedFirstSend time.Duration
}

// RunDrain executes the drain-first experiment.
func RunDrain(seed int64, duration time.Duration) DrainResult {
	pen := RunISender(DrainConfig(seed, duration, 1.2))
	unpen := RunISender(DrainConfig(seed, duration, 0))
	return DrainResult{
		Penalized:            pen,
		Unpenalized:          unpen,
		PenalizedFirstSend:   firstSendTime(pen.SentSeq),
		UnpenalizedFirstSend: firstSendTime(unpen.SentSeq),
	}
}

func firstSendTime(s stats.Series) time.Duration {
	if len(s.Pts) == 0 {
		return -1
	}
	return s.Pts[0].T
}
