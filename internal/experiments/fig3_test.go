package experiments

import (
	"testing"
	"time"
)

// TestFig3Qualitative runs the Figure 3 experiment with a reduced prior
// and checks the paper's qualitative claims. The full-prior version is
// the BenchmarkFig3 harness; this keeps CI fast while exercising the
// identical pipeline.
func TestFig3Qualitative(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	alphas := []float64{0.9, 1.0, 2.5, 5}
	res := Fig3Result{}
	for _, a := range alphas {
		cfg := tinyConfig(a, 300*time.Second)
		res.Alphas = append(res.Alphas, a)
		res.Runs = append(res.Runs, RunISender(cfg))
	}
	report, ok := Fig3Claims(res)
	t.Logf("\n%s", report)
	for i, run := range res.Runs {
		t.Logf("α=%g: sent=%d acked=%d contention-rate=%.3f quiet-rate=%.3f drops=%d/%d",
			alphas[i], run.Sent, run.Acked,
			run.AckedSeq.Rate(30*time.Second, 95*time.Second),
			run.AckedSeq.Rate(140*time.Second, 195*time.Second),
			run.OwnBufferDrops, run.CrossBufferDrops)
	}
	if !ok {
		t.Error("Figure 3 qualitative claims failed (see report)")
	}
}
