// Package wire defines the UDP datagram encoding for the real-socket
// transport: fixed-size binary headers, explicit version and type bytes,
// and strict decode validation. Data packets are padded to the uniform
// packet size the model assumes (§3.2), so a wire packet and a model
// packet cost the same on the emulated link.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic identifies the protocol; Version gates compatibility.
const (
	Magic   = 0x4d43 // "MC"
	Version = 1
)

// Packet types.
const (
	// TypeData carries one sender packet.
	TypeData = 0x01
	// TypeAck conveys the receiver's (seq, receive time) notification
	// (§3.4).
	TypeAck = 0x02
)

// Header layout (big endian):
//
//	offset size field
//	0      2    magic
//	2      1    version
//	3      1    type
//	4      8    seq
//	12     8    timestamp A (data: sender send time; ack: echoed send time)
//	20     8    timestamp B (ack: receiver receive time; data: zero)
//	28     4    payload length (data only; ack: zero)
//	32     -    payload / padding
const HeaderLen = 32

// Data is a sender-to-receiver packet.
type Data struct {
	// Seq is the packet's sequence number.
	Seq int64
	// SentNanos is the sender-clock send time (nanoseconds since the
	// connection epoch).
	SentNanos int64
	// Payload is the application data (may be empty; the transport
	// pads the datagram to the uniform size).
	Payload []byte
}

// Ack is the receiver-to-sender notification.
type Ack struct {
	// Seq echoes the data packet's sequence number.
	Seq int64
	// EchoSentNanos echoes Data.SentNanos.
	EchoSentNanos int64
	// ReceivedNanos is the receiver-clock arrival time (nanoseconds
	// since the connection epoch).
	ReceivedNanos int64
}

// Decode errors.
var (
	ErrShort   = errors.New("wire: datagram too short")
	ErrMagic   = errors.New("wire: bad magic")
	ErrVersion = errors.New("wire: unsupported version")
	ErrType    = errors.New("wire: unknown packet type")
	ErrLength  = errors.New("wire: payload length mismatch")
)

func putHeader(b []byte, typ byte, seq, tsA, tsB int64, payloadLen int) {
	binary.BigEndian.PutUint16(b[0:2], Magic)
	b[2] = Version
	b[3] = typ
	binary.BigEndian.PutUint64(b[4:12], uint64(seq))
	binary.BigEndian.PutUint64(b[12:20], uint64(tsA))
	binary.BigEndian.PutUint64(b[20:28], uint64(tsB))
	binary.BigEndian.PutUint32(b[28:32], uint32(payloadLen))
}

// EncodeData marshals a data packet into buf (which must hold
// HeaderLen+len(Payload)+padding bytes) padded to padTo, returning the
// datagram slice. padTo <= HeaderLen+len(Payload) means no padding.
func EncodeData(buf []byte, d Data, padTo int) ([]byte, error) {
	n := HeaderLen + len(d.Payload)
	if padTo > n {
		n = padTo
	}
	if len(buf) < n {
		return nil, fmt.Errorf("wire: buffer too small: %d < %d", len(buf), n)
	}
	putHeader(buf, TypeData, d.Seq, d.SentNanos, 0, len(d.Payload))
	copy(buf[HeaderLen:], d.Payload)
	for i := HeaderLen + len(d.Payload); i < n; i++ {
		buf[i] = 0
	}
	return buf[:n], nil
}

// EncodeAck marshals an acknowledgment into buf.
func EncodeAck(buf []byte, a Ack) ([]byte, error) {
	if len(buf) < HeaderLen {
		return nil, fmt.Errorf("wire: buffer too small: %d < %d", len(buf), HeaderLen)
	}
	putHeader(buf, TypeAck, a.Seq, a.EchoSentNanos, a.ReceivedNanos, 0)
	return buf[:HeaderLen], nil
}

// Decode parses a datagram, returning exactly one of data or ack.
func Decode(b []byte) (typ byte, data Data, ack Ack, err error) {
	if len(b) < HeaderLen {
		return 0, data, ack, ErrShort
	}
	if binary.BigEndian.Uint16(b[0:2]) != Magic {
		return 0, data, ack, ErrMagic
	}
	if b[2] != Version {
		return 0, data, ack, ErrVersion
	}
	typ = b[3]
	seq := int64(binary.BigEndian.Uint64(b[4:12]))
	tsA := int64(binary.BigEndian.Uint64(b[12:20]))
	tsB := int64(binary.BigEndian.Uint64(b[20:28]))
	plen := int(binary.BigEndian.Uint32(b[28:32]))
	switch typ {
	case TypeData:
		// plen is attacker-controlled: compare against the remaining
		// bytes without forming HeaderLen+plen, which can overflow (and
		// on 32-bit ints go negative, turning the slice below into a
		// panic).
		if plen < 0 || plen > len(b)-HeaderLen {
			return 0, data, ack, ErrLength
		}
		data = Data{Seq: seq, SentNanos: tsA, Payload: b[HeaderLen : HeaderLen+plen]}
		return typ, data, ack, nil
	case TypeAck:
		ack = Ack{Seq: seq, EchoSentNanos: tsA, ReceivedNanos: tsB}
		return typ, data, ack, nil
	default:
		return 0, data, ack, ErrType
	}
}
