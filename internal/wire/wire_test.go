package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestDataRoundTrip(t *testing.T) {
	buf := make([]byte, 1500)
	d := Data{Seq: 42, SentNanos: 123456789, Payload: []byte("hello")}
	dg, err := EncodeData(buf, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	typ, got, _, err := Decode(dg)
	if err != nil || typ != TypeData {
		t.Fatalf("decode: %v type %d", err, typ)
	}
	if got.Seq != d.Seq || got.SentNanos != d.SentNanos || !bytes.Equal(got.Payload, d.Payload) {
		t.Errorf("round trip: %+v != %+v", got, d)
	}
}

func TestDataPadding(t *testing.T) {
	buf := make([]byte, 1500)
	d := Data{Seq: 1, Payload: []byte("x")}
	dg, err := EncodeData(buf, d, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(dg) != 1500 {
		t.Fatalf("padded datagram = %d bytes, want 1500", len(dg))
	}
	_, got, _, err := Decode(dg)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "x" {
		t.Errorf("payload = %q (padding leaked in?)", got.Payload)
	}
}

func TestAckRoundTrip(t *testing.T) {
	buf := make([]byte, 64)
	a := Ack{Seq: 7, EchoSentNanos: 111, ReceivedNanos: 222}
	dg, err := EncodeAck(buf, a)
	if err != nil {
		t.Fatal(err)
	}
	typ, _, got, err := Decode(dg)
	if err != nil || typ != TypeAck {
		t.Fatalf("decode: %v type %d", err, typ)
	}
	if got != a {
		t.Errorf("round trip: %+v != %+v", got, a)
	}
}

func TestRoundTripProperty(t *testing.T) {
	buf := make([]byte, 4096)
	f := func(seq, sent int64, payload []byte) bool {
		if len(payload) > 2048 {
			payload = payload[:2048]
		}
		dg, err := EncodeData(buf, Data{Seq: seq, SentNanos: sent, Payload: payload}, 0)
		if err != nil {
			return false
		}
		typ, got, _, err := Decode(dg)
		return err == nil && typ == TypeData && got.Seq == seq &&
			got.SentNanos == sent && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejects(t *testing.T) {
	buf := make([]byte, 64)
	dg, _ := EncodeAck(buf, Ack{Seq: 1})

	short := dg[:10]
	if _, _, _, err := Decode(short); err != ErrShort {
		t.Errorf("short: %v", err)
	}

	bad := append([]byte(nil), dg...)
	bad[0] = 0xFF
	if _, _, _, err := Decode(bad); err != ErrMagic {
		t.Errorf("magic: %v", err)
	}

	badV := append([]byte(nil), dg...)
	badV[2] = 99
	if _, _, _, err := Decode(badV); err != ErrVersion {
		t.Errorf("version: %v", err)
	}

	badT := append([]byte(nil), dg...)
	badT[3] = 0x7F
	if _, _, _, err := Decode(badT); err != ErrType {
		t.Errorf("type: %v", err)
	}

	// Data header claiming more payload than the datagram carries.
	data := make([]byte, 1500)
	dd, _ := EncodeData(data, Data{Seq: 1, Payload: []byte("abcd")}, 0)
	trunc := dd[:HeaderLen+2]
	if _, _, _, err := Decode(trunc); err != ErrLength {
		t.Errorf("length: %v", err)
	}
}

func TestEncodeBufferTooSmall(t *testing.T) {
	if _, err := EncodeData(make([]byte, 8), Data{}, 0); err == nil {
		t.Error("EncodeData into tiny buffer succeeded")
	}
	if _, err := EncodeAck(make([]byte, 8), Ack{}); err == nil {
		t.Error("EncodeAck into tiny buffer succeeded")
	}
}
