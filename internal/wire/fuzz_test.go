package wire

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecode hammers the decoder with arbitrary datagrams — the exact
// input a chaotic path (or a hostile peer) delivers. Required
// properties: never panic, never read past the datagram, classify every
// failure as one of the typed decode errors, and round-trip anything it
// accepts. The checked-in seed corpus (testdata/fuzz/FuzzDecode) pins
// the interesting boundaries: truncated headers, a payload length of
// 0xFFFFFFFF, off-by-one truncations.
func FuzzDecode(f *testing.F) {
	var buf [2048]byte
	if dg, err := EncodeData(buf[:], Data{Seq: 7, SentNanos: 12345, Payload: []byte("hello")}, 64); err == nil {
		f.Add(append([]byte(nil), dg...))
	}
	if dg, err := EncodeAck(buf[:], Ack{Seq: 9, EchoSentNanos: 1, ReceivedNanos: 2}); err == nil {
		f.Add(append([]byte(nil), dg...))
	}
	f.Add([]byte{})
	f.Add([]byte{0x4d, 0x43, 1, 1})

	f.Fuzz(func(t *testing.T, b []byte) {
		typ, data, ack, err := Decode(b)
		if err != nil {
			if !errors.Is(err, ErrShort) && !errors.Is(err, ErrMagic) &&
				!errors.Is(err, ErrVersion) && !errors.Is(err, ErrType) &&
				!errors.Is(err, ErrLength) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		switch typ {
		case TypeData:
			// The payload must alias the input, never extend past it.
			if len(data.Payload) > len(b)-HeaderLen {
				t.Fatalf("payload %d bytes from a %d-byte datagram", len(data.Payload), len(b))
			}
			enc := make([]byte, HeaderLen+len(data.Payload))
			dg, err := EncodeData(enc, data, 0)
			if err != nil {
				t.Fatalf("re-encode of accepted data: %v", err)
			}
			typ2, data2, _, err := Decode(dg)
			if err != nil || typ2 != TypeData {
				t.Fatalf("re-decode: typ=%v err=%v", typ2, err)
			}
			if data2.Seq != data.Seq || data2.SentNanos != data.SentNanos || !bytes.Equal(data2.Payload, data.Payload) {
				t.Fatal("data round-trip mismatch")
			}
		case TypeAck:
			enc := make([]byte, HeaderLen)
			dg, err := EncodeAck(enc, ack)
			if err != nil {
				t.Fatalf("re-encode of accepted ack: %v", err)
			}
			typ2, _, ack2, err := Decode(dg)
			if err != nil || typ2 != TypeAck || ack2 != ack {
				t.Fatalf("ack round-trip mismatch: typ=%v err=%v", typ2, err)
			}
		default:
			t.Fatalf("Decode accepted unknown type %#x", typ)
		}
	})
}
