package shard

import (
	"sort"
	"time"

	"modelcc/internal/chaos"
	"modelcc/internal/fleet"
	"modelcc/internal/lifecycle"
	"modelcc/internal/packet"
)

// Barrier-aligned lifecycle: the sharded analog of
// lifecycle.Supervisor + lifecycle.Admission. Every action — epoch
// draws, crash-kills, health checks, restarts — executes at coupling-
// window barriers, in ascending flow order, with due times snapped up
// to the Δ grid. Because Δ, the draw stream, the membership history
// and the barrier grid are all independent of the shard count, the
// lifecycle log and replay hash are bit-identical for every K. They
// are NOT identical to the single-loop Supervisor's (which kills
// mid-window at exact drawn instants); restarts walk the same
// hot→warm→cold ladder when EnableCheckpoints is armed — warm from
// the flow's latest barrier checkpoint — and stay cold (hot under a
// compiled table) otherwise. Checkpoint availability is driven purely
// by virtual time, so the ladder rung chosen is itself K-invariant.

type pendingKill struct {
	at   time.Duration
	flow packet.FlowID
}

type pendingRestart struct {
	due  time.Duration
	flow packet.FlowID
}

type churnFlow struct {
	attempts    int
	reserved    bool
	lastReseeds int
}

type churnState struct {
	cfg lifecycle.ChurnConfig
	sup lifecycle.SupervisorConfig
	src *chaos.Source

	nextEpoch  time.Duration
	nextHealth time.Duration
	kills      []pendingKill
	restarts   []pendingRestart
	flows      []churnFlow
}

func (c *churnState) flow(idx int) *churnFlow {
	for idx >= len(c.flows) {
		c.flows = append(c.flows, churnFlow{})
	}
	return &c.flows[idx]
}

// nextDue reports the earliest lifecycle instant, bounding the
// coordinator's idle skip so no barrier with due work is jumped over.
func (c *churnState) nextDue() (time.Duration, bool) {
	best, ok := c.nextEpoch, true
	if c.nextHealth < best {
		best = c.nextHealth
	}
	for _, k := range c.kills {
		if k.at < best {
			best = k.at
		}
	}
	for _, r := range c.restarts {
		if r.due < best {
			best = r.due
		}
	}
	return best, ok
}

// EnableChurn arms the barrier-aligned churn lifecycle. Call before
// Run. Zero-valued fields take the same defaults as the single-loop
// lifecycle package.
func (sf *Fleet) EnableChurn(cc lifecycle.ChurnConfig, sup lifecycle.SupervisorConfig, ch chaos.Config) {
	if cc.Epoch <= 0 {
		cc.Epoch = 10 * time.Second
	}
	if cc.MinLive <= 0 {
		cc.MinLive = 1
	}
	if cc.MaxLive <= 0 {
		cc.MaxLive = sf.Cfg.N
	}
	if sup.Interval <= 0 {
		sup.Interval = 2 * time.Second
	}
	if sup.MaxReseeds == 0 {
		sup.MaxReseeds = 2
	}
	if sup.MaxOverruns == 0 {
		sup.MaxOverruns = 8
	}
	if sup.BackoffBase <= 0 {
		sup.BackoffBase = 500 * time.Millisecond
	}
	if sup.BackoffCap <= 0 {
		sup.BackoffCap = 16 * time.Second
	}
	if sup.DrainPoll <= 0 {
		sup.DrainPoll = 250 * time.Millisecond
	}
	sf.churn = &churnState{
		cfg:        cc,
		sup:        sup,
		src:        ch.Sub("churn").Source(),
		nextEpoch:  cc.Epoch,
		nextHealth: sup.Interval,
	}
}

// lifecycleBarrier executes every due lifecycle action at barrier time
// sf.now, in a fixed order: crash-kills, restarts, health checks,
// epoch draws.
func (sf *Fleet) lifecycleBarrier() {
	c := sf.churn
	b := sf.now

	// 1. Crash-kills whose drawn instant has been reached, in (at,
	// flow) order.
	if len(c.kills) > 0 {
		sort.Slice(c.kills, func(i, j int) bool {
			if c.kills[i].at != c.kills[j].at {
				return c.kills[i].at < c.kills[j].at
			}
			return c.kills[i].flow < c.kills[j].flow
		})
		rest := c.kills[:0]
		for _, k := range c.kills {
			if k.at > b {
				rest = append(rest, k)
				continue
			}
			sf.kill(k.flow)
		}
		c.kills = rest
	}

	// 2. Due restarts, in (due, flow) order. A restart whose flow is
	// still draining re-queues at the drain-poll interval.
	if len(c.restarts) > 0 {
		sort.Slice(c.restarts, func(i, j int) bool {
			if c.restarts[i].due != c.restarts[j].due {
				return c.restarts[i].due < c.restarts[j].due
			}
			return c.restarts[i].flow < c.restarts[j].flow
		})
		rest := c.restarts[:0]
		for _, r := range c.restarts {
			if r.due > b {
				rest = append(rest, r)
				continue
			}
			if again, ok := sf.tryRestart(r.flow); ok {
				rest = append(rest, pendingRestart{due: again, flow: r.flow})
			}
		}
		c.restarts = rest
	}

	// 3. Health sweep, in flow order.
	if b >= c.nextHealth {
		for i := 0; i < sf.slots; i++ {
			flow := packet.FlowID(i)
			m := sf.MemberAt(flow)
			if m == nil {
				continue
			}
			fs := c.flow(i)
			reseeds := beliefReseeds(m)
			failed := c.sup.MaxReseeds > 0 && reseeds-fs.lastReseeds >= c.sup.MaxReseeds
			if g := m.Sender.Guard; !failed && g != nil && c.sup.MaxOverruns > 0 {
				failed = g.ConsecutiveOverruns >= c.sup.MaxOverruns
			}
			if failed {
				sf.failMember(flow)
				continue
			}
			fs.lastReseeds = reseeds
			if fs.attempts > 0 && b-m.AdmittedAt >= 2*c.sup.Interval {
				fs.attempts = 0
			}
		}
		c.nextHealth = b + c.sup.Interval
	}

	// 4. Epoch draws: one uniform per live member in flow order, then
	// one per open slot — the same draw discipline as the single-loop
	// Admission, so the schedule is a pure function of the seed and
	// the (K-invariant) population history.
	if b >= c.nextEpoch {
		live := sf.Live()
		leaving, departing := 0, 0
		for i := 0; i < sf.slots; i++ {
			flow := packet.FlowID(i)
			if sf.MemberAt(flow) == nil {
				continue
			}
			u := c.src.Float64()
			canLeave := live-leaving > c.cfg.MinLive
			switch {
			case u < c.cfg.CrashProb:
				if !canLeave {
					continue
				}
				frac := c.src.Float64()
				at := b + time.Duration(frac*float64(c.cfg.Epoch))
				c.kills = append(c.kills, pendingKill{at: at, flow: flow})
				leaving++
			case u < c.cfg.CrashProb+c.cfg.DepartProb:
				if !canLeave {
					continue
				}
				sf.depart(flow)
				leaving++
				departing++
			}
		}
		occupied := (live - departing) + sf.reservedCount()
		for open := c.cfg.MaxLive - occupied; open > 0; open-- {
			if c.src.Float64() < c.cfg.ArriveProb {
				sf.admitNew()
			}
		}
		c.nextEpoch = b + c.cfg.Epoch
	}
}

func (sf *Fleet) reservedCount() int {
	n := 0
	for i := range sf.churn.flows {
		if sf.churn.flows[i].reserved {
			n++
		}
	}
	return n
}

// kill crash-kills the flow's member and schedules its restart.
func (sf *Fleet) kill(flow packet.FlowID) {
	m := sf.retire(flow)
	if m == nil {
		return
	}
	sf.Stats.Crashes++
	sf.Events = append(sf.Events, lifecycle.Event{At: sf.now, Kind: lifecycle.EventCrash, Flow: flow, Gen: m.Gen})
	sf.scheduleRestart(flow)
}

// failMember declares the flow failed on health grounds.
func (sf *Fleet) failMember(flow packet.FlowID) {
	m := sf.retire(flow)
	if m == nil {
		return
	}
	sf.Stats.Failures++
	sf.Events = append(sf.Events, lifecycle.Event{At: sf.now, Kind: lifecycle.EventFail, Flow: flow, Gen: m.Gen})
	sf.scheduleRestart(flow)
}

// depart retires the flow permanently.
func (sf *Fleet) depart(flow packet.FlowID) {
	m := sf.retire(flow)
	if m == nil {
		return
	}
	fs := sf.churn.flow(int(flow))
	fs.attempts = 0
	if sf.ckpt != nil {
		// A departure is permanent: its checkpoint must never warm a
		// future unrelated occupant of the recycled flow ID.
		delete(sf.ckpt.last, flow)
	}
	sf.Stats.Departures++
	sf.Events = append(sf.Events, lifecycle.Event{At: sf.now, Kind: lifecycle.EventDepart, Flow: flow, Gen: m.Gen})
}

// scheduleRestart reserves the flow and queues the backoff-delayed
// attempt (lifecycle.Supervisor's backoff, barrier-snapped at
// execution time).
func (sf *Fleet) scheduleRestart(flow packet.FlowID) {
	c := sf.churn
	fs := c.flow(int(flow))
	shift := fs.attempts
	if shift > 30 {
		shift = 30
	}
	delay := c.sup.BackoffBase << shift
	if delay > c.sup.BackoffCap || delay <= 0 {
		delay = c.sup.BackoffCap
	}
	fs.attempts++
	fs.reserved = true
	c.restarts = append(c.restarts, pendingRestart{due: sf.now + delay, flow: flow})
}

// tryRestart performs or re-defers one due restart. It returns
// (againAt, true) when the flow is still draining and the attempt must
// re-queue. The restart walks the lifecycle ladder: warm from the
// flow's latest barrier checkpoint when checkpointing is armed, else
// hot when a compiled table serves, else cold — the same rungs the
// single-loop Supervisor chooses from. No fencing is needed on this
// path: the drain wait above guarantees nothing of the predecessor is
// in flight when the successor attaches.
func (sf *Fleet) tryRestart(flow packet.FlowID) (time.Duration, bool) {
	c := sf.churn
	fs := c.flow(int(flow))
	if sf.MemberAt(flow) != nil {
		fs.reserved = false
		return 0, false
	}
	if sf.InFlight(flow) > 0 {
		return sf.now + c.sup.DrainPoll, true
	}
	part := sf.owner(flow)
	gen := part.NextGen(flow)
	offset := fleet.StaggerOffsetFor(sf.Cfg.Stagger, flow, gen)
	kind := lifecycle.RestartCold
	var m *fleet.Member
	if sf.ckpt != nil {
		if ck := sf.ckpt.last[flow]; ck != nil {
			s, err := lifecycle.RestoreSender(part, ck, sf.priorHash)
			if err != nil {
				sf.Stats.CheckpointErrors++
				delete(sf.ckpt.last, flow)
			} else {
				m = sf.admitSender(flow, s, offset)
				lifecycle.RestoreGuard(m, ck)
				kind = lifecycle.RestartWarm
			}
		}
	}
	if m == nil {
		m = sf.admit(flow, offset)
		if sf.Cfg.Table != nil {
			kind = lifecycle.RestartHot
		}
	}
	fs.reserved = false
	fs.lastReseeds = beliefReseeds(m)
	switch kind {
	case lifecycle.RestartWarm:
		sf.Stats.WarmRestarts++
	case lifecycle.RestartHot:
		sf.Stats.HotRestarts++
	default:
		sf.Stats.ColdRestarts++
	}
	sf.Events = append(sf.Events, lifecycle.Event{
		At: sf.now, Kind: lifecycle.EventRestart, Flow: flow, Gen: m.Gen,
		Restart: kind, Attempt: fs.attempts,
	})
	return 0, false
}

// admitNew starts a brand-new member on the lowest safe flow.
func (sf *Fleet) admitNew() *fleet.Member {
	c := sf.churn
	flow := packet.FlowID(sf.slots)
	for i := 0; i < sf.slots; i++ {
		f := packet.FlowID(i)
		if sf.MemberAt(f) == nil && !c.flow(i).reserved && sf.InFlight(f) == 0 {
			flow = f
			break
		}
	}
	gen := sf.owner(flow).NextGen(flow)
	m := sf.admit(flow, fleet.StaggerOffsetFor(sf.Cfg.Stagger, flow, gen))
	fs := c.flow(int(flow))
	fs.attempts = 0
	fs.lastReseeds = beliefReseeds(m)
	sf.Stats.Arrivals++
	sf.Events = append(sf.Events, lifecycle.Event{At: sf.now, Kind: lifecycle.EventAdmit, Flow: flow, Gen: m.Gen})
	return m
}

// ReplayHash digests per-flow delivery totals, drops and the lifecycle
// event log — the same byte shape as the single-loop churn hash, so
// equal hashes mean bit-identical sharded runs.
func (sf *Fleet) ReplayHash() uint64 {
	h := fnvHasher()
	h.put(uint64(sf.slots), uint64(sf.Live()), uint64(sf.Drops()), uint64(sf.OrphanAcks))
	for i := 0; i < sf.slots; i++ {
		h.put(uint64(i), uint64(sf.DeliveredTotal(packet.FlowID(i))))
	}
	for _, e := range sf.Events {
		h.put(uint64(e.At), uint64(e.Kind), uint64(e.Flow), uint64(e.Gen), uint64(e.Restart))
	}
	return h.sum()
}
