package shard

import (
	"testing"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/chaos"
	"modelcc/internal/fleet"
	"modelcc/internal/lifecycle"
	"modelcc/internal/packet"
)

// faultFleet builds a sharded fleet with the deterministic kill/stall
// schedule armed, and barrier checkpoints when ckpt is set (warm
// failovers; without them every failover is cold).
func faultFleet(t *testing.T, n, k int, seed int64, ckpt bool) *Fleet {
	t.Helper()
	sf := New(Config{
		Fleet:  fleet.Config{N: n, Seed: seed, Workers: 1, BeliefCfg: belief.Config{Recover: true}},
		Shards: k,
	})
	if sf.K != k {
		t.Fatalf("requested %d shards, got %d", k, sf.K)
	}
	if ckpt {
		sf.EnableCheckpoints(CheckpointConfig{Every: 2 * time.Second})
	}
	sf.EnableFaults(FaultConfig{
		Epoch: 5 * time.Second, KillProb: 0.3, StallProb: 0.25, MaxStall: time.Second,
	}, chaos.Config{Seed: seed})
	return sf
}

// checkFaultRun asserts the fault machinery was actually exercised and
// that failover never merged generations' accounting: for every live
// member, the fenced Delivered count equals the acknowledgments the
// member itself absorbed (Delay.N) — a predecessor's in-flight
// deliveries leaking past a fence would break the equality.
func checkFaultRun(t *testing.T, sf *Fleet, k int) {
	t.Helper()
	fo := sf.Failover
	if fo.ShardKills == 0 || fo.FlowsFailedOver == 0 {
		t.Fatalf("shards=%d: fault schedule not exercising (kills=%d flowsFailedOver=%d)",
			k, fo.ShardKills, fo.FlowsFailedOver)
	}
	if fo.Stalls == 0 {
		t.Errorf("shards=%d: no stalls entered", k)
	}
	if sf.DegradedServed() == 0 {
		t.Errorf("shards=%d: no decisions served degraded during stalls", k)
	}
	if len(sf.Records) != fo.FlowsFailedOver {
		t.Errorf("shards=%d: %d restore records for %d failovers", k, len(sf.Records), fo.FlowsFailedOver)
	}
	for _, r := range sf.Records {
		// Zero is legal (re-killed, churned away, starved, or the run
		// ended); a nonzero recovery can only happen after the failover.
		if r.RecoveredAt != 0 && r.RecoveredAt <= r.At {
			t.Errorf("shards=%d: record %d/%d recovered at %v, before its failover at %v",
				k, r.Flow, r.Gen, r.RecoveredAt, r.At)
		}
	}
	for i := 0; i < sf.Slots(); i++ {
		flow := packet.FlowID(i)
		m := sf.MemberAt(flow)
		if m == nil {
			continue
		}
		if d := sf.Delivered(flow); int64(d) != m.Delay.N {
			t.Errorf("shards=%d flow %d: fenced Delivered=%d but member absorbed %d acks — generations merged",
				k, i, d, m.Delay.N)
		}
		if sf.FlowDrops(flow) < 0 {
			t.Errorf("shards=%d flow %d: negative fenced drops %d", k, i, sf.FlowDrops(flow))
		}
	}
}

// TestFaultHashInvariantAcrossShards: with shard kills and stalls
// injected from a fixed seed, the replay hash — and every failover
// counter — is bit-identical for shards ∈ {1, 2, 4, 8}.
func TestFaultHashInvariantAcrossShards(t *testing.T) {
	n, seed, dur := 16, int64(23), 20*time.Second
	ref := faultFleet(t, n, 1, seed, true)
	ref.Run(dur)
	checkFaultRun(t, ref, 1)
	if ref.Failover.WarmFailovers == 0 {
		t.Errorf("no warm failovers despite armed checkpoints (%+v)", ref.Failover)
	}
	// Warm restores resume the dead generation's ack-clocked state, so
	// at least some must absorb deliveries again even under persistent
	// congestion (where a cold restart, with no ack clock, starves).
	recovered := 0
	for _, r := range ref.Records {
		if r.RecoveredAt > r.At {
			recovered++
		}
	}
	if recovered == 0 {
		t.Error("no warm-restored generation ever absorbed a delivery")
	}
	want := ref.ReplayHash()
	for _, k := range []int{2, 4, 8} {
		sf := faultFleet(t, n, k, seed, true)
		sf.Run(dur)
		checkFaultRun(t, sf, k)
		if got := sf.ReplayHash(); got != want {
			t.Errorf("shards=%d fault hash %016x, want %016x (shards=1)", k, got, want)
		}
		if sf.Failover != ref.Failover {
			t.Errorf("shards=%d failover stats %+v, want %+v (shards=1)", k, sf.Failover, ref.Failover)
		}
		if sf.DegradedServed() != ref.DegradedServed() {
			t.Errorf("shards=%d degraded served %d, want %d (shards=1)",
				k, sf.DegradedServed(), ref.DegradedServed())
		}
		for i := range sf.Records {
			a, b := sf.Records[i], ref.Records[i]
			if a.Flow != b.Flow || a.Gen != b.Gen || a.At != b.At ||
				a.RecoveredAt != b.RecoveredAt || a.Kind != b.Kind {
				t.Errorf("shards=%d restore record %d = %+v, want %+v (shards=1)", k, i, a, b)
				break
			}
		}
	}
}

// TestColdFailoverFencesInFlight: without checkpoints every failover
// is cold and its fence covers the dead generation's whole lifetime,
// so any packet in flight at the kill barrier must be swallowed at the
// peek instead of reaching the fresh member — and the swallow must
// keep the fenced accounting exact. Fence behavior is part of the
// replay, so the hash invariance is asserted here too.
func TestColdFailoverFencesInFlight(t *testing.T) {
	n, seed, dur := 16, int64(23), 20*time.Second
	ref := faultFleet(t, n, 1, seed, false)
	ref.Run(dur)
	checkFaultRun(t, ref, 1)
	if ref.Failover.ColdFailovers != ref.Failover.FlowsFailedOver {
		t.Errorf("checkpointless failovers not all cold: %+v", ref.Failover)
	}
	if ref.Failover.FencedAcks == 0 {
		t.Error("no deliveries fenced — killed generations' in-flight sends not exercised")
	}
	want := ref.ReplayHash()
	for _, k := range []int{2, 4} {
		sf := faultFleet(t, n, k, seed, false)
		sf.Run(dur)
		if got := sf.ReplayHash(); got != want {
			t.Errorf("shards=%d cold-failover hash %016x, want %016x (shards=1)", k, got, want)
		}
		if sf.Failover != ref.Failover {
			t.Errorf("shards=%d failover stats %+v, want %+v (shards=1)", k, sf.Failover, ref.Failover)
		}
	}
}

// TestFaultWithChurnHashInvariant layers all three lifecycle subsystems
// — churn, checkpoints, and shard faults — and asserts the composition
// stays bit-identical across shard counts. With checkpoints armed the
// churn path's restarts walk the warm rung too (not only failovers), so
// warm restarts must outnumber warm failovers.
func TestFaultWithChurnHashInvariant(t *testing.T) {
	n, seed, dur := 16, int64(99), 30*time.Second
	run := func(k int) *Fleet {
		sf := faultFleet(t, n, k, seed, true)
		sf.EnableChurn(lifecycle.ChurnConfig{
			DepartProb: 0.04, CrashProb: 0.06, ArriveProb: 0.5,
			MinLive: n / 4,
		}, lifecycle.SupervisorConfig{}, chaos.Config{Seed: seed})
		sf.Run(dur)
		return sf
	}
	ref := run(1)
	if ref.Stats.Crashes == 0 || ref.Failover.ShardKills == 0 {
		t.Fatalf("composition not exercising: crashes=%d shardKills=%d",
			ref.Stats.Crashes, ref.Failover.ShardKills)
	}
	if ref.Stats.WarmRestarts <= ref.Failover.WarmFailovers {
		t.Errorf("churn path produced no warm restarts: total warm=%d, failover warm=%d",
			ref.Stats.WarmRestarts, ref.Failover.WarmFailovers)
	}
	want := ref.ReplayHash()
	for _, k := range []int{2, 4} {
		sf := run(k)
		if got := sf.ReplayHash(); got != want {
			t.Errorf("shards=%d churn+fault hash %016x, want %016x (shards=1)", k, got, want)
		}
		if sf.Failover != ref.Failover {
			t.Errorf("shards=%d failover stats %+v, want %+v (shards=1)", k, sf.Failover, ref.Failover)
		}
	}
}

// TestWatchdogDegradesOverrunningShard: a wall-clock budget no real
// window can meet trips on every shard, and the affected members serve
// their decisions through the degradation ladder.
func TestWatchdogDegradesOverrunningShard(t *testing.T) {
	sf := New(Config{Fleet: fleet.Config{N: 8, Seed: 11, Workers: 1}, Shards: 2})
	sf.EnableWatchdog(WatchdogConfig{WindowBudget: time.Nanosecond})
	sf.Run(4 * time.Second)
	if sf.Failover.WatchdogTrips == 0 {
		t.Fatal("1ns window budget never tripped the watchdog")
	}
	if sf.DegradedServed() == 0 {
		t.Fatal("watchdogged members served no degraded decisions")
	}
}

// TestWatchdogQuiescentIsResultNeutral: arming the watchdog with a
// budget that never trips must not perturb results — the timing
// instrumentation is observation only.
func TestWatchdogQuiescentIsResultNeutral(t *testing.T) {
	cfg := fleet.Config{N: 8, Seed: 5, Workers: 1}
	plain := New(Config{Fleet: cfg, Shards: 2})
	plain.Run(10 * time.Second)
	wd := New(Config{Fleet: cfg, Shards: 2})
	wd.EnableWatchdog(WatchdogConfig{WindowBudget: time.Hour})
	wd.Run(10 * time.Second)
	if wd.Failover.WatchdogTrips != 0 {
		t.Fatalf("1h budget tripped %d times", wd.Failover.WatchdogTrips)
	}
	if got, want := wd.Digest(), plain.Digest(); got != want {
		t.Fatalf("quiescent watchdog digest %016x, want %016x (plain)", got, want)
	}
}
