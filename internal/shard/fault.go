package shard

import (
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"modelcc/internal/chaos"
	"modelcc/internal/fleet"
	"modelcc/internal/lifecycle"
	"modelcc/internal/packet"
	"modelcc/internal/planner"
)

// Shard fault tolerance: barrier checkpoints, deterministic failover,
// and watchdog degradation.
//
// # Virtual shards
//
// The fault unit is the VIRTUAL shard: one stripe residue class, the
// flows congruent to v modulo planner.DefaultCacheStripes. A virtual
// shard is the finest placement granularity the runtime supports — the
// home table maps each one to a partition, and at K =
// DefaultCacheStripes virtual and physical shards coincide. Faults are
// drawn over virtual shards rather than partitions because the member
// set of partition s depends on K, while the member set of residue
// class v does not: a kill schedule over virtual shards touches the
// same flows at the same barriers for every shard count, which is what
// keeps the replay hash bit-identical for shards ∈ {2, 4, 8} under a
// fixed seed. Physical placement is results-neutral (every cross-shard
// interaction funnels through the canonical merge and the peek), so
// re-homing a class to a different survivor at different K cannot
// perturb results either.
//
// # Failover
//
// When virtual shard v is killed at a barrier, the shard memory
// hosting its members is gone; what survives is coordinator-owned
// state: the bottleneck (deliveries, drops), the cross-generation flow
// ledgers, and the barrier checkpoint store. The failover protocol,
// per flow of the class in canonical ascending order:
//
//  1. evict the member and transfer the flow's ledger to the new home
//     (the next partition in ring order; the home-table rewrite also
//     migrates the class's policy-cache stripe, which only its hosting
//     partition may touch);
//  2. restore the member through the restart ladder — warm from its
//     latest barrier checkpoint, hot from the compiled table, cold
//     from the prior — as a NEW generation with freshly fenced
//     counters;
//  3. fence the dead generation's post-checkpoint in-flight sends: the
//     restored sender's NextSeq rewinds to the checkpoint's, so those
//     sequence numbers will be reused, and the stale deliveries must
//     never reach the restored belief. The coordinator swallows any
//     delivery with SentAt in (checkpointAt, killBarrier] at the peek
//     (the whole window for a cold/hot restore, which resumes no
//     pending state). Drops can never need fencing: a drop happens at
//     the injection instant, always before the kill barrier, so it is
//     excluded by the restored generation's base fence.
//
// # Watchdog
//
// Stalls degrade instead of killing: an overrunning shard's members
// serve decisions from the Guard degradation ladder (compiled table →
// cache → last-safe action) without live planning, the sequence-based
// control shape — precomputed actions ride out the outage. The
// deterministic path draws stall windows from chaos.Sub("shardfault")
// over virtual shards; the production path (EnableWatchdog) measures
// each partition's wall-clock time per coupling window and degrades an
// overrunning partition's members for the following window. Both paths
// share Member.SetDegraded and the DegradedServed counters; only the
// trigger differs (drawn virtual time vs measured wall time), so the
// deterministic tests exercise exactly the serving path production
// degrades through.

// VirtualShards is the number of virtual shards (stripe residue
// classes) — the granularity of fault schedules and checkpoint sweeps.
const VirtualShards = planner.DefaultCacheStripes

// CheckpointConfig arms barrier-time member checkpointing.
type CheckpointConfig struct {
	// Every is the period over which every resident member receives
	// one barrier checkpoint (default 4 s). The sweep is incremental —
	// one virtual shard per due tick, round-robin — so checkpoint work
	// spreads across barriers instead of bunching into one.
	Every time.Duration
	// Dir, when non-empty, mirrors each checkpoint to
	// Dir/flow-<id>.ckpt with the atomic tmp+rename writer. The
	// in-memory store is authoritative for failover either way; the
	// mirror is for cross-process restarts.
	Dir string
}

// FaultConfig arms the deterministic shard-kill/stall schedule.
type FaultConfig struct {
	// Epoch is the draw period (default 10 s). Each epoch draws one
	// uniform per virtual shard, in index order, classifying it as
	// kill, stall, or healthy — a pure function of the chaos seed.
	Epoch time.Duration
	// KillProb is a virtual shard's per-epoch probability of being
	// killed at a drawn barrier inside the epoch.
	KillProb float64
	// StallProb is a virtual shard's per-epoch probability of a
	// drawn-length stall, served degraded through the Guard ladder.
	StallProb float64
	// MaxStall bounds a drawn stall's length (default 2 s; stalls are
	// always at least one coupling window).
	MaxStall time.Duration
}

// WatchdogConfig arms the production-path wall-clock watchdog.
type WatchdogConfig struct {
	// WindowBudget is the wall-clock budget one shard may spend
	// running one coupling window; a shard that overruns it has its
	// members served degraded for the following window. Zero disables.
	// Wall-clock verdicts are inherently nondeterministic — leave this
	// off in replay-hash experiments and drive FaultConfig.StallProb
	// instead, which degrades through the identical serving path.
	WindowBudget time.Duration
}

// FailoverStats aggregates shard-fault outcomes.
type FailoverStats struct {
	// ShardKills counts virtual-shard kills executed.
	ShardKills int
	// FlowsFailedOver counts members evicted and restored by kills.
	FlowsFailedOver int
	// WarmFailovers/HotFailovers/ColdFailovers split FlowsFailedOver
	// by the restart-ladder rung the restore landed on.
	WarmFailovers, HotFailovers, ColdFailovers int
	// FencedAcks counts deliveries swallowed by failover fences.
	FencedAcks int64
	// Stalls counts drawn stall windows entered.
	Stalls int
	// WatchdogTrips counts wall-clock budget overruns that degraded a
	// partition (zero without EnableWatchdog).
	WatchdogTrips int64
}

// RestoredMember records one fault-restored member for recovery
// reductions (virtual-time MTTR, post-failover utility).
type RestoredMember struct {
	// Flow and Gen identify the restored generation.
	Flow packet.FlowID
	Gen  uint32
	// At is the failover barrier.
	At time.Duration
	// RecoveredAt is the virtual instant the restored generation
	// absorbed its first acknowledged delivery — the recovery point for
	// MTTR reductions. Zero means it never recovered (retired or killed
	// again first, or the run ended).
	RecoveredAt time.Duration
	// Kind is the restart-ladder rung the restore landed on.
	Kind lifecycle.RestartKind
	// M is the restored member (readable after Run).
	M *fleet.Member
}

// fenceWin is one swallowed SentAt window: from < SentAt <= to.
type fenceWin struct{ from, to time.Duration }

type ckptState struct {
	cfg      CheckpointConfig
	interval time.Duration
	next     time.Duration
	round    int
	last     map[packet.FlowID]*lifecycle.Checkpoint
}

type groupKill struct {
	at    time.Duration
	group int
}

type groupStall struct {
	at    time.Duration
	dur   time.Duration
	group int
}

type faultState struct {
	cfg       FaultConfig
	src       *chaos.Source
	nextEpoch time.Duration
	kills     []groupKill
	stallq    []groupStall
	stalled   [VirtualShards]bool
	until     [VirtualShards]time.Duration
}

type watchdogState struct {
	cfg      WatchdogConfig
	wall     []time.Duration // last window's wall time per partition
	over     []bool          // last window's verdict per partition
	degraded []bool          // currently-applied degradation per partition
}

// EnableCheckpoints arms barrier-time checkpointing. Call before Run.
// With checkpoints armed, both the churn lifecycle's restarts and
// fault failovers gain the full hot→warm→cold ladder; without them,
// sharded restarts stay cold (hot when a compiled table is wired).
func (sf *Fleet) EnableCheckpoints(cc CheckpointConfig) {
	if cc.Every <= 0 {
		cc.Every = 4 * time.Second
	}
	interval := cc.Every / VirtualShards
	if interval < sf.Delta {
		interval = sf.Delta
	}
	sf.ckpt = &ckptState{
		cfg:      cc,
		interval: interval,
		next:     interval,
		last:     make(map[packet.FlowID]*lifecycle.Checkpoint),
	}
	sf.priorHash = lifecycle.PriorHashFor(sf.Cfg, sf.Caches)
}

// EnableFaults arms the deterministic shard-kill/stall schedule,
// drawn from chaos.Sub("shardfault"). Call before Run.
func (sf *Fleet) EnableFaults(fc FaultConfig, ch chaos.Config) {
	if fc.Epoch <= 0 {
		fc.Epoch = 10 * time.Second
	}
	if fc.MaxStall <= 0 {
		fc.MaxStall = 2 * time.Second
	}
	sf.fault = &faultState{
		cfg:       fc,
		src:       ch.Sub("shardfault").Source(),
		nextEpoch: fc.Epoch,
	}
}

// EnableWatchdog arms the wall-clock per-window budget. Call before
// Run. See WatchdogConfig for the determinism caveat.
func (sf *Fleet) EnableWatchdog(wc WatchdogConfig) {
	sf.wd = &watchdogState{
		cfg:      wc,
		wall:     make([]time.Duration, sf.K),
		over:     make([]bool, sf.K),
		degraded: make([]bool, sf.K),
	}
}

// LatestCheckpoint returns the flow's most recent barrier checkpoint,
// nil when none exists (or checkpointing is disabled).
func (sf *Fleet) LatestCheckpoint(flow packet.FlowID) *lifecycle.Checkpoint {
	if sf.ckpt == nil {
		return nil
	}
	return sf.ckpt.last[flow]
}

// PriorHash reports the model identity checkpoints are bound to (zero
// until EnableCheckpoints).
func (sf *Fleet) PriorHash() uint64 { return sf.priorHash }

// DegradedServed totals decisions served while degraded across every
// member generation, retired included.
func (sf *Fleet) DegradedServed() int64 {
	total := sf.degradedRetired
	for i := 0; i < sf.slots; i++ {
		if m := sf.MemberAt(packet.FlowID(i)); m != nil {
			total += m.DegradedServed()
		}
	}
	return total
}

func (c *ckptState) nextDue() (time.Duration, bool) { return c.next, true }

func (f *faultState) nextDue() (time.Duration, bool) {
	best := f.nextEpoch
	for _, k := range f.kills {
		if k.at < best {
			best = k.at
		}
	}
	for _, s := range f.stallq {
		if s.at < best {
			best = s.at
		}
	}
	for v := 0; v < VirtualShards; v++ {
		if f.stalled[v] && f.until[v] < best {
			best = f.until[v]
		}
	}
	return best, true
}

// checkpointSweep captures one virtual shard's resident members per
// due tick (round-robin), binding each checkpoint to the fleet prior
// hash and storing it in the coordinator-owned store (plus the
// directory mirror when configured).
func (sf *Fleet) checkpointSweep() {
	c := sf.ckpt
	b := sf.now
	for b >= c.next {
		v := c.round % VirtualShards
		c.round++
		c.next += c.interval
		for i := v; i < sf.slots; i += VirtualShards {
			flow := packet.FlowID(i)
			m := sf.MemberAt(flow)
			if m == nil || m.Retired() {
				continue
			}
			ck, err := lifecycle.Capture(m, sf.priorHash)
			if err != nil {
				sf.Stats.CheckpointErrors++
				continue
			}
			c.last[flow] = ck
			sf.Stats.Checkpoints++
			if c.cfg.Dir != "" {
				path := filepath.Join(c.cfg.Dir, fmt.Sprintf("flow-%d.ckpt", i))
				if err := ck.WriteFile(path); err != nil {
					sf.Stats.CheckpointErrors++
				}
			}
		}
	}
}

// faultBarrier processes the fault schedule at barrier sf.now: epoch
// draws, stall transitions, then kills — each in a fixed deterministic
// order.
func (sf *Fleet) faultBarrier() {
	f := sf.fault
	b := sf.now

	// Epoch draws: one classifying uniform per virtual shard in index
	// order (then the instant/duration draws its outcome needs), so
	// the schedule is a pure function of the chaos seed.
	for b >= f.nextEpoch {
		for v := 0; v < VirtualShards; v++ {
			u := f.src.Float64()
			switch {
			case u < f.cfg.KillProb:
				frac := f.src.Float64()
				at := f.nextEpoch + time.Duration(frac*float64(f.cfg.Epoch))
				f.kills = append(f.kills, groupKill{at: at, group: v})
			case u < f.cfg.KillProb+f.cfg.StallProb:
				fa := f.src.Float64()
				fd := f.src.Float64()
				at := f.nextEpoch + time.Duration(fa*float64(f.cfg.Epoch))
				dur := time.Duration(fd * float64(f.cfg.MaxStall))
				if dur < sf.Delta {
					dur = sf.Delta
				}
				f.stallq = append(f.stallq, groupStall{at: at, dur: dur, group: v})
			}
		}
		f.nextEpoch += f.cfg.Epoch
	}

	// Stall ends first (a stall expiring this barrier releases its
	// members before any new degradation is applied).
	for v := 0; v < VirtualShards; v++ {
		if f.stalled[v] && b >= f.until[v] {
			f.stalled[v] = false
			sf.setGroupDegraded(v, false)
		}
	}

	// Due stall starts, in (at, group) order.
	if len(f.stallq) > 0 {
		sort.Slice(f.stallq, func(i, j int) bool {
			if f.stallq[i].at != f.stallq[j].at {
				return f.stallq[i].at < f.stallq[j].at
			}
			return f.stallq[i].group < f.stallq[j].group
		})
		rest := f.stallq[:0]
		for _, s := range f.stallq {
			if s.at > b {
				rest = append(rest, s)
				continue
			}
			if end := s.at + s.dur; end > f.until[s.group] {
				f.until[s.group] = end
			}
			if !f.stalled[s.group] {
				f.stalled[s.group] = true
				sf.Failover.Stalls++
			}
		}
		f.stallq = rest
	}

	// Due kills, in (at, group) order; each kill is a whole-class
	// failover.
	if len(f.kills) > 0 {
		sort.Slice(f.kills, func(i, j int) bool {
			if f.kills[i].at != f.kills[j].at {
				return f.kills[i].at < f.kills[j].at
			}
			return f.kills[i].group < f.kills[j].group
		})
		rest := f.kills[:0]
		for _, k := range f.kills {
			if k.at > b {
				rest = append(rest, k)
				continue
			}
			sf.failoverGroup(k.group)
		}
		f.kills = rest
	}

	// Re-assert degradation on stalled classes last, so members
	// restored (or churn-admitted) into a stalled class this barrier
	// serve degraded too.
	for v := 0; v < VirtualShards; v++ {
		if f.stalled[v] {
			sf.setGroupDegraded(v, true)
		}
	}
}

// setGroupDegraded flips degraded serving for every live member of the
// virtual shard, in ascending flow order.
func (sf *Fleet) setGroupDegraded(v int, on bool) {
	for i := v; i < sf.slots; i += VirtualShards {
		if m := sf.MemberAt(packet.FlowID(i)); m != nil && !m.Retired() {
			m.SetDegraded(on)
		}
	}
}

// failoverGroup executes the loss of virtual shard v at the current
// barrier: re-home the class (and with it its policy-cache stripe),
// then evict and ladder-restore each resident flow in canonical order.
func (sf *Fleet) failoverGroup(v int) {
	b := sf.now
	dead := sf.Parts[sf.home[v]]
	sf.home[v] = (sf.home[v] + 1) % sf.K
	next := sf.Parts[sf.home[v]]

	sf.Failover.ShardKills++
	sf.Events = append(sf.Events, lifecycle.Event{At: b, Kind: lifecycle.EventShardFault, Flow: packet.FlowID(v)})

	for i := v; i < sf.slots; i += VirtualShards {
		flow := packet.FlowID(i)
		delivered := sf.Recv.Received[flow]
		drops := sf.rawDrops(flow)
		m := dead.RetireMember(flow, delivered, drops)
		if m != nil {
			sf.degradedRetired += m.DegradedServed()
			delete(sf.recovering, flow)
		}
		if led, ok := dead.Remove(flow); ok {
			// At K=1 the sole partition is its own successor; the
			// remove/install pair is then a reinstallation in place.
			next.Install(flow, led)
		}
		if m == nil {
			// Vacant (draining or reserved for a churn restart): only
			// the ledger moves; a later restart lands on the new home
			// through the rewritten table.
			continue
		}
		sf.Failover.FlowsFailedOver++
		sf.Events = append(sf.Events, lifecycle.Event{At: b, Kind: lifecycle.EventCrash, Flow: flow, Gen: m.Gen})
		sf.restoreFlow(flow, delivered, drops)
	}
}

// restoreFlow ladder-restores a failed-over flow at the current
// barrier: warm from its latest barrier checkpoint, hot from the
// compiled table, cold from the prior — always a new generation with
// freshly fenced counters, never merged accounting.
func (sf *Fleet) restoreFlow(flow packet.FlowID, delivered, drops int) {
	b := sf.now
	part := sf.owner(flow)
	kind := lifecycle.RestartCold
	fenceFrom := time.Duration(-1)
	var m *fleet.Member
	if sf.ckpt != nil {
		if ck := sf.ckpt.last[flow]; ck != nil {
			s, err := lifecycle.RestoreSender(part, ck, sf.priorHash)
			if err != nil {
				sf.Stats.CheckpointErrors++
				delete(sf.ckpt.last, flow)
			} else {
				m = part.AttachSender(flow, s, delivered, drops)
				lifecycle.RestoreGuard(m, ck)
				kind = lifecycle.RestartWarm
				fenceFrom = ck.At
			}
		}
	}
	if m == nil {
		m = part.AttachCold(flow, delivered, drops)
		if sf.Cfg.Table != nil {
			kind = lifecycle.RestartHot
		}
	}
	// Resume at the first representable instant after the barrier —
	// failover optimizes time-to-recover, not stagger; the offset is
	// clamped strictly positive like every barrier admission.
	m.Start(time.Nanosecond)
	sf.addFence(flow, fenceFrom, b)
	switch kind {
	case lifecycle.RestartWarm:
		sf.Stats.WarmRestarts++
		sf.Failover.WarmFailovers++
	case lifecycle.RestartHot:
		sf.Stats.HotRestarts++
		sf.Failover.HotFailovers++
	default:
		sf.Stats.ColdRestarts++
		sf.Failover.ColdFailovers++
	}
	sf.Events = append(sf.Events, lifecycle.Event{
		At: b, Kind: lifecycle.EventRestart, Flow: flow, Gen: m.Gen, Restart: kind,
	})
	sf.Records = append(sf.Records, RestoredMember{Flow: flow, Gen: m.Gen, At: b, Kind: kind, M: m})
	if sf.recovering == nil {
		sf.recovering = make(map[packet.FlowID]int)
	}
	sf.recovering[flow] = len(sf.Records) - 1
	if sf.churn != nil {
		// Reset the health baseline so the sweep doesn't blame the
		// restored member for its predecessor's reseeds.
		fs := sf.churn.flow(int(flow))
		fs.lastReseeds = beliefReseeds(m)
	}
}

// addFence records a swallowed SentAt window (from, to] for the flow;
// an empty window (warm restore from a same-barrier checkpoint) is
// skipped.
func (sf *Fleet) addFence(flow packet.FlowID, from, to time.Duration) {
	if from >= to {
		return
	}
	if sf.fences == nil {
		sf.fences = make(map[packet.FlowID][]fenceWin)
	}
	sf.fences[flow] = append(sf.fences[flow], fenceWin{from: from, to: to})
}

// fenced reports whether a delivery for the flow sent at sentAt falls
// inside a failover fence.
func (sf *Fleet) fenced(flow packet.FlowID, sentAt time.Duration) bool {
	if sf.fences == nil {
		return false
	}
	for _, w := range sf.fences[flow] {
		if sentAt > w.from && sentAt <= w.to {
			return true
		}
	}
	return false
}

// timedRun runs partition i to the window end, timing it when the
// wall-clock watchdog is armed. Each goroutine writes only its own
// wall slot.
func (sf *Fleet) timedRun(i int, end time.Duration) {
	if sf.wd == nil || sf.wd.cfg.WindowBudget <= 0 {
		sf.Parts[i].RunTo(end)
		return
	}
	start := time.Now()
	sf.Parts[i].RunTo(end)
	sf.wd.wall[i] = time.Since(start)
}

// applyWatchdog applies last window's wall-clock verdicts before the
// next window runs: an overrunning partition's members are degraded,
// a recovered partition's are released.
func (sf *Fleet) applyWatchdog() {
	w := sf.wd
	if w.cfg.WindowBudget <= 0 {
		return
	}
	for i := range sf.Parts {
		if w.over[i] == w.degraded[i] {
			continue
		}
		w.degraded[i] = w.over[i]
		if w.over[i] {
			sf.Failover.WatchdogTrips++
		}
		sf.setPartitionDegraded(i, w.over[i])
	}
}

// judgeWatchdog records which partitions blew the window budget.
func (sf *Fleet) judgeWatchdog() {
	w := sf.wd
	if w.cfg.WindowBudget <= 0 {
		return
	}
	for i := range sf.Parts {
		w.over[i] = w.wall[i] > w.cfg.WindowBudget
	}
}

// setPartitionDegraded flips degraded serving for every live member
// currently homed on partition i, in ascending flow order.
func (sf *Fleet) setPartitionDegraded(i int, on bool) {
	for f := 0; f < sf.slots; f++ {
		if sf.home[f%VirtualShards] != i {
			continue
		}
		if m := sf.Parts[i].MemberAt(packet.FlowID(f)); m != nil && !m.Retired() {
			m.SetDegraded(on)
		}
	}
}
