// Package shard runs a fleet of ISENDERs as K parallel per-shard
// discrete-event loops coupled through the one shared bottleneck by a
// conservative time-windowed coordinator, bit identical at any shard
// count. New forces the two fleet knobs sharding depends on —
// fleet.Config.Canonical (flow-order same-instant scheduling) and a
// cache striped planner.DefaultCacheStripes ways — and a single-loop
// fleet.Fleet built with those same knobs reproduces a sharded run bit
// for bit (a default single-loop fleet keeps its historical
// arrival-order trajectory, which differs event for event but not
// statistically).
//
// # The windowed protocol
//
// Flow f lives on shard f mod K. Each shard is a fleet.Partition: its
// members, their wake timers, belief updates and planner rollouts all
// run on a private sim.Loop with private scratch arenas, so K shards
// occupy K goroutines with no shared mutable state. The bottleneck —
// buffer, link, receiver — stays on one authoritative loop owned by
// the coordinator.
//
// Virtual time advances in windows of Δ = the bottleneck's service
// time for one (uniform-size) packet, the conservative lookahead: no
// packet injected after a window opens can be delivered inside it,
// because its service completes at least Δ after the window opened.
// One round is:
//
//  1. Peek. At the window start the coordinator inspects the link's
//     in-service packet. At most ONE delivery can land inside the
//     window — the in-service packet (anything behind it completes a
//     full service time later) — and a delivery inside the window
//     implies its service began at or before the window start, so the
//     peek can never miss one. The resulting acknowledgment is handed
//     to the owning shard, scheduled at its exact receive instant.
//     The implication needs every instant ≤ the window start to be
//     fully processed BEFORE the peek; two edges enforce that: Run
//     opens with a zero-width step that settles instant 0 (member
//     starts at offset zero and their injections) before the first
//     window, and barrier-time admissions clamp their start offsets
//     strictly positive so no member event ever lands exactly on a
//     barrier the coordinator has already opened.
//  2. Run. All K shards run their loops to the window end in
//     parallel. Each shard's sends land in its outbox.
//  3. Merge. The coordinator gathers the outboxes and sorts the
//     packets by (SentAt, Flow, Seq) — the canonical order, identical
//     to the order a single-loop fleet under Config.Canonical would
//     have generated them in, because the canonical scheduler drains
//     same-instant wakes in flow order (see fleet.drain).
//  4. Replay. The merged packets are injected into the bottleneck
//     loop at their exact send times and that loop runs to the window
//     end, evolving queue state, drops and service identically to the
//     single-loop run.
//
// When no shard has an event inside the next window, no delivery is
// pending and no lifecycle action is due, the coordinator jumps the
// clock to the window (on the Δ grid) containing the earliest pending
// event instead of grinding through empty windows.
//
// # Why determinism survives
//
// Every cross-shard interaction is funneled through two K-invariant
// channels: the merged injection order (canonical, arrival-order-free)
// and the peeked acknowledgment (a pure function of bottleneck state).
// The policy cache is split into planner.DefaultCacheStripes
// independent stripes keyed by flow mod stripe count; shard counts are
// restricted to divisors of the stripe count, so each stripe is only
// ever touched by one shard (no locks) and the per-stripe operation
// sequence — hence every hit, miss and cached decision — depends only
// on the fixed stripe partition, never on K. Shard loop RNGs are
// untouched by fleet topologies. The Workers knob composes: in a
// sharded fleet it is the per-shard rollout pool width (default
// GOMAXPROCS/K), and rollout results are bit-identical for any width.
//
// Lifecycle under sharding is barrier-aligned: churn draws, crashes,
// health checks and restarts execute at window boundaries (every due
// time snapped up to the Δ grid), in flow order, so the event log and
// replay hash are identical for every shard count — though not to the
// single-loop Supervisor's mid-window schedule, which is a different
// (equally deterministic) protocol. With EnableCheckpoints armed,
// restarts walk the full hot→warm→cold ladder from barrier-time
// checkpoints; the coordinator additionally survives the loss or
// stall of a whole shard (EnableFaults, EnableWatchdog) — see fault.go
// for the virtual-shard failover protocol and the degradation
// watchdog.
package shard

import (
	"hash"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/core"
	"modelcc/internal/elements"
	"modelcc/internal/fleet"
	"modelcc/internal/lifecycle"
	"modelcc/internal/packet"
	"modelcc/internal/planner"
	"modelcc/internal/sim"
	"modelcc/internal/units"
)

// Config describes a sharded fleet run.
type Config struct {
	// Fleet is the underlying fleet configuration. Workers here is the
	// TOTAL rollout budget; each shard's pool gets Workers/K (min 1).
	// Zero keeps the fleet default (GOMAXPROCS) as the total.
	Fleet fleet.Config
	// Shards is the requested shard count; 0 means runtime.NumCPU().
	// The effective count is the largest power of two at most the
	// request and at most planner.DefaultCacheStripes, so it always
	// divides the cache stripe count (the determinism invariant).
	Shards int
}

// ResolveShards maps a requested shard count to the effective one.
func ResolveShards(req int) int {
	if req <= 0 {
		req = runtime.NumCPU()
	}
	k := 1
	for k*2 <= req && k*2 <= planner.DefaultCacheStripes {
		k *= 2
	}
	return k
}

// Fleet is the sharded runtime: K fleet.Partitions coupled to one
// authoritative bottleneck loop. Build with New, drive with Run (or
// RunChurn via Churn).
type Fleet struct {
	// Cfg is the resolved fleet configuration.
	Cfg fleet.Config
	// K is the effective shard count.
	K int
	// Delta is the coupling window: one packet's service time on the
	// bottleneck, the conservative lookahead.
	Delta time.Duration
	// Parts are the shards; flow f lives on Parts[f mod K].
	Parts []*fleet.Partition
	// BLoop is the authoritative bottleneck loop.
	BLoop *sim.Loop
	// Buffer/FQ/Link/Recv mirror fleet.Fleet's bottleneck elements.
	Buffer *elements.Buffer
	FQ     *elements.FairQueue
	Link   *elements.Throughput
	Recv   *elements.Receiver
	// Caches is the striped policy cache shared (without locks) by all
	// shards.
	Caches *planner.CacheStripes
	// OrphanAcks counts deliveries for flows with no live member.
	OrphanAcks int64
	// Events is the barrier-aligned lifecycle log (empty without
	// churn or faults).
	Events []lifecycle.Event
	// Stats counts lifecycle activity (zero without churn or faults).
	Stats lifecycle.Stats
	// Failover aggregates shard-fault outcomes (zero without faults).
	Failover FailoverStats
	// Records logs every fault-restored member, for MTTR and
	// post-failover recovery reductions.
	Records []RestoredMember

	now      time.Duration
	slots    int // flow-space size: flows ever allocated are 0..slots-1
	started  bool
	zeroStep bool
	churn    *churnState
	ckpt     *ckptState
	fault    *faultState
	wd       *watchdogState
	merged   []packet.Packet
	// home maps each virtual shard (stripe residue class, flow mod
	// DefaultCacheStripes) to the partition hosting it — the stripe
	// ownership table. Initially v mod K; failover re-homes a killed
	// virtual shard by rewriting its entry, which migrates both its
	// flows and its policy-cache stripe in one move.
	home [planner.DefaultCacheStripes]int
	// fences are per-flow (from, to] SentAt windows whose deliveries
	// are swallowed at the peek: the post-checkpoint in-flight sends of
	// a failed-over member generation, whose sequence numbers the
	// restored generation will reuse.
	fences map[packet.FlowID][]fenceWin
	// recovering maps a flow to the index in Records of its latest
	// fault-restored generation that has not yet absorbed a delivery;
	// the peek stamps RecoveredAt through it (virtual-time MTTR).
	recovering map[packet.FlowID]int
	// priorHash binds barrier checkpoints to the fleet's model
	// identity (set when checkpoints are enabled).
	priorHash uint64
	// degradedRetired accumulates DegradedServed counts of retired
	// members, so DegradedServed() survives churn and failover.
	degradedRetired int64
}

// New builds the sharded runtime. Nothing runs until Run.
func New(cfg Config) *Fleet {
	// Sharding requires canonical same-instant scheduling (the
	// cross-shard merge replays events in flow order, so partition-local
	// wakes must drain the same way) and a striped cache (partitions own
	// disjoint stripe subsets). A single-loop fleet.Fleet reproduces a
	// sharded run bit for bit only when configured with the same two
	// values — fleet.Config{Canonical: true, CacheStripes:
	// planner.DefaultCacheStripes}.
	cfg.Fleet.Canonical = true
	if cfg.Fleet.CacheStripes <= 0 {
		cfg.Fleet.CacheStripes = planner.DefaultCacheStripes
	}
	fc := cfg.Fleet.Resolved()
	k := ResolveShards(cfg.Shards)
	sf := &Fleet{
		Cfg:   fc,
		K:     k,
		Delta: units.TransmitTime(packet.DefaultSizeBits, fc.LinkRate),
		BLoop: sim.New(fc.Seed),
	}
	if !fc.NoSharedCache {
		sf.Caches = planner.NewCacheStripes(fc.CacheStripes, fc.CacheEntries)
		sf.Caches.SetQuanta(50*time.Millisecond, 1e-3)
	}
	// The receiver counts deliveries; member delivery happens through
	// the coordinator's peek, so no callback is wired.
	sf.Recv = elements.NewReceiver(sf.BLoop, nil)
	if fc.FairQueue {
		sf.FQ = elements.NewFairQueue(fc.BufferCapBits)
		sf.Link = elements.NewThroughput(sf.BLoop, fc.LinkRate, sf.Recv)
		sf.FQ.AttachDrain(sf.Link)
	} else {
		sf.Buffer, sf.Link = elements.NewBottleneck(sf.BLoop, fc.BufferCapBits, fc.LinkRate, sf.Recv)
	}

	pc := fc
	pc.Workers = perShardWorkers(fc.Workers, k)
	for i := 0; i < k; i++ {
		sf.Parts = append(sf.Parts, fleet.NewPartition(pc, i, k, sf.Caches))
	}
	for v := range sf.home {
		sf.home[v] = v % k
	}
	return sf
}

// perShardWorkers splits the total rollout budget across shards.
func perShardWorkers(total, k int) int {
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	w := total / k
	if w < 1 {
		w = 1
	}
	return w
}

func (sf *Fleet) owner(flow packet.FlowID) *fleet.Partition {
	return sf.Parts[sf.home[int(flow)%planner.DefaultCacheStripes]]
}

// MemberAt returns the flow's live member, nil when vacant.
func (sf *Fleet) MemberAt(flow packet.FlowID) *fleet.Member {
	if int(flow) >= sf.slots {
		return nil
	}
	return sf.owner(flow).MemberAt(flow)
}

// MemberSlots returns the member table in flow order (nil per vacant
// slot), mirroring fleet.Fleet.Members for sweep reducers.
func (sf *Fleet) MemberSlots() []*fleet.Member {
	ms := make([]*fleet.Member, sf.slots)
	for i := range ms {
		ms[i] = sf.owner(packet.FlowID(i)).MemberAt(packet.FlowID(i))
	}
	return ms
}

// Live reports the number of live members.
func (sf *Fleet) Live() int {
	n := 0
	for i := 0; i < sf.slots; i++ {
		if sf.MemberAt(packet.FlowID(i)) != nil {
			n++
		}
	}
	return n
}

// Slots reports the flow-space high-water mark (= len(Members) of the
// single-loop fleet).
func (sf *Fleet) Slots() int { return sf.slots }

func (sf *Fleet) rawDrops(flow packet.FlowID) int {
	if sf.Buffer != nil {
		return sf.Buffer.Drops[flow]
	}
	if sf.FQ != nil {
		return sf.FQ.Drops[flow]
	}
	return 0
}

// Drops reports total bottleneck drops across all flows.
func (sf *Fleet) Drops() int {
	total := 0
	for i := 0; i < sf.slots; i++ {
		total += sf.rawDrops(packet.FlowID(i))
	}
	return total
}

// Delivered reports the live generation's fenced deliveries (see
// fleet.Fleet.Delivered).
func (sf *Fleet) Delivered(flow packet.FlowID) int {
	base, ok := sf.owner(flow).BaseDelivered(flow)
	if !ok {
		return 0
	}
	return sf.Recv.Received[flow] - base
}

// DeliveredTotal reports all-generations deliveries for the flow.
func (sf *Fleet) DeliveredTotal(flow packet.FlowID) int {
	return sf.Recv.Received[flow]
}

// FlowDrops reports the live generation's fenced drops.
func (sf *Fleet) FlowDrops(flow packet.FlowID) int {
	base, ok := sf.owner(flow).BaseDrops(flow)
	if !ok {
		return 0
	}
	return sf.rawDrops(flow) - base
}

// InFlight reports the flow's packets still inside the bottleneck.
func (sf *Fleet) InFlight(flow packet.FlowID) int64 {
	inj := sf.owner(flow).InjectedTotal(flow)
	return inj - int64(sf.Recv.Received[flow]) - int64(sf.rawDrops(flow))
}

// CacheStats sums the striped cache's Decide-path counters. Call only
// between windows or after Run.
func (sf *Fleet) CacheStats() (hits, misses int) {
	if sf.Caches == nil {
		return 0, 0
	}
	return sf.Caches.Stats()
}

// Now reports the coordinator's barrier time.
func (sf *Fleet) Now() time.Duration { return sf.now }

// start attaches and staggers the initial members exactly as
// fleet.New + fleet.Start would.
func (sf *Fleet) start() {
	if sf.started {
		return
	}
	sf.started = true
	n := int64(sf.Cfg.N)
	for i := 0; i < sf.Cfg.N; i++ {
		flow := packet.FlowID(i)
		m := sf.owner(flow).AttachCold(flow, 0, 0)
		m.Start(time.Duration(int64(sf.Cfg.Stagger) * int64(i) / n))
	}
	sf.slots = sf.Cfg.N
}

// admit starts a fresh cold member on flow with the given offset,
// extending the flow space as needed. The offset is clamped strictly
// positive: admissions happen at window barriers, and the windowed
// protocol requires that no member event lands exactly ON a barrier
// the coordinator has already opened (the peek at barrier W assumes
// every instant ≤ W is fully processed).
func (sf *Fleet) admit(flow packet.FlowID, offset time.Duration) *fleet.Member {
	if offset <= 0 {
		offset = time.Nanosecond
	}
	m := sf.owner(flow).AttachCold(flow, sf.Recv.Received[flow], sf.rawDrops(flow))
	m.Start(offset)
	if int(flow) >= sf.slots {
		sf.slots = int(flow) + 1
	}
	return m
}

// admitSender starts a caller-built (warm-restored) sender on flow
// with the given offset, clamped strictly positive like admit.
func (sf *Fleet) admitSender(flow packet.FlowID, s *core.Sender, offset time.Duration) *fleet.Member {
	if offset <= 0 {
		offset = time.Nanosecond
	}
	m := sf.owner(flow).AttachSender(flow, s, sf.Recv.Received[flow], sf.rawDrops(flow))
	m.Start(offset)
	if int(flow) >= sf.slots {
		sf.slots = int(flow) + 1
	}
	return m
}

// retire tears the flow's member down, mirroring fleet.Retire.
func (sf *Fleet) retire(flow packet.FlowID) *fleet.Member {
	m := sf.owner(flow).RetireMember(flow, sf.Recv.Received[flow], sf.rawDrops(flow))
	if m != nil {
		sf.degradedRetired += m.DegradedServed()
		// A fault-restored generation churned away before its first
		// delivery never recovers; leave its RecoveredAt zero.
		delete(sf.recovering, flow)
	}
	return m
}

// barrier executes every due barrier-time subsystem in a fixed order:
// checkpoint sweeps (so a kill landing on the same barrier restores
// from the freshest possible state), fault processing (stall
// transitions, then kills and their failovers), then the churn
// lifecycle.
func (sf *Fleet) barrier() {
	if sf.ckpt != nil {
		sf.checkpointSweep()
	}
	if sf.fault != nil {
		sf.faultBarrier()
	}
	if sf.churn != nil {
		sf.lifecycleBarrier()
	}
}

// Run drives the sharded fleet to the absolute virtual time d.
func (sf *Fleet) Run(d time.Duration) {
	sf.start()
	if !sf.zeroStep {
		// Process instant 0 as its own zero-width step. Member starts at
		// offset 0 fire here, and their injections replay onto the
		// bottleneck BEFORE the first real window opens — so a service
		// beginning exactly at t=0 is in flight at the first peek, like
		// every later window-start service. Without this, a completion
		// landing exactly on the first barrier would be invisible to the
		// peek (the link was idle when the window opened).
		sf.zeroStep = true
		sf.window(0)
	}
	for sf.now < d {
		sf.barrier()
		end := sf.now + sf.Delta
		if end > d {
			end = d
		}
		// Idle skip-ahead: when nothing can happen inside this window —
		// or for many windows after it — jump the clock along the Δ
		// grid to the window containing the earliest pending event.
		if t, ok := sf.nextAnything(d); !ok {
			sf.advanceAll(d)
			sf.now = d
			break
		} else if t > end {
			k := (t - 1) / sf.Delta // window (kΔ, (k+1)Δ] contains t
			w := k * sf.Delta
			if w > sf.now {
				sf.advanceAll(w)
				sf.now = w
			}
			continue
		}
		sf.window(end)
		sf.now = end
	}
}

// nextAnything reports the earliest pending instant in the whole
// system: shard events, the in-service completion, lifecycle dues.
func (sf *Fleet) nextAnything(limit time.Duration) (time.Duration, bool) {
	best := time.Duration(math.MaxInt64)
	ok := false
	for _, p := range sf.Parts {
		if t, has := p.NextEventTime(); has && t < best {
			best, ok = t, true
		}
	}
	if _, doneAt, has := sf.Link.InService(); has && doneAt < best {
		best, ok = doneAt, true
	}
	if t, has := sf.BLoop.PeekTime(); has && t < best {
		// Defensive: the bottleneck loop's own queue (e.g. a queued
		// service start) also bounds the skip.
		best, ok = t, true
	}
	if sf.churn != nil {
		if t, has := sf.churn.nextDue(); has && t < best {
			best, ok = t, true
		}
	}
	if sf.ckpt != nil && sf.ckpt.next < best {
		best, ok = sf.ckpt.next, true
	}
	if sf.fault != nil {
		if t, has := sf.fault.nextDue(); has && t < best {
			best, ok = t, true
		}
	}
	if best > limit {
		// Nothing before the end of the run still counts as "something"
		// so the caller advances to limit, not past it.
		return best, ok && best <= limit
	}
	return best, ok
}

// advanceAll moves every loop's clock to t without firing anything
// (nothing is pending before t by construction).
func (sf *Fleet) advanceAll(t time.Duration) {
	for _, p := range sf.Parts {
		p.RunTo(t)
	}
	sf.BLoop.Run(t)
}

// window executes one coupling round ending at end.
func (sf *Fleet) window(end time.Duration) {
	// 1. Peek: the at-most-one delivery this window can contain.
	if pkt, doneAt, ok := sf.Link.InService(); ok && doneAt <= end {
		m := sf.MemberAt(pkt.Flow)
		switch {
		case sf.fenced(pkt.Flow, pkt.SentAt):
			// A post-checkpoint in-flight send of a failed-over
			// generation: the restored sender will reuse its sequence
			// number, so delivering this acknowledgment would corrupt
			// the restored belief. Swallow it and advance the restored
			// generation's delivery fence so its Delivered stays its
			// own.
			sf.Failover.FencedAcks++
			sf.owner(pkt.Flow).BumpDeliveryFence(pkt.Flow, 1)
		case m == nil || m.Retired():
			// Membership only changes at barriers, so the peek-time
			// check equals the delivery-time check the single-loop
			// fleet performs.
			sf.OrphanAcks++
		default:
			if idx, ok := sf.recovering[pkt.Flow]; ok {
				sf.Records[idx].RecoveredAt = doneAt
				delete(sf.recovering, pkt.Flow)
			}
			sf.owner(pkt.Flow).ScheduleAck(packet.Ack{
				Flow:       pkt.Flow,
				Seq:        pkt.Seq,
				ReceivedAt: doneAt,
				SentAt:     pkt.SentAt,
			})
		}
	}

	// 2. Run the shards to the window end in parallel. The production
	// watchdog applies last window's wall-clock verdicts first (an
	// overrunning shard's members serve this window degraded) and
	// times each shard's run.
	if sf.wd != nil {
		sf.applyWatchdog()
	}
	if sf.K == 1 {
		sf.timedRun(0, end)
	} else {
		var wg sync.WaitGroup
		for i := range sf.Parts {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sf.timedRun(i, end)
			}(i)
		}
		wg.Wait()
	}
	if sf.wd != nil {
		sf.judgeWatchdog()
	}

	// 3. Merge the outboxes in canonical (SentAt, Flow, Seq) order —
	// the order the single-loop fleet generates: time first, and the
	// fleet scheduler wakes same-instant members in flow order. The
	// sort only reorders across shards; ties beyond Seq are impossible
	// (one member emits one (Flow, Seq) once).
	sf.merged = sf.merged[:0]
	for _, p := range sf.Parts {
		sf.merged = append(sf.merged, p.Out.Pkts...)
		p.Out.Reset()
	}
	sort.Slice(sf.merged, func(i, j int) bool {
		a, b := sf.merged[i], sf.merged[j]
		if a.SentAt != b.SentAt {
			return a.SentAt < b.SentAt
		}
		if a.Flow != b.Flow {
			return a.Flow < b.Flow
		}
		return a.Seq < b.Seq
	})

	// 4. Replay onto the authoritative bottleneck at exact send times.
	// Same-instant ordering matches the single-loop run: a completion
	// at instant t was armed when its service began (< t), so its
	// sequence number is smaller than these injections' and it fires
	// first — exactly as the single loop fires the completion before
	// the drain that triggers the sends.
	q := sf.q()
	for i := range sf.merged {
		pkt := sf.merged[i]
		sf.BLoop.Schedule(pkt.SentAt, func() { q.Receive(pkt) })
	}
	sf.BLoop.Run(end)
}

func (sf *Fleet) q() elements.Node {
	if sf.FQ != nil {
		return sf.FQ
	}
	return sf.Buffer
}

// Digest hashes the run's observable results — per-flow totals, drops,
// orphans, and every member's counters and aggregates — with FNV-1a.
// Two runs with equal digests produced bit-identical fleets. The same
// byte stream is produced by DigestFleet over a single-loop fleet, so
// shards=K can be asserted against the unsharded runtime.
func (sf *Fleet) Digest() uint64 {
	return digest(sf.slots, sf.Live(), sf.Drops(), sf.OrphanAcks,
		func(flow packet.FlowID) int { return sf.DeliveredTotal(flow) },
		func(flow packet.FlowID) *fleet.Member { return sf.MemberAt(flow) })
}

// DigestFleet is Digest computed over a single-loop fleet.
func DigestFleet(fl *fleet.Fleet) uint64 {
	return digest(len(fl.Members), fl.Live(), fl.Drops(), fl.OrphanAcks,
		func(flow packet.FlowID) int { return fl.DeliveredTotal(flow) },
		func(flow packet.FlowID) *fleet.Member { return fl.Members[flow] })
}

func digest(slots, live, drops int, orphans int64,
	delivered func(packet.FlowID) int, member func(packet.FlowID) *fleet.Member) uint64 {
	h := fnvHasher()
	h.put(uint64(slots), uint64(live), uint64(drops), uint64(orphans))
	for i := 0; i < slots; i++ {
		flow := packet.FlowID(i)
		h.put(uint64(i), uint64(delivered(flow)))
		m := member(flow)
		if m == nil {
			h.put(^uint64(0))
			continue
		}
		h.put(uint64(m.Flow), uint64(m.Gen),
			uint64(m.Sender.Sent), uint64(m.Sender.Acked), uint64(m.Sender.Wakes),
			uint64(m.Injected), uint64(m.Delay.N),
			math.Float64bits(m.Delay.Sum), math.Float64bits(m.Utility))
	}
	return h.sum()
}

// hasher is a little-endian uint64 FNV-1a accumulator shared by the
// digest and replay-hash paths.
type hasher struct{ h hash.Hash64 }

func fnvHasher() *hasher { return &hasher{h: fnv.New64a()} }

func (x *hasher) put(vs ...uint64) {
	var b [8]byte
	for _, v := range vs {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		x.h.Write(b[:])
	}
}

func (x *hasher) sum() uint64 { return x.h.Sum64() }

// beliefReseeds mirrors the Supervisor's health signal read.
func beliefReseeds(m *fleet.Member) int {
	switch b := m.Sender.Belief.(type) {
	case *belief.Exact:
		return b.Cum.Reseeded
	case *belief.Particle:
		return b.Cum.Reseeded
	}
	return 0
}
