package shard

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/core"
	"modelcc/internal/fleet"
	"modelcc/internal/lifecycle"
	"modelcc/internal/packet"
)

// TestCheckpointPortabilityAcrossShardCounts: barrier checkpoints are
// topology-free. A K=1 run and a K=8 run of the same configuration
// produce byte-identical checkpoint stores, and a checkpoint captured
// under either shard count restores through the other's partition host
// and re-captures bit-identically.
func TestCheckpointPortabilityAcrossShardCounts(t *testing.T) {
	run := func(k int) *Fleet {
		sf := New(Config{Fleet: fleet.Config{N: 16, Seed: 21, Workers: 1}, Shards: k})
		sf.EnableCheckpoints(CheckpointConfig{Every: 2 * time.Second})
		sf.Run(12 * time.Second)
		return sf
	}
	k1, k8 := run(1), run(8)
	if k1.PriorHash() != k8.PriorHash() {
		t.Fatalf("prior hash differs across shard counts: %016x vs %016x", k1.PriorHash(), k8.PriorHash())
	}

	checked := 0
	for i := 0; i < 16; i++ {
		flow := packet.FlowID(i)
		a, b := k1.LatestCheckpoint(flow), k8.LatestCheckpoint(flow)
		if (a == nil) != (b == nil) {
			t.Fatalf("flow %d: checkpoint presence differs across shard counts (K=1 %v, K=8 %v)",
				i, a != nil, b != nil)
		}
		if a == nil {
			continue
		}
		checked++
		if !bytes.Equal(a.Encode(), b.Encode()) {
			t.Errorf("flow %d: checkpoint bytes differ between K=1 and K=8", i)
		}
	}
	if checked == 0 {
		t.Fatal("no checkpoints captured to compare")
	}

	// Cross-restore both directions: the encoding carries no topology,
	// so restore + re-capture against the other runtime's partition
	// host is the identity on the checkpoint bytes.
	cross := func(src, dst *Fleet, flow packet.FlowID) {
		t.Helper()
		ck := src.LatestCheckpoint(flow)
		if ck == nil {
			t.Fatalf("flow %d: no checkpoint to cross-restore", flow)
		}
		part := dst.owner(flow)
		s, err := lifecycle.RestoreSender(part, ck, dst.PriorHash())
		if err != nil {
			t.Fatalf("flow %d: cross-restore: %v", flow, err)
		}
		m := &fleet.Member{Flow: ck.Flow, Gen: ck.Gen, Sender: s, Utility: ck.Utility, Injected: ck.Injected}
		lifecycle.RestoreGuard(m, ck)
		ck2, err := lifecycle.Capture(m, dst.PriorHash())
		if err != nil {
			t.Fatalf("flow %d: re-capture: %v", flow, err)
		}
		if !bytes.Equal(ck.Encode(), ck2.Encode()) {
			t.Errorf("flow %d: restore∘capture not the identity across shard counts", flow)
		}
	}
	cross(k1, k8, 3)
	cross(k8, k1, 5)
}

// partitionTrace mirrors the lifecycle package's scripted-trace
// harness, but round-trips the checkpoint through a *fleet.Partition
// as the restore host instead of a *fleet.Fleet.
func partitionTrace(t *testing.T, host *fleet.Partition, s *core.Sender, wakes, ckptAt int, hash uint64) []string {
	t.Helper()
	const delay = 150 * time.Millisecond
	var (
		trace   []string
		pending []packet.Ack
		now     time.Duration
	)
	for k := 0; k < wakes; k++ {
		if k == ckptAt {
			m := &fleet.Member{Flow: 0, Gen: 0, Sender: s}
			ck, err := lifecycle.Capture(m, hash)
			if err != nil {
				t.Fatalf("Capture: %v", err)
			}
			ck, err = lifecycle.Decode(ck.Encode())
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if s, err = lifecycle.RestoreSender(host, ck, hash); err != nil {
				t.Fatalf("RestoreSender via partition host: %v", err)
			}
		}
		var acks []packet.Ack
		for len(pending) > 0 && pending[0].ReceivedAt <= now {
			acks = append(acks, pending[0])
			pending = pending[1:]
		}
		act := s.Wake(now, acks)
		line := fmt.Sprintf("%d@%v:", k, act.WakeAt)
		for _, snd := range act.Sends {
			line += fmt.Sprintf(" %d", snd.Seq)
			pending = append(pending, packet.Ack{Seq: snd.Seq, SentAt: now, ReceivedAt: now + delay})
		}
		trace = append(trace, line)
		next := act.WakeAt
		if len(pending) > 0 && pending[0].ReceivedAt < next {
			next = pending[0].ReceivedAt
		}
		if next <= now {
			next = now + 10*time.Millisecond
		}
		now = next
	}
	return trace
}

// TestParticleRestoreThroughPartitionHost: the Particle belief's RNG
// stream word survives a binary checkpoint round-trip restored against
// a partition host — an interrupted sender replays the uninterrupted
// sender's decisions exactly, sampled toggles included.
func TestParticleRestoreThroughPartitionHost(t *testing.T) {
	sf := New(Config{Fleet: fleet.Config{N: 2, Seed: 7, Workers: 1}, Shards: 2})
	part := sf.Parts[0]
	hash := lifecycle.PriorHashFor(sf.Cfg, sf.Caches)
	mk := func() *core.Sender {
		b := belief.NewParticle(part.PriorStates(), 64, part.MemberBeliefConfig(), rand.New(rand.NewSource(3)))
		return core.NewSender(b, part.MemberPlanConfig())
	}
	const wakes = 40
	straight := partitionTrace(t, part, mk(), wakes, -1, hash)
	for _, at := range []int{5, 20} {
		resumed := partitionTrace(t, part, mk(), wakes, at, hash)
		for i := range straight {
			if straight[i] != resumed[i] {
				t.Fatalf("ckpt at wake %d: decision %d diverged:\n straight: %s\n resumed:  %s",
					at, i, straight[i], resumed[i])
			}
		}
	}
}
