package shard

import (
	"testing"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/chaos"
	"modelcc/internal/fleet"
	"modelcc/internal/lifecycle"
	"modelcc/internal/packet"
	"modelcc/internal/planner"
)

// steadyDigest runs an unsharded fleet and returns its digest.
func steadyDigest(t *testing.T, cfg fleet.Config, d time.Duration) uint64 {
	t.Helper()
	fl := fleet.New(cfg)
	fl.Run(d)
	return DigestFleet(fl)
}

// shardDigest runs the sharded runtime at the given shard count.
func shardDigest(t *testing.T, cfg fleet.Config, k int, d time.Duration) uint64 {
	t.Helper()
	sf := New(Config{Fleet: cfg, Shards: k})
	if sf.K != k {
		t.Fatalf("requested %d shards, got %d", k, sf.K)
	}
	sf.Run(d)
	return sf.Digest()
}

// TestShardsReproduceFleet is the tentpole invariant: the sharded
// runtime's results are bit-identical to the single-loop fleet's, for
// every shard count.
func TestShardsReproduceFleet(t *testing.T) {
	n, dur := 8, 20*time.Second
	if !testing.Short() {
		dur = 30 * time.Second
	}
	cfg := fleet.Config{N: n, Seed: 42, Workers: 1, Canonical: true, CacheStripes: planner.DefaultCacheStripes}
	want := steadyDigest(t, cfg, dur)
	for _, k := range []int{1, 2, 4} {
		if got := shardDigest(t, cfg, k, dur); got != want {
			t.Errorf("shards=%d digest %016x, want %016x (plain fleet)", k, got, want)
		}
	}
}

// TestShardsReproduceFleetFairQueue repeats the invariant under the
// DRR bottleneck.
func TestShardsReproduceFleetFairQueue(t *testing.T) {
	cfg := fleet.Config{N: 8, Seed: 7, Workers: 1, FairQueue: true, Canonical: true, CacheStripes: planner.DefaultCacheStripes}
	const dur = 20 * time.Second
	want := steadyDigest(t, cfg, dur)
	for _, k := range []int{1, 4} {
		if got := shardDigest(t, cfg, k, dur); got != want {
			t.Errorf("shards=%d digest %016x, want %016x (plain fleet)", k, got, want)
		}
	}
}

// TestShardsReproduceFleetN256 asserts the invariant at the
// benchmark's fleet size (skipped in -short: ~12 s of wall clock per
// run).
func TestShardsReproduceFleetN256(t *testing.T) {
	if testing.Short() {
		t.Skip("N=256 determinism sweep skipped in -short")
	}
	cfg := fleet.Config{N: 256, Seed: 1, Workers: 1, Canonical: true, CacheStripes: planner.DefaultCacheStripes}
	const dur = 30 * time.Second
	want := steadyDigest(t, cfg, dur)
	for _, k := range []int{1, 2, ResolveShards(0)} {
		if got := shardDigest(t, cfg, k, dur); got != want {
			t.Errorf("shards=%d digest %016x, want %016x (plain fleet)", k, got, want)
		}
	}
}

// churnHash runs the sharded churn lifecycle and returns its replay
// hash.
func churnHash(t *testing.T, n, k int, seed int64, d time.Duration) uint64 {
	t.Helper()
	sf := New(Config{
		Fleet:  fleet.Config{N: n, Seed: seed, Workers: 1, BeliefCfg: belief.Config{Recover: true}},
		Shards: k,
	})
	sf.EnableChurn(lifecycle.ChurnConfig{
		DepartProb: 0.04, CrashProb: 0.06, ArriveProb: 0.5,
		MinLive: n / 4,
	}, lifecycle.SupervisorConfig{}, chaos.Config{Seed: seed})
	sf.Run(d)
	if sf.Stats.Crashes+sf.Stats.Departures+sf.Stats.Arrivals == 0 {
		t.Fatalf("churn run produced no lifecycle events — schedule not exercising")
	}
	return sf.ReplayHash()
}

// TestChurnHashInvariantAcrossShards: the sharded churn lifecycle is
// bit-identical for every shard count.
func TestChurnHashInvariantAcrossShards(t *testing.T) {
	n, dur := 16, 60*time.Second
	want := churnHash(t, n, 1, 99, dur)
	for _, k := range []int{2, 4} {
		if got := churnHash(t, n, k, 99, dur); got != want {
			t.Errorf("shards=%d churn hash %016x, want %016x (shards=1)", k, got, want)
		}
	}
}

// TestChurnHashInvariantN256 repeats the churn invariant at N=256
// (skipped in -short).
func TestChurnHashInvariantN256(t *testing.T) {
	if testing.Short() {
		t.Skip("N=256 churn sweep skipped in -short")
	}
	n, dur := 256, 30*time.Second
	want := churnHash(t, n, 1, 5, dur)
	for _, k := range []int{2, ResolveShards(0)} {
		if got := churnHash(t, n, k, 5, dur); got != want {
			t.Errorf("shards=%d churn hash %016x, want %016x (shards=1)", k, got, want)
		}
	}
}

// TestRecycledFlowLandsOnHomeShard: a flow ID freed by a departure and
// reused by a later arrival must land on its predecessor's shard —
// the assignment is flow mod K, independent of membership history.
func TestRecycledFlowLandsOnHomeShard(t *testing.T) {
	sf := New(Config{Fleet: fleet.Config{N: 8, Seed: 3, Workers: 1}, Shards: 4})
	sf.start()
	// Retire flow 5, then admit a successor on the same ID.
	if m := sf.retire(packet.FlowID(5)); m == nil {
		t.Fatalf("flow 5 had no member to retire")
	}
	m := sf.admit(packet.FlowID(5), 0)
	if m.Gen != 1 {
		t.Fatalf("recycled flow generation = %d, want 1", m.Gen)
	}
	home := sf.Parts[5%4]
	if got := home.MemberAt(packet.FlowID(5)); got != m {
		t.Fatalf("recycled flow 5 not hosted by partition %d (flow mod K)", 5%4)
	}
	for i, p := range sf.Parts {
		if i == 5%4 {
			continue
		}
		if p.MemberAt(packet.FlowID(5)) != nil {
			t.Fatalf("partition %d also claims flow 5", i)
		}
	}
}

// TestResolveShards pins the shard-count policy: largest power of two
// dividing the cache stripe count.
func TestResolveShards(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 4, 6: 4, 8: 8, 15: 8, 16: 16, 64: 16}
	for req, want := range cases {
		if got := ResolveShards(req); got != want {
			t.Errorf("ResolveShards(%d) = %d, want %d", req, got, want)
		}
	}
}
