package emu

import (
	"context"
	"net"
	"testing"
	"time"

	"modelcc/internal/chaos"
	"modelcc/internal/trace"
)

func udpListen(t *testing.T) *net.UDPConn {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

// TestProxyChaosForwardFaults: a chaotic proxy still moves traffic, and
// its injectors account for every datagram they saw. This is the
// real-socket half of the chaos plumbing; the DES half is
// chaos.TestElementReplay.
func TestProxyChaosForwardFaults(t *testing.T) {
	target := udpListen(t)
	defer target.Close()

	faults := &chaos.Config{
		Seed:     7,
		DropProb: 0.3,
		DupProb:  0.1,
	}
	proxy, err := NewProxy("127.0.0.1:0", target.LocalAddr().String(), ProxyConfig{
		Trace: trace.Constant(1200000, 12000), // 100 pkt/s
		Chaos: faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	proxyDone := make(chan struct{})
	go func() { defer close(proxyDone); proxy.Run(ctx) }()

	client, err := net.DialUDP("udp", nil, proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const sent = 60
	payload := make([]byte, 1500)
	for i := 0; i < sent; i++ {
		if _, err := client.Write(payload); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Count arrivals at the target until the stream dries up.
	got := 0
	buf := make([]byte, 64*1024)
	for {
		target.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
		if _, _, err := target.ReadFromUDP(buf); err != nil {
			break
		}
		got++
	}

	proxy.Close()
	<-proxyDone
	fwd, _ := proxy.ChaosStats()
	t.Logf("sent=%d delivered=%d chaos=%+v", sent, got, fwd)
	if got == 0 {
		t.Fatal("chaotic proxy delivered nothing")
	}
	if fwd.Packets == 0 {
		t.Fatal("forward injector saw no packets")
	}
	if fwd.Dropped == 0 {
		t.Fatalf("30%% drop probability over %d packets produced no drops", fwd.Packets)
	}
	// Conservation: everything the injector passed arrived (loopback
	// does not lose), everything it dropped did not.
	expect := fwd.Packets - fwd.Dropped - fwd.Blackholed + fwd.Duplicated
	if int64(got) != expect {
		t.Fatalf("delivered %d, injector accounting says %d", got, expect)
	}
}
