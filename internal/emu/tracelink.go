// Package emu provides trace-driven link emulation: a simulator element
// (TraceLink) and a real-socket UDP proxy (Proxy, in proxy.go) that
// release one queued packet per delivery opportunity of a trace.Trace —
// the standard technique for reproducing cellular link behaviour without
// the cellular network.
package emu

import (
	"modelcc/internal/elements"
	"modelcc/internal/packet"
	"modelcc/internal/sim"
	"modelcc/internal/trace"
)

// TraceLink is a DES element: a tail-drop queue drained by the delivery
// opportunities of a trace. Cellular "bufferbloat" is a TraceLink with a
// multi-megabyte queue.
type TraceLink struct {
	loop    *sim.Loop
	tr      trace.Trace
	capBits int64
	next    elements.Node

	q        []packet.Packet
	usedBits int64
	armed    *sim.Event

	// Delivered and Drops count packets by flow.
	Delivered map[packet.FlowID]int
	Drops     map[packet.FlowID]int
	// QueueDepth samples the queue (bits) at each arrival, for
	// inspecting bufferbloat directly.
	MaxQueueBits int64
}

// NewTraceLink returns a trace-driven link with the given queue capacity
// delivering to next.
func NewTraceLink(loop *sim.Loop, tr trace.Trace, capBits int64, next elements.Node) *TraceLink {
	if err := tr.Validate(); err != nil {
		panic("emu: " + err.Error())
	}
	return &TraceLink{
		loop:      loop,
		tr:        tr,
		capBits:   capBits,
		next:      next,
		Delivered: make(map[packet.FlowID]int),
		Drops:     make(map[packet.FlowID]int),
	}
}

// SetNext implements elements.Wirer.
func (l *TraceLink) SetNext(n elements.Node) { l.next = n }

// UsedBits reports the current queue occupancy.
func (l *TraceLink) UsedBits() int64 { return l.usedBits }

// Receive implements elements.Node.
func (l *TraceLink) Receive(p packet.Packet) {
	if l.usedBits+p.Bits() > l.capBits {
		l.Drops[p.Flow]++
		return
	}
	l.q = append(l.q, p)
	l.usedBits += p.Bits()
	if l.usedBits > l.MaxQueueBits {
		l.MaxQueueBits = l.usedBits
	}
	l.arm()
}

// arm schedules delivery at the next opportunity if not already armed.
func (l *TraceLink) arm() {
	if l.armed != nil && !l.armed.Cancelled() {
		return
	}
	if len(l.q) == 0 {
		return
	}
	at, ok := l.tr.Next(l.loop.Now())
	if !ok {
		return // finite trace exhausted: the link is dead
	}
	l.armed = l.loop.Schedule(at, l.fire)
}

func (l *TraceLink) fire() {
	l.armed = nil
	if len(l.q) == 0 {
		return
	}
	p := l.q[0]
	copy(l.q, l.q[1:])
	l.q = l.q[:len(l.q)-1]
	l.usedBits -= p.Bits()
	l.Delivered[p.Flow]++
	if l.next != nil {
		l.next.Receive(p)
	}
	l.arm()
}
