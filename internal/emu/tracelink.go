// Package emu provides trace-driven link emulation: a simulator element
// (TraceLink) and a real-socket UDP proxy (Proxy, in proxy.go) that
// release one queued packet per delivery opportunity of a trace.Trace —
// the standard technique for reproducing cellular link behaviour without
// the cellular network.
package emu

import (
	"fmt"

	"modelcc/internal/elements"
	"modelcc/internal/packet"
	"modelcc/internal/sim"
	"modelcc/internal/trace"
)

// TraceLink is a DES element: a tail-drop queue drained by the delivery
// opportunities of a trace. Cellular "bufferbloat" is a TraceLink with a
// multi-megabyte queue.
type TraceLink struct {
	loop    *sim.Loop
	tr      trace.Trace
	capBits int64
	next    elements.Node

	q        []packet.Packet
	head     int
	usedBits int64
	deliverT *sim.Timer

	// Delivered and Drops count packets by flow.
	Delivered map[packet.FlowID]int
	Drops     map[packet.FlowID]int
	// QueueDepth samples the queue (bits) at each arrival, for
	// inspecting bufferbloat directly.
	MaxQueueBits int64
}

// NewTraceLink returns a trace-driven link with the given queue capacity
// delivering to next. Traces come from files and flags — external input,
// not programmer invariants — so an invalid one is an error, not a
// panic (NewProxy treats its trace the same way).
func NewTraceLink(loop *sim.Loop, tr trace.Trace, capBits int64, next elements.Node) (*TraceLink, error) {
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("emu: %w", err)
	}
	l := &TraceLink{
		loop:      loop,
		tr:        tr,
		capBits:   capBits,
		next:      next,
		Delivered: make(map[packet.FlowID]int),
		Drops:     make(map[packet.FlowID]int),
	}
	l.deliverT = sim.NewTimer(loop, l.fire)
	return l, nil
}

// SetNext implements elements.Wirer.
func (l *TraceLink) SetNext(n elements.Node) { l.next = n }

// UsedBits reports the current queue occupancy.
func (l *TraceLink) UsedBits() int64 { return l.usedBits }

// Receive implements elements.Node.
func (l *TraceLink) Receive(p packet.Packet) {
	if l.usedBits+p.Bits() > l.capBits {
		l.Drops[p.Flow]++
		return
	}
	l.q = append(l.q, p)
	l.usedBits += p.Bits()
	if l.usedBits > l.MaxQueueBits {
		l.MaxQueueBits = l.usedBits
	}
	l.arm()
}

// arm schedules delivery at the next opportunity if not already armed.
func (l *TraceLink) arm() {
	if l.deliverT.Armed() {
		return
	}
	if l.head == len(l.q) {
		return
	}
	at, ok := l.tr.Next(l.loop.Now())
	if !ok {
		return // finite trace exhausted: the link is dead
	}
	l.deliverT.ArmAt(at)
}

func (l *TraceLink) fire() {
	if l.head == len(l.q) {
		return
	}
	p := l.q[l.head]
	l.q[l.head] = packet.Packet{}
	l.head++
	// Reclaim the drained prefix once it dominates the slice, keeping
	// dequeues O(1) amortized without a ring buffer.
	if l.head > 64 && l.head*2 >= len(l.q) {
		l.q = l.q[:copy(l.q, l.q[l.head:])]
		l.head = 0
	}
	l.usedBits -= p.Bits()
	l.Delivered[p.Flow]++
	if l.next != nil {
		l.next.Receive(p)
	}
	l.arm()
}
