package emu

import (
	"testing"
	"time"

	"modelcc/internal/elements"
	"modelcc/internal/packet"
	"modelcc/internal/sim"
	"modelcc/internal/trace"
)

func mustTraceLink(t *testing.T, loop *sim.Loop, tr trace.Trace, capBits int64, next elements.Node) *TraceLink {
	t.Helper()
	link, err := NewTraceLink(loop, tr, capBits, next)
	if err != nil {
		t.Fatal(err)
	}
	return link
}

func TestTraceLinkDeliversAtOpportunities(t *testing.T) {
	loop := sim.New(1)
	col := elements.NewCollector(loop)
	tr := trace.Trace{
		Opportunities: []time.Duration{
			100 * time.Millisecond, 300 * time.Millisecond, 900 * time.Millisecond,
		},
		Period: time.Second,
	}
	link := mustTraceLink(t, loop, tr, 100*12000, col)

	for i := int64(0); i < 4; i++ {
		link.Receive(packet.New(packet.FlowSelf, i, 0))
	}
	loop.Run(2 * time.Second)

	want := []time.Duration{
		100 * time.Millisecond, 300 * time.Millisecond, 900 * time.Millisecond,
		1100 * time.Millisecond, // wraps into the next period
	}
	if len(col.Arrivals) != len(want) {
		t.Fatalf("delivered %d, want %d", len(col.Arrivals), len(want))
	}
	for i, a := range col.Arrivals {
		if a.At != want[i] {
			t.Errorf("delivery %d at %v, want %v", i, a.At, want[i])
		}
		if a.Packet.Seq != int64(i) {
			t.Errorf("delivery %d out of order (seq %d)", i, a.Packet.Seq)
		}
	}
}

func TestTraceLinkTailDrop(t *testing.T) {
	loop := sim.New(1)
	tr := trace.Constant(12000, 12000)
	link := mustTraceLink(t, loop, tr, 2*12000, elements.Discard)
	for i := int64(0); i < 5; i++ {
		link.Receive(packet.New(packet.FlowSelf, i, 0))
	}
	if link.Drops[packet.FlowSelf] != 3 {
		t.Errorf("drops = %d, want 3", link.Drops[packet.FlowSelf])
	}
	if link.UsedBits() != 2*12000 {
		t.Errorf("used = %d", link.UsedBits())
	}
}

func TestTraceLinkIdleThenBusy(t *testing.T) {
	loop := sim.New(1)
	col := elements.NewCollector(loop)
	tr := trace.Constant(120000, 12000) // 10 pkt/s
	link := mustTraceLink(t, loop, tr, 100*12000, col)

	// Packet arrives mid-period; must catch the next opportunity, not
	// a stale one.
	loop.Schedule(5*time.Second+42*time.Millisecond, func() {
		link.Receive(packet.New(packet.FlowSelf, 0, loop.Now()))
	})
	loop.Run(6 * time.Second)
	if len(col.Arrivals) != 1 {
		t.Fatalf("delivered %d", len(col.Arrivals))
	}
	if got := col.Arrivals[0].At; got <= 5*time.Second+42*time.Millisecond {
		t.Errorf("delivered at %v, before arrival", got)
	}
	if got := col.Arrivals[0].At; got > 5*time.Second+200*time.Millisecond {
		t.Errorf("delivered at %v, missed the next opportunity", got)
	}
}

func TestTraceLinkMaxQueueTracksBloat(t *testing.T) {
	loop := sim.New(1)
	tr := trace.Constant(12000, 12000) // 1 pkt/s drain
	link := mustTraceLink(t, loop, tr, 1<<20, elements.Discard)
	for i := int64(0); i < 50; i++ {
		link.Receive(packet.New(packet.FlowSelf, i, 0))
	}
	if link.MaxQueueBits != 50*12000 {
		t.Errorf("MaxQueueBits = %d, want %d", link.MaxQueueBits, 50*12000)
	}
}

func TestTraceLinkRejectsBadTrace(t *testing.T) {
	if _, err := NewTraceLink(sim.New(1), trace.Trace{}, 12000, elements.Discard); err == nil {
		t.Error("invalid trace did not error")
	}
}
