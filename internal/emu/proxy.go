package emu

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"modelcc/internal/chaos"
	"modelcc/internal/trace"
	"modelcc/internal/units"
)

// ProxyConfig shapes the emulated forward path of a Proxy.
type ProxyConfig struct {
	// Trace schedules delivery opportunities (wall-clock, from proxy
	// start).
	Trace trace.Trace
	// QueueBits bounds the forward queue (tail drop).
	QueueBits int64
	// Delay is added propagation delay on the forward path.
	Delay time.Duration
	// LossProb drops forwarded packets i.i.d. — the LOSS element on a
	// real path.
	LossProb float64
	// Seed drives the loss process.
	Seed int64
	// Chaos, when non-nil and enabled, injects a deterministic fault
	// schedule into both directions: the forward path draws from the
	// config's seed, the return (ack) path from Sub("ack"), and both
	// share the same absolute blackout and stall windows — one outage
	// severs the whole link, as real outages do.
	Chaos *chaos.Config
	// AckChaos, when non-nil and enabled, replaces the derived return-path
	// schedule: acks draw from this config instead of Chaos.Sub("ack").
	// This is how an asymmetric menu (e.g. heavy ack-loss bursts over a
	// clean-ish forward path) is expressed.
	AckChaos *chaos.Config
}

// Proxy is a mahimahi-style UDP link emulator: datagrams arriving on
// the client-facing socket traverse a trace-driven bottleneck queue
// (plus delay and stochastic loss) before being forwarded to the target;
// datagrams from the target return to the most recent client directly.
// One Proxy emulates one direction of one link, which matches the
// paper's model of a lossless, instant return path (§3.4).
//
// Close is idempotent and may be called concurrently with Run (or
// without ever calling Run); Run returns nil promptly after Close or
// context cancellation, with every goroutine it started joined.
type Proxy struct {
	cfg      ProxyConfig
	listen   *net.UDPConn
	upstream *net.UDPConn

	closeOnce sync.Once
	closed    chan struct{}
	// delivWG tracks in-flight delayed deliveries (propagation delay,
	// chaos reordering) so Run's shutdown joins them too.
	delivWG sync.WaitGroup

	mu       sync.Mutex
	client   *net.UDPAddr
	q        []queued
	usedBits int64
	rng      *rand.Rand

	// fwdInj/ackInj inject the chaos schedule; each is owned by exactly
	// one goroutine (scheduler / returnPath). Read their stats only
	// after Run returns.
	fwdInj, ackInj *chaos.Injector

	// forwarded, dropped, lost count packets through the emulated
	// link. They are written from the proxy's goroutines (including
	// delayed-delivery timers) while callers poll, so they are atomic;
	// read them through Forwarded/Dropped/Lost.
	forwarded, dropped, lost atomic.Int64
}

// Forwarded reports packets delivered through the emulated link.
func (p *Proxy) Forwarded() int64 { return p.forwarded.Load() }

// Dropped reports packets tail-dropped at the emulated queue.
func (p *Proxy) Dropped() int64 { return p.dropped.Load() }

// Lost reports packets dropped by the emulated LOSS element.
func (p *Proxy) Lost() int64 { return p.lost.Load() }

// ChaosStats reports the fault injectors' tallies for the forward and
// return paths. Only valid after Run has returned; zero-valued when the
// proxy runs without chaos.
func (p *Proxy) ChaosStats() (fwd, ack chaos.Stats) {
	if p.fwdInj != nil {
		fwd = p.fwdInj.Stats
	}
	if p.ackInj != nil {
		ack = p.ackInj.Stats
	}
	return fwd, ack
}

type queued struct {
	payload []byte
}

// NewProxy creates a proxy listening on listenAddr and forwarding to
// targetAddr.
func NewProxy(listenAddr, targetAddr string, cfg ProxyConfig) (*Proxy, error) {
	if err := cfg.Trace.Validate(); err != nil {
		return nil, err
	}
	la, err := net.ResolveUDPAddr("udp", listenAddr)
	if err != nil {
		return nil, err
	}
	lc, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, err
	}
	ta, err := net.ResolveUDPAddr("udp", targetAddr)
	if err != nil {
		lc.Close()
		return nil, err
	}
	uc, err := net.DialUDP("udp", nil, ta)
	if err != nil {
		lc.Close()
		return nil, err
	}
	if cfg.QueueBits <= 0 {
		cfg.QueueBits = units.BytesToBits(1 << 20)
	}
	p := &Proxy{
		cfg:      cfg,
		listen:   lc,
		upstream: uc,
		closed:   make(chan struct{}),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.Chaos != nil && cfg.Chaos.Enabled() {
		p.fwdInj = chaos.New(*cfg.Chaos)
		p.ackInj = chaos.New(cfg.Chaos.Sub("ack"))
	}
	if cfg.AckChaos != nil && cfg.AckChaos.Enabled() {
		p.ackInj = chaos.New(*cfg.AckChaos)
	}
	return p, nil
}

// Addr reports the client-facing address (useful with ":0" listeners).
func (p *Proxy) Addr() *net.UDPAddr { return p.listen.LocalAddr().(*net.UDPAddr) }

// Close releases both sockets and unblocks Run. Safe to call any number
// of times, from any goroutine.
func (p *Proxy) Close() {
	p.closeOnce.Do(func() {
		close(p.closed)
		p.listen.Close()
		p.upstream.Close()
	})
}

// Run operates the proxy until ctx is cancelled or Close is called. It
// returns nil in both cases, after joining every goroutine it started
// (including in-flight delayed deliveries).
func (p *Proxy) Run(ctx context.Context) error {
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { defer wg.Done(); p.clientReader(ctx) }()
	go func() { defer wg.Done(); p.scheduler(ctx, start) }()
	go func() { defer wg.Done(); p.returnPath(ctx, start) }()
	select {
	case <-ctx.Done():
	case <-p.closed:
	}
	// Closed sockets already error their readers out; expired deadlines
	// cover the cancellation-without-Close case.
	p.listen.SetReadDeadline(time.Now())
	p.upstream.SetReadDeadline(time.Now())
	wg.Wait()
	p.delivWG.Wait()
	return nil
}

// done reports whether the proxy should stop (context or Close).
func (p *Proxy) done(ctx context.Context) bool {
	if ctx.Err() != nil {
		return true
	}
	select {
	case <-p.closed:
		return true
	default:
		return false
	}
}

// clientReader enqueues client datagrams onto the emulated link.
func (p *Proxy) clientReader(ctx context.Context) {
	buf := make([]byte, 64*1024)
	for {
		n, addr, err := p.listen.ReadFromUDP(buf)
		if err != nil {
			if p.done(ctx) || errors.Is(err, net.ErrClosed) {
				return
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue
			}
			return
		}
		bits := units.BytesToBits(n)
		p.mu.Lock()
		p.client = addr
		if p.usedBits+bits > p.cfg.QueueBits {
			p.dropped.Add(1)
			p.mu.Unlock()
			continue
		}
		p.q = append(p.q, queued{payload: append([]byte(nil), buf[:n]...)})
		p.usedBits += bits
		p.mu.Unlock()
	}
}

// scheduler releases one queued datagram per trace opportunity, runs it
// through the forward-path fault injector, and delivers it upstream.
func (p *Proxy) scheduler(ctx context.Context, start time.Time) {
	for {
		if p.done(ctx) {
			return
		}
		elapsed := time.Since(start)
		at, ok := p.cfg.Trace.Next(elapsed)
		if !ok {
			return // finite trace exhausted
		}
		select {
		case <-ctx.Done():
			return
		case <-p.closed:
			return
		case <-time.After(at - elapsed):
		}
		p.mu.Lock()
		if len(p.q) == 0 {
			p.mu.Unlock()
			continue
		}
		item := p.q[0]
		p.q = p.q[1:]
		p.usedBits -= units.BytesToBits(len(item.payload))
		p.mu.Unlock()

		if p.cfg.LossProb > 0 && p.rng.Float64() < p.cfg.LossProb {
			p.lost.Add(1)
			continue
		}
		delay := p.cfg.Delay
		if p.fwdInj != nil {
			nowD := time.Since(start)
			if stall, ok := p.fwdInj.StallUntil(nowD); ok {
				// A stalled proxy process: nothing moves, then everything
				// resumes (the queue keeps absorbing meanwhile).
				if !p.sleep(ctx, stall) {
					return
				}
			}
			v := p.fwdInj.Next(time.Since(start))
			if v.Drop {
				continue
			}
			if v.Corrupt {
				v.ApplyCorrupt(item.payload)
			}
			delay += v.Delay
			if v.Duplicate {
				p.deliverUpstream(item.payload, delay)
			}
		}
		p.deliverUpstream(item.payload, delay)
	}
}

// deliverUpstream writes one datagram toward the target, after delay.
// Delayed writes are tracked so shutdown joins them; the payload is not
// copied — each queued item is delivered at most twice and corruption is
// applied before scheduling.
func (p *Proxy) deliverUpstream(payload []byte, delay time.Duration) {
	deliver := func() {
		if _, err := p.upstream.Write(payload); err == nil {
			p.forwarded.Add(1)
		}
	}
	if delay <= 0 {
		deliver()
		return
	}
	p.delivWG.Add(1)
	time.AfterFunc(delay, func() {
		defer p.delivWG.Done()
		select {
		case <-p.closed:
		default:
			deliver()
		}
	})
}

// sleep pauses for d or until shutdown; it reports whether the full
// pause elapsed.
func (p *Proxy) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-p.closed:
		return false
	case <-t.C:
		return true
	}
}

// returnPath relays target responses back to the client — the paper's
// lossless, instant acknowledgment path, unless the chaos config says
// otherwise (ack loss is precisely the fault the ISENDER's inference
// must survive).
func (p *Proxy) returnPath(ctx context.Context, start time.Time) {
	buf := make([]byte, 64*1024)
	for {
		n, err := p.upstream.Read(buf)
		if err != nil {
			if p.done(ctx) || errors.Is(err, net.ErrClosed) {
				return
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue
			}
			return
		}
		p.mu.Lock()
		client := p.client
		p.mu.Unlock()
		if client == nil {
			continue
		}
		var delay time.Duration
		if p.ackInj != nil {
			v := p.ackInj.Next(time.Since(start))
			if v.Drop {
				continue
			}
			if v.Corrupt {
				v.ApplyCorrupt(buf[:n])
			}
			delay = v.Delay
			if v.Duplicate {
				p.deliverClient(client, buf[:n], delay, true)
			}
		}
		p.deliverClient(client, buf[:n], delay, delay > 0)
	}
}

// deliverClient writes one datagram back to the client after delay,
// copying the payload when it must outlive the caller's buffer.
func (p *Proxy) deliverClient(client *net.UDPAddr, payload []byte, delay time.Duration, copyPayload bool) {
	if copyPayload {
		payload = append([]byte(nil), payload...)
	}
	if delay <= 0 {
		p.listen.WriteToUDP(payload, client)
		return
	}
	p.delivWG.Add(1)
	time.AfterFunc(delay, func() {
		defer p.delivWG.Done()
		select {
		case <-p.closed:
		default:
			p.listen.WriteToUDP(payload, client)
		}
	})
}
