package emu

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"modelcc/internal/trace"
	"modelcc/internal/units"
)

// ProxyConfig shapes the emulated forward path of a Proxy.
type ProxyConfig struct {
	// Trace schedules delivery opportunities (wall-clock, from proxy
	// start).
	Trace trace.Trace
	// QueueBits bounds the forward queue (tail drop).
	QueueBits int64
	// Delay is added propagation delay on the forward path.
	Delay time.Duration
	// LossProb drops forwarded packets i.i.d. — the LOSS element on a
	// real path.
	LossProb float64
	// Seed drives the loss process.
	Seed int64
}

// Proxy is a mahimahi-style UDP link emulator: datagrams arriving on
// the client-facing socket traverse a trace-driven bottleneck queue
// (plus delay and stochastic loss) before being forwarded to the target;
// datagrams from the target return to the most recent client directly.
// One Proxy emulates one direction of one link, which matches the
// paper's model of a lossless, instant return path (§3.4).
type Proxy struct {
	cfg      ProxyConfig
	listen   *net.UDPConn
	upstream *net.UDPConn

	mu       sync.Mutex
	client   *net.UDPAddr
	q        []queued
	usedBits int64
	rng      *rand.Rand

	// forwarded, dropped, lost count packets through the emulated
	// link. They are written from the proxy's goroutines (including
	// delayed-delivery timers) while callers poll, so they are atomic;
	// read them through Forwarded/Dropped/Lost.
	forwarded, dropped, lost atomic.Int64
}

// Forwarded reports packets delivered through the emulated link.
func (p *Proxy) Forwarded() int64 { return p.forwarded.Load() }

// Dropped reports packets tail-dropped at the emulated queue.
func (p *Proxy) Dropped() int64 { return p.dropped.Load() }

// Lost reports packets dropped by the emulated LOSS element.
func (p *Proxy) Lost() int64 { return p.lost.Load() }

type queued struct {
	payload []byte
}

// NewProxy creates a proxy listening on listenAddr and forwarding to
// targetAddr.
func NewProxy(listenAddr, targetAddr string, cfg ProxyConfig) (*Proxy, error) {
	if err := cfg.Trace.Validate(); err != nil {
		return nil, err
	}
	la, err := net.ResolveUDPAddr("udp", listenAddr)
	if err != nil {
		return nil, err
	}
	lc, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, err
	}
	ta, err := net.ResolveUDPAddr("udp", targetAddr)
	if err != nil {
		lc.Close()
		return nil, err
	}
	uc, err := net.DialUDP("udp", nil, ta)
	if err != nil {
		lc.Close()
		return nil, err
	}
	if cfg.QueueBits <= 0 {
		cfg.QueueBits = units.BytesToBits(1 << 20)
	}
	return &Proxy{
		cfg:      cfg,
		listen:   lc,
		upstream: uc,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// Addr reports the client-facing address (useful with ":0" listeners).
func (p *Proxy) Addr() *net.UDPAddr { return p.listen.LocalAddr().(*net.UDPAddr) }

// Close releases both sockets.
func (p *Proxy) Close() {
	p.listen.Close()
	p.upstream.Close()
}

// Run operates the proxy until ctx is cancelled.
func (p *Proxy) Run(ctx context.Context) error {
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { defer wg.Done(); p.clientReader(ctx) }()
	go func() { defer wg.Done(); p.scheduler(ctx, start) }()
	go func() { defer wg.Done(); p.returnPath(ctx) }()
	<-ctx.Done()
	p.listen.SetReadDeadline(time.Now())
	p.upstream.SetReadDeadline(time.Now())
	wg.Wait()
	return nil
}

// clientReader enqueues client datagrams onto the emulated link.
func (p *Proxy) clientReader(ctx context.Context) {
	buf := make([]byte, 64*1024)
	for {
		n, addr, err := p.listen.ReadFromUDP(buf)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				if ctx.Err() != nil {
					return
				}
				continue
			}
			return
		}
		bits := units.BytesToBits(n)
		p.mu.Lock()
		p.client = addr
		if p.usedBits+bits > p.cfg.QueueBits {
			p.dropped.Add(1)
			p.mu.Unlock()
			continue
		}
		p.q = append(p.q, queued{payload: append([]byte(nil), buf[:n]...)})
		p.usedBits += bits
		p.mu.Unlock()
	}
}

// scheduler releases one queued datagram per trace opportunity.
func (p *Proxy) scheduler(ctx context.Context, start time.Time) {
	for {
		if ctx.Err() != nil {
			return
		}
		elapsed := time.Since(start)
		at, ok := p.cfg.Trace.Next(elapsed)
		if !ok {
			return // finite trace exhausted
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(at - elapsed):
		}
		p.mu.Lock()
		if len(p.q) == 0 {
			p.mu.Unlock()
			continue
		}
		item := p.q[0]
		p.q = p.q[1:]
		p.usedBits -= units.BytesToBits(len(item.payload))
		p.mu.Unlock()

		if p.cfg.LossProb > 0 && p.rng.Float64() < p.cfg.LossProb {
			p.lost.Add(1)
			continue
		}
		deliver := func() {
			if _, err := p.upstream.Write(item.payload); err == nil {
				p.forwarded.Add(1)
			}
		}
		if p.cfg.Delay > 0 {
			time.AfterFunc(p.cfg.Delay, deliver)
		} else {
			deliver()
		}
	}
}

// returnPath relays target responses straight back to the client — the
// paper's lossless, instant acknowledgment path.
func (p *Proxy) returnPath(ctx context.Context) {
	buf := make([]byte, 64*1024)
	for {
		n, err := p.upstream.Read(buf)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				if ctx.Err() != nil {
					return
				}
				continue
			}
			return
		}
		p.mu.Lock()
		client := p.client
		p.mu.Unlock()
		if client == nil {
			continue
		}
		p.listen.WriteToUDP(buf[:n], client)
	}
}
