package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTransmitTime(t *testing.T) {
	tests := []struct {
		name string
		bits int64
		rate BitRate
		want time.Duration
	}{
		{"one packet at paper link speed", 12000, 12000, time.Second},
		{"half packet", 6000, 12000, 500 * time.Millisecond},
		{"zero bits", 0, 12000, 0},
		{"negative bits", -5, 12000, 0},
		{"dead link", 12000, 0, Forever},
		{"negative rate", 12000, -1, Forever},
		{"fast link", 12000, 12_000_000, time.Microsecond * 1000},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := TransmitTime(tt.bits, tt.rate); got != tt.want {
				t.Errorf("TransmitTime(%d, %v) = %v, want %v", tt.bits, tt.rate, got, tt.want)
			}
		})
	}
}

func TestBitsOver(t *testing.T) {
	tests := []struct {
		name string
		rate BitRate
		d    time.Duration
		want int64
	}{
		{"one second at link speed", 12000, time.Second, 12000},
		{"hundred ms", 12000, 100 * time.Millisecond, 1200},
		{"zero duration", 12000, 0, 0},
		{"negative duration", 12000, -time.Second, 0},
		{"zero rate", 0, time.Second, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := BitsOver(tt.rate, tt.d); got != tt.want {
				t.Errorf("BitsOver(%v, %v) = %d, want %d", tt.rate, tt.d, got, tt.want)
			}
		})
	}
}

func TestByteBitConversions(t *testing.T) {
	if got := BytesToBits(1500); got != 12000 {
		t.Errorf("BytesToBits(1500) = %d, want 12000", got)
	}
	if got := BitsToBytes(12000); got != 1500 {
		t.Errorf("BitsToBytes(12000) = %d, want 1500", got)
	}
	if got := BitsToBytes(12001); got != 1501 {
		t.Errorf("BitsToBytes(12001) = %d, want 1501 (round up)", got)
	}
}

// TestRoundTripProperty checks bits -> bytes -> bits is lossless for
// byte-aligned values.
func TestRoundTripProperty(t *testing.T) {
	f := func(n uint16) bool {
		bits := BytesToBits(int(n))
		return BitsToBytes(bits) == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTransmitTimeMonotone checks that transmit time is monotone
// non-decreasing in payload size.
func TestTransmitTimeMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		lo, hi := int64(a), int64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return TransmitTime(lo, 12000) <= TransmitTime(hi, 12000)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSecondsToDuration(t *testing.T) {
	if got := SecondsToDuration(1.5); got != 1500*time.Millisecond {
		t.Errorf("SecondsToDuration(1.5) = %v", got)
	}
	if got := SecondsToDuration(-2); got != 0 {
		t.Errorf("SecondsToDuration(-2) = %v, want 0", got)
	}
	if got := SecondsToDuration(math.MaxFloat64); got != Forever {
		t.Errorf("SecondsToDuration(huge) = %v, want Forever", got)
	}
}

func TestDurationMinMax(t *testing.T) {
	a, b := time.Second, 2*time.Second
	if DurationMin(a, b) != a || DurationMin(b, a) != a {
		t.Error("DurationMin wrong")
	}
	if DurationMax(a, b) != b || DurationMax(b, a) != b {
		t.Error("DurationMax wrong")
	}
}

func TestMillis(t *testing.T) {
	if got := Millis(1500 * time.Millisecond); got != 1500 {
		t.Errorf("Millis(1.5s) = %v, want 1500", got)
	}
	if got := Millis(0); got != 0 {
		t.Errorf("Millis(0) = %v, want 0", got)
	}
}

func TestBitRateString(t *testing.T) {
	tests := []struct {
		r    BitRate
		want string
	}{
		{12000, "12 kbit/s"},
		{500, "500 bit/s"},
		{2.5e6, "2.5 Mbit/s"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("(%v).String() = %q, want %q", float64(tt.r), got, tt.want)
		}
	}
}
