// Package units provides the small set of quantity helpers shared by the
// simulator, the inference model, and the transports: bit counts, bit
// rates, and conversions between bits and virtual time.
//
// Virtual time throughout the repository is a time.Duration measured from
// the start of an experiment. Rates are float64 bits per second, matching
// the paper's parameterization (e.g. the Figure 2 link is c = 12,000 bits
// per second, one 1500-byte packet per second).
package units

import (
	"fmt"
	"math"
	"time"
)

// BitRate is a link or source rate in bits per second.
type BitRate float64

// Common rates used by the paper's experiments and the trace generator.
const (
	// BitPerSecond is the unit rate.
	BitPerSecond BitRate = 1
	// KilobitPerSecond is 1000 bits per second.
	KilobitPerSecond BitRate = 1e3
	// MegabitPerSecond is 10^6 bits per second.
	MegabitPerSecond BitRate = 1e6
)

// String renders the rate with an adaptive unit, e.g. "12 kbit/s".
func (r BitRate) String() string {
	switch {
	case r >= MegabitPerSecond:
		return fmt.Sprintf("%g Mbit/s", float64(r)/1e6)
	case r >= KilobitPerSecond:
		return fmt.Sprintf("%g kbit/s", float64(r)/1e3)
	default:
		return fmt.Sprintf("%g bit/s", float64(r))
	}
}

// BytesToBits converts a byte count to bits.
func BytesToBits(n int) int64 { return int64(n) * 8 }

// BitsToBytes converts a bit count to whole bytes, rounding up.
func BitsToBytes(bits int64) int {
	return int((bits + 7) / 8)
}

// TransmitTime reports how long a payload of the given number of bits
// occupies a link of rate r: bits / r. It returns 0 for non-positive bit
// counts and a very large duration for non-positive rates (the payload
// never finishes serializing on a dead link).
func TransmitTime(bits int64, r BitRate) time.Duration {
	if bits <= 0 {
		return 0
	}
	if r <= 0 {
		return Forever
	}
	sec := float64(bits) / float64(r)
	return SecondsToDuration(sec)
}

// BitsOver reports how many whole bits a link of rate r serializes in d.
func BitsOver(r BitRate, d time.Duration) int64 {
	if r <= 0 || d <= 0 {
		return 0
	}
	return int64(float64(r) * d.Seconds())
}

// Forever is a sentinel duration far beyond any experiment horizon. It is
// used for "never" deadlines; it is about 292 years.
const Forever = time.Duration(math.MaxInt64)

// SecondsToDuration converts a float64 second count to a time.Duration,
// saturating at Forever instead of overflowing.
func SecondsToDuration(sec float64) time.Duration {
	if sec <= 0 {
		return 0
	}
	ns := sec * float64(time.Second)
	if ns >= float64(math.MaxInt64) {
		return Forever
	}
	return time.Duration(ns)
}

// DurationMin returns the smaller of a and b.
func DurationMin(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// DurationMax returns the larger of a and b.
func DurationMax(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// Millis reports d as a float64 number of milliseconds. The paper's
// instantaneous utility discounts by the number of milliseconds until a
// packet's delivery, so this conversion appears throughout the utility
// code.
func Millis(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
