// Crosstraffic: the paper's Figure 3 scenario end to end — the ISENDER
// shares a 12 kbit/s bottleneck with intermittent cross traffic it can
// only infer, under 20% stochastic loss, at two different cross-traffic
// priorities.
//
//	go run ./examples/crosstraffic
package main

import (
	"fmt"
	"time"

	"modelcc/internal/experiments"
)

func main() {
	const duration = 300 * time.Second
	fmt.Println("Running the Figure 3 experiment (two α values, 300 virtual seconds each)...")
	fmt.Println("Cross traffic uses 70% of the link during 0-100s and 200-300s.")
	fmt.Println()

	res := experiments.RunFig3(42, duration, 1.0, 5)
	fmt.Print(res.Render())

	fmt.Println()
	for i, run := range res.Runs {
		contention := run.AckedSeq.Rate(30*time.Second, 95*time.Second)
		quiet := run.AckedSeq.Rate(140*time.Second, 195*time.Second)
		fmt.Printf("α=%-4g  contention rate %.2f pkt/s   quiet rate %.2f pkt/s   buffer drops %d\n",
			res.Alphas[i], contention, quiet,
			run.OwnBufferDrops+run.CrossBufferDrops)
	}
	fmt.Println("\nHigher α defers more while the cross traffic is on; both send at the")
	fmt.Println("link speed (1 pkt/s) once they infer the cross traffic stopped.")
}
