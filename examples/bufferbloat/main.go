// Bufferbloat: the paper's Figure 1 motivation — what a loss-based TCP
// does to a deeply buffered cellular link — next to what the model-based
// sender avoids by construction.
//
//	go run ./examples/bufferbloat
package main

import (
	"fmt"
	"time"

	"modelcc/internal/experiments"
)

func main() {
	fmt.Println("TCP Reno downloading over a deeply buffered LTE-like link (120 virtual seconds)...")
	res := experiments.RunFig1(experiments.Fig1Config{Duration: 120 * time.Second, Seed: 3})
	fmt.Print(res.Render())

	fmt.Println()
	fmt.Printf("The propagation RTT is 50 ms, yet the median measured RTT is %.0f ms\n", res.MedianRTT*1000)
	fmt.Printf("and the worst is %.1f s: the sender keeps the buffer full because loss\n", res.MaxRTT)
	fmt.Println("is its only congestion signal. The paper's Verizon LTE measurement")
	fmt.Println("showed the same mechanism reaching 10 seconds.")
}
