// Udpdemo: the full stack over real sockets — ISENDER -> trace-driven
// UDP link emulator -> RECEIVER, all on loopback. The sender starts
// uncertain about the emulated link's rate and discovers it from
// acknowledgment timings alone.
//
//	go run ./examples/udpdemo
package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/core"
	"modelcc/internal/emu"
	"modelcc/internal/model"
	"modelcc/internal/planner"
	"modelcc/internal/trace"
	"modelcc/internal/transport"
	"modelcc/internal/units"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "udpdemo:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Receiver.
	recvConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return err
	}
	defer recvConn.Close()
	recv := transport.NewReceiver(recvConn)
	go recv.Run(ctx)

	// Emulated link: constant 120 kbit/s (10 packets/second).
	const linkRate = 120000
	proxy, err := emu.NewProxy("127.0.0.1:0", recvConn.LocalAddr().String(), emu.ProxyConfig{
		Trace:     trace.Constant(linkRate, 12000),
		QueueBits: 120000, // bits: a 10-packet queue
		Delay:     5 * time.Millisecond,
		Seed:      1,
	})
	if err != nil {
		return err
	}
	defer proxy.Close()
	go proxy.Run(ctx)

	// Sender: uncertain about the link rate (60-180 kbit/s prior).
	sndConn, err := net.DialUDP("udp", nil, proxy.Addr())
	if err != nil {
		return err
	}
	defer sndConn.Close()

	prior := model.Prior{
		LinkRate:      model.PriorRange{Lo: 60000, Hi: 180000, N: 5},
		BufferCapBits: model.PriorRange{Lo: 960000, Hi: 960000, N: 1},
		FullnessSteps: 1,
	}
	states, _ := prior.Enumerate()
	bel := belief.NewExact(states, belief.Config{
		SoftSigma: 100 * time.Millisecond,
		Relax:     true,
	})
	plan := planner.DefaultConfig()
	plan.MaxDelay = 400 * time.Millisecond
	plan.Grid = 50 * time.Millisecond
	plan.Horizon = 5 * time.Second
	isender := core.NewSender(bel, plan)
	snd := transport.NewSender(sndConn, isender, 1500)

	fmt.Printf("Emulated link: %v via %v; prior: 60-180 kbit/s\n",
		units.BitRate(linkRate), proxy.Addr())
	fmt.Println("Running for 8 wall-clock seconds...")

	stats, err := snd.Run(ctx, 8*time.Second)
	if err != nil && err != context.Canceled {
		return err
	}

	e := isender.Estimates()
	fmt.Printf("\nsent=%d acked=%d mean one-way delay=%v wakes=%d\n",
		stats.Sent, stats.Acked, stats.MeanOWD.Round(time.Millisecond), stats.Wakes)
	fmt.Printf("posterior E[link rate]=%v (truth: %v); %d hypotheses standing\n",
		e.ELinkRate, units.BitRate(linkRate), e.N)
	fmt.Printf("proxy: forwarded=%d dropped=%d\n", proxy.Forwarded(), proxy.Dropped())
	if stats.Acked == 0 {
		return fmt.Errorf("no packets acknowledged")
	}
	return nil
}
