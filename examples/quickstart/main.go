// Quickstart: build an ISENDER by hand — a prior, a utility function, a
// planner — and run it against a ground-truth network it has never seen,
// watching the posterior collapse onto the true parameters.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"time"

	"modelcc/internal/belief"
	"modelcc/internal/core"
	"modelcc/internal/model"
	"modelcc/internal/packet"
	"modelcc/internal/planner"
	"modelcc/internal/utility"
)

func main() {
	// 1. The sender's uncertainty: link speed between 8 and 20 kbit/s,
	//    buffer fullness unknown. (The paper's prior, simplified.)
	// FullnessSteps 9 puts every whole-packet fullness (0..8 packets)
	// on the grid: like the paper, the prior must include the truth as
	// one possibility or rejection sampling will (correctly) eliminate
	// every hypothesis.
	prior := model.Prior{
		LinkRate:      model.PriorRange{Lo: 8000, Hi: 20000, N: 13},
		BufferCapBits: model.PriorRange{Lo: 96000, Hi: 96000, N: 1},
		FullnessSteps: 9,
	}
	states, _ := prior.Enumerate()
	bel := belief.NewExact(states, belief.Config{})

	// 2. The explicit utility function the sender maximizes.
	util := utility.Default() // bits discounted by delivery delay

	// 3. The planner: "send now" vs "sleep until t", argmax expected
	//    utility over the belief.
	plan := planner.DefaultConfig()
	plan.Util = util
	sender := core.NewSender(bel, plan)

	// 4. The true network the sender must discover: 12 kbit/s, buffer
	//    initially holding 3 packets of backlog.
	actual := model.Params{LinkRate: 12000, BufferCapBits: 96000, InitFullBits: 36000}
	truth := model.NewTruth(actual, false, model.GateFixed, 0, rand.New(rand.NewSource(7)))

	fmt.Println("time     action            posterior E[link]   hypotheses")
	now := time.Duration(0)
	var inject []model.Send
	act := sender.Wake(now, nil)
	inject = append(inject, act.Sends...)
	wakeAt := act.WakeAt

	for now < 30*time.Second {
		next := 30 * time.Second
		if wakeAt > now && wakeAt < next {
			next = wakeAt
		}
		if tn := truth.NextTransition(); tn > now && tn < next {
			next = tn
		}
		evs := truth.AdvanceTo(next, inject)
		inject = inject[:0]
		now = next

		var acks []packet.Ack
		for _, ev := range evs {
			if ev.Kind == model.OwnDelivered {
				acks = append(acks, packet.Ack{Seq: ev.Seq, ReceivedAt: ev.At})
			}
		}
		if len(acks) > 0 || now >= wakeAt {
			act = sender.Wake(now, acks)
			inject = append(inject, act.Sends...)
			if act.WakeAt <= now {
				act.WakeAt = now + 10*time.Millisecond
			}
			wakeAt = act.WakeAt

			e := sender.Estimates()
			what := "sleep"
			if len(act.Sends) > 0 {
				what = fmt.Sprintf("send seq %d", act.Sends[0].Seq)
			}
			fmt.Printf("%7.2fs  %-16s  %8.0f bit/s   %d\n",
				now.Seconds(), what, float64(e.ELinkRate), e.N)
		}
	}
	fmt.Printf("\nsent %d packets, %d acked; true link was %v\n",
		sender.Sent, sender.Acked, actual.LinkRate)
}
