// Package modelcc is a from-scratch Go reproduction of "End-to-End
// Transmission Control by Modeling Uncertainty about the Network State"
// (Winstein & Balakrishnan, HotNets 2011): model-based congestion
// control in which the endpoint maintains a probability distribution
// over possible network configurations and at every moment takes the
// action maximizing the expected value of an explicit utility function.
//
// See README.md for a tour, DESIGN.md for the system inventory and the
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate every figure.
//
// # Parallelism
//
// The inference and planning hot paths run on a shared rollout engine
// (internal/rollout): a bounded worker pool with per-worker scratch
// arenas that shards per-hypothesis work. The width is a knob at every
// layer — belief.Config.Workers, planner.Config.Workers, and
// experiments.ISenderConfig.Workers, which forwards to both — where 0
// means GOMAXPROCS and 1 forces the serial path. Results are
// bit-identical for every width: workers write only per-index slots,
// reductions run in index order, and the particle filter gives each
// particle a private random stream derived from the parent seed
// (TestDecideParallelEquivalence, TestExactParallelEquivalence, and
// TestParticleParallelEquivalence assert this).
//
// # Fleets
//
// internal/fleet answers §3.5's open multi-sender question at scale: N
// coexisting ISENDERs (2 to thousands) share one bottleneck inside one
// process on the discrete-event loop. Three mechanisms make a large
// fleet affordable — one rollout pool whose scratch arenas serve every
// member (belief.Config.Pool / planner.Config.Pool), a central
// scheduler that batches same-instant acknowledgments into one belief
// update per sender and staggers decision epochs across the fleet, and
// a shared planner.PolicyCache so members in recurring near-identical
// situations reuse one computed decision. Small fleets (N <= 4) keep
// the two-flow coexistence experiments' full model resolution and the
// paper's no-overflow politeness; larger fleets deliberately coarsen
// the model (cross traffic in aggregate chunks via
// model.Params.CrossPktBits, a wider gate-toggle grid) to stay bounded,
// and experiments.FairnessSweep measures what that trade costs: under a
// FIFO bottleneck, fairness degrades with N as winners capture the
// link, while the deficit-round-robin FairQueue restores a near-even
// split. The two-flow coexistence experiments are now thin layers over
// the same machinery (fleet.Member, a fleet of N = 2), and
// cmd/fleetsim drives sweeps from the command line. Fleet runs are
// bit-identical for any Workers width, like everything else here.
//
// # Compiled policy tables
//
// internal/policy turns the fleet's shared planner.PolicyCache from a
// per-run warm cache into an offline-compiled, persistent control map.
// policy.Compile replays fleet workloads and captures every
// fingerprint → action pair the live planner computes into a
// versioned flat table (a header binding the file to the model prior
// and fingerprint quanta via policy.HashPrior, then fixed-width
// records sorted by fingerprint); policy.Open mmaps it read-only and
// serves lookups allocation-free in effectively O(1) (a 4096-bucket
// prefix index over a binary search). The table is wired in as
// fleet.Config.Table, making it rung 0 of planner.Guard's degradation
// ladder: a covered belief is served the recorded action bit-identical
// to what live planning would compute, an uncovered one falls through
// to live planning and can be appended to a sidecar miss log
// (policy.MissLog) that seeds the next compile via policy.Merge. Every
// record carries a second, independently-seeded verification hash, so
// a fingerprint collision is detected and treated as a miss rather
// than served a wrong action. cmd/policyc exposes
// compile/inspect/verify/merge; BENCH_4.json records the measured
// serve-path numbers (hit rate, utility parity with live planning,
// decision-latency percentiles).
//
// # Failure model
//
// The runtime degrades instead of panicking. internal/chaos supplies a
// seeded, replayable fault schedule — ack-loss bursts, reordering,
// duplication, byte corruption, multi-second blackouts, proxy stalls,
// clock jumps — that plugs into both the real-socket path
// (emu.ProxyConfig.Chaos / AckChaos) and the DES path (chaos.Element,
// experiments.RunChaos), so one fault trace replays bit-identically in
// either world. Against it: internal/wire returns typed errors for any
// malformed datagram (fuzzed, corpus checked in); internal/transport
// polls with read deadlines, retries with capped backoff, clamps
// non-monotone clocks, and arms wake timers in the logical clock
// domain; internal/belief recovers from likelihood collapse by
// deterministically re-seeding from the prior (belief.Config.Recover);
// and internal/planner bounds every decision with planner.Guard's
// degradation ladder — the compiled policy table when one is wired,
// else live Decide within the budget, else the quantized PolicyCache
// entry, else the last safe action, else sleep one grid step. cmd/soak runs the whole stack through the standard
// fault menu and records the invariants in BENCH_3.json; see README.md
// ("Failure model").
//
// # Shard fault tolerance
//
// internal/shard runs the fleet's flows on K parallel DES loops under
// a windowed conservative-lookahead protocol whose results are
// bit-identical for every shard count; internal/shard/fault.go makes
// that split survivable. Shards checkpoint resident members
// incrementally at window barriers through the internal/lifecycle
// codec (checkpoint stores are topology-free: K = 1 and K = 8 produce
// byte-identical bytes). Deterministic kill and stall schedules are
// drawn from chaos.Sub("shardfault") over virtual shards — the 16
// policy-cache stripe residue classes — so the affected member set is
// K-invariant; on a kill, flows re-home onto the next surviving
// partition in ring order, restore hot/warm/cold from the latest
// barrier checkpoint, and the dead generation's post-checkpoint
// in-flight sends are fenced at the coordinator's peek so no
// generation's delivery or drop accounting ever merges across a
// failover. A wall-clock watchdog (EnableWatchdog) pins an
// overrunning partition's members to planner.Guard's degradation
// ladder for the next window and counts every decision served that
// way.
//
// Three restart/degradation ladders therefore compose orthogonally:
// the shard failover ladder (how a flow comes back on a surviving
// partition), the lifecycle.Supervisor restart ladder (how a churned
// or crashed member comes back on its own partition), and the
// planner.Guard degradation ladder (what a live member does when a
// decision or window runs over budget). The replay hash, failover
// counters, fence counts, and restore records are bit-identical for
// shards in {1, 2, 4, 8} under a fixed seed, with or without churn
// layered on top; BENCH_7.json records the measured recovery numbers
// (virtual-time MTTR and post-failover utility, warm vs cold).
//
// # Benchmark tracking
//
// Run the full suite with
//
//	go test -bench=. -benchmem
//
// and the headline measurements as machine-readable JSON with
//
//	go run ./cmd/benchjson [-short] [-workers N] [-o out.json]
//
// Each PR records its before/after in BENCH_<n>.json at the repository
// root (BENCH_1.json holds the first: the parallel, allocation-lean
// engine against the seed tree).
package modelcc
