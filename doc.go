// Package modelcc is a from-scratch Go reproduction of "End-to-End
// Transmission Control by Modeling Uncertainty about the Network State"
// (Winstein & Balakrishnan, HotNets 2011): model-based congestion
// control in which the endpoint maintains a probability distribution
// over possible network configurations and at every moment takes the
// action maximizing the expected value of an explicit utility function.
//
// See README.md for a tour, DESIGN.md for the system inventory and the
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate every figure.
package modelcc
