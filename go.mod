module modelcc

go 1.24
